// Benchmark harness: one benchmark per table and figure of the
// paper's evaluation. Each iteration regenerates the artifact end to
// end on the simulated substrate (measurement campaign + analysis),
// so `go test -bench=.` doubles as a smoke test that every experiment
// still runs and as a cost profile of the reproduction itself.
//
// To regenerate and *read* the artifacts, use `go run ./cmd/repro
// -exp all` instead; benchmarks discard the rendered output.
package repro_test

import (
	"fmt"
	"testing"

	"repro/internal/campaign"
	"repro/internal/experiments"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/train"
)

// runExperiment executes one registered experiment per iteration.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	runner, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Vary the seed per iteration so repeated runs exercise fresh
		// campaigns rather than replaying one.
		res, err := runner.Run(42 + int64(i))
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		if res.String() == "" {
			b.Fatalf("%s rendered empty output", id)
		}
	}
}

// BenchmarkTableI regenerates Table I: training speed of the simplest
// cluster for four models × three GPU types.
func BenchmarkTableI(b *testing.B) { runExperiment(b, "table1") }

// BenchmarkFigure2 regenerates Fig. 2: speed vs. step count on K80.
func BenchmarkFigure2(b *testing.B) { runExperiment(b, "fig2") }

// BenchmarkFigure3 regenerates Fig. 3: step time vs. normalized
// computation and model complexity for the twenty-model zoo.
func BenchmarkFigure3(b *testing.B) { runExperiment(b, "fig3") }

// BenchmarkTableII regenerates Table II: the eight step-time
// prediction models with k-fold CV and grid search.
func BenchmarkTableII(b *testing.B) { runExperiment(b, "table2") }

// BenchmarkTableIII regenerates Table III: per-worker step time
// across homogeneous and heterogeneous clusters.
func BenchmarkTableIII(b *testing.B) { runExperiment(b, "table3") }

// BenchmarkFigure4 regenerates Fig. 4: cluster speed vs. P100 count.
func BenchmarkFigure4(b *testing.B) { runExperiment(b, "fig4") }

// BenchmarkFigure5 regenerates Fig. 5: checkpoint time vs. size.
func BenchmarkFigure5(b *testing.B) { runExperiment(b, "fig5") }

// BenchmarkCheckpointSequential regenerates §IV-B's additivity check.
func BenchmarkCheckpointSequential(b *testing.B) { runExperiment(b, "ckptseq") }

// BenchmarkTableIV regenerates Table IV: checkpoint-time predictors.
func BenchmarkTableIV(b *testing.B) { runExperiment(b, "table4") }

// BenchmarkFigure6 regenerates Fig. 6: startup-stage breakdown.
func BenchmarkFigure6(b *testing.B) { runExperiment(b, "fig6") }

// BenchmarkFigure7 regenerates Fig. 7: post-revocation startup times.
func BenchmarkFigure7(b *testing.B) { runExperiment(b, "fig7") }

// BenchmarkTableV regenerates Table V: the twelve-day revocation
// campaign.
func BenchmarkTableV(b *testing.B) { runExperiment(b, "table5") }

// BenchmarkFigure8 regenerates Fig. 8: lifetime CDFs per region/GPU.
func BenchmarkFigure8(b *testing.B) { runExperiment(b, "fig8") }

// BenchmarkFigure9 regenerates Fig. 9: revocations by hour of day.
func BenchmarkFigure9(b *testing.B) { runExperiment(b, "fig9") }

// BenchmarkFigure10 regenerates Fig. 10: replacement overheads.
func BenchmarkFigure10(b *testing.B) { runExperiment(b, "fig10") }

// BenchmarkFigure11 regenerates Fig. 11: recomputation overhead of
// chief-IP reuse vs. CM-DARE takeover.
func BenchmarkFigure11(b *testing.B) { runExperiment(b, "fig11") }

// BenchmarkFigure12 regenerates Fig. 12: bottleneck mitigation with a
// second parameter server, plus the detector verdict.
func BenchmarkFigure12(b *testing.B) { runExperiment(b, "fig12") }

// BenchmarkEndToEnd regenerates §VI-A: the Eq. 4/5 training-time
// prediction validated against full managed sessions.
func BenchmarkEndToEnd(b *testing.B) { runExperiment(b, "endtoend") }

// BenchmarkSweep regenerates the scenario sweep: one managed session
// per (size, GPU, region, tier) grid cell.
func BenchmarkSweep(b *testing.B) { runExperiment(b, "sweep") }

// BenchmarkFleet runs the fleet scheduler comparison: every (regime,
// scheduler, replication) cell is a multi-job simulation on a shared
// capacity-constrained transient pool, so this benchmark tracks the
// cost of the fleet subsystem end to end (workload generation,
// admission, capacity accounting, per-job sessions).
func BenchmarkFleet(b *testing.B) { runExperiment(b, "fleet") }

// BenchmarkProviders runs the cross-provider arbitrage comparison:
// every (regime, fleet, replication) cell is a multi-market fleet
// simulation, so this benchmark tracks the cost of the provider
// registry and cross-market scheduling end to end.
func BenchmarkProviders(b *testing.B) { runExperiment(b, "providers") }

// BenchmarkCampaignWorkers runs a fixed batch of experiments through
// the campaign engine at increasing pool sizes, measuring how the
// reproduction scales with workers (the -parallel knob of cmd/repro).
func BenchmarkCampaignWorkers(b *testing.B) {
	batch := []string{"table1", "fig2", "fig4", "fig10", "sweep"}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				plans := make([]*campaign.Plan, len(batch))
				for pi, id := range batch {
					runner, ok := experiments.ByID(id)
					if !ok {
						b.Fatalf("unknown experiment %q", id)
					}
					plans[pi] = runner.Plan(42 + int64(i))
				}
				for _, o := range (campaign.Engine{Workers: workers}).RunAll(plans) {
					if o.Err != nil {
						b.Fatal(o.Err)
					}
					if o.Value.(experiments.Result).String() == "" {
						b.Fatal("empty campaign output")
					}
				}
			}
		})
	}
}

// --- Ablations ------------------------------------------------------
//
// The benchmarks below vary the design knobs the reproduction's
// results hinge on, reporting the resulting cluster speed as a custom
// metric. They quantify the sensitivity of the headline shapes
// (Fig. 4's plateau, Fig. 12's mitigation, §IV's overhead) to those
// choices.

// benchClusterSpeed runs one training configuration per iteration and
// reports its steady speed.
func benchClusterSpeed(b *testing.B, workers int, ps int, ckptInterval int64) {
	b.Helper()
	b.ReportAllocs()
	var speed float64
	for i := 0; i < b.N; i++ {
		k := &sim.Kernel{}
		c, err := train.NewCluster(k, train.Config{
			Model:              model.ResNet32(),
			Workers:            train.Homogeneous(model.P100, workers),
			ParameterServers:   ps,
			TargetSteps:        int64(600 * workers),
			CheckpointInterval: ckptInterval,
			DisableWarmup:      true,
			Seed:               int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		c.Start()
		k.Run()
		speed = c.Result().SteadySpeed
	}
	b.ReportMetric(speed, "steps/s")
}

// BenchmarkAblationParameterServers sweeps the shard count for the
// saturated 8×P100 ResNet-32 cluster: the knob behind Fig. 12.
func BenchmarkAblationParameterServers(b *testing.B) {
	for _, ps := range []int{1, 2, 3, 4} {
		b.Run(fmt.Sprintf("ps=%d", ps), func(b *testing.B) {
			benchClusterSpeed(b, 8, ps, 0)
		})
	}
}

// BenchmarkAblationClusterSize sweeps worker count at one shard: the
// knob behind Fig. 4's plateau.
func BenchmarkAblationClusterSize(b *testing.B) {
	for _, n := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", n), func(b *testing.B) {
			benchClusterSpeed(b, n, 1, 0)
		})
	}
}

// BenchmarkAblationCheckpointInterval sweeps Ic for a single-K80
// session, the fault-tolerance/overhead trade-off of §IV: smaller
// intervals bound revocation loss but depress effective speed.
func BenchmarkAblationCheckpointInterval(b *testing.B) {
	for _, ic := range []int64{500, 1000, 4000, 16000} {
		b.Run(fmt.Sprintf("ic=%d", ic), func(b *testing.B) {
			b.ReportAllocs()
			var overheadPct float64
			for i := 0; i < b.N; i++ {
				k := &sim.Kernel{}
				c, err := train.NewCluster(k, train.Config{
					Model:              model.ResNet32(),
					Workers:            train.Homogeneous(model.K80, 1),
					TargetSteps:        16000,
					CheckpointInterval: ic,
					DisableWarmup:      true,
					Seed:               int64(i),
				})
				if err != nil {
					b.Fatal(err)
				}
				c.Start()
				k.Run()
				res := c.Result()
				overheadPct = res.CheckpointSeconds / res.TotalSeconds * 100
			}
			b.ReportMetric(overheadPct, "ckpt-overhead-%")
		})
	}
}
