// Command cmdare runs one managed transient training session on the
// simulated cloud: it acquires parameter servers and transient GPU
// workers, trains the chosen model to a target step count while
// absorbing revocations per the replacement policy, and reports
// training time, checkpoints, revocations, and cost — alongside the
// CM-DARE Eq. 4/5 prediction for the same plan.
//
// Example:
//
//	cmdare -model ResNet-32 -gpu K80 -workers 4 -region us-central1 \
//	       -steps 64000 -ckpt-interval 4000
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"repro/internal/campaign"
	"repro/internal/cloud"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/manager"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/train"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		modelName = flag.String("model", "ResNet-32", "zoo model to train")
		gpuName   = flag.String("gpu", "K80", "GPU type: K80, P100, or V100")
		workers   = flag.Int("workers", 2, "number of transient GPU workers")
		psCount   = flag.Int("ps", 1, "number of parameter servers")
		regionStr = flag.String("region", "us-central1", "cloud region")
		steps     = flag.Int64("steps", 64000, "training steps (Nw)")
		ckptEvery = flag.Int64("ckpt-interval", 4000, "checkpoint interval in steps (Ic)")
		policy    = flag.String("replace", "immediate", "replacement policy: immediate, delayed, none")
		delay     = flag.Float64("replace-delay", 3600, "delay in seconds for -replace=delayed")
		seed      = flag.Int64("seed", 1, "random seed")
		parallel  = flag.Int("parallel", runtime.GOMAXPROCS(0), "worker pool size for the measurement campaign")
	)
	flag.Parse()

	m, err := model.ByName(*modelName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cmdare: %v\n", err)
		return 2
	}
	var gpu model.GPU
	for _, g := range model.AllGPUs() {
		if g.String() == *gpuName {
			gpu = g
		}
	}
	if gpu == 0 {
		fmt.Fprintf(os.Stderr, "cmdare: unknown GPU %q\n", *gpuName)
		return 2
	}
	region, err := cloud.ParseRegion(*regionStr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cmdare: %v\n", err)
		return 2
	}
	var repl manager.ReplacementPolicy
	switch *policy {
	case "immediate":
		repl = manager.ReplaceImmediate
	case "delayed":
		repl = manager.ReplaceDelayed
	case "none":
		repl = manager.ReplaceNone
	default:
		fmt.Fprintf(os.Stderr, "cmdare: unknown policy %q\n", *policy)
		return 2
	}

	if *psCount == 0 {
		// The manager runs at least one parameter server; the estimate
		// must price the cluster the session actually gets.
		*psCount = 1
	}

	fmt.Printf("training %s on %d × transient %v in %v (%d PS, Nw=%d, Ic=%d, replace=%v)\n",
		m.Name, *workers, gpu, region, *psCount, *steps, *ckptEvery, repl)

	// The measured session and the Eq. 4/5 calibration are independent
	// campaigns; the engine runs them concurrently on separate kernels
	// with seeds derived from -seed.
	plan := &campaign.Plan{
		Seed: *seed,
		Units: []campaign.Unit{
			{Key: "measured", Run: func(unitSeed int64) (any, error) {
				sc := experiments.Scenario{Model: m, GPU: gpu, Region: region, Tier: cloud.Transient, Workers: *workers}
				opts := experiments.SessionOptions{ParameterServers: *psCount, Replacement: repl, DelaySeconds: *delay}
				return experiments.MeasureScenario(sc, *steps, *ckptEvery, opts, unitSeed)
			}},
			{Key: "prediction", Run: func(unitSeed int64) (any, error) {
				est, err := predict(m, gpu, region, *workers, *psCount, *steps, *ckptEvery, unitSeed)
				if err != nil {
					return nil, err
				}
				return est, nil
			}},
		},
	}
	v, err := campaign.Engine{Workers: *parallel}.Run(plan)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cmdare: %v\n", err)
		return 1
	}
	outs := v.([]any)
	mr := outs[0].(experiments.ScenarioOutcome)
	est := outs[1].(core.Estimate)

	fmt.Printf("\n-- measured --\n")
	fmt.Printf("training time:     %.0f s (%.2f h)\n", mr.TrainingSeconds, mr.TrainingSeconds/3600)
	fmt.Printf("steady speed:      %.2f steps/s\n", mr.SteadySpeed)
	fmt.Printf("checkpoints:       %d (%.0f s total)\n", mr.CheckpointCount, mr.CheckpointSeconds)
	fmt.Printf("revocations:       %d (replacements requested: %d)\n", mr.Revocations, mr.Replacements)
	fmt.Printf("cost:              $%.2f\n", mr.CostUSD)

	fmt.Printf("\n-- Eq. 4/5 prediction --\n")
	fmt.Printf("cluster speed:     %.2f steps/s\n", est.ClusterSpeed)
	fmt.Printf("compute term:      %.0f s\n", est.ComputeSeconds)
	fmt.Printf("checkpoint term:   %.0f s\n", est.CheckpointSeconds)
	fmt.Printf("revocation term:   %.0f s (Nr = %.3f)\n", est.RevocationSeconds, est.ExpectedRevocations)
	fmt.Printf("total:             %.0f s\n", est.TotalSeconds)
	fmt.Printf("predicted cost:    $%.2f\n", est.CostUSD)
	errPct := (est.TotalSeconds - mr.TrainingSeconds) / mr.TrainingSeconds * 100
	fmt.Printf("prediction error:  %+.2f%%\n", errPct)
	return 0
}

// predict builds a quick Eq. 4/5 estimate from the calibrated curves
// (bypassing a full measurement campaign; cmd/repro -exp endtoend
// runs the full pipeline).
func predict(m model.Model, gpu model.GPU, region cloud.Region, workers, ps int, steps, ic int64, seed int64) (core.Estimate, error) {
	var speedObs []core.SpeedObservation
	for _, zm := range model.Zoo() {
		speedObs = append(speedObs, core.SpeedObservation{
			GPU: gpu, GFLOPs: zm.GFLOPs, StepSeconds: model.StepTimeModel(gpu, zm),
		})
	}
	speedModel, err := core.FitSpeedModel(speedObs, core.KindSVRRBF)
	if err != nil {
		return core.Estimate{}, err
	}
	var ckptObs []core.CheckpointObservation
	rng := stats.NewRng(seed)
	for _, zm := range model.Zoo() {
		for i := 0; i < 5; i++ {
			ckptObs = append(ckptObs, core.CheckpointObservation{
				DataBytes:  zm.CkptDataBytes,
				MetaBytes:  zm.CkptMetaBytes,
				IndexBytes: zm.CkptIndexBytes,
				Seconds:    rng.LogNormal(train.CheckpointSeconds(zm), 0.04),
			})
		}
	}
	ckptModel, err := core.FitCheckpointModel(ckptObs, core.FeatTotalSize, core.KindSVRRBF)
	if err != nil {
		return core.Estimate{}, err
	}
	// A quick lifetime campaign for the revocation CDF, staggered
	// across the day so time-of-day hazard structure is sampled
	// evenly.
	k := &sim.Kernel{}
	p := cloud.NewProvider(k, stats.NewRng(seed+7))
	var lifetimes []float64
	for i := 0; i < 200; i++ {
		k.At(sim.Time(float64(i%24)*3600), func() {
			p.MustLaunch(cloud.Request{Region: region, GPU: gpu, Tier: cloud.Transient})
		})
	}
	k.Run()
	for _, in := range p.Instances() {
		lifetimes = append(lifetimes, in.LifetimeSeconds(k.Now())/3600)
	}
	rev := core.NewRevocationEstimator()
	if err := rev.SetLifetimes(region.String(), gpu, lifetimes); err != nil {
		return core.Estimate{}, err
	}

	predictor := &core.Predictor{
		Speed:              speedModel,
		Checkpoint:         ckptModel,
		Revocation:         rev,
		ProvisionSeconds:   70,
		ReplacementSeconds: train.ReplacementSeconds(m, true),
	}
	placements := make([]core.Placement, workers)
	for i := range placements {
		placements[i] = core.Placement{GPU: gpu, Region: region.String(), Transient: true}
	}
	return predictor.Estimate(core.Plan{
		Model:              m,
		Workers:            placements,
		ParameterServers:   ps,
		TargetSteps:        steps,
		CheckpointInterval: ic,
	})
}
