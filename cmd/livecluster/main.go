// Command livecluster runs the live TCP training cluster as separate
// node roles, mirroring how CM-DARE's components deploy onto cloud
// servers. Roles:
//
//	livecluster ps -addr :7001 -shard-size 85 -lr 0.1
//	livecluster controller -addr :7000
//	livecluster worker -name w0 -ps :7001,:7002 -controller :7000 -chief \
//	    -ckpt-dir /tmp/ckpts -ckpt-interval 200
//	livecluster demo            # whole cluster in-process, with a revocation
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/live"
)

func main() {
	os.Exit(run())
}

func run() int {
	if len(os.Args) < 2 {
		usage()
		return 2
	}
	switch os.Args[1] {
	case "ps":
		return runPS(os.Args[2:])
	case "controller":
		return runController(os.Args[2:])
	case "worker":
		return runWorker(os.Args[2:])
	case "demo":
		return runDemo(os.Args[2:])
	default:
		usage()
		return 2
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: livecluster <ps|controller|worker|demo> [flags]")
}

func awaitSignal() {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, syscall.SIGINT, syscall.SIGTERM)
	<-ch
}

func runPS(args []string) int {
	fs := flag.NewFlagSet("ps", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:7001", "listen address")
	shardSize := fs.Int("shard-size", 85, "parameters in this shard")
	lr := fs.Float64("lr", 0.1, "learning rate")
	fs.Parse(args)

	ps, err := live.NewParameterServer(*addr, *shardSize, *lr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "livecluster: %v\n", err)
		return 1
	}
	defer ps.Close()
	fmt.Printf("parameter server shard on %s (%d params, lr %.3f)\n", ps.Addr(), *shardSize, *lr)
	awaitSignal()
	return 0
}

func runController(args []string) int {
	fs := flag.NewFlagSet("controller", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:7000", "listen address")
	fs.Parse(args)

	ctrl, err := live.NewController(*addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "livecluster: %v\n", err)
		return 1
	}
	defer ctrl.Close()
	fmt.Printf("controller on %s\n", ctrl.Addr())
	awaitSignal()
	return 0
}

func runWorker(args []string) int {
	fs := flag.NewFlagSet("worker", flag.ExitOnError)
	name := fs.String("name", "worker-0", "worker name")
	psList := fs.String("ps", "", "comma-separated parameter server addresses (shard order)")
	ctrlAddr := fs.String("controller", "", "controller address")
	chief := fs.Bool("chief", false, "start as chief (checkpointing) worker")
	classes := fs.Int("classes", 10, "dataset classes")
	features := fs.Int("features", 16, "dataset features")
	batch := fs.Int("batch", 32, "mini-batch size")
	ckptDir := fs.String("ckpt-dir", "", "checkpoint directory (chief)")
	ckptEvery := fs.Int64("ckpt-interval", 0, "checkpoint interval in global steps")
	seed := fs.Int64("seed", 1, "data seed")
	fs.Parse(args)

	if *psList == "" {
		fmt.Fprintln(os.Stderr, "livecluster: -ps required")
		return 2
	}
	w, err := live.NewWorker(live.WorkerConfig{
		Name:               *name,
		PSAddrs:            strings.Split(*psList, ","),
		ControllerAddr:     *ctrlAddr,
		Chief:              *chief,
		Classes:            *classes,
		Features:           *features,
		BatchSize:          *batch,
		DataSeed:           *seed,
		CheckpointInterval: *ckptEvery,
		CheckpointDir:      *ckptDir,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "livecluster: %v\n", err)
		return 1
	}
	w.Start()
	fmt.Printf("worker %s training (chief=%v)\n", *name, *chief)
	awaitSignal()
	w.Stop()
	fmt.Printf("worker %s: %d steps, last loss %.4f, %d checkpoints\n",
		*name, w.Steps(), w.LastLoss(), w.Checkpoints())
	if err := w.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "livecluster: %v\n", err)
		return 1
	}
	return 0
}

// runDemo spins the whole cluster in-process: two shards, a
// controller, three workers, a chief revocation, and a takeover.
func runDemo(args []string) int {
	fs := flag.NewFlagSet("demo", flag.ExitOnError)
	dir := fs.String("ckpt-dir", "", "checkpoint directory (default: temp)")
	fs.Parse(args)
	if *dir == "" {
		tmp, err := os.MkdirTemp("", "cmdare-live-*")
		if err != nil {
			fmt.Fprintf(os.Stderr, "livecluster: %v\n", err)
			return 1
		}
		*dir = tmp
	}

	const classes, features = 10, 16
	total := classes * (features + 1)
	half := total / 2
	ps1, err := live.NewParameterServer("127.0.0.1:0", half, 0.1)
	if err != nil {
		fmt.Fprintf(os.Stderr, "livecluster: %v\n", err)
		return 1
	}
	defer ps1.Close()
	ps2, err := live.NewParameterServer("127.0.0.1:0", total-half, 0.1)
	if err != nil {
		fmt.Fprintf(os.Stderr, "livecluster: %v\n", err)
		return 1
	}
	defer ps2.Close()
	ctrl, err := live.NewController("127.0.0.1:0")
	if err != nil {
		fmt.Fprintf(os.Stderr, "livecluster: %v\n", err)
		return 1
	}
	defer ctrl.Close()

	var workers []*live.Worker
	for i := 0; i < 3; i++ {
		w, err := live.NewWorker(live.WorkerConfig{
			Name:               fmt.Sprintf("worker-%d", i),
			PSAddrs:            []string{ps1.Addr(), ps2.Addr()},
			ControllerAddr:     ctrl.Addr(),
			Chief:              i == 0,
			Classes:            classes,
			Features:           features,
			BatchSize:          32,
			DataSeed:           int64(100 + i),
			CheckpointInterval: 200,
			CheckpointDir:      *dir,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "livecluster: %v\n", err)
			return 1
		}
		workers = append(workers, w)
		w.Start()
	}
	fmt.Printf("3 workers training against 2 PS shards; checkpoints → %s\n", *dir)

	deadline := time.Now().Add(30 * time.Second)
	for workers[0].Checkpoints() < 2 && time.Now().Before(deadline) {
		time.Sleep(50 * time.Millisecond)
	}
	fmt.Printf("chief wrote %d checkpoints; global step %d; revoking chief…\n",
		workers[0].Checkpoints(), workers[0].GlobalStep())
	if err := workers[0].Revoke(); err != nil {
		fmt.Fprintf(os.Stderr, "livecluster: revoke: %v\n", err)
		return 1
	}

	for ctrl.Takeovers() == 0 && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	fmt.Printf("controller promoted %s to chief\n", ctrl.Chief())

	time.Sleep(2 * time.Second)
	for _, w := range workers[1:] {
		w.Stop()
	}
	for _, w := range workers[1:] {
		acc, err := w.EvalAccuracy(400)
		if err == nil {
			fmt.Printf("%s: %d steps, loss %.4f, accuracy %.3f, checkpoints %d\n",
				w.Name(), w.Steps(), w.LastLoss(), acc, w.Checkpoints())
		}
	}
	fmt.Println("demo complete: training survived the chief revocation")
	return 0
}
