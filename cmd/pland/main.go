// Command pland is the planning daemon: a long-running HTTP/JSON
// service that answers scenario queries — "cheapest config to train
// model M in ≤ H hours", arbitrary sweep grids, single-scenario
// ETA/cost estimates, and multi-job fleet simulations on a shared
// capacity-constrained transient pool (POST /v1/fleet, NDJSON per-job
// results plus aggregate stats) — against the simulated cloud, the
// interactive form of the paper's decision-support result (Eqs. 4–5,
// Tables V–VII).
//
// Queries dispatch onto one shared simulation worker pool with a
// bounded admission queue; identical concurrent queries coalesce into
// a single simulation, and finished measurements land in a seed-keyed
// LRU cache so no scenario is ever simulated twice.
//
// Usage:
//
//	pland [-addr 127.0.0.1:8642] [-workers 8] [-queue 64] [-cache 4096]
//	      [-trace name=file.csv ...] [-pprof]
//
// GET /metrics exposes the service-plane registry (cache hit/miss
// counters, admission queue depth, per-endpoint request latency, pool
// utilization) in Prometheus text form; -pprof additionally mounts
// net/http/pprof's profiling handlers under /debug/pprof/ — off by
// default, since the profiler endpoints are not something to expose
// beyond a trusted network.
//
// Each -trace flag (repeatable) registers a revocation-trace CSV — the
// format cmd/revstudy exports and the paper's public dataset uses — as
// an empirical lifetime model under the given name: queries select it
// with "rev_model":"name" (or "rev_models" on grids) and simulate
// against bootstrap resamples of the recorded lifetimes instead of the
// calibrated distributions. GET /v1/catalog lists every registered
// model. See README.md "Revocation models" for the full flow.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"repro/internal/cloud"
	"repro/internal/planner"
	"repro/internal/trace"
)

// traceFlags collects repeated -trace name=path values.
type traceFlags []string

func (t *traceFlags) String() string { return strings.Join(*t, ",") }
func (t *traceFlags) Set(v string) error {
	*t = append(*t, v)
	return nil
}

// registerTrace loads one -trace registration: parse the CSV, build
// the bootstrap replay model, and make it selectable by name.
func registerTrace(arg string) error {
	name, path, ok := strings.Cut(arg, "=")
	if !ok || name == "" || path == "" {
		return fmt.Errorf("-trace wants name=file.csv, got %q", arg)
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	recs, err := trace.ReadRecordsCSV(f)
	if err != nil {
		return err
	}
	m, err := trace.EmpiricalLifetimeModel(name, recs)
	if err != nil {
		return err
	}
	// Registration panics on a conflict (programmer error elsewhere);
	// a user retyping a builtin name on the command line is a usage
	// error, so pre-check it here. Startup is single-threaded, so the
	// check-then-register pair cannot race.
	if _, err := cloud.LookupLifetimeModel(name); err == nil {
		return fmt.Errorf("-trace name %q is already a registered lifetime model", name)
	}
	cloud.RegisterLifetimeModel(m)
	fmt.Fprintf(os.Stderr, "pland: lifetime model %q replays %d records over %d cells: %s\n",
		name, len(recs), len(m.CoveredCells()), strings.Join(m.CoveredCells(), ", "))
	return nil
}

func main() {
	os.Exit(run())
}

func run() int {
	var (
		addr      = flag.String("addr", "127.0.0.1:8642", "listen address")
		workers   = flag.Int("workers", runtime.GOMAXPROCS(0), "shared simulation pool size")
		queue     = flag.Int("queue", 64, "bounded admission queue depth")
		cache     = flag.Int("cache", 4096, "scenario result cache entries (LRU)")
		pprofFlag = flag.Bool("pprof", false, "mount net/http/pprof handlers under /debug/pprof/")
		traces    traceFlags
	)
	flag.Var(&traces, "trace",
		"register a revocation-trace CSV (revstudy format) as an empirical lifetime model, as name=file.csv; repeatable, selected per query via rev_model")
	flag.Parse()

	for _, arg := range traces {
		if err := registerTrace(arg); err != nil {
			fmt.Fprintf(os.Stderr, "pland: %v\n", err)
			return 2
		}
	}

	p := planner.New(planner.Config{Workers: *workers, QueueDepth: *queue, CacheSize: *cache})
	defer p.Close()

	// The planner's mux serves everything; -pprof wraps it in an outer
	// mux that adds the profiler endpoints explicitly (no blank import:
	// registering on DefaultServeMux would mount the profiler whether
	// the operator asked or not).
	handler := p.Handler()
	if *pprofFlag {
		outer := http.NewServeMux()
		outer.HandleFunc("/debug/pprof/", pprof.Index)
		outer.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		outer.HandleFunc("/debug/pprof/profile", pprof.Profile)
		outer.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		outer.HandleFunc("/debug/pprof/trace", pprof.Trace)
		outer.Handle("/", handler)
		handler = outer
		fmt.Fprintln(os.Stderr, "pland: pprof mounted at /debug/pprof/")
	}

	// No read/write timeouts: sweeps stream NDJSON for as long as the
	// simulations take. Header reads are bounded so an idle half-open
	// connection cannot pin a goroutine.
	srv := &http.Server{Addr: *addr, Handler: handler, ReadHeaderTimeout: 10 * time.Second}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "pland: listening on http://%s (workers=%d queue=%d cache=%d)\n",
		*addr, *workers, *queue, *cache)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "pland: %v\n", err)
		return 1
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "pland: %v, draining\n", s)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
			fmt.Fprintf(os.Stderr, "pland: shutdown: %v\n", err)
			return 1
		}
		return 0
	}
}
