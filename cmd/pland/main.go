// Command pland is the planning daemon: a long-running HTTP/JSON
// service that answers scenario queries — "cheapest config to train
// model M in ≤ H hours", arbitrary sweep grids, single-scenario
// ETA/cost estimates — against the simulated cloud, the interactive
// form of the paper's decision-support result (Eqs. 4–5, Tables
// V–VII).
//
// Queries dispatch onto one shared simulation worker pool with a
// bounded admission queue; identical concurrent queries coalesce into
// a single simulation, and finished measurements land in a seed-keyed
// LRU cache so no scenario is ever simulated twice.
//
// Usage:
//
//	pland [-addr 127.0.0.1:8642] [-workers 8] [-queue 64] [-cache 4096]
//
// See README.md §pland for the endpoints and example queries.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/planner"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		addr    = flag.String("addr", "127.0.0.1:8642", "listen address")
		workers = flag.Int("workers", runtime.GOMAXPROCS(0), "shared simulation pool size")
		queue   = flag.Int("queue", 64, "bounded admission queue depth")
		cache   = flag.Int("cache", 4096, "scenario result cache entries (LRU)")
	)
	flag.Parse()

	p := planner.New(planner.Config{Workers: *workers, QueueDepth: *queue, CacheSize: *cache})
	defer p.Close()

	// No read/write timeouts: sweeps stream NDJSON for as long as the
	// simulations take. Header reads are bounded so an idle half-open
	// connection cannot pin a goroutine.
	srv := &http.Server{Addr: *addr, Handler: p.Handler(), ReadHeaderTimeout: 10 * time.Second}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "pland: listening on http://%s (workers=%d queue=%d cache=%d)\n",
		*addr, *workers, *queue, *cache)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "pland: %v\n", err)
		return 1
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "pland: %v, draining\n", s)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
			fmt.Fprintf(os.Stderr, "pland: shutdown: %v\n", err)
			return 1
		}
		return 0
	}
}
