// Command repro regenerates the paper's tables and figures on the
// simulated substrate.
//
// Experiments run as campaigns on a worker pool: every independent
// replication gets its own single-threaded simulation kernel and a
// seed derived from -seed, so output is byte-identical for any
// -parallel value. Timing goes to stderr to keep stdout canonical.
//
// Usage:
//
//	repro -list
//	repro -exp table1
//	repro -exp all [-seed 42] [-parallel 8]
//	repro -exp all -trace-out trace.ndjson   # sim-plane event trace
//	repro -exp all -timing-out timing.json   # per-unit wall timing
//	repro -exp sweep -cpuprofile cpu.pprof -memprofile mem.pprof
//	repro -exp revmodels   # extras run individually, outside "all"
//	repro -exp fleet       # multi-job scheduler comparison (extra)
//	repro -exp regret      # schedulers vs clairvoyant oracle (extra)
//	repro -exp elastic     # elastic vs static mixed clusters (extra)
//
// -trace-out records every session's sim-plane events (revocations,
// checkpoints, rebalances, elastic resizes, speed samples — see
// internal/obs) as NDJSON, units sorted by key: the trace is a pure
// function of (experiment set, seed), byte-identical at any -parallel,
// and never perturbs the primary output. -timing-out is the service
// plane's counterpart: per-unit wall-clock timings as JSON — useful
// for profiling the campaign itself, by construction excluded from
// every simulated number.
//
// "all" runs exactly the paper's artifact set (the stream the golden
// snapshot pins); extra experiments — revmodels, the revocation-model
// comparison over the pluggable lifetime regimes; fleet, the
// multi-job scheduler comparison on a capacity-constrained transient
// pool; providers, single-market fleets vs cross-market arbitrage;
// regret, every scheduler scored against a clairvoyant per-job
// oracle; and elastic, static vs risk-driven resizing of a mixed-GPU
// cluster under each revocation regime — are listed by -list and run
// by id, each golden-pinned extra under its own testdata snapshot.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"sync"
	"time"

	"repro/internal/campaign"
	"repro/internal/experiments"
	"repro/internal/obs"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		exp        = flag.String("exp", "", "experiment id to run, or 'all'")
		seed       = flag.Int64("seed", 42, "base random seed")
		parallel   = flag.Int("parallel", runtime.GOMAXPROCS(0), "worker pool size for campaign replications")
		list       = flag.Bool("list", false, "list experiment ids and exit")
		traceOut   = flag.String("trace-out", "", "write the sim-plane event trace (NDJSON, deterministic) to this file")
		timingOut  = flag.String("timing-out", "", "write per-unit wall-clock timings (JSON) to this file")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile of the run to this file (go tool pprof)")
		memProfile = flag.String("memprofile", "", "write a heap profile at exit to this file (go tool pprof)")
	)
	flag.Parse()

	// Profiles are the service plane's service plane: they observe the
	// process, never the simulation, so enabling them cannot perturb
	// any experiment output.
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "repro: -cpuprofile: %v\n", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "repro: -cpuprofile: %v\n", err)
			f.Close()
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		path := *memProfile
		defer func() {
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "repro: -memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows live + cumulative allocs cleanly
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "repro: -memprofile: %v\n", err)
			}
		}()
	}

	if *list {
		for _, r := range experiments.All() {
			fmt.Printf("%-10s %s\n", r.ID, r.Title)
		}
		for _, r := range experiments.Extras() {
			fmt.Printf("%-10s %s (not in \"all\")\n", r.ID, r.Title)
		}
		return 0
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "repro: -exp <id>|all required (see -list)")
		return 2
	}

	runners := experiments.All()
	if *exp != "all" {
		r, ok := experiments.ByID(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "repro: unknown experiment %q (see -list)\n", *exp)
			return 2
		}
		runners = []experiments.Runner{r}
	}

	var col *obs.Collector
	if *traceOut != "" {
		col = obs.NewCollector()
	}
	var timings *timingCollector
	if *timingOut != "" {
		timings = newTimingCollector(runners, *parallel)
	}

	start := time.Now()
	printed, err := writeExperimentsObserved(os.Stdout, runners, *seed, *parallel, col, timings)
	if err != nil {
		fmt.Fprintf(os.Stderr, "repro: %v\n", err)
		return 1
	}
	if col != nil {
		if err := writeTraceFile(*traceOut, col); err != nil {
			fmt.Fprintf(os.Stderr, "repro: %v\n", err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "repro: wrote %d trace events across %d units to %s\n",
			col.Len(), len(col.Units()), *traceOut)
	}
	if timings != nil {
		if err := timings.writeFile(*timingOut, time.Since(start).Seconds()); err != nil {
			fmt.Fprintf(os.Stderr, "repro: %v\n", err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "repro: wrote unit timings to %s\n", *timingOut)
	}
	fmt.Fprintf(os.Stderr, "repro: %d experiment(s) in %.1fs (-parallel %d)\n",
		printed, time.Since(start).Seconds(), *parallel)
	return 0
}

// writeTraceFile exports the collector's deterministic NDJSON stream.
func writeTraceFile(path string, col *obs.Collector) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := col.WriteNDJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// unitTiming is one row of the -timing-out artifact: one campaign
// unit's wall-clock execution time. Wall-clock is the service plane —
// it never feeds a simulated number.
type unitTiming struct {
	Experiment string  `json:"experiment"`
	Unit       int     `json:"unit"`
	Key        string  `json:"key"`
	Seconds    float64 `json:"seconds"`
}

// timingCollector gathers per-unit timings from the engine's OnUnit
// hook, which may fire from any worker goroutine.
type timingCollector struct {
	ids      []string
	parallel int

	mu    sync.Mutex
	units []unitTiming
}

func newTimingCollector(runners []experiments.Runner, parallel int) *timingCollector {
	ids := make([]string, len(runners))
	for i, r := range runners {
		ids[i] = r.ID
	}
	return &timingCollector{ids: ids, parallel: parallel}
}

// onUnit is the campaign.Engine OnUnit hook.
func (t *timingCollector) onUnit(plan, unit int, key string, seconds float64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.units = append(t.units, unitTiming{Experiment: t.ids[plan], Unit: unit, Key: key, Seconds: seconds})
}

// timingReport is the -timing-out JSON shape: the campaign's shape and
// totals plus every unit's timing, sorted by (experiment, unit index)
// so the artifact is stable however the pool scheduled the work.
type timingReport struct {
	Parallel         int          `json:"parallel"`
	Units            int          `json:"units"`
	TotalUnitSeconds float64      `json:"total_unit_seconds"`
	WallSeconds      float64      `json:"wall_seconds"`
	PerUnit          []unitTiming `json:"per_unit"`
}

func (t *timingCollector) writeFile(path string, wallSeconds float64) error {
	t.mu.Lock()
	units := make([]unitTiming, len(t.units))
	copy(units, t.units)
	t.mu.Unlock()
	order := func(i, j int) bool {
		if units[i].Experiment != units[j].Experiment {
			return units[i].Experiment < units[j].Experiment
		}
		return units[i].Unit < units[j].Unit
	}
	sort.Slice(units, order)
	total := 0.0
	for _, u := range units {
		total += u.Seconds
	}
	rep := timingReport{
		Parallel:         t.parallel,
		Units:            len(units),
		TotalUnitSeconds: total,
		WallSeconds:      wallSeconds,
		PerUnit:          units,
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeExperiments renders the selected experiments to w in order,
// streaming each one as soon as it and everything before it finished.
// This is the canonical stdout of `repro -exp all`; the golden test
// snapshots exactly this stream. The first failed experiment stops the
// batch; errors from campaigns still in flight at that moment are
// joined into the returned error rather than dropped.
func writeExperiments(w io.Writer, runners []experiments.Runner, seed int64, parallel int) (int, error) {
	return writeExperimentsObserved(w, runners, seed, parallel, nil, nil)
}

// writeExperimentsObserved is writeExperiments with the observability
// planes attached: a non-nil collector threads a sim-plane recorder
// into every traceable unit (the primary output stays byte-identical —
// recording draws no randomness and schedules no events), and a
// non-nil timing collector receives each unit's wall-clock execution
// time from the engine.
func writeExperimentsObserved(w io.Writer, runners []experiments.Runner, seed int64, parallel int, col *obs.Collector, timings *timingCollector) (int, error) {
	// One shared pool across all selected experiments, so the tail of
	// one campaign overlaps the head of the next.
	plans := make([]*campaign.Plan, len(runners))
	for i, r := range runners {
		if col != nil {
			plans[i] = r.PlanTraced(seed, col)
		} else {
			plans[i] = r.Plan(seed)
		}
	}
	engine := campaign.Engine{Workers: parallel}
	if timings != nil {
		engine.OnUnit = timings.onUnit
	}
	printed := 0
	var failed error
	dropped := engine.RunEach(plans, func(i int, o campaign.Outcome) bool {
		if o.Err != nil {
			failed = fmt.Errorf("%s: %w", runners[i].ID, o.Err)
			return false
		}
		fmt.Fprintf(w, "== %s — %s\n\n", runners[i].ID, runners[i].Title)
		fmt.Fprintln(w, o.Value.(experiments.Result).String())
		printed++
		return true
	})
	return printed, errors.Join(failed, dropped)
}
