// Command repro regenerates the paper's tables and figures on the
// simulated substrate.
//
// Experiments run as campaigns on a worker pool: every independent
// replication gets its own single-threaded simulation kernel and a
// seed derived from -seed, so output is byte-identical for any
// -parallel value. Timing goes to stderr to keep stdout canonical.
//
// Usage:
//
//	repro -list
//	repro -exp table1
//	repro -exp all [-seed 42] [-parallel 8]
//	repro -exp revmodels   # extras run individually, outside "all"
//	repro -exp fleet       # multi-job scheduler comparison (extra)
//	repro -exp regret      # schedulers vs clairvoyant oracle (extra)
//	repro -exp elastic     # elastic vs static mixed clusters (extra)
//
// "all" runs exactly the paper's artifact set (the stream the golden
// snapshot pins); extra experiments — revmodels, the revocation-model
// comparison over the pluggable lifetime regimes; fleet, the
// multi-job scheduler comparison on a capacity-constrained transient
// pool; providers, single-market fleets vs cross-market arbitrage;
// regret, every scheduler scored against a clairvoyant per-job
// oracle; and elastic, static vs risk-driven resizing of a mixed-GPU
// cluster under each revocation regime — are listed by -list and run
// by id, each golden-pinned extra under its own testdata snapshot.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"repro/internal/campaign"
	"repro/internal/experiments"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		exp      = flag.String("exp", "", "experiment id to run, or 'all'")
		seed     = flag.Int64("seed", 42, "base random seed")
		parallel = flag.Int("parallel", runtime.GOMAXPROCS(0), "worker pool size for campaign replications")
		list     = flag.Bool("list", false, "list experiment ids and exit")
	)
	flag.Parse()

	if *list {
		for _, r := range experiments.All() {
			fmt.Printf("%-10s %s\n", r.ID, r.Title)
		}
		for _, r := range experiments.Extras() {
			fmt.Printf("%-10s %s (not in \"all\")\n", r.ID, r.Title)
		}
		return 0
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "repro: -exp <id>|all required (see -list)")
		return 2
	}

	runners := experiments.All()
	if *exp != "all" {
		r, ok := experiments.ByID(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "repro: unknown experiment %q (see -list)\n", *exp)
			return 2
		}
		runners = []experiments.Runner{r}
	}

	start := time.Now()
	printed, err := writeExperiments(os.Stdout, runners, *seed, *parallel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "repro: %v\n", err)
		return 1
	}
	fmt.Fprintf(os.Stderr, "repro: %d experiment(s) in %.1fs (-parallel %d)\n",
		printed, time.Since(start).Seconds(), *parallel)
	return 0
}

// writeExperiments renders the selected experiments to w in order,
// streaming each one as soon as it and everything before it finished.
// This is the canonical stdout of `repro -exp all`; the golden test
// snapshots exactly this stream. The first failed experiment stops the
// batch; errors from campaigns still in flight at that moment are
// joined into the returned error rather than dropped.
func writeExperiments(w io.Writer, runners []experiments.Runner, seed int64, parallel int) (int, error) {
	// One shared pool across all selected experiments, so the tail of
	// one campaign overlaps the head of the next.
	plans := make([]*campaign.Plan, len(runners))
	for i, r := range runners {
		plans[i] = r.Plan(seed)
	}
	printed := 0
	var failed error
	dropped := campaign.Engine{Workers: parallel}.RunEach(plans, func(i int, o campaign.Outcome) bool {
		if o.Err != nil {
			failed = fmt.Errorf("%s: %w", runners[i].ID, o.Err)
			return false
		}
		fmt.Fprintf(w, "== %s — %s\n\n", runners[i].ID, runners[i].Title)
		fmt.Fprintln(w, o.Value.(experiments.Result).String())
		printed++
		return true
	})
	return printed, errors.Join(failed, dropped)
}
