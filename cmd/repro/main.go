// Command repro regenerates the paper's tables and figures on the
// simulated substrate.
//
// Usage:
//
//	repro -list
//	repro -exp table1
//	repro -exp all [-seed 42]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		exp  = flag.String("exp", "", "experiment id to run, or 'all'")
		seed = flag.Int64("seed", 42, "base random seed")
		list = flag.Bool("list", false, "list experiment ids and exit")
	)
	flag.Parse()

	if *list {
		for _, r := range experiments.All() {
			fmt.Printf("%-10s %s\n", r.ID, r.Title)
		}
		return 0
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "repro: -exp <id>|all required (see -list)")
		return 2
	}

	runners := experiments.All()
	if *exp != "all" {
		r, ok := experiments.ByID(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "repro: unknown experiment %q (see -list)\n", *exp)
			return 2
		}
		runners = []experiments.Runner{r}
	}
	for _, r := range runners {
		start := time.Now()
		result, err := r.Run(*seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "repro: %s: %v\n", r.ID, err)
			return 1
		}
		fmt.Printf("== %s — %s (%.1fs)\n\n", r.ID, r.Title, time.Since(start).Seconds())
		fmt.Println(result.String())
	}
	return 0
}
