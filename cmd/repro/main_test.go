package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"repro/internal/experiments"
)

var update = flag.Bool("update", false, "rewrite the golden snapshots instead of comparing")

// TestReproAllMatchesGolden locks the paper's numbers down: the full
// `repro -exp all` stdout (seed 42) must match the committed snapshot
// byte for byte, so refactors of the engine, the experiments, or the
// renderers cannot silently drift a single digit of any table or
// figure. After an intentional change, regenerate with
//
//	go test ./cmd/repro -run Golden -update
//
// and review the snapshot diff like any other code change.
func TestReproAllMatchesGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("full evaluation in -short mode")
	}
	runners := experiments.All()
	var buf bytes.Buffer
	printed, err := writeExperiments(&buf, runners, 42, runtime.GOMAXPROCS(0))
	if err != nil {
		t.Fatal(err)
	}
	if printed != len(runners) {
		t.Fatalf("rendered %d experiments, want %d", printed, len(runners))
	}

	golden := filepath.Join("testdata", "all.golden")
	if *update {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", golden, buf.Len())
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden snapshot (generate with -update): %v", err)
	}
	if got := buf.Bytes(); !bytes.Equal(got, want) {
		t.Fatalf("repro -exp all drifted from the committed snapshot:\n%s\nif the change is intentional, regenerate with -update and review the diff",
			firstDivergence(got, want))
	}
}

// TestReproFleetMatchesGolden pins the fleet scheduler comparison the
// same way: `repro -exp fleet` (seed 42) must match its committed
// snapshot byte for byte. The fleet experiment lives outside "all" (the
// paper never published multi-job numbers), so it gets its own golden;
// CI cross-checks both snapshots against live output.
func TestReproFleetMatchesGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("full fleet campaign in -short mode")
	}
	r, ok := experiments.ByID("fleet")
	if !ok {
		t.Fatal("fleet experiment not registered")
	}
	var buf bytes.Buffer
	if _, err := writeExperiments(&buf, []experiments.Runner{r}, 42, runtime.GOMAXPROCS(0)); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "fleet.golden")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", golden, buf.Len())
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden snapshot (generate with -update): %v", err)
	}
	if got := buf.Bytes(); !bytes.Equal(got, want) {
		t.Fatalf("repro -exp fleet drifted from the committed snapshot:\n%s\nif the change is intentional, regenerate with -update and review the diff",
			firstDivergence(got, want))
	}
}

// TestReproProvidersMatchesGolden pins the cross-provider arbitrage
// comparison: `repro -exp providers` (seed 42) must match its
// committed snapshot byte for byte. Like fleet, it lives outside "all"
// (the paper characterizes one cloud; the multi-market economy is an
// extrapolation), so it gets its own golden; CI cross-checks it
// against live output.
func TestReproProvidersMatchesGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("full cross-provider campaign in -short mode")
	}
	r, ok := experiments.ByID("providers")
	if !ok {
		t.Fatal("providers experiment not registered")
	}
	var buf bytes.Buffer
	if _, err := writeExperiments(&buf, []experiments.Runner{r}, 42, runtime.GOMAXPROCS(0)); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "providers.golden")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", golden, buf.Len())
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden snapshot (generate with -update): %v", err)
	}
	if got := buf.Bytes(); !bytes.Equal(got, want) {
		t.Fatalf("repro -exp providers drifted from the committed snapshot:\n%s\nif the change is intentional, regenerate with -update and review the diff",
			firstDivergence(got, want))
	}
}

// TestReproRegretMatchesGolden pins the scheduler-regret comparison:
// `repro -exp regret` (seed 42) must match its committed snapshot byte
// for byte — and byte-identically at -parallel 1 and 8, since the
// predictive scheduler's history-fed fits are the newest place a
// worker-count dependence could sneak in. Like the other extras it
// lives outside "all", so it gets its own golden; CI cross-checks it
// against live output.
func TestReproRegretMatchesGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("full regret campaign in -short mode")
	}
	r, ok := experiments.ByID("regret")
	if !ok {
		t.Fatal("regret experiment not registered")
	}
	render := func(workers int) []byte {
		var buf bytes.Buffer
		if _, err := writeExperiments(&buf, []experiments.Runner{r}, 42, workers); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	got := render(1)
	if wide := render(8); !bytes.Equal(got, wide) {
		t.Fatalf("-parallel 8 changed regret output:\n%s", firstDivergence(wide, got))
	}
	golden := filepath.Join("testdata", "regret.golden")
	if *update {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", golden, len(got))
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden snapshot (generate with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("repro -exp regret drifted from the committed snapshot:\n%s\nif the change is intentional, regenerate with -update and review the diff",
			firstDivergence(got, want))
	}
}

// TestReproElasticMatchesGolden pins the elastic-cluster comparison:
// `repro -exp elastic` (seed 42) must match its committed snapshot
// byte for byte — and byte-identically at -parallel 1 and 8, since the
// synchronous dynamic-batching kernel and the resize timers are the
// newest places a worker-count dependence could sneak in. Like the
// other extras it lives outside "all", so it gets its own golden; CI
// cross-checks it against live output.
func TestReproElasticMatchesGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("full elastic campaign in -short mode")
	}
	r, ok := experiments.ByID("elastic")
	if !ok {
		t.Fatal("elastic experiment not registered")
	}
	render := func(workers int) []byte {
		var buf bytes.Buffer
		if _, err := writeExperiments(&buf, []experiments.Runner{r}, 42, workers); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	got := render(1)
	if wide := render(8); !bytes.Equal(got, wide) {
		t.Fatalf("-parallel 8 changed elastic output:\n%s", firstDivergence(wide, got))
	}
	golden := filepath.Join("testdata", "elastic.golden")
	if *update {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", golden, len(got))
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden snapshot (generate with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("repro -exp elastic drifted from the committed snapshot:\n%s\nif the change is intentional, regenerate with -update and review the diff",
			firstDivergence(got, want))
	}
}

// firstDivergence renders the first line where got and want differ,
// with a little context, so a drifted digit is findable without
// eyeballing ~20 artifacts.
func firstDivergence(got, want []byte) string {
	gotLines := bytes.Split(got, []byte("\n"))
	wantLines := bytes.Split(want, []byte("\n"))
	n := len(gotLines)
	if len(wantLines) < n {
		n = len(wantLines)
	}
	for i := 0; i < n; i++ {
		if !bytes.Equal(gotLines[i], wantLines[i]) {
			return fmt.Sprintf("line %d:\n  got:  %q\n  want: %q", i+1, gotLines[i], wantLines[i])
		}
	}
	return fmt.Sprintf("line %d: output lengths differ (got %d lines, want %d)", n+1, len(gotLines), len(wantLines))
}

// TestWriteExperimentsIsWorkerCountInvariant re-renders a cheap subset
// at several pool sizes and demands byte-identical output — the
// property the golden snapshot relies on to be stable in CI.
func TestWriteExperimentsIsWorkerCountInvariant(t *testing.T) {
	ids := []string{"table1", "fig5", "fig10"}
	if testing.Short() {
		ids = []string{"fig5"}
	}
	var runners []experiments.Runner
	for _, id := range ids {
		r, ok := experiments.ByID(id)
		if !ok {
			t.Fatalf("unknown experiment %q", id)
		}
		runners = append(runners, r)
	}
	render := func(workers int) []byte {
		var buf bytes.Buffer
		if _, err := writeExperiments(&buf, runners, 7, workers); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	want := render(1)
	for _, workers := range []int{2, 8} {
		if !bytes.Equal(render(workers), want) {
			t.Fatalf("-parallel %d changed rendered output", workers)
		}
	}
}
