package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"repro/internal/experiments"
	"repro/internal/obs"
)

// TestTracedAllMatchesGolden is the tracing-neutrality guarantee: the
// primary stdout of `repro -exp all` with the sim-plane trace recorder
// attached must match the same committed snapshot the untraced golden
// test pins — byte for byte. Tracing draws no randomness and schedules
// no events, so turning it on cannot move a single digit.
func TestTracedAllMatchesGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("full evaluation in -short mode")
	}
	runners := experiments.All()
	col := obs.NewCollector()
	var buf bytes.Buffer
	printed, err := writeExperimentsObserved(&buf, runners, 42, runtime.GOMAXPROCS(0), col, nil)
	if err != nil {
		t.Fatal(err)
	}
	if printed != len(runners) {
		t.Fatalf("rendered %d experiments, want %d", printed, len(runners))
	}
	want, err := os.ReadFile(filepath.Join("testdata", "all.golden"))
	if err != nil {
		t.Fatalf("missing golden snapshot (generate with -update): %v", err)
	}
	if got := buf.Bytes(); !bytes.Equal(got, want) {
		t.Fatalf("tracing perturbed the primary output:\n%s", firstDivergence(got, want))
	}
	if col.Len() == 0 {
		t.Fatal("traced run recorded no events")
	}
}

// traceFig2 runs the fig2 campaign traced at the given worker count
// and returns the collector's NDJSON stream.
func traceFig2(t *testing.T, parallel int) []byte {
	t.Helper()
	r, ok := experiments.ByID("fig2")
	if !ok {
		t.Fatal("fig2 experiment not registered")
	}
	col := obs.NewCollector()
	if _, err := writeExperimentsObserved(io.Discard, []experiments.Runner{r}, 42, parallel, col, nil); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := col.WriteNDJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestTraceGoldenDeterministic pins the trace stream itself: fig2's
// sim-plane trace (seed 42) must be byte-identical at -parallel 1 and
// -parallel 8, and must match its committed golden. Regenerate with
// -update after an intentional event-vocabulary change.
func TestTraceGoldenDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("full fig2 campaign in -short mode")
	}
	seq := traceFig2(t, 1)
	par := traceFig2(t, 8)
	if !bytes.Equal(seq, par) {
		t.Fatalf("trace depends on worker count:\n%s", firstDivergence(par, seq))
	}
	if len(seq) == 0 {
		t.Fatal("fig2 trace is empty")
	}

	golden := filepath.Join("testdata", "trace_fig2.golden")
	if *update {
		if err := os.WriteFile(golden, seq, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", golden, len(seq))
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden snapshot (generate with -update): %v", err)
	}
	if !bytes.Equal(seq, want) {
		t.Fatalf("fig2 trace drifted from the committed snapshot:\n%s\nif the change is intentional, regenerate with -update and review the diff",
			firstDivergence(seq, want))
	}
}

// TestTimingCollectorReport covers the -timing-out artifact shape: one
// row per unit, experiment-major order, totals consistent.
func TestTimingCollectorReport(t *testing.T) {
	r, ok := experiments.ByID("fig5")
	if !ok {
		t.Fatal("fig5 experiment not registered")
	}
	if testing.Short() {
		t.Skip("campaign run in -short mode")
	}
	timings := newTimingCollector([]experiments.Runner{r}, 2)
	if _, err := writeExperimentsObserved(io.Discard, []experiments.Runner{r}, 42, 2, nil, timings); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "timing.json")
	if err := timings.writeFile(path, 1.0); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(raw, []byte(`"experiment": "fig5"`)) || !bytes.Contains(raw, []byte(`"per_unit"`)) {
		t.Fatalf("timing artifact missing expected fields:\n%s", raw)
	}
}
