// Command revstudy runs the paper's twelve-day revocation measurement
// campaign (§V) on the simulated cloud and writes the raw records as
// CSV — the analogue of the paper's published dataset.
//
// Example:
//
//	revstudy -out revocations.csv -startup startup.csv -seed 7
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cloud"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		out        = flag.String("out", "revocations.csv", "revocation records CSV path")
		startupOut = flag.String("startup", "", "optional startup-study CSV path")
		days       = flag.Int("days", 12, "campaign days (paper: 12)")
		seed       = flag.Int64("seed", 7, "random seed")
	)
	flag.Parse()

	k := &sim.Kernel{}
	provider := cloud.NewProvider(k, stats.NewRng(*seed))
	study, err := trace.RunRevocationStudy(k, provider, trace.PaperCampaign(), *days)
	if err != nil {
		fmt.Fprintf(os.Stderr, "revstudy: %v\n", err)
		return 1
	}

	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintf(os.Stderr, "revstudy: %v\n", err)
		return 1
	}
	if err := study.WriteRecordsCSV(f); err != nil {
		f.Close()
		fmt.Fprintf(os.Stderr, "revstudy: %v\n", err)
		return 1
	}
	if err := f.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "revstudy: %v\n", err)
		return 1
	}
	fmt.Printf("wrote %d records to %s\n\n", len(study.Records), *out)

	// Print the Table V summary.
	fmt.Printf("%-14s %-6s %9s %8s %9s\n", "region", "GPU", "launched", "revoked", "fraction")
	for _, c := range study.TableV() {
		fmt.Printf("%-14s %-6s %9d %8d %8.2f%%\n",
			c.Region, c.GPU, c.Launched, c.Revoked, 100*c.Fraction())
	}
	totals := study.Totals()
	for _, g := range model.AllGPUs() {
		t := totals[g]
		fmt.Printf("total %-8s %9d %8d %8.2f%%\n", g, t.Launched, t.Revoked, 100*t.Fraction())
	}

	if *startupOut != "" {
		k2 := &sim.Kernel{}
		p2 := cloud.NewProvider(k2, stats.NewRng(*seed+1))
		sums, err := trace.RunStartupStudy(k2, p2,
			[]model.GPU{model.K80, model.P100},
			[]cloud.Tier{cloud.Transient, cloud.OnDemand},
			[]cloud.Region{cloud.USEast1, cloud.USWest1}, 30)
		if err != nil {
			fmt.Fprintf(os.Stderr, "revstudy: startup study: %v\n", err)
			return 1
		}
		sf, err := os.Create(*startupOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "revstudy: %v\n", err)
			return 1
		}
		if err := trace.WriteStartupCSV(sf, sums); err != nil {
			sf.Close()
			fmt.Fprintf(os.Stderr, "revstudy: %v\n", err)
			return 1
		}
		if err := sf.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "revstudy: %v\n", err)
			return 1
		}
		fmt.Printf("\nwrote startup study to %s\n", *startupOut)
	}
	return 0
}
