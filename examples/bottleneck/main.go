// Bottleneck detection and mitigation: the paper's §VI-B use case.
// CM-DARE compares the theoretically predicted cluster speed (Σ of
// per-worker speeds) with the online measurement; a deviation beyond
// 6.7% after a 30-second warm-up flags a parameter-server bottleneck,
// and adding a second parameter server (at the cost of a ≈10 s
// session restart) lifts it.
//
//	go run ./examples/bottleneck
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/train"
)

func main() {
	resnet32 := model.ResNet32()
	const workers = 8

	fmt.Println("== §VI-B: detecting and mitigating a parameter-server bottleneck ==")
	predicted := float64(workers) * model.StepsPerSecond(model.P100, resnet32)
	fmt.Printf("cluster: %d × P100 training %s; predicted speed Σspᵢ = %.1f steps/s\n",
		workers, resnet32.Name, predicted)

	// Run with one parameter server and let the detector judge.
	run1 := measure(resnet32, workers, 1)
	detector := core.NewDetector()
	verdict, err := detector.Check(predicted, run1.SpeedSeries)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n1 PS: measured %.1f steps/s — deviation %.1f%% (threshold %.1f%%)\n",
		verdict.MeasuredSpeed, verdict.Deviation*100, detector.Threshold*100)
	if !verdict.Bottlenecked {
		fmt.Println("no bottleneck flagged; nothing to mitigate")
		return
	}
	fmt.Println("bottleneck FLAGGED → mitigation: restart session with 2 parameter servers")
	fmt.Printf("(session restart costs ≈%.0f s, §VI-B)\n", train.SessionRestartSeconds())

	run2 := measure(resnet32, workers, 2)
	verdict2, err := detector.Check(predicted, run2.SpeedSeries)
	if err != nil {
		log.Fatal(err)
	}
	gain := (verdict2.MeasuredSpeed - verdict.MeasuredSpeed) / verdict.MeasuredSpeed * 100
	fmt.Printf("\n2 PS: measured %.1f steps/s — %.1f%% faster (paper: up to 70.6%%)\n",
		verdict2.MeasuredSpeed, gain)
	if verdict2.Bottlenecked {
		fmt.Printf("still %.1f%% below prediction — consider a third shard\n", verdict2.Deviation*100)
	} else {
		fmt.Println("within threshold of the theoretical speed: bottleneck resolved")
	}
}

func measure(m model.Model, workers, ps int) train.Result {
	k := &sim.Kernel{}
	c, err := train.NewCluster(k, train.Config{
		Model:            m,
		Workers:          train.Homogeneous(model.P100, workers),
		ParameterServers: ps,
		TargetSteps:      12000,
		Seed:             int64(ps),
	})
	if err != nil {
		log.Fatal(err)
	}
	c.Start()
	k.Run()
	return c.Result()
}
