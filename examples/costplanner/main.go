// Cost planner: the configuration problem the paper's introduction
// motivates — choosing server type, count, and tier for a training
// workload while trading off time, cost, and revocation risk — now
// phrased as a thin client of the planner service's HTTP API.
//
// The example scans the candidate space with fast analytic Eq. 4/5
// estimates (POST /v1/estimate), prints the time/cost frontier, then
// validates the cheapest plan that makes the deadline with three
// replicated measured sessions (POST /v1/measure, distinct seeds).
// Identical follow-up queries are answered from the daemon's cache —
// the closing /v1/stats line shows the hit counters.
//
// By default the example starts an in-process planner server on a
// loopback port; point -addr at a running `pland` to use a shared
// daemon instead:
//
//	go run ./examples/costplanner [-parallel 8] [-addr host:port]
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"runtime"
	"sort"

	"repro/internal/model"
	"repro/internal/planner"
)

func main() {
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0), "worker pool size for the in-process planner")
	seed := flag.Int64("seed", 5, "base seed for the validation measurements")
	addr := flag.String("addr", "", "address of a running pland (default: in-process server)")
	flag.Parse()
	const (
		nw       = 128000 // training steps
		ic       = 4000   // checkpoint interval
		deadline = 12.0   // hours
	)
	workload := model.ShakeShakeSmall()

	base := *addr
	if base == "" {
		// No daemon given: serve the same API in-process and talk to
		// it over loopback, so this example exercises exactly the wire
		// path a remote client would.
		p := planner.New(planner.Config{Workers: *parallel})
		defer p.Close()
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		srv := &http.Server{Handler: p.Handler()}
		go srv.Serve(lis)
		defer srv.Close()
		base = lis.Addr().String()
	}

	type candidate struct {
		query planner.ScenarioQuery
		est   planner.EstimateResult
	}
	var candidates []candidate
	for _, gpu := range model.AllGPUs() {
		for _, n := range []int{1, 2, 4, 8} {
			for _, tier := range []string{"transient", "on-demand"} {
				q := planner.ScenarioQuery{
					Model:              workload.Name,
					GPU:                gpu.String(),
					Region:             "us-central1", // offers all three GPU types
					Tier:               tier,
					Workers:            n,
					TargetSteps:        nw,
					CheckpointInterval: ic,
				}
				var est planner.EstimateResult
				post(base, "/v1/estimate", q, &est)
				candidates = append(candidates, candidate{query: q, est: est})
			}
		}
	}

	sort.Slice(candidates, func(i, j int) bool {
		return candidates[i].est.CostUSD < candidates[j].est.CostUSD
	})
	fmt.Printf("== cost planner: %s, Nw=%d, Ic=%d (us-central1, via %s) ==\n\n", workload.Name, nw, ic, base)
	fmt.Printf("%-24s %10s %10s %8s %10s\n", "cluster", "time (h)", "cost ($)", "Nr", "$/1k steps")
	for _, c := range candidates {
		fmt.Printf("%-24s %10.2f %10.2f %8.2f %10.3f\n",
			c.est.Scenario, c.est.TotalHours, c.est.CostUSD,
			c.est.ExpectedRevocations, c.est.CostPer1kSteps)
	}

	// Cheapest plan that makes the deadline, validated by measurement:
	// three replicated managed sessions under distinct seeds, all
	// dispatched to the daemon's shared pool.
	for _, c := range candidates {
		if c.est.TotalHours > deadline {
			continue
		}
		fmt.Printf("\ncheapest plan under %.0f h: %s — %.2f h, $%.2f (≈%.2f expected revocations)\n",
			deadline, c.est.Scenario, c.est.TotalHours, c.est.CostUSD, c.est.ExpectedRevocations)
		const replications = 3
		fmt.Printf("\nvalidating %s with %d measured sessions:\n", c.est.Scenario, replications)
		var hours, cost float64
		var revoked int
		for r := 0; r < replications; r++ {
			q := c.query
			q.Seed = *seed + int64(r)
			var out planner.Outcome
			post(base, "/v1/measure", q, &out)
			fmt.Printf("  session %d: %.2f h, $%.2f, %d revocations\n",
				r+1, out.TrainingHours, out.CostUSD, out.Revocations)
			hours += out.TrainingHours
			cost += out.CostUSD
			revoked += out.Revocations
		}
		fmt.Printf("  mean: %.2f h, $%.2f (%d revocations across %d sessions) — predicted %.2f h, $%.2f\n",
			hours/replications, cost/replications, revoked, replications, c.est.TotalHours, c.est.CostUSD)

		var st planner.Stats
		get(base, "/v1/stats", &st)
		fmt.Printf("\nplanner stats: %d misses, %d hits, %d coalesced (repeat this run to watch hits climb)\n",
			st.Misses, st.Hits, st.Coalesced)
		return
	}
	fmt.Printf("\nno candidate meets the %.0f h deadline\n", deadline)
}

// post sends one JSON query to the planner API and decodes the reply.
func post(base, path string, in, out any) {
	body, err := json.Marshal(in)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post("http://"+base+path, "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var msg bytes.Buffer
		msg.ReadFrom(resp.Body)
		log.Fatalf("%s: %s: %s", path, resp.Status, bytes.TrimSpace(msg.Bytes()))
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		log.Fatal(err)
	}
}

func get(base, path string, out any) {
	resp, err := http.Get("http://" + base + path)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		log.Fatal(err)
	}
}
