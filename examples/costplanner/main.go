// Cost planner: the configuration problem the paper's introduction
// motivates — choosing server type, count, and tier for a training
// workload while trading off time, cost, and revocation risk. This
// example sweeps candidate clusters, estimates each with Eqs. 4–5
// (compute + checkpoint + revocation recovery), prints the time/cost
// frontier, then validates the chosen plan by measurement: replicated
// managed sessions of the winning configuration run concurrently on
// the campaign engine.
//
//	go run ./examples/costplanner [-parallel 8]
package main

import (
	"flag"
	"fmt"
	"log"
	"runtime"
	"sort"

	"repro/internal/campaign"
	"repro/internal/cloud"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/train"
)

func main() {
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0), "worker pool size for the validation campaign")
	seed := flag.Int64("seed", 5, "random seed for the validation campaign")
	flag.Parse()
	const (
		nw = 128000 // training steps
		ic = 4000   // checkpoint interval
	)
	workload := model.ShakeShakeSmall()

	predictor, err := buildPredictor(workload)
	if err != nil {
		log.Fatal(err)
	}

	type candidate struct {
		label string
		plan  core.Plan
		est   core.Estimate
	}
	var candidates []candidate
	for _, gpu := range model.AllGPUs() {
		for _, n := range []int{1, 2, 4, 8} {
			for _, transient := range []bool{true, false} {
				region := cloud.USCentral1 // offers all three GPU types
				workers := make([]core.Placement, n)
				for i := range workers {
					workers[i] = core.Placement{GPU: gpu, Region: region.String(), Transient: transient}
				}
				plan := core.Plan{
					Model:              workload,
					Workers:            workers,
					TargetSteps:        nw,
					CheckpointInterval: ic,
				}
				est, err := predictor.Estimate(plan)
				if err != nil {
					log.Fatal(err)
				}
				tier := "on-demand"
				if transient {
					tier = "transient"
				}
				candidates = append(candidates, candidate{
					label: fmt.Sprintf("%d × %s %s", n, gpu, tier),
					plan:  plan,
					est:   est,
				})
			}
		}
	}

	sort.Slice(candidates, func(i, j int) bool {
		return candidates[i].est.CostUSD < candidates[j].est.CostUSD
	})
	fmt.Printf("== cost planner: %s, Nw=%d, Ic=%d (us-central1) ==\n\n", workload.Name, nw, ic)
	fmt.Printf("%-24s %10s %10s %8s %8s\n", "cluster", "time (h)", "cost ($)", "Nr", "$/1k steps")
	for _, c := range candidates {
		fmt.Printf("%-24s %10.2f %10.2f %8.2f %10.3f\n",
			c.label, c.est.TotalSeconds/3600, c.est.CostUSD,
			c.est.ExpectedRevocations, c.est.CostUSD/(nw/1000))
	}

	// Cheapest plan that makes a 12-hour deadline.
	const deadlineHours = 12.0
	for _, c := range candidates {
		if c.est.TotalSeconds/3600 <= deadlineHours {
			fmt.Printf("\ncheapest plan under %.0f h: %s — %.2f h, $%.2f (≈%.2f expected revocations)\n",
				deadlineHours, c.label, c.est.TotalSeconds/3600, c.est.CostUSD, c.est.ExpectedRevocations)
			validate(c.label, c.plan, c.est, *parallel, *seed)
			return
		}
	}
	fmt.Printf("\nno candidate meets the %.0f h deadline\n", deadlineHours)
}

// validate measures the winning plan with replicated managed sessions,
// scheduled concurrently by the campaign engine, and reports measured
// time and cost against the Eq. 4/5 estimate.
func validate(label string, plan core.Plan, est core.Estimate, parallel int, seed int64) {
	const replications = 3
	w := plan.Workers[0]
	region, err := cloud.ParseRegion(w.Region)
	if err != nil {
		log.Fatal(err)
	}
	tier := cloud.OnDemand
	if w.Transient {
		tier = cloud.Transient
	}
	scenario := experiments.Scenario{
		Model:   plan.Model,
		GPU:     w.GPU,
		Region:  region,
		Tier:    tier,
		Workers: len(plan.Workers),
	}
	cp := &campaign.Plan{Seed: seed}
	for i := 0; i < replications; i++ {
		cp.Units = append(cp.Units, campaign.Unit{
			Key: fmt.Sprintf("validate/%d", i),
			Run: func(unitSeed int64) (any, error) {
				return experiments.MeasureScenario(scenario, plan.TargetSteps, plan.CheckpointInterval, experiments.SessionOptions{}, unitSeed)
			},
		})
	}
	v, err := campaign.Engine{Workers: parallel}.Run(cp)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nvalidating %s with %d measured sessions:\n", label, replications)
	var hours, cost float64
	var revoked int
	for i, o := range v.([]any) {
		out := o.(experiments.ScenarioOutcome)
		fmt.Printf("  session %d: %.2f h, $%.2f, %d revocations\n",
			i+1, out.TrainingSeconds/3600, out.CostUSD, out.Revocations)
		hours += out.TrainingSeconds / 3600
		cost += out.CostUSD
		revoked += out.Revocations
	}
	hours /= replications
	cost /= replications
	fmt.Printf("  mean: %.2f h, $%.2f (%d revocations across %d sessions) — predicted %.2f h, $%.2f\n",
		hours, cost, revoked, replications, est.TotalSeconds/3600, est.CostUSD)
}

// buildPredictor assembles Eq. 4/5 inputs: per-GPU speed models, a
// checkpoint model, and revocation CDFs measured from the simulated
// cloud.
func buildPredictor(workload model.Model) (*core.Predictor, error) {
	var speedObs []core.SpeedObservation
	for _, g := range model.AllGPUs() {
		for _, m := range model.Zoo() {
			speedObs = append(speedObs, core.SpeedObservation{
				GPU: g, GFLOPs: m.GFLOPs, StepSeconds: model.StepTimeModel(g, m),
			})
		}
	}
	speed, err := core.FitSpeedModel(speedObs, core.KindSVRRBF)
	if err != nil {
		return nil, err
	}

	rng := stats.NewRng(3)
	var ckptObs []core.CheckpointObservation
	for _, m := range model.Zoo() {
		for i := 0; i < 5; i++ {
			ckptObs = append(ckptObs, core.CheckpointObservation{
				DataBytes:  m.CkptDataBytes,
				MetaBytes:  m.CkptMetaBytes,
				IndexBytes: m.CkptIndexBytes,
				Seconds:    rng.LogNormal(train.CheckpointSeconds(m), 0.04),
			})
		}
	}
	ckpt, err := core.FitCheckpointModel(ckptObs, core.FeatTotalSize, core.KindSVRRBF)
	if err != nil {
		return nil, err
	}

	rev := core.NewRevocationEstimator()
	for _, g := range model.AllGPUs() {
		k := &sim.Kernel{}
		p := cloud.NewProvider(k, stats.NewRng(int64(g)*11))
		for i := 0; i < 300; i++ {
			g := g
			// Stagger launches across the day so time-of-day hazard
			// structure (Fig. 9) is sampled evenly.
			k.At(sim.Time(float64(i%24)*3600), func() {
				p.MustLaunch(cloud.Request{Region: cloud.USCentral1, GPU: g, Tier: cloud.Transient})
			})
		}
		k.Run()
		var lifetimes []float64
		for _, in := range p.Instances() {
			lifetimes = append(lifetimes, in.LifetimeSeconds(k.Now())/3600)
		}
		if err := rev.SetLifetimes(cloud.USCentral1.String(), g, lifetimes); err != nil {
			return nil, err
		}
	}

	return &core.Predictor{
		Speed:              speed,
		Checkpoint:         ckpt,
		Revocation:         rev,
		ProvisionSeconds:   70,
		ReplacementSeconds: train.ReplacementSeconds(workload, true),
	}, nil
}
