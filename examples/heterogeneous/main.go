// Heterogeneous clusters: the paper's §VI-A use case. Cluster speed
// is the sum of individual worker speeds, so per-GPU models compose
// into predictions for clusters mixing K80, P100, and V100 workers —
// this example fits per-GPU speed models from measurements, predicts
// several mixed clusters, and validates each against the simulator.
//
//	go run ./examples/heterogeneous
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/train"
)

func main() {
	// Fit per-GPU speed models from "measured" step times across the
	// zoo (the measurement step the paper's offline phase performs).
	var obs []core.SpeedObservation
	for _, g := range model.AllGPUs() {
		for _, m := range model.Zoo() {
			mean, err := measureStepTime(g, m)
			if err != nil {
				log.Fatal(err)
			}
			obs = append(obs, core.SpeedObservation{GPU: g, GFLOPs: m.GFLOPs, StepSeconds: mean})
		}
	}
	speed, err := core.FitSpeedModel(obs, core.KindSVRRBF)
	if err != nil {
		log.Fatal(err)
	}

	resnet32 := model.ResNet32()
	fmt.Println("== heterogeneous cluster speed: predicted (Σ workers) vs simulated ==")
	fmt.Printf("%-22s %10s %10s %8s\n", "cluster (K80,P100,V100)", "predicted", "simulated", "error")
	for _, mix := range [][3]int{{2, 1, 1}, {4, 0, 0}, {1, 2, 0}, {0, 2, 2}, {3, 2, 1}} {
		workers := train.Mixed(mix[0], mix[1], mix[2])
		gpus := make([]model.GPU, len(workers))
		for i, w := range workers {
			gpus[i] = w.GPU
		}
		predicted, err := speed.ClusterSpeed(gpus, resnet32.GFLOPs)
		if err != nil {
			log.Fatal(err)
		}
		simulated, err := simulateClusterSpeed(resnet32, workers)
		if err != nil {
			log.Fatal(err)
		}
		errPct := (predicted - simulated) / simulated * 100
		fmt.Printf("(%d,%d,%d)%15s %7.2f/s %7.2f/s %+7.2f%%\n",
			mix[0], mix[1], mix[2], "", predicted, simulated, errPct)
	}
	fmt.Println("\nper-worker speeds stay at baseline in mixed clusters (Table III),")
	fmt.Println("so sp = Σ spᵢ composes — until the parameter server saturates.")
}

// measureStepTime runs the paper's single-worker measurement.
func measureStepTime(g model.GPU, m model.Model) (float64, error) {
	k := &sim.Kernel{}
	c, err := train.NewCluster(k, train.Config{
		Model:       m,
		Workers:     train.Homogeneous(g, 1),
		TargetSteps: 1200,
		Seed:        int64(g)*100 + int64(m.GFLOPs*10),
	})
	if err != nil {
		return 0, err
	}
	c.Start()
	k.Run()
	ws, err := c.Result().WorkerStatByGPU(g)
	if err != nil {
		return 0, err
	}
	return ws.MeanStepTime, nil
}

// simulateClusterSpeed measures the steady cluster speed of a mixed
// cluster.
func simulateClusterSpeed(m model.Model, workers []train.WorkerSpec) (float64, error) {
	k := &sim.Kernel{}
	c, err := train.NewCluster(k, train.Config{
		Model:       m,
		Workers:     workers,
		TargetSteps: 4000,
		Seed:        7,
	})
	if err != nil {
		return 0, err
	}
	c.Start()
	k.Run()
	return c.Result().SteadySpeed, nil
}
