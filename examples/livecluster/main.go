// Live cluster: real asynchronous parameter-server training over TCP
// on your machine — two parameter-server shards, three workers doing
// real gradient descent on a synthetic dataset, checkpoint files on
// disk, a chief revocation, and CM-DARE's checkpoint-duty takeover.
//
//	go run ./examples/livecluster
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/live"
	"repro/internal/storage"
)

func main() {
	const (
		classes  = 10
		features = 16
	)
	total := classes * (features + 1)

	ckptDir, err := os.MkdirTemp("", "cmdare-live-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(ckptDir)

	// Two parameter-server shards splitting the parameter vector.
	half := total / 2
	ps1, err := live.NewParameterServer("127.0.0.1:0", half, 0.1)
	if err != nil {
		log.Fatal(err)
	}
	defer ps1.Close()
	ps2, err := live.NewParameterServer("127.0.0.1:0", total-half, 0.1)
	if err != nil {
		log.Fatal(err)
	}
	defer ps2.Close()

	ctrl, err := live.NewController("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer ctrl.Close()

	var workers []*live.Worker
	for i := 0; i < 3; i++ {
		w, err := live.NewWorker(live.WorkerConfig{
			Name:               fmt.Sprintf("worker-%d", i),
			PSAddrs:            []string{ps1.Addr(), ps2.Addr()},
			ControllerAddr:     ctrl.Addr(),
			Chief:              i == 0,
			Classes:            classes,
			Features:           features,
			BatchSize:          32,
			DataSeed:           int64(100 + i),
			CheckpointInterval: 200,
			CheckpointDir:      ckptDir,
		})
		if err != nil {
			log.Fatal(err)
		}
		workers = append(workers, w)
		w.Start()
	}
	fmt.Println("== live async parameter-server training (TCP, real gradients) ==")
	fmt.Printf("2 PS shards (%d + %d params), 3 workers, chief checkpoints every 200 steps\n",
		half, total-half)

	// Let training make progress and checkpoints land.
	waitUntil(30*time.Second, func() bool { return workers[0].Checkpoints() >= 2 })
	fmt.Printf("\nafter warm-up: global step %d, chief wrote %d checkpoints, loss %.4f\n",
		workers[0].GlobalStep(), workers[0].Checkpoints(), workers[0].LastLoss())

	// Revoke the chief: the shutdown hook notifies the controller,
	// which promotes a survivor (paper §II, steps 6–9).
	fmt.Println("revoking the chief worker…")
	if err := workers[0].Revoke(); err != nil {
		log.Fatal(err)
	}
	waitUntil(10*time.Second, func() bool { return ctrl.Takeovers() == 1 })
	fmt.Printf("controller promoted %s to chief\n", ctrl.Chief())

	// The new chief keeps checkpointing; training continues.
	var newChief *live.Worker
	for _, w := range workers[1:] {
		if w.IsChief() {
			newChief = w
		}
	}
	waitUntil(30*time.Second, func() bool { return newChief.Checkpoints() >= 1 })

	for _, w := range workers[1:] {
		w.Stop()
		if err := w.Err(); err != nil {
			log.Fatalf("%s: %v", w.Name(), err)
		}
	}
	acc, err := workers[1].EvalAccuracy(500)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntraining survived the revocation: global step %d, accuracy %.3f\n",
		workers[1].GlobalStep(), acc)

	store, err := storage.NewStore(ckptDir)
	if err != nil {
		log.Fatal(err)
	}
	step, ok, err := store.Latest()
	if err != nil || !ok {
		log.Fatal("no checkpoint found")
	}
	data, index, meta, err := store.FileSizes(step)
	if err != nil {
		log.Fatal(err)
	}
	_, m, err := store.Load(step)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("latest checkpoint: step %d by %s (data/index/meta = %d/%d/%d bytes)\n",
		step, m.Chief, data, index, meta)
}

func waitUntil(timeout time.Duration, cond func() bool) {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	log.Fatal("timed out waiting for cluster progress")
}
