// Quickstart: train ResNet-32 on a transient GPU cluster in the
// simulated cloud, then compare the measured training time against
// CM-DARE's Eq. 4/5 prediction.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/cloud"
	"repro/internal/manager"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/stats"
)

func main() {
	// A simulation kernel and a cloud provider on top of it.
	k := &sim.Kernel{}
	provider := cloud.NewProvider(k, stats.NewRng(42))

	// Four transient K80 workers in us-central1, one on-demand
	// parameter server; checkpoint every 4000 steps; replace revoked
	// workers immediately.
	resnet32 := model.ResNet32()
	session, err := manager.NewSession(provider, manager.Config{
		Model: resnet32,
		Workers: []manager.Placement{
			{GPU: model.K80, Region: cloud.USCentral1, Tier: cloud.Transient},
			{GPU: model.K80, Region: cloud.USCentral1, Tier: cloud.Transient},
			{GPU: model.K80, Region: cloud.USCentral1, Tier: cloud.Transient},
			{GPU: model.K80, Region: cloud.USCentral1, Tier: cloud.Transient},
		},
		TargetSteps:        64000,
		CheckpointInterval: 4000,
		Replacement:        manager.ReplaceImmediate,
		Seed:               1,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Run the virtual clock until training completes (bounded at 24 h
	// of virtual time).
	k.RunUntil(sim.Time(24 * 3600))
	if !session.Done() {
		log.Fatalf("training incomplete at step %d", session.Cluster().GlobalStep())
	}
	session.TerminateAll()

	res := session.Cluster().Result()
	fmt.Println("== quickstart: 64K steps of ResNet-32 on 4 × transient K80 ==")
	fmt.Printf("training time:   %.0f s (%.2f h)\n", session.TrainingSeconds(), session.TrainingSeconds()/3600)
	fmt.Printf("steady speed:    %.2f steps/s (1 worker would do %.2f)\n",
		res.SteadySpeed, model.StepsPerSecond(model.K80, resnet32))
	fmt.Printf("checkpoints:     %d (%.0f s of fault-tolerance overhead)\n",
		res.CheckpointCount, res.CheckpointSeconds)
	fmt.Printf("revocations:     %d absorbed, %d replacements requested\n",
		session.Revocations(), session.Replacements())
	fmt.Printf("total cost:      $%.2f (on-demand would cost ≈$%.2f for the GPUs alone)\n",
		session.Cost(),
		4*model.HourlyPrice(model.K80, false)*session.TrainingSeconds()/3600)
}
