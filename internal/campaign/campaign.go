// Package campaign schedules measurement campaigns: batches of
// independent simulation units executed on a worker pool and
// aggregated deterministically.
//
// The sim kernel is single-threaded by design; determinism there comes
// from one event loop consuming one seeded RNG. This package scales
// that model out the same way CM-DARE ran its own measurement campaign
// across GPU types and regions: every independent replication gets its
// own kernel and its own seed, derived SplitMix-style from the
// campaign seed and the unit's position in the plan. Because a unit's
// seed depends only on (campaign seed, unit index) — never on
// scheduling order — and because outputs are collected by index before
// any aggregation runs, a campaign's result is byte-identical whether
// it ran on one worker or sixteen.
package campaign

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Unit is one independent replication: typically a single simulated
// session or measurement study on a fresh kernel. Run receives the
// unit's derived seed and must not share mutable state with other
// units.
type Unit struct {
	// Key labels the unit in errors, e.g. "speed/K80/ResNet-32".
	Key string
	// Run executes the replication with the derived seed.
	Run func(seed int64) (any, error)
}

// Plan is a declared campaign: a base seed, an ordered list of
// independent units, and a reduce that assembles the final value from
// the unit outputs (outs[i] is Units[i]'s output). Reduce runs only
// after every unit succeeded; it sees outputs in declaration order
// regardless of completion order.
type Plan struct {
	Seed   int64
	Units  []Unit
	Reduce func(outs []any) (any, error)
}

// UnitError reports which unit of a plan failed.
type UnitError struct {
	Key   string
	Index int
	Err   error
}

func (e *UnitError) Error() string {
	return fmt.Sprintf("unit %d (%s): %v", e.Index, e.Key, e.Err)
}

func (e *UnitError) Unwrap() error { return e.Err }

// Outcome is one plan's result in a batch run.
type Outcome struct {
	Value any
	Err   error
}

// Engine runs plans on a pool of Workers goroutines. The zero value
// (or any Workers ≤ 0) uses GOMAXPROCS.
type Engine struct {
	Workers int
}

// Run executes a single plan and returns its reduced value.
func (e Engine) Run(p *Plan) (any, error) {
	o := e.RunAll([]*Plan{p})[0]
	return o.Value, o.Err
}

// RunAll executes several plans on one shared worker pool, so the tail
// of one experiment overlaps the head of the next. Each plan's unit
// seeds are derived from its own Seed exactly as in Run, and each plan
// reduces over its own index-ordered outputs, so per-plan results are
// identical to running the plans one at a time.
func (e Engine) RunAll(plans []*Plan) []Outcome {
	results := make([]Outcome, len(plans))
	e.RunEach(plans, func(i int, o Outcome) bool {
		results[i] = o
		return true
	})
	return results
}

// RunEach is RunAll with streaming delivery: done is invoked once per
// plan, in declaration order, as soon as that plan and every earlier
// one have finished — so a caller can print experiment results while
// later campaigns are still running. Returning false from done stops
// the batch: units not yet started are skipped (in-flight units
// finish) and no further callbacks fire. Because delivery order is
// declaration order, the sequence of callbacks before a stop is
// identical for every worker count.
func (e Engine) RunEach(plans []*Plan, done func(i int, o Outcome) bool) {
	type job struct{ plan, unit int }
	var jobs []job
	outs := make([][]any, len(plans))
	errs := make([][]error, len(plans))
	remaining := make([]atomic.Int64, len(plans))
	for pi, p := range plans {
		outs[pi] = make([]any, len(p.Units))
		errs[pi] = make([]error, len(p.Units))
		remaining[pi].Store(int64(len(p.Units)))
		for ui := range p.Units {
			jobs = append(jobs, job{pi, ui})
		}
	}

	workers := e.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}

	// Delivery state lives on this goroutine: plans are handed to done
	// in declaration order as soon as they and every earlier plan have
	// finished. A false return from done latches stop, which skips
	// every unit not yet started.
	var stop atomic.Bool
	completed := make([]bool, len(plans))
	next := 0
	deliver := func(pi int) {
		completed[pi] = true
		for next < len(plans) && completed[next] {
			if !done(next, reduce(plans[next], outs[next], errs[next])) {
				stop.Store(true)
				next = len(plans)
				return
			}
			next++
		}
	}
	// Plans with no units are ready immediately.
	for pi, p := range plans {
		if len(p.Units) == 0 {
			deliver(pi)
		}
	}

	planReady := make(chan int, len(plans))
	run := func(j job) {
		p := plans[j.plan]
		if stop.Load() {
			errs[j.plan][j.unit] = fmt.Errorf("skipped: batch stopped")
		} else {
			u := p.Units[j.unit]
			out, err := runUnit(u, Derive(p.Seed, uint64(j.unit), u.Key))
			outs[j.plan][j.unit] = out
			errs[j.plan][j.unit] = err
		}
		// The worker that retires a plan's last unit announces it; the
		// atomic decrement orders every worker's writes to this plan's
		// slots before the channel send.
		if remaining[j.plan].Add(-1) == 0 {
			planReady <- j.plan
		}
	}

	if workers <= 1 {
		// Sequential mode interleaves execution and delivery on one
		// goroutine, so a stop takes effect before the next unit runs.
		for _, j := range jobs {
			if stop.Load() {
				break
			}
			run(j)
			for drained := false; !drained; {
				select {
				case pi := <-planReady:
					deliver(pi)
				default:
					drained = true
				}
			}
		}
		return
	}

	ch := make(chan job, len(jobs))
	for _, j := range jobs {
		ch <- j
	}
	close(ch)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range ch {
				run(j)
			}
		}()
	}
	// Every plan with units announces exactly once; stop short-circuits
	// the wait for plans that will never be delivered.
	announcing := 0
	for _, p := range plans {
		if len(p.Units) > 0 {
			announcing++
		}
	}
	for n := 0; n < announcing && next < len(plans); n++ {
		deliver(<-planReady)
	}
	wg.Wait()
}

// reduce resolves one plan: the first failed unit in declaration order
// wins (deterministic regardless of which units happened to finish),
// otherwise Reduce assembles the value.
func reduce(p *Plan, outs []any, errs []error) Outcome {
	for i, err := range errs {
		if err != nil {
			return Outcome{Err: &UnitError{Key: p.Units[i].Key, Index: i, Err: err}}
		}
	}
	if p.Reduce == nil {
		return Outcome{Value: outs}
	}
	v, err := p.Reduce(outs)
	return Outcome{Value: v, Err: err}
}

// runUnit executes one unit, converting a panic into an error so a
// logic bug in one replication fails its campaign loudly instead of
// tearing down unrelated ones mid-pool.
func runUnit(u Unit, seed int64) (out any, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panic: %v", r)
		}
	}()
	return u.Run(seed)
}

// Derive maps (campaign seed, unit index, unit key) to the unit's
// seed with a SplitMix64 finalizer. Consecutive indices land in
// uncorrelated streams, and hashing the key keeps distinct
// experiments sharing one campaign seed (cmd/repro -exp all) from
// replaying each other's RNG streams when their grids overlap. The
// result is masked non-negative so downstream seed arithmetic
// (seed+1 idioms) stays in range.
func Derive(seed int64, i uint64, key string) int64 {
	// FNV-1a over the key, folded into the SplitMix stream.
	h := uint64(14695981039346656037)
	for _, b := range []byte(key) {
		h ^= uint64(b)
		h *= 1099511628211
	}
	x := uint64(seed) + (i+1)*0x9E3779B97F4A7C15 + h
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	x ^= x >> 31
	return int64(x &^ (1 << 63))
}
