// Package campaign schedules measurement campaigns: batches of
// independent simulation units executed on a worker pool and
// aggregated deterministically.
//
// The sim kernel is single-threaded by design; determinism there comes
// from one event loop consuming one seeded RNG. This package scales
// that model out the same way CM-DARE ran its own measurement campaign
// across GPU types and regions: every independent replication gets its
// own kernel and its own seed, derived SplitMix-style from the
// campaign seed and the unit's position in the plan. Because a unit's
// seed depends only on (campaign seed, unit index) — never on
// scheduling order — and because outputs are collected by index before
// any aggregation runs, a campaign's result is byte-identical whether
// it ran on one worker or sixteen.
package campaign

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Unit is one independent replication: typically a single simulated
// session or measurement study on a fresh kernel. Run receives the
// unit's derived seed and must not share mutable state with other
// units.
type Unit struct {
	// Key labels the unit in errors, e.g. "speed/K80/ResNet-32".
	Key string
	// Run executes the replication with the derived seed.
	Run func(seed int64) (any, error)
	// RunScratch, when set, runs the replication with a pooled
	// per-worker scratch arena and takes precedence over Run. The
	// arena is exclusively the unit's for the duration of the call;
	// anything borrowed from it must not escape into the unit's output
	// (see Scratch).
	RunScratch func(seed int64, s *Scratch) (any, error)
}

// Plan is a declared campaign: a base seed, an ordered list of
// independent units, and a reduce that assembles the final value from
// the unit outputs (outs[i] is Units[i]'s output). Reduce runs only
// after every unit succeeded; it sees outputs in declaration order
// regardless of completion order.
type Plan struct {
	Seed   int64
	Units  []Unit
	Reduce func(outs []any) (any, error)
}

// UnitError reports which unit of a plan failed.
type UnitError struct {
	Key   string
	Index int
	Err   error
}

func (e *UnitError) Error() string {
	return fmt.Sprintf("unit %d (%s): %v", e.Index, e.Key, e.Err)
}

func (e *UnitError) Unwrap() error { return e.Err }

// Outcome is one plan's result in a batch run.
type Outcome struct {
	Value any
	Err   error
}

// ErrSkipped marks a unit that never ran because its batch stopped
// (done returned false) or its context was canceled. Skipped units are
// bookkeeping, not failures: the aggregated error RunEach returns
// filters them out.
var ErrSkipped = errors.New("campaign: unit skipped")

// Pool is a persistent worker pool with a bounded admission queue,
// shared by any number of Engine calls. The per-call pool Engine spins
// up is right for batch runs (cmd/repro); a long-running service that
// answers many concurrent queries wants one fixed set of workers and
// one queue providing backpressure across all of them — that is Pool.
type Pool struct {
	jobs chan func()
	done chan struct{}
	// mu orders Submit against Close: senders hold it shared for the
	// duration of their send, Close takes it exclusively before
	// closing jobs, so a send on a closed channel is impossible.
	mu        sync.RWMutex
	closed    bool
	closeOnce sync.Once
	wg        sync.WaitGroup

	workers int

	// Utilization accounting, fed by Submit's wrapper: wall-clock only,
	// never visible to any simulation. waitNanos is accept → start
	// (queue wait), busyNanos is start → end (execution).
	jobsRun   atomic.Int64
	waitNanos atomic.Int64
	busyNanos atomic.Int64
}

// PoolStats is a snapshot of the pool's cumulative utilization.
type PoolStats struct {
	// Workers is the fixed worker count; QueueCapacity the admission
	// queue's size; QueueDepth the jobs waiting right now.
	Workers       int
	QueueCapacity int
	QueueDepth    int
	// JobsRun counts completed jobs; WaitSeconds and BusySeconds total
	// their queue wait (accept → start) and execution time.
	JobsRun     int64
	WaitSeconds float64
	BusySeconds float64
}

// ErrPoolClosed reports a Submit on a closed pool.
var ErrPoolClosed = errors.New("campaign: pool closed")

// NewPool starts a pool of workers goroutines fed by a queue holding
// up to queue pending jobs (0 means hand-off only: every Submit waits
// for a free worker). Workers ≤ 0 uses GOMAXPROCS.
func NewPool(workers, queue int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if queue < 0 {
		queue = 0
	}
	p := &Pool{jobs: make(chan func(), queue), done: make(chan struct{}), workers: workers}
	for w := 0; w < workers; w++ {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			for job := range p.jobs {
				job()
			}
		}()
	}
	return p
}

// Submit enqueues one job, blocking while the queue is full. It
// returns the context's error if ctx is done — or ErrPoolClosed if the
// pool closes — before the job is accepted; once accepted, the job
// will run.
func (p *Pool) Submit(ctx context.Context, job func()) error {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed {
		return ErrPoolClosed
	}
	accepted := time.Now()
	wrapped := func() {
		start := time.Now()
		p.waitNanos.Add(start.Sub(accepted).Nanoseconds())
		job()
		p.busyNanos.Add(time.Since(start).Nanoseconds())
		p.jobsRun.Add(1)
	}
	// Fast path: queue has room (or a worker is waiting).
	select {
	case p.jobs <- wrapped:
		return nil
	default:
	}
	select {
	case p.jobs <- wrapped:
		return nil
	case <-ctx.Done():
		return context.Cause(ctx)
	case <-p.done:
		// Close started while we were waiting for queue space.
		return ErrPoolClosed
	}
}

// Stats snapshots the pool's utilization counters. Safe to call from
// any goroutine, including while jobs run.
func (p *Pool) Stats() PoolStats {
	return PoolStats{
		Workers:       p.workers,
		QueueCapacity: cap(p.jobs),
		QueueDepth:    len(p.jobs),
		JobsRun:       p.jobsRun.Load(),
		WaitSeconds:   float64(p.waitNanos.Load()) / 1e9,
		BusySeconds:   float64(p.busyNanos.Load()) / 1e9,
	}
}

// Close stops accepting jobs, waits for in-flight submissions to
// resolve, then drains the queue and joins the workers. A submission
// accepted before Close wins the race still runs.
func (p *Pool) Close() {
	p.closeOnce.Do(func() {
		close(p.done) // unblock submitters waiting on a full queue
		p.mu.Lock()   // waits out every sender holding the shared lock
		p.closed = true
		p.mu.Unlock()
		close(p.jobs)
		p.wg.Wait()
	})
}

// Engine runs plans on a pool of Workers goroutines. The zero value
// (or any Workers ≤ 0) uses GOMAXPROCS. When Pool is set, execution is
// dispatched onto that shared pool instead and Workers is ignored: the
// pool's size bounds concurrency across every engine sharing it.
type Engine struct {
	Workers int
	Pool    *Pool
	// OnUnit, when set, is called after each unit retires with its
	// wall-clock execution time — the per-unit timing feed the bench
	// artifact and future perf work read. It may be called from any
	// worker goroutine and must be safe for concurrent use. Timing is
	// observational only; unit results never depend on it.
	OnUnit func(plan, unit int, key string, seconds float64)
}

// Run executes a single plan and returns its reduced value.
func (e Engine) Run(p *Plan) (any, error) {
	return e.RunContext(context.Background(), p)
}

// RunContext is Run with cancellation: units not yet started when ctx
// is done are skipped and surface as ErrSkipped-wrapped unit errors.
func (e Engine) RunContext(ctx context.Context, p *Plan) (any, error) {
	var out Outcome
	e.RunEachContext(ctx, []*Plan{p}, func(i int, o Outcome) bool {
		out = o
		return true
	})
	return out.Value, out.Err
}

// RunAll executes several plans on one shared worker pool, so the tail
// of one experiment overlaps the head of the next. Each plan's unit
// seeds are derived from its own Seed exactly as in Run, and each plan
// reduces over its own index-ordered outputs, so per-plan results are
// identical to running the plans one at a time.
func (e Engine) RunAll(plans []*Plan) []Outcome {
	results := make([]Outcome, len(plans))
	e.RunEach(plans, func(i int, o Outcome) bool {
		results[i] = o
		return true
	})
	return results
}

// RunEach is RunAll with streaming delivery: done is invoked once per
// plan, in declaration order, as soon as that plan and every earlier
// one have finished — so a caller can print experiment results while
// later campaigns are still running. Returning false from done stops
// the batch: units not yet started are skipped (in-flight units
// finish) and no further callbacks fire. Because delivery order is
// declaration order, the sequence of callbacks before a stop is
// identical for every worker count.
//
// A stop can strand real failures: units already in flight when done
// returned false still finish, and their plans are never delivered.
// Rather than dropping those errors on the floor, RunEach returns them
// aggregated (errors.Join of UnitErrors) once every in-flight unit has
// retired; nil means nothing was lost.
func (e Engine) RunEach(plans []*Plan, done func(i int, o Outcome) bool) error {
	return e.RunEachContext(context.Background(), plans, done)
}

// RunEachContext is RunEach with cancellation. When ctx is done, units
// not yet started are skipped (recorded as ErrSkipped-wrapped errors in
// their plans' outcomes) while in-flight units finish; delivery still
// runs to completion so every plan gets its callback. The returned
// error aggregates the context's cause with any real unit errors whose
// plans were never delivered after a stop.
func (e Engine) RunEachContext(ctx context.Context, plans []*Plan, done func(i int, o Outcome) bool) error {
	type job struct{ plan, unit int }
	var jobs []job
	outs := make([][]any, len(plans))
	errs := make([][]error, len(plans))
	remaining := make([]atomic.Int64, len(plans))
	for pi, p := range plans {
		outs[pi] = make([]any, len(p.Units))
		errs[pi] = make([]error, len(p.Units))
		remaining[pi].Store(int64(len(p.Units)))
		for ui := range p.Units {
			jobs = append(jobs, job{pi, ui})
		}
	}

	workers := e.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}

	// Delivery state lives on this goroutine: plans are handed to done
	// in declaration order as soon as they and every earlier plan have
	// finished. A false return from done latches stop, which skips
	// every unit not yet started.
	var stop atomic.Bool
	completed := make([]bool, len(plans))
	delivered := make([]bool, len(plans))
	next := 0
	deliver := func(pi int) {
		completed[pi] = true
		for next < len(plans) && completed[next] {
			delivered[next] = true
			if !done(next, reduce(plans[next], outs[next], errs[next])) {
				stop.Store(true)
				next = len(plans)
				return
			}
			next++
		}
	}
	// Plans with no units are ready immediately.
	for pi, p := range plans {
		if len(p.Units) == 0 {
			deliver(pi)
		}
	}

	planReady := make(chan int, len(plans))
	run := func(j job) {
		p := plans[j.plan]
		if stop.Load() {
			errs[j.plan][j.unit] = fmt.Errorf("%w: batch stopped", ErrSkipped)
		} else if cause := context.Cause(ctx); cause != nil {
			errs[j.plan][j.unit] = fmt.Errorf("%w: %v", ErrSkipped, cause)
		} else {
			u := p.Units[j.unit]
			start := time.Now()
			out, err := runUnit(u, Derive(p.Seed, uint64(j.unit), u.Key))
			if e.OnUnit != nil {
				e.OnUnit(j.plan, j.unit, u.Key, time.Since(start).Seconds())
			}
			outs[j.plan][j.unit] = out
			errs[j.plan][j.unit] = err
		}
		// The worker that retires a plan's last unit announces it; the
		// atomic decrement orders every worker's writes to this plan's
		// slots before the channel send.
		if remaining[j.plan].Add(-1) == 0 {
			planReady <- j.plan
		}
	}

	// Every plan with units announces exactly once.
	announcing := 0
	for _, p := range plans {
		if len(p.Units) > 0 {
			announcing++
		}
	}

	switch {
	case e.Pool != nil:
		// Shared pool: submissions ride the pool's bounded queue, so a
		// full queue backpressures this call without starving other
		// engines. A submission aborted by ctx retires its unit here.
		for _, j := range jobs {
			j := j
			if err := e.Pool.Submit(ctx, func() { run(j) }); err != nil {
				errs[j.plan][j.unit] = fmt.Errorf("%w: %v", ErrSkipped, err)
				if remaining[j.plan].Add(-1) == 0 {
					planReady <- j.plan
				}
			}
		}
		// Drain every announcement even after a stop: receiving them
		// all is what guarantees in-flight units have retired before
		// the dropped-error scan below.
		for n := 0; n < announcing; n++ {
			deliver(<-planReady)
		}

	case workers <= 1:
		// Sequential mode interleaves execution and delivery on one
		// goroutine, so a stop takes effect before the next unit runs
		// and nothing is ever in flight when it does.
		for _, j := range jobs {
			if stop.Load() {
				break
			}
			run(j)
			for drained := false; !drained; {
				select {
				case pi := <-planReady:
					deliver(pi)
				default:
					drained = true
				}
			}
		}

	default:
		ch := make(chan job, len(jobs))
		for _, j := range jobs {
			ch <- j
		}
		close(ch)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for j := range ch {
					run(j)
				}
			}()
		}
		for n := 0; n < announcing && next < len(plans); n++ {
			deliver(<-planReady)
		}
		// Joining the workers publishes every in-flight unit's error
		// slot before the dropped-error scan.
		wg.Wait()
	}

	// Surface what fail-fast would otherwise lose: real errors from
	// units that finished after the stop, in plans that were never
	// handed to done.
	var droppedErrs []error
	if cause := context.Cause(ctx); cause != nil {
		droppedErrs = append(droppedErrs, cause)
	}
	for pi, p := range plans {
		if delivered[pi] {
			continue
		}
		for ui, err := range errs[pi] {
			if err == nil || errors.Is(err, ErrSkipped) {
				continue
			}
			droppedErrs = append(droppedErrs, &UnitError{Key: p.Units[ui].Key, Index: ui, Err: err})
		}
	}
	return errors.Join(droppedErrs...)
}

// reduce resolves one plan: the first failed unit in declaration order
// wins (deterministic regardless of which units happened to finish),
// otherwise Reduce assembles the value.
func reduce(p *Plan, outs []any, errs []error) Outcome {
	for i, err := range errs {
		if err != nil {
			return Outcome{Err: &UnitError{Key: p.Units[i].Key, Index: i, Err: err}}
		}
	}
	if p.Reduce == nil {
		return Outcome{Value: outs}
	}
	v, err := p.Reduce(outs)
	return Outcome{Value: v, Err: err}
}

// runUnit executes one unit, converting a panic into an error so a
// logic bug in one replication fails its campaign loudly instead of
// tearing down unrelated ones mid-pool.
func runUnit(u Unit, seed int64) (out any, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panic: %v", r)
		}
	}()
	if u.RunScratch != nil {
		s := scratchPool.Get().(*Scratch)
		// Return the arena even when the unit panics: its buffers are
		// reset before reuse, so a half-written arena is harmless.
		defer scratchPool.Put(s)
		s.Reset()
		return u.RunScratch(seed, s)
	}
	return u.Run(seed)
}

// Derive maps (campaign seed, unit index, unit key) to the unit's
// seed with a SplitMix64 finalizer. Consecutive indices land in
// uncorrelated streams, and hashing the key keeps distinct
// experiments sharing one campaign seed (cmd/repro -exp all) from
// replaying each other's RNG streams when their grids overlap. The
// result is masked non-negative so downstream seed arithmetic
// (seed+1 idioms) stays in range.
func Derive(seed int64, i uint64, key string) int64 {
	// FNV-1a over the key, folded into the SplitMix stream.
	h := uint64(14695981039346656037)
	for _, b := range []byte(key) {
		h ^= uint64(b)
		h *= 1099511628211
	}
	x := uint64(seed) + (i+1)*0x9E3779B97F4A7C15 + h
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	x ^= x >> 31
	return int64(x &^ (1 << 63))
}
