package campaign

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
)

// sumPlan builds a plan whose units echo (index, seed) and whose
// reduce concatenates them in order, so any scheduling nondeterminism
// shows up in the reduced string.
func sumPlan(seed int64, n int) *Plan {
	p := &Plan{Seed: seed}
	for i := 0; i < n; i++ {
		i := i
		p.Units = append(p.Units, Unit{
			Key: fmt.Sprintf("unit-%d", i),
			Run: func(s int64) (any, error) {
				return fmt.Sprintf("%d:%d", i, s), nil
			},
		})
	}
	p.Reduce = func(outs []any) (any, error) {
		parts := make([]string, len(outs))
		for i, o := range outs {
			parts[i] = o.(string)
		}
		return strings.Join(parts, "|"), nil
	}
	return p
}

func TestDeriveIsStableAndSpreads(t *testing.T) {
	if Derive(42, 0, "k") != Derive(42, 0, "k") {
		t.Fatal("Derive must be a pure function")
	}
	seen := make(map[int64]bool)
	for i := uint64(0); i < 1000; i++ {
		s := Derive(42, i, "k")
		if s < 0 {
			t.Fatalf("Derive(42, %d) = %d, want non-negative", i, s)
		}
		if seen[s] {
			t.Fatalf("Derive collision at index %d", i)
		}
		seen[s] = true
	}
	if Derive(1, 0, "k") == Derive(2, 0, "k") {
		t.Error("different campaign seeds should derive different unit seeds")
	}
	// Distinct unit keys at the same (seed, index) get distinct
	// streams, so overlapping grids in different experiments do not
	// replay each other.
	if Derive(42, 0, "table1/K80") == Derive(42, 0, "fig2/K80") {
		t.Error("different unit keys should derive different unit seeds")
	}
	// Identical keys share a stream on purpose: experiments that
	// declare the same measurement (the shared speed dataset) reuse
	// consistent draws for the same campaign seed.
	if Derive(42, 3, "speed/K80/ResNet-15") != Derive(42, 3, "speed/K80/ResNet-15") {
		t.Error("equal keys at equal positions must share a stream")
	}
}

func TestRunIdenticalAcrossWorkerCounts(t *testing.T) {
	want, err := Engine{Workers: 1}.Run(sumPlan(7, 100))
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8, 16} {
		got, err := Engine{Workers: workers}.Run(sumPlan(7, 100))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got != want {
			t.Errorf("workers=%d produced different output", workers)
		}
	}
}

func TestRunAllMatchesIndividualRuns(t *testing.T) {
	plans := []*Plan{sumPlan(1, 13), sumPlan(2, 5), sumPlan(3, 31)}
	outcomes := Engine{Workers: 8}.RunAll(plans)
	for i, p := range plans {
		alone, err := Engine{Workers: 1}.Run(sumPlan(p.Seed, len(p.Units)))
		if err != nil {
			t.Fatal(err)
		}
		if outcomes[i].Err != nil {
			t.Fatalf("plan %d: %v", i, outcomes[i].Err)
		}
		if outcomes[i].Value != alone {
			t.Errorf("plan %d differs between RunAll and Run", i)
		}
	}
}

func TestRunEachDeliversInDeclarationOrder(t *testing.T) {
	// Later plans are much cheaper than earlier ones, so completion
	// order inverts declaration order; delivery must not.
	mkPlan := func(seed int64, work int) *Plan {
		p := &Plan{Seed: seed}
		for u := 0; u < 4; u++ {
			p.Units = append(p.Units, Unit{
				Key: fmt.Sprintf("unit-%d", u),
				Run: func(s int64) (any, error) {
					x := uint64(s)
					for j := 0; j < work; j++ {
						x = x*6364136223846793005 + 1442695040888963407
					}
					return x, nil
				},
			})
		}
		p.Reduce = func(outs []any) (any, error) { return len(outs), nil }
		return p
	}
	plans := []*Plan{mkPlan(1, 200000), mkPlan(2, 2000), mkPlan(3, 20)}
	var order []int
	Engine{Workers: 3}.RunEach(plans, func(i int, o Outcome) bool {
		if o.Err != nil {
			t.Fatalf("plan %d: %v", i, o.Err)
		}
		order = append(order, i)
		return true
	})
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Fatalf("delivery order = %v, want [0 1 2]", order)
	}
}

func TestRunEachStopsOnFalse(t *testing.T) {
	var ran atomic.Int64
	mk := func(seed int64, fail bool) *Plan {
		p := &Plan{Seed: seed}
		p.Units = append(p.Units, Unit{
			Key: "only",
			Run: func(s int64) (any, error) {
				ran.Add(1)
				if fail {
					return nil, fmt.Errorf("deliberate")
				}
				return s, nil
			},
		})
		return p
	}
	plans := []*Plan{mk(1, false), mk(2, true), mk(3, false), mk(4, false)}
	var calls []int
	Engine{Workers: 1}.RunEach(plans, func(i int, o Outcome) bool {
		calls = append(calls, i)
		return o.Err == nil
	})
	if len(calls) != 2 || calls[1] != 1 {
		t.Fatalf("callbacks = %v, want [0 1] then stop", calls)
	}
	// With one worker the stop lands before the later plans start, so
	// their units are skipped.
	if got := ran.Load(); got != 2 {
		t.Fatalf("units executed = %d, want 2 (later plans skipped)", got)
	}
}

func TestFirstUnitErrorWinsDeterministically(t *testing.T) {
	p := &Plan{Seed: 5}
	for i := 0; i < 20; i++ {
		i := i
		p.Units = append(p.Units, Unit{
			Key: fmt.Sprintf("unit-%d", i),
			Run: func(s int64) (any, error) {
				if i%2 == 1 {
					return nil, fmt.Errorf("boom %d", i)
				}
				return i, nil
			},
		})
	}
	for _, workers := range []int{1, 8} {
		_, err := Engine{Workers: workers}.Run(p)
		var ue *UnitError
		if !errors.As(err, &ue) {
			t.Fatalf("workers=%d: error %v is not a UnitError", workers, err)
		}
		if ue.Index != 1 || ue.Key != "unit-1" {
			t.Errorf("workers=%d: reported unit %d (%s), want the first failure in declaration order",
				workers, ue.Index, ue.Key)
		}
	}
}

func TestPanicBecomesUnitError(t *testing.T) {
	p := &Plan{
		Seed: 9,
		Units: []Unit{{
			Key: "panicky",
			Run: func(s int64) (any, error) { panic("kaboom") },
		}},
	}
	_, err := Engine{Workers: 4}.Run(p)
	if err == nil || !strings.Contains(err.Error(), "kaboom") {
		t.Fatalf("panic not converted to error: %v", err)
	}
}

func TestNilReduceReturnsOrderedOutputs(t *testing.T) {
	p := sumPlan(11, 10)
	p.Reduce = nil
	v, err := Engine{Workers: 4}.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	outs := v.([]any)
	for i, o := range outs {
		if !strings.HasPrefix(o.(string), fmt.Sprintf("%d:", i)) {
			t.Fatalf("outs[%d] = %v out of order", i, o)
		}
	}
}

func TestEmptyPlan(t *testing.T) {
	p := &Plan{Seed: 1, Reduce: func(outs []any) (any, error) { return len(outs), nil }}
	v, err := Engine{Workers: 8}.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if v.(int) != 0 {
		t.Fatalf("empty plan reduced to %v", v)
	}
}

// TestPoolRunsConcurrently exercises the worker pool under the race
// detector: units touch shared atomics and the engine must still
// aggregate by index.
func TestPoolRunsConcurrently(t *testing.T) {
	var peak, inFlight atomic.Int64
	p := &Plan{Seed: 3}
	const n = 200
	for i := 0; i < n; i++ {
		p.Units = append(p.Units, Unit{
			Key: fmt.Sprintf("unit-%d", i),
			Run: func(s int64) (any, error) {
				cur := inFlight.Add(1)
				for {
					old := peak.Load()
					if cur <= old || peak.CompareAndSwap(old, cur) {
						break
					}
				}
				// A little real work so goroutines overlap.
				x := uint64(s)
				for j := 0; j < 1000; j++ {
					x = x*6364136223846793005 + 1442695040888963407
				}
				inFlight.Add(-1)
				return x, nil
			},
		})
	}
	p.Reduce = func(outs []any) (any, error) { return len(outs), nil }
	v, err := Engine{Workers: 8}.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if v.(int) != n {
		t.Fatalf("reduced %v units, want %d", v, n)
	}
	if peak.Load() < 1 {
		t.Error("pool never ran a unit")
	}
}

func TestWorkersDefaultAndClamp(t *testing.T) {
	// Zero and negative worker counts fall back to GOMAXPROCS; more
	// workers than units must not deadlock or drop units.
	for _, workers := range []int{0, -3, 64} {
		v, err := Engine{Workers: workers}.Run(sumPlan(13, 3))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !strings.HasPrefix(v.(string), "0:") {
			t.Fatalf("workers=%d: unexpected output %v", workers, v)
		}
	}
}
