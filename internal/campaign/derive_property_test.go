package campaign

import (
	"fmt"
	"math/rand"
	"testing"
)

// TestDeriveNoCollisionsAcrossUnitGrids drives Derive over a realistic
// campaign cross-product — many experiment-style keys × many unit
// indices × several campaign seeds — and requires every derived seed
// to be unique. The space is 2^63, so any collision in a few tens of
// thousands of draws means the mixer is broken, not unlucky.
func TestDeriveNoCollisionsAcrossUnitGrids(t *testing.T) {
	keys := []string{""}
	for _, exp := range []string{"table1", "fig8", "sweep", "speed"} {
		for _, gpu := range []string{"K80", "P100", "V100"} {
			for _, suffix := range []string{"", "/ResNet-15", "/us-central1 transient"} {
				keys = append(keys, fmt.Sprintf("%s/%s%s", exp, gpu, suffix))
			}
		}
	}
	seen := make(map[int64]string)
	for _, seed := range []int64{0, 1, 42, -7, 1 << 40} {
		for _, key := range keys {
			for i := uint64(0); i < 200; i++ {
				s := Derive(seed, i, key)
				if s < 0 {
					t.Fatalf("Derive(%d, %d, %q) = %d, want non-negative", seed, i, key, s)
				}
				id := fmt.Sprintf("seed=%d i=%d key=%q", seed, i, key)
				if prev, dup := seen[s]; dup {
					t.Fatalf("seed collision: %s and %s both derive %d", prev, id, s)
				}
				seen[s] = id
			}
		}
	}
}

// TestDeriveSeedsStableAcrossWorkerCounts is the engine-level property
// behind every determinism guarantee in this repo: the seed a unit
// receives is a pure function of (plan seed, unit index, unit key),
// never of scheduling. Random plan shapes run at several worker counts
// — including on a shared Pool — must hand every unit the same seed.
func TestDeriveSeedsStableAcrossWorkerCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	pool := NewPool(3, 4)
	defer pool.Close()
	for trial := 0; trial < 10; trial++ {
		n := 1 + rng.Intn(40)
		planSeed := rng.Int63()
		mk := func() *Plan {
			p := &Plan{Seed: planSeed}
			for i := 0; i < n; i++ {
				p.Units = append(p.Units, Unit{
					Key: fmt.Sprintf("prop/%d", i%7), // deliberately repeating keys
					Run: func(s int64) (any, error) { return s, nil },
				})
			}
			return p
		}
		want, err := Engine{Workers: 1}.Run(mk())
		if err != nil {
			t.Fatal(err)
		}
		for i, s := range want.([]any) {
			if s.(int64) != Derive(planSeed, uint64(i), fmt.Sprintf("prop/%d", i%7)) {
				t.Fatalf("trial %d: unit %d got a seed that is not Derive(plan seed, index, key)", trial, i)
			}
		}
		engines := []Engine{{Workers: 2}, {Workers: 8}, {Pool: pool}}
		for _, e := range engines {
			got, err := e.Run(mk())
			if err != nil {
				t.Fatal(err)
			}
			for i := range want.([]any) {
				if got.([]any)[i] != want.([]any)[i] {
					t.Fatalf("trial %d: unit %d seed depends on scheduling (%+v)", trial, i, e)
				}
			}
		}
	}
}
