package campaign

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestSharedPoolMatchesOwnWorkers(t *testing.T) {
	pool := NewPool(4, 16)
	defer pool.Close()
	want, err := Engine{Workers: 1}.Run(sumPlan(7, 50))
	if err != nil {
		t.Fatal(err)
	}
	got, err := Engine{Pool: pool}.Run(sumPlan(7, 50))
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("pool-backed run differs from sequential run")
	}
}

func TestSharedPoolAcrossConcurrentEngines(t *testing.T) {
	// Many engines dispatching onto one pool must neither deadlock nor
	// cross results between batches; this is the planner's steady state.
	pool := NewPool(4, 8)
	defer pool.Close()
	const callers = 8
	var wg sync.WaitGroup
	results := make([]string, callers)
	errs := make([]error, callers)
	for c := 0; c < callers; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := Engine{Pool: pool}.Run(sumPlan(int64(c), 20))
			if err != nil {
				errs[c] = err
				return
			}
			results[c] = v.(string)
		}()
	}
	wg.Wait()
	for c := 0; c < callers; c++ {
		if errs[c] != nil {
			t.Fatalf("caller %d: %v", c, errs[c])
		}
		want, err := Engine{Workers: 1}.Run(sumPlan(int64(c), 20))
		if err != nil {
			t.Fatal(err)
		}
		if results[c] != want {
			t.Errorf("caller %d got a result from someone else's batch", c)
		}
	}
}

func TestPoolSubmitRespectsContext(t *testing.T) {
	// One worker, zero queue: a second submission must wait, and a
	// canceled context must release it with the context's cause.
	pool := NewPool(1, 0)
	defer pool.Close()
	block := make(chan struct{})
	if err := pool.Submit(context.Background(), func() { <-block }); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- pool.Submit(ctx, func() {}) }()
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Submit returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Submit did not honor cancellation")
	}
	close(block)
}

func TestRunEachContextCancelSkipsPendingUnits(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var ran atomic.Int64
	p := &Plan{Seed: 1}
	const n = 16
	for i := 0; i < n; i++ {
		i := i
		p.Units = append(p.Units, Unit{
			Key: fmt.Sprintf("unit-%d", i),
			Run: func(s int64) (any, error) {
				if i == 0 {
					// Cancellation lands while this unit is in flight;
					// it must still finish normally while every unit
					// behind it is skipped.
					cancel()
				}
				ran.Add(1)
				return s, nil
			},
		})
	}
	var got Outcome
	err := Engine{Workers: 1}.RunEachContext(ctx, []*Plan{p}, func(i int, o Outcome) bool {
		got = o
		return true
	})
	if got.Err == nil {
		t.Fatal("plan with skipped units must fail its reduce")
	}
	if !errors.Is(got.Err, ErrSkipped) {
		t.Fatalf("outcome error %v does not wrap ErrSkipped", got.Err)
	}
	if n := ran.Load(); n != 1 {
		t.Fatalf("%d units ran after cancellation, want 1", n)
	}
	// The aggregated error carries the cancellation cause even though
	// every plan was delivered.
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunEachContext = %v, want context.Canceled surfaced", err)
	}
}

func TestRunEachSurfacesDroppedInFlightErrors(t *testing.T) {
	// Plan 1's unit fails while plan 0 is still running; plan 0's
	// delivery then stops the batch, so plan 1 is never delivered. Its
	// real error must come back from RunEach instead of vanishing.
	gate := make(chan struct{})
	plan0 := &Plan{Seed: 1, Units: []Unit{{
		Key: "slow-fail",
		Run: func(s int64) (any, error) {
			<-gate
			return nil, fmt.Errorf("plan0 deliberate")
		},
	}}}
	plan1Failed := make(chan struct{})
	plan1 := &Plan{Seed: 2, Units: []Unit{{
		Key: "fast-fail",
		Run: func(s int64) (any, error) {
			close(plan1Failed)
			return nil, fmt.Errorf("plan1 dropped")
		},
	}}}
	go func() {
		// Let plan 1 fail first, then release plan 0.
		<-plan1Failed
		close(gate)
	}()
	var calls []int
	err := Engine{Workers: 2}.RunEach([]*Plan{plan0, plan1}, func(i int, o Outcome) bool {
		calls = append(calls, i)
		return o.Err == nil // plan 0 fails → stop
	})
	if len(calls) != 1 || calls[0] != 0 {
		t.Fatalf("callbacks = %v, want [0] then stop", calls)
	}
	if err == nil || !strings.Contains(err.Error(), "plan1 dropped") {
		t.Fatalf("RunEach = %v, want plan 1's in-flight error surfaced", err)
	}
	var ue *UnitError
	if !errors.As(err, &ue) || ue.Key != "fast-fail" {
		t.Fatalf("aggregated error %v does not identify the dropped unit", err)
	}
}

func TestRunEachReturnsNilWhenNothingDropped(t *testing.T) {
	for _, workers := range []int{1, 4} {
		if err := (Engine{Workers: workers}).RunEach(
			[]*Plan{sumPlan(1, 5), sumPlan(2, 5)},
			func(int, Outcome) bool { return true },
		); err != nil {
			t.Fatalf("workers=%d: clean batch returned %v", workers, err)
		}
	}
}
