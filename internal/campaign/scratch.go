// Per-worker scratch arenas: the allocation-recycling half of the
// campaign layer. A campaign's cost model is "many small independent
// replications", and the temporaries each replication needs — result
// series being reduced to scalars, ECDF sort buffers, stats
// accumulators — all die the moment its unit returns. Scratch-aware
// units borrow that memory from a pooled arena instead of reallocating
// it per unit, so a million-unit campaign's summarization runs
// allocation-free in steady state.
package campaign

import (
	"sync"

	"repro/internal/stats"
)

// Scratch is the per-unit scratch arena handed to Unit.RunScratch.
// Arenas are pooled per worker: a unit gets exclusive use of one for
// the duration of its run, reset, and the arena's buffers are recycled
// into later units on the same worker.
//
// Ownership rules (the same contract as stats.Scratch, which this
// embeds): everything borrowed from the arena is valid only until the
// unit returns. A unit's output is retained until reduce and beyond —
// it must never alias scratch memory. Copy anything that escapes.
//
// Determinism: arenas carry no values across units (every borrow is
// reset or overwritten), so which pooled arena a unit happens to
// receive can never influence its output. That keeps the campaign
// invariant intact: results are byte-identical for every worker count.
type Scratch struct {
	// Stats is the statistical-buffer arena: quantile sort copies,
	// borrowed ECDFs, online accumulators.
	Stats stats.Scratch
}

// Reset reclaims everything borrowed from the arena. runUnit calls it
// before handing the arena to a unit; units never need to.
func (s *Scratch) Reset() {
	s.Stats.Reset()
}

// scratchPool recycles arenas across units. sync.Pool keeps reuse
// effectively per-worker (per-P), which is exactly the granularity the
// campaign wants: no lock contention on the hot path, and an arena's
// high-water buffers stay warm for the next unit on the same worker.
var scratchPool = sync.Pool{New: func() any { return new(Scratch) }}
