package campaign

import (
	"fmt"
	"testing"
)

// RunScratch units receive an arena and take precedence over Run.
func TestRunScratchPrecedence(t *testing.T) {
	p := &Plan{
		Seed: 1,
		Units: []Unit{{
			Key: "u",
			Run: func(seed int64) (any, error) {
				return nil, fmt.Errorf("plain Run must not be called when RunScratch is set")
			},
			RunScratch: func(seed int64, s *Scratch) (any, error) {
				if s == nil {
					return nil, fmt.Errorf("nil scratch")
				}
				// The arena must be reset: a fresh borrow is slot 0.
				buf := s.Stats.Floats(8)
				for i := range buf {
					buf[i] = float64(seed)
				}
				return seed, nil
			},
		}},
	}
	out, err := Engine{Workers: 1}.Run(p)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if out.([]any)[0].(int64) != Derive(1, 0, "u") {
		t.Fatalf("unexpected seed output %v", out)
	}
}

// Scratch-aware campaigns produce identical results for every worker
// count: pooled arenas carry no state between units.
func TestScratchUnitsWorkerCountInvariant(t *testing.T) {
	makePlan := func() *Plan {
		p := &Plan{Seed: 99}
		for i := 0; i < 32; i++ {
			i := i
			p.Units = append(p.Units, Unit{
				Key: fmt.Sprintf("u%d", i),
				RunScratch: func(seed int64, s *Scratch) (any, error) {
					// Summarize a seed-derived series through the arena;
					// the scalar result is copied out, never aliased.
					xs := s.Stats.Floats(50)
					for j := range xs {
						xs[j] = float64((seed + int64(j)*2654435761) % 1000)
					}
					return s.Stats.Quantile(xs, 0.9), nil
				},
			})
		}
		return p
	}
	ref, err := Engine{Workers: 1}.Run(makePlan())
	if err != nil {
		t.Fatalf("workers=1: %v", err)
	}
	for _, workers := range []int{2, 8} {
		got, err := Engine{Workers: workers}.Run(makePlan())
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range ref.([]any) {
			if got.([]any)[i] != ref.([]any)[i] {
				t.Fatalf("workers=%d unit %d: %v != %v", workers, i, got.([]any)[i], ref.([]any)[i])
			}
		}
	}
}

// A panicking scratch unit fails its campaign like a panicking Run
// unit — and its arena returns to the pool for reuse.
func TestRunScratchPanicRecovered(t *testing.T) {
	p := &Plan{
		Seed: 5,
		Units: []Unit{{
			Key: "boom",
			RunScratch: func(seed int64, s *Scratch) (any, error) {
				s.Stats.Floats(4)
				panic("kaboom")
			},
		}},
	}
	_, err := Engine{Workers: 1}.Run(p)
	if err == nil {
		t.Fatal("expected a unit error from the panic")
	}
	var ue *UnitError
	if !asUnitError(err, &ue) || ue.Key != "boom" {
		t.Fatalf("expected UnitError for 'boom', got %v", err)
	}
}

func asUnitError(err error, target **UnitError) bool {
	for err != nil {
		if ue, ok := err.(*UnitError); ok {
			*target = ue
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}
