package cloud

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/model"
)

// PoolKey identifies one transient capacity pool: a (region, GPU type)
// cell of the provider's fleet, the granularity at which the paper's
// §V characterization reports revocation behavior (Table V) and at
// which real clouds ration preemptible quota.
type PoolKey struct {
	Region Region
	GPU    model.GPU
}

// String renders the cell as "region/GPU", the form capacity flags and
// canonical fleet keys use.
func (k PoolKey) String() string {
	return fmt.Sprintf("%s/%s", k.Region, k.GPU)
}

// ParsePoolKey parses a "region/GPU" cell name.
func ParsePoolKey(s string) (PoolKey, error) {
	region, gpu, ok := strings.Cut(s, "/")
	if !ok {
		return PoolKey{}, fmt.Errorf("cloud: pool key %q wants region/GPU", s)
	}
	r, err := ParseRegion(region)
	if err != nil {
		return PoolKey{}, err
	}
	g, err := model.ParseGPU(gpu)
	if err != nil {
		return PoolKey{}, err
	}
	return PoolKey{Region: r, GPU: g}, nil
}

// Capacity maps pool cells to the number of transient GPU servers the
// provider will run there at once. Cells that are absent — or mapped
// to a non-positive count — are unconstrained, so the zero value (nil)
// is exactly today's infinite pool. On-demand servers and CPU-only
// parameter servers never consume transient capacity: the paper's
// revocation story (§V, Fig. 7) is about the transient pool churning,
// not about on-demand quota.
type Capacity map[PoolKey]int

// Clone returns an independent copy so callers can hand a Capacity to
// a provider and keep mutating their own.
func (c Capacity) Clone() Capacity {
	if c == nil {
		return nil
	}
	out := make(Capacity, len(c))
	for k, v := range c {
		out[k] = v
	}
	return out
}

// Canonical renders the constrained cells as "region/GPU:n" terms,
// sorted, comma-joined — a stable identity for cache keys. Nil or
// all-unconstrained capacity renders as "inf".
func (c Capacity) Canonical() string {
	var terms []string
	for k, n := range c {
		if n > 0 {
			terms = append(terms, fmt.Sprintf("%s:%d", k, n))
		}
	}
	if len(terms) == 0 {
		return "inf"
	}
	sort.Strings(terms)
	return strings.Join(terms, ",")
}

// ErrNoCapacity reports a transient Launch rejected because the
// requested cell's pool is fully in use. Callers distinguish it from
// placement errors (invalid region, unoffered GPU) because it is
// transient in both senses: retrying after the pool churns can
// succeed, and the fleet schedulers queue on it.
var ErrNoCapacity = errors.New("cloud: transient capacity exhausted")

// SetTransientCapacity installs per-cell transient pool limits. It is
// meant to be called once, before any Launch; limits apply only to
// transient GPU requests. A nil map (the default) means every cell is
// unconstrained.
func (p *Provider) SetTransientCapacity(c Capacity) {
	p.capacity = c.Clone()
}

// SetCapacityFreedHook registers fn to run on the simulation thread
// whenever a slot of a constrained cell frees (revocation, lifetime
// expiry, or customer termination). Fleet schedulers use it to re-run
// admission the moment queued work could fit. For a revoked instance
// the hook fires after the instance's own OnRevoked callback, so the
// victim session's immediate replacement gets first claim on the slot
// it just vacated — the §V-B result that immediate re-requests are not
// penalized.
func (p *Provider) SetCapacityFreedHook(fn func(PoolKey)) {
	p.onCapacityFreed = fn
}

// TransientCapacity returns the cell's configured limit, or 0 when the
// cell is unconstrained.
func (p *Provider) TransientCapacity(r Region, g model.GPU) int {
	if n := p.capacity[PoolKey{r, g}]; n > 0 {
		return n
	}
	return 0
}

// TransientInUse returns how many transient servers currently occupy
// the cell's pool (from acceptance until a terminal state, matching
// how clouds meter quota from the moment a request is granted).
func (p *Provider) TransientInUse(r Region, g model.GPU) int {
	return p.inUse[PoolKey{r, g}]
}

// TransientAvailable returns how many transient servers the cell can
// still accept, or -1 when the cell is unconstrained.
func (p *Provider) TransientAvailable(r Region, g model.GPU) int {
	limit := p.TransientCapacity(r, g)
	if limit <= 0 {
		return -1
	}
	free := limit - p.TransientInUse(r, g)
	if free < 0 {
		free = 0
	}
	return free
}

// Churning reports whether the region had a revocation within the
// churn window (Fig. 7's "immediate request" regime) — exported so
// capacity-blocked callers can pace retries to the pool's churn state.
func (p *Provider) Churning(r Region) bool { return p.churning(r) }

// acquireSlot claims a pool slot for a transient GPU request, or
// reports ErrNoCapacity. Unconstrained cells always succeed without
// touching any accounting, which is what keeps the infinite-pool
// default byte-for-byte identical to the pre-capacity provider.
func (p *Provider) acquireSlot(in *Instance) error {
	if in.Tier != Transient || in.GPU == 0 {
		return nil
	}
	key := PoolKey{in.Region, in.GPU}
	limit := p.capacity[key]
	if limit <= 0 {
		return nil
	}
	if p.inUse[key] >= limit {
		return fmt.Errorf("%w: %s has %d/%d in use", ErrNoCapacity, key, p.inUse[key], limit)
	}
	if p.inUse == nil {
		p.inUse = make(map[PoolKey]int)
	}
	p.inUse[key]++
	in.holdsSlot = true
	return nil
}

// releaseSlot returns an ended instance's pool slot, reporting whether
// one was held. The freed-hook notification is the caller's job so
// revocation can interleave it correctly with OnRevoked.
func (p *Provider) releaseSlot(in *Instance) (PoolKey, bool) {
	if !in.holdsSlot {
		return PoolKey{}, false
	}
	in.holdsSlot = false
	key := PoolKey{in.Region, in.GPU}
	p.inUse[key]--
	return key, true
}

// notifyFreed fires the capacity-freed hook, if any.
func (p *Provider) notifyFreed(key PoolKey) {
	if p.onCapacityFreed != nil {
		p.onCapacityFreed(key)
	}
}
