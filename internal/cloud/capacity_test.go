package cloud

import (
	"errors"
	"testing"

	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/stats"
)

// survivorModel is a test lifetime regime where no transient server is
// ever revoked: every instance lives to the 24 h cap, giving the test
// full control over when slots free.
type survivorModel struct{}

func (survivorModel) Name() string { return "test-survivor" }
func (survivorModel) SampleLifetime(*stats.Rng, Region, model.GPU, float64) (bool, float64) {
	return false, MaxTransientLifetimeSeconds
}

// reaperModel revokes every transient server after a fixed lifetime.
type reaperModel struct{ after float64 }

func (reaperModel) Name() string { return "test-reaper" }
func (m reaperModel) SampleLifetime(*stats.Rng, Region, model.GPU, float64) (bool, float64) {
	return true, m.after
}

func newCapacityProvider(t *testing.T, lm LifetimeModel, cap Capacity) (*sim.Kernel, *Provider) {
	t.Helper()
	k := &sim.Kernel{}
	p := NewProviderWithLifetime(k, stats.NewRng(1), lm)
	p.SetTransientCapacity(cap)
	return k, p
}

func transientReq(r Region, g model.GPU) Request {
	return Request{Region: r, GPU: g, Tier: Transient}
}

func TestLaunchRejectsWhenPoolFull(t *testing.T) {
	cell := PoolKey{USCentral1, model.K80}
	_, p := newCapacityProvider(t, survivorModel{}, Capacity{cell: 2})

	for i := 0; i < 2; i++ {
		if _, err := p.Launch(transientReq(USCentral1, model.K80)); err != nil {
			t.Fatalf("launch %d within capacity failed: %v", i, err)
		}
	}
	if got := p.TransientAvailable(USCentral1, model.K80); got != 0 {
		t.Fatalf("available = %d, want 0", got)
	}
	_, err := p.Launch(transientReq(USCentral1, model.K80))
	if !errors.Is(err, ErrNoCapacity) {
		t.Fatalf("over-capacity launch: got %v, want ErrNoCapacity", err)
	}
	if got := len(p.Instances()); got != 2 {
		t.Fatalf("rejected launch left %d instances, want 2", got)
	}

	// Other cells of the same region, and the same GPU on-demand, are
	// not constrained by this cell's limit.
	if _, err := p.Launch(transientReq(USCentral1, model.P100)); err != nil {
		t.Fatalf("sibling cell rejected: %v", err)
	}
	if _, err := p.Launch(Request{Region: USCentral1, GPU: model.K80, Tier: OnDemand}); err != nil {
		t.Fatalf("on-demand rejected by transient capacity: %v", err)
	}
	if _, err := p.Launch(Request{Region: USCentral1, Tier: Transient}); err != nil {
		t.Fatalf("CPU-only transient rejected by GPU capacity: %v", err)
	}
}

func TestCapacityFreesOnTerminateRevokeAndExpire(t *testing.T) {
	cell := PoolKey{USWest1, model.V100}

	// Customer termination frees the slot.
	k, p := newCapacityProvider(t, survivorModel{}, Capacity{cell: 1})
	in, err := p.Launch(transientReq(cell.Region, cell.GPU))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Launch(transientReq(cell.Region, cell.GPU)); !errors.Is(err, ErrNoCapacity) {
		t.Fatalf("want ErrNoCapacity while held, got %v", err)
	}
	p.Terminate(in)
	if _, err := p.Launch(transientReq(cell.Region, cell.GPU)); err != nil {
		t.Fatalf("slot not freed by Terminate: %v", err)
	}
	_ = k

	// Revocation frees the slot, and the in-use count is already
	// decremented inside OnRevoked (the victim can immediately
	// re-request its own slot, §V-B).
	k, p = newCapacityProvider(t, reaperModel{after: 100}, Capacity{cell: 1})
	var sawFree bool
	req := transientReq(cell.Region, cell.GPU)
	req.OnRevoked = func(*Instance) {
		sawFree = p.TransientAvailable(cell.Region, cell.GPU) == 1
	}
	if _, err := p.Launch(req); err != nil {
		t.Fatal(err)
	}
	k.Run()
	if !sawFree {
		t.Fatal("slot not free inside OnRevoked")
	}
	if got := p.TransientInUse(cell.Region, cell.GPU); got != 0 {
		t.Fatalf("in-use after revocation = %d, want 0", got)
	}

	// The 24 h lifetime expiry frees the slot too.
	k, p = newCapacityProvider(t, survivorModel{}, Capacity{cell: 1})
	if _, err := p.Launch(transientReq(cell.Region, cell.GPU)); err != nil {
		t.Fatal(err)
	}
	k.Run() // runs past the lifetime cap
	if got := p.TransientInUse(cell.Region, cell.GPU); got != 0 {
		t.Fatalf("in-use after expiry = %d, want 0", got)
	}
}

func TestCapacityFreedHookOrdersAfterOnRevoked(t *testing.T) {
	cell := PoolKey{USCentral1, model.K80}
	k, p := newCapacityProvider(t, reaperModel{after: 50}, Capacity{cell: 1})
	var order []string
	p.SetCapacityFreedHook(func(key PoolKey) {
		if key != cell {
			t.Errorf("hook fired for %v, want %v", key, cell)
		}
		order = append(order, "hook")
	})
	req := transientReq(cell.Region, cell.GPU)
	req.OnRevoked = func(*Instance) { order = append(order, "revoked") }
	if _, err := p.Launch(req); err != nil {
		t.Fatal(err)
	}
	k.Run()
	if len(order) != 2 || order[0] != "revoked" || order[1] != "hook" {
		t.Fatalf("event order = %v, want [revoked hook]", order)
	}
}

func TestUnconstrainedPoolHasNoAccounting(t *testing.T) {
	_, p := newTestProvider(3)
	if got := p.TransientAvailable(USEast1, model.K80); got != -1 {
		t.Fatalf("unconstrained cell available = %d, want -1", got)
	}
	for i := 0; i < 100; i++ {
		if _, err := p.Launch(transientReq(USEast1, model.K80)); err != nil {
			t.Fatalf("infinite pool rejected launch %d: %v", i, err)
		}
	}
	if got := p.TransientInUse(USEast1, model.K80); got != 0 {
		t.Fatalf("unconstrained cell tracked in-use = %d, want 0", got)
	}
}

func TestInstancesReturnsACopy(t *testing.T) {
	_, p := newTestProvider(4)
	a, err := p.Launch(transientReq(USEast1, model.K80))
	if err != nil {
		t.Fatal(err)
	}
	got := p.Instances()
	got[0] = nil
	again := p.Instances()
	if len(again) != 1 || again[0] != a {
		t.Fatal("mutating the returned slice corrupted provider state")
	}
}
