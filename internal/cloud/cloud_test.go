package cloud

import (
	"math"
	"testing"

	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/stats"
)

func newTestProvider(seed int64) (*sim.Kernel, *Provider) {
	k := &sim.Kernel{}
	return k, NewProvider(k, stats.NewRng(seed))
}

func TestRegionNames(t *testing.T) {
	if len(AllRegions()) != 6 {
		t.Fatal("paper measures six regions")
	}
	for _, r := range AllRegions() {
		parsed, err := ParseRegion(r.String())
		if err != nil || parsed != r {
			t.Errorf("ParseRegion(%q) = %v, %v", r.String(), parsed, err)
		}
	}
	if _, err := ParseRegion("mars-north1"); err == nil {
		t.Fatal("unknown region should not parse")
	}
}

func TestLocalHour(t *testing.T) {
	// Simulation starts at 00:00 UTC; us-east1 is UTC-5.
	if got := USEast1.LocalHour(0); got != 19 {
		t.Fatalf("us-east1 local hour at t=0 is %d, want 19", got)
	}
	if got := AsiaEast1.LocalHour(0); got != 8 {
		t.Fatalf("asia-east1 local hour at t=0 is %d, want 8", got)
	}
	if got := EuropeWest1.LocalHour(23); got != 0 {
		t.Fatalf("europe-west1 local hour at t=23h is %d, want 0", got)
	}
}

func TestOfferedMatchesTableV(t *testing.T) {
	// Table V's N/A cells.
	type cell struct {
		r    Region
		g    model.GPU
		want bool
	}
	cells := []cell{
		{USEast1, model.K80, true},
		{USEast1, model.V100, false},
		{EuropeWest1, model.V100, false},
		{EuropeWest4, model.V100, true},
		{EuropeWest4, model.K80, false},
		{AsiaEast1, model.V100, true},
		{AsiaEast1, model.P100, false},
		{USCentral1, model.V100, true},
	}
	for _, c := range cells {
		if got := Offered(c.r, c.g); got != c.want {
			t.Errorf("Offered(%v, %v) = %v, want %v", c.r, c.g, got, c.want)
		}
	}
	if got := len(OfferedRegions(model.K80)); got != 4 {
		t.Errorf("K80 offered in %d regions, want 4", got)
	}
	if got := len(OfferedRegions(model.V100)); got != 4 {
		t.Errorf("V100 offered in %d regions, want 4", got)
	}
}

func TestLaunchLifecycle(t *testing.T) {
	k, p := newTestProvider(1)
	var runningAt sim.Time
	in, err := p.Launch(Request{
		Region: USEast1,
		GPU:    model.K80,
		Tier:   OnDemand,
		OnRunning: func(in *Instance) {
			runningAt = k.Now()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if in.State() != Provisioning {
		t.Fatalf("state after launch = %v, want provisioning", in.State())
	}
	k.Run()
	if in.State() != Running {
		t.Fatalf("state after run = %v, want running", in.State())
	}
	b := in.Startup()
	if b.Provisioning <= 0 || b.Staging <= 0 || b.Booting <= 0 {
		t.Fatalf("startup stages not all positive: %+v", b)
	}
	if got := float64(runningAt); math.Abs(got-b.Total()) > 1e-9 {
		t.Fatalf("running at %v, want startup total %v", got, b.Total())
	}
	// On-demand servers never end on their own.
	if in.WasRevoked() {
		t.Fatal("on-demand server cannot be revoked")
	}
}

func TestLaunchRejectsUnofferedPlacement(t *testing.T) {
	_, p := newTestProvider(2)
	if _, err := p.Launch(Request{Region: USEast1, GPU: model.V100, Tier: Transient}); err == nil {
		t.Fatal("V100 in us-east1 is N/A in Table V and must be rejected")
	}
	if _, err := p.Launch(Request{Region: Region(77), GPU: model.K80, Tier: Transient}); err == nil {
		t.Fatal("invalid region must be rejected")
	}
}

func TestCPUServerLaunchesAnywhere(t *testing.T) {
	k, p := newTestProvider(3)
	in, err := p.Launch(Request{Region: EuropeWest4, Tier: OnDemand})
	if err != nil {
		t.Fatal(err)
	}
	k.Run()
	if in.State() != Running {
		t.Fatalf("CPU server state = %v", in.State())
	}
	if in.HourlyPrice() != model.ParameterServerHourly {
		t.Fatalf("CPU server price = %v", in.HourlyPrice())
	}
}

func TestTransientLifetimeCap(t *testing.T) {
	// With seed sweep, every transient server must end by 24h + startup.
	k, p := newTestProvider(4)
	var ins []*Instance
	for i := 0; i < 60; i++ {
		in := p.MustLaunch(Request{Region: USWest1, GPU: model.K80, Tier: Transient})
		ins = append(ins, in)
	}
	k.Run()
	for _, in := range ins {
		if !in.State().Done() {
			t.Fatalf("transient instance still %v after drain", in.State())
		}
		life := in.LifetimeSeconds(k.Now())
		if life > MaxTransientLifetimeSeconds+1 {
			t.Fatalf("lifetime %v exceeds 24h cap", life)
		}
		if in.WasRevoked() && life >= MaxTransientLifetimeSeconds {
			t.Fatal("revocation recorded at or past the cap")
		}
	}
}

func TestRevocationFractionTracksTableV(t *testing.T) {
	// Large-sample check that the us-west1 K80 cell lands near its
	// calibrated 22.92% and europe-west1 K80 near 66.67%.
	cases := []struct {
		region Region
		want   float64
	}{
		{USWest1, 0.2292},
		{EuropeWest1, 0.6667},
	}
	for _, tc := range cases {
		k, p := newTestProvider(5)
		const n = 2000
		for i := 0; i < n; i++ {
			p.MustLaunch(Request{Region: tc.region, GPU: model.K80, Tier: Transient})
		}
		k.Run()
		revoked := 0
		for _, in := range p.Instances() {
			if in.WasRevoked() {
				revoked++
			}
		}
		got := float64(revoked) / n
		if math.Abs(got-tc.want) > 0.035 {
			t.Errorf("%v K80 revocation fraction = %.3f, want ≈%.3f", tc.region, got, tc.want)
		}
	}
}

func TestEarlyDeathShapeDiffersByRegion(t *testing.T) {
	// Fig. 8a: europe-west1 K80 loses >50% of revoked servers in the
	// first two hours; us-west1 K80 loses <5%.
	frac2h := func(region Region) float64 {
		k, p := newTestProvider(6)
		const n = 3000
		for i := 0; i < n; i++ {
			p.MustLaunch(Request{Region: region, GPU: model.K80, Tier: Transient})
		}
		k.Run()
		revoked, early := 0, 0
		for _, in := range p.Instances() {
			if !in.WasRevoked() {
				continue
			}
			revoked++
			if in.LifetimeSeconds(k.Now()) <= 2*3600 {
				early++
			}
		}
		if revoked == 0 {
			t.Fatalf("no revocations in %v", region)
		}
		return float64(early) / float64(revoked)
	}
	if got := frac2h(EuropeWest1); got < 0.40 {
		t.Errorf("europe-west1 K80 early-death fraction = %.2f, want > 0.40", got)
	}
	if got := frac2h(USWest1); got > 0.12 {
		t.Errorf("us-west1 K80 early-death fraction = %.2f, want < 0.12", got)
	}
}

func TestV100QuietHours(t *testing.T) {
	// Fig. 9c: no V100 revocations between 16:00 and 20:00 local.
	k, p := newTestProvider(7)
	const n = 1500
	for i := 0; i < n; i++ {
		// Spread launches across the day so the quiet window is
		// genuinely exercised.
		launchAt := sim.Time(float64(i%24) * 3600)
		k.At(launchAt, func() {
			p.MustLaunch(Request{Region: USCentral1, GPU: model.V100, Tier: Transient})
		})
	}
	k.Run()
	quiet := 0
	total := 0
	for _, in := range p.Instances() {
		if !in.WasRevoked() {
			continue
		}
		total++
		h := in.Region.LocalHour(in.EndedAt.Hours())
		if h >= 16 && h < 20 {
			quiet++
		}
	}
	if total < 100 {
		t.Fatalf("too few revocations (%d) to assess quiet hours", total)
	}
	// The acceptance-rejection sampler allows a tiny leakage after the
	// retry cap; require well under 2%.
	if frac := float64(quiet) / float64(total); frac > 0.02 {
		t.Errorf("V100 quiet-hour revocation fraction = %.3f, want ≈0", frac)
	}
}

func TestWorkloadDoesNotAffectRevocation(t *testing.T) {
	// Table V: idle and stressed servers revoke at similar rates.
	k, p := newTestProvider(8)
	const n = 3000
	for i := 0; i < n; i++ {
		p.MustLaunch(Request{Region: USCentral1, GPU: model.P100, Tier: Transient, Stressed: i%2 == 0})
	}
	k.Run()
	var idleRev, stressRev, idleN, stressN int
	for _, in := range p.Instances() {
		if in.Stressed {
			stressN++
			if in.WasRevoked() {
				stressRev++
			}
		} else {
			idleN++
			if in.WasRevoked() {
				idleRev++
			}
		}
	}
	idleRate := float64(idleRev) / float64(idleN)
	stressRate := float64(stressRev) / float64(stressN)
	if math.Abs(idleRate-stressRate) > 0.05 {
		t.Errorf("idle rate %.3f vs stressed rate %.3f differ beyond noise", idleRate, stressRate)
	}
}

func TestStartupTransientVsOnDemand(t *testing.T) {
	// Fig. 6: transient K80 ≈ 11 s slower than on-demand; transient
	// P100 ≈ 21 s slower; transient P100 slower than transient K80.
	meanTotal := func(g model.GPU, tier Tier) float64 {
		k, p := newTestProvider(9)
		const n = 400
		ins := make([]*Instance, 0, n)
		for i := 0; i < n; i++ {
			ins = append(ins, p.MustLaunch(Request{Region: USEast1, GPU: g, Tier: tier}))
		}
		k.RunUntil(sim.Time(300))
		var acc stats.Accumulator
		for _, in := range ins {
			acc.Add(in.Startup().Total())
		}
		return acc.Mean()
	}
	k80T, k80O := meanTotal(model.K80, Transient), meanTotal(model.K80, OnDemand)
	p100T, p100O := meanTotal(model.P100, Transient), meanTotal(model.P100, OnDemand)
	if d := k80T - k80O; d < 5 || d > 18 {
		t.Errorf("K80 transient-on-demand startup delta = %.1f s, want ≈11", d)
	}
	if d := p100T - p100O; d < 14 || d > 28 {
		t.Errorf("P100 transient-on-demand startup delta = %.1f s, want ≈21", d)
	}
	slowdown := (p100T - k80T) / k80T
	if slowdown < 0.03 || slowdown > 0.16 {
		t.Errorf("transient P100 vs K80 slowdown = %.3f, want ≈0.087", slowdown)
	}
	if k80T > 100 || p100T > 100 {
		t.Errorf("transient startup should stay under 100 s (got %.1f, %.1f)", k80T, p100T)
	}
}

func TestChurnRaisesStartupVariance(t *testing.T) {
	// Fig. 7: requests immediately after a revocation see ~4× the
	// coefficient of variation but a similar mean (within ≈4 s).
	draw := func(churning bool) (mean, cov float64) {
		rng := stats.NewRng(10)
		var acc stats.Accumulator
		for i := 0; i < 4000; i++ {
			acc.Add(sampleStartup(rng, model.K80, Transient, USEast1, churning).Total())
		}
		return acc.Mean(), acc.CoV()
	}
	immMean, immCoV := draw(true)
	delMean, delCoV := draw(false)
	if math.Abs(immMean-delMean) > 4 {
		t.Errorf("immediate mean %.1f vs delayed mean %.1f differ beyond Fig. 7's ≈4 s", immMean, delMean)
	}
	if immCoV < 2.5*delCoV {
		t.Errorf("immediate CoV %.3f should be ≈4× delayed CoV %.3f", immCoV, delCoV)
	}
	// Churn does not apply to on-demand requests.
	odChurn, odCoV := draw(false)
	_ = odChurn
	rng := stats.NewRng(11)
	var acc stats.Accumulator
	for i := 0; i < 4000; i++ {
		acc.Add(sampleStartup(rng, model.K80, OnDemand, USEast1, true).Total())
	}
	if acc.CoV() > 1.5*odCoV {
		t.Errorf("on-demand CoV %.3f should be unaffected by churn", acc.CoV())
	}
}

func TestProviderTracksChurnWindow(t *testing.T) {
	k, p := newTestProvider(13)
	if p.churning(EuropeWest1) {
		t.Fatal("fresh provider should not report churn")
	}
	in := p.MustLaunch(Request{Region: EuropeWest1, GPU: model.K80, Tier: Transient})
	k.RunUntil(sim.Time(120)) // running
	if in.State() != Running {
		t.Fatalf("state = %v, want running", in.State())
	}
	p.revoke(in)
	if !p.churning(EuropeWest1) {
		t.Fatal("churn window should open right after a revocation")
	}
	if p.churning(USWest1) {
		t.Fatal("churn is tracked per region")
	}
	k.RunUntil(k.Now() + sim.Time(churnWindowSeconds) + 1)
	if p.churning(EuropeWest1) {
		t.Fatal("churn window should close after an hour")
	}
}

func TestTerminateCancelsRevocation(t *testing.T) {
	k, p := newTestProvider(11)
	in := p.MustLaunch(Request{Region: EuropeWest1, GPU: model.K80, Tier: Transient})
	k.RunUntil(sim.Time(200)) // running by now
	if in.State() != Running {
		t.Fatalf("state = %v, want running", in.State())
	}
	p.Terminate(in)
	if in.State() != Terminated {
		t.Fatalf("state after terminate = %v", in.State())
	}
	k.Run()
	if in.WasRevoked() {
		t.Fatal("terminated instance was later revoked")
	}
	// Idempotent.
	p.Terminate(in)
	if in.State() != Terminated {
		t.Fatal("double terminate changed state")
	}
}

func TestCostAccounting(t *testing.T) {
	k, p := newTestProvider(12)
	in := p.MustLaunch(Request{Region: USEast1, GPU: model.K80, Tier: Transient})
	k.RunUntil(sim.Time(3600))
	wantHourly := model.HourlyPrice(model.K80, true)
	got := in.Cost(k.Now())
	if math.Abs(got-wantHourly) > 1e-9 {
		t.Fatalf("cost after one hour = %v, want %v", got, wantHourly)
	}
	if p.TotalCost() != got {
		t.Fatalf("TotalCost = %v, want %v", p.TotalCost(), got)
	}
	if in.Cost(in.RequestedAt) != 0 {
		t.Fatal("cost at request time should be zero")
	}
}

func TestInstanceStateStrings(t *testing.T) {
	for s, want := range map[State]string{
		Requested: "requested", Provisioning: "provisioning", Staging: "staging",
		Running: "running", Revoked: "revoked", Terminated: "terminated",
	} {
		if s.String() != want {
			t.Errorf("State(%d).String() = %q, want %q", int(s), s.String(), want)
		}
	}
	if !Revoked.Done() || !Terminated.Done() || Running.Done() {
		t.Error("Done() misclassifies states")
	}
	if OnDemand.String() != "on-demand" || Transient.String() != "transient" {
		t.Error("Tier stringer broken")
	}
}

func TestParseTierRoundTrips(t *testing.T) {
	for _, tier := range []Tier{OnDemand, Transient} {
		got, err := ParseTier(tier.String())
		if err != nil || got != tier {
			t.Fatalf("ParseTier(%q) = %v, %v", tier.String(), got, err)
		}
	}
	if _, err := ParseTier("spot"); err == nil {
		t.Fatal("ParseTier accepted an unknown tier name")
	}
}
