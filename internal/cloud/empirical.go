package cloud

import (
	"fmt"
	"sort"

	"repro/internal/model"
	"repro/internal/stats"
)

// LifetimeSample is one observed transient-server outcome, the unit an
// empirical lifetime model resamples. Survivors (Revoked == false) are
// censored at the 24 h cap; their LifetimeHours is ignored.
type LifetimeSample struct {
	GPU           model.GPU
	Region        Region
	Revoked       bool
	LifetimeHours float64
}

// EmpiricalModel replays observed lifetimes by bootstrap resampling:
// each transient launch draws one recorded outcome, uniformly at
// random, from the sample pool of its (region, GPU) cell — so the
// simulated revocation fraction, lifetime CDF, and censoring all
// converge to the trace's empirical distributions. This is how real
// spot-market data (a revstudy CSV, or the paper's published dataset
// in the same format) drives a simulation; see trace.ReadRecordsCSV.
//
// Cells the trace does not cover fall back to the default Table V
// model, so a partial trace still serves any offered scenario; Covers
// reports which cells replay from data.
type EmpiricalModel struct {
	name string
	// fallback serves uncovered cells; resolved once at construction
	// (the registry is append-only, so the default never changes).
	fallback LifetimeModel
	cells    map[cell][]LifetimeSample
}

// NewEmpiricalModel builds a replay model from samples. The name is
// the registry identity clients select the model by; it must not be
// empty. At least one sample is required — an empty trace cannot mean
// anything but a mistake.
func NewEmpiricalModel(name string, samples []LifetimeSample) (*EmpiricalModel, error) {
	if name == "" {
		return nil, fmt.Errorf("cloud: empirical lifetime model needs a name")
	}
	if len(samples) == 0 {
		return nil, fmt.Errorf("cloud: empirical lifetime model %q has no samples", name)
	}
	m := &EmpiricalModel{name: name, fallback: DefaultLifetimeModel(), cells: make(map[cell][]LifetimeSample)}
	for i, s := range samples {
		if !s.Region.Valid() || !s.GPU.Valid() {
			return nil, fmt.Errorf("cloud: sample %d names invalid placement (%v, %v)", i, s.Region, s.GPU)
		}
		// The inverted comparison also rejects NaN, which would
		// otherwise corrupt the kernel's event ordering.
		if s.Revoked && !(s.LifetimeHours > 0 && s.LifetimeHours < 24) {
			return nil, fmt.Errorf("cloud: sample %d revoked at %v h, want (0, 24)", i, s.LifetimeHours)
		}
		c := cell{s.GPU, s.Region}
		m.cells[c] = append(m.cells[c], s)
	}
	return m, nil
}

// Name returns the registry identity.
func (m *EmpiricalModel) Name() string { return m.name }

// Covers reports whether the trace has samples for the cell.
func (m *EmpiricalModel) Covers(r Region, g model.GPU) bool {
	return len(m.cells[cell{g, r}]) > 0
}

// CoveredCells renders the cells the trace replays from data, sorted,
// as "region/GPU (n)" — what pland logs at registration time.
func (m *EmpiricalModel) CoveredCells() []string {
	var out []string
	for c, ss := range m.cells {
		out = append(out, fmt.Sprintf("%v/%v (%d)", c.r, c.g, len(ss)))
	}
	sort.Strings(out)
	return out
}

// SampleLifetime bootstraps one recorded outcome for the cell.
func (m *EmpiricalModel) SampleLifetime(rng *stats.Rng, r Region, g model.GPU, launchHours float64) (bool, float64) {
	ss := m.cells[cell{g, r}]
	if len(ss) == 0 {
		return m.fallback.SampleLifetime(rng, r, g, launchHours)
	}
	s := ss[rng.Intn(len(ss))]
	if !s.Revoked {
		return false, MaxTransientLifetimeSeconds
	}
	return true, s.LifetimeHours * 3600
}
