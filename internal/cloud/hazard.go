package cloud

import (
	"math"

	"repro/internal/model"
)

// This file exposes the revocation calibration as a forward-looking
// hazard signal, so schedulers outside the cloud package (the elastic
// resize policies in internal/manager, the fleet's history-informed
// risk) can anticipate Fig. 9's revocation waves instead of merely
// reacting to them.

// DiurnalRiskRatio returns the local-hour revocation hazard for the
// cell, as a ratio to that cell's daily-mean hazard: 1.0 means an
// average hour, >1 a revocation wave (K80's 10:00 surge peaks near 5),
// <1 a quiet window (V100's 16:00–20:00 lull returns 0). The shape is
// the Fig. 9 hourWeights calibration sampleLifetime thins deaths by,
// so a policy watching this ratio sees the same waves the simulator
// lands revocations on. Unoffered cells return 1 (no information).
func DiurnalRiskRatio(r Region, g model.GPU, atHours float64) float64 {
	if !Offered(r, g) {
		return 1
	}
	weights := hourWeights[g]
	var sum float64
	for _, w := range weights {
		sum += w
	}
	if sum == 0 {
		return 1
	}
	return weights[r.LocalHour(atHours)] * 24 / sum
}

// ExpectedRevocationsPerHour is the cell's daily-mean revocation rate
// per running server, derived from Table V's 24-hour revocation
// fraction under the exponential-thinning view the simulator's
// acceptance-rejection sampling approximates: rate = -ln(1-frac)/24.
// Multiplying by DiurnalRiskRatio gives the instantaneous hazard.
// Unoffered cells return 0.
func ExpectedRevocationsPerHour(r Region, g model.GPU) float64 {
	cfg := revocationConfigs[g][r]
	if !cfg.offered || cfg.frac24h >= 1 {
		return 0
	}
	return -math.Log(1-cfg.frac24h) / 24
}
