package cloud

import (
	"math"
	"testing"

	"repro/internal/model"
)

// TestDiurnalRiskRatioShape pins the hazard signal to Fig. 9: the mean
// over a day is exactly 1, the K80 morning surge is the daily peak,
// and the V100 evening lull carries zero hazard.
func TestDiurnalRiskRatioShape(t *testing.T) {
	for _, g := range model.AllGPUs() {
		for _, r := range OfferedRegions(g) {
			var sum float64
			for h := 0; h < 24; h++ {
				sum += DiurnalRiskRatio(r, g, float64(h))
			}
			if math.Abs(sum/24-1) > 1e-9 {
				t.Fatalf("%s/%s: daily mean ratio = %v, want 1", r, g, sum/24)
			}
		}
	}
	// us-west1 is UTC-8: local hour 10 is simulation hour 18.
	peak := DiurnalRiskRatio(USWest1, model.K80, 18)
	for h := 0.0; h < 24; h++ {
		if ratio := DiurnalRiskRatio(USWest1, model.K80, h); ratio > peak {
			t.Fatalf("K80 hazard at sim hour %v (%.2f) above the 10:00 surge (%.2f)", h, ratio, peak)
		}
	}
	if peak < 4 {
		t.Fatalf("K80 10:00 surge ratio = %.2f, want the Fig. 9 spike (>4)", peak)
	}
	// V100's 16:00–19:00 local lull has no revocations at all.
	if got := DiurnalRiskRatio(USWest1, model.V100, 25); got != 0 { // sim hour 25 → local 17
		t.Fatalf("V100 evening lull ratio = %v, want 0", got)
	}
	if got := DiurnalRiskRatio(USEast1, model.V100, 0); got != 1 {
		t.Fatalf("unoffered cell ratio = %v, want the uninformative 1", got)
	}
}

// TestExpectedRevocationsPerHour pins the Table V-derived base rate:
// -ln(1-frac24h)/24, zero where the cell is not offered.
func TestExpectedRevocationsPerHour(t *testing.T) {
	got := ExpectedRevocationsPerHour(USWest1, model.K80)
	want := -math.Log(1-0.2292) / 24
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("us-west1 K80 rate = %v, want %v", got, want)
	}
	if ExpectedRevocationsPerHour(USEast1, model.V100) != 0 {
		t.Fatalf("unoffered cell should have zero expected rate")
	}
	if !(ExpectedRevocationsPerHour(USWest1, model.V100) > got) {
		t.Fatalf("V100 (73%% day loss) should out-rate K80 (23%%)")
	}
}
