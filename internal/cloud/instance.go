package cloud

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/sim"
)

// Tier distinguishes revocable transient (preemptible) servers from
// their stable on-demand counterparts.
type Tier int

const (
	// OnDemand servers run until the customer terminates them.
	OnDemand Tier = iota + 1
	// Transient servers cost a fraction of on-demand but can be
	// revoked at any time and live at most 24 hours.
	Transient
)

// String names the tier.
func (t Tier) String() string {
	switch t {
	case OnDemand:
		return "on-demand"
	case Transient:
		return "transient"
	default:
		return fmt.Sprintf("Tier(%d)", int(t))
	}
}

// ParseTier maps a tier name back to its constant.
func ParseTier(name string) (Tier, error) {
	switch name {
	case OnDemand.String():
		return OnDemand, nil
	case Transient.String():
		return Transient, nil
	default:
		return 0, fmt.Errorf("cloud: unknown tier %q (want on-demand or transient)", name)
	}
}

// State is an instance lifecycle state. The provisioning → staging →
// running progression mirrors the GCE instance life cycle the paper
// instruments (§V-A).
type State int

const (
	// Requested: accepted by the provider, not yet provisioning.
	Requested State = iota + 1
	// Provisioning: resources are being allocated.
	Provisioning
	// Staging: resources acquired, instance being prepared to boot.
	Staging
	// Running: booted and available to the training cluster.
	Running
	// Revoked: preempted by the provider (transient only).
	Revoked
	// Terminated: stopped by the customer or by the 24 h lifetime cap.
	Terminated
)

// String names the state.
func (s State) String() string {
	switch s {
	case Requested:
		return "requested"
	case Provisioning:
		return "provisioning"
	case Staging:
		return "staging"
	case Running:
		return "running"
	case Revoked:
		return "revoked"
	case Terminated:
		return "terminated"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Done reports whether the state is terminal.
func (s State) Done() bool { return s == Revoked || s == Terminated }

// StartupBreakdown records the duration of each startup stage, the
// quantity Fig. 6 breaks down.
type StartupBreakdown struct {
	Provisioning float64 // seconds
	Staging      float64
	Booting      float64
}

// Total returns the end-to-end startup time in seconds.
func (b StartupBreakdown) Total() float64 {
	return b.Provisioning + b.Staging + b.Booting
}

// Instance is one cloud GPU (or CPU) server. All fields are managed by
// the Provider on the simulation thread; callers must not mutate them.
type Instance struct {
	ID     int64
	Region Region
	GPU    model.GPU // zero for CPU-only instances (parameter servers)
	Tier   Tier
	// Stressed marks instances the measurement campaign loads with
	// CPU/memory/GPU work; Table V shows revocation is independent of
	// it, and the simulator honors that by construction.
	Stressed bool

	state   State
	startup StartupBreakdown
	// hourlyUSD is the price struck at acceptance from the provider's
	// spec; zero only for instances never accepted by a provider, which
	// fall back to the default (gce) book.
	hourlyUSD float64
	// holdsSlot marks a transient instance occupying a slot of a
	// capacity-constrained pool cell; the provider releases the slot
	// exactly once, on the transition to a terminal state.
	holdsSlot bool

	RequestedAt sim.Time
	RunningAt   sim.Time // valid once state reaches Running
	EndedAt     sim.Time // valid once state is terminal

	revocationTimer sim.Handle
	onRunning       func(*Instance)
	onRevoked       func(*Instance)
}

// State returns the current lifecycle state.
func (in *Instance) State() State { return in.state }

// Startup returns the per-stage startup breakdown. It is fully
// populated once the instance reaches Running.
func (in *Instance) Startup() StartupBreakdown { return in.startup }

// LifetimeSeconds returns the time spent Running, using now for
// still-running instances.
func (in *Instance) LifetimeSeconds(now sim.Time) float64 {
	if in.state == Requested || in.state == Provisioning || in.state == Staging {
		return 0
	}
	end := now
	if in.state.Done() {
		end = in.EndedAt
	}
	return float64(end - in.RunningAt)
}

// WasRevoked reports whether the instance ended by provider revocation
// rather than customer termination or the lifetime cap.
func (in *Instance) WasRevoked() bool { return in.state == Revoked }

// HourlyPrice returns the instance's hourly price in USD: the rate
// struck when the provider accepted the request.
func (in *Instance) HourlyPrice() float64 {
	if in.hourlyUSD > 0 {
		return in.hourlyUSD
	}
	if in.GPU == 0 {
		return model.ParameterServerHourly
	}
	return model.HourlyPrice(in.GPU, in.Tier == Transient)
}

// Cost returns the accumulated cost in USD at time now, charging from
// the start of provisioning (clouds bill from acceptance, not boot).
func (in *Instance) Cost(now sim.Time) float64 {
	end := now
	if in.state.Done() {
		end = in.EndedAt
	}
	if end < in.RequestedAt {
		return 0
	}
	hours := float64(end-in.RequestedAt) / 3600
	return hours * in.HourlyPrice()
}
