package cloud

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/model"
	"repro/internal/stats"
)

// LifetimeModel decides how long a transient server lives: every
// revocation regime the simulator can explore — the paper's Table V
// calibration, parametric alternatives, or an empirical trace replay —
// implements this one interface. The provider asks it once per
// transient instance, at the moment the instance reaches Running.
//
// Implementations must be stateless after construction (the planner
// samples from many goroutines at once, each with its own rng) and
// must uphold the lifetime invariants the property tests pin: the
// returned lifetime is in (0, MaxTransientLifetimeSeconds]; revoked
// lifetimes are strictly below the cap; survivors return exactly the
// cap.
type LifetimeModel interface {
	// Name is the model's registry identity, e.g. "table5" or
	// "weibull"; it appears in scenario keys, so equal names must mean
	// equal sampling behavior.
	Name() string
	// SampleLifetime draws (revoked, lifetimeSeconds) for a transient
	// server of the given type that reached Running at launchHours
	// (absolute simulation hours; the simulation starts at 00:00 UTC).
	SampleLifetime(rng *stats.Rng, r Region, g model.GPU, launchHours float64) (revoked bool, lifetimeSeconds float64)
}

// DefaultLifetimeModelName names the model every simulation uses
// unless a scenario selects otherwise: the Table V calibration with
// Fig. 8 lifetime shapes and Fig. 9 time-of-day structure.
const DefaultLifetimeModelName = "table5"

// lifetimeRegistry maps model names to implementations. Builtins are
// registered at init; cmd/pland registers trace-replay models at
// startup. Reads vastly outnumber writes, hence the RWMutex.
var (
	lifetimeMu       sync.RWMutex
	lifetimeRegistry = map[string]LifetimeModel{}
)

func init() {
	for _, m := range []LifetimeModel{
		tableVModel{},
		newWeibullModel(),
		newDiurnalModel(),
		norevokeModel{},
		newCalmWeibullModel(),
	} {
		RegisterLifetimeModel(m)
	}
}

// RegisterLifetimeModel adds a model to the registry. Names are
// first-come-first-served and conflicts are programmer errors, so a
// duplicate (or empty) name panics with the offending name rather
// than returning an error a startup path could ignore: a custom model
// must never silently shadow a builtin (scenario keys embed the name,
// and the planner cache depends on a name meaning one sampling
// behavior for the life of the process). Callers registering
// user-supplied names (cmd/pland -trace) pre-check with
// LookupLifetimeModel.
func RegisterLifetimeModel(m LifetimeModel) {
	name := m.Name()
	if name == "" {
		panic("cloud: lifetime model has an empty name")
	}
	lifetimeMu.Lock()
	defer lifetimeMu.Unlock()
	if _, dup := lifetimeRegistry[name]; dup {
		panic(fmt.Sprintf("cloud: lifetime model %q already registered", name))
	}
	lifetimeRegistry[name] = m
}

// LookupLifetimeModel resolves a model name; the empty string means
// the default. Unknown names report the available ones.
func LookupLifetimeModel(name string) (LifetimeModel, error) {
	if name == "" {
		name = DefaultLifetimeModelName
	}
	lifetimeMu.RLock()
	m, ok := lifetimeRegistry[name]
	lifetimeMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("cloud: unknown lifetime model %q (available: %v)", name, LifetimeModelNames())
	}
	return m, nil
}

// DefaultLifetimeModel returns the Table V calibration model.
func DefaultLifetimeModel() LifetimeModel {
	m, err := LookupLifetimeModel(DefaultLifetimeModelName)
	if err != nil {
		panic(err) // registered at init; unreachable
	}
	return m
}

// LifetimeModelNames lists every registered model, sorted, with the
// default first — the order /v1/catalog reports.
func LifetimeModelNames() []string {
	lifetimeMu.RLock()
	names := make([]string, 0, len(lifetimeRegistry))
	for name := range lifetimeRegistry {
		if name != DefaultLifetimeModelName {
			names = append(names, name)
		}
	}
	lifetimeMu.RUnlock()
	sort.Strings(names)
	return append([]string{DefaultLifetimeModelName}, names...)
}

// tableVModel is the default regime: the cell-by-cell Table V
// calibration (revocation fraction, early-death mass, body skew) with
// deaths thinned onto Fig. 9's local-hour hazard — exactly the
// sampler the provider has always used, now behind the interface.
type tableVModel struct{}

func (tableVModel) Name() string { return DefaultLifetimeModelName }

func (tableVModel) SampleLifetime(rng *stats.Rng, r Region, g model.GPU, launchHours float64) (bool, float64) {
	return sampleLifetime(rng, r, g, launchHours)
}
