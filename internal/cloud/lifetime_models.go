package cloud

import (
	"math"

	"repro/internal/model"
	"repro/internal/stats"
)

// This file holds the parametric alternatives to the Table V
// calibration. Both are anchored to the same published numbers — every
// cell keeps its Table V revocation fraction — but disagree with the
// default about *when* inside the 24 h window deaths land, which is
// exactly the axis the paper's Figs. 8–9 show matters for training
// cost. See DESIGN.md "Calibration record".

type cell struct {
	g model.GPU
	r Region
}

// offeredCells enumerates the non-N/A cells of Table V in a stable
// order (GPU, then region).
func offeredCells() []cell {
	var out []cell
	for _, g := range model.AllGPUs() {
		for _, r := range AllRegions() {
			if Offered(r, g) {
				out = append(out, cell{g, r})
			}
		}
	}
	return out
}

// --- Weibull ---------------------------------------------------------

// weibullParams holds one cell's fitted scale λ (hours) and shape k.
type weibullParams struct {
	scale, shape float64
}

// weibullModel replaces each cell's empirical lifetime shape with a
// two-parameter Weibull, the textbook hazard family for front-loaded
// ("infant mortality", k < 1) versus wear-out (k > 1) failure. The fit
// preserves two quantiles of the default calibration per cell: the
// 24 h revocation fraction (Table V, exactly) and the median lifetime
// conditional on revocation (matched to the default model's mixture
// CDF). It carries no time-of-day structure — comparing it against
// "diurnal" isolates what Fig. 9's hour-of-day hazard is worth.
type weibullModel struct {
	params map[cell]weibullParams
}

func newWeibullModel() *weibullModel {
	m := &weibullModel{params: make(map[cell]weibullParams)}
	for _, c := range offeredCells() {
		cfg := revocationConfigs[c.g][c.r]
		m.params[c] = fitWeibull(cfg)
	}
	return m
}

// fitWeibull solves for (λ, k) from two constraints:
//
//	P(X < 24)        = frac24h            (Table V, exact)
//	median(X | X<24) = calibrated median  (Fig. 8 shape anchor)
//
// With L1 = -ln(1 - frac/2) and L2 = -ln(1 - frac), the conditional
// median m satisfies (m/λ)^k = L1 and (24/λ)^k = L2, so
// k = ln(L1/L2) / ln(m/24) and λ = 24 / L2^(1/k).
func fitWeibull(cfg revocationConfig) weibullParams {
	m := conditionalMedianHours(cfg)
	l1 := -math.Log(1 - cfg.frac24h/2)
	l2 := -math.Log(1 - cfg.frac24h)
	k := math.Log(l1/l2) / math.Log(m/24)
	return weibullParams{scale: 24 / math.Pow(l2, 1/k), shape: k}
}

// conditionalMedianHours computes the default calibration's median
// lifetime given revocation by bisecting its mixture CDF: with
// probability pEarly an early death (exponential, redrawn uniform past
// 2 h), otherwise the body 2 + 22·u^bodyBias.
func conditionalMedianHours(cfg revocationConfig) float64 {
	cdf := func(x float64) float64 {
		var early float64
		switch {
		case x <= 0:
			early = 0
		case x < 2:
			// P(E ≤ x) plus the mass redrawn uniformly on (0.02, 2).
			early = 1 - math.Exp(-x/cfg.earlyMeanH)
			if x > 0.02 {
				early += math.Exp(-2/cfg.earlyMeanH) * (x - 0.02) / 1.98
			}
			if early > 1 {
				early = 1
			}
		default:
			early = 1
		}
		var body float64
		switch {
		case x <= 2:
			body = 0
		case x >= 24:
			body = 1
		default:
			body = math.Pow((x-2)/22, 1/cfg.bodyBias)
		}
		return cfg.pEarly*early + (1-cfg.pEarly)*body
	}
	lo, hi := 1.0/60, 23.98
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		if cdf(mid) < 0.5 {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

func (*weibullModel) Name() string { return "weibull" }

func (m *weibullModel) SampleLifetime(rng *stats.Rng, r Region, g model.GPU, launchHours float64) (bool, float64) {
	p, ok := m.params[cell{g, r}]
	if !ok {
		panic("cloud: weibull lifetime for unoffered placement")
	}
	x := rng.Weibull(p.scale, p.shape)
	if x >= 24 {
		return false, MaxTransientLifetimeSeconds
	}
	if x < 1.0/60 {
		x = 1.0 / 60
	}
	return true, x * 3600
}

// --- No-revocation ---------------------------------------------------

// norevokeModel is the serverless-style regime: nothing is ever
// revoked; every server survives to the lifetime cap. It anchors the
// provider-worlds comparison — a market where the paper's entire
// revocation machinery is worth exactly the price difference.
type norevokeModel struct{}

func (norevokeModel) Name() string { return "norevoke" }

func (norevokeModel) SampleLifetime(rng *stats.Rng, r Region, g model.GPU, launchHours float64) (bool, float64) {
	return false, MaxTransientLifetimeSeconds
}

// --- Calm Weibull ----------------------------------------------------

// calmKeepFraction is the fraction of weibull revocations the calm
// regime keeps: every cell's 24 h revocation probability is halved
// while the conditional lifetime shape is untouched.
const calmKeepFraction = 0.5

// calmWeibullModel thins the weibull refit's revocations: each death
// the base model draws survives instead with probability
// 1 − calmKeepFraction. It models a market with the same catalog but a
// materially calmer revocation climate — the axis the authors' own
// "Speeding up Deep Learning with Transient Servers" varies across
// providers — and is the default regime of the synthetic aws world.
type calmWeibullModel struct {
	base LifetimeModel
}

func newCalmWeibullModel() *calmWeibullModel {
	return &calmWeibullModel{base: newWeibullModel()}
}

func (*calmWeibullModel) Name() string { return "calm-weibull" }

func (m *calmWeibullModel) SampleLifetime(rng *stats.Rng, r Region, g model.GPU, launchHours float64) (bool, float64) {
	revoked, life := m.base.SampleLifetime(rng, r, g, launchHours)
	if revoked && !rng.Bernoulli(calmKeepFraction) {
		return false, MaxTransientLifetimeSeconds
	}
	return revoked, life
}

// --- Diurnal ---------------------------------------------------------

// diurnalModel is a non-homogeneous Poisson revocation process: the
// hazard is piecewise-constant over region-local hours, proportional
// to Fig. 9's hour weights, and scaled per cell so the probability of
// revocation inside the 24 h cap equals the Table V fraction exactly.
// Where the default model *thins* its calibrated lifetime CDF onto the
// hourly weights (keeping Fig. 8's marginal shape), this model lets
// the hour-of-day hazard fully determine the lifetime distribution —
// memoryless within an hour, so a server's survival depends only on
// the hazard hours it has crossed.
type diurnalModel struct {
	// rates[g][h] is the hazard (per hour) during local hour h, shared
	// by every region, before the per-cell scale.
	rates map[model.GPU][24]float64
	// scale[cell] multiplies the shared profile so that the integral
	// over any 24 h window is -ln(1 - frac24h).
	scale map[cell]float64
}

func newDiurnalModel() *diurnalModel {
	m := &diurnalModel{
		rates: make(map[model.GPU][24]float64),
		scale: make(map[cell]float64),
	}
	for _, g := range model.AllGPUs() {
		weights := hourWeights[g]
		var sum float64
		for _, w := range weights {
			sum += w
		}
		var rates [24]float64
		for h, w := range weights {
			rates[h] = w / sum // integrates to 1 over any 24 h window
		}
		m.rates[g] = rates
	}
	for _, c := range offeredCells() {
		cfg := revocationConfigs[c.g][c.r]
		m.scale[c] = -math.Log(1 - cfg.frac24h)
	}
	return m
}

func (*diurnalModel) Name() string { return "diurnal" }

func (m *diurnalModel) SampleLifetime(rng *stats.Rng, r Region, g model.GPU, launchHours float64) (bool, float64) {
	scale, ok := m.scale[cell{g, r}]
	if !ok {
		panic("cloud: diurnal lifetime for unoffered placement")
	}
	rates := m.rates[g]
	// Invert the piecewise-constant hazard: spend an Exp(1) budget
	// walking hour segments from the launch instant; each local hour
	// visited exactly once per 24 h, so the total integral is `scale`
	// and P(survive) = exp(-scale) = 1 - frac24h by construction.
	budget := rng.Exponential(1)
	t := launchHours
	elapsed := 0.0
	for elapsed < 24 {
		dt := math.Floor(t) + 1 - t // to the next wall-clock hour boundary
		if elapsed+dt > 24 {
			dt = 24 - elapsed
		}
		rate := scale * rates[r.LocalHour(t)]
		if rate > 0 && rate*dt >= budget {
			life := elapsed + budget/rate
			if life >= 24 {
				break
			}
			if life < 1.0/60 {
				life = 1.0 / 60
			}
			return true, life * 3600
		}
		budget -= rate * dt
		elapsed += dt
		t += dt
	}
	return false, MaxTransientLifetimeSeconds
}
