package cloud

import (
	"testing"
	"testing/quick"

	"repro/internal/model"
	"repro/internal/stats"
)

// Property: for every offered (region, GPU) cell and any launch time,
// sampled lifetimes are within (0, 24 h], revocations never exceed the
// cap, and the revocation flag is consistent with the lifetime.
func TestQuickLifetimeInvariants(t *testing.T) {
	f := func(seed int64, launchHourRaw uint16) bool {
		rng := stats.NewRng(seed)
		launchHours := float64(launchHourRaw % (24 * 14))
		for _, g := range model.AllGPUs() {
			for _, r := range OfferedRegions(g) {
				revoked, lifetime := sampleLifetime(rng, r, g, launchHours)
				if lifetime <= 0 || lifetime > MaxTransientLifetimeSeconds {
					return false
				}
				if !revoked && lifetime != MaxTransientLifetimeSeconds {
					return false
				}
				if revoked && lifetime >= MaxTransientLifetimeSeconds {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: every offered cell's long-run revocation fraction stays
// within binomial reach of its Table V calibration.
func TestLifetimeFractionsMatchCalibration(t *testing.T) {
	for g, regions := range revocationConfigs {
		for r, cfg := range regions {
			if !cfg.offered {
				continue
			}
			rng := stats.NewRng(int64(g)*100 + int64(r))
			const n = 4000
			revoked := 0
			for i := 0; i < n; i++ {
				if rev, _ := sampleLifetime(rng, r, g, float64(i%24)); rev {
					revoked++
				}
			}
			got := float64(revoked) / n
			if diff := got - cfg.frac24h; diff > 0.03 || diff < -0.03 {
				t.Errorf("%v/%v revocation fraction = %.3f, calibrated %.3f", r, g, got, cfg.frac24h)
			}
		}
	}
}
