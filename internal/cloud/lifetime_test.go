package cloud

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/stats"
)

func TestLifetimeModelRegistry(t *testing.T) {
	names := LifetimeModelNames()
	if len(names) < 3 || names[0] != DefaultLifetimeModelName {
		t.Fatalf("LifetimeModelNames() = %v, want default first with ≥3 builtins", names)
	}
	for _, name := range []string{"", "table5", "weibull", "diurnal"} {
		m, err := LookupLifetimeModel(name)
		if err != nil {
			t.Fatalf("LookupLifetimeModel(%q): %v", name, err)
		}
		want := name
		if want == "" {
			want = DefaultLifetimeModelName
		}
		if m.Name() != want {
			t.Fatalf("LookupLifetimeModel(%q).Name() = %q", name, m.Name())
		}
	}
	if _, err := LookupLifetimeModel("no-such-model"); err == nil ||
		!strings.Contains(err.Error(), "available") {
		t.Fatalf("unknown model lookup = %v, want an error listing the registry", err)
	}
	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("re-registering a builtin name must panic")
			}
			if msg := fmt.Sprint(r); !strings.Contains(msg, DefaultLifetimeModelName) {
				t.Fatalf("duplicate-registration panic %q does not name the offender %q", msg, DefaultLifetimeModelName)
			}
		}()
		RegisterLifetimeModel(tableVModel{})
	}()
}

// TestLifetimeModelInvariants holds every registered builtin to the
// contract the provider relies on: lifetimes in (0, cap], survivors
// exactly at the cap, revocations strictly below it.
func TestLifetimeModelInvariants(t *testing.T) {
	for _, name := range LifetimeModelNames() {
		m, err := LookupLifetimeModel(name)
		if err != nil {
			t.Fatal(err)
		}
		rng := stats.NewRng(99)
		for _, g := range model.AllGPUs() {
			for _, r := range OfferedRegions(g) {
				for i := 0; i < 300; i++ {
					revoked, life := m.SampleLifetime(rng, r, g, float64(i)*1.7)
					if life <= 0 || life > MaxTransientLifetimeSeconds {
						t.Fatalf("%s %v/%v: lifetime %v out of (0, cap]", name, r, g, life)
					}
					if !revoked && life != MaxTransientLifetimeSeconds {
						t.Fatalf("%s %v/%v: survivor lifetime %v != cap", name, r, g, life)
					}
					if revoked && life >= MaxTransientLifetimeSeconds {
						t.Fatalf("%s %v/%v: revocation at/past cap", name, r, g)
					}
				}
			}
		}
	}
}

// TestParametricModelsKeepTableVFractions: weibull and diurnal anchor
// every cell's 24 h revocation probability to the Table V calibration,
// whatever they do to the lifetime shape.
func TestParametricModelsKeepTableVFractions(t *testing.T) {
	for _, name := range []string{"weibull", "diurnal"} {
		m, err := LookupLifetimeModel(name)
		if err != nil {
			t.Fatal(err)
		}
		for g, regions := range revocationConfigs {
			for r, cfg := range regions {
				if !cfg.offered {
					continue
				}
				rng := stats.NewRng(int64(g)*1000 + int64(r))
				const n = 4000
				revoked := 0
				for i := 0; i < n; i++ {
					if rev, _ := m.SampleLifetime(rng, r, g, float64(i%24)); rev {
						revoked++
					}
				}
				got := float64(revoked) / n
				if math.Abs(got-cfg.frac24h) > 0.03 {
					t.Errorf("%s %v/%v revocation fraction = %.3f, calibrated %.3f", name, r, g, got, cfg.frac24h)
				}
			}
		}
	}
}

// TestWeibullMatchesConditionalMedian: the second fitted quantile — the
// median lifetime given revocation — tracks the default calibration.
func TestWeibullMatchesConditionalMedian(t *testing.T) {
	m, err := LookupLifetimeModel("weibull")
	if err != nil {
		t.Fatal(err)
	}
	cfg := revocationConfigs[model.K80][USWest1] // back-loaded cell
	wantMedian := conditionalMedianHours(cfg)
	rng := stats.NewRng(5)
	var lifetimes []float64
	for i := 0; i < 20000; i++ {
		if rev, life := m.SampleLifetime(rng, USWest1, model.K80, 0); rev {
			lifetimes = append(lifetimes, life/3600)
		}
	}
	if len(lifetimes) < 1000 {
		t.Fatalf("too few revocations (%d)", len(lifetimes))
	}
	below := 0
	for _, l := range lifetimes {
		if l < wantMedian {
			below++
		}
	}
	if frac := float64(below) / float64(len(lifetimes)); math.Abs(frac-0.5) > 0.03 {
		t.Errorf("P(life < fitted median %.2f h) = %.3f, want ≈0.5", wantMedian, frac)
	}
}

// TestDiurnalQuietHoursAreExact: where the default model's
// acceptance-rejection sampler tolerates tiny leakage into Fig. 9's
// V100 quiet window, the diurnal hazard is exactly zero there.
func TestDiurnalQuietHoursAreExact(t *testing.T) {
	m, err := LookupLifetimeModel("diurnal")
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRng(17)
	total := 0
	for i := 0; i < 6000; i++ {
		launch := float64(i%48) * 0.5
		revoked, life := m.SampleLifetime(rng, USCentral1, model.V100, launch)
		if !revoked {
			continue
		}
		total++
		h := USCentral1.LocalHour(launch + life/3600)
		if h >= 16 && h < 20 {
			t.Fatalf("diurnal V100 revocation at local hour %d (launch %.1f, life %.2f h)", h, launch, life/3600)
		}
	}
	if total < 500 {
		t.Fatalf("too few revocations (%d) to assess quiet hours", total)
	}
}

func TestEmpiricalModelBootstrapsTrace(t *testing.T) {
	samples := []LifetimeSample{
		{GPU: model.K80, Region: USWest1, Revoked: true, LifetimeHours: 3.5},
		{GPU: model.K80, Region: USWest1, Revoked: true, LifetimeHours: 11.25},
		{GPU: model.K80, Region: USWest1, Revoked: false, LifetimeHours: 24},
	}
	m, err := NewEmpiricalModel("spot-trace", samples)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Covers(USWest1, model.K80) || m.Covers(USEast1, model.K80) {
		t.Fatal("Covers misreports trace coverage")
	}
	rng := stats.NewRng(1)
	seen := map[float64]int{}
	for i := 0; i < 3000; i++ {
		revoked, life := m.SampleLifetime(rng, USWest1, model.K80, float64(i))
		if !revoked {
			if life != MaxTransientLifetimeSeconds {
				t.Fatal("censored draw must survive to the cap")
			}
			seen[24]++
			continue
		}
		seen[life/3600]++
	}
	for _, h := range []float64{3.5, 11.25, 24} {
		if frac := float64(seen[h]) / 3000; math.Abs(frac-1.0/3) > 0.05 {
			t.Errorf("bootstrap weight of %.2f h draw = %.3f, want ≈1/3", h, frac)
		}
	}
	if len(seen) != 3 {
		t.Errorf("bootstrap produced values outside the trace: %v", seen)
	}

	// Uncovered cells fall back to the default calibration rather than
	// failing a scenario the trace merely did not observe.
	fallbackRevoked := 0
	for i := 0; i < 2000; i++ {
		if rev, _ := m.SampleLifetime(rng, EuropeWest1, model.K80, float64(i%24)); rev {
			fallbackRevoked++
		}
	}
	want := revocationConfigs[model.K80][EuropeWest1].frac24h
	if got := float64(fallbackRevoked) / 2000; math.Abs(got-want) > 0.04 {
		t.Errorf("fallback revocation fraction = %.3f, want Table V's %.3f", got, want)
	}
}

func TestEmpiricalModelValidation(t *testing.T) {
	ok := []LifetimeSample{{GPU: model.K80, Region: USWest1, Revoked: true, LifetimeHours: 2}}
	if _, err := NewEmpiricalModel("", ok); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := NewEmpiricalModel("x", nil); err == nil {
		t.Error("empty trace accepted")
	}
	bad := []LifetimeSample{{GPU: model.K80, Region: Region(42), Revoked: true, LifetimeHours: 2}}
	if _, err := NewEmpiricalModel("x", bad); err == nil {
		t.Error("invalid region accepted")
	}
	bad = []LifetimeSample{{GPU: model.K80, Region: USWest1, Revoked: true, LifetimeHours: 25}}
	if _, err := NewEmpiricalModel("x", bad); err == nil {
		t.Error("revocation past the cap accepted")
	}
	bad = []LifetimeSample{{GPU: model.K80, Region: USWest1, Revoked: true, LifetimeHours: math.NaN()}}
	if _, err := NewEmpiricalModel("x", bad); err == nil {
		t.Error("NaN lifetime accepted")
	}
}

// TestProviderHonorsLifetimeModel runs transient servers under an
// empirical single-point trace: every revocation must land at the
// trace's one recorded lifetime.
func TestProviderHonorsLifetimeModel(t *testing.T) {
	m, err := NewEmpiricalModel("point-mass", []LifetimeSample{
		{GPU: model.K80, Region: USWest1, Revoked: true, LifetimeHours: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	k := &sim.Kernel{}
	p := NewProviderWithLifetime(k, stats.NewRng(3), m)
	if p.Lifetime() != m {
		t.Fatal("provider does not expose its lifetime model")
	}
	var ins []*Instance
	for i := 0; i < 20; i++ {
		ins = append(ins, p.MustLaunch(Request{Region: USWest1, GPU: model.K80, Tier: Transient}))
	}
	k.Run()
	for _, in := range ins {
		if !in.WasRevoked() {
			t.Fatal("point-mass trace revokes everything")
		}
		if got := in.LifetimeSeconds(k.Now()); math.Abs(got-5*3600) > 1e-6 {
			t.Fatalf("lifetime %v, want exactly 5 h", got)
		}
	}
}

// TestDefaultProviderUnchangedByRefactor: NewProvider and an explicit
// table5 NewProviderWithLifetime must consume randomness identically —
// the property that keeps every golden snapshot stable.
func TestDefaultProviderUnchangedByRefactor(t *testing.T) {
	run := func(mk func(*sim.Kernel, *stats.Rng) *Provider) []float64 {
		k := &sim.Kernel{}
		p := mk(k, stats.NewRng(8))
		for i := 0; i < 40; i++ {
			p.MustLaunch(Request{Region: EuropeWest1, GPU: model.K80, Tier: Transient})
		}
		k.Run()
		var out []float64
		for _, in := range p.Instances() {
			out = append(out, in.LifetimeSeconds(k.Now()))
		}
		return out
	}
	a := run(NewProvider)
	b := run(func(k *sim.Kernel, rng *stats.Rng) *Provider {
		return NewProviderWithLifetime(k, rng, DefaultLifetimeModel())
	})
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("instance %d lifetime differs: %v vs %v", i, a[i], b[i])
		}
	}
}
