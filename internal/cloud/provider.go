package cloud

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Request describes one instance acquisition. OnRunning and OnRevoked
// are invoked on the simulation thread; either may be nil.
type Request struct {
	Region   Region
	GPU      model.GPU // zero requests a CPU-only server (parameter server)
	Tier     Tier
	Stressed bool
	// OnRunning fires when the instance finishes booting.
	OnRunning func(*Instance)
	// OnRevoked fires if the provider preempts the instance. Google
	// Cloud gives a ~30 s ACPI warning before killing a preemptible
	// VM; CM-DARE's shutdown-script hook runs inside that window, so
	// the callback is the simulation analogue of that hook.
	OnRevoked func(*Instance)
}

// Provider is the simulated cloud. It is not safe for concurrent use;
// everything runs on the simulation thread.
type Provider struct {
	k        *sim.Kernel
	rng      *stats.Rng
	spec     *ProviderSpec
	lifetime LifetimeModel

	nextID int64
	// lastRevocation tracks, per region, when capacity last churned;
	// requests inside the churn window get Fig. 7's higher startup
	// variance.
	lastRevocation map[Region]sim.Time
	hasRevocation  map[Region]bool

	// capacity optionally bounds the transient pool per (region, GPU)
	// cell; see capacity.go. Nil means every cell is infinite, which is
	// the pre-fleet behavior exactly.
	capacity        Capacity
	inUse           map[PoolKey]int
	onCapacityFreed func(PoolKey)

	instances []*Instance
}

// NewProvider returns a provider bound to the kernel, drawing all
// randomness from rng (which it forks, so the caller's stream is
// unaffected by provider internals). Transient lifetimes follow the
// default Table V calibration; use NewProviderWithLifetime to simulate
// a different revocation regime.
func NewProvider(k *sim.Kernel, rng *stats.Rng) *Provider {
	return NewProviderWithLifetime(k, rng, nil)
}

// NewProviderWithLifetime is NewProvider under an explicit revocation
// regime; a nil model means the default.
func NewProviderWithLifetime(k *sim.Kernel, rng *stats.Rng, m LifetimeModel) *Provider {
	return NewProviderFor(k, rng, nil, m)
}

// NewProviderFor instantiates one market: a provider whose catalog,
// prices, startup behavior, default lifetime regime, and default
// capacity come from the spec. A nil spec means the default (gce)
// world; a nil lifetime model means the spec's default regime. The
// rng is forked exactly once, so construction consumes the same
// number of caller draws on every path — the byte-identity guarantee
// the goldens rest on.
func NewProviderFor(k *sim.Kernel, rng *stats.Rng, spec *ProviderSpec, m LifetimeModel) *Provider {
	if spec == nil {
		spec = DefaultProvider()
	}
	if m == nil {
		var err error
		m, err = LookupLifetimeModel(spec.LifetimeModel)
		if err != nil {
			panic(err) // RegisterProvider validated the name; unreachable
		}
	}
	return &Provider{
		k:              k,
		rng:            rng.Fork(),
		spec:           spec,
		lifetime:       m,
		capacity:       spec.Capacity.Clone(),
		lastRevocation: make(map[Region]sim.Time),
		hasRevocation:  make(map[Region]bool),
	}
}

// Lifetime returns the revocation regime this provider simulates.
func (p *Provider) Lifetime() LifetimeModel { return p.lifetime }

// Spec returns the market this provider instantiates.
func (p *Provider) Spec() *ProviderSpec { return p.spec }

// Now returns the provider's virtual clock.
func (p *Provider) Now() sim.Time { return p.k.Now() }

// Kernel exposes the simulation kernel so higher layers (training
// cluster, campaigns) can schedule their own events in the same time
// domain.
func (p *Provider) Kernel() *sim.Kernel { return p.k }

// Instances returns all instances ever requested, in request order.
// The slice is a copy: callers (trackers, fleet schedulers) iterate
// and filter it freely without being able to corrupt the provider's
// own bookkeeping by aliasing.
func (p *Provider) Instances() []*Instance {
	out := make([]*Instance, len(p.instances))
	copy(out, p.instances)
	return out
}

// Launch requests an instance and schedules its whole lifecycle. It
// returns the instance immediately (in Requested state); the instance
// transitions through provisioning, staging and booting on the virtual
// clock and then fires req.OnRunning.
//
// It returns an error if the placement is not offered (Table V's N/A
// cells) — GPU requests only; CPU-only servers are available
// everywhere — or an ErrNoCapacity-wrapped error if the placement is a
// transient GPU cell whose configured pool is fully in use (see
// capacity.go; the default pool is infinite and never rejects).
func (p *Provider) Launch(req Request) (*Instance, error) {
	if !req.Region.Valid() {
		return nil, fmt.Errorf("cloud: invalid region %d", int(req.Region))
	}
	if req.GPU != 0 {
		if !req.GPU.Valid() {
			return nil, fmt.Errorf("cloud: invalid GPU %d", int(req.GPU))
		}
		if !p.spec.Offers(req.Region, req.GPU) {
			return nil, fmt.Errorf("cloud: %v not offered in %v by provider %s", req.GPU, req.Region, p.spec.Name)
		}
	}
	p.nextID++
	in := &Instance{
		ID:          p.nextID,
		Region:      req.Region,
		GPU:         req.GPU,
		Tier:        req.Tier,
		Stressed:    req.Stressed,
		state:       Requested,
		RequestedAt: p.k.Now(),
		onRunning:   req.OnRunning,
		onRevoked:   req.OnRevoked,
	}
	// Prices are struck at acceptance from the market's book; the gce
	// book computes the exact same floats the instance used to derive
	// from package model constants, keeping historical costs
	// bit-identical.
	if req.GPU == 0 {
		in.hourlyUSD = p.spec.PSHourly
	} else {
		in.hourlyUSD = p.spec.GPUHourly(req.GPU, req.Tier)
	}
	if err := p.acquireSlot(in); err != nil {
		p.nextID-- // the request was rejected, not accepted then killed
		return nil, err
	}
	p.instances = append(p.instances, in)

	churning := p.churning(req.Region)
	in.startup = p.spec.Startup(p.rng, req.GPU, req.Tier, req.Region, churning)

	in.state = Provisioning
	p.k.After(in.startup.Provisioning, func() {
		if in.state != Provisioning {
			return // terminated while provisioning
		}
		in.state = Staging
		p.k.After(in.startup.Staging, func() {
			if in.state != Staging {
				return
			}
			p.k.After(in.startup.Booting, func() {
				if in.state != Staging {
					return
				}
				p.run(in)
			})
		})
	})
	return in, nil
}

// MustLaunch is Launch for callers that have already validated the
// placement; it panics on error.
func (p *Provider) MustLaunch(req Request) *Instance {
	in, err := p.Launch(req)
	if err != nil {
		panic(err)
	}
	return in
}

// run transitions the instance to Running and, for transient servers,
// schedules its revocation or lifetime-cap termination.
func (p *Provider) run(in *Instance) {
	in.state = Running
	in.RunningAt = p.k.Now()
	if in.Tier == Transient {
		revoked, lifetime := p.lifetime.SampleLifetime(p.rng, in.Region, gpuOrK80(in.GPU), in.RunningAt.Hours())
		if revoked {
			in.revocationTimer = p.k.After(lifetime, func() { p.revoke(in) })
		} else {
			in.revocationTimer = p.k.After(lifetime, func() { p.expire(in) })
		}
	}
	if in.onRunning != nil {
		in.onRunning(in)
	}
}

// gpuOrK80 maps CPU-only transient servers onto the K80 revocation
// profile of their region; the paper never uses transient parameter
// servers, but the simulator should not crash if an experiment does.
func gpuOrK80(g model.GPU) model.GPU {
	if g == 0 {
		return model.K80
	}
	return g
}

// revoke preempts a running transient instance. The pool slot frees
// before OnRevoked runs (so the victim's immediate replacement can
// reclaim it, §V-B) but the capacity-freed hook fires after (so a
// fleet scheduler sees the post-replacement state of the pool).
func (p *Provider) revoke(in *Instance) {
	if in.state != Running {
		return
	}
	in.state = Revoked
	in.EndedAt = p.k.Now()
	p.lastRevocation[in.Region] = p.k.Now()
	p.hasRevocation[in.Region] = true
	key, freed := p.releaseSlot(in)
	if in.onRevoked != nil {
		in.onRevoked(in)
	}
	if freed {
		p.notifyFreed(key)
	}
}

// expire terminates a transient instance at the 24 h lifetime cap.
func (p *Provider) expire(in *Instance) {
	if in.state != Running {
		return
	}
	in.state = Terminated
	in.EndedAt = p.k.Now()
	if key, freed := p.releaseSlot(in); freed {
		p.notifyFreed(key)
	}
}

// Terminate stops an instance at the customer's request. Terminating
// an already-ended instance is a no-op.
func (p *Provider) Terminate(in *Instance) {
	if in.state.Done() {
		return
	}
	in.revocationTimer.Cancel()
	in.state = Terminated
	in.EndedAt = p.k.Now()
	if key, freed := p.releaseSlot(in); freed {
		p.notifyFreed(key)
	}
}

// churning reports whether the region had a revocation within the
// churn window (Fig. 7's "immediate request" regime).
func (p *Provider) churning(r Region) bool {
	if !p.hasRevocation[r] {
		return false
	}
	return float64(p.k.Now()-p.lastRevocation[r]) < churnWindowSeconds
}

// TotalCost sums the cost of every instance at time now.
func (p *Provider) TotalCost() float64 {
	var sum float64
	for _, in := range p.instances {
		sum += in.Cost(p.k.Now())
	}
	return sum
}
