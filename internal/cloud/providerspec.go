package cloud

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/model"
	"repro/internal/stats"
)

// ProviderSpec bundles one market's calibration: which (region, GPU)
// cells it sells, what they cost, how instances start, which lifetime
// regime transient servers default to, and (optionally) per-cell
// transient capacity. It is the third first-come registry of the repo,
// after lifetime models and fleet schedulers: what used to be
// package-level GCE constants becomes one registered world among
// several, so experiments can ask "where should this train?" across
// markets instead of only "how should this train?" within one.
//
// Specs are immutable after registration: the name appears in scenario
// and fleet keys, so equal names must mean equal market behavior for
// the life of the process (the same contract the other registries
// document).
type ProviderSpec struct {
	// Name is the registry identity, e.g. "gce"; it appears in
	// scenario keys as prov=<name>.
	Name string
	// Description is a one-line provenance note for catalogs and docs.
	Description string
	// LifetimeModel names the revocation regime transient servers
	// follow when a scenario does not select one explicitly (a
	// registered lifetime-model name).
	LifetimeModel string
	// Offers reports whether the market sells the GPU in the region.
	// CPU-only parameter servers are available everywhere and never
	// consult it.
	Offers func(r Region, g model.GPU) bool
	// GPUHourly is the full hourly price (GPU plus host VM) of a GPU
	// server of the given type and tier, in USD.
	GPUHourly func(g model.GPU, t Tier) float64
	// PSHourly is the hourly price of a CPU-only parameter server.
	PSHourly float64
	// Startup draws a startup breakdown for one accepted request;
	// churning flags a recent revocation in the region (Fig. 7's
	// "immediate request" condition).
	Startup func(rng *stats.Rng, g model.GPU, t Tier, r Region, churning bool) StartupBreakdown
	// Capacity optionally bounds the market's transient pool per cell;
	// nil means every cell is infinite. Provider construction clones
	// it, and an explicit SetTransientCapacity overrides it.
	Capacity Capacity
}

// OfferedRegions lists the spec's regions selling the given GPU, in
// catalog order.
func (s *ProviderSpec) OfferedRegions(g model.GPU) []Region {
	var out []Region
	for _, r := range AllRegions() {
		if s.Offers(r, g) {
			out = append(out, r)
		}
	}
	return out
}

// DefaultProviderName names the market every simulation uses unless a
// scenario selects otherwise: the paper's GCE calibration.
const DefaultProviderName = "gce"

// providerRegistry maps provider names to specs. Builtins register at
// init; reads vastly outnumber writes, hence the RWMutex.
var (
	providerMu       sync.RWMutex
	providerRegistry = map[string]*ProviderSpec{}
)

// RegisterProvider adds a market to the registry. Names are
// first-come-first-served and conflicts are programmer errors, so a
// duplicate (or empty) name panics with the offending name rather than
// returning an error a startup path could ignore: scenario keys embed
// the name, and the planner cache depends on a name meaning one market
// for the life of the process. The spec's default lifetime model must
// already be registered.
func RegisterProvider(s *ProviderSpec) {
	if s.Name == "" {
		panic("cloud: provider spec has an empty name")
	}
	if s.Offers == nil || s.GPUHourly == nil || s.Startup == nil {
		panic(fmt.Sprintf("cloud: provider %q spec is missing Offers/GPUHourly/Startup", s.Name))
	}
	if _, err := LookupLifetimeModel(s.LifetimeModel); err != nil {
		panic(fmt.Sprintf("cloud: provider %q default lifetime model: %v", s.Name, err))
	}
	providerMu.Lock()
	defer providerMu.Unlock()
	if _, dup := providerRegistry[s.Name]; dup {
		panic(fmt.Sprintf("cloud: provider %q already registered", s.Name))
	}
	providerRegistry[s.Name] = s
}

// LookupProvider resolves a provider name; the empty string means the
// default. Unknown names report the available ones.
func LookupProvider(name string) (*ProviderSpec, error) {
	if name == "" {
		name = DefaultProviderName
	}
	providerMu.RLock()
	s, ok := providerRegistry[name]
	providerMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("cloud: unknown provider %q (available: %v)", name, ProviderNames())
	}
	return s, nil
}

// DefaultProvider returns the GCE spec.
func DefaultProvider() *ProviderSpec {
	s, err := LookupProvider(DefaultProviderName)
	if err != nil {
		panic(err) // registered at init; unreachable
	}
	return s
}

// ProviderNames lists every registered market, sorted, with the
// default first — the order /v1/catalog reports.
func ProviderNames() []string {
	providerMu.RLock()
	names := make([]string, 0, len(providerRegistry))
	for name := range providerRegistry {
		if name != DefaultProviderName {
			names = append(names, name)
		}
	}
	providerMu.RUnlock()
	sort.Strings(names)
	return append([]string{DefaultProviderName}, names...)
}

// --- Built-in worlds -------------------------------------------------

// awsPrices is the synthetic aws-like price book: whole-instance
// hourly prices (GPU plus host) shaped after 2019 us-east-1 EC2 list
// prices (p2.xlarge for K80, p3.2xlarge for V100; the P100 row is
// interpolated — EC2 never sold P100s). The spot discount is
// deliberately shallower than GCE's fixed ~70% (about 65% here), so
// cross-market arbitrage has a real price axis to trade on.
var awsPrices = map[model.GPU]struct{ onDemand, spot float64 }{
	model.K80:  {onDemand: 0.90, spot: 0.31},
	model.P100: {onDemand: 2.10, spot: 0.74},
	model.V100: {onDemand: 3.06, spot: 1.07},
}

// awsStartupShiftSeconds shifts every aws provisioning draw later:
// EC2 GPU instances provision slower than GCE's in the measurements
// the paper cites (synthetic, see DESIGN.md "Provider worlds").
const awsStartupShiftSeconds = 15

// Serverless pricing per Barrak et al.'s cost-performance comparison
// of serverless vs. VM training: a per-invocation $/GB-second rate
// (the 2019 Lambda list price) times the memory footprint of the
// function bundle that stands in for one K80-class worker. There is
// no spot market — both tiers cost the same and nothing is ever
// revoked; the baseline isolates what revocation risk is worth.
const (
	serverlessGBSecondUSD = 0.0000166667
	// serverlessWorkerGB is the aggregate memory of the concurrent
	// invocations emulating one K80-equivalent worker slice.
	serverlessWorkerGB = 9.6
	// serverlessPSGB is the single long-lived coordinator function.
	serverlessPSGB = 1.7
)

func init() {
	RegisterProvider(&ProviderSpec{
		Name:          DefaultProviderName,
		Description:   "Google Cloud calibration from the paper: Table V revocations, Fig. 6/7 startup, 2019 us-central1 prices",
		LifetimeModel: DefaultLifetimeModelName,
		Offers:        Offered,
		GPUHourly: func(g model.GPU, t Tier) float64 {
			return model.HourlyPrice(g, t == Transient)
		},
		PSHourly: model.ParameterServerHourly,
		Startup:  sampleStartup,
	})
	RegisterProvider(&ProviderSpec{
		Name:          "aws",
		Description:   "synthetic aws-like market: EC2-shaped prices with a shallower spot discount, calmer revocation climate (calm-weibull)",
		LifetimeModel: "calm-weibull",
		Offers:        Offered, // same catalog shape as the paper's Table V
		GPUHourly: func(g model.GPU, t Tier) float64 {
			p := awsPrices[g]
			if t == Transient {
				return p.spot
			}
			return p.onDemand
		},
		PSHourly: 0.192, // m5.xlarge-shaped coordinator
		Startup: func(rng *stats.Rng, g model.GPU, t Tier, r Region, churning bool) StartupBreakdown {
			b := sampleStartup(rng, g, t, r, churning)
			b.Provisioning += awsStartupShiftSeconds
			return b
		},
	})
	RegisterProvider(&ProviderSpec{
		Name:          "serverless-cpu",
		Description:   "serverless baseline per Barrak et al.: K80-equivalent CPU function bundles, per-invocation pricing, no revocation",
		LifetimeModel: "norevoke",
		// The bundle emulates one fixed worker class; it is catalogued
		// as the K80-equivalent slice, available in every region (a
		// function deploys anywhere).
		Offers: func(r Region, g model.GPU) bool { return g == model.K80 },
		GPUHourly: func(g model.GPU, t Tier) float64 {
			// No spot market: both tiers bill the same per-invocation
			// rate, folded into an effective hourly price.
			return serverlessGBSecondUSD * serverlessWorkerGB * 3600
		},
		PSHourly: serverlessGBSecondUSD * serverlessPSGB * 3600,
		Startup: func(rng *stats.Rng, g model.GPU, t Tier, r Region, churning bool) StartupBreakdown {
			// Function cold starts are seconds, not minutes, and churn
			// does not exist in a pool that never revokes.
			return StartupBreakdown{
				Provisioning: rng.NormalPos(2.0, 0.4),
				Staging:      rng.NormalPos(1.5, 0.3),
				Booting:      rng.NormalPos(1.0, 0.2),
			}
		},
	})
}
