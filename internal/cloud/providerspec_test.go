package cloud

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/model"
	"repro/internal/stats"
)

func TestProviderRegistry(t *testing.T) {
	names := ProviderNames()
	if len(names) != 3 || names[0] != DefaultProviderName {
		t.Fatalf("ProviderNames() = %v, want default first with 3 builtins", names)
	}
	for _, name := range []string{"", "gce", "aws", "serverless-cpu"} {
		s, err := LookupProvider(name)
		if err != nil {
			t.Fatalf("LookupProvider(%q): %v", name, err)
		}
		want := name
		if want == "" {
			want = DefaultProviderName
		}
		if s.Name != want {
			t.Fatalf("LookupProvider(%q).Name = %q", name, s.Name)
		}
		if _, err := LookupLifetimeModel(s.LifetimeModel); err != nil {
			t.Fatalf("provider %q default lifetime model: %v", s.Name, err)
		}
	}
	if _, err := LookupProvider("no-such-market"); err == nil ||
		!strings.Contains(err.Error(), "available") {
		t.Fatalf("unknown provider lookup = %v, want an error listing the registry", err)
	}
	if DefaultProvider().Name != DefaultProviderName {
		t.Fatalf("DefaultProvider().Name = %q", DefaultProvider().Name)
	}
	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("re-registering a builtin provider name must panic")
			}
			if msg := fmt.Sprint(r); !strings.Contains(msg, DefaultProviderName) {
				t.Fatalf("duplicate-registration panic %q does not name the offender %q", msg, DefaultProviderName)
			}
		}()
		RegisterProvider(&ProviderSpec{
			Name:          DefaultProviderName,
			LifetimeModel: DefaultLifetimeModelName,
			Offers:        Offered,
			GPUHourly:     func(g model.GPU, t Tier) float64 { return 1 },
			Startup:       sampleStartup,
		})
	}()
}

// TestDefaultProviderMatchesLegacyCalibration pins the gce spec to the
// package-level functions it replaced: the refactor from inline
// constants to a registered spec must not move a single price or
// startup draw, or the all.golden snapshot (and every cached planner
// line) silently measures a different cloud.
func TestDefaultProviderMatchesLegacyCalibration(t *testing.T) {
	s := DefaultProvider()
	for _, g := range model.AllGPUs() {
		for _, tier := range []Tier{OnDemand, Transient} {
			if got, want := s.GPUHourly(g, tier), model.HourlyPrice(g, tier == Transient); got != want {
				t.Fatalf("gce GPUHourly(%v, %v) = %v, want legacy %v", g, tier, got, want)
			}
		}
		for _, r := range AllRegions() {
			if s.Offers(r, g) != Offered(r, g) {
				t.Fatalf("gce Offers(%v, %v) disagrees with the legacy catalog", r, g)
			}
		}
	}
	if s.PSHourly != model.ParameterServerHourly {
		t.Fatalf("gce PSHourly = %v, want %v", s.PSHourly, model.ParameterServerHourly)
	}
	// Same rng, same draw: the spec's Startup is the legacy sampler.
	a, b := stats.NewRng(7), stats.NewRng(7)
	for i := 0; i < 50; i++ {
		got := s.Startup(a, model.K80, Transient, USCentral1, i%2 == 0)
		want := sampleStartup(b, model.K80, Transient, USCentral1, i%2 == 0)
		if got != want {
			t.Fatalf("draw %d: gce Startup = %+v, want legacy %+v", i, got, want)
		}
	}
}

// TestBuiltinProviderSpecs sanity-checks the synthetic markets: aws
// keeps the default catalog shape but reprices it with a shallower
// spot discount, and the serverless market sells only the K80-class
// function bundle — everywhere, at one tier-independent price.
func TestBuiltinProviderSpecs(t *testing.T) {
	aws, err := LookupProvider("aws")
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range model.AllGPUs() {
		od, spot := aws.GPUHourly(g, OnDemand), aws.GPUHourly(g, Transient)
		if od <= 0 || spot <= 0 || spot >= od {
			t.Fatalf("aws %v prices: on-demand %v, spot %v; want 0 < spot < on-demand", g, od, spot)
		}
		awsDisc := spot / od
		gceDisc := model.HourlyPrice(g, true) / model.HourlyPrice(g, false)
		if awsDisc <= gceDisc {
			t.Fatalf("aws %v spot discount %.2f not shallower than gce's %.2f", g, awsDisc, gceDisc)
		}
	}
	// aws startup is the gce draw shifted later by a constant.
	a, b := stats.NewRng(11), stats.NewRng(11)
	got := aws.Startup(a, model.V100, Transient, USEast1, false)
	want := sampleStartup(b, model.V100, Transient, USEast1, false)
	want.Provisioning += awsStartupShiftSeconds
	if got != want {
		t.Fatalf("aws startup = %+v, want gce + %ds provisioning = %+v", got, awsStartupShiftSeconds, want)
	}

	sl, err := LookupProvider("serverless-cpu")
	if err != nil {
		t.Fatal(err)
	}
	if sl.LifetimeModel != "norevoke" {
		t.Fatalf("serverless lifetime model = %q, want norevoke", sl.LifetimeModel)
	}
	for _, r := range AllRegions() {
		if !sl.Offers(r, model.K80) {
			t.Fatalf("serverless must offer the K80-equivalent bundle in %v", r)
		}
		if sl.Offers(r, model.V100) || sl.Offers(r, model.P100) {
			t.Fatalf("serverless offers a real GPU in %v", r)
		}
	}
	if od, spot := sl.GPUHourly(model.K80, OnDemand), sl.GPUHourly(model.K80, Transient); od != spot {
		t.Fatalf("serverless has no spot market; tiers priced %v vs %v", od, spot)
	}
	if regions := sl.OfferedRegions(model.K80); len(regions) != len(AllRegions()) {
		t.Fatalf("serverless OfferedRegions(K80) = %v, want every region", regions)
	}
}

// TestNorevokeNeverRevokes holds the serverless market's lifetime
// model to its name across many draws.
func TestNorevokeNeverRevokes(t *testing.T) {
	m, err := LookupLifetimeModel("norevoke")
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRng(3)
	for i := 0; i < 1000; i++ {
		revoked, life := m.SampleLifetime(rng, USCentral1, model.K80, float64(i))
		if revoked {
			t.Fatalf("draw %d: norevoke revoked after %v", i, life)
		}
	}
}
