// Package cloud simulates the Google-Cloud-like provider substrate the
// paper measures: six regions, three GPU types, on-demand and
// transient (preemptible) instances with a provisioning → staging →
// running lifecycle, region- and GPU-dependent startup times,
// revocation processes with time-of-day structure, a 24-hour transient
// lifetime cap, and fixed pricing.
//
// Every distribution in this package is calibrated against a published
// table or figure of the paper (noted at each constant); see the
// "Calibration record" section of DESIGN.md for the full summary and
// for how each LifetimeModel uses these numbers.
package cloud

import "fmt"

// Region identifies one of the six data-center regions the paper's
// measurement study covers (§V-A).
type Region int

const (
	// USEast1 is us-east1 (South Carolina).
	USEast1 Region = iota + 1
	// USCentral1 is us-central1 (Iowa).
	USCentral1
	// USWest1 is us-west1 (Oregon).
	USWest1
	// EuropeWest1 is europe-west1 (Belgium).
	EuropeWest1
	// EuropeWest4 is europe-west4 (Netherlands).
	EuropeWest4
	// AsiaEast1 is asia-east1 (Taiwan).
	AsiaEast1
)

// AllRegions lists the regions in the paper's Table V order.
func AllRegions() []Region {
	return []Region{USEast1, USCentral1, USWest1, EuropeWest1, EuropeWest4, AsiaEast1}
}

// String returns the cloud-provider region name.
func (r Region) String() string {
	switch r {
	case USEast1:
		return "us-east1"
	case USCentral1:
		return "us-central1"
	case USWest1:
		return "us-west1"
	case EuropeWest1:
		return "europe-west1"
	case EuropeWest4:
		return "europe-west4"
	case AsiaEast1:
		return "asia-east1"
	default:
		return fmt.Sprintf("Region(%d)", int(r))
	}
}

// Valid reports whether r names a known region.
func (r Region) Valid() bool { return r >= USEast1 && r <= AsiaEast1 }

// ParseRegion maps a region name back to its constant.
func ParseRegion(name string) (Region, error) {
	for _, r := range AllRegions() {
		if r.String() == name {
			return r, nil
		}
	}
	return 0, fmt.Errorf("cloud: unknown region %q", name)
}

// utcOffsetHours gives each region's local-time offset; Fig. 9 reports
// revocation hours in "each region's local time".
var utcOffsetHours = map[Region]int{
	USEast1:     -5,
	USCentral1:  -6,
	USWest1:     -8,
	EuropeWest1: 1,
	EuropeWest4: 1,
	AsiaEast1:   8,
}

// LocalHour converts an absolute simulation hour (simulation start is
// 00:00 UTC) into the region's local hour of day.
func (r Region) LocalHour(simHours float64) int {
	h := (int(simHours) + utcOffsetHours[r]) % 24
	if h < 0 {
		h += 24
	}
	return h
}
