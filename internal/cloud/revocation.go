package cloud

import (
	"math"

	"repro/internal/model"
	"repro/internal/stats"
)

// MaxTransientLifetimeSeconds is the provider-imposed lifetime cap for
// transient servers (24 hours on Google Cloud).
const MaxTransientLifetimeSeconds = 24 * 3600

// revocationConfig calibrates the lifetime distribution of transient
// servers for one (region, GPU) cell.
//
//   - frac24h is the probability of revocation before the 24 h cap;
//     calibrated cell-by-cell to Table V.
//   - pEarly is, conditioned on revocation, the probability of an
//     "early death" within the first two hours (the steep initial
//     segment some CDFs in Fig. 8 show, e.g. europe-west1 K80).
//   - earlyMeanH is the mean (hours) of the truncated-exponential
//     early-death time.
//   - bodyBias shapes the remaining deaths over (2 h, 24 h): lifetime
//     = 2 + 22·u^bodyBias for u ~ U(0,1). bias < 1 skews deaths late
//     (long-lived regions like us-west1 K80), bias > 1 skews them
//     early (short-lived V100 pools, §V-C's 7.7 h mean).
type revocationConfig struct {
	offered    bool
	frac24h    float64
	pEarly     float64
	earlyMeanH float64
	bodyBias   float64
}

// revocationConfigs holds the Table V calibration. Cells the paper
// marks N/A are not offered. Revocation is independent of instance
// workload (idle vs. stressed), matching Table V's observation.
var revocationConfigs = map[model.GPU]map[Region]revocationConfig{
	model.K80: {
		USEast1:     {offered: true, frac24h: 0.4667, pEarly: 0.22, earlyMeanH: 1.0, bodyBias: 0.55},
		USCentral1:  {offered: true, frac24h: 0.5625, pEarly: 0.06, earlyMeanH: 1.0, bodyBias: 0.25},
		USWest1:     {offered: true, frac24h: 0.2292, pEarly: 0.03, earlyMeanH: 1.0, bodyBias: 0.30},
		EuropeWest1: {offered: true, frac24h: 0.6667, pEarly: 0.52, earlyMeanH: 0.9, bodyBias: 0.12},
	},
	model.P100: {
		USEast1:     {offered: true, frac24h: 0.70, pEarly: 0.25, earlyMeanH: 1.0, bodyBias: 0.8},
		USCentral1:  {offered: true, frac24h: 0.5333, pEarly: 0.18, earlyMeanH: 1.0, bodyBias: 0.9},
		USWest1:     {offered: true, frac24h: 0.6667, pEarly: 0.30, earlyMeanH: 1.0, bodyBias: 1.1},
		EuropeWest1: {offered: true, frac24h: 0.2667, pEarly: 0.10, earlyMeanH: 1.0, bodyBias: 0.6},
	},
	model.V100: {
		USCentral1:  {offered: true, frac24h: 0.6667, pEarly: 0.30, earlyMeanH: 0.8, bodyBias: 1.6},
		USWest1:     {offered: true, frac24h: 0.7333, pEarly: 0.28, earlyMeanH: 0.8, bodyBias: 1.4},
		EuropeWest4: {offered: true, frac24h: 0.43, pEarly: 0.15, earlyMeanH: 1.0, bodyBias: 1.0},
		AsiaEast1:   {offered: true, frac24h: 0.47, pEarly: 0.15, earlyMeanH: 1.0, bodyBias: 1.0},
	},
}

// hourWeights gives the relative revocation hazard by local hour of
// day per GPU type, calibrated to Fig. 9: K80 peaks at 10:00 local
// (a morning demand surge), P100 is broad through business hours, and
// V100 shows no revocations between 16:00 and 20:00.
var hourWeights = map[model.GPU][24]float64{
	model.K80: {
		2, 2, 1, 1, 1, 2, // 00–05
		3, 5, 7, 11, 24, 10, // 06–11 (peak 10:00)
		7, 6, 5, 5, 4, 4, // 12–17
		3, 3, 3, 2, 2, 2, // 18–23
	},
	model.P100: {
		3, 2, 2, 2, 2, 3,
		4, 6, 7, 8, 8, 7,
		7, 8, 6, 5, 5, 4,
		4, 3, 4, 3, 3, 3,
	},
	model.V100: {
		4, 3, 3, 2, 2, 3,
		5, 6, 8, 7, 6, 5,
		6, 5, 4, 3, 0, 0, // 16–17: quiet window starts
		0, 0, 2, 3, 4, 4, // 18–19 quiet; resumes 20:00
	},
}

// Offered reports whether the provider sells the given GPU in the
// given region (Table V's non-N/A cells).
func Offered(r Region, g model.GPU) bool {
	cfg, ok := revocationConfigs[g]
	if !ok {
		return false
	}
	return cfg[r].offered
}

// OfferedRegions lists the regions selling the given GPU.
func OfferedRegions(g model.GPU) []Region {
	var out []Region
	for _, r := range AllRegions() {
		if Offered(r, g) {
			out = append(out, r)
		}
	}
	return out
}

// sampleLifetime draws (revoked, lifetimeSeconds) for a transient
// server of the given type started at launchHours (absolute simulation
// hours). Servers that survive return (false, MaxTransientLifetime).
func sampleLifetime(rng *stats.Rng, r Region, g model.GPU, launchHours float64) (bool, float64) {
	cfg := revocationConfigs[g][r]
	if !cfg.offered {
		panic("cloud: sampling lifetime for unoffered placement")
	}
	if !rng.Bernoulli(cfg.frac24h) {
		return false, MaxTransientLifetimeSeconds
	}
	weights := hourWeights[g]
	maxW := 0.0
	for _, w := range weights {
		if w > maxW {
			maxW = w
		}
	}
	early := rng.Bernoulli(cfg.pEarly)
	// Thin candidate death times by the local-hour hazard weights
	// (acceptance-rejection), so the marginal CDF keeps its calibrated
	// shape while deaths land at Fig. 9's hours.
	const maxTries = 64
	var lifetimeH float64
	for try := 0; ; try++ {
		if early {
			lifetimeH = rng.Exponential(cfg.earlyMeanH)
			if lifetimeH > 2 {
				lifetimeH = rng.Uniform(0.02, 2)
			}
			if lifetimeH < 1.0/60 {
				lifetimeH = 1.0 / 60
			}
			// If the next two local hours carry no hazard at all,
			// fall through to a body death instead of looping.
			if try == maxTries/2 {
				early = false
				continue
			}
		} else {
			u := rng.Float64()
			lifetimeH = 2 + 22*powf(u, cfg.bodyBias)
			if lifetimeH >= 24 {
				lifetimeH = 23.98
			}
		}
		deathHour := r.LocalHour(launchHours + lifetimeH)
		if rng.Float64()*maxW < weights[deathHour] || try >= maxTries {
			break
		}
	}
	return true, lifetimeH * 3600
}

// powf is math.Pow with a fast path for the common bias == 1 case.
func powf(u, bias float64) float64 {
	if bias == 1 {
		return u
	}
	return math.Pow(u, bias)
}
