package cloud

import (
	"repro/internal/model"
	"repro/internal/stats"
)

// stageDist holds a normal distribution for one startup stage.
type stageDist struct {
	mean, std float64
}

// startupConfig is the per-(GPU, tier) startup calibration.
//
// Fitted to Fig. 6: transient K80 totals ≈ 66 s vs. on-demand ≈ 56 s
// (Δ ≈ 11 s, the paper reports 11.14 s); transient P100 ≈ 72 s, about
// 9% slower than transient K80 with staging contributing most of the
// difference (the paper reports 8.7%); on-demand P100 ≈ 53 s
// (Δ ≈ 21 s vs. transient, the paper reports 21.38 s). V100 numbers
// follow P100 (Fig. 7 shows all three types within a few seconds).
type startupConfig struct {
	provisioning stageDist
	staging      stageDist
	booting      stageDist
}

// Stage standard deviations are small: Fig. 7's delayed-request totals
// show a coefficient of variation around 3%, with transient K80
// staging the most variable stage (Fig. 6).
var startupConfigs = map[model.GPU]map[Tier]startupConfig{
	model.K80: {
		OnDemand:  {provisioning: stageDist{18, 1.2}, staging: stageDist{20, 1.2}, booting: stageDist{18, 0.8}},
		Transient: {provisioning: stageDist{20, 1.4}, staging: stageDist{28, 2.6}, booting: stageDist{18, 0.8}},
	},
	model.P100: {
		OnDemand:  {provisioning: stageDist{18, 1.2}, staging: stageDist{17, 1.2}, booting: stageDist{18, 0.8}},
		Transient: {provisioning: stageDist{20, 1.4}, staging: stageDist{34, 1.6}, booting: stageDist{18, 0.8}},
	},
	model.V100: {
		OnDemand:  {provisioning: stageDist{18, 1.2}, staging: stageDist{18, 1.2}, booting: stageDist{18, 0.8}},
		Transient: {provisioning: stageDist{21, 1.4}, staging: stageDist{35, 1.6}, booting: stageDist{18, 0.8}},
	},
}

// cpuStartup covers CPU-only parameter-server instances, which carry
// no GPU attachment step and start a little faster.
var cpuStartup = map[Tier]startupConfig{
	OnDemand:  {provisioning: stageDist{15, 1}, staging: stageDist{14, 1}, booting: stageDist{16, 0.8}},
	Transient: {provisioning: stageDist{17, 1.2}, staging: stageDist{18, 1.6}, booting: stageDist{16, 0.8}},
}

// regionStartupOffset adds a small per-region shift to every stage;
// Fig. 6 shows us-west1 starts marginally slower than us-east1.
var regionStartupOffset = map[Region]float64{
	USEast1:     0,
	USCentral1:  0.3,
	USWest1:     0.8,
	EuropeWest1: 0.5,
	EuropeWest4: 0.5,
	AsiaEast1:   1.0,
}

// churnWindowSeconds is how long after a revocation in a region the
// capacity pool is considered "churning". Fig. 7's finding: requests
// issued immediately after a revocation have roughly the same mean
// startup time but a ~4× higher coefficient of variation than requests
// delayed by an hour.
const (
	churnWindowSeconds = 3600
	churnStdMultiplier = 4.0
	churnMeanShift     = 1.5 // seconds added to staging during churn
)

// sampleStartup draws a startup breakdown for the given placement.
// churning indicates a recent revocation in the region (Fig. 7's
// "immediate request" condition).
func sampleStartup(rng *stats.Rng, g model.GPU, tier Tier, region Region, churning bool) StartupBreakdown {
	var cfg startupConfig
	if g == 0 {
		cfg = cpuStartup[tier]
	} else {
		cfg = startupConfigs[g][tier]
	}
	offset := regionStartupOffset[region]
	stdMul := 1.0
	stagingShift := 0.0
	if churning && tier == Transient {
		stdMul = churnStdMultiplier
		stagingShift = churnMeanShift
	}
	draw := func(d stageDist, shift float64) float64 {
		return rng.NormalPos(d.mean+offset+shift, d.std*stdMul)
	}
	return StartupBreakdown{
		Provisioning: draw(cfg.provisioning, 0),
		Staging:      draw(cfg.staging, stagingShift),
		Booting:      draw(cfg.booting, 0),
	}
}
