// Package core is CM-DARE's modeling layer: the transient-aware
// performance models of the paper's Fig. 1. It turns measurement data
// (from the training simulator and cloud campaigns) into
//
//   - per-GPU training-speed models (§III),
//   - checkpoint-time models (§IV),
//   - revocation estimators backed by empirical lifetime CDFs (§V), and
//   - the end-to-end training-time predictor of Eqs. 4–5 (§VI-A), plus
//     the parameter-server bottleneck detector (§VI-B).
package core

import (
	"fmt"
	"math"

	"repro/internal/model"
	"repro/internal/regress"
	"repro/internal/stats"
)

// ModelKind selects the regression family for a performance model,
// mirroring the rows of Tables II and IV.
type ModelKind int

const (
	// KindLinear is univariate/multivariate ordinary least squares.
	KindLinear ModelKind = iota + 1
	// KindSVRPoly is SVR with the two-degree polynomial kernel.
	KindSVRPoly
	// KindSVRRBF is SVR with the RBF kernel, the paper's best
	// performer in both tables.
	KindSVRRBF
)

// String names the kind.
func (k ModelKind) String() string {
	switch k {
	case KindLinear:
		return "linear"
	case KindSVRPoly:
		return "svr-poly"
	case KindSVRRBF:
		return "svr-rbf"
	default:
		return fmt.Sprintf("ModelKind(%d)", int(k))
	}
}

// coreGrid is the coarse hyperparameter grid used when fitting
// performance models (a subset of the paper's full grid keeps model
// refreshes fast, which §IV-C calls out as an operational concern).
// The sub-0.01 ε values matter for the smallest models: an ε of 0.005
// seconds is already 7% of ResNet-9's step time.
var coreGrid = regress.SVRGrid{
	Cs:       []float64{10, 50, 100},
	Epsilons: []float64{0.001, 0.002, 0.005, 0.02},
}

// rbfKernels and polyKernels are the kernel-bandwidth candidates
// swept during fitting, on min-max-normalized log features. The
// log transform spaces the zoo evenly (neighbor distance ≈ 0.05), so
// narrow bandwidths interpolate safely; wide bandwidths produce an
// ill-conditioned Gram matrix and oversmoothed fits.
var rbfKernels = []regress.Kernel{
	regress.RBF{Sigma: 0.03}, regress.RBF{Sigma: 0.05},
	regress.RBF{Sigma: 0.08}, regress.RBF{Sigma: 0.12},
}

var polyKernels = []regress.Kernel{
	regress.Polynomial{Degree: 2, Coef0: 0.5},
	regress.Polynomial{Degree: 2, Coef0: 1},
	regress.Polynomial{Degree: 2, Coef0: 2},
}

// fitRegressor trains a regressor of the given kind on the (already
// normalized) features, cross-validating SVR hyperparameters under
// the given scorer. Deployment models select by the metric that
// matters for their consumer: the speed model by MAPE (Eq. 4 errors
// are relative), the checkpoint model by MAE (Table IV's metric).
func fitRegressor(kind ModelKind, X [][]float64, y []float64, score regress.Scorer) (regress.Regressor, error) {
	switch kind {
	case KindLinear:
		lin := &regress.Linear{}
		if err := lin.Fit(X, y); err != nil {
			return nil, err
		}
		return lin, nil
	case KindSVRPoly, KindSVRRBF:
		kernels := rbfKernels
		if kind == KindSVRPoly {
			kernels = polyKernels
		}
		k := 5
		if len(X) < 2*k {
			k = len(X) / 2
		}
		if k < 2 {
			return nil, fmt.Errorf("core: %d samples too few for SVR cross-validation", len(X))
		}
		var best regress.Factory
		bestScore := -1.0
		for _, kern := range kernels {
			for _, c := range coreGrid.Cs {
				for _, eps := range coreGrid.Epsilons {
					kern, c, eps := kern, c, eps
					factory := func() regress.Regressor {
						return &regress.SVR{Kernel: kern, C: c, Epsilon: eps}
					}
					mean, _, err := regress.CrossValScore(factory, X, y, k, stats.NewRng(1), score)
					if err != nil {
						return nil, err
					}
					if bestScore < 0 || mean < bestScore {
						bestScore = mean
						best = factory
					}
				}
			}
		}
		m := best()
		if err := m.Fit(X, y); err != nil {
			return nil, err
		}
		return m, nil
	default:
		panic(fmt.Sprintf("core: unknown model kind %d", int(kind)))
	}
}

// SpeedObservation is one measured (model, GPU) step time, the unit of
// the §III dataset.
type SpeedObservation struct {
	GPU         model.GPU
	GFLOPs      float64
	StepSeconds float64
}

// SpeedModel predicts per-worker step time from model complexity,
// GPU-specifically — the paper's finding that per-GPU models beat
// GPU-agnostic ones (Table II).
//
// Deployment detail: the feature is log-complexity, min-max
// normalized per GPU. The zoo's complexities are heavily skewed
// (ten ResNets under 3.3 GFLOPs, Shake-Shakes up to 21.3); the log
// transform spreads them so one kernel bandwidth resolves the whole
// range. Table II's experiment code reproduces the paper's raw-Cm
// protocol separately.
type SpeedModel struct {
	perGPU map[model.GPU]*gpuSpeedModel
}

type gpuSpeedModel struct {
	scaler regress.MinMaxScaler
	reg    regress.Regressor
}

// FitSpeedModel trains one regressor per GPU present in the
// observations. Each GPU needs at least four observations; fewer
// would make cross-validation and the SVR fit meaningless.
func FitSpeedModel(obs []SpeedObservation, kind ModelKind) (*SpeedModel, error) {
	byGPU := make(map[model.GPU][]SpeedObservation)
	for _, o := range obs {
		if !o.GPU.Valid() {
			return nil, fmt.Errorf("core: observation with invalid GPU %d", int(o.GPU))
		}
		if o.GFLOPs <= 0 || o.StepSeconds <= 0 {
			return nil, fmt.Errorf("core: non-positive observation %+v", o)
		}
		byGPU[o.GPU] = append(byGPU[o.GPU], o)
	}
	if len(byGPU) == 0 {
		return nil, fmt.Errorf("core: no speed observations")
	}
	m := &SpeedModel{perGPU: make(map[model.GPU]*gpuSpeedModel, len(byGPU))}
	for g, set := range byGPU {
		if len(set) < 4 {
			return nil, fmt.Errorf("core: GPU %v has %d observations, need ≥4", g, len(set))
		}
		X := make([][]float64, len(set))
		y := make([]float64, len(set))
		for i, o := range set {
			X[i] = []float64{math.Log(o.GFLOPs)}
			y[i] = o.StepSeconds
		}
		gm := &gpuSpeedModel{}
		scaled, err := gm.scaler.FitTransform(X)
		if err != nil {
			return nil, fmt.Errorf("core: scaling %v observations: %w", g, err)
		}
		gm.reg, err = fitRegressor(kind, scaled, y, stats.MAPE)
		if err != nil {
			return nil, fmt.Errorf("core: fitting %v speed model: %w", g, err)
		}
		m.perGPU[g] = gm
	}
	return m, nil
}

// StepTime predicts seconds/step for a model of the given complexity
// on the given GPU.
func (m *SpeedModel) StepTime(g model.GPU, gflops float64) (float64, error) {
	gm, ok := m.perGPU[g]
	if !ok {
		return 0, fmt.Errorf("core: no speed model for GPU %v", g)
	}
	if gflops <= 0 {
		return 0, fmt.Errorf("core: non-positive complexity %v", gflops)
	}
	pred := gm.reg.Predict(gm.scaler.Transform([]float64{math.Log(gflops)}))
	if pred <= 0 {
		// Regression can dip non-physical at the extrapolation edge;
		// clamp to a conservative floor rather than return garbage.
		pred = 1e-3
	}
	return pred, nil
}

// WorkerSpeed predicts steps/second for one worker.
func (m *SpeedModel) WorkerSpeed(g model.GPU, gflops float64) (float64, error) {
	t, err := m.StepTime(g, gflops)
	if err != nil {
		return 0, err
	}
	return 1 / t, nil
}

// ClusterSpeed composes worker predictions as sp = Σ spᵢ (§VI-A): the
// paper's observation that cluster speed is the sum of individual
// worker speeds until the parameter-server bottleneck.
func (m *SpeedModel) ClusterSpeed(workers []model.GPU, gflops float64) (float64, error) {
	if len(workers) == 0 {
		return 0, fmt.Errorf("core: empty cluster")
	}
	var sum float64
	for _, g := range workers {
		sp, err := m.WorkerSpeed(g, gflops)
		if err != nil {
			return 0, err
		}
		sum += sp
	}
	return sum, nil
}

// SyncRoundSeconds is the noise-free analytic time of one synchronous
// global step on a mixed cluster with per-worker batch shares: the
// slowest worker — step time scaled by its share of the global batch —
// gates the round (the straggler effect dynamic batching exists to
// tame). The training simulator realizes the same quantity with
// per-step lognormal noise and queued parameter-server service; this
// closed form is the estimator's view of it and the cross-check the
// simulator's tests pin against.
func SyncRoundSeconds(workers []model.GPU, shares []int, gflops float64) (float64, error) {
	if len(workers) == 0 {
		return 0, fmt.Errorf("core: empty cluster")
	}
	if len(shares) != len(workers) {
		return 0, fmt.Errorf("core: %d workers but %d batch shares", len(workers), len(shares))
	}
	var worst float64
	for i, g := range workers {
		t := model.StepTime(g, gflops) * model.BatchTimeFactor(shares[i])
		if t > worst {
			worst = t
		}
	}
	return worst, nil
}

// GPUs lists the GPU types the model covers.
func (m *SpeedModel) GPUs() []model.GPU {
	var out []model.GPU
	for _, g := range model.AllGPUs() {
		if _, ok := m.perGPU[g]; ok {
			out = append(out, g)
		}
	}
	return out
}

// CheckpointObservation is one measured checkpoint write (§IV).
type CheckpointObservation struct {
	DataBytes, MetaBytes, IndexBytes int64
	Seconds                          float64
}

// CheckpointFeatures selects the feature set for the checkpoint model,
// mirroring Table IV's rows.
type CheckpointFeatures int

const (
	// FeatTotalSize uses Sc = Sd + Sm + Si (univariate / SVR rows).
	FeatTotalSize CheckpointFeatures = iota + 1
	// FeatDataMeta uses (Sd, Sm) (multivariate row).
	FeatDataMeta
	// FeatPCA uses two-component PCA over (Sd, Sm, Si).
	FeatPCA
)

// CheckpointModel predicts checkpoint duration from file sizes.
type CheckpointModel struct {
	features CheckpointFeatures
	reg      regress.Regressor
	scaler   regress.MinMaxScaler
}

// FitCheckpointModel trains a checkpoint-time model. PCA features
// imply a linear regressor (Table IV model iii); other feature sets
// accept any kind.
func FitCheckpointModel(obs []CheckpointObservation, features CheckpointFeatures, kind ModelKind) (*CheckpointModel, error) {
	if len(obs) < 4 {
		return nil, fmt.Errorf("core: %d checkpoint observations, need ≥4", len(obs))
	}
	m := &CheckpointModel{features: features}
	X := make([][]float64, len(obs))
	y := make([]float64, len(obs))
	for i, o := range obs {
		X[i] = checkpointFeatureVector(features, o.DataBytes, o.MetaBytes, o.IndexBytes)
		y[i] = o.Seconds
	}
	scaled, err := m.scaler.FitTransform(X)
	if err != nil {
		return nil, err
	}
	if features == FeatPCA {
		pca := &regress.PCARegressor{Components: 2}
		if err := pca.Fit(scaled, y); err != nil {
			return nil, fmt.Errorf("core: fitting checkpoint model: %w", err)
		}
		m.reg = pca
		return m, nil
	}
	m.reg, err = fitRegressor(kind, scaled, y, stats.MAE)
	if err != nil {
		return nil, fmt.Errorf("core: fitting checkpoint model: %w", err)
	}
	return m, nil
}

// checkpointFeatureVector assembles the configured features in MB.
func checkpointFeatureVector(features CheckpointFeatures, data, meta, index int64) []float64 {
	const mb = 1e6
	switch features {
	case FeatTotalSize:
		return []float64{float64(data+meta+index) / mb}
	case FeatDataMeta:
		return []float64{float64(data) / mb, float64(meta) / mb}
	case FeatPCA:
		return []float64{float64(data) / mb, float64(meta) / mb, float64(index) / mb}
	default:
		panic(fmt.Sprintf("core: unknown checkpoint features %d", int(features)))
	}
}

// Seconds predicts the checkpoint duration for a zoo model.
func (m *CheckpointModel) Seconds(mm model.Model) float64 {
	x := checkpointFeatureVector(m.features, mm.CkptDataBytes, mm.CkptMetaBytes, mm.CkptIndexBytes)
	pred := m.reg.Predict(m.scaler.Transform(x))
	if pred < 0 {
		pred = 0
	}
	return pred
}

// RevocationEstimator answers Pr(worker revoked within h hours) from
// empirical lifetime CDFs, the Eq. 5 lookup.
type RevocationEstimator struct {
	cdfs map[string]*stats.ECDF
}

// NewRevocationEstimator returns an empty estimator.
func NewRevocationEstimator() *RevocationEstimator {
	return &RevocationEstimator{cdfs: make(map[string]*stats.ECDF)}
}

// placementKey identifies a (region, GPU) cell.
func placementKey(region string, g model.GPU) string {
	return region + "/" + g.String()
}

// SetLifetimes installs the measured lifetimes (hours; censored
// servers recorded at the 24 h cap) for one placement.
func (r *RevocationEstimator) SetLifetimes(region string, g model.GPU, lifetimesHours []float64) error {
	e, err := stats.NewECDF(lifetimesHours)
	if err != nil {
		return fmt.Errorf("core: %s/%v lifetimes: %w", region, g, err)
	}
	r.cdfs[placementKey(region, g)] = e
	return nil
}

// ProbRevokedWithin returns P(lifetime ≤ h) for the placement. Horizons
// at or past the 24 h cap return the probability of revocation before
// the cap (survivors are recorded at the cap itself).
func (r *RevocationEstimator) ProbRevokedWithin(region string, g model.GPU, hours float64) (float64, error) {
	e, ok := r.cdfs[placementKey(region, g)]
	if !ok {
		return 0, fmt.Errorf("core: no lifetime data for %s/%v", region, g)
	}
	if hours >= 24 {
		hours = 23.999
	}
	return e.Eval(hours), nil
}
