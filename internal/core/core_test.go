package core

import (
	"math"
	"testing"

	"repro/internal/model"
	"repro/internal/profile"
	"repro/internal/stats"
)

// zooSpeedObservations builds a noiseless training set from the
// calibrated curves, one observation per (zoo model, GPU).
func zooSpeedObservations(gpus ...model.GPU) []SpeedObservation {
	var obs []SpeedObservation
	for _, m := range model.Zoo() {
		for _, g := range gpus {
			obs = append(obs, SpeedObservation{
				GPU:         g,
				GFLOPs:      m.GFLOPs,
				StepSeconds: model.StepTimeModel(g, m),
			})
		}
	}
	return obs
}

func TestFitSpeedModelPredictsAnchors(t *testing.T) {
	m, err := FitSpeedModel(zooSpeedObservations(model.K80, model.P100), KindSVRRBF)
	if err != nil {
		t.Fatal(err)
	}
	for _, cm := range model.CanonicalModels() {
		want := model.StepTimeModel(model.K80, cm)
		got, err := m.StepTime(model.K80, cm.GFLOPs)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want)/want > 0.15 {
			t.Errorf("K80 %s predicted %.4f, calibrated %.4f", cm.Name, got, want)
		}
	}
	if _, err := m.StepTime(model.V100, 1.0); err == nil {
		t.Error("prediction for unfitted GPU should error")
	}
	gpus := m.GPUs()
	if len(gpus) != 2 {
		t.Errorf("GPUs = %v, want two", gpus)
	}
}

func TestSpeedModelKindsOrdering(t *testing.T) {
	// GPU-specific SVR-RBF should achieve lower training error than
	// plain linear on the curved step-time data — the Table II story.
	obs := zooSpeedObservations(model.K80)
	maeOf := func(kind ModelKind) float64 {
		m, err := FitSpeedModel(obs, kind)
		if err != nil {
			t.Fatal(err)
		}
		var errs []float64
		for _, o := range obs {
			pred, err := m.StepTime(model.K80, o.GFLOPs)
			if err != nil {
				t.Fatal(err)
			}
			errs = append(errs, math.Abs(pred-o.StepSeconds))
		}
		return stats.Mean(errs)
	}
	linear, rbf := maeOf(KindLinear), maeOf(KindSVRRBF)
	if rbf >= linear {
		t.Errorf("SVR-RBF MAE %.4f should beat linear %.4f on curved data", rbf, linear)
	}
}

func TestClusterSpeedIsSum(t *testing.T) {
	m, err := FitSpeedModel(zooSpeedObservations(model.K80, model.P100, model.V100), KindSVRRBF)
	if err != nil {
		t.Fatal(err)
	}
	r32 := model.ResNet32()
	var wantSum float64
	cluster := []model.GPU{model.K80, model.K80, model.P100, model.V100}
	for _, g := range cluster {
		sp, err := m.WorkerSpeed(g, r32.GFLOPs)
		if err != nil {
			t.Fatal(err)
		}
		wantSum += sp
	}
	got, err := m.ClusterSpeed(cluster, r32.GFLOPs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-wantSum) > 1e-9 {
		t.Fatalf("ClusterSpeed = %v, want Σ = %v", got, wantSum)
	}
	if _, err := m.ClusterSpeed(nil, 1); err == nil {
		t.Fatal("empty cluster should error")
	}
}

func TestFitSpeedModelValidation(t *testing.T) {
	if _, err := FitSpeedModel(nil, KindLinear); err == nil {
		t.Error("no observations should error")
	}
	bad := []SpeedObservation{{GPU: model.K80, GFLOPs: -1, StepSeconds: 1}}
	if _, err := FitSpeedModel(bad, KindLinear); err == nil {
		t.Error("negative GFLOPs should error")
	}
	few := []SpeedObservation{
		{GPU: model.K80, GFLOPs: 1, StepSeconds: 0.1},
		{GPU: model.K80, GFLOPs: 2, StepSeconds: 0.2},
	}
	if _, err := FitSpeedModel(few, KindLinear); err == nil {
		t.Error("too few observations should error")
	}
}

func zooCheckpointObservations(noise float64, seed int64) []CheckpointObservation {
	rng := stats.NewRng(seed)
	var obs []CheckpointObservation
	for _, m := range model.Zoo() {
		base := 0.81 + float64(m.CheckpointBytes())/28e6
		obs = append(obs, CheckpointObservation{
			DataBytes:  m.CkptDataBytes,
			MetaBytes:  m.CkptMetaBytes,
			IndexBytes: m.CkptIndexBytes,
			Seconds:    rng.LogNormal(base, noise),
		})
	}
	return obs
}

func TestCheckpointModelFeatureSets(t *testing.T) {
	obs := zooCheckpointObservations(0.02, 3)
	r32 := model.ResNet32()
	want := 0.81 + float64(r32.CheckpointBytes())/28e6
	for _, tc := range []struct {
		feats CheckpointFeatures
		kind  ModelKind
	}{
		{FeatTotalSize, KindLinear},
		{FeatTotalSize, KindSVRRBF},
		{FeatDataMeta, KindLinear},
		{FeatPCA, KindLinear},
	} {
		m, err := FitCheckpointModel(obs, tc.feats, tc.kind)
		if err != nil {
			t.Fatalf("features %d kind %v: %v", tc.feats, tc.kind, err)
		}
		got := m.Seconds(r32)
		if math.Abs(got-want)/want > 0.12 {
			t.Errorf("features %d kind %v: ResNet-32 checkpoint predicted %.2f s, want ≈%.2f",
				tc.feats, tc.kind, got, want)
		}
	}
}

func TestCheckpointModelValidation(t *testing.T) {
	if _, err := FitCheckpointModel(nil, FeatTotalSize, KindLinear); err == nil {
		t.Error("no observations should error")
	}
}

func TestRevocationEstimator(t *testing.T) {
	r := NewRevocationEstimator()
	// Half the servers died at 2 h, the rest survived to the cap.
	lifetimes := []float64{2, 2, 2, 24, 24, 24}
	if err := r.SetLifetimes("us-west1", model.K80, lifetimes); err != nil {
		t.Fatal(err)
	}
	p, err := r.ProbRevokedWithin("us-west1", model.K80, 3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-0.5) > 1e-9 {
		t.Fatalf("P(revoked ≤ 3h) = %v, want 0.5", p)
	}
	// Beyond the cap: probability of revocation before the cap.
	p, err = r.ProbRevokedWithin("us-west1", model.K80, 48)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-0.5) > 1e-9 {
		t.Fatalf("P(revoked ≤ 48h) = %v, want 0.5 (survivors at cap)", p)
	}
	if _, err := r.ProbRevokedWithin("mars", model.K80, 1); err == nil {
		t.Fatal("unknown placement should error")
	}
	if err := r.SetLifetimes("x", model.K80, nil); err == nil {
		t.Fatal("empty lifetimes should error")
	}
}

func newTestPredictor(t *testing.T) *Predictor {
	t.Helper()
	sm, err := FitSpeedModel(zooSpeedObservations(model.K80, model.P100, model.V100), KindSVRRBF)
	if err != nil {
		t.Fatal(err)
	}
	cm, err := FitCheckpointModel(zooCheckpointObservations(0.01, 5), FeatTotalSize, KindSVRRBF)
	if err != nil {
		t.Fatal(err)
	}
	return &Predictor{
		Speed:              sm,
		Checkpoint:         cm,
		ProvisionSeconds:   70,
		ReplacementSeconds: 76,
	}
}

func TestEstimateDecomposition(t *testing.T) {
	p := newTestPredictor(t)
	rev := NewRevocationEstimator()
	// 40% of servers die uniformly within 10 h.
	var lifetimes []float64
	for i := 0; i < 40; i++ {
		lifetimes = append(lifetimes, float64(i%10)+0.5)
	}
	for i := 0; i < 60; i++ {
		lifetimes = append(lifetimes, 24)
	}
	if err := rev.SetLifetimes("us-central1", model.K80, lifetimes); err != nil {
		t.Fatal(err)
	}
	p.Revocation = rev

	plan := Plan{
		Model: model.ResNet32(),
		Workers: []Placement{
			{GPU: model.K80, Region: "us-central1", Transient: true},
			{GPU: model.K80, Region: "us-central1", Transient: true},
		},
		ParameterServers:   1,
		TargetSteps:        64000,
		CheckpointInterval: 4000,
	}
	est, err := p.Estimate(plan)
	if err != nil {
		t.Fatal(err)
	}
	// Speed ≈ 2 × 4.56; compute ≈ 64000 / 9.12 ≈ 7018 s.
	if math.Abs(est.ClusterSpeed-9.12)/9.12 > 0.1 {
		t.Errorf("cluster speed = %.2f, want ≈9.12", est.ClusterSpeed)
	}
	if est.CheckpointSeconds < 50 || est.CheckpointSeconds > 70 {
		t.Errorf("checkpoint term = %.1f s, want ≈16 × 3.84 ≈ 61", est.CheckpointSeconds)
	}
	if est.ExpectedRevocations <= 0 || est.ExpectedRevocations > 2 {
		t.Errorf("expected revocations = %.2f, want in (0, 2]", est.ExpectedRevocations)
	}
	wantTotal := est.ComputeSeconds + est.CheckpointSeconds + est.RevocationSeconds
	if math.Abs(est.TotalSeconds-wantTotal) > 1e-9 {
		t.Errorf("total %.1f ≠ sum of terms %.1f", est.TotalSeconds, wantTotal)
	}
	if est.CostUSD <= 0 {
		t.Error("cost should be positive")
	}
	// Transient K80 pair + 1 PS at ≈2 h: sanity bound the price.
	hours := est.TotalSeconds / 3600
	wantCost := (2*model.HourlyPrice(model.K80, true) + model.ParameterServerHourly) * hours
	if math.Abs(est.CostUSD-wantCost) > 1e-9 {
		t.Errorf("cost = %v, want %v", est.CostUSD, wantCost)
	}
}

func TestEstimateWithoutRevocationModel(t *testing.T) {
	p := newTestPredictor(t)
	plan := Plan{
		Model:       model.ResNet15(),
		Workers:     []Placement{{GPU: model.V100, Region: "us-central1", Transient: false}},
		TargetSteps: 10000,
	}
	est, err := p.Estimate(plan)
	if err != nil {
		t.Fatal(err)
	}
	if est.ExpectedRevocations != 0 || est.RevocationSeconds != 0 {
		t.Error("on-demand plan should have no revocation term")
	}
	if est.CheckpointSeconds != 0 {
		t.Error("no checkpoint interval ⇒ no checkpoint term")
	}
}

func TestEstimateValidation(t *testing.T) {
	p := newTestPredictor(t)
	if _, err := p.Estimate(Plan{Model: model.ResNet15(), TargetSteps: 100}); err == nil {
		t.Error("no workers should error")
	}
	if _, err := p.Estimate(Plan{Model: model.ResNet15(), Workers: []Placement{{GPU: model.K80}}}); err == nil {
		t.Error("no target steps should error")
	}
	if _, err := (&Predictor{}).Estimate(Plan{}); err == nil {
		t.Error("missing models should error")
	}
}

func TestDetector(t *testing.T) {
	d := NewDetector()
	mk := func(speeds []float64) []profile.SpeedSample {
		var out []profile.SpeedSample
		for i, s := range speeds {
			out = append(out, profile.SpeedSample{Time: float64(i) * 10, Speed: s, Step: int64(i+1) * 100})
		}
		return out
	}
	// Measured matches prediction: not bottlenecked.
	v, err := d.Check(100, mk([]float64{60, 80, 99, 100, 101, 99}))
	if err != nil {
		t.Fatal(err)
	}
	if v.Bottlenecked {
		t.Errorf("false positive: %+v", v)
	}
	// Warm-up samples (first 30 s) are excluded: samples at t=0,10,20.
	if v.Samples != 3 {
		t.Errorf("post-warm-up samples = %d, want 3", v.Samples)
	}
	// Measured 20% low: bottlenecked.
	v, err = d.Check(100, mk([]float64{50, 70, 80, 80, 80, 80}))
	if err != nil {
		t.Fatal(err)
	}
	if !v.Bottlenecked {
		t.Errorf("missed bottleneck: %+v", v)
	}
	if math.Abs(v.Deviation-0.2) > 1e-9 {
		t.Errorf("deviation = %v, want 0.2", v.Deviation)
	}
	// Deviation just under threshold: not flagged.
	v, err = d.Check(100, mk([]float64{90, 90, 90, 94, 94, 94}))
	if err != nil {
		t.Fatal(err)
	}
	if v.Bottlenecked {
		t.Errorf("deviation %.3f under threshold should not flag", v.Deviation)
	}
}

func TestDetectorErrors(t *testing.T) {
	d := NewDetector()
	if _, err := d.Check(0, nil); err == nil {
		t.Error("non-positive prediction should error")
	}
	if _, err := d.Check(10, nil); err == nil {
		t.Error("empty series should error")
	}
	short := []profile.SpeedSample{{Time: 0, Speed: 5}}
	if _, err := d.Check(10, short); err == nil {
		t.Error("all-warm-up series should error")
	}
}

// TestCostBillsExactParameterServerCount pins the PS-billing contract
// on both sides: a plan's cost scales with its declared parameter
// server count, and zero means zero — a deliberately PS-less plan
// bills only its workers, so two distinct plans no longer price
// identically. (Callers estimating a managed session pass the
// session's real count; the manager's own default of one lives in the
// manager, not here.)
func TestCostBillsExactParameterServerCount(t *testing.T) {
	p := &Predictor{}
	plan := Plan{
		Model:       model.ResNet32(),
		Workers:     []Placement{{GPU: model.K80, Region: "us-central1", Transient: true}},
		TargetSteps: 1000,
	}
	const seconds = 3600.0
	workersOnly := model.HourlyPrice(model.K80, true)
	if got := p.cost(plan, seconds); math.Abs(got-workersOnly) > 1e-12 {
		t.Fatalf("PS-less plan billed $%.4f/h, want workers-only $%.4f/h", got, workersOnly)
	}
	plan.ParameterServers = 1
	withOne := p.cost(plan, seconds)
	if math.Abs(withOne-(workersOnly+model.ParameterServerHourly)) > 1e-12 {
		t.Fatalf("1-PS plan billed $%.4f/h, want $%.4f/h", withOne, workersOnly+model.ParameterServerHourly)
	}
	plan.ParameterServers = 3
	if got := p.cost(plan, seconds); math.Abs(got-(workersOnly+3*model.ParameterServerHourly)) > 1e-12 {
		t.Fatalf("3-PS plan billed $%.4f/h, want $%.4f/h", got, workersOnly+3*model.ParameterServerHourly)
	}
}
