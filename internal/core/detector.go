package core

import (
	"fmt"

	"repro/internal/profile"
	"repro/internal/stats"
)

// Detector flags parameter-server bottlenecks (and straggling workers)
// by comparing the theoretically predicted cluster speed with the
// measured one (§VI-B). The paper's operating point: a 30-second
// warm-up and a 6.7% deviation threshold, both chosen empirically.
type Detector struct {
	// WarmupSeconds of measurements are ignored before judging.
	WarmupSeconds float64
	// Threshold is the relative deviation that flags a bottleneck.
	Threshold float64
}

// NewDetector returns a detector at the paper's operating point.
func NewDetector() *Detector {
	return &Detector{WarmupSeconds: 30, Threshold: 0.067}
}

// Verdict is the outcome of a bottleneck check.
type Verdict struct {
	// PredictedSpeed is sp = Σ spᵢ; MeasuredSpeed the post-warm-up
	// observed mean.
	PredictedSpeed float64
	MeasuredSpeed  float64
	// Deviation is (predicted − measured) / predicted.
	Deviation float64
	// Bottlenecked is true when the measured speed falls short of the
	// prediction by more than the threshold.
	Bottlenecked bool
	// Samples is how many post-warm-up windows informed the verdict.
	Samples int
}

// Check compares a predicted cluster speed with a measured speed
// series. It returns an error if no sample survives the warm-up
// filter: judging with no data would silently pass bottlenecks.
func (d *Detector) Check(predicted float64, series []profile.SpeedSample) (Verdict, error) {
	if predicted <= 0 {
		return Verdict{}, fmt.Errorf("core: non-positive predicted speed %v", predicted)
	}
	if len(series) == 0 {
		return Verdict{}, fmt.Errorf("core: empty speed series")
	}
	start := series[0].Time
	var post []float64
	for _, s := range series {
		if s.Time-start >= d.WarmupSeconds {
			post = append(post, s.Speed)
		}
	}
	if len(post) == 0 {
		return Verdict{}, fmt.Errorf("core: no samples after %.0fs warm-up", d.WarmupSeconds)
	}
	measured := stats.Mean(post)
	dev := (predicted - measured) / predicted
	return Verdict{
		PredictedSpeed: predicted,
		MeasuredSpeed:  measured,
		Deviation:      dev,
		Bottlenecked:   dev > d.Threshold,
		Samples:        len(post),
	}, nil
}
