package core

import (
	"fmt"
	"math"

	"repro/internal/model"
)

// Placement describes one transient worker: what GPU and where it
// runs, which selects its price and its revocation CDF.
type Placement struct {
	GPU       model.GPU
	Region    string
	Transient bool
}

// Plan is a training plan to estimate: the paper's Eq. 4 inputs.
type Plan struct {
	// Model is the CNN to train.
	Model model.Model
	// Workers places each GPU worker.
	Workers []Placement
	// ParameterServers counts PS shards (pricing only; the speed
	// model assumes the pre-bottleneck regime — pair the estimate
	// with the Detector to validate that assumption online). Zero
	// means zero: a deliberately PS-less plan bills no parameter
	// server. Callers estimating a managed session should pass the
	// session's real count (manager defaults to one).
	ParameterServers int
	// TargetSteps is Nw; CheckpointInterval is Ic (steps).
	TargetSteps        int64
	CheckpointInterval int64
}

// Estimate is the Eq. 4 decomposition of predicted training time.
type Estimate struct {
	// ClusterSpeed is sp = Σ spᵢ in steps/second.
	ClusterSpeed float64
	// ComputeSeconds is Nw / sp.
	ComputeSeconds float64
	// CheckpointSeconds is ⌈Nw/Ic⌉ × Tc.
	CheckpointSeconds float64
	// ExpectedRevocations is Nr = Σ Pr(Rᵢ) (Eq. 5).
	ExpectedRevocations float64
	// RevocationSeconds is Nr × (Tp + Ts).
	RevocationSeconds float64
	// TotalSeconds is the Eq. 4 sum.
	TotalSeconds float64
	// CostUSD prices the cluster for the predicted duration.
	CostUSD float64
}

// Predictor bundles the fitted performance models with the
// measurement-derived running averages Eq. 4 needs.
type Predictor struct {
	// Speed and Checkpoint are required.
	Speed      *SpeedModel
	Checkpoint *CheckpointModel
	// Revocation may be nil when estimating on-demand clusters.
	Revocation *RevocationEstimator
	// ProvisionSeconds is Tp, the running-average transient startup
	// time (§V-B); ReplacementSeconds is Ts, the running-average
	// worker replacement overhead (§V-D).
	ProvisionSeconds   float64
	ReplacementSeconds float64
}

// Estimate evaluates Eqs. 4 and 5 for the plan. Because the
// revocation probabilities depend on the training duration and vice
// versa, the estimate iterates to a fixed point (three rounds are
// plenty: the revocation term is a small fraction of the total).
func (p *Predictor) Estimate(plan Plan) (Estimate, error) {
	if p.Speed == nil || p.Checkpoint == nil {
		return Estimate{}, fmt.Errorf("core: predictor requires speed and checkpoint models")
	}
	if plan.TargetSteps <= 0 {
		return Estimate{}, fmt.Errorf("core: plan needs positive TargetSteps")
	}
	if len(plan.Workers) == 0 {
		return Estimate{}, fmt.Errorf("core: plan has no workers")
	}
	gpus := make([]model.GPU, len(plan.Workers))
	for i, w := range plan.Workers {
		gpus[i] = w.GPU
	}
	sp, err := p.Speed.ClusterSpeed(gpus, plan.Model.GFLOPs)
	if err != nil {
		return Estimate{}, err
	}
	est := Estimate{ClusterSpeed: sp}
	est.ComputeSeconds = float64(plan.TargetSteps) / sp

	if plan.CheckpointInterval > 0 {
		nCkpt := math.Ceil(float64(plan.TargetSteps) / float64(plan.CheckpointInterval))
		est.CheckpointSeconds = nCkpt * p.Checkpoint.Seconds(plan.Model)
	}

	base := est.ComputeSeconds + est.CheckpointSeconds
	total := base
	if p.Revocation != nil {
		for iter := 0; iter < 3; iter++ {
			nr := 0.0
			for _, w := range plan.Workers {
				if !w.Transient {
					continue
				}
				pr, err := p.Revocation.ProbRevokedWithin(w.Region, w.GPU, total/3600)
				if err != nil {
					return Estimate{}, err
				}
				nr += pr
			}
			est.ExpectedRevocations = nr
			est.RevocationSeconds = nr * (p.ProvisionSeconds + p.ReplacementSeconds)
			total = base + est.RevocationSeconds
		}
	}
	est.TotalSeconds = total
	est.CostUSD = p.cost(plan, total)
	return est, nil
}

// cost prices the plan's cluster for the given duration.
func (p *Predictor) cost(plan Plan, seconds float64) float64 {
	hours := seconds / 3600
	var hourly float64
	for _, w := range plan.Workers {
		hourly += model.HourlyPrice(w.GPU, w.Transient)
	}
	hourly += float64(plan.ParameterServers) * model.ParameterServerHourly
	return hourly * hours
}
