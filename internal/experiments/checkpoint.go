package experiments

import (
	"fmt"
	"sort"

	"repro/internal/campaign"
	"repro/internal/model"
	"repro/internal/stats"
	"repro/internal/train"
)

// Figure5Result reproduces Fig. 5: checkpoint duration vs. checkpoint
// size for all twenty zoo models (five checkpoints each).
type Figure5Result struct {
	Points []Fig5Point
	// Corr is the Pearson correlation between size and mean time.
	Corr float64
}

// Fig5Point is one model's aggregate.
type Fig5Point struct {
	Model   string
	SizeMB  float64
	MeanSec float64
	CoV     float64
}

func planFigure5(seed int64) *campaign.Plan {
	p := newPlan(seed)
	p.unit("ckpt-dataset", func(s int64) (any, error) {
		return collectCheckpointDataset(5, s), nil
	})
	return p.build(func(outs []any) (Result, error) {
		return reduceFigure5(outs[0].(*checkpointDataset))
	})
}

func reduceFigure5(ds *checkpointDataset) (Result, error) {
	res := &Figure5Result{}
	var sizes, times []float64
	for _, m := range ds.models {
		samples := ds.samples[m.Name]
		mean, _ := stats.MeanStd(samples)
		p := Fig5Point{
			Model:   m.Name,
			SizeMB:  float64(m.CheckpointBytes()) / 1e6,
			MeanSec: mean,
			CoV:     stats.CoV(samples),
		}
		res.Points = append(res.Points, p)
		sizes = append(sizes, p.SizeMB)
		times = append(times, p.MeanSec)
	}
	sort.Slice(res.Points, func(i, j int) bool { return res.Points[i].SizeMB < res.Points[j].SizeMB })
	res.Corr = stats.Pearson(sizes, times)
	return res, nil
}

// String renders the scatter.
func (r *Figure5Result) String() string {
	t := newTable("Fig. 5 — checkpoint duration vs. size (5 checkpoints per model)",
		"model", "size (MB)", "time (s)", "CoV")
	for _, p := range r.Points {
		t.addRow(p.Model, fmt.Sprintf("%.1f", p.SizeMB), fmt.Sprintf("%.2f", p.MeanSec), fmt.Sprintf("%.3f", p.CoV))
	}
	t.addNote("Pearson r(size, time) = %.3f; paper observes positive correlation, CoV 0.018–0.073", r.Corr)
	return t.String()
}

// CheckpointSequentialResult reproduces §IV-B's additivity check: 100
// steps with checkpointing take one checkpoint time longer than
// without, because training and checkpointing are sequential.
type CheckpointSequentialResult struct {
	// Per100WithCkpt and Per100WithoutCkpt are seconds per 100 steps.
	Per100WithCkpt    float64
	Per100WithoutCkpt float64
	// MeasuredCkptSeconds is the independently measured checkpoint
	// time; additivity holds when Difference ≈ MeasuredCkptSeconds.
	MeasuredCkptSeconds float64
	Difference          float64
}

func planCheckpointSequential(seed int64) *campaign.Plan {
	p := newPlan(seed)
	// Both arms run inside one unit with the same seed: the paired
	// design cancels step-time noise so the difference isolates the
	// checkpoint overhead (§IV-B's methodology).
	p.unit("ckptseq/pair", func(s int64) (any, error) {
		base := train.Config{
			Model:         model.ResNet32(),
			Workers:       train.Homogeneous(model.K80, 1),
			TargetSteps:   2000,
			DisableWarmup: true,
			Seed:          s,
		}
		without, err := runSession(base)
		if err != nil {
			return nil, err
		}
		withCfg := base
		withCfg.CheckpointInterval = 100
		with, err := runSession(withCfg)
		if err != nil {
			return nil, err
		}
		return [2]train.Result{without, with}, nil
	})
	return p.build(func(outs []any) (Result, error) {
		pair := outs[0].([2]train.Result)
		without, with := pair[0], pair[1]
		res := &CheckpointSequentialResult{
			Per100WithCkpt:    with.TotalSeconds / 20,
			Per100WithoutCkpt: without.TotalSeconds / 20,
		}
		if with.CheckpointCount > 0 {
			res.MeasuredCkptSeconds = with.CheckpointSeconds / float64(with.CheckpointCount)
		}
		res.Difference = res.Per100WithCkpt - res.Per100WithoutCkpt
		return res, nil
	})
}

// String renders the §IV-B comparison.
func (r *CheckpointSequentialResult) String() string {
	t := newTable("§IV-B — checkpointing is sequential with training (ResNet-32, K80)",
		"quantity", "seconds", "paper")
	t.addRow("100 steps with checkpointing", fmt.Sprintf("%.2f", r.Per100WithCkpt), "25.64")
	t.addRow("100 steps without checkpointing", fmt.Sprintf("%.2f", r.Per100WithoutCkpt), "21.93")
	t.addRow("difference", fmt.Sprintf("%.2f", r.Difference), "3.71")
	t.addRow("measured checkpoint time", fmt.Sprintf("%.2f", r.MeasuredCkptSeconds), "3.84±0.25")
	t.addNote("additivity holds when the difference matches the measured checkpoint time")
	return t.String()
}
