package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/train"
)

// TableIIIResult reproduces Table III: the average step time of an
// individual worker training ResNet-32 in homogeneous clusters of
// 1/2/4/8 workers and in the heterogeneous (2,1,1) cluster.
type TableIIIResult struct {
	// StepMs[gpu][columnIdx] is mean ± std step time in milliseconds;
	// columns are (1,0,0)-style baseline, 2, 4, 8, then (2,1,1).
	StepMs map[model.GPU][]struct{ Mean, Std float64 }
}

// tableIIIColumns labels the cluster configurations.
var tableIIIColumns = []string{"baseline (1)", "homog (2)", "homog (4)", "homog (8)", "hetero (2,1,1)"}

// paperTableIII holds the published milliseconds for reference.
var paperTableIII = map[model.GPU][]float64{
	model.K80:  {229.85, 232.08, 229.57, 227.46, 221.16},
	model.P100: {105.45, 105.27, 112.73, 198.11, 107.61},
	model.V100: {92.38, 95.90, 106.36, 191.72, 93.52},
}

func runTableIII(seed int64) (Result, error) {
	resnet32 := model.ResNet32()
	res := &TableIIIResult{StepMs: make(map[model.GPU][]struct{ Mean, Std float64 })}
	measure := func(g model.GPU, workers []train.WorkerSpec, seedOff int64) error {
		n := int64(len(workers))
		r, err := runSession(train.Config{
			Model:       resnet32,
			Workers:     workers,
			TargetSteps: 800 * n,
			Seed:        seed + seedOff,
		})
		if err != nil {
			return err
		}
		ws, err := r.WorkerStatByGPU(g)
		if err != nil {
			return err
		}
		res.StepMs[g] = append(res.StepMs[g], struct{ Mean, Std float64 }{
			Mean: ws.MeanStepTime * 1000,
			Std:  ws.StdStepTime * 1000,
		})
		return nil
	}
	for gi, g := range model.AllGPUs() {
		for ci, n := range []int{1, 2, 4, 8} {
			if err := measure(g, train.Homogeneous(g, n), int64(gi*10+ci)); err != nil {
				return nil, err
			}
		}
		if err := measure(g, train.Mixed(2, 1, 1), int64(gi*10+9)); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// String renders the per-worker step times with the paper's values.
func (r *TableIIIResult) String() string {
	t := newTable("Table III — per-worker step time (ms), ResNet-32",
		append([]string{"GPU"}, tableIIIColumns...)...)
	for _, g := range model.AllGPUs() {
		cells := []string{g.String()}
		for i, s := range r.StepMs[g] {
			cells = append(cells, fmt.Sprintf("%.1f±%.1f (p %.1f)", s.Mean, s.Std, paperTableIII[g][i]))
		}
		t.addRow(cells...)
	}
	t.addNote("shape to verify: K80 flat through 8 workers; P100/V100 inflate at 8 (PS saturation); heterogeneity harmless")
	return t.String()
}

// Figure4Result reproduces Fig. 4: cluster speed vs. number of P100
// workers for the four canonical models.
type Figure4Result struct {
	// Speeds[modelName][i] is the cluster speed with i+1 workers.
	Speeds map[string][]float64
}

func runFigure4(seed int64) (Result, error) {
	res := &Figure4Result{Speeds: make(map[string][]float64)}
	for mi, m := range model.CanonicalModels() {
		for n := 1; n <= 8; n++ {
			steps := int64(600 * n)
			if m.Name == "ShakeShakeBig" {
				steps = int64(300 * n) // slow model; fewer steps suffice
			}
			speed, err := measureClusterSpeed(m, train.Homogeneous(model.P100, n), 1, steps, seed+int64(mi*10+n))
			if err != nil {
				return nil, err
			}
			res.Speeds[m.Name] = append(res.Speeds[m.Name], speed)
		}
	}
	return res, nil
}

// String renders the scaling curves.
func (r *Figure4Result) String() string {
	t := newTable("Fig. 4 — cluster speed (steps/s) vs. #P100 workers, 1 PS",
		"model", "1", "2", "3", "4", "5", "6", "7", "8")
	for _, m := range model.CanonicalModels() {
		cells := []string{m.Name}
		for _, s := range r.Speeds[m.Name] {
			cells = append(cells, fmt.Sprintf("%.1f", s))
		}
		t.addRow(cells...)
	}
	t.addNote("paper: ResNet-32 and ShakeShakeSmall plateau past 4 workers (PS bottleneck); ShakeShakeBig is GPU-bound")
	return t.String()
}

// Figure12Result reproduces Fig. 12: ResNet-15 and ResNet-32 cluster
// speed with one vs. two parameter servers, plus the detector verdict
// that would trigger the mitigation.
type Figure12Result struct {
	// Speeds[modelName][psCount-1][i] is speed with i+1 workers.
	Speeds map[string][2][]float64
	// MaxGainPct is the largest observed 2-PS improvement.
	MaxGainPct float64
	// DetectorFlagged reports whether CM-DARE's detector flags the
	// 8-worker, 1-PS ResNet-32 run against the Σ-speeds prediction.
	DetectorFlagged   bool
	DetectorDeviation float64
}

func runFigure12(seed int64) (Result, error) {
	res := &Figure12Result{Speeds: make(map[string][2][]float64)}
	models := []model.Model{model.ResNet15(), model.ResNet32()}
	for mi, m := range models {
		var both [2][]float64
		for psIdx, ps := range []int{1, 2} {
			for n := 1; n <= 8; n++ {
				speed, err := measureClusterSpeed(m, train.Homogeneous(model.P100, n), ps,
					int64(700*n), seed+int64(mi*100+psIdx*10+n))
				if err != nil {
					return nil, err
				}
				both[psIdx] = append(both[psIdx], speed)
			}
		}
		res.Speeds[m.Name] = both
		for i := range both[0] {
			if gain := (both[1][i] - both[0][i]) / both[0][i] * 100; gain > res.MaxGainPct {
				res.MaxGainPct = gain
			}
		}
	}

	// Detection (§VI-B): compare predicted Σ-speeds against the
	// measured 8-worker, 1-PS ResNet-32 run.
	r32 := models[1]
	run, err := runSession(train.Config{
		Model:       r32,
		Workers:     train.Homogeneous(model.P100, 8),
		TargetSteps: 6000,
		Seed:        seed + 999,
	})
	if err != nil {
		return nil, err
	}
	predicted := 8 / model.StepTimeModel(model.P100, r32)
	verdict, err := core.NewDetector().Check(predicted, run.SpeedSeries)
	if err != nil {
		return nil, err
	}
	res.DetectorFlagged = verdict.Bottlenecked
	res.DetectorDeviation = verdict.Deviation
	return res, nil
}

// String renders both panels plus the detector outcome.
func (r *Figure12Result) String() string {
	t := newTable("Fig. 12 — PS bottleneck mitigation: speed (steps/s) vs. #P100 workers",
		"model", "PS", "1", "2", "3", "4", "5", "6", "7", "8")
	for _, name := range []string{"ResNet-15", "ResNet-32"} {
		both := r.Speeds[name]
		for psIdx, series := range both {
			cells := []string{name, fmt.Sprintf("%d", psIdx+1)}
			for _, s := range series {
				cells = append(cells, fmt.Sprintf("%.1f", s))
			}
			t.addRow(cells...)
		}
	}
	t.addNote("max 2-PS improvement: %.1f%% (paper: up to 70.6%%)", r.MaxGainPct)
	t.addNote("detector on 8×P100 ResNet-32, 1 PS: deviation %.1f%%, bottleneck flagged = %v (threshold 6.7%%)",
		r.DetectorDeviation*100, r.DetectorFlagged)
	return t.String()
}
