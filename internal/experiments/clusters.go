package experiments

import (
	"fmt"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/train"
)

// TableIIIResult reproduces Table III: the average step time of an
// individual worker training ResNet-32 in homogeneous clusters of
// 1/2/4/8 workers and in the heterogeneous (2,1,1) cluster.
type TableIIIResult struct {
	// StepMs[gpu][columnIdx] is mean ± std step time in milliseconds;
	// columns are (1,0,0)-style baseline, 2, 4, 8, then (2,1,1).
	StepMs map[model.GPU][]struct{ Mean, Std float64 }
}

// tableIIIColumns labels the cluster configurations.
var tableIIIColumns = []string{"baseline (1)", "homog (2)", "homog (4)", "homog (8)", "hetero (2,1,1)"}

// paperTableIII holds the published milliseconds for reference.
var paperTableIII = map[model.GPU][]float64{
	model.K80:  {229.85, 232.08, 229.57, 227.46, 221.16},
	model.P100: {105.45, 105.27, 112.73, 198.11, 107.61},
	model.V100: {92.38, 95.90, 106.36, 191.72, 93.52},
}

func planTableIII(seed int64) *campaign.Plan {
	resnet32 := model.ResNet32()
	p := newPlan(seed)
	declare := func(g model.GPU, label string, workers []train.WorkerSpec) {
		n := int64(len(workers))
		p.sunit(fmt.Sprintf("table3/%v/%s", g, label), func(s int64, scr *campaign.Scratch) (any, error) {
			r, err := runSessionScratch(train.Config{
				Model:       resnet32,
				Workers:     workers,
				TargetSteps: 800 * n,
				Seed:        s,
			}, scr)
			if err != nil {
				return nil, err
			}
			ws, err := r.WorkerStatByGPU(g)
			if err != nil {
				return nil, err
			}
			return [2]float64{ws.MeanStepTime * 1000, ws.StdStepTime * 1000}, nil
		})
	}
	for _, g := range model.AllGPUs() {
		for _, n := range []int{1, 2, 4, 8} {
			declare(g, fmt.Sprintf("homog-%d", n), train.Homogeneous(g, n))
		}
		declare(g, "hetero-2-1-1", train.Mixed(2, 1, 1))
	}
	return p.build(func(outs []any) (Result, error) {
		res := &TableIIIResult{StepMs: make(map[model.GPU][]struct{ Mean, Std float64 })}
		i := 0
		for _, g := range model.AllGPUs() {
			for range tableIIIColumns {
				ms := outs[i].([2]float64)
				i++
				res.StepMs[g] = append(res.StepMs[g], struct{ Mean, Std float64 }{Mean: ms[0], Std: ms[1]})
			}
		}
		return res, nil
	})
}

// String renders the per-worker step times with the paper's values.
func (r *TableIIIResult) String() string {
	t := newTable("Table III — per-worker step time (ms), ResNet-32",
		append([]string{"GPU"}, tableIIIColumns...)...)
	for _, g := range model.AllGPUs() {
		cells := []string{g.String()}
		for i, s := range r.StepMs[g] {
			cells = append(cells, fmt.Sprintf("%.1f±%.1f (p %.1f)", s.Mean, s.Std, paperTableIII[g][i]))
		}
		t.addRow(cells...)
	}
	t.addNote("shape to verify: K80 flat through 8 workers; P100/V100 inflate at 8 (PS saturation); heterogeneity harmless")
	return t.String()
}

// Figure4Result reproduces Fig. 4: cluster speed vs. number of P100
// workers for the four canonical models.
type Figure4Result struct {
	// Speeds[modelName][i] is the cluster speed with i+1 workers.
	Speeds map[string][]float64
}

func planFigure4(seed int64) *campaign.Plan {
	p := newPlan(seed)
	for _, m := range model.CanonicalModels() {
		for n := 1; n <= 8; n++ {
			steps := int64(600 * n)
			if m.Name == "ShakeShakeBig" {
				steps = int64(300 * n) // slow model; fewer steps suffice
			}
			p.sunit(fmt.Sprintf("fig4/%s/%d", m.Name, n), func(s int64, scr *campaign.Scratch) (any, error) {
				return measureClusterSpeed(m, train.Homogeneous(model.P100, n), 1, steps, s, scr)
			})
		}
	}
	return p.build(func(outs []any) (Result, error) {
		res := &Figure4Result{Speeds: make(map[string][]float64)}
		i := 0
		for _, m := range model.CanonicalModels() {
			for n := 1; n <= 8; n++ {
				res.Speeds[m.Name] = append(res.Speeds[m.Name], outs[i].(float64))
				i++
			}
		}
		return res, nil
	})
}

// String renders the scaling curves.
func (r *Figure4Result) String() string {
	t := newTable("Fig. 4 — cluster speed (steps/s) vs. #P100 workers, 1 PS",
		"model", "1", "2", "3", "4", "5", "6", "7", "8")
	for _, m := range model.CanonicalModels() {
		cells := []string{m.Name}
		for _, s := range r.Speeds[m.Name] {
			cells = append(cells, fmt.Sprintf("%.1f", s))
		}
		t.addRow(cells...)
	}
	t.addNote("paper: ResNet-32 and ShakeShakeSmall plateau past 4 workers (PS bottleneck); ShakeShakeBig is GPU-bound")
	return t.String()
}

// Figure12Result reproduces Fig. 12: ResNet-15 and ResNet-32 cluster
// speed with one vs. two parameter servers, plus the detector verdict
// that would trigger the mitigation.
type Figure12Result struct {
	// Speeds[modelName][psCount-1][i] is speed with i+1 workers.
	Speeds map[string][2][]float64
	// MaxGainPct is the largest observed 2-PS improvement.
	MaxGainPct float64
	// DetectorFlagged reports whether CM-DARE's detector flags the
	// 8-worker, 1-PS ResNet-32 run against the Σ-speeds prediction.
	DetectorFlagged   bool
	DetectorDeviation float64
}

func planFigure12(seed int64) *campaign.Plan {
	p := newPlan(seed)
	models := []model.Model{model.ResNet15(), model.ResNet32()}
	for _, m := range models {
		for _, ps := range []int{1, 2} {
			for n := 1; n <= 8; n++ {
				p.sunit(fmt.Sprintf("fig12/%s/ps%d/%d", m.Name, ps, n), func(s int64, scr *campaign.Scratch) (any, error) {
					return measureClusterSpeed(m, train.Homogeneous(model.P100, n), ps, int64(700*n), s, scr)
				})
			}
		}
	}
	// Detection (§VI-B): compare predicted Σ-speeds against the
	// measured 8-worker, 1-PS ResNet-32 run.
	r32 := models[1]
	p.unit("fig12/detector", func(s int64) (any, error) {
		run, err := runSession(train.Config{
			Model:       r32,
			Workers:     train.Homogeneous(model.P100, 8),
			TargetSteps: 6000,
			Seed:        s,
		})
		if err != nil {
			return nil, err
		}
		predicted := 8 / model.StepTimeModel(model.P100, r32)
		return core.NewDetector().Check(predicted, run.SpeedSeries)
	})
	return p.build(func(outs []any) (Result, error) {
		res := &Figure12Result{Speeds: make(map[string][2][]float64)}
		i := 0
		for _, m := range models {
			var both [2][]float64
			for psIdx := range both {
				for n := 1; n <= 8; n++ {
					both[psIdx] = append(both[psIdx], outs[i].(float64))
					i++
				}
			}
			res.Speeds[m.Name] = both
			for j := range both[0] {
				if gain := (both[1][j] - both[0][j]) / both[0][j] * 100; gain > res.MaxGainPct {
					res.MaxGainPct = gain
				}
			}
		}
		verdict := outs[i].(core.Verdict)
		res.DetectorFlagged = verdict.Bottlenecked
		res.DetectorDeviation = verdict.Deviation
		return res, nil
	})
}

// String renders both panels plus the detector outcome.
func (r *Figure12Result) String() string {
	t := newTable("Fig. 12 — PS bottleneck mitigation: speed (steps/s) vs. #P100 workers",
		"model", "PS", "1", "2", "3", "4", "5", "6", "7", "8")
	for _, name := range []string{"ResNet-15", "ResNet-32"} {
		both := r.Speeds[name]
		for psIdx, series := range both {
			cells := []string{name, fmt.Sprintf("%d", psIdx+1)}
			for _, s := range series {
				cells = append(cells, fmt.Sprintf("%.1f", s))
			}
			t.addRow(cells...)
		}
	}
	t.addNote("max 2-PS improvement: %.1f%% (paper: up to 70.6%%)", r.MaxGainPct)
	t.addNote("detector on 8×P100 ResNet-32, 1 PS: deviation %.1f%%, bottleneck flagged = %v (threshold 6.7%%)",
		r.DetectorDeviation*100, r.DetectorFlagged)
	return t.String()
}
