package experiments

import (
	"fmt"

	"repro/internal/campaign"
	"repro/internal/cloud"
	"repro/internal/core"
	"repro/internal/manager"
	"repro/internal/model"
	"repro/internal/obs"
)

// The elastic experiment pits static against elastically resized
// mixed-GPU clusters under each revocation regime. All policies run
// the same heterogeneous cluster (2×K80 + 1×P100 + 1×V100, us-west1
// transient) in synchronous dynamic-batching mode, so the only
// difference is membership management: static holds the shape and
// replaces every revocation; "elastic" sheds workers ahead of the
// revocation waves the Fig. 9 diurnal prior predicts and regrows in
// quiet hours; "surge" additionally grows past the requested size. The
// score is the realized bill plus a lateness penalty past an
// analytically derived deadline — a policy that merely shrinks to save
// money loses on lateness, and one that never dodges a wave loses on
// revocation-disrupted rounds. The prior matches the table5 and
// diurnal regimes (both land deaths at Fig. 9 hours) but not weibull
// (hour-free lifetimes), so elasticity should pay off exactly where
// its forecast models the world.

// elasticReplications is how many independent seeds each
// (regime, policy) cell averages.
const elasticReplications = 2

// elasticSlack scales the analytic ideal runtime into the deadline:
// room for startup, checkpoint stalls, and modest disruption, but not
// for giving up half the cluster all day.
const elasticSlack = 1.35

// elasticIdealHours sizes the workload: long enough that the diurnal
// cycle (and its revocation waves) plays out, short enough that every
// policy finishes within the sweep's one-week cap.
const elasticIdealHours = 30

// elasticCheckpointInterval is the session checkpoint cadence (steps).
const elasticCheckpointInterval = 2000

// elasticCluster is the mixed shape every policy runs: the paper's
// Table III heterogeneity taken to all three GPU classes.
func elasticCluster() model.ClusterSpec {
	return model.ClusterSpec{
		{GPU: model.K80, Count: 2},
		{GPU: model.P100, Count: 1},
		{GPU: model.V100, Count: 1},
	}
}

// elasticRegime maps a display label to a lifetime-model registry name
// (empty = the provider default, Table V).
type elasticRegime struct {
	label, revModel string
}

func elasticRegimes() []elasticRegime {
	return []elasticRegime{
		{label: "table5", revModel: ""},
		{label: "weibull", revModel: "weibull"},
		{label: "diurnal", revModel: "diurnal"},
	}
}

// elasticWorkload derives the step target, deadline, and lateness
// penalty from the analytic synchronous round time of the full
// cluster — all closed-form, so every policy faces identical terms.
func elasticWorkload() (steps int64, deadlineHours, penaltyPerHour float64) {
	m := model.ShakeShakeBig()
	cluster := elasticCluster()
	gpus := cluster.GPUs()
	weights := make([]float64, len(gpus))
	penaltyPerHour = model.ParameterServerHourly
	for i, g := range gpus {
		weights[i] = model.StepsPerSecond(g, m)
		penaltyPerHour += model.HourlyPrice(g, true)
	}
	// The default batch-policy clamps (train.BatchPolicy's quarter and
	// 4× of the reference batch) keep the analytic shares aligned with
	// the simulated session's.
	shares := model.BatchShares(model.ReferenceBatch*len(gpus), weights, model.ReferenceBatch/4, model.ReferenceBatch*4)
	round, err := core.SyncRoundSeconds(gpus, shares, m.GFLOPs)
	if err != nil {
		panic(fmt.Sprintf("experiments: elastic workload: %v", err))
	}
	steps = int64(elasticIdealHours * 3600 / round)
	steps -= steps % 1000 // a round figure for tables and docs
	deadlineHours = float64(steps) * round / 3600 * elasticSlack
	return steps, deadlineHours, penaltyPerHour
}

// elasticEntry is one (regime, policy) replication's outcome.
type elasticEntry struct {
	Regime  string
	Policy  string
	Rep     int
	Outcome ScenarioOutcome
	// Hours is wall time from training start to target.
	Hours         float64
	DeadlineHours float64
	// Score = CostUSD + penalty × hours past the deadline.
	Score float64
}

func planElastic(seed int64) *campaign.Plan {
	p := newPlan(seed)
	steps, deadline, penalty := elasticWorkload()
	for _, regime := range elasticRegimes() {
		for rep := 0; rep < elasticReplications; rep++ {
			// One seed per (regime, rep) cell, shared by every policy:
			// identical cloud randomness, so score differences are pure
			// membership policy — the fleet/regret experiments' fairness
			// discipline.
			cellSeed := campaign.Derive(seed, uint64(rep), "elastic/"+regime.label)
			for _, policy := range manager.ElasticPolicies() {
				regime, policy, rep := regime, policy, rep
				sc := Scenario{
					Model:    model.ShakeShakeBig(),
					Region:   cloud.USWest1,
					Tier:     cloud.Transient,
					RevModel: regime.revModel,
					Cluster:  elasticCluster(),
					Elastic:  policy,
				}
				p.stunit(fmt.Sprintf("elastic/%s/%s/rep%d", regime.label, policy, rep), func(_ int64, rec *obs.Recorder, scr *campaign.Scratch) (any, error) {
					out, err := runScenario(sc, steps, elasticCheckpointInterval, SessionOptions{Trace: rec, Scratch: scr}, cellSeed)
					if err != nil {
						return nil, err
					}
					e := elasticEntry{
						Regime:        regime.label,
						Policy:        policy,
						Rep:           rep,
						Outcome:       out,
						Hours:         out.TrainingSeconds / 3600,
						DeadlineHours: deadline,
						Score:         out.CostUSD,
					}
					if late := e.Hours - deadline; late > 0 {
						e.Score += penalty * late
					}
					return e, nil
				})
			}
		}
	}
	return p.build(func(outs []any) (Result, error) {
		res := &ElasticResult{Replications: elasticReplications, Steps: steps, DeadlineHours: deadline, PenaltyPerHour: penalty}
		for _, o := range outs {
			res.Entries = append(res.Entries, o.(elasticEntry))
		}
		return res, nil
	})
}

// ElasticResult renders the static-vs-elastic comparison.
type ElasticResult struct {
	Replications   int
	Steps          int64
	DeadlineHours  float64
	PenaltyPerHour float64
	Entries        []elasticEntry
}

type elasticAgg struct {
	regime, policy              string
	n                           int
	hours, cost, score          float64
	revocations, grows, shrinks float64
	late                        int
}

// meanScores aggregates per (regime, policy), preserving declaration
// order.
func (r *ElasticResult) meanScores() (order []string, rows map[string]*elasticAgg) {
	rows = make(map[string]*elasticAgg)
	for _, e := range r.Entries {
		key := e.Regime + "|" + e.Policy
		a := rows[key]
		if a == nil {
			a = &elasticAgg{regime: e.Regime, policy: e.Policy}
			rows[key] = a
			order = append(order, key)
		}
		a.n++
		a.hours += e.Hours
		a.cost += e.Outcome.CostUSD
		a.score += e.Score
		a.revocations += float64(e.Outcome.Revocations)
		a.grows += float64(e.Outcome.Grows)
		a.shrinks += float64(e.Outcome.Shrinks)
		if e.Hours > e.DeadlineHours {
			a.late++
		}
	}
	return order, rows
}

// RegimesWhereElasticBeats lists the regimes where the "elastic"
// policy's mean score is strictly below "static"'s — the experiment's
// headline, pinned by a test at the golden seed. The diurnal-prior
// forecast matches table5 and diurnal but not weibull, so the expected
// answer is a strict subset of the regimes, not all of them.
func (r *ElasticResult) RegimesWhereElasticBeats() []string {
	_, rows := r.meanScores()
	var wins []string
	for _, regime := range elasticRegimes() {
		e := rows[regime.label+"|elastic"]
		s := rows[regime.label+"|static"]
		if e == nil || s == nil {
			continue
		}
		if e.score/float64(e.n) < s.score/float64(s.n) {
			wins = append(wins, regime.label)
		}
	}
	return wins
}

// String renders one row per (regime, policy), averaged over the
// replications, in declaration order.
func (r *ElasticResult) String() string {
	t := newTable(fmt.Sprintf("Elastic vs. static mixed cluster — %v us-west1 transient, %d sync rounds, deadline %.1f h, mean of %d runs per cell",
		elasticCluster(), r.Steps, r.DeadlineHours, r.Replications),
		"regime", "policy", "hours", "cost ($)", "late", "score ($)", "revoked", "grown", "shrunk")
	order, rows := r.meanScores()
	for _, key := range order {
		a := rows[key]
		n := float64(a.n)
		t.addRow(a.regime, a.policy,
			fmt.Sprintf("%.2f", a.hours/n),
			fmt.Sprintf("%.2f", a.cost/n),
			fmt.Sprintf("%d/%d", a.late, a.n),
			fmt.Sprintf("%.2f", a.score/n),
			fmt.Sprintf("%.1f", a.revocations/n),
			fmt.Sprintf("%.1f", a.grows/n),
			fmt.Sprintf("%.1f", a.shrinks/n))
	}
	if wins := r.RegimesWhereElasticBeats(); len(wins) > 0 {
		t.addNote("elastic beats static (mean score) under: %v", wins)
	} else {
		t.addNote("elastic beat static in no regime at this seed")
	}
	t.addNote("score = realized bill + $%.2f/h past the %.1f h deadline (full-cluster transient + PS rate; deadline = analytic sync round time × %g slack)", r.PenaltyPerHour, r.DeadlineHours, elasticSlack)
	t.addNote("all policies run synchronous dynamic batching on the same mixed cluster with per-cell shared seeds; they differ only in membership management")
	t.addNote("elastic/surge forecast with the Fig. 9 diurnal prior: right about table5 and diurnal revocation waves, wrong about weibull's hour-free lifetimes")
	return t.String()
}
