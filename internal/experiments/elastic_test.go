package experiments

import (
	"runtime"
	"strings"
	"testing"
)

// TestElasticExperimentRegistered keeps the extra reachable by id but
// out of "all", whose golden pins the paper artifacts only.
func TestElasticExperimentRegistered(t *testing.T) {
	if _, ok := ByID("elastic"); !ok {
		t.Fatal("elastic experiment not reachable by id")
	}
	for _, r := range All() {
		if r.ID == "elastic" {
			t.Fatal("elastic must stay outside \"all\" — the golden pins the paper's artifact set")
		}
	}
}

// TestElasticBeatsStaticAtGoldenSeed is the experiment's headline
// claim, pinned at the golden seed: with the Fig. 9 diurnal prior as
// forecast, the elastic policy's mean score beats static's in at least
// one revocation regime — and not in all of them, because the prior is
// wrong about weibull's hour-free lifetimes. If a change to the risk
// signal, the resize policy, or the sync-batch kernel breaks this, the
// claim in the docs is stale and the change needs a closer look.
func TestElasticBeatsStaticAtGoldenSeed(t *testing.T) {
	if testing.Short() {
		t.Skip("full elastic campaign in -short mode")
	}
	r, ok := ByID("elastic")
	if !ok {
		t.Fatal("elastic experiment not registered")
	}
	res, err := r.RunWorkers(42, runtime.GOMAXPROCS(0))
	if err != nil {
		t.Fatal(err)
	}
	er, ok := res.(*ElasticResult)
	if !ok {
		t.Fatalf("elastic experiment returned %T", res)
	}
	wins := er.RegimesWhereElasticBeats()
	if len(wins) == 0 {
		t.Fatalf("elastic beats static in no regime at seed 42:\n%s", er)
	}
	if len(wins) == len(elasticRegimes()) {
		t.Fatalf("elastic beats static in every regime at seed 42 — the weibull control regime should not reward the diurnal prior:\n%s", er)
	}
	found := false
	for _, w := range wins {
		if w == "table5" {
			found = true
		}
	}
	if !found {
		t.Fatalf("elastic wins %v at seed 42, want the table5 regime among them:\n%s", wins, er)
	}
	if !strings.Contains(er.String(), "elastic beats static (mean score) under:") {
		t.Error("render should surface the headline note")
	}
}

// TestElasticExperimentIsWorkerCountInvariant is the determinism
// acceptance for the elastic kernel: the full campaign renders byte-
// identically at -parallel 1 and 8, like every other campaign.
func TestElasticExperimentIsWorkerCountInvariant(t *testing.T) {
	if testing.Short() {
		t.Skip("full elastic campaign in -short mode")
	}
	r, _ := ByID("elastic")
	render := func(workers int) string {
		res, err := r.RunWorkers(42, workers)
		if err != nil {
			t.Fatal(err)
		}
		return res.String()
	}
	want := render(1)
	if got := render(8); got != want {
		t.Fatal("elastic experiment output depends on worker count")
	}
}

// TestElasticCellsShareSeedsAcrossPolicies pins the comparison's
// fairness contract: within one (regime, replication) cell every
// policy must face identical cloud randomness, so the plan declares
// one unit per policy per cell, grouped in declaration order.
func TestElasticCellsShareSeedsAcrossPolicies(t *testing.T) {
	plan := planElastic(7)
	policies := 3 // static, elastic, surge
	want := len(elasticRegimes()) * elasticReplications * policies
	if len(plan.Units) != want {
		t.Fatalf("elastic plan has %d units, want %d", len(plan.Units), want)
	}
	// Unit keys encode regime/policy/rep; every policy must appear once
	// per (regime, rep) cell.
	seen := make(map[string]int)
	for _, u := range plan.Units {
		parts := strings.Split(u.Key, "/")
		if len(parts) != 4 || parts[0] != "elastic" {
			t.Fatalf("unexpected unit key %q", u.Key)
		}
		seen[parts[1]+"/"+parts[3]]++
	}
	for cell, n := range seen {
		if n != policies {
			t.Errorf("cell %s has %d policy units, want %d", cell, n, policies)
		}
	}
}
