package experiments

import (
	"fmt"

	"repro/internal/cloud"
	"repro/internal/core"
	"repro/internal/manager"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/train"
)

// EndToEndResult reproduces §VI-A: predicting the end-to-end training
// time of a transient cluster with Eqs. 4–5 and validating against
// full simulated sessions (the paper reports 0.8% error for ResNet-32
// with Nw = 64K and Ic = 4K).
type EndToEndResult struct {
	Estimate       core.Estimate
	ActualSeconds  []float64
	MeanActual     float64
	ErrorPct       float64
	ActualRevoked  int
	PredictedCost  float64
	ActualCostMean float64
}

func runEndToEnd(seed int64) (Result, error) {
	const (
		region = cloud.USCentral1
		nw     = 64000
		ic     = 4000
	)
	resnet32 := model.ResNet32()

	// 1. Fit the speed model from K80 measurements (§III).
	ds, err := collectSpeedDataset([]model.GPU{model.K80}, seed)
	if err != nil {
		return nil, err
	}
	speedModel, err := core.FitSpeedModel(ds.observations(), core.KindSVRRBF)
	if err != nil {
		return nil, err
	}

	// 2. Fit the checkpoint model (§IV).
	ckptModel, err := core.FitCheckpointModel(
		collectCheckpointDataset(5, seed+1).observations(), core.FeatTotalSize, core.KindSVRRBF)
	if err != nil {
		return nil, err
	}

	// 3. Build the revocation estimator from a measurement campaign
	// (§V, Fig. 8's empirical CDFs with censored survivors).
	k, p := newCloud(seed + 2)
	study, err := trace.RunRevocationStudy(k, p, trace.PaperCampaign(), 12)
	if err != nil {
		return nil, err
	}
	rev := core.NewRevocationEstimator()
	if err := rev.SetLifetimes(region.String(), model.K80, study.CensoredLifetimes(model.K80, region)); err != nil {
		return nil, err
	}

	// 4. Tp: running-average transient startup time (§V-B).
	k2, p2 := newCloud(seed + 3)
	startup, err := trace.RunStartupStudy(k2, p2,
		[]model.GPU{model.K80}, []cloud.Tier{cloud.Transient}, []cloud.Region{region}, 20)
	if err != nil {
		return nil, err
	}
	tp := startup[0].MeanTotal
	ts := train.ReplacementSeconds(resnet32, true) // cold replacement (§V-D)

	predictor := &core.Predictor{
		Speed:              speedModel,
		Checkpoint:         ckptModel,
		Revocation:         rev,
		ProvisionSeconds:   tp,
		ReplacementSeconds: ts,
	}
	plan := core.Plan{
		Model: resnet32,
		Workers: []core.Placement{
			{GPU: model.K80, Region: region.String(), Transient: true},
			{GPU: model.K80, Region: region.String(), Transient: true},
		},
		TargetSteps:        nw,
		CheckpointInterval: ic,
	}
	est, err := predictor.Estimate(plan)
	if err != nil {
		return nil, err
	}

	// 5. Validate against full managed sessions on the cloud.
	res := &EndToEndResult{Estimate: est, PredictedCost: est.CostUSD}
	const sessions = 3
	var costSum float64
	for i := int64(0); i < sessions; i++ {
		k, p := newCloud(seed + 10 + i)
		s, err := manager.NewSession(p, manager.Config{
			Model: resnet32,
			Workers: []manager.Placement{
				{GPU: model.K80, Region: region, Tier: cloud.Transient},
				{GPU: model.K80, Region: region, Tier: cloud.Transient},
			},
			TargetSteps:        nw,
			CheckpointInterval: ic,
			Replacement:        manager.ReplaceImmediate,
			Seed:               seed + 20 + i,
		})
		if err != nil {
			return nil, err
		}
		k.RunUntil(sim.Time(12 * 3600))
		if !s.Done() {
			return nil, fmt.Errorf("endtoend: session %d incomplete at %d steps", i, s.Cluster().GlobalStep())
		}
		s.TerminateAll()
		res.ActualSeconds = append(res.ActualSeconds, s.TrainingSeconds())
		res.ActualRevoked += s.Revocations()
		costSum += s.Cost()
	}
	res.MeanActual = stats.Mean(res.ActualSeconds)
	res.ErrorPct = (est.TotalSeconds - res.MeanActual) / res.MeanActual * 100
	res.ActualCostMean = costSum / sessions
	return res, nil
}

// String renders the prediction against the measured sessions.
func (r *EndToEndResult) String() string {
	t := newTable("§VI-A — end-to-end training time prediction (ResNet-32, Nw=64K, Ic=4K, 2 transient K80)",
		"quantity", "value")
	t.addRow("predicted cluster speed", fmt.Sprintf("%.2f steps/s", r.Estimate.ClusterSpeed))
	t.addRow("predicted compute term", fmt.Sprintf("%.0f s", r.Estimate.ComputeSeconds))
	t.addRow("predicted checkpoint term", fmt.Sprintf("%.0f s", r.Estimate.CheckpointSeconds))
	t.addRow("expected revocations Nr", fmt.Sprintf("%.3f", r.Estimate.ExpectedRevocations))
	t.addRow("predicted revocation term", fmt.Sprintf("%.0f s", r.Estimate.RevocationSeconds))
	t.addRow("predicted total", fmt.Sprintf("%.0f s", r.Estimate.TotalSeconds))
	for i, a := range r.ActualSeconds {
		t.addRow(fmt.Sprintf("measured session %d", i+1), fmt.Sprintf("%.0f s", a))
	}
	t.addRow("measured mean", fmt.Sprintf("%.0f s", r.MeanActual))
	t.addRow("prediction error", fmt.Sprintf("%.2f%% (paper: 0.8%%)", r.ErrorPct))
	t.addRow("revocations absorbed", fmt.Sprintf("%d", r.ActualRevoked))
	t.addRow("predicted cost", fmt.Sprintf("$%.2f", r.PredictedCost))
	t.addRow("measured mean cost", fmt.Sprintf("$%.2f", r.ActualCostMean))
	return t.String()
}
