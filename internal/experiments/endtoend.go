package experiments

import (
	"fmt"

	"repro/internal/campaign"
	"repro/internal/cloud"
	"repro/internal/core"
	"repro/internal/manager"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/train"
)

// EndToEndResult reproduces §VI-A: predicting the end-to-end training
// time of a transient cluster with Eqs. 4–5 and validating against
// full simulated sessions (the paper reports 0.8% error for ResNet-32
// with Nw = 64K and Ic = 4K).
type EndToEndResult struct {
	Estimate       core.Estimate
	ActualSeconds  []float64
	MeanActual     float64
	ErrorPct       float64
	ActualRevoked  int
	PredictedCost  float64
	ActualCostMean float64
}

// validationRun summarizes one managed validation session.
type validationRun struct {
	Seconds float64
	Revoked int
	Cost    float64
}

func planEndToEnd(seed int64) *campaign.Plan {
	const (
		region   = cloud.USCentral1
		nw       = 64000
		ic       = 4000
		sessions = 3
	)
	resnet32 := model.ResNet32()
	p := newPlan(seed)

	// 1. K80 speed measurements for the Eq. 4 speed model (§III).
	dataset := p.declareSpeedDataset([]model.GPU{model.K80})

	// 2. Checkpoint timings for the Eq. 4 checkpoint model (§IV).
	ckptIdx := p.unit("endtoend/ckpt-dataset", func(s int64) (any, error) {
		return collectCheckpointDataset(5, s), nil
	})

	// 3. A twelve-day campaign for the revocation estimator (§V,
	// Fig. 8's empirical CDFs with censored survivors).
	studyIdx := declareRevocationStudy(p, "endtoend/revstudy")

	// 4. Tp: running-average transient startup time (§V-B).
	startupIdx := p.unit("endtoend/startup", func(s int64) (any, error) {
		k, prov := newCloud(s)
		startup, err := trace.RunStartupStudy(k, prov,
			[]model.GPU{model.K80}, []cloud.Tier{cloud.Transient}, []cloud.Region{region}, 20)
		if err != nil {
			return nil, err
		}
		return startup[0].MeanTotal, nil
	})

	// 5. Full managed sessions on the cloud for validation.
	valIdx := make([]int, sessions)
	for i := range valIdx {
		i := i
		valIdx[i] = p.unit(fmt.Sprintf("endtoend/session-%d", i), func(s int64) (any, error) {
			k, prov := newCloud(s)
			sess, err := manager.NewSession(prov, manager.Config{
				Model: resnet32,
				Workers: []manager.Placement{
					{GPU: model.K80, Region: region, Tier: cloud.Transient},
					{GPU: model.K80, Region: region, Tier: cloud.Transient},
				},
				TargetSteps:        nw,
				CheckpointInterval: ic,
				Replacement:        manager.ReplaceImmediate,
				Seed:               s + 1,
			})
			if err != nil {
				return nil, err
			}
			k.RunUntil(sim.Time(12 * 3600))
			if !sess.Done() {
				return nil, fmt.Errorf("endtoend: session %d incomplete at %d steps", i, sess.Cluster().GlobalStep())
			}
			sess.TerminateAll()
			return validationRun{
				Seconds: sess.TrainingSeconds(),
				Revoked: sess.Revocations(),
				Cost:    sess.Cost(),
			}, nil
		})
	}

	return p.build(func(outs []any) (Result, error) {
		speedModel, err := core.FitSpeedModel(dataset(outs).observations(), core.KindSVRRBF)
		if err != nil {
			return nil, err
		}
		ckptModel, err := core.FitCheckpointModel(
			outs[ckptIdx].(*checkpointDataset).observations(), core.FeatTotalSize, core.KindSVRRBF)
		if err != nil {
			return nil, err
		}
		study := outs[studyIdx].(*trace.RevocationStudy)
		rev := core.NewRevocationEstimator()
		if err := rev.SetLifetimes(region.String(), model.K80, study.CensoredLifetimes(model.K80, region)); err != nil {
			return nil, err
		}
		tp := outs[startupIdx].(float64)
		ts := train.ReplacementSeconds(resnet32, true) // cold replacement (§V-D)

		predictor := &core.Predictor{
			Speed:              speedModel,
			Checkpoint:         ckptModel,
			Revocation:         rev,
			ProvisionSeconds:   tp,
			ReplacementSeconds: ts,
		}
		plan := core.Plan{
			Model: resnet32,
			Workers: []core.Placement{
				{GPU: model.K80, Region: region.String(), Transient: true},
				{GPU: model.K80, Region: region.String(), Transient: true},
			},
			// The validation sessions run the manager's default single
			// parameter server; the prediction must price the same
			// cluster.
			ParameterServers:   1,
			TargetSteps:        nw,
			CheckpointInterval: ic,
		}
		est, err := predictor.Estimate(plan)
		if err != nil {
			return nil, err
		}

		res := &EndToEndResult{Estimate: est, PredictedCost: est.CostUSD}
		var costSum float64
		for _, vi := range valIdx {
			v := outs[vi].(validationRun)
			res.ActualSeconds = append(res.ActualSeconds, v.Seconds)
			res.ActualRevoked += v.Revoked
			costSum += v.Cost
		}
		res.MeanActual = stats.Mean(res.ActualSeconds)
		res.ErrorPct = (est.TotalSeconds - res.MeanActual) / res.MeanActual * 100
		res.ActualCostMean = costSum / sessions
		return res, nil
	})
}

// String renders the prediction against the measured sessions.
func (r *EndToEndResult) String() string {
	t := newTable("§VI-A — end-to-end training time prediction (ResNet-32, Nw=64K, Ic=4K, 2 transient K80)",
		"quantity", "value")
	t.addRow("predicted cluster speed", fmt.Sprintf("%.2f steps/s", r.Estimate.ClusterSpeed))
	t.addRow("predicted compute term", fmt.Sprintf("%.0f s", r.Estimate.ComputeSeconds))
	t.addRow("predicted checkpoint term", fmt.Sprintf("%.0f s", r.Estimate.CheckpointSeconds))
	t.addRow("expected revocations Nr", fmt.Sprintf("%.3f", r.Estimate.ExpectedRevocations))
	t.addRow("predicted revocation term", fmt.Sprintf("%.0f s", r.Estimate.RevocationSeconds))
	t.addRow("predicted total", fmt.Sprintf("%.0f s", r.Estimate.TotalSeconds))
	for i, a := range r.ActualSeconds {
		t.addRow(fmt.Sprintf("measured session %d", i+1), fmt.Sprintf("%.0f s", a))
	}
	t.addRow("measured mean", fmt.Sprintf("%.0f s", r.MeanActual))
	t.addRow("prediction error", fmt.Sprintf("%.2f%% (paper: 0.8%%)", r.ErrorPct))
	t.addRow("revocations absorbed", fmt.Sprintf("%d", r.ActualRevoked))
	t.addRow("predicted cost", fmt.Sprintf("$%.2f", r.PredictedCost))
	t.addRow("measured mean cost", fmt.Sprintf("$%.2f", r.ActualCostMean))
	return t.String()
}
