// Package experiments regenerates every table and figure of the
// paper's evaluation. Each runner declares its measurement campaign as
// a grid of independent replications — one simulated session or study
// per unit, each on its own single-threaded kernel — plus a reduce
// that renders the result in the same rows/series the paper reports,
// so shapes can be compared side by side (EXPERIMENTS.md records that
// comparison). The campaign engine schedules the grid on a worker
// pool; output is identical at any worker count.
package experiments

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/campaign"
	"repro/internal/obs"
	"repro/internal/train"
)

// Result is a rendered experiment outcome.
type Result interface {
	fmt.Stringer
}

// Runner executes one experiment end to end.
type Runner struct {
	// ID is the short name used by cmd/repro (-exp flag) and the
	// benchmark harness, e.g. "table1", "fig8", "endtoend".
	ID string
	// Title describes the paper artifact being reproduced.
	Title string
	// Plan declares the experiment's replication grid for the given
	// campaign seed.
	Plan func(seed int64) *campaign.Plan
}

// Run executes the experiment sequentially (one worker).
func (r Runner) Run(seed int64) (Result, error) {
	return r.RunWorkers(seed, 1)
}

// Tracing state consulted by newPlan. Plan building is single-threaded
// (runners declare their grids before the engine schedules anything),
// so package-level state set around the Plan call is safe; PlanTraced
// is the only writer.
var (
	activeCollector *obs.Collector
	activePrefix    string
)

// PlanTraced builds the runner's plan with sim-plane tracing attached:
// every traceable unit gets a recorder registered in col under
// "<id>/<unit index> <unit key>". Unit recorders are created here, at
// declaration time, and each is written only by its own unit's
// goroutine — so the collector's exported stream is deterministic at
// any worker count.
func (r Runner) PlanTraced(seed int64, col *obs.Collector) *campaign.Plan {
	activeCollector, activePrefix = col, r.ID
	defer func() { activeCollector, activePrefix = nil, "" }()
	return r.Plan(seed)
}

// RunWorkers executes the experiment's campaign on a pool of the given
// size. The result is identical for every worker count.
func (r Runner) RunWorkers(seed int64, workers int) (Result, error) {
	v, err := campaign.Engine{Workers: workers}.Run(r.Plan(seed))
	if err != nil {
		return nil, fmt.Errorf("%s: %w", r.ID, err)
	}
	return v.(Result), nil
}

// All lists every experiment in paper order, plus the scenario sweep.
func All() []Runner {
	return []Runner{
		{ID: "table1", Title: "Table I: training speed, simplest cluster (4 models × 3 GPUs)", Plan: planTableI},
		{ID: "fig2", Title: "Fig. 2: training speed vs. steps on K80 (warm-up and stability)", Plan: planFigure2},
		{ID: "fig3", Title: "Fig. 3: step time vs. normalized computation and model complexity", Plan: planFigure3},
		{ID: "table2", Title: "Table II: step-time prediction models (k-fold and test MAE)", Plan: planTableII},
		{ID: "table3", Title: "Table III: per-worker step time in homogeneous/heterogeneous clusters", Plan: planTableIII},
		{ID: "fig4", Title: "Fig. 4: cluster training speed vs. number of P100 workers", Plan: planFigure4},
		{ID: "fig5", Title: "Fig. 5: checkpoint duration vs. checkpoint size", Plan: planFigure5},
		{ID: "ckptseq", Title: "§IV-B: checkpoint overhead is additive (sequential with training)", Plan: planCheckpointSequential},
		{ID: "table4", Title: "Table IV: checkpoint-time prediction models", Plan: planTableIV},
		{ID: "fig6", Title: "Fig. 6: startup time breakdown (transient vs. on-demand)", Plan: planFigure6},
		{ID: "fig7", Title: "Fig. 7: startup time after revocations (immediate vs. delayed)", Plan: planFigure7},
		{ID: "table5", Title: "Table V: transient revocations by region and GPU", Plan: planTableV},
		{ID: "fig8", Title: "Fig. 8: lifetime CDFs by region and GPU", Plan: planFigure8},
		{ID: "fig9", Title: "Fig. 9: time-of-day impact on revocations", Plan: planFigure9},
		{ID: "fig10", Title: "Fig. 10: worker replacement overhead (cold vs. warm)", Plan: planFigure10},
		{ID: "fig11", Title: "Fig. 11: TensorFlow-specific recomputation overhead", Plan: planFigure11},
		{ID: "fig12", Title: "Fig. 12: parameter-server bottleneck detection and mitigation", Plan: planFigure12},
		{ID: "endtoend", Title: "§VI-A: end-to-end training time prediction (Eqs. 4–5)", Plan: planEndToEnd},
		{ID: "sweep", Title: "Scenario sweep: cluster size × GPU × region × tier (measured sessions)", Plan: planDefaultSweep},
	}
}

// Extras lists experiments that go beyond the paper's artifact set.
// They run via `repro -exp <id>` and appear in the catalog, but are
// deliberately not part of "all": the golden snapshot pins the paper
// reproduction's exact stdout, and these explore scenario axes the
// paper did not publish numbers for.
func Extras() []Runner {
	return []Runner{
		{ID: "revmodels", Title: "Revocation-model comparison: cost/time under each lifetime regime (same grid)", Plan: planRevModels},
		{ID: "fleet", Title: "Fleet scheduler comparison: multi-job contention on a capacity-constrained transient pool", Plan: planFleet},
		{ID: "providers", Title: "Cross-provider arbitrage: single-market fleets vs. scheduling across gce+aws+serverless markets", Plan: planProviders},
		{ID: "regret", Title: "Scheduler regret: every policy scored against a clairvoyant per-job oracle across contention regimes", Plan: planRegret},
		{ID: "elastic", Title: "Elastic clusters: static vs. risk-driven resizing of a mixed-GPU cluster under each revocation regime", Plan: planElastic},
	}
}

// ByID finds a runner among the paper artifacts and the extras.
func ByID(id string) (Runner, bool) {
	for _, r := range All() {
		if r.ID == id {
			return r, true
		}
	}
	for _, r := range Extras() {
		if r.ID == id {
			return r, true
		}
	}
	return Runner{}, false
}

// IDs lists all experiment IDs in order, paper artifacts first.
func IDs() []string {
	runners := All()
	extras := Extras()
	out := make([]string, 0, len(runners)+len(extras))
	for _, r := range runners {
		out = append(out, r.ID)
	}
	for _, r := range extras {
		out = append(out, r.ID)
	}
	return out
}

// plan accumulates a runner's campaign units in declaration order.
// Declaration order is the unit index, which fixes each unit's derived
// seed and the order reduce sees outputs in.
type plan struct {
	seed  int64
	units []campaign.Unit

	// col/prefix snapshot the package tracing state at newPlan time, so
	// traced units resolve their recorders at declaration.
	col    *obs.Collector
	prefix string
}

func newPlan(seed int64) *plan {
	return &plan{seed: seed, col: activeCollector, prefix: activePrefix}
}

// unit declares one replication and returns its index into the reduce
// outputs.
func (p *plan) unit(key string, run func(seed int64) (any, error)) int {
	p.units = append(p.units, campaign.Unit{Key: key, Run: run})
	return len(p.units) - 1
}

// sunit declares one scratch-aware replication: run receives a pooled
// per-worker arena for its summarization temporaries. Outputs must not
// alias scratch memory (see campaign.Scratch).
func (p *plan) sunit(key string, run func(seed int64, s *campaign.Scratch) (any, error)) int {
	p.units = append(p.units, campaign.Unit{Key: key, RunScratch: run})
	return len(p.units) - 1
}

// recorder returns the trace recorder for the unit about to be
// declared, or nil when the plan is untraced. The key embeds the unit
// index, so collector keys are unique and sort in declaration order.
func (p *plan) recorder(key string) *obs.Recorder {
	if p.col == nil {
		return nil
	}
	return p.col.Unit(fmt.Sprintf("%s/%04d %s", p.prefix, len(p.units), key))
}

// tunit declares one traceable replication: run receives the unit's
// recorder (nil when untraced), resolved at declaration time.
func (p *plan) tunit(key string, run func(seed int64, rec *obs.Recorder) (any, error)) int {
	rec := p.recorder(key)
	return p.unit(key, func(seed int64) (any, error) { return run(seed, rec) })
}

// stunit declares one traceable, scratch-aware replication.
func (p *plan) stunit(key string, run func(seed int64, rec *obs.Recorder, s *campaign.Scratch) (any, error)) int {
	rec := p.recorder(key)
	return p.sunit(key, func(seed int64, s *campaign.Scratch) (any, error) { return run(seed, rec, s) })
}

// session declares one training session on a fresh kernel; the engine
// supplies the session seed. The unit output is the train.Result.
func (p *plan) session(key string, cfg train.Config) int {
	return p.stunit(key, func(seed int64, rec *obs.Recorder, s *campaign.Scratch) (any, error) {
		cfg := cfg
		cfg.Seed = seed
		cfg.Trace = rec
		return runSessionScratch(cfg, s)
	})
}

// build finalizes the plan with a reduce over the declared units.
func (p *plan) build(reduce func(outs []any) (Result, error)) *campaign.Plan {
	return &campaign.Plan{
		Seed:   p.seed,
		Units:  p.units,
		Reduce: func(outs []any) (any, error) { return reduce(outs) },
	}
}

// table is a minimal text-table builder used by all renderers.
type table struct {
	title   string
	headers []string
	rows    [][]string
	notes   []string
}

func newTable(title string, headers ...string) *table {
	return &table{title: title, headers: headers}
}

func (t *table) addRow(cells ...string) {
	t.rows = append(t.rows, cells)
}

func (t *table) addNote(format string, args ...any) {
	t.notes = append(t.notes, fmt.Sprintf(format, args...))
}

func (t *table) String() string {
	// Size columns to the widest cell across headers and rows; ragged
	// rows (shorter or longer than the header row) widen the grid
	// rather than panic.
	cols := len(t.headers)
	for _, row := range t.rows {
		if len(row) > cols {
			cols = len(row)
		}
	}
	widths := make([]int, cols)
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.title != "" {
		b.WriteString(t.title)
		b.WriteString("\n")
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteString("\n")
	}
	writeRow(t.headers)
	sep := make([]string, len(t.headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	for _, n := range t.notes {
		b.WriteString("note: ")
		b.WriteString(n)
		b.WriteString("\n")
	}
	return b.String()
}

// sparkline renders values as a compact unicode bar series, used for
// histogram/CDF figures.
func sparkline(values []float64) string {
	if len(values) == 0 {
		return ""
	}
	levels := []rune(" ▁▂▃▄▅▆▇█")
	max := values[0]
	for _, v := range values {
		if v > max {
			max = v
		}
	}
	if max == 0 {
		return strings.Repeat(" ", len(values))
	}
	var b strings.Builder
	for _, v := range values {
		idx := int(v / max * float64(len(levels)-1))
		if idx < 0 {
			idx = 0
		}
		if idx >= len(levels) {
			idx = len(levels) - 1
		}
		b.WriteRune(levels[idx])
	}
	return b.String()
}

// sortedKeys returns map keys in sorted order for deterministic
// rendering.
func sortedKeys[K ~int, V any](m map[K]V) []K {
	keys := make([]K, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}
