// Package experiments regenerates every table and figure of the
// paper's evaluation. Each runner executes the corresponding
// measurement methodology on the simulated substrate and renders the
// result in the same rows/series the paper reports, so shapes can be
// compared side by side (EXPERIMENTS.md records that comparison).
package experiments

import (
	"fmt"
	"sort"
	"strings"
)

// Result is a rendered experiment outcome.
type Result interface {
	fmt.Stringer
}

// Runner executes one experiment end to end.
type Runner struct {
	// ID is the short name used by cmd/repro (-exp flag) and the
	// benchmark harness, e.g. "table1", "fig8", "endtoend".
	ID string
	// Title describes the paper artifact being reproduced.
	Title string
	// Run executes the experiment with the given seed.
	Run func(seed int64) (Result, error)
}

// All lists every experiment in paper order.
func All() []Runner {
	return []Runner{
		{ID: "table1", Title: "Table I: training speed, simplest cluster (4 models × 3 GPUs)", Run: runTableI},
		{ID: "fig2", Title: "Fig. 2: training speed vs. steps on K80 (warm-up and stability)", Run: runFigure2},
		{ID: "fig3", Title: "Fig. 3: step time vs. normalized computation and model complexity", Run: runFigure3},
		{ID: "table2", Title: "Table II: step-time prediction models (k-fold and test MAE)", Run: runTableII},
		{ID: "table3", Title: "Table III: per-worker step time in homogeneous/heterogeneous clusters", Run: runTableIII},
		{ID: "fig4", Title: "Fig. 4: cluster training speed vs. number of P100 workers", Run: runFigure4},
		{ID: "fig5", Title: "Fig. 5: checkpoint duration vs. checkpoint size", Run: runFigure5},
		{ID: "ckptseq", Title: "§IV-B: checkpoint overhead is additive (sequential with training)", Run: runCheckpointSequential},
		{ID: "table4", Title: "Table IV: checkpoint-time prediction models", Run: runTableIV},
		{ID: "fig6", Title: "Fig. 6: startup time breakdown (transient vs. on-demand)", Run: runFigure6},
		{ID: "fig7", Title: "Fig. 7: startup time after revocations (immediate vs. delayed)", Run: runFigure7},
		{ID: "table5", Title: "Table V: transient revocations by region and GPU", Run: runTableV},
		{ID: "fig8", Title: "Fig. 8: lifetime CDFs by region and GPU", Run: runFigure8},
		{ID: "fig9", Title: "Fig. 9: time-of-day impact on revocations", Run: runFigure9},
		{ID: "fig10", Title: "Fig. 10: worker replacement overhead (cold vs. warm)", Run: runFigure10},
		{ID: "fig11", Title: "Fig. 11: TensorFlow-specific recomputation overhead", Run: runFigure11},
		{ID: "fig12", Title: "Fig. 12: parameter-server bottleneck detection and mitigation", Run: runFigure12},
		{ID: "endtoend", Title: "§VI-A: end-to-end training time prediction (Eqs. 4–5)", Run: runEndToEnd},
	}
}

// ByID finds a runner.
func ByID(id string) (Runner, bool) {
	for _, r := range All() {
		if r.ID == id {
			return r, true
		}
	}
	return Runner{}, false
}

// IDs lists all experiment IDs in order.
func IDs() []string {
	runners := All()
	out := make([]string, len(runners))
	for i, r := range runners {
		out[i] = r.ID
	}
	return out
}

// table is a minimal text-table builder used by all renderers.
type table struct {
	title   string
	headers []string
	rows    [][]string
	notes   []string
}

func newTable(title string, headers ...string) *table {
	return &table{title: title, headers: headers}
}

func (t *table) addRow(cells ...string) {
	t.rows = append(t.rows, cells)
}

func (t *table) addNote(format string, args ...any) {
	t.notes = append(t.notes, fmt.Sprintf(format, args...))
}

func (t *table) String() string {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.title != "" {
		b.WriteString(t.title)
		b.WriteString("\n")
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteString("\n")
	}
	writeRow(t.headers)
	sep := make([]string, len(t.headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	for _, n := range t.notes {
		b.WriteString("note: ")
		b.WriteString(n)
		b.WriteString("\n")
	}
	return b.String()
}

// sparkline renders values as a compact unicode bar series, used for
// histogram/CDF figures.
func sparkline(values []float64) string {
	if len(values) == 0 {
		return ""
	}
	levels := []rune(" ▁▂▃▄▅▆▇█")
	max := values[0]
	for _, v := range values {
		if v > max {
			max = v
		}
	}
	if max == 0 {
		return strings.Repeat(" ", len(values))
	}
	var b strings.Builder
	for _, v := range values {
		idx := int(v / max * float64(len(levels)-1))
		if idx < 0 {
			idx = 0
		}
		if idx >= len(levels) {
			idx = len(levels) - 1
		}
		b.WriteRune(levels[idx])
	}
	return b.String()
}

// sortedKeys returns map keys in sorted order for deterministic
// rendering.
func sortedKeys[K ~int, V any](m map[K]V) []K {
	keys := make([]K, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}
