package experiments

import (
	"math"
	"strings"
	"testing"

	"repro/internal/model"
)

// runByID executes one registered experiment sequentially.
func runByID(t *testing.T, id string, seed int64) Result {
	t.Helper()
	r, ok := ByID(id)
	if !ok {
		t.Fatalf("experiment %q not registered", id)
	}
	res, err := r.Run(seed)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// skipShort gates the heaviest campaigns so `go test -short` stays
// fast; the default run keeps full-depth coverage.
func skipShort(t *testing.T) {
	t.Helper()
	if testing.Short() {
		t.Skip("heavy measurement campaign; skipped in -short mode")
	}
}

func TestRegistryCoversEveryPaperArtifact(t *testing.T) {
	want := []string{
		"table1", "fig2", "fig3", "table2", "table3", "fig4", "fig5",
		"ckptseq", "table4", "fig6", "fig7", "table5", "fig8", "fig9",
		"fig10", "fig11", "fig12", "endtoend", "sweep",
		// Extras follow the paper artifacts; they are not part of
		// "all" (the golden snapshot pins that stream).
		"revmodels", "fleet", "providers", "regret", "elastic",
	}
	got := IDs()
	if len(got) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("registry[%d] = %s, want %s", i, got[i], want[i])
		}
	}
	for _, r := range All() {
		if r.ID == "revmodels" {
			t.Fatal(`extras must stay out of All() — "all" is the golden stream`)
		}
	}
	if _, ok := ByID("table1"); !ok {
		t.Fatal("ByID(table1) not found")
	}
	if _, ok := ByID("revmodels"); !ok {
		t.Fatal("ByID(revmodels) not found")
	}
	if _, ok := ByID("nope"); ok {
		t.Fatal("ByID(nope) should fail")
	}
}

func TestTableI(t *testing.T) {
	res := runByID(t, "table1", 1)
	r := res.(*TableIResult)
	for g, speeds := range PaperTableI {
		for i, want := range speeds {
			got := r.Speeds[g][i].Mean
			if math.Abs(got-want)/want > 0.04 {
				t.Errorf("%v model %d: %.2f steps/s, paper %.2f", g, i, got, want)
			}
		}
	}
	out := r.String()
	if !strings.Contains(out, "Table I") || !strings.Contains(out, "V100") {
		t.Error("render missing expected content")
	}
}

func TestFigure2(t *testing.T) {
	res := runByID(t, "fig2", 2)
	r := res.(*Figure2Result)
	for name, cov := range r.SteadyCoV {
		if cov > 0.03 {
			t.Errorf("%s steady CoV = %.4f, paper reports ≤0.02", name, cov)
		}
	}
	series := r.Series["ResNet-15"]
	if len(series) != 40 {
		t.Fatalf("ResNet-15 series has %d windows, want 40", len(series))
	}
	// Warm-up visible: first window clearly slower than last.
	if series[0] >= series[len(series)-1]*0.85 {
		t.Error("warm-up dip not visible in the speed trace")
	}
	if !strings.Contains(r.String(), "Fig. 2") {
		t.Error("render missing title")
	}
}

func TestFigure3(t *testing.T) {
	res := runByID(t, "fig3", 3)
	r := res.(*Figure3Result)
	for _, g := range r.GPUs {
		if len(r.Points[g]) != 20 {
			t.Fatalf("%v has %d points, want 20", g, len(r.Points[g]))
		}
		if r.CorrCnorm[g] < 0.9 || r.CorrCm[g] < 0.9 {
			t.Errorf("%v correlations %.3f/%.3f, want strong positive",
				g, r.CorrCnorm[g], r.CorrCm[g])
		}
		for _, p := range r.Points[g] {
			if p.Cnorm < 0 || p.CmNorm < 0 || p.CmNorm > 1 {
				t.Errorf("%v point outside normalized range: %+v", g, p)
			}
		}
	}
}

func TestTableII(t *testing.T) {
	skipShort(t)
	res := runByID(t, "table2", 4)
	r := res.(*TableIIResult)
	if len(r.Rows) != 8 {
		t.Fatalf("rows = %d, want 8", len(r.Rows))
	}
	byName := make(map[string]RegressionRow)
	for _, row := range r.Rows {
		byName[row.Name] = row
		if row.KFoldMAE < 0 || row.TestMAE < 0 {
			t.Errorf("%s has negative MAE", row.Name)
		}
	}
	// Paper's ordering: per-GPU SVR-RBF beats the per-GPU linear model.
	for _, g := range []model.GPU{model.K80, model.P100} {
		lin := byName["Univariate, "+g.String()]
		rbf := byName["SVR RBF Kernel, "+g.String()]
		if rbf.KFoldMAE >= lin.KFoldMAE {
			t.Errorf("%v: SVR-RBF k-fold MAE %.4f should beat linear %.4f", g, rbf.KFoldMAE, lin.KFoldMAE)
		}
		if rbf.C < 10 || rbf.C > 100 || rbf.Epsilon < 0.01 || rbf.Epsilon > 0.1 {
			t.Errorf("%v: grid-search result (%.0f, %.2f) outside the paper's grid", g, rbf.C, rbf.Epsilon)
		}
	}
	// GPU-agnostic multivariate is the paper's worst family; it should
	// not beat the best GPU-specific model.
	agn := byName["Multivariate, GPU-agnostic"]
	best := byName["SVR RBF Kernel, K80"]
	if agn.KFoldMAE <= best.KFoldMAE {
		t.Errorf("GPU-agnostic multivariate (%.4f) should not beat GPU-specific SVR-RBF (%.4f)",
			agn.KFoldMAE, best.KFoldMAE)
	}
	if !strings.Contains(r.String(), "Table II") {
		t.Error("render missing title")
	}
}

func TestTableIII(t *testing.T) {
	res := runByID(t, "table3", 5)
	r := res.(*TableIIIResult)
	for _, g := range model.AllGPUs() {
		if len(r.StepMs[g]) != 5 {
			t.Fatalf("%v has %d columns, want 5", g, len(r.StepMs[g]))
		}
	}
	k80 := r.StepMs[model.K80]
	if infl := k80[3].Mean / k80[0].Mean; infl > 1.12 {
		t.Errorf("K80 8-worker inflation %.2f, want ≈1 (no bottleneck)", infl)
	}
	p100 := r.StepMs[model.P100]
	if infl := p100[3].Mean / p100[0].Mean; infl < 1.4 {
		t.Errorf("P100 8-worker inflation %.2f, want ≥1.4 (saturation)", infl)
	}
	v100 := r.StepMs[model.V100]
	if infl := v100[4].Mean / v100[0].Mean; infl > 1.1 {
		t.Errorf("V100 heterogenous-cluster inflation %.2f, want ≈1", infl)
	}
}

func TestFigure4(t *testing.T) {
	res := runByID(t, "fig4", 6)
	r := res.(*Figure4Result)
	r15 := r.Speeds["ResNet-15"]
	r32 := r.Speeds["ResNet-32"]
	if len(r15) != 8 || len(r32) != 8 {
		t.Fatal("series must span 1–8 workers")
	}
	// ResNet-15 grows the most in absolute terms.
	if r15[7]-r15[0] < r32[7]-r32[0] {
		t.Error("ResNet-15 should show the most obvious upward trend")
	}
	// ResNet-32 plateaus past 4 workers.
	if gain := (r32[7] - r32[4]) / r32[4]; gain > 0.35 {
		t.Errorf("ResNet-32 5→8 worker gain %.2f, want plateau", gain)
	}
	// ShakeShakeBig stays far below the axis ceiling (GPU-bound look).
	ssb := r.Speeds["ShakeShakeBig"]
	if ssb[7] > 25 {
		t.Errorf("ShakeShakeBig at 8 workers = %.1f steps/s, expected small", ssb[7])
	}
}

func TestFigure5(t *testing.T) {
	res := runByID(t, "fig5", 7)
	r := res.(*Figure5Result)
	if len(r.Points) != 20 {
		t.Fatalf("points = %d, want 20", len(r.Points))
	}
	if r.Corr < 0.95 {
		t.Errorf("size-time correlation = %.3f, want strong positive", r.Corr)
	}
	for _, p := range r.Points {
		if p.CoV < 0.005 || p.CoV > 0.12 {
			t.Errorf("%s CoV = %.3f outside Fig. 5's plausible band", p.Model, p.CoV)
		}
	}
	// Size range matches Fig. 5's axis (up to ≈210 MB).
	last := r.Points[len(r.Points)-1]
	if last.SizeMB < 150 || last.SizeMB > 215 {
		t.Errorf("largest checkpoint %.0f MB, want ≈200", last.SizeMB)
	}
}

func TestCheckpointSequential(t *testing.T) {
	res := runByID(t, "ckptseq", 8)
	r := res.(*CheckpointSequentialResult)
	if math.Abs(r.Difference-r.MeasuredCkptSeconds) > 0.6 {
		t.Errorf("difference %.2f s vs measured checkpoint %.2f s — additivity violated",
			r.Difference, r.MeasuredCkptSeconds)
	}
	if math.Abs(r.MeasuredCkptSeconds-3.84) > 0.5 {
		t.Errorf("checkpoint time %.2f s, paper 3.84", r.MeasuredCkptSeconds)
	}
}

func TestTableIV(t *testing.T) {
	skipShort(t)
	res := runByID(t, "table4", 9)
	r := res.(*TableIVResult)
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(r.Rows))
	}
	svr := r.Rows[3]
	uni := r.Rows[0]
	// On our substrate the checkpoint process is only mildly
	// nonlinear (throughput ramp), so SVR-RBF and linear are close;
	// require SVR to be competitive rather than strictly dominant
	// (EXPERIMENTS.md documents this deviation from the paper's
	// clear-cut SVR win).
	if svr.KFoldMAE > uni.KFoldMAE*1.25 {
		t.Errorf("SVR-RBF k-fold MAE %.4f should be competitive with univariate %.4f (Table IV)",
			svr.KFoldMAE, uni.KFoldMAE)
	}
	if svr.TestMAPE > 12 {
		t.Errorf("SVR-RBF test MAPE %.1f%%, paper 5.38%%", svr.TestMAPE)
	}
}

func TestFigure6(t *testing.T) {
	res := runByID(t, "fig6", 10)
	r := res.(*Figure6Result)
	if len(r.Summaries) != 8 {
		t.Fatalf("summaries = %d, want 8", len(r.Summaries))
	}
	for _, s := range r.Summaries {
		if s.MeanTotal <= 0 || s.MeanTotal > 100 {
			t.Errorf("%v/%v/%v total %.1f s outside (0, 100)", s.GPU, s.Tier, s.Region, s.MeanTotal)
		}
	}
}

func TestFigure7(t *testing.T) {
	res := runByID(t, "fig7", 11)
	r := res.(*Figure7Result)
	if len(r.Immediate) != 3 || len(r.Delayed) != 3 {
		t.Fatal("expected results for all three GPU types")
	}
	for i := range r.Immediate {
		imm, del := r.Immediate[i], r.Delayed[i]
		if math.Abs(imm.MeanTotal-del.MeanTotal) > 6 {
			t.Errorf("%v: means %.1f vs %.1f differ beyond Fig. 7's ≈4 s",
				imm.Requested, imm.MeanTotal, del.MeanTotal)
		}
		if imm.CoVTotal < del.CoVTotal {
			t.Errorf("%v: immediate CoV %.3f should exceed delayed %.3f",
				imm.Requested, imm.CoVTotal, del.CoVTotal)
		}
	}
}

func TestTableV(t *testing.T) {
	res := runByID(t, "table5", 12)
	r := res.(*TableVResult)
	cells := r.Study.TableV()
	if len(cells) != 12 {
		t.Fatalf("cells = %d, want 12", len(cells))
	}
	if !strings.Contains(r.String(), "us-west1") {
		t.Error("render missing regions")
	}
}

func TestFigure8(t *testing.T) {
	res := runByID(t, "fig8", 13)
	out := res.String()
	if !strings.Contains(out, "europe-west1") || !strings.Contains(out, "MTTR") {
		t.Error("render missing expected content")
	}
}

func TestFigure9(t *testing.T) {
	res := runByID(t, "fig9", 14)
	r := res.(*Figure9Result)
	k80 := r.Histograms[model.K80]
	peak, _ := k80.Peak()
	if peak < 8 || peak > 11 {
		t.Errorf("K80 peak hour = %d, paper sees 10:00", peak)
	}
	v100 := r.Histograms[model.V100]
	quiet := v100.Counts[16] + v100.Counts[17] + v100.Counts[18] + v100.Counts[19]
	if frac := float64(quiet) / float64(v100.Total()); frac > 0.03 {
		t.Errorf("V100 quiet-window fraction = %.3f, want ≈0", frac)
	}
}

func TestFigure10(t *testing.T) {
	res := runByID(t, "fig10", 15)
	r := res.(*Figure10Result)
	r15 := r.Seconds["ResNet-15"]
	if math.Abs(r15[0]-75.6) > 5 {
		t.Errorf("ResNet-15 cold = %.1f s, paper 75.6", r15[0])
	}
	if math.Abs(r15[1]-14.8) > 3 {
		t.Errorf("ResNet-15 warm = %.1f s, paper 14.8", r15[1])
	}
	ssb := r.Seconds["ShakeShakeBig"]
	if d := ssb[1] - r15[1]; math.Abs(d-15) > 4 {
		t.Errorf("ShakeShakeBig−ResNet-15 warm delta = %.1f s, paper ≈15", d)
	}
	// Cold always exceeds warm.
	for name, v := range r.Seconds {
		if v[0] <= v[1] {
			t.Errorf("%s: cold %.1f ≤ warm %.1f", name, v[0], v[1])
		}
	}
}

func TestFigure11(t *testing.T) {
	skipShort(t)
	res := runByID(t, "fig11", 16)
	r := res.(*Figure11Result)
	if len(r.OverheadSeconds) != 5 {
		t.Fatalf("points = %d, want 5", len(r.OverheadSeconds))
	}
	// Overhead grows with steps since the checkpoint and is
	// substantial at 3.5k steps (paper: up to ≈300 s).
	first, last := r.OverheadSeconds[0], r.OverheadSeconds[4]
	if last <= first {
		t.Errorf("overhead should grow: %.0f s → %.0f s", first, last)
	}
	if last < 60 || last > 400 {
		t.Errorf("overhead at 3.5k steps = %.0f s, want within Fig. 11's range", last)
	}
}

func TestFigure12(t *testing.T) {
	res := runByID(t, "fig12", 17)
	r := res.(*Figure12Result)
	if r.MaxGainPct < 35 {
		t.Errorf("max 2-PS gain = %.1f%%, paper reports up to 70.6%%", r.MaxGainPct)
	}
	if !r.DetectorFlagged {
		t.Error("detector should flag the saturated 8×P100 ResNet-32 run")
	}
	if r.DetectorDeviation <= 0.067 {
		t.Errorf("deviation = %.3f, want above the 6.7%% threshold", r.DetectorDeviation)
	}
	// 2 PS never hurts.
	for name, both := range r.Speeds {
		for i := range both[0] {
			if both[1][i] < both[0][i]*0.93 {
				t.Errorf("%s: 2 PS slower than 1 PS at %d workers (%.1f vs %.1f)",
					name, i+1, both[1][i], both[0][i])
			}
		}
	}
}

func TestEndToEnd(t *testing.T) {
	skipShort(t)
	res := runByID(t, "endtoend", 18)
	r := res.(*EndToEndResult)
	if math.Abs(r.ErrorPct) > 5 {
		t.Errorf("prediction error = %.2f%%, want within ±5%% (paper: 0.8%%)", r.ErrorPct)
	}
	if r.Estimate.ExpectedRevocations < 0 || r.Estimate.ExpectedRevocations > 1 {
		t.Errorf("expected revocations = %.3f, implausible", r.Estimate.ExpectedRevocations)
	}
	if r.PredictedCost <= 0 || r.ActualCostMean <= 0 {
		t.Error("costs should be positive")
	}
}

func TestSparkline(t *testing.T) {
	if sparkline(nil) != "" {
		t.Error("empty sparkline should be empty")
	}
	s := sparkline([]float64{0, 1, 2, 4})
	if len([]rune(s)) != 4 {
		t.Errorf("sparkline length = %d, want 4", len([]rune(s)))
	}
	if sparkline([]float64{0, 0}) != "  " {
		t.Error("all-zero sparkline should be blank")
	}
}

func TestTableRendering(t *testing.T) {
	tb := newTable("T", "a", "bb")
	tb.addRow("x", "y")
	tb.addNote("n=%d", 1)
	out := tb.String()
	for _, want := range []string{"T\n", "a", "bb", "x", "y", "note: n=1"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}
