package experiments

import (
	"fmt"

	"repro/internal/campaign"
	"repro/internal/cloud"
	"repro/internal/fleet"
	"repro/internal/model"
	"repro/internal/obs"
)

// The fleet experiment compares admission policies on a shared,
// capacity-constrained transient pool: the multi-tenant reading of the
// paper's §V churn characterization. Every scheduler faces the same
// reproducible job stream and the same provider seed inside each
// (regime, replication) cell, so rows within a cell differ only by
// policy.

// fleetReplications is how many independent (workload, provider-seed)
// draws each (scheduler, regime) measurement averages.
const fleetReplications = 2

// fleetRegime is one contention level of the comparison.
type fleetRegime struct {
	name string
	// slotsPerCell caps every offered (region, GPU) cell of the
	// transient pool; 0 means infinite.
	slotsPerCell int
	arrival      fleet.ArrivalProcess
}

// fleetRegimes spans no contention (the infinite pool every other
// experiment assumes), a tight pool where whole clusters fit one at a
// time per cell, and a scarce pool under bursty arrivals where
// 4-worker jobs cannot fit any transient cell at all — the regime that
// separates head-of-line FIFO from policies that backfill or buy
// on-demand.
func fleetRegimes() []fleetRegime {
	return []fleetRegime{
		{name: "ample", slotsPerCell: 0, arrival: fleet.ArrivalPoisson},
		{name: "tight", slotsPerCell: 4, arrival: fleet.ArrivalPoisson},
		{name: "scarce", slotsPerCell: 2, arrival: fleet.ArrivalBursty},
	}
}

// uniformCapacity caps every offered cell at n slots.
func uniformCapacity(n int) cloud.Capacity {
	if n <= 0 {
		return nil
	}
	cap := cloud.Capacity{}
	for _, g := range model.AllGPUs() {
		for _, r := range cloud.OfferedRegions(g) {
			cap[cloud.PoolKey{Region: r, GPU: g}] = n
		}
	}
	return cap
}

// fleetWorkload is the job stream every scheduler faces: ten jobs
// arriving at two per hour, sized from the catalog, over a two-day
// horizon so even slack deadlines resolve inside the run.
func fleetWorkload(arrival fleet.ArrivalProcess) fleet.WorkloadSpec {
	return fleet.WorkloadSpec{
		Jobs:               10,
		Arrival:            arrival,
		RatePerHour:        2,
		StepsPerWorker:     30000,
		CheckpointInterval: 1000,
	}
}

// fleetHorizonHours bounds each fleet run; jobs still waiting or
// running at the horizon count as deadline misses.
const fleetHorizonHours = 48

// fleetEntry is one (scheduler, regime) replication.
type fleetEntry struct {
	Scheduler string
	Regime    string
	Result    *fleet.Result
}

func planFleet(seed int64) *campaign.Plan {
	p := newPlan(seed)
	schedulers := []string{"fifo", "cost-greedy", "deadline-aware"}
	for _, regime := range fleetRegimes() {
		for _, sched := range schedulers {
			regime, sched := regime, sched
			for rep := 0; rep < fleetReplications; rep++ {
				rep := rep
				// Workload and provider seeds are shared across the
				// schedulers of one (regime, rep) cell — policies are
				// compared on identical arrivals and identical cloud
				// randomness — so the unit derives them from the plan
				// seed itself rather than using the per-unit seed.
				cfg := fleet.Config{
					Workload:     fleetWorkload(regime.arrival),
					Scheduler:    sched,
					Capacity:     uniformCapacity(regime.slotsPerCell),
					HorizonHours: fleetHorizonHours,
					WorkloadSeed: campaign.Derive(seed, uint64(rep), "fleet/workload/"+regime.name),
				}
				simSeed := campaign.Derive(seed, uint64(rep), "fleet/sim/"+regime.name)
				p.tunit(fmt.Sprintf("fleet/%s/%s/rep%d", regime.name, sched, rep), func(_ int64, rec *obs.Recorder) (any, error) {
					res, err := fleet.RunTraced(cfg, simSeed, rec)
					if err != nil {
						return nil, err
					}
					return fleetEntry{Scheduler: sched, Regime: regime.name, Result: res}, nil
				})
			}
		}
	}
	return p.build(func(outs []any) (Result, error) {
		res := &FleetResult{Replications: fleetReplications}
		for _, o := range outs {
			res.Entries = append(res.Entries, o.(fleetEntry))
		}
		return res, nil
	})
}

// FleetResult renders the scheduler comparison.
type FleetResult struct {
	Replications int
	Entries      []fleetEntry
}

// String renders one row per (regime, scheduler), averaged over the
// replications, in unit declaration order.
func (r *FleetResult) String() string {
	w := fleetWorkload(fleet.ArrivalPoisson)
	t := newTable(fmt.Sprintf("Fleet scheduler comparison — %d jobs, %g/h, %d steps/worker, %dh horizon, mean of %d runs per cell",
		w.Jobs, w.RatePerHour, w.StepsPerWorker, fleetHorizonHours, r.Replications),
		"regime", "scheduler", "done", "misses", "wait (h)", "makespan (h)", "cost ($)", "revoked")
	type agg struct {
		n                                       int
		done, misses, wait, makespan, cost, rev float64
	}
	var order []string
	rows := make(map[string]*agg)
	labels := make(map[string][2]string)
	for _, e := range r.Entries {
		key := e.Regime + "|" + e.Scheduler
		a := rows[key]
		if a == nil {
			a = &agg{}
			rows[key] = a
			order = append(order, key)
			labels[key] = [2]string{e.Regime, e.Scheduler}
		}
		a.n++
		a.done += float64(e.Result.Completed)
		a.misses += float64(e.Result.DeadlineMisses)
		a.wait += e.Result.MeanWaitHours
		a.makespan += e.Result.MakespanHours
		a.cost += e.Result.TotalCostUSD
		a.rev += float64(e.Result.Revocations)
	}
	for _, key := range order {
		a := rows[key]
		n := float64(a.n)
		t.addRow(labels[key][0], labels[key][1],
			fmt.Sprintf("%.1f", a.done/n),
			fmt.Sprintf("%.1f", a.misses/n),
			fmt.Sprintf("%.2f", a.wait/n),
			fmt.Sprintf("%.1f", a.makespan/n),
			fmt.Sprintf("%.2f", a.cost/n),
			fmt.Sprintf("%.1f", a.rev/n))
	}
	t.addNote("regimes: ample = infinite pool, tight = 4 transient slots per offered cell (poisson arrivals), scarce = 2 slots per cell (bursty arrivals)")
	t.addNote("schedulers in one cell share the job stream and provider seed; rows differ only by policy")
	t.addNote("fifo = strict arrival order, cost-greedy = cheapest $/step across the queue, deadline-aware = EDF with on-demand fallback at the last responsible moment")
	return t.String()
}
