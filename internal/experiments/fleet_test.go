package experiments

import (
	"testing"

	"repro/internal/fleet"
)

// TestFleetExperimentRegistered keeps the extra out of "all" (whose
// golden pins the paper artifacts only) while staying reachable by id.
func TestFleetExperimentRegistered(t *testing.T) {
	if _, ok := ByID("fleet"); !ok {
		t.Fatal("fleet experiment not reachable by id")
	}
	for _, r := range All() {
		if r.ID == "fleet" {
			t.Fatal("fleet must stay outside \"all\" — the golden pins the paper's artifact set")
		}
	}
}

// TestFleetExperimentIsWorkerCountInvariant is the determinism
// acceptance: the full fleet scheduler comparison renders byte-
// identically at -parallel 1 and 8, like every other campaign.
func TestFleetExperimentIsWorkerCountInvariant(t *testing.T) {
	if testing.Short() {
		t.Skip("full fleet campaign in -short mode")
	}
	r, _ := ByID("fleet")
	render := func(workers int) string {
		res, err := r.RunWorkers(99, workers)
		if err != nil {
			t.Fatal(err)
		}
		return res.String()
	}
	want := render(1)
	if got := render(8); got != want {
		t.Fatal("fleet experiment output depends on worker count")
	}
}

// TestFleetRegimesShareWorkloadAcrossSchedulers pins the comparison's
// fairness contract: within one (regime, replication) cell, every
// scheduler faces the identical job stream.
func TestFleetRegimesShareWorkloadAcrossSchedulers(t *testing.T) {
	plan := planFleet(7)
	// Two units of the same regime and rep but different schedulers
	// must carry configs whose workload seeds match; probe via the
	// unit keys (regime/scheduler/rep encoding).
	if len(plan.Units) != len(fleetRegimes())*3*fleetReplications {
		t.Fatalf("fleet plan has %d units, want %d", len(plan.Units), len(fleetRegimes())*3*fleetReplications)
	}
	// The config construction itself is what the fairness rests on;
	// reproduce it for two schedulers of one cell and compare streams.
	wseed := int64(12345)
	spec := fleetWorkload(fleet.ArrivalPoisson)
	cfgA := fleet.Config{Workload: spec, Scheduler: "fifo", WorkloadSeed: wseed}
	cfgB := fleet.Config{Workload: spec, Scheduler: "deadline-aware", WorkloadSeed: wseed}
	if cfgA.Key() == cfgB.Key() {
		t.Fatal("scheduler must key fleets apart")
	}
	a, err := fleet.Run(fleet.Config{Workload: fleet.WorkloadSpec{Jobs: 3, RatePerHour: 6, StepsPerWorker: 200}, WorkloadSeed: wseed}, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := fleet.Run(fleet.Config{Workload: fleet.WorkloadSpec{Jobs: 3, RatePerHour: 6, StepsPerWorker: 200}, Scheduler: "cost-greedy", WorkloadSeed: wseed}, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Jobs {
		if a.Jobs[i].ArrivalHours != b.Jobs[i].ArrivalHours || a.Jobs[i].Label != b.Jobs[i].Label {
			t.Fatalf("job %d differs across schedulers sharing a workload seed", i)
		}
	}
}
