package experiments

import (
	"fmt"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/train"
)

// runSession builds, runs to completion, and summarizes one training
// session on a fresh kernel.
func runSession(cfg train.Config) (train.Result, error) {
	return runSessionScratch(cfg, nil)
}

// runSessionScratch is runSession with the result summarization's
// temporaries borrowed from a campaign scratch arena (nil allocates).
// The returned Result never aliases the arena.
func runSessionScratch(cfg train.Config, scr *campaign.Scratch) (train.Result, error) {
	k := &sim.Kernel{}
	c, err := train.NewCluster(k, cfg)
	if err != nil {
		return train.Result{}, err
	}
	c.Start()
	k.Run()
	res := c.ResultScratch(statsScratch(scr))
	if cfg.TargetSteps > 0 && !res.Done {
		return res, fmt.Errorf("experiments: session stalled at step %d of %d", res.GlobalSteps, cfg.TargetSteps)
	}
	return res, nil
}

// statsScratch unwraps the stats arena from an optional campaign
// scratch.
func statsScratch(scr *campaign.Scratch) *stats.Scratch {
	if scr == nil {
		return nil
	}
	return &scr.Stats
}

// measureWorkerStepTime measures the steady-state step time of a
// single worker of the given GPU training the given model (the
// paper's TFProf-based per-worker measurement, §III-A).
func measureWorkerStepTime(g model.GPU, m model.Model, steps int64, seed int64, scr *campaign.Scratch) (mean, std float64, err error) {
	res, err := runSessionScratch(train.Config{
		Model:       m,
		Workers:     train.Homogeneous(g, 1),
		TargetSteps: steps,
		Seed:        seed,
	}, scr)
	if err != nil {
		return 0, 0, err
	}
	ws, err := res.WorkerStatByGPU(g)
	if err != nil {
		return 0, 0, err
	}
	return ws.MeanStepTime, ws.StdStepTime, nil
}

// measureClusterSpeed measures the steady-state cluster speed for a
// worker placement (the paper's hook-based cluster logging, §III-A).
func measureClusterSpeed(m model.Model, workers []train.WorkerSpec, ps int, steps int64, seed int64, scr *campaign.Scratch) (float64, error) {
	res, err := runSessionScratch(train.Config{
		Model:            m,
		Workers:          workers,
		ParameterServers: ps,
		TargetSteps:      steps,
		Seed:             seed,
	}, scr)
	if err != nil {
		return 0, err
	}
	return res.SteadySpeed, nil
}

// speedDataset holds the §III measurement dataset: per-(model, GPU)
// steady step times across the full zoo.
type speedDataset struct {
	gpus    []model.GPU
	models  []model.Model
	stepSec map[model.GPU]map[string]float64 // GPU → model name → seconds/step
}

// declareSpeedDataset adds one measurement unit per (GPU, zoo model)
// pair — the paper averages 1400 steps per point; a slightly higher
// target leaves room for warm-up discard — and returns a reconstructor
// that reads those outputs back into a dataset during reduce.
func (p *plan) declareSpeedDataset(gpus []model.GPU) func(outs []any) *speedDataset {
	start := len(p.units)
	models := model.Zoo()
	for _, g := range gpus {
		for _, m := range models {
			p.sunit(fmt.Sprintf("speed/%v/%s", g, m.Name), func(seed int64, s *campaign.Scratch) (any, error) {
				mean, _, err := measureWorkerStepTime(g, m, 1500, seed, s)
				if err != nil {
					return nil, fmt.Errorf("measuring %s on %v: %w", m.Name, g, err)
				}
				return mean, nil
			})
		}
	}
	return func(outs []any) *speedDataset {
		ds := &speedDataset{
			gpus:    gpus,
			models:  models,
			stepSec: make(map[model.GPU]map[string]float64, len(gpus)),
		}
		i := start
		for _, g := range gpus {
			ds.stepSec[g] = make(map[string]float64, len(models))
			for _, m := range models {
				ds.stepSec[g][m.Name] = outs[i].(float64)
				i++
			}
		}
		return ds
	}
}

// observations converts the dataset into core's fitting format.
func (ds *speedDataset) observations() []core.SpeedObservation {
	var out []core.SpeedObservation
	for _, g := range ds.gpus {
		for _, m := range ds.models {
			out = append(out, core.SpeedObservation{
				GPU:         g,
				GFLOPs:      m.GFLOPs,
				StepSeconds: ds.stepSec[g][m.Name],
			})
		}
	}
	return out
}

// gpuVectors returns (Cm, step time) pairs for one GPU in zoo order.
func (ds *speedDataset) gpuVectors(g model.GPU) (gflops, stepSec []float64) {
	for _, m := range ds.models {
		gflops = append(gflops, m.GFLOPs)
		stepSec = append(stepSec, ds.stepSec[g][m.Name])
	}
	return gflops, stepSec
}

// checkpointDataset is the §IV measurement set: repeated checkpoint
// timings per zoo model, gathered by instrumenting the checkpoint
// path (the paper wraps TensorFlow's checkpoint function; we sample
// the calibrated checkpoint process directly, which is the same
// instrumentation point).
type checkpointDataset struct {
	models  []model.Model
	samples map[string][]float64 // model name → five timings (seconds)
}

func collectCheckpointDataset(perModel int, seed int64) *checkpointDataset {
	rng := stats.NewRng(seed)
	ds := &checkpointDataset{models: model.Zoo(), samples: make(map[string][]float64)}
	for _, m := range ds.models {
		mean := train.CheckpointSeconds(m)
		for i := 0; i < perModel; i++ {
			// Fig. 5 reports per-model CoV between 0.018 and 0.073;
			// same-region storage writes sit at the quiet end of that
			// band, which is also what lets the regression study
			// resolve the throughput-ramp nonlinearity (Table IV).
			ds.samples[m.Name] = append(ds.samples[m.Name], rng.LogNormal(mean, 0.025))
		}
	}
	return ds
}

// observations flattens the dataset for model fitting.
func (ds *checkpointDataset) observations() []core.CheckpointObservation {
	var out []core.CheckpointObservation
	for _, m := range ds.models {
		for _, s := range ds.samples[m.Name] {
			out = append(out, core.CheckpointObservation{
				DataBytes:  m.CkptDataBytes,
				MetaBytes:  m.CkptMetaBytes,
				IndexBytes: m.CkptIndexBytes,
				Seconds:    s,
			})
		}
	}
	return out
}
