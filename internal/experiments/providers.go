package experiments

import (
	"fmt"

	"repro/internal/campaign"
	"repro/internal/cloud"
	"repro/internal/fleet"
	"repro/internal/model"
	"repro/internal/obs"
)

// The providers experiment asks the cross-market question the paper's
// single-cloud characterization sets up: once several transient
// markets with different price books and revocation climates exist,
// does a fleet that arbitrages across them beat the best fleet locked
// into any one of them? Each single-market fleet runs the strongest
// single-market policy (deadline-aware); the cross-provider fleet runs
// the arbitrage scheduler over all three markets. Every fleet in one
// (regime, replication) cell faces the identical job stream and the
// identical per-cell slot budget, so rows differ only by market access
// and policy.

// providerReplications is how many independent (workload, provider-
// seed) draws each (fleet, regime) measurement averages.
const providerReplications = 2

// providerMarkets are the registered provider worlds the experiment
// spans; arbitrage schedules across all of them.
func providerMarkets() []string { return []string{"gce", "aws", "serverless-cpu"} }

// providerFleet is one column of the comparison: a scheduler given
// access to one or more markets.
type providerFleet struct {
	name      string
	scheduler string
	providers []string
}

func providerFleets() []providerFleet {
	return []providerFleet{
		{name: "gce-only", scheduler: "deadline-aware", providers: []string{"gce"}},
		{name: "aws-only", scheduler: "deadline-aware", providers: []string{"aws"}},
		{name: "serverless-only", scheduler: "deadline-aware", providers: []string{"serverless-cpu"}},
		{name: "arbitrage", scheduler: "arbitrage", providers: providerMarkets()},
	}
}

// unionCapacity caps, at n slots, every (region, GPU) cell any of the
// named markets offers — one slot budget shared by every fleet of a
// regime, so single-market and cross-market fleets are compared under
// the same per-cell scarcity (a market simply cannot reach cells
// outside its own catalog).
func unionCapacity(n int, markets []string) cloud.Capacity {
	if n <= 0 {
		return nil
	}
	cap := cloud.Capacity{}
	for _, name := range markets {
		spec, err := cloud.LookupProvider(name)
		if err != nil {
			continue // validated at registration; unreachable for builtins
		}
		for _, g := range model.AllGPUs() {
			for _, r := range spec.OfferedRegions(g) {
				cap[cloud.PoolKey{Region: r, GPU: g}] = n
			}
		}
	}
	return cap
}

// providerEntry is one (fleet, regime) replication.
type providerEntry struct {
	Fleet  string
	Regime string
	Result *fleet.Result
}

func planProviders(seed int64) *campaign.Plan {
	p := newPlan(seed)
	for _, regime := range fleetRegimes() {
		capacity := unionCapacity(regime.slotsPerCell, providerMarkets())
		for _, fl := range providerFleets() {
			regime, fl := regime, fl
			for rep := 0; rep < providerReplications; rep++ {
				rep := rep
				// Workload and simulation seeds are shared across the
				// fleets of one (regime, rep) cell, like the fleet
				// experiment: market access and policy are the only
				// degrees of freedom.
				cfg := fleet.Config{
					Workload:     fleetWorkload(regime.arrival),
					Scheduler:    fl.scheduler,
					Providers:    fl.providers,
					Capacity:     capacity,
					HorizonHours: fleetHorizonHours,
					WorkloadSeed: campaign.Derive(seed, uint64(rep), "providers/workload/"+regime.name),
				}
				simSeed := campaign.Derive(seed, uint64(rep), "providers/sim/"+regime.name)
				p.tunit(fmt.Sprintf("providers/%s/%s/rep%d", regime.name, fl.name, rep), func(_ int64, rec *obs.Recorder) (any, error) {
					res, err := fleet.RunTraced(cfg, simSeed, rec)
					if err != nil {
						return nil, err
					}
					return providerEntry{Fleet: fl.name, Regime: regime.name, Result: res}, nil
				})
			}
		}
	}
	return p.build(func(outs []any) (Result, error) {
		res := &ProvidersResult{Replications: providerReplications}
		for _, o := range outs {
			res.Entries = append(res.Entries, o.(providerEntry))
		}
		return res, nil
	})
}

// ProvidersResult renders the cross-provider comparison.
type ProvidersResult struct {
	Replications int
	Entries      []providerEntry
}

// providerAgg is one (regime, fleet) row averaged over replications.
type providerAgg struct {
	regime, fleet                 string
	n                             int
	done, misses, wait, cost, rev float64
}

// aggregate folds the entries into rows in declaration order.
func (r *ProvidersResult) aggregate() []*providerAgg {
	var order []*providerAgg
	rows := make(map[string]*providerAgg)
	for _, e := range r.Entries {
		key := e.Regime + "|" + e.Fleet
		a := rows[key]
		if a == nil {
			a = &providerAgg{regime: e.Regime, fleet: e.Fleet}
			rows[key] = a
			order = append(order, a)
		}
		a.n++
		a.done += float64(e.Result.Completed)
		a.misses += float64(e.Result.DeadlineMisses)
		a.wait += e.Result.MeanWaitHours
		a.cost += e.Result.TotalCostUSD
		a.rev += float64(e.Result.Revocations)
	}
	return order
}

// ArbitrageWins lists the regimes where the arbitrage fleet beats the
// best single-market fleet on deadline misses, or matches it on misses
// while costing strictly less — the claim the providers golden pins.
func (r *ProvidersResult) ArbitrageWins() []string {
	type cell struct{ arb, best *providerAgg }
	regimes := make(map[string]*cell)
	var order []string
	for _, a := range r.aggregate() {
		c := regimes[a.regime]
		if c == nil {
			c = &cell{}
			regimes[a.regime] = c
			order = append(order, a.regime)
		}
		if a.fleet == "arbitrage" {
			c.arb = a
			continue
		}
		// Best single market: fewest misses, then lowest cost.
		if c.best == nil || a.misses < c.best.misses ||
			(a.misses == c.best.misses && a.cost < c.best.cost) {
			c.best = a
		}
	}
	var wins []string
	for _, regime := range order {
		c := regimes[regime]
		if c.arb == nil || c.best == nil {
			continue
		}
		if c.arb.misses < c.best.misses ||
			(c.arb.misses == c.best.misses && c.arb.cost < c.best.cost) {
			wins = append(wins, regime)
		}
	}
	return wins
}

// String renders one row per (regime, fleet), averaged over the
// replications, in unit declaration order.
func (r *ProvidersResult) String() string {
	w := fleetWorkload(fleet.ArrivalPoisson)
	t := newTable(fmt.Sprintf("Cross-provider fleet comparison — %d jobs, %g/h, %d steps/worker, %dh horizon, mean of %d runs per cell",
		w.Jobs, w.RatePerHour, w.StepsPerWorker, fleetHorizonHours, r.Replications),
		"regime", "fleet", "done", "misses", "wait (h)", "cost ($)", "revoked")
	for _, a := range r.aggregate() {
		n := float64(a.n)
		t.addRow(a.regime, a.fleet,
			fmt.Sprintf("%.1f", a.done/n),
			fmt.Sprintf("%.1f", a.misses/n),
			fmt.Sprintf("%.2f", a.wait/n),
			fmt.Sprintf("%.2f", a.cost/n),
			fmt.Sprintf("%.1f", a.rev/n))
	}
	t.addNote("regimes: ample = infinite pool, tight = 4 transient slots per offered cell (poisson arrivals), scarce = 2 slots per cell (bursty arrivals)")
	t.addNote("fleets in one cell share the job stream, slot budget, and seeds; single-market fleets run deadline-aware, arbitrage sees gce+aws+serverless-cpu")
	t.addNote("markets: gce = Table V calibration, aws = pricier book under a calmer (refit weibull) climate, serverless-cpu = per-invocation pricing with no revocations")
	if wins := r.ArbitrageWins(); len(wins) > 0 {
		t.addNote("arbitrage beats the best single market (fewer misses, or equal misses at lower cost) in: %s", joinWords(wins))
	} else {
		t.addNote("arbitrage beats the best single market in: none")
	}
	return t.String()
}

// joinWords renders a short list for notes.
func joinWords(words []string) string {
	out := ""
	for i, w := range words {
		if i > 0 {
			out += ", "
		}
		out += w
	}
	return out
}
