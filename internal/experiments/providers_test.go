package experiments

import "testing"

// TestProvidersArbitrageBeatsBestSingleMarket pins the experiment's
// headline claim at the golden seed: in at least one contention regime
// the cross-provider arbitrage fleet beats the best single-market
// fleet on deadline misses, or matches it on misses at strictly lower
// cost. If a refactor of the markets, the price books, or the
// scheduler erodes the win, this fails before the golden diff has to
// be puzzled out by eye.
func TestProvidersArbitrageBeatsBestSingleMarket(t *testing.T) {
	if testing.Short() {
		t.Skip("full cross-provider campaign in -short mode")
	}
	res := runByID(t, "providers", 42).(*ProvidersResult)
	if wins := res.ArbitrageWins(); len(wins) == 0 {
		t.Fatalf("arbitrage beats the best single market in no regime:\n%s", res)
	}
}

// TestUnionCapacityCoversEveryMarketCatalog checks the shared slot
// budget reaches cells only some markets offer: the serverless market
// sells K80 capacity in regions the default catalog has no GPUs in,
// and those cells must be bounded like any other.
func TestUnionCapacityCoversEveryMarketCatalog(t *testing.T) {
	cap := unionCapacity(2, providerMarkets())
	gceOnly := unionCapacity(2, []string{"gce"})
	if len(cap) <= len(gceOnly) {
		t.Fatalf("union over all markets covers %d cells, gce alone %d; want strictly more", len(cap), len(gceOnly))
	}
	for key, n := range cap {
		if n != 2 {
			t.Fatalf("cell %s capped at %d, want 2", key, n)
		}
	}
}
