package experiments

import (
	"fmt"

	"repro/internal/campaign"
	"repro/internal/cloud"
	"repro/internal/fleet"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/stats"
)

// The regret experiment scores every registered fleet scheduler
// against a clairvoyant oracle: for each job, the cheapest idealized
// transient placement that meets its deadline — perfect knowledge of
// speeds, no startup, no revocations, no contention. A policy's
// per-job regret is how many dollars it paid above that bound, plus a
// penalty when it missed a deadline the oracle could have met. Summed
// over the workload this is the canonical online-decision metric: it
// separates policies that merely complete jobs from policies whose
// placements were close to the best achievable, which is exactly the
// claim the predictive scheduler makes for its §III/§V-fed models.

// regretMissPenalty scales the oracle cost of a job whose deadline a
// policy missed but the oracle could meet — missing a feasible
// deadline must cost more than any plausible overspend, or a policy
// could buy regret down by abandoning jobs.
const regretMissPenalty = 2.0

// regretReplications is how many independent (workload, provider-seed)
// draws each (scheduler, regime) measurement averages.
const regretReplications = 2

// jobOracle is the clairvoyant bound for one job: the cheapest
// idealized transient bill over every offered GPU class that meets the
// deadline (Feasible), or the cheapest overall when none can.
type jobOracle struct {
	CostUSD  float64
	Feasible bool
}

// oracleFor scans the catalog for the job's clairvoyant best
// placement. Deadlines are generated at ≥1.5× the optimistic runtime
// on the requested GPU, so Feasible is the expected case; the
// infeasible fallback keeps the score total when a pathological spec
// slips through.
func oracleFor(spec fleet.JobSpec) jobOracle {
	var best jobOracle
	var cheapestAny float64
	found, foundAny := false, false
	for _, g := range model.AllGPUs() {
		if len(cloud.OfferedRegions(g)) == 0 {
			continue
		}
		hours := spec.OptimisticHours(g)
		cost := hours * (float64(spec.Workers)*model.HourlyPrice(g, true) + model.ParameterServerHourly)
		if !foundAny || cost < cheapestAny {
			cheapestAny, foundAny = cost, true
		}
		if hours > spec.DeadlineHours {
			continue
		}
		if !found || cost < best.CostUSD {
			best = jobOracle{CostUSD: cost, Feasible: true}
			found = true
		}
	}
	if found {
		return best
	}
	return jobOracle{CostUSD: cheapestAny}
}

// scoreRegret folds one fleet run against its workload's oracles.
// Per-job regret is max(0, realized − oracle) — a never-admitted job
// must not earn credit for spending nothing — plus the miss penalty
// when a feasible deadline was blown.
func scoreRegret(res *fleet.Result, specs []fleet.JobSpec) regretEntry {
	var e regretEntry
	oracles := make(map[int]jobOracle, len(specs))
	for _, spec := range specs {
		oracles[spec.ID] = oracleFor(spec)
	}
	for _, jr := range res.Jobs {
		o := oracles[jr.ID]
		e.Jobs++
		e.RealizedUSD += jr.CostUSD
		e.OracleUSD += o.CostUSD
		over := jr.CostUSD - o.CostUSD
		if over < 0 {
			over = 0
		}
		e.TotalRegret += over
		if !jr.DeadlineMet {
			e.Misses++
			if o.Feasible {
				e.TotalRegret += regretMissPenalty * o.CostUSD
			}
		}
	}
	return e
}

// regretEntry is one (scheduler, regime) replication's score.
type regretEntry struct {
	Scheduler   string
	Regime      string
	Rep         int
	Jobs        int
	Misses      int
	TotalRegret float64
	RealizedUSD float64
	OracleUSD   float64
}

func planRegret(seed int64) *campaign.Plan {
	p := newPlan(seed)
	schedulers := fleet.SchedulerNames()
	for _, regime := range fleetRegimes() {
		for _, sched := range schedulers {
			regime, sched := regime, sched
			for rep := 0; rep < regretReplications; rep++ {
				rep := rep
				// As in the fleet experiment, the workload and provider
				// seeds are shared across the schedulers of one (regime,
				// rep) cell — every policy faces identical arrivals and
				// identical cloud randomness, so regret differences are
				// pure policy.
				cfg := fleet.Config{
					Workload:     fleetWorkload(regime.arrival),
					Scheduler:    sched,
					Capacity:     uniformCapacity(regime.slotsPerCell),
					HorizonHours: fleetHorizonHours,
					WorkloadSeed: campaign.Derive(seed, uint64(rep), "regret/workload/"+regime.name),
				}
				simSeed := campaign.Derive(seed, uint64(rep), "regret/sim/"+regime.name)
				p.tunit(fmt.Sprintf("regret/%s/%s/rep%d", regime.name, sched, rep), func(_ int64, rec *obs.Recorder) (any, error) {
					res, err := fleet.RunTraced(cfg, simSeed, rec)
					if err != nil {
						return nil, err
					}
					specs, err := cfg.Workload.Generate(stats.NewRng(cfg.WorkloadSeed))
					if err != nil {
						return nil, err
					}
					e := scoreRegret(res, specs)
					e.Scheduler, e.Regime, e.Rep = sched, regime.name, rep
					return e, nil
				})
			}
		}
	}
	return p.build(func(outs []any) (Result, error) {
		res := &RegretResult{Replications: regretReplications}
		for _, o := range outs {
			res.Entries = append(res.Entries, o.(regretEntry))
		}
		return res, nil
	})
}

// RegretResult renders the scheduler-vs-oracle comparison.
type RegretResult struct {
	Replications int
	Entries      []regretEntry
}

// meanRegret aggregates total regret per (regime, scheduler), averaged
// over replications, preserving declaration order.
func (r *RegretResult) meanRegret() (order []string, rows map[string]*regretAgg) {
	rows = make(map[string]*regretAgg)
	for _, e := range r.Entries {
		key := e.Regime + "|" + e.Scheduler
		a := rows[key]
		if a == nil {
			a = &regretAgg{regime: e.Regime, scheduler: e.Scheduler}
			rows[key] = a
			order = append(order, key)
		}
		a.n++
		a.regret += e.TotalRegret
		a.misses += float64(e.Misses)
		a.realized += e.RealizedUSD
		a.oracle += e.OracleUSD
		a.jobs += e.Jobs
	}
	return order, rows
}

type regretAgg struct {
	regime, scheduler                string
	n                                int
	regret, misses, realized, oracle float64
	jobs                             int
}

// RegimesWherePredictiveBeats lists regimes where the predictive
// scheduler's mean total regret is strictly below every named
// baseline's — the experiment's headline claim, pinned by a test at
// the golden seed.
func (r *RegretResult) RegimesWherePredictiveBeats(baselines ...string) []string {
	_, rows := r.meanRegret()
	var wins []string
	for _, regime := range fleetRegimes() {
		p := rows[regime.name+"|predictive"]
		if p == nil {
			continue
		}
		won := true
		for _, b := range baselines {
			a := rows[regime.name+"|"+b]
			if a == nil || p.regret/float64(p.n) >= a.regret/float64(a.n) {
				won = false
				break
			}
		}
		if won {
			wins = append(wins, regime.name)
		}
	}
	return wins
}

// String renders one row per (regime, scheduler), averaged over the
// replications, in unit declaration order.
func (r *RegretResult) String() string {
	w := fleetWorkload(fleet.ArrivalPoisson)
	t := newTable(fmt.Sprintf("Scheduler regret vs. clairvoyant oracle — %d jobs, %g/h, %d steps/worker, %dh horizon, mean of %d runs per cell",
		w.Jobs, w.RatePerHour, w.StepsPerWorker, fleetHorizonHours, r.Replications),
		"regime", "scheduler", "regret ($)", "$/job", "misses", "realized ($)", "oracle ($)")
	order, rows := r.meanRegret()
	for _, key := range order {
		a := rows[key]
		n := float64(a.n)
		jobs := float64(a.jobs) / n
		t.addRow(a.regime, a.scheduler,
			fmt.Sprintf("%.2f", a.regret/n),
			fmt.Sprintf("%.2f", a.regret/n/jobs),
			fmt.Sprintf("%.1f", a.misses/n),
			fmt.Sprintf("%.2f", a.realized/n),
			fmt.Sprintf("%.2f", a.oracle/n))
	}
	t.addNote("oracle: per job, the cheapest idealized transient bill (perfect speed knowledge, no startup/revocations/contention) over GPU classes meeting its deadline")
	t.addNote("per-job regret = max(0, realized − oracle) + %g × oracle when a feasible deadline was missed; never-admitted jobs earn no credit for spending nothing", regretMissPenalty)
	t.addNote("regimes and per-cell seed sharing as in the fleet experiment; schedulers differ only by policy")
	t.addNote("predictive = placements scored by predicted cost-to-deadline, models refit from the run's own history (analytic Eq. 4/5 until enough completions)")
	return t.String()
}
