package experiments

import (
	"runtime"
	"testing"

	"repro/internal/fleet"
	"repro/internal/model"
	"repro/internal/stats"
)

// TestOracleIsAFeasibleLowerBound pins the oracle's two contracts: the
// generated workload always admits a feasible clairvoyant placement
// (deadlines are sized at ≥1.5× the optimistic runtime on the
// requested GPU), and the oracle bill never exceeds the requested
// GPU's own idealized transient bill.
func TestOracleIsAFeasibleLowerBound(t *testing.T) {
	w := fleetWorkload(fleet.ArrivalPoisson)
	specs, err := w.Generate(stats.NewRng(9))
	if err != nil {
		t.Fatal(err)
	}
	for _, spec := range specs {
		o := oracleFor(spec)
		if !o.Feasible {
			t.Errorf("%s: no feasible oracle placement (deadline %.2fh)", spec.Label(), spec.DeadlineHours)
		}
		requested := spec.OptimisticHours(spec.GPU) *
			(float64(spec.Workers)*model.HourlyPrice(spec.GPU, true) + model.ParameterServerHourly)
		if o.CostUSD > requested+1e-9 {
			t.Errorf("%s: oracle $%.2f above the requested GPU's idealized bill $%.2f", spec.Label(), o.CostUSD, requested)
		}
		if o.CostUSD <= 0 {
			t.Errorf("%s: degenerate oracle bill $%.2f", spec.Label(), o.CostUSD)
		}
	}
}

// TestScoreRegretPenalizesAbandonment pins the clamp: a job that never
// ran (realized $0) and missed a feasible deadline must score the miss
// penalty, not negative regret.
func TestScoreRegretPenalizesAbandonment(t *testing.T) {
	spec := fleet.JobSpec{ID: 0, Model: model.ResNet32(), GPU: model.K80, Workers: 1, Steps: 30000}
	spec.DeadlineHours = spec.OptimisticHours(model.K80) * 2
	o := oracleFor(spec)
	if !o.Feasible {
		t.Fatal("test spec has no feasible oracle")
	}
	res := &fleet.Result{Jobs: []fleet.JobResult{{ID: 0, DeadlineMet: false, CostUSD: 0}}}
	e := scoreRegret(res, []fleet.JobSpec{spec})
	if want := regretMissPenalty * o.CostUSD; e.TotalRegret != want {
		t.Fatalf("abandoned job scored %.4f, want the pure miss penalty %.4f", e.TotalRegret, want)
	}
	// A completed on-budget job scores only its overspend.
	res = &fleet.Result{Jobs: []fleet.JobResult{{ID: 0, Done: true, DeadlineMet: true, CostUSD: o.CostUSD + 1}}}
	if e := scoreRegret(res, []fleet.JobSpec{spec}); e.TotalRegret != 1 {
		t.Fatalf("completed job scored %.4f, want its $1 overspend", e.TotalRegret)
	}
}

// TestPredictiveWinsARegimeAtGoldenSeed is the experiment's headline
// claim, pinned at the golden seed: the predictive scheduler's mean
// total regret beats both single-market baselines (cost-greedy and
// deadline-aware) in at least one contention regime. If a refactor of
// the predictor, the history plumbing, or the workload breaks this,
// the claim in the docs is stale and the change needs a closer look.
func TestPredictiveWinsARegimeAtGoldenSeed(t *testing.T) {
	if testing.Short() {
		t.Skip("full regret campaign in -short mode")
	}
	r, ok := ByID("regret")
	if !ok {
		t.Fatal("regret experiment not registered")
	}
	res, err := r.RunWorkers(42, runtime.GOMAXPROCS(0))
	if err != nil {
		t.Fatal(err)
	}
	rr, ok := res.(*RegretResult)
	if !ok {
		t.Fatalf("regret experiment returned %T", res)
	}
	wins := rr.RegimesWherePredictiveBeats("cost-greedy", "deadline-aware")
	if len(wins) == 0 {
		t.Fatalf("predictive beats cost-greedy and deadline-aware in no regime at seed 42:\n%s", rr)
	}
	t.Logf("predictive wins in %v", wins)
}
