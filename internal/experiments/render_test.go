package experiments

import (
	"strings"
	"testing"
)

func TestSparklineEdgeCases(t *testing.T) {
	if sparkline(nil) != "" {
		t.Error("nil input should render empty")
	}
	if sparkline([]float64{}) != "" {
		t.Error("empty input should render empty")
	}
	if got := sparkline([]float64{0, 0, 0}); got != "   " {
		t.Errorf("all-zero input = %q, want three blanks", got)
	}
	// Negative values clamp to the lowest level rather than panicking
	// or indexing out of range.
	got := []rune(sparkline([]float64{-3, 0, 3}))
	if len(got) != 3 {
		t.Fatalf("length = %d, want 3", len(got))
	}
	if got[0] != ' ' {
		t.Errorf("negative value rendered %q, want lowest level", got[0])
	}
	if got[2] != '█' {
		t.Errorf("max value rendered %q, want full block", got[2])
	}
	// A single positive value is its own maximum.
	if s := sparkline([]float64{7}); s != "█" {
		t.Errorf("single value = %q, want full block", s)
	}
}

func TestTableRaggedRows(t *testing.T) {
	tb := newTable("ragged", "col-a", "b")
	tb.addRow("x")                             // shorter than the header row
	tb.addRow("longer-than-header", "y", "zz") // extra cell beyond the headers
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("lines = %d, want title+header+sep+2 rows", len(lines))
	}
	// Column widths absorb the widest cell, including ragged rows.
	if !strings.Contains(lines[1], "col-a") {
		t.Errorf("header line = %q", lines[1])
	}
	if !strings.Contains(lines[4], "longer-than-header  y") {
		t.Errorf("wide row misaligned: %q", lines[4])
	}
	if !strings.Contains(lines[4], "zz") {
		t.Errorf("extra cell dropped: %q", lines[4])
	}
	// The separator matches the widened first column.
	if !strings.HasPrefix(lines[2], strings.Repeat("-", len("longer-than-header"))) {
		t.Errorf("separator not widened: %q", lines[2])
	}
}

func TestSortedKeysDeterminism(t *testing.T) {
	m := map[int]string{5: "e", 1: "a", 3: "c", 2: "b", 4: "d"}
	first := sortedKeys(m)
	for i := 0; i < 50; i++ {
		again := sortedKeys(m)
		for j := range first {
			if first[j] != again[j] {
				t.Fatalf("iteration %d: order changed: %v vs %v", i, first, again)
			}
		}
	}
	for i := 1; i < len(first); i++ {
		if first[i-1] >= first[i] {
			t.Fatalf("keys not ascending: %v", first)
		}
	}
}
