package experiments

import (
	"fmt"

	"repro/internal/campaign"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/train"
)

// Figure10Result reproduces Fig. 10: worker replacement overhead for
// cold starts (new server) vs. warm starts (existing server), for the
// four canonical models.
type Figure10Result struct {
	// Seconds[modelName] = {cold mean, warm mean} over the trials.
	Seconds map[string][2]float64
}

// paperFigure10 holds approximate published values (seconds).
var paperFigure10 = map[string][2]float64{
	"ResNet-15":       {75.6, 14.8},
	"ResNet-32":       {79, 18},
	"ShakeShakeSmall": {81, 20},
	"ShakeShakeBig":   {90.6, 29.8},
}

func planFigure10(seed int64) *campaign.Plan {
	const trials = 20
	p := newPlan(seed)
	for _, m := range model.CanonicalModels() {
		for _, cold := range []bool{true, false} {
			for trial := 0; trial < trials; trial++ {
				p.unit(fmt.Sprintf("fig10/%s/cold=%v/%d", m.Name, cold, trial), func(s int64) (any, error) {
					return figure10Trial(m, cold, s)
				})
			}
		}
	}
	return p.build(func(outs []any) (Result, error) {
		res := &Figure10Result{Seconds: make(map[string][2]float64)}
		i := 0
		for _, m := range model.CanonicalModels() {
			var vals [2]float64
			for ci := range vals {
				var sum float64
				for trial := 0; trial < trials; trial++ {
					sum += outs[i].(float64)
					i++
				}
				vals[ci] = sum / trials
			}
			res.Seconds[m.Name] = vals
		}
		return res, nil
	})
}

// figure10Trial runs one replacement trial: a single-K80 session with
// a worker joining five seconds in, returning the request-to-join
// latency.
func figure10Trial(m model.Model, cold bool, seed int64) (float64, error) {
	k := &sim.Kernel{}
	c, err := train.NewCluster(k, train.Config{
		Model:         m,
		Workers:       train.Homogeneous(model.K80, 1),
		DisableWarmup: true,
		Seed:          seed,
	})
	if err != nil {
		return 0, err
	}
	c.Start()
	k.RunUntil(sim.Time(5))
	requestedAt := k.Now().Seconds()
	if _, err := c.AddWorker(train.WorkerSpec{GPU: model.K80}, train.JoinMode{Cold: cold}); err != nil {
		return 0, err
	}
	k.RunUntil(sim.Time(400))
	joins := c.Result().EventsOf(train.EventJoin)
	if len(joins) != 1 {
		return 0, fmt.Errorf("figure10: expected one join, got %d", len(joins))
	}
	return joins[0].Time - requestedAt, nil
}

// String renders the cold/warm bars.
func (r *Figure10Result) String() string {
	t := newTable("Fig. 10 — worker replacement overhead (seconds)",
		"model", "cold start", "warm start", "paper cold/warm")
	for _, m := range model.CanonicalModels() {
		v := r.Seconds[m.Name]
		p := paperFigure10[m.Name]
		t.addRow(m.Name, fmt.Sprintf("%.1f", v[0]), fmt.Sprintf("%.1f", v[1]),
			fmt.Sprintf("%.1f/%.1f", p[0], p[1]))
	}
	t.addNote("cold = newly requested server (adds dataset download); warm = existing server")
	return t.String()
}

// Figure11Result reproduces Fig. 11: the recomputation overhead of
// unmodified TensorFlow when a replacement reuses the revoked chief's
// IP address, versus CM-DARE's chief handoff, as a function of how
// many steps had accumulated since the last checkpoint.
type Figure11Result struct {
	// StepsSince lists the x axis (steps since last checkpoint at the
	// replacement's join).
	StepsSince []int64
	// OverheadSeconds is the extra time to reach the next designated
	// checkpoint when reusing the chief's IP (rollback) relative to a
	// new IP (no rollback).
	OverheadSeconds []float64
}

func planFigure11(seed int64) *campaign.Plan {
	const (
		ckptInterval = 4000
		revokeAfter  = 1000 // chief revoked 1k steps past the checkpoint (§V-A)
	)
	joinAts := []int64{1500, 2000, 2500, 3000, 3500}
	p := newPlan(seed)
	for _, joinAt := range joinAts {
		for _, reuseIP := range []bool{true, false} {
			p.unit(fmt.Sprintf("fig11/%d/reuse=%v", joinAt, reuseIP), func(s int64) (any, error) {
				return figure11Trial(s, joinAt, reuseIP, ckptInterval, revokeAfter)
			})
		}
	}
	return p.build(func(outs []any) (Result, error) {
		res := &Figure11Result{}
		for i, joinAt := range joinAts {
			reuse := outs[2*i].(float64)
			fresh := outs[2*i+1].(float64)
			res.StepsSince = append(res.StepsSince, joinAt)
			res.OverheadSeconds = append(res.OverheadSeconds, reuse-fresh)
		}
		return res, nil
	})
}

// figure11Trial runs one 2×K80 ResNet-15 session: checkpoint at
// ckptInterval, chief revoked revokeAfter steps later, replacement
// joining when the session has advanced joinAt steps past the
// checkpoint. It returns the time from the first checkpoint to the
// next one (the "time to reach the next designated checkpoint").
func figure11Trial(seed, joinAt int64, reuseIP bool, ckptInterval, revokeAfter int64) (float64, error) {
	k := &sim.Kernel{}
	c, err := train.NewCluster(k, train.Config{
		Model:              model.ResNet15(),
		Workers:            train.Homogeneous(model.K80, 2),
		CheckpointInterval: ckptInterval,
		DisableWarmup:      true,
		Seed:               seed,
	})
	if err != nil {
		return 0, err
	}
	// Unmodified TensorFlow for the IP-reuse variant: no handoff.
	c.SetChiefHandoff(!reuseIP)
	chief := c.Chief()
	c.WhenStep(ckptInterval+revokeAfter, func() {
		if err := c.KillWorker(chief); err != nil {
			panic(fmt.Sprintf("figure11: kill: %v", err))
		}
	})
	c.WhenStep(ckptInterval+joinAt, func() {
		mode := train.JoinMode{Cold: true, ReuseChiefIP: reuseIP}
		if _, err := c.AddWorker(train.WorkerSpec{GPU: model.K80}, mode); err != nil {
			panic(fmt.Sprintf("figure11: join: %v", err))
		}
	})
	c.Start()
	// Run until the second checkpoint lands (bounded horizon keeps a
	// logic bug from hanging the experiment).
	k.RunUntil(sim.Time(4 * 3600))
	ckpts := c.Result().EventsOf(train.EventCheckpoint)
	if len(ckpts) < 2 {
		return 0, fmt.Errorf("figure11: only %d checkpoints completed", len(ckpts))
	}
	return ckpts[1].Time - ckpts[0].Time, nil
}

// String renders the overhead curve.
func (r *Figure11Result) String() string {
	t := newTable("Fig. 11 — recomputation overhead of reusing the chief's IP (ResNet-15, 2×K80, Ic=4k)",
		"steps since last checkpoint", "overhead (s)")
	for i, s := range r.StepsSince {
		t.addRow(fmt.Sprintf("%d", s), fmt.Sprintf("%.0f", r.OverheadSeconds[i]))
	}
	t.addNote("paper: overhead grows with steps since the checkpoint (up to ≈300 s); CM-DARE's takeover avoids it")
	return t.String()
}
