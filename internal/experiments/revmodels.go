package experiments

import (
	"fmt"

	"repro/internal/campaign"
	"repro/internal/cloud"
	"repro/internal/model"
	"repro/internal/trace"
)

// The revmodels experiment answers the question the pluggable
// lifetime-model subsystem exists for: how much do training cost and
// time depend on the *shape* of the revocation process, holding the
// Table V revocation fractions fixed? Every shipped regime — the
// default calibration, the Weibull refit, the pure diurnal hazard, and
// a bootstrap replay of a recorded campaign — measures the same
// scenario grid with full managed sessions.

// revModelsReplications is how many independent sessions each
// (regime, cell) measurement averages; revocation arrival is the
// dominant noise source, and a single session can get lucky.
const revModelsReplications = 2

// revModelsSpec is the comparison grid: the fastest canonical model,
// four transient workers, on cells chosen for revocation contrast —
// europe-west1 K80 (≈67% revoked, front-loaded deaths), us-west1 K80
// (≈23%, back-loaded), and us-west1 V100 (≈73%, short MTTR). The
// workload is sized so sessions span many hours of virtual time;
// regimes that only differ in *when* deaths land need room to differ.
func revModelsSpec() SweepSpec {
	return SweepSpec{
		Model:              model.ResNet15(),
		Sizes:              []int{4},
		GPUs:               []model.GPU{model.K80, model.V100},
		Regions:            []cloud.Region{cloud.EuropeWest1, cloud.USWest1},
		Tiers:              []cloud.Tier{cloud.Transient},
		StepsPerWorker:     500000,
		CheckpointInterval: 1000,
	}
}

// replayLifetimeModel builds the trace-replay entrant: a twelve-day
// paper campaign simulated under the default calibration, exported as
// records, and bootstrapped back as an empirical model — the same path
// a real spot-market CSV takes through cmd/pland's -trace flag. The
// study seed derives from the campaign seed alone, so the experiment
// stays a pure function of -seed.
func replayLifetimeModel(seed int64) (cloud.LifetimeModel, error) {
	k, prov := newCloud(campaign.Derive(seed, 0, "revmodels/replay-study"))
	study, err := trace.RunRevocationStudy(k, prov, trace.PaperCampaign(), 12)
	if err != nil {
		return nil, err
	}
	return study.LifetimeModel("replay")
}

// revModelsEntry is one (regime, scenario) replication.
type revModelsEntry struct {
	RevModel string
	Outcome  ScenarioOutcome
}

func planRevModels(seed int64) *campaign.Plan {
	spec := revModelsSpec()
	p := newPlan(seed)
	type entrant struct {
		name string
		lm   cloud.LifetimeModel
	}
	var entrants []entrant
	for _, name := range []string{"table5", "weibull", "diurnal"} {
		lm, err := cloud.LookupLifetimeModel(name)
		if err != nil {
			panic(err) // builtins; unreachable
		}
		entrants = append(entrants, entrant{name, lm})
	}
	replay, replayErr := replayLifetimeModel(seed)
	if replayErr == nil {
		entrants = append(entrants, entrant{"replay", replay})
	}
	for _, e := range entrants {
		for _, sc := range spec.Scenarios() {
			e, sc := e, sc
			sc.RevModel = e.name
			steps := spec.StepsPerWorker * int64(sc.Workers)
			for rep := 0; rep < revModelsReplications; rep++ {
				p.sunit(fmt.Sprintf("revmodels/%s/rep%d", sc.Label(), rep), func(unitSeed int64, scr *campaign.Scratch) (any, error) {
					out, err := runScenarioWith(e.lm, sc, steps, spec.CheckpointInterval, SessionOptions{Scratch: scr}, unitSeed)
					if err != nil {
						return nil, err
					}
					return revModelsEntry{RevModel: e.name, Outcome: out}, nil
				})
			}
		}
	}
	return p.build(func(outs []any) (Result, error) {
		if replayErr != nil {
			return nil, fmt.Errorf("revmodels: building replay model: %w", replayErr)
		}
		res := &RevModelsResult{Spec: spec, Replications: revModelsReplications}
		for _, o := range outs {
			res.Entries = append(res.Entries, o.(revModelsEntry))
		}
		return res, nil
	})
}

// RevModelsResult renders the cross-regime comparison.
type RevModelsResult struct {
	Spec         SweepSpec
	Replications int
	Entries      []revModelsEntry
}

// String renders one row per (regime, scenario), averaged over the
// replications, in unit declaration order.
func (r *RevModelsResult) String() string {
	t := newTable(fmt.Sprintf("Revocation-model comparison — %s, %d steps/worker, Ic=%d, mean of %d sessions per cell",
		r.Spec.Model.Name, r.Spec.StepsPerWorker, r.Spec.CheckpointInterval, r.Replications),
		"rev model", "scenario", "time (h)", "cost ($)", "revoked", "replaced", "$/1k steps")
	type agg struct {
		n, workers               int
		hours, cost, revs, repls float64
	}
	var order []string
	rows := make(map[string]*agg)
	labels := make(map[string][2]string)
	for _, e := range r.Entries {
		sc := e.Outcome.Scenario
		sc.RevModel = "" // the regime has its own column
		key := e.RevModel + "|" + sc.Label()
		a := rows[key]
		if a == nil {
			a = &agg{workers: sc.Workers}
			rows[key] = a
			order = append(order, key)
			labels[key] = [2]string{e.RevModel, sc.Label()}
		}
		a.n++
		a.hours += e.Outcome.TrainingSeconds / 3600
		a.cost += e.Outcome.CostUSD
		a.revs += float64(e.Outcome.Revocations)
		a.repls += float64(e.Outcome.Replacements)
	}
	for _, key := range order {
		a := rows[key]
		n := float64(a.n)
		steps := float64(r.Spec.StepsPerWorker) * float64(a.workers)
		t.addRow(labels[key][0], labels[key][1],
			fmt.Sprintf("%.2f", a.hours/n),
			fmt.Sprintf("%.2f", a.cost/n),
			fmt.Sprintf("%.1f", a.revs/n),
			fmt.Sprintf("%.1f", a.repls/n),
			fmt.Sprintf("%.3f", a.cost/n/(steps/1000)))
	}
	t.addNote("all regimes share each cell's Table V 24 h revocation fraction; they differ in when deaths land")
	t.addNote("table5 = calibrated CDF + Fig. 9 thinning, weibull = two-quantile refit, diurnal = pure hour-of-day hazard, replay = bootstrap of a recorded campaign")
	return t.String()
}
