package experiments

import (
	"strings"
	"testing"

	"repro/internal/cloud"
	"repro/internal/model"
)

// TestRevModelsPlanCoversEveryRegime checks the experiment's structure
// without paying for its sessions: one unit per (regime, cell,
// replication), every shipped builtin plus the trace replay entered,
// and unit keys distinct.
func TestRevModelsPlanCoversEveryRegime(t *testing.T) {
	plan := planRevModels(3)
	cells := len(revModelsSpec().Scenarios())
	regimes := []string{"table5", "weibull", "diurnal", "replay"}
	if want := len(regimes) * cells * revModelsReplications; len(plan.Units) != want {
		t.Fatalf("plan has %d units, want %d", len(plan.Units), want)
	}
	seen := make(map[string]bool)
	counts := make(map[string]int)
	for _, u := range plan.Units {
		if seen[u.Key] {
			t.Fatalf("duplicate unit key %q", u.Key)
		}
		seen[u.Key] = true
		for _, name := range regimes {
			if strings.Contains(u.Key, "rev="+name+"/") {
				counts[name]++
			}
		}
	}
	for _, name := range regimes {
		if counts[name] != cells*revModelsReplications {
			t.Errorf("regime %s has %d units, want %d (keys: %v)", name, counts[name], cells*revModelsReplications, seen)
		}
	}
}

// TestRevModelsRender pins the aggregation: replications of one
// (regime, cell) collapse into a single averaged row.
func TestRevModelsRender(t *testing.T) {
	sc := Scenario{Model: model.ResNet15(), GPU: model.K80, Region: cloud.USWest1,
		Tier: cloud.Transient, RevModel: "weibull", Workers: 4}
	res := &RevModelsResult{
		Spec:         revModelsSpec(),
		Replications: 2,
		Entries: []revModelsEntry{
			{RevModel: "weibull", Outcome: ScenarioOutcome{Scenario: sc, TrainingSeconds: 2 * 3600, CostUSD: 10, Revocations: 1, Replacements: 1}},
			{RevModel: "weibull", Outcome: ScenarioOutcome{Scenario: sc, TrainingSeconds: 4 * 3600, CostUSD: 30, Revocations: 3, Replacements: 3}},
		},
	}
	out := res.String()
	if n := strings.Count(out, "weibull"); n != 2 { // one row + one note
		t.Fatalf("render collapsed %d weibull mentions, want 2:\n%s", n, out)
	}
	for _, want := range []string{"3.00", "20.00", "2.0", "4×K80 us-west1 transient"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}
