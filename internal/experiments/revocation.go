package experiments

import (
	"fmt"

	"repro/internal/campaign"
	"repro/internal/cloud"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// newCloud builds a fresh kernel + provider pair for a campaign.
func newCloud(seed int64) (*sim.Kernel, *cloud.Provider) {
	k := &sim.Kernel{}
	return k, cloud.NewProvider(k, stats.NewRng(seed))
}

// Figure6Result reproduces Fig. 6: startup-stage breakdown for
// transient vs. on-demand K80/P100 in us-east1 and us-west1.
type Figure6Result struct {
	Summaries []trace.StartupSummary
}

func planFigure6(seed int64) *campaign.Plan {
	p := newPlan(seed)
	// One unit per (GPU, region, tier) cell, declared in the order the
	// legacy single-kernel study reported them.
	for _, g := range []model.GPU{model.K80, model.P100} {
		for _, region := range []cloud.Region{cloud.USEast1, cloud.USWest1} {
			for _, tier := range []cloud.Tier{cloud.Transient, cloud.OnDemand} {
				p.unit(fmt.Sprintf("fig6/%v/%v/%v", g, region, tier), func(s int64) (any, error) {
					k, prov := newCloud(s)
					sums, err := trace.RunStartupStudy(k, prov,
						[]model.GPU{g}, []cloud.Tier{tier}, []cloud.Region{region}, 30)
					if err != nil {
						return nil, err
					}
					return sums[0], nil
				})
			}
		}
	}
	return p.build(func(outs []any) (Result, error) {
		res := &Figure6Result{}
		for _, o := range outs {
			res.Summaries = append(res.Summaries, o.(trace.StartupSummary))
		}
		return res, nil
	})
}

// String renders the stage breakdown.
func (r *Figure6Result) String() string {
	t := newTable("Fig. 6 — startup time breakdown (seconds, mean of 30 launches)",
		"region", "GPU", "tier", "provisioning", "staging", "booting", "total")
	for _, s := range r.Summaries {
		t.addRow(s.Region.String(), s.GPU.String(), s.Tier.String(),
			fmt.Sprintf("%.1f", s.MeanProvisioning),
			fmt.Sprintf("%.1f", s.MeanStaging),
			fmt.Sprintf("%.1f", s.MeanBooting),
			fmt.Sprintf("%.1f", s.MeanTotal))
	}
	t.addNote("paper: all under 100 s; transient P100 ≈8.7%% slower than transient K80; transient vs. on-demand Δ ≈11 s (K80) / ≈21 s (P100)")
	return t.String()
}

// Figure7Result reproduces Fig. 7: startup time for requests issued
// immediately after a revocation vs. delayed.
type Figure7Result struct {
	Immediate []trace.PostRevocationResult
	Delayed   []trace.PostRevocationResult
}

func planFigure7(seed int64) *campaign.Plan {
	p := newPlan(seed)
	for _, timing := range []trace.AcquisitionTiming{trace.Immediate, trace.Delayed} {
		p.unit(fmt.Sprintf("fig7/%v", timing), func(s int64) (any, error) {
			k, prov := newCloud(s)
			return trace.RunPostRevocationStudy(k, prov, timing, 20)
		})
	}
	return p.build(func(outs []any) (Result, error) {
		return &Figure7Result{
			Immediate: outs[0].([]trace.PostRevocationResult),
			Delayed:   outs[1].([]trace.PostRevocationResult),
		}, nil
	})
}

// String renders both regimes.
func (r *Figure7Result) String() string {
	t := newTable("Fig. 7 — startup time after a revocation (seconds)",
		"requested GPU", "timing", "N", "mean total", "CoV")
	for _, set := range [][]trace.PostRevocationResult{r.Immediate, r.Delayed} {
		for _, res := range set {
			t.addRow(res.Requested.String(), res.Timing.String(),
				fmt.Sprintf("%d", res.N),
				fmt.Sprintf("%.1f", res.MeanTotal),
				fmt.Sprintf("%.3f", res.CoVTotal))
		}
	}
	t.addNote("paper: means within ≈4 s across timings and GPU types; immediate requests ≈4× the CoV (12%% vs 3%%)")
	return t.String()
}

// TableVResult reproduces Table V from a fresh twelve-day campaign.
type TableVResult struct {
	Study *trace.RevocationStudy
}

// paperTableV holds the published revocation fractions for reference.
var paperTableV = map[model.GPU]map[cloud.Region]float64{
	model.K80: {
		cloud.USEast1: 0.4667, cloud.USCentral1: 0.5625,
		cloud.USWest1: 0.2292, cloud.EuropeWest1: 0.6667,
	},
	model.P100: {
		cloud.USEast1: 0.70, cloud.USCentral1: 0.5333,
		cloud.USWest1: 0.6667, cloud.EuropeWest1: 0.2667,
	},
	model.V100: {
		cloud.USCentral1: 0.6667, cloud.USWest1: 0.7333,
		cloud.EuropeWest4: 0.43, cloud.AsiaEast1: 0.47,
	},
}

func planTableV(seed int64) *campaign.Plan {
	p := newPlan(seed)
	declareRevocationStudy(p, "revstudy/paper-campaign")
	return p.build(func(outs []any) (Result, error) {
		return &TableVResult{Study: outs[0].(*trace.RevocationStudy)}, nil
	})
}

// declareRevocationStudy adds one twelve-day paper-campaign unit.
// Table V and Fig. 8 declare the same key at the same position, so —
// as in the paper, where both artifacts come from one trace — they
// render the same campaign for a given seed.
func declareRevocationStudy(p *plan, key string) int {
	return p.unit(key, func(s int64) (any, error) {
		k, prov := newCloud(s)
		return trace.RunRevocationStudy(k, prov, trace.PaperCampaign(), 12)
	})
}

// String renders the per-cell revocation table.
func (r *TableVResult) String() string {
	t := newTable("Table V — transient GPU revocations by region (12 virtual days)",
		"region", "GPU", "launched", "revoked", "fraction", "paper")
	for _, c := range r.Study.TableV() {
		t.addRow(c.Region.String(), c.GPU.String(),
			fmt.Sprintf("%d", c.Launched),
			fmt.Sprintf("%d", c.Revoked),
			fmt.Sprintf("%.2f%%", 100*c.Fraction()),
			fmt.Sprintf("%.2f%%", 100*paperTableV[c.GPU][c.Region]))
	}
	totals := r.Study.Totals()
	for _, g := range model.AllGPUs() {
		c := totals[g]
		t.addNote("%v total: %d launched, %d revoked (%.2f%%)", g, c.Launched, c.Revoked, 100*c.Fraction())
	}
	idle, stressed := r.Study.WorkloadSplit()
	t.addNote("workload independence: %d idle vs %d stressed revocations", idle, stressed)
	return t.String()
}

// Figure8Result reproduces Fig. 8: per-(GPU, region) lifetime CDFs.
type Figure8Result struct {
	Study *trace.RevocationStudy
}

func planFigure8(seed int64) *campaign.Plan {
	p := newPlan(seed)
	declareRevocationStudy(p, "revstudy/paper-campaign")
	return p.build(func(outs []any) (Result, error) {
		return &Figure8Result{Study: outs[0].(*trace.RevocationStudy)}, nil
	})
}

// String renders each cell's CDF at fixed horizons plus its MTTR.
func (r *Figure8Result) String() string {
	horizons := []float64{1, 2, 4, 8, 12, 16, 20, 24}
	headers := []string{"GPU", "region"}
	for _, h := range horizons {
		headers = append(headers, fmt.Sprintf("≤%gh", h))
	}
	headers = append(headers, "MTTR(h)")
	t := newTable("Fig. 8 — lifetime CDFs (conditional on revocation)", headers...)
	for _, g := range model.AllGPUs() {
		for _, region := range cloud.AllRegions() {
			cdf, ok := r.Study.LifetimeCDF(g, region)
			if !ok {
				continue
			}
			cells := []string{g.String(), region.String()}
			for _, h := range horizons {
				cells = append(cells, fmt.Sprintf("%.2f", cdf.Eval(h)))
			}
			mttr, _ := r.Study.MeanTimeToRevocation(g, region)
			cells = append(cells, fmt.Sprintf("%.1f", mttr))
			t.addRow(cells...)
		}
	}
	t.addNote("paper: europe-west1 K80 front-loaded (>50%% of revocations in 2 h), us-west1 K80 back-loaded (<5%%); V100 MTTR short (us-central1 ≈7.7 h)")
	return t.String()
}

// Figure9Result reproduces Fig. 9: revocations by local hour of day
// per GPU type.
type Figure9Result struct {
	Histograms map[model.GPU]*stats.HourHistogram
}

func planFigure9(seed int64) *campaign.Plan {
	// Aggregate three campaigns for less noisy hour-of-day structure
	// (the paper aggregates twelve days of launches).
	p := newPlan(seed)
	for i := 0; i < 3; i++ {
		declareRevocationStudy(p, fmt.Sprintf("fig9/study-%d", i))
	}
	return p.build(func(outs []any) (Result, error) {
		res := &Figure9Result{Histograms: make(map[model.GPU]*stats.HourHistogram)}
		for _, g := range model.AllGPUs() {
			res.Histograms[g] = &stats.HourHistogram{}
		}
		for _, o := range outs {
			study := o.(*trace.RevocationStudy)
			for _, g := range model.AllGPUs() {
				for h, c := range study.HourHistogram(g).Counts {
					for j := 0; j < c; j++ {
						res.Histograms[g].Add(h)
					}
				}
			}
		}
		return res, nil
	})
}

// String renders each GPU's 24-hour histogram.
func (r *Figure9Result) String() string {
	var out string
	out += "Fig. 9 — revocations by local hour of day\n"
	out += "hour:     0         6         12        18        23\n"
	for _, g := range model.AllGPUs() {
		h := r.Histograms[g]
		vals := make([]float64, 24)
		for i, c := range h.Counts {
			vals[i] = float64(c)
		}
		peak, count := h.Peak()
		out += fmt.Sprintf("%-5s  [%s]  peak %02d:00 (%d events, %d total)\n",
			g, sparkline(vals), peak, count, h.Total())
	}
	out += "note: paper sees the K80 peak at 10:00 and no V100 revocations 16:00–20:00\n"
	return out
}
