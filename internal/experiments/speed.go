package experiments

import (
	"fmt"
	"strings"

	"repro/internal/campaign"
	"repro/internal/model"
	"repro/internal/regress"
	"repro/internal/stats"
	"repro/internal/train"
)

// TableIResult reproduces Table I: steps/second for the simplest
// cluster (one GPU worker, one parameter server) across the four
// canonical models and three GPU types.
type TableIResult struct {
	// Speeds[gpu][modelIdx] holds mean ± std steps/second in
	// CanonicalModels order.
	Speeds map[model.GPU][]struct{ Mean, Std float64 }
}

// PaperTableI holds the paper's published values for side-by-side
// comparison in the rendered output.
var PaperTableI = map[model.GPU][]float64{
	model.K80:  {9.46, 4.56, 2.58, 0.70},
	model.P100: {21.16, 12.19, 6.99, 1.98},
	model.V100: {27.38, 15.61, 8.80, 2.18},
}

func planTableI(seed int64) *campaign.Plan {
	p := newPlan(seed)
	for _, g := range model.AllGPUs() {
		for _, m := range model.CanonicalModels() {
			// 4000 measured steps, matching §III-A.
			p.session(fmt.Sprintf("table1/%v/%s", g, m.Name), train.Config{
				Model:       m,
				Workers:     train.Homogeneous(g, 1),
				TargetSteps: 4000,
			})
		}
	}
	return p.build(func(outs []any) (Result, error) {
		res := &TableIResult{Speeds: make(map[model.GPU][]struct{ Mean, Std float64 })}
		i := 0
		for _, g := range model.AllGPUs() {
			for range model.CanonicalModels() {
				r := outs[i].(train.Result)
				i++
				res.Speeds[g] = append(res.Speeds[g], struct{ Mean, Std float64 }{
					Mean: r.SteadySpeed,
					Std:  r.SteadySpeed * r.SpeedCoV,
				})
			}
		}
		return res, nil
	})
}

// String renders the table with the paper's values alongside.
func (r *TableIResult) String() string {
	t := newTable("Table I — training speed (steps/s), 1 GPU worker + 1 PS",
		"GPU", "ResNet-15", "ResNet-32", "ShakeShakeSmall", "ShakeShakeBig")
	for _, g := range model.AllGPUs() {
		cells := []string{g.String()}
		for i, s := range r.Speeds[g] {
			cells = append(cells, fmt.Sprintf("%.2f±%.2f (paper %.2f)", s.Mean, s.Std, PaperTableI[g][i]))
		}
		t.addRow(cells...)
	}
	return t.String()
}

// Figure2Result reproduces Fig. 2: the windowed speed trace of each
// canonical model on a single K80 worker.
type Figure2Result struct {
	// Series[modelName] is the per-100-step speed trace.
	Series map[string][]float64
	// SteadyCoV[modelName] is the post-warm-up coefficient of
	// variation (paper: at most 0.02).
	SteadyCoV map[string]float64
}

func planFigure2(seed int64) *campaign.Plan {
	p := newPlan(seed)
	for _, m := range model.CanonicalModels() {
		p.session(fmt.Sprintf("fig2/%s", m.Name), train.Config{
			Model:       m,
			Workers:     train.Homogeneous(model.K80, 1),
			TargetSteps: 4000,
		})
	}
	return p.build(func(outs []any) (Result, error) {
		res := &Figure2Result{Series: make(map[string][]float64), SteadyCoV: make(map[string]float64)}
		for i, m := range model.CanonicalModels() {
			r := outs[i].(train.Result)
			for _, s := range r.SpeedSeries {
				res.Series[m.Name] = append(res.Series[m.Name], s.Speed)
			}
			res.SteadyCoV[m.Name] = r.SpeedCoV
		}
		return res, nil
	})
}

// String renders each model's trace as a sparkline plus summary.
func (r *Figure2Result) String() string {
	var b strings.Builder
	b.WriteString("Fig. 2 — training speed vs. steps (K80, windows of 100 steps)\n")
	for _, m := range model.CanonicalModels() {
		series := r.Series[m.Name]
		if len(series) == 0 {
			continue
		}
		last := series[len(series)-1]
		fmt.Fprintf(&b, "%-16s %s  steady %.2f steps/s, CoV %.4f (paper ≤ 0.02)\n",
			m.Name, sparkline(series), last, r.SteadyCoV[m.Name])
	}
	b.WriteString("note: the initial dip is the warm-up the paper discards (first 100 steps)\n")
	return b.String()
}

// Figure3Result reproduces Fig. 3: step time against the normalized
// computation ratio (a) and normalized model complexity (b) for all
// twenty models on K80 and P100.
type Figure3Result struct {
	GPUs []model.GPU
	// Points[gpu] lists (Cnorm, CmNorm, stepSeconds) in zoo order.
	Points map[model.GPU][]Fig3Point
	// Correlations per GPU: Pearson r of step time vs. each feature.
	CorrCnorm map[model.GPU]float64
	CorrCm    map[model.GPU]float64
}

// Fig3Point is one scatter point.
type Fig3Point struct {
	Cnorm, CmNorm, StepSeconds float64
}

func planFigure3(seed int64) *campaign.Plan {
	gpus := []model.GPU{model.K80, model.P100}
	p := newPlan(seed)
	dataset := p.declareSpeedDataset(gpus)
	return p.build(func(outs []any) (Result, error) {
		return reduceFigure3(gpus, dataset(outs))
	})
}

func reduceFigure3(gpus []model.GPU, ds *speedDataset) (Result, error) {
	res := &Figure3Result{
		GPUs:      gpus,
		Points:    make(map[model.GPU][]Fig3Point),
		CorrCnorm: make(map[model.GPU]float64),
		CorrCm:    make(map[model.GPU]float64),
	}
	// Min-max normalization over the whole dataset, as in §III-B.
	var allCnorm, allCm [][]float64
	for _, g := range gpus {
		for _, m := range ds.models {
			allCnorm = append(allCnorm, []float64{m.ComputationRatio(g)})
			allCm = append(allCm, []float64{m.GFLOPs})
		}
	}
	var cnormScaler, cmScaler regress.MinMaxScaler
	if err := cnormScaler.Fit(allCnorm); err != nil {
		return nil, err
	}
	if err := cmScaler.Fit(allCm); err != nil {
		return nil, err
	}
	for _, g := range gpus {
		var xsN, xsM, ys []float64
		for _, m := range ds.models {
			p := Fig3Point{
				Cnorm:       cnormScaler.Transform([]float64{m.ComputationRatio(g)})[0],
				CmNorm:      cmScaler.Transform([]float64{m.GFLOPs})[0],
				StepSeconds: ds.stepSec[g][m.Name],
			}
			res.Points[g] = append(res.Points[g], p)
			xsN = append(xsN, p.Cnorm)
			xsM = append(xsM, p.CmNorm)
			ys = append(ys, p.StepSeconds)
		}
		res.CorrCnorm[g] = stats.Pearson(xsN, ys)
		res.CorrCm[g] = stats.Pearson(xsM, ys)
	}
	return res, nil
}

// String renders the scatter points and correlations.
func (r *Figure3Result) String() string {
	t := newTable("Fig. 3 — step time vs. normalized computation ratio / model complexity",
		"GPU", "Cnorm", "Cm(norm)", "step time (s)")
	for _, g := range r.GPUs {
		for _, p := range r.Points[g] {
			t.addRow(g.String(),
				fmt.Sprintf("%.3f", p.Cnorm),
				fmt.Sprintf("%.3f", p.CmNorm),
				fmt.Sprintf("%.4f", p.StepSeconds))
		}
	}
	for _, g := range r.GPUs {
		t.addNote("%v: Pearson r (step time, Cnorm) = %.3f; (step time, Cm) = %.3f — paper observes a strong positive correlation",
			g, r.CorrCnorm[g], r.CorrCm[g])
	}
	return t.String()
}
