package experiments

import (
	"fmt"

	"repro/internal/campaign"
	"repro/internal/cloud"
	"repro/internal/manager"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/train"
)

// SweepSpec declares a scenario grid for a measurement campaign: every
// combination of cluster size, GPU type, region, and pricing tier is
// one managed training session on the simulated cloud. This is the
// configuration space the paper's introduction motivates (which
// servers, how many, transient or on-demand?) explored by measurement
// rather than by the Eq. 4/5 estimate.
type SweepSpec struct {
	Model   model.Model
	Sizes   []int
	GPUs    []model.GPU
	Regions []cloud.Region
	Tiers   []cloud.Tier
	// RevModels lists the revocation/lifetime regimes to sweep (names
	// registered with cloud.RegisterLifetimeModel); empty means the
	// default Table V calibration only.
	RevModels []string
	// Providers lists the provider worlds to sweep (names registered
	// with cloud.RegisterProvider); empty means the default (gce) only.
	Providers []string
	// StepsPerWorker scales the training target with cluster size so
	// every scenario measures a comparable per-worker workload.
	StepsPerWorker     int64
	CheckpointInterval int64
}

// Scenario is one cell of the sweep grid.
type Scenario struct {
	Model  model.Model
	GPU    model.GPU
	Region cloud.Region
	Tier   cloud.Tier
	// RevModel names the revocation/lifetime regime the simulated
	// cloud applies to transient servers; empty means the provider's
	// default regime (Table V for the default provider).
	RevModel string
	// Provider names the provider world (catalog, price book, startup,
	// climate) the scenario runs in; empty means the default (gce).
	Provider string
	Workers  int
	// Cluster optionally specifies a mixed-GPU worker composition; nil
	// means Workers × GPU (the homogeneous default every pre-existing
	// scenario phrases). A non-nil Cluster overrides GPU and Workers.
	Cluster model.ClusterSpec
	// Elastic names the manager resize policy ("static", "elastic",
	// "surge"); empty means static.
	Elastic string
}

// ClusterSpec resolves the scenario's worker composition with the
// default applied — the canonical form Key embeds: an explicit spec
// canonicalized, or Workers × GPU.
func (s Scenario) ClusterSpec() model.ClusterSpec {
	if len(s.Cluster) > 0 {
		return s.Cluster.Canonical()
	}
	return model.HomogeneousCluster(s.GPU, s.Workers)
}

// ElasticName resolves the scenario's elastic policy with the default
// applied — the canonical form Key embeds.
func (s Scenario) ElasticName() string {
	if s.Elastic == "" {
		return "static"
	}
	return s.Elastic
}

// Label renders the scenario for table rows and unit keys. The
// revocation model appears only when one was named, so grids over the
// implicit default read (and key) exactly as before the model axis
// existed.
func (s Scenario) Label() string {
	var base string
	if len(s.Cluster) > 0 {
		base = fmt.Sprintf("%v %v %v", s.ClusterSpec(), s.Region, s.Tier)
	} else {
		base = fmt.Sprintf("%d×%v %v %v", s.Workers, s.GPU, s.Region, s.Tier)
	}
	if s.Elastic != "" && s.Elastic != "static" {
		base += " " + s.Elastic
	}
	if s.RevModel != "" {
		base += " rev=" + s.RevModel
	}
	if s.Provider != "" {
		base += " prov=" + s.Provider
	}
	return base
}

// ProviderName resolves the scenario's provider name with the default
// applied — the canonical form Key embeds.
func (s Scenario) ProviderName() string {
	if s.Provider == "" {
		return cloud.DefaultProviderName
	}
	return s.Provider
}

// RevModelName resolves the scenario's revocation model name with the
// default applied — the canonical form Key embeds: an explicit name,
// or the scenario's provider's default regime (Table V for the
// default provider).
func (s Scenario) RevModelName() string {
	if s.RevModel != "" {
		return s.RevModel
	}
	if spec, err := cloud.LookupProvider(s.Provider); err == nil {
		return spec.LifetimeModel
	}
	return cloud.DefaultLifetimeModelName
}

// Key is the scenario's canonical identity: a stable, unambiguous
// field=value encoding that does not depend on which grid produced the
// scenario or on display formatting. The planner's result cache and
// singleflight coalescing key on it (plus workload target and seed —
// see ScenarioKey), so any two queries that mean the same measurement
// share one cache line no matter how they were phrased.
// Both worker-composition phrasings normalize before encoding — an
// explicit homogeneous Cluster and the plain GPU/Workers fields land on
// the same key, so the two spellings share one cache line.
func (s Scenario) Key() string {
	cluster := s.ClusterSpec()
	gpu := s.GPU
	workers := s.Workers
	if len(s.Cluster) > 0 {
		gpu = cluster[0].GPU
		workers = cluster.TotalWorkers()
	}
	return fmt.Sprintf("model=%s|gpu=%s|region=%s|tier=%s|workers=%d|cluster=%s|elastic=%s|rev=%s|prov=%s",
		s.Model.Name, gpu, s.Region, s.Tier, workers, cluster, s.ElasticName(), s.RevModelName(), s.ProviderName())
}

// ScenarioKey canonically identifies one measured scenario run: the
// scenario identity plus the workload target and checkpoint interval
// that parameterize the session. Appending the campaign seed to this
// string yields the planner's full cache key.
func ScenarioKey(sc Scenario, steps, checkpointInterval int64) string {
	return fmt.Sprintf("%s|steps=%d|ic=%d", sc.Key(), steps, checkpointInterval)
}

// Scenarios expands the grid in declaration order (provider →
// revocation model → GPU → region → tier → size), skipping (region,
// GPU) cells the provider's catalog does not offer, mirroring the
// paper's own campaign structure. Unknown provider names expand
// unfiltered so the measurement surfaces the lookup error instead of
// silently producing an empty grid.
func (s SweepSpec) Scenarios() []Scenario {
	revs := s.RevModels
	if len(revs) == 0 {
		revs = []string{""}
	}
	provs := s.Providers
	if len(provs) == 0 {
		provs = []string{""}
	}
	var out []Scenario
	for _, prov := range provs {
		spec, specErr := cloud.LookupProvider(prov)
		for _, rev := range revs {
			for _, g := range s.GPUs {
				for _, r := range s.Regions {
					if specErr == nil && !spec.Offers(r, g) {
						continue
					}
					for _, tier := range s.Tiers {
						for _, n := range s.Sizes {
							out = append(out, Scenario{Model: s.Model, GPU: g, Region: r, Tier: tier, RevModel: rev, Provider: prov, Workers: n})
						}
					}
				}
			}
		}
	}
	return out
}

// ScenarioOutcome is one measured scenario.
type ScenarioOutcome struct {
	Scenario          Scenario
	TrainingSeconds   float64
	SteadySpeed       float64
	CheckpointCount   int
	CheckpointSeconds float64
	CostUSD           float64
	Revocations       int
	Replacements      int
	// Grows and Shrinks count the elastic resize loop's actions; zero
	// for static sessions.
	Grows   int
	Shrinks int
}

// SessionOptions tunes the managed session behind a measurement. The
// zero value is the sweep default: no dedicated parameter-server
// count, and the manager's own default replacement policy
// (ReplaceImmediate).
type SessionOptions struct {
	ParameterServers int
	Replacement      manager.ReplacementPolicy
	DelaySeconds     float64
	// Trace, when non-nil, receives the session's sim-plane timeline
	// (manager.Config.Trace); tracing never perturbs the measurement.
	Trace *obs.Recorder
	// Scratch, when non-nil, lends the measurement a per-worker arena
	// for its summarization temporaries (campaign units pass theirs
	// through here). Scratch never changes what is measured, only
	// where temporaries live.
	Scratch *campaign.Scratch
}

// runScenario measures one scenario with a full managed session on a
// fresh kernel, resolving the scenario's provider and revocation model
// by name (an unnamed revocation model means the provider's default
// regime).
func runScenario(sc Scenario, steps, ic int64, opts SessionOptions, seed int64) (ScenarioOutcome, error) {
	lmName := sc.RevModel
	if lmName == "" {
		spec, err := cloud.LookupProvider(sc.Provider)
		if err != nil {
			return ScenarioOutcome{}, err
		}
		lmName = spec.LifetimeModel
	}
	lm, err := cloud.LookupLifetimeModel(lmName)
	if err != nil {
		return ScenarioOutcome{}, err
	}
	return runScenarioWith(lm, sc, steps, ic, opts, seed)
}

// runScenarioWith is runScenario under an explicit lifetime model —
// the path the revmodels experiment uses for models it builds itself
// (e.g. a trace replay) without going through the registry.
func runScenarioWith(lm cloud.LifetimeModel, sc Scenario, steps, ic int64, opts SessionOptions, seed int64) (ScenarioOutcome, error) {
	spec, err := cloud.LookupProvider(sc.Provider)
	if err != nil {
		return ScenarioOutcome{}, err
	}
	k := &sim.Kernel{}
	provider := cloud.NewProviderFor(k, stats.NewRng(seed), spec, lm)
	cluster := sc.ClusterSpec()
	gpus := cluster.GPUs()
	placements := make([]manager.Placement, len(gpus))
	for i, g := range gpus {
		placements[i] = manager.Placement{GPU: g, Region: sc.Region, Tier: sc.Tier}
	}
	// Mixed clusters and elastic sessions run the synchronous
	// dynamic-batching mode; the batch derives from the key-determined
	// normalized cluster, so identical keys mean identical sessions.
	// Homogeneous static scenarios keep the asynchronous path (and
	// their historical byte-exact results) untouched.
	var batch *train.BatchPolicy
	if cluster.Heterogeneous() || sc.ElasticName() != "static" {
		batch = &train.BatchPolicy{
			GlobalBatch: model.ReferenceBatch * cluster.TotalWorkers(),
			Dynamic:     true,
		}
	}
	sess, err := manager.NewSession(provider, manager.Config{
		Model:              sc.Model,
		Workers:            placements,
		ParameterServers:   opts.ParameterServers,
		TargetSteps:        steps,
		CheckpointInterval: ic,
		Replacement:        opts.Replacement,
		DelaySeconds:       opts.DelaySeconds,
		Batch:              batch,
		Elastic:            sc.Elastic,
		Seed:               seed + 1,
		Trace:              opts.Trace,
	})
	if err != nil {
		return ScenarioOutcome{}, err
	}
	// A week of virtual time bounds the run; scenarios that cannot
	// finish by then fail loudly instead of hanging the sweep.
	k.RunUntil(sim.Time(7 * 24 * 3600))
	if !sess.Done() {
		return ScenarioOutcome{}, fmt.Errorf("%s did not reach %d steps (at %d) within a week of virtual time",
			sc.Label(), steps, sess.Cluster().GlobalStep())
	}
	sess.TerminateAll()
	res := sess.Cluster().ResultScratch(statsScratch(opts.Scratch))
	return ScenarioOutcome{
		Scenario:          sc,
		TrainingSeconds:   sess.TrainingSeconds(),
		SteadySpeed:       res.SteadySpeed,
		CheckpointCount:   res.CheckpointCount,
		CheckpointSeconds: res.CheckpointSeconds,
		CostUSD:           sess.Cost(),
		Revocations:       sess.Revocations(),
		Replacements:      sess.Replacements(),
		Grows:             sess.Grows(),
		Shrinks:           sess.Shrinks(),
	}, nil
}

// MeasureScenario measures one scenario with a full managed session —
// the building block cmd/cmdare and the examples use to validate an
// Eq. 4/5 pick against the simulated cloud. Unlike SweepSpec.Plan,
// the step target is explicit rather than scaled per worker.
func MeasureScenario(sc Scenario, steps, ic int64, opts SessionOptions, seed int64) (ScenarioOutcome, error) {
	return runScenario(sc, steps, ic, opts, seed)
}

// Plan declares the sweep as a campaign: one unit per scenario.
func (s SweepSpec) Plan(seed int64) *campaign.Plan {
	p := newPlan(seed)
	scenarios := s.Scenarios()
	for _, sc := range scenarios {
		steps := s.StepsPerWorker * int64(sc.Workers)
		p.stunit("sweep/"+sc.Label(), func(unitSeed int64, rec *obs.Recorder, scr *campaign.Scratch) (any, error) {
			return runScenario(sc, steps, s.CheckpointInterval, SessionOptions{Trace: rec, Scratch: scr}, unitSeed)
		})
	}
	return p.build(func(outs []any) (Result, error) {
		res := &SweepResult{Spec: s}
		for _, o := range outs {
			res.Outcomes = append(res.Outcomes, o.(ScenarioOutcome))
		}
		return res, nil
	})
}

// DefaultSweep is the grid behind the "sweep" experiment ID: the
// fastest canonical model across every GPU type, two regions with
// full GPU coverage, both tiers, and three cluster sizes.
func DefaultSweep() SweepSpec {
	return SweepSpec{
		Model:              model.ResNet15(),
		Sizes:              []int{1, 2, 4},
		GPUs:               model.AllGPUs(),
		Regions:            []cloud.Region{cloud.USCentral1, cloud.USWest1},
		Tiers:              []cloud.Tier{cloud.Transient, cloud.OnDemand},
		StepsPerWorker:     2000,
		CheckpointInterval: 1000,
	}
}

func planDefaultSweep(seed int64) *campaign.Plan {
	return DefaultSweep().Plan(seed)
}

// SweepResult renders the measured grid.
type SweepResult struct {
	Spec     SweepSpec
	Outcomes []ScenarioOutcome
}

// String renders one row per scenario plus the measured frontier.
func (r *SweepResult) String() string {
	t := newTable(fmt.Sprintf("Scenario sweep — %s, %d steps/worker, Ic=%d",
		r.Spec.Model.Name, r.Spec.StepsPerWorker, r.Spec.CheckpointInterval),
		"scenario", "steps/s", "time (h)", "cost ($)", "revoked", "replaced", "$/1k steps")
	for _, o := range r.Outcomes {
		steps := r.Spec.StepsPerWorker * int64(o.Scenario.Workers)
		t.addRow(o.Scenario.Label(),
			fmt.Sprintf("%.2f", o.SteadySpeed),
			fmt.Sprintf("%.2f", o.TrainingSeconds/3600),
			fmt.Sprintf("%.2f", o.CostUSD),
			fmt.Sprintf("%d", o.Revocations),
			fmt.Sprintf("%d", o.Replacements),
			fmt.Sprintf("%.3f", o.CostUSD/(float64(steps)/1000)))
	}
	if best, ok := r.Cheapest(); ok {
		t.addNote("cheapest per step: %s ($%.3f/1k steps)", best.Scenario.Label(),
			best.CostUSD/(float64(r.Spec.StepsPerWorker*int64(best.Scenario.Workers))/1000))
	}
	t.addNote("transient tiers trade revocation risk for the paper's ≈70%% price discount")
	return t.String()
}

// Cheapest returns the scenario with the lowest cost per training
// step — the same $/1k-steps quantity the rendered table shows — the
// headline the cost-planner example optimizes for.
func (r *SweepResult) Cheapest() (ScenarioOutcome, bool) {
	if len(r.Outcomes) == 0 {
		return ScenarioOutcome{}, false
	}
	perStep := func(o ScenarioOutcome) float64 {
		return o.CostUSD / float64(r.Spec.StepsPerWorker*int64(o.Scenario.Workers))
	}
	best := r.Outcomes[0]
	for _, o := range r.Outcomes[1:] {
		if perStep(o) < perStep(best) {
			best = o
		}
	}
	return best, true
}
