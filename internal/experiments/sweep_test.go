package experiments

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/cloud"
	"repro/internal/model"
)

func TestSweepScenarioGridSkipsUnofferedCells(t *testing.T) {
	spec := SweepSpec{
		Model:          model.ResNet15(),
		Sizes:          []int{1, 2},
		GPUs:           []model.GPU{model.K80, model.V100},
		Regions:        []cloud.Region{cloud.USEast1, cloud.USCentral1},
		Tiers:          []cloud.Tier{cloud.Transient},
		StepsPerWorker: 100,
	}
	scenarios := spec.Scenarios()
	// V100 is not offered in us-east1, so that (region, GPU) cell drops
	// out: 2 GPUs × 2 regions × 2 sizes − 2 = 6.
	if len(scenarios) != 6 {
		t.Fatalf("scenarios = %d, want 6", len(scenarios))
	}
	for _, sc := range scenarios {
		if sc.GPU == model.V100 && sc.Region == cloud.USEast1 {
			t.Errorf("grid kept unoffered cell %s", sc.Label())
		}
	}
	// Declaration order is GPU → region → tier → size.
	if scenarios[0].Label() != "1×K80 us-east1 transient" {
		t.Errorf("first scenario = %s", scenarios[0].Label())
	}
}

func TestSweepMeasuresEveryScenario(t *testing.T) {
	spec := SweepSpec{
		Model:              model.ResNet15(),
		Sizes:              []int{1, 2},
		GPUs:               []model.GPU{model.K80},
		Regions:            []cloud.Region{cloud.USCentral1},
		Tiers:              []cloud.Tier{cloud.Transient, cloud.OnDemand},
		StepsPerWorker:     1000,
		CheckpointInterval: 500,
	}
	r := Runner{ID: "sweep-test", Title: "test sweep", Plan: spec.Plan}
	res, err := r.RunWorkers(21, 4)
	if err != nil {
		t.Fatal(err)
	}
	sw := res.(*SweepResult)
	if len(sw.Outcomes) != 4 {
		t.Fatalf("outcomes = %d, want 4", len(sw.Outcomes))
	}
	for _, o := range sw.Outcomes {
		if o.TrainingSeconds <= 0 || o.SteadySpeed <= 0 || o.CostUSD <= 0 {
			t.Errorf("%s: non-positive measurement %+v", o.Scenario.Label(), o)
		}
		if o.Scenario.Tier == cloud.OnDemand && o.Revocations != 0 {
			t.Errorf("%s: on-demand scenario reported %d revocations", o.Scenario.Label(), o.Revocations)
		}
	}
	out := sw.String()
	for _, want := range []string{"Scenario sweep", "2×K80", "on-demand", "cheapest per step"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
	if _, ok := sw.Cheapest(); !ok {
		t.Error("Cheapest should resolve on a non-empty sweep")
	}
}

// TestCampaignDeterminism is the tentpole guarantee: a campaign's
// rendered output is byte-identical at one worker and at eight.
func TestCampaignDeterminism(t *testing.T) {
	ids := []string{"table1", "fig7", "ckptseq", "sweep"}
	if !testing.Short() {
		ids = append(ids, "fig9", "fig10")
	}
	for _, id := range ids {
		t.Run(id, func(t *testing.T) {
			r, ok := ByID(id)
			if !ok {
				t.Fatalf("experiment %q not registered", id)
			}
			seq, err := r.RunWorkers(42, 1)
			if err != nil {
				t.Fatal(err)
			}
			par, err := r.RunWorkers(42, 8)
			if err != nil {
				t.Fatal(err)
			}
			if seq.String() != par.String() {
				t.Errorf("output differs between -parallel 1 and -parallel 8:\n--- sequential ---\n%s\n--- parallel ---\n%s",
					seq.String(), par.String())
			}
		})
	}
}

// TestTableVAndFigure8ShareTheCampaign pins the paper's structure:
// Table V and Fig. 8 are two views of one revocation trace, so for a
// given seed both experiments must render the same campaign.
func TestTableVAndFigure8ShareTheCampaign(t *testing.T) {
	tv := runByID(t, "table5", 33).(*TableVResult)
	f8 := runByID(t, "fig8", 33).(*Figure8Result)
	a, b := tv.Study.TableV(), f8.Study.TableV()
	if len(a) != len(b) {
		t.Fatalf("cell counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("cell %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestScenarioKeyIsCanonicalAndGridIndependent(t *testing.T) {
	sc := Scenario{Model: model.ResNet15(), GPU: model.P100, Region: cloud.USWest1, Tier: cloud.Transient, Workers: 4}
	want := "model=ResNet-15|gpu=P100|region=us-west1|tier=transient|workers=4|cluster=4xP100|elastic=static|rev=table5|prov=gce"
	if got := sc.Key(); got != want {
		t.Fatalf("Key() = %q, want %q", got, want)
	}
	// The cluster axis normalizes the same way: an explicit homogeneous
	// spec is the same measurement as the plain GPU/Workers phrasing
	// (one planner cache line), a mixed spec is a different world, and
	// group order inside a spec never matters.
	explicitCluster := sc
	explicitCluster.Cluster = model.HomogeneousCluster(model.P100, 4)
	if explicitCluster.Key() != sc.Key() {
		t.Fatalf("explicit homogeneous cluster keys %q, implicit %q", explicitCluster.Key(), sc.Key())
	}
	mixed := sc
	mixed.Cluster = model.ClusterSpec{{GPU: model.K80, Count: 2}, {GPU: model.P100, Count: 2}}
	if mixed.Key() == sc.Key() {
		t.Fatal("mixed cluster shares a key with the homogeneous scenario")
	}
	reordered := sc
	reordered.Cluster = model.ClusterSpec{{GPU: model.P100, Count: 2}, {GPU: model.K80, Count: 2}}
	if reordered.Key() != mixed.Key() {
		t.Fatalf("group order changes the key: %q vs %q", reordered.Key(), mixed.Key())
	}
	// Same for the elastic axis: implicit and explicit "static" are one
	// measurement, a real policy keys apart.
	explicitStatic := sc
	explicitStatic.Elastic = "static"
	if explicitStatic.Key() != sc.Key() {
		t.Fatalf("explicit static keys %q, implicit %q", explicitStatic.Key(), sc.Key())
	}
	elastic := sc
	elastic.Elastic = "elastic"
	if elastic.Key() == sc.Key() {
		t.Fatal("elastic scenario shares a key with the static one")
	}
	// The implicit default and the explicitly-named default are the
	// same measurement, so they share one canonical key; any other
	// model is a different world and must key apart.
	explicit := sc
	explicit.RevModel = cloud.DefaultLifetimeModelName
	if explicit.Key() != sc.Key() {
		t.Fatalf("explicit default keys %q, implicit %q", explicit.Key(), sc.Key())
	}
	weibull := sc
	weibull.RevModel = "weibull"
	if weibull.Key() == sc.Key() {
		t.Fatal("distinct revocation models share a key")
	}
	// Same canonicalization for the provider axis: implicit gce and
	// explicit gce are one world, any other provider keys apart.
	explicitProv := sc
	explicitProv.Provider = cloud.DefaultProviderName
	if explicitProv.Key() != sc.Key() {
		t.Fatalf("explicit default provider keys %q, implicit %q", explicitProv.Key(), sc.Key())
	}
	aws := sc
	aws.Provider = "aws"
	if aws.Key() == sc.Key() {
		t.Fatal("distinct providers share a key")
	}
	// The same scenario expanded from two differently-shaped grids must
	// share one key: that is what makes the planner cache coherent
	// across arbitrary query grids.
	wide := SweepSpec{Model: model.ResNet15(), Sizes: []int{1, 2, 4}, GPUs: model.AllGPUs(),
		Regions: []cloud.Region{cloud.USWest1}, Tiers: []cloud.Tier{cloud.Transient}}
	narrow := SweepSpec{Model: model.ResNet15(), Sizes: []int{4}, GPUs: []model.GPU{model.P100},
		Regions: []cloud.Region{cloud.USWest1}, Tiers: []cloud.Tier{cloud.Transient}}
	keys := func(spec SweepSpec) map[string]bool {
		m := make(map[string]bool)
		for _, s := range spec.Scenarios() {
			m[s.Key()] = true
		}
		return m
	}
	if !keys(wide)[sc.Key()] || !keys(narrow)[sc.Key()] {
		t.Fatal("identical scenarios from different grids derived different keys")
	}
	// Every cell of a grid keys uniquely.
	if got, want := len(keys(wide)), len(wide.Scenarios()); got != want {
		t.Fatalf("grid of %d scenarios produced %d distinct keys", want, got)
	}
	if got, want := ScenarioKey(sc, 8000, 1000), want+"|steps=8000|ic=1000"; got != want {
		t.Fatalf("ScenarioKey = %q, want %q", got, want)
	}
}

func TestSweepRevModelAxisExpandsGrid(t *testing.T) {
	spec := SweepSpec{
		Model:          model.ResNet15(),
		Sizes:          []int{1},
		GPUs:           []model.GPU{model.K80},
		Regions:        []cloud.Region{cloud.USCentral1},
		Tiers:          []cloud.Tier{cloud.Transient},
		RevModels:      []string{"table5", "weibull", "diurnal"},
		StepsPerWorker: 100,
	}
	scenarios := spec.Scenarios()
	if len(scenarios) != 3 {
		t.Fatalf("scenarios = %d, want one per revocation model", len(scenarios))
	}
	labels := make(map[string]bool)
	keys := make(map[string]bool)
	for _, sc := range scenarios {
		labels[sc.Label()] = true
		keys[sc.Key()] = true
	}
	if len(labels) != 3 || len(keys) != 3 {
		t.Fatalf("revocation models must label and key apart: labels=%v", labels)
	}
	if !labels["1×K80 us-central1 transient rev=weibull"] {
		t.Errorf("missing expected label, got %v", labels)
	}
}

// TestMeasureScenarioHonorsRevModel runs the same placement under two
// revocation regimes: the measurements must come out deterministic per
// model and the unknown-model error must surface, not panic.
func TestMeasureScenarioHonorsRevModel(t *testing.T) {
	if testing.Short() {
		t.Skip("measured sessions in -short mode")
	}
	base := Scenario{Model: model.ResNet15(), GPU: model.K80, Region: cloud.USCentral1, Tier: cloud.Transient, Workers: 1}
	outcomes := make(map[string]ScenarioOutcome)
	for _, rev := range []string{"", "weibull", "diurnal"} {
		sc := base
		sc.RevModel = rev
		out, err := MeasureScenario(sc, 2000, 500, SessionOptions{}, 7)
		if err != nil {
			t.Fatalf("rev=%q: %v", rev, err)
		}
		again, err := MeasureScenario(sc, 2000, 500, SessionOptions{}, 7)
		if err != nil || !reflect.DeepEqual(again, out) {
			t.Fatalf("rev=%q not deterministic: %+v vs %+v (%v)", rev, out, again, err)
		}
		outcomes[rev] = out
	}
	// Identical seeds and placements, different lifetime regimes: at
	// least one pair must measure differently, or the axis is dead.
	if reflect.DeepEqual(outcomes[""], outcomes["weibull"]) && reflect.DeepEqual(outcomes[""], outcomes["diurnal"]) {
		t.Error("all revocation models produced identical outcomes")
	}
	bad := base
	bad.RevModel = "no-such-model"
	if _, err := MeasureScenario(bad, 100, 0, SessionOptions{}, 1); err == nil {
		t.Error("unknown revocation model accepted")
	}
}
