package experiments

import (
	"fmt"

	"repro/internal/campaign"
	"repro/internal/model"
	"repro/internal/regress"
	"repro/internal/stats"
)

// RegressionRow is one row of Table II or Table IV: a model family
// evaluated by k-fold cross-validation MAE and held-out test MAE.
type RegressionRow struct {
	Name     string
	Features string
	KFoldMAE float64
	KFoldStd float64
	TestMAE  float64
	TestMAPE float64
	// C and Epsilon record grid-search outcomes for SVR rows.
	C, Epsilon float64
	// PaperKFold and PaperTest are the published values.
	PaperKFold, PaperTest float64
}

// evaluateRegressor runs the paper's evaluation protocol on one model
// family: 4:1 train/test split, k-fold CV on the training set, final
// fit and test-set scoring.
func evaluateRegressor(factory regress.Factory, X [][]float64, y []float64, k int, seed int64) (kfoldMean, kfoldStd, testMAE, testMAPE float64, err error) {
	rng := stats.NewRng(seed)
	trX, trY, teX, teY, err := regress.TrainTestSplit(X, y, 0.8, rng)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	kfoldMean, kfoldStd, err = regress.CrossValMAE(factory, trX, trY, k, stats.NewRng(seed+1))
	if err != nil {
		return 0, 0, 0, 0, err
	}
	m := factory()
	if err := m.Fit(trX, trY); err != nil {
		return 0, 0, 0, 0, err
	}
	pred := regress.PredictAll(m, teX)
	return kfoldMean, kfoldStd, stats.MAE(pred, teY), stats.MAPE(pred, teY), nil
}

// svrBandwidths lists kernel-bandwidth candidates swept alongside the
// paper's (C, ε) grid, on min-max-normalized features.
var rbfCandidates = []regress.Kernel{
	regress.RBF{Sigma: 0.05}, regress.RBF{Sigma: 0.1},
	regress.RBF{Sigma: 0.2}, regress.RBF{Sigma: 0.35}, regress.RBF{Sigma: 0.5},
}

var polyCandidates = []regress.Kernel{
	regress.Polynomial{Degree: 2, Coef0: 0.5},
	regress.Polynomial{Degree: 2, Coef0: 1},
	regress.Polynomial{Degree: 2, Coef0: 2},
}

// evaluateSVR grid-searches the kernel bandwidth and (C, ε) on the
// training split exactly as §III-B describes, then evaluates the
// winner.
func evaluateSVR(kernels []regress.Kernel, X [][]float64, y []float64, k int, seed int64) (row RegressionRow, err error) {
	rng := stats.NewRng(seed)
	trX, trY, teX, teY, err := regress.TrainTestSplit(X, y, 0.8, rng)
	if err != nil {
		return row, err
	}
	factory, _, c, eps, _, err := regress.GridSearchSVRKernels(kernels, regress.PaperSVRGrid(), trX, trY, k, stats.NewRng(seed+2))
	if err != nil {
		return row, err
	}
	row.C, row.Epsilon = c, eps
	row.KFoldMAE, row.KFoldStd, err = regress.CrossValMAE(factory, trX, trY, k, stats.NewRng(seed+1))
	if err != nil {
		return row, err
	}
	m := factory()
	if err := m.Fit(trX, trY); err != nil {
		return row, err
	}
	pred := regress.PredictAll(m, teX)
	row.TestMAE = stats.MAE(pred, teY)
	row.TestMAPE = stats.MAPE(pred, teY)
	return row, nil
}

// TableIIResult reproduces Table II: eight step-time prediction
// models.
type TableIIResult struct {
	Rows []RegressionRow
}

func planTableII(seed int64) *campaign.Plan {
	gpus := []model.GPU{model.K80, model.P100}
	p := newPlan(seed)
	dataset := p.declareSpeedDataset(gpus)
	return p.build(func(outs []any) (Result, error) {
		return reduceTableII(seed, gpus, dataset(outs))
	})
}

func reduceTableII(seed int64, gpus []model.GPU, ds *speedDataset) (Result, error) {
	res := &TableIIResult{}
	const k = 5

	// GPU-agnostic dataset: all (model, GPU) pairs with raw features
	// (Cnorm; Cm and Cgpu), min-max normalized over the full set.
	var rawCnorm, rawMulti [][]float64
	var yAll []float64
	for _, g := range gpus {
		for _, m := range ds.models {
			rawCnorm = append(rawCnorm, []float64{m.ComputationRatio(g)})
			rawMulti = append(rawMulti, []float64{m.GFLOPs, model.Spec(g).TFLOPS})
			yAll = append(yAll, ds.stepSec[g][m.Name])
		}
	}
	var s1, s2 regress.MinMaxScaler
	cnormX, err := s1.FitTransform(rawCnorm)
	if err != nil {
		return nil, err
	}
	multiX, err := s2.FitTransform(rawMulti)
	if err != nil {
		return nil, err
	}

	linear := func() regress.Regressor { return &regress.Linear{} }

	kf, ks, tm, tp, err := evaluateRegressor(linear, cnormX, yAll, k, seed+10)
	if err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, RegressionRow{
		Name: "Univariate, GPU-agnostic", Features: "Cnorm",
		KFoldMAE: kf, KFoldStd: ks, TestMAE: tm, TestMAPE: tp,
		PaperKFold: 0.072, PaperTest: 0.068,
	})
	kf, ks, tm, tp, err = evaluateRegressor(linear, multiX, yAll, k, seed+11)
	if err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, RegressionRow{
		Name: "Multivariate, GPU-agnostic", Features: "Cm, Cgpu",
		KFoldMAE: kf, KFoldStd: ks, TestMAE: tm, TestMAPE: tp,
		PaperKFold: 0.103, PaperTest: 0.093,
	})

	// Per-GPU rows: feature is Cm normalized within the GPU's zoo.
	paper := map[model.GPU][3][2]float64{
		model.K80:  {{0.065, 0.068}, {0.035, 0.041}, {0.026, 0.031}},
		model.P100: {{0.029, 0.031}, {0.019, 0.020}, {0.012, 0.016}},
	}
	for gi, g := range gpus {
		gflops, stepSec := ds.gpuVectors(g)
		var scaler regress.MinMaxScaler
		X, err := scaler.FitTransform(regress.AsMatrix(gflops))
		if err != nil {
			return nil, err
		}
		rowSeed := seed + 20 + int64(gi)*10
		kf, ks, tm, tp, err := evaluateRegressor(linear, X, stepSec, k, rowSeed)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, RegressionRow{
			Name: fmt.Sprintf("Univariate, %v", g), Features: "Cm",
			KFoldMAE: kf, KFoldStd: ks, TestMAE: tm, TestMAPE: tp,
			PaperKFold: paper[g][0][0], PaperTest: paper[g][0][1],
		})
		polyRow, err := evaluateSVR(polyCandidates, X, stepSec, k, rowSeed+1)
		if err != nil {
			return nil, err
		}
		polyRow.Name = fmt.Sprintf("SVR Polynomial Kernel, %v", g)
		polyRow.Features = "Cm"
		polyRow.PaperKFold, polyRow.PaperTest = paper[g][1][0], paper[g][1][1]
		res.Rows = append(res.Rows, polyRow)

		rbfRow, err := evaluateSVR(rbfCandidates, X, stepSec, k, rowSeed+2)
		if err != nil {
			return nil, err
		}
		rbfRow.Name = fmt.Sprintf("SVR RBF Kernel, %v", g)
		rbfRow.Features = "Cm"
		rbfRow.PaperKFold, rbfRow.PaperTest = paper[g][2][0], paper[g][2][1]
		res.Rows = append(res.Rows, rbfRow)
	}
	return res, nil
}

// String renders the comparison.
func (r *TableIIResult) String() string {
	t := newTable("Table II — step time prediction models (seconds)",
		"Regression Model", "Input", "K-fold MAE", "Test MAE", "Test MAPE", "paper k-fold/test")
	for _, row := range r.Rows {
		t.addRow(row.Name, row.Features,
			fmt.Sprintf("%.3f±%.3f", row.KFoldMAE, row.KFoldStd),
			fmt.Sprintf("%.3f", row.TestMAE),
			fmt.Sprintf("%.1f%%", row.TestMAPE),
			fmt.Sprintf("%.3f/%.3f", row.PaperKFold, row.PaperTest))
	}
	t.addNote("paper: GPU-specific models beat GPU-agnostic ones; SVR-RBF best (K80 RBF test MAPE 9.02%%)")
	return t.String()
}

// TableIVResult reproduces Table IV: four checkpoint-time prediction
// models.
type TableIVResult struct {
	Rows []RegressionRow
}

func planTableIV(seed int64) *campaign.Plan {
	p := newPlan(seed)
	p.unit("ckpt-dataset", func(s int64) (any, error) {
		return collectCheckpointDataset(5, s), nil
	})
	return p.build(func(outs []any) (Result, error) {
		return reduceTableIV(seed, outs[0].(*checkpointDataset))
	})
}

func reduceTableIV(seed int64, ds *checkpointDataset) (Result, error) {
	obs := ds.observations()
	const k = 5

	// Feature matrices in MB, min-max normalized.
	const mb = 1e6
	var rawSc, rawDM, rawAll [][]float64
	var y []float64
	for _, o := range obs {
		rawSc = append(rawSc, []float64{float64(o.DataBytes+o.MetaBytes+o.IndexBytes) / mb})
		rawDM = append(rawDM, []float64{float64(o.DataBytes) / mb, float64(o.MetaBytes) / mb})
		rawAll = append(rawAll, []float64{float64(o.DataBytes) / mb, float64(o.MetaBytes) / mb, float64(o.IndexBytes) / mb})
		y = append(y, o.Seconds)
	}
	var sSc, sDM, sAll regress.MinMaxScaler
	scX, err := sSc.FitTransform(rawSc)
	if err != nil {
		return nil, err
	}
	dmX, err := sDM.FitTransform(rawDM)
	if err != nil {
		return nil, err
	}
	allX, err := sAll.FitTransform(rawAll)
	if err != nil {
		return nil, err
	}

	res := &TableIVResult{}
	linear := func() regress.Regressor { return &regress.Linear{} }

	kf, ks, tm, tp, err := evaluateRegressor(linear, scX, y, k, seed+30)
	if err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, RegressionRow{
		Name: "Univariate", Features: "Sc",
		KFoldMAE: kf, KFoldStd: ks, TestMAE: tm, TestMAPE: tp,
		PaperKFold: 0.345, PaperTest: 0.356,
	})
	kf, ks, tm, tp, err = evaluateRegressor(linear, dmX, y, k, seed+31)
	if err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, RegressionRow{
		Name: "Multivariate", Features: "Sd, Sm",
		KFoldMAE: kf, KFoldStd: ks, TestMAE: tm, TestMAPE: tp,
		PaperKFold: 0.291, PaperTest: 0.353,
	})
	pcaFactory := func() regress.Regressor { return &regress.PCARegressor{Components: 2} }
	kf, ks, tm, tp, err = evaluateRegressor(pcaFactory, allX, y, k, seed+32)
	if err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, RegressionRow{
		Name: "Multivariate, Two Components PCA", Features: "Sd, Sm, Si",
		KFoldMAE: kf, KFoldStd: ks, TestMAE: tm, TestMAPE: tp,
		PaperKFold: 0.286, PaperTest: 0.354,
	})
	svrRow, err := evaluateSVR(rbfCandidates, scX, y, k, seed+33)
	if err != nil {
		return nil, err
	}
	svrRow.Name = "SVR RBF kernel"
	svrRow.Features = "Sc"
	svrRow.PaperKFold, svrRow.PaperTest = 0.198, 0.245
	res.Rows = append(res.Rows, svrRow)
	return res, nil
}

// String renders the comparison.
func (r *TableIVResult) String() string {
	t := newTable("Table IV — checkpoint time prediction models (seconds)",
		"Regression Model", "Input", "K-fold MAE", "Test MAE", "Test MAPE", "paper k-fold/test")
	for _, row := range r.Rows {
		t.addRow(row.Name, row.Features,
			fmt.Sprintf("%.3f±%.3f", row.KFoldMAE, row.KFoldStd),
			fmt.Sprintf("%.3f", row.TestMAE),
			fmt.Sprintf("%.1f%%", row.TestMAPE),
			fmt.Sprintf("%.3f/%.3f", row.PaperKFold, row.PaperTest))
	}
	t.addNote("paper: SVR-RBF wins with 5.38%% test MAPE; others ≈1.45–1.74× higher MAE")
	return t.String()
}
