package fleet

import (
	"sort"

	"repro/internal/cloud"
	"repro/internal/model"
)

// arbitrageScheduler is the cross-provider policy: earliest-deadline-
// first over the queue, but every queued job is quoted against every
// market of the fleet — catalog, remaining capacity, price book, and
// the churn signal — and placed in whichever market is currently
// cheap and calm. Queued jobs therefore migrate between markets for
// free as conditions change: a revocation wave in one market (churn)
// or an exhausted pool reroutes the next admission to another, while
// a job already running rides out its market (its session's
// replacements stay where its checkpoints are). Candidate ranking:
// placements that optimistically meet the job's deadline beat ones
// that don't; calm regions beat churning ones; then lowest dollars
// per step from the market's own book. Ties break by market order,
// then GPU catalog order, so the pick is deterministic. Like
// deadline-aware, a job that fits nowhere is started on-demand in the
// market quoting the cheapest on-demand price once waiting longer
// would blow its deadline.
type arbitrageScheduler struct{}

func (arbitrageScheduler) Name() string { return "arbitrage" }

// singleMarketView adapts a plain PoolView (tests, custom harnesses)
// into a one-market MarketView priced from the default book.
type singleMarketView struct{ PoolView }

func (v singleMarketView) Markets() []string { return []string{cloud.DefaultProviderName} }
func (v singleMarketView) MarketSpec(market string) *cloud.ProviderSpec {
	if market != cloud.DefaultProviderName {
		return nil
	}
	return cloud.DefaultProvider()
}
func (v singleMarketView) MarketAvailable(market string, r cloud.Region, g model.GPU) int {
	return v.Available(r, g)
}
func (v singleMarketView) MarketChurning(market string, r cloud.Region) bool { return false }

// Observed returns an empty history: a bare PoolView has no
// measurement record, so history-aware policies fall back to their
// analytic estimates. Fresh per call — callers may not mutate it, but
// sharing one across goroutines would still trip the race detector's
// view of the fleet contract.
func (v singleMarketView) Observed() *History { return &History{} }

// marketsOf widens any pool to a MarketView.
func marketsOf(pool PoolView) MarketView {
	if mv, ok := pool.(MarketView); ok {
		return mv
	}
	return singleMarketView{pool}
}

// quote is one admissible (market, GPU, region) candidate for a job.
type quote struct {
	pl             Placement
	meetsDeadline  bool
	churning       bool
	dollarsPerStep float64
}

// better ranks quotes: deadline feasibility, then calm, then price.
func (q quote) better(than quote) bool {
	if q.meetsDeadline != than.meetsDeadline {
		return q.meetsDeadline
	}
	if q.churning != than.churning {
		return !q.churning
	}
	return q.dollarsPerStep < than.dollarsPerStep
}

// marketRegionWithRoom scans the market's regions in catalog order for
// one that offers g and can hold the cluster, preferring calm regions:
// a churning region is returned only when no calm one has room.
func marketRegionWithRoom(mv MarketView, market string, g model.GPU, workers int) (r cloud.Region, churning, ok bool) {
	spec := mv.MarketSpec(market)
	if spec == nil {
		return 0, false, false
	}
	var churnR cloud.Region
	churnFound := false
	for _, cand := range cloud.AllRegions() {
		if !spec.Offers(cand, g) {
			continue
		}
		free := mv.MarketAvailable(market, cand, g)
		if free >= 0 && free < workers {
			continue
		}
		if mv.MarketChurning(market, cand) {
			if !churnFound {
				churnR, churnFound = cand, true
			}
			continue
		}
		return cand, false, true
	}
	if churnFound {
		return churnR, true, true
	}
	return 0, false, false
}

// marketDollarsPerStep prices one idealized step of the job's cluster
// from the market's own book (transient workers plus the parameter
// server; startup and revocations excluded) — the cross-market analog
// of dollarsPerStep.
func marketDollarsPerStep(spec *cloud.ProviderSpec, job JobSpec, g model.GPU) float64 {
	hourly := float64(job.Workers)*spec.GPUHourly(g, cloud.Transient) + spec.PSHourly
	stepsPerHour := model.StepsPerSecond(g, job.Model) * float64(job.Workers) * 3600
	return hourly / stepsPerHour
}

// bestQuote surveys every (market, GPU) pair with room for the job and
// returns the best transient candidate.
func bestQuote(mv MarketView, job JobSpec, now float64) (quote, bool) {
	var best quote
	found := false
	for _, market := range mv.Markets() {
		spec := mv.MarketSpec(market)
		if spec == nil {
			continue
		}
		for _, g := range model.AllGPUs() {
			r, churning, ok := marketRegionWithRoom(mv, market, g, job.Workers)
			if !ok {
				continue
			}
			q := quote{
				pl:             Placement{Region: r, GPU: g, Tier: cloud.Transient, Market: market},
				meetsDeadline:  now+job.OptimisticHours(g) <= job.DeadlineAtHours(),
				churning:       churning,
				dollarsPerStep: marketDollarsPerStep(spec, job, g),
			}
			if !found || q.better(best) {
				best, found = q, true
			}
		}
	}
	return best, found
}

// cheapestOnDemand finds the market quoting the lowest on-demand price
// for the job's requested GPU class, placed in that market's first
// offering region (on-demand pools are uncapped).
func cheapestOnDemand(mv MarketView, job JobSpec) (Placement, bool) {
	var best Placement
	bestPrice, found := 0.0, false
	for _, market := range mv.Markets() {
		spec := mv.MarketSpec(market)
		if spec == nil {
			continue
		}
		regions := spec.OfferedRegions(job.GPU)
		if len(regions) == 0 {
			continue
		}
		price := spec.GPUHourly(job.GPU, cloud.OnDemand)
		if !found || price < bestPrice {
			best = Placement{Region: regions[0], GPU: job.GPU, Tier: cloud.OnDemand, Market: market}
			bestPrice, found = price, true
		}
	}
	return best, found
}

func (arbitrageScheduler) Pick(queue []*Job, pool PoolView) (int, Placement, bool) {
	mv := marketsOf(pool)
	order := make([]int, len(queue))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return queue[order[a]].Spec.DeadlineAtHours() < queue[order[b]].Spec.DeadlineAtHours()
	})
	now := pool.NowHours()
	for _, idx := range order {
		spec := queue[idx].Spec
		if q, ok := bestQuote(mv, spec, now); ok {
			return idx, q.pl, true
		}
		// No transient room in any market: buy on-demand wherever it is
		// cheapest once this job reaches its last responsible moment.
		remaining := spec.DeadlineAtHours() - now
		if remaining <= spec.OptimisticHours(spec.GPU)*onDemandSlackFactor {
			if pl, ok := cheapestOnDemand(mv, spec); ok {
				return idx, pl, true
			}
		}
	}
	return 0, Placement{}, false
}

// NextWakeHours implements Waker exactly as deadline-aware does: the
// earliest queued job's last responsible moment still ahead, so the
// on-demand escape hatch fires even on a quiet queue.
func (arbitrageScheduler) NextWakeHours(queue []*Job, pool PoolView) (float64, bool) {
	return deadlineAwareScheduler{}.NextWakeHours(queue, pool)
}
