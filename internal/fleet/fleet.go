package fleet

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/campaign"
	"repro/internal/cloud"
	"repro/internal/manager"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Config declares one fleet simulation: a workload, a pool, and a
// policy.
type Config struct {
	Workload WorkloadSpec
	// Scheduler names the admission policy (registry name; empty:
	// fifo).
	Scheduler string
	// RevModel names the revocation/lifetime regime of the simulated
	// cloud (cloud registry name). Empty means each market's own
	// default regime (the Table V default for the default market); a
	// non-empty name applies to every market.
	RevModel string
	// Providers lists the markets the fleet schedules across (cloud
	// provider registry names, one cloud.Provider each on the shared
	// kernel). Empty means the default single market; the first entry
	// is the default market unqualified placements run in.
	Providers []string
	// Capacity bounds the transient pool per (region, GPU) cell; nil
	// means infinite, reducing the fleet to independent jobs.
	Capacity cloud.Capacity
	// Elastic names the manager resize policy every job session runs
	// under ("static", "elastic", "surge"); empty means static. Elastic
	// sessions consult the fleet's own revocation history (scaled onto
	// the diurnal prior) instead of the prior alone.
	Elastic string
	// HorizonHours bounds the simulation (0: a week, matching the
	// single-scenario cap).
	HorizonHours float64
	// WorkloadSeed seeds job generation separately from the
	// simulation seed, so scheduler comparisons can face an identical
	// job stream while the cloud's randomness varies per replication
	// (0: derive from the simulation seed).
	WorkloadSeed int64
}

// DefaultHorizonHours bounds a fleet run when the config names no
// horizon: one week, the same cap runScenario puts on a single
// session.
const DefaultHorizonHours = 7 * 24

// marketPlan is one resolved market of a validated config.
type marketPlan struct {
	spec *cloud.ProviderSpec
	lm   cloud.LifetimeModel
}

// validate resolves names and fills defaults, returning the resolved
// scheduler and one market plan per configured provider.
func (c *Config) validate() (Scheduler, []marketPlan, error) {
	sched, err := LookupScheduler(c.Scheduler)
	if err != nil {
		return nil, nil, err
	}
	var markets []marketPlan
	seen := map[string]bool{}
	for _, name := range c.providerNames() {
		spec, err := cloud.LookupProvider(name)
		if err != nil {
			return nil, nil, err
		}
		if seen[spec.Name] {
			return nil, nil, fmt.Errorf("fleet: provider %q listed twice", spec.Name)
		}
		seen[spec.Name] = true
		// An explicit regime applies to every market; otherwise each
		// market keeps its own default climate.
		lmName := c.RevModel
		if lmName == "" {
			lmName = spec.LifetimeModel
		}
		lm, err := cloud.LookupLifetimeModel(lmName)
		if err != nil {
			return nil, nil, err
		}
		markets = append(markets, marketPlan{spec: spec, lm: lm})
	}
	if err := c.Workload.Validate(); err != nil {
		return nil, nil, err
	}
	if _, err := manager.ElasticPolicyByName(c.Elastic); err != nil {
		return nil, nil, err
	}
	if c.HorizonHours < 0 {
		return nil, nil, fmt.Errorf("fleet: negative horizon")
	}
	if c.HorizonHours == 0 {
		c.HorizonHours = DefaultHorizonHours
	}
	return sched, markets, nil
}

// Validate checks the config without running it — the planner's 400
// path. It works on a copy, so the receiver's zero fields stay zero
// (Key canonicalizes defaults itself).
func (c Config) Validate() error {
	_, _, err := (&c).validate()
	return err
}

// providerNames resolves the configured markets with the default
// applied — the canonical list Key embeds (empty entries mean the
// default market, like everywhere else the name is optional).
func (c Config) providerNames() []string {
	if len(c.Providers) == 0 {
		return []string{cloud.DefaultProviderName}
	}
	out := make([]string, len(c.Providers))
	for i, name := range c.Providers {
		if name == "" {
			name = cloud.DefaultProviderName
		}
		out[i] = name
	}
	return out
}

// schedulerName resolves the config's scheduler with the default
// applied — the canonical form Key embeds.
func (c Config) schedulerName() string {
	if c.Scheduler == "" {
		return DefaultSchedulerName
	}
	return c.Scheduler
}

// elasticName resolves the config's elastic policy with the default
// applied — the canonical form Key embeds.
func (c Config) elasticName() string {
	if c.Elastic == "" {
		return "static"
	}
	return c.Elastic
}

// revModelName resolves the config's revocation model with the
// default applied: an explicit name, or the first market's default
// regime (the Table V default for the default market).
func (c Config) revModelName() string {
	if c.RevModel != "" {
		return c.RevModel
	}
	if spec, err := cloud.LookupProvider(c.providerNames()[0]); err == nil {
		return spec.LifetimeModel
	}
	return cloud.DefaultLifetimeModelName
}

// Key is the fleet config's canonical identity: a stable field=value
// encoding, independent of how the config was phrased, that the
// planner's result cache keys on (plus the simulation seed). It lives
// in the same cache namespace as single-scenario keys; the "fleet|"
// prefix keeps the two families disjoint (scenario keys start with
// "model=").
func (c Config) Key() string {
	w := c.Workload
	arrival := w.Arrival
	if arrival == "" {
		arrival = ArrivalPoisson
	}
	ic := w.CheckpointInterval
	if ic == 0 {
		ic = 1000
	}
	horizon := c.HorizonHours
	if horizon == 0 {
		horizon = DefaultHorizonHours
	}
	return fmt.Sprintf("fleet|sched=%s|prov=%s|rev=%s|arrival=%s|rate=%g|jobs=%d|spw=%d|ic=%d|cap=%s|elastic=%s|horizon=%g|wseed=%d",
		c.schedulerName(), strings.Join(c.providerNames(), "+"), c.revModelName(), arrival,
		w.RatePerHour, w.Jobs, w.StepsPerWorker, ic,
		c.Capacity.Canonical(), c.elasticName(), horizon, c.WorkloadSeed)
}

// JobResult is one job's outcome.
type JobResult struct {
	ID            int     `json:"id"`
	Label         string  `json:"label"`
	Workers       int     `json:"workers"`
	Steps         int64   `json:"steps"`
	ArrivalHours  float64 `json:"arrival_hours"`
	DeadlineHours float64 `json:"deadline_hours"`
	BudgetUSD     float64 `json:"budget_usd"`
	// Placement is where the scheduler ran the job; empty if it was
	// still queued at the horizon.
	Placement string `json:"placement,omitempty"`
	// WaitHours is time spent queued before admission (or until the
	// horizon, for jobs never admitted).
	WaitHours float64 `json:"wait_hours"`
	Done      bool    `json:"done"`
	// EndHours is the completion time; 0 for unfinished jobs.
	EndHours     float64 `json:"end_hours,omitempty"`
	DeadlineMet  bool    `json:"deadline_met"`
	CostUSD      float64 `json:"cost_usd"`
	OverBudget   bool    `json:"over_budget"`
	Revocations  int     `json:"revocations"`
	Replacements int     `json:"replacements"`
}

// Result is one fleet run: per-job outcomes in arrival order plus the
// aggregates the scheduler comparison ranks on.
type Result struct {
	Scheduler string      `json:"scheduler"`
	Providers []string    `json:"providers"`
	RevModel  string      `json:"rev_model"`
	Capacity  string      `json:"capacity"`
	Jobs      []JobResult `json:"jobs"`

	Completed      int     `json:"completed"`
	DeadlineMisses int     `json:"deadline_misses"`
	OverBudgetJobs int     `json:"over_budget_jobs"`
	MakespanHours  float64 `json:"makespan_hours"`
	MeanWaitHours  float64 `json:"mean_wait_hours"`
	TotalCostUSD   float64 `json:"total_cost_usd"`
	Revocations    int     `json:"revocations"`

	// PeakInUse is each cell's maximum concurrent transient occupancy
	// over the run (keyed "region/GPU"), reconstructed from the
	// instance record — pool utilization for the operator, and the
	// observable the capacity property test pins: no constrained cell
	// may ever exceed its configured slots.
	PeakInUse map[string]int `json:"peak_in_use,omitempty"`
}

// jobState tracks one job through the run.
type jobState int

const (
	jobWaiting jobState = iota + 1
	jobRunning
	jobFinished
)

// Job is a workload entry plus its scheduling state; schedulers see
// the queue as []*Job and read Spec.
type Job struct {
	Spec JobSpec

	state      jobState
	placement  Placement
	admittedAt sim.Time
	endedAt    sim.Time
	sess       *manager.Session
}

// fleetMarket is one provider market of the fleet: a named
// cloud.Provider on the shared kernel.
type fleetMarket struct {
	name     string
	provider *cloud.Provider
}

// fleetSim is the run's mutable state; everything happens on the one
// simulation thread.
type fleetSim struct {
	cfg     Config
	k       *sim.Kernel
	markets []fleetMarket
	sched   Scheduler
	seed    int64

	jobs  []*Job
	queue []*Job

	// history accumulates the run's own observations (completed-job
	// rates, startups, revocations) for history-aware schedulers; the
	// kernel appends passively in event order, so it never perturbs
	// the rng streams and history-blind policies stay byte-identical.
	history *History

	// wake is the pending time-driven admission re-check, for
	// schedulers implementing Waker; at most one is scheduled at a
	// time (the earliest requested).
	wake   sim.Handle
	wakeAt sim.Time

	admitting bool
	err       error

	// trace, when non-nil, receives the run's sim-plane timeline: the
	// fleet's own job lifecycle events plus each job session's events
	// under a "jobN" scope.
	trace *obs.Recorder
}

// marketFor resolves a placement's market name; empty means the first
// (default) market.
func (f *fleetSim) marketFor(name string) *fleetMarket {
	if name == "" {
		return &f.markets[0]
	}
	for i := range f.markets {
		if f.markets[i].name == name {
			return &f.markets[i]
		}
	}
	return nil
}

// marketView adapts the fleet's markets to the scheduler's read-only
// window: the embedded PoolView methods read the first (default)
// market, so single-market policies behave exactly as they did before
// the provider axis existed; MarketView methods see every market.
type marketView struct{ f *fleetSim }

func (v marketView) Offers(r cloud.Region, g model.GPU) bool {
	return v.f.markets[0].provider.Spec().Offers(r, g)
}
func (v marketView) Available(r cloud.Region, g model.GPU) int {
	return v.f.markets[0].provider.TransientAvailable(r, g)
}
func (v marketView) NowHours() float64 { return v.f.k.Now().Hours() }

func (v marketView) Markets() []string {
	names := make([]string, len(v.f.markets))
	for i, m := range v.f.markets {
		names[i] = m.name
	}
	return names
}
func (v marketView) MarketSpec(market string) *cloud.ProviderSpec {
	if m := v.f.marketFor(market); m != nil {
		return m.provider.Spec()
	}
	return nil
}
func (v marketView) MarketAvailable(market string, r cloud.Region, g model.GPU) int {
	if m := v.f.marketFor(market); m != nil {
		return m.provider.TransientAvailable(r, g)
	}
	return 0
}
func (v marketView) MarketChurning(market string, r cloud.Region) bool {
	if m := v.f.marketFor(market); m != nil {
		return m.provider.Churning(r)
	}
	return false
}
func (v marketView) Observed() *History { return v.f.history }

// Run simulates the fleet: jobs arrive on the virtual clock, the
// scheduler admits them against the shared capacity-constrained pool,
// each admitted job runs as a full managed session (replacements,
// checkpoints, churn — everything the single-job layers model), and
// revocations anywhere re-open admission everywhere. The result is a
// pure function of (cfg, seed): one kernel, one thread, no wall-clock
// input.
func Run(cfg Config, seed int64) (*Result, error) {
	return RunTraced(cfg, seed, nil)
}

// RunTraced is Run with a sim-plane trace recorder attached (nil means
// untraced — identical to Run). Recording draws no randomness and
// schedules no events, so the Result is byte-identical either way.
func RunTraced(cfg Config, seed int64, rec *obs.Recorder) (*Result, error) {
	sched, plans, err := cfg.validate()
	if err != nil {
		return nil, err
	}
	names := cfg.providerNames()
	k := &sim.Kernel{}
	f := &fleetSim{cfg: cfg, k: k, sched: sched, seed: seed, history: &History{}, trace: rec}
	for i, plan := range plans {
		// The first market draws from stats.NewRng(seed) directly — the
		// exact stream the pre-market fleet used, so single-market runs
		// stay byte-identical. Further markets get independent derived
		// streams so adding a market never perturbs the first.
		rng := stats.NewRng(seed)
		if i > 0 {
			rng = stats.NewRng(campaign.Derive(seed, uint64(i), "fleet/market/"+names[i]))
		}
		provider := cloud.NewProviderFor(k, rng, plan.spec, plan.lm)
		if cfg.Capacity != nil {
			// An explicit fleet capacity bounds every market's pool
			// cell-for-cell (a nil one keeps each spec's own default,
			// which NewProviderFor already installed).
			provider.SetTransientCapacity(cfg.Capacity)
		}
		provider.SetCapacityFreedHook(func(cloud.PoolKey) { f.admit() })
		f.markets = append(f.markets, fleetMarket{name: names[i], provider: provider})
	}

	wseed := cfg.WorkloadSeed
	if wseed == 0 {
		wseed = campaign.Derive(seed, 0, "fleet/workload")
	}
	specs, err := cfg.Workload.Generate(stats.NewRng(wseed))
	if err != nil {
		return nil, err
	}

	horizon := sim.Time(cfg.HorizonHours * 3600)
	for i := range specs {
		job := &Job{Spec: specs[i], state: jobWaiting}
		f.jobs = append(f.jobs, job)
		if at := sim.Time(job.Spec.ArrivalSeconds); at <= horizon {
			k.At(at, func() { f.arrive(job) })
		}
	}
	k.RunUntil(horizon)
	if f.err != nil {
		return nil, f.err
	}
	return f.result(), nil
}

// arrive queues a job and tries admission.
func (f *fleetSim) arrive(job *Job) {
	if f.err != nil {
		return
	}
	f.queue = append(f.queue, job)
	f.trace.Record(obs.Event{
		T:      f.k.Now().Seconds(),
		Kind:   "job-arrive",
		Detail: job.Spec.Label(),
	})
	f.admit()
}

// admit drains the scheduler: ask for one pick at a time, start it,
// re-ask — every start consumes capacity synchronously, so each pick
// sees the true remaining pool. The guard flattens re-entrant calls
// (capacity freed while a session is being assembled) into the running
// loop.
func (f *fleetSim) admit() {
	if f.admitting || f.err != nil {
		return
	}
	f.admitting = true
	defer func() { f.admitting = false }()
	for len(f.queue) > 0 && f.err == nil {
		idx, pl, ok := f.sched.Pick(f.queue, marketView{f})
		if !ok {
			break
		}
		if idx < 0 || idx >= len(f.queue) {
			f.err = fmt.Errorf("fleet: scheduler %q picked queue index %d of %d", f.sched.Name(), idx, len(f.queue))
			return
		}
		job := f.queue[idx]
		f.queue = append(f.queue[:idx], f.queue[idx+1:]...)
		f.start(job, pl)
	}
	f.scheduleWake()
}

// wakeSlackSeconds pads a Waker's requested re-check past the exact
// threshold moment. The scheduler's "is it time yet" test recomputes
// hours from the kernel's seconds (now = t/3600), which can round to
// just below the requested hours at the requested instant — the wake
// would fire, decline, and every re-arm path would refuse (the moment
// is no longer ahead), silently dropping the fallback. One virtual
// second dwarfs any float64 rounding and costs nothing.
const wakeSlackSeconds = 1

// scheduleWake arms a time-driven admission re-check for schedulers
// whose decisions change with the clock alone (Waker): without it, a
// policy like deadline-aware's on-demand fallback would only ever fire
// piggybacked on an unrelated arrival, finish, or freed slot, and a
// quiet queue would starve past its deadlines.
func (f *fleetSim) scheduleWake() {
	if f.err != nil || len(f.queue) == 0 {
		return
	}
	w, ok := f.sched.(Waker)
	if !ok {
		return
	}
	hours, ok := w.NextWakeHours(f.queue, marketView{f})
	if !ok {
		return
	}
	at := sim.Time(hours*3600) + wakeSlackSeconds
	if at <= f.k.Now() {
		return // contract violation; refuse to busy-loop the kernel
	}
	if f.wake.Pending() && f.wakeAt <= at {
		return // an earlier (or equal) re-check is already armed
	}
	f.wake.Cancel()
	f.wakeAt = at
	f.wake = f.k.At(at, func() {
		f.wake = sim.Handle{}
		f.admit()
	})
}

// start turns an admitted job into a managed session on the shared
// provider.
func (f *fleetSim) start(job *Job, pl Placement) {
	mk := f.marketFor(pl.Market)
	if mk == nil {
		f.err = fmt.Errorf("fleet: scheduler %q placed %s in unknown market %q (markets: %v)",
			f.sched.Name(), job.Spec.Label(), pl.Market, f.cfg.providerNames())
		return
	}
	placements := make([]manager.Placement, job.Spec.Workers)
	for i := range placements {
		placements[i] = manager.Placement{GPU: pl.GPU, Region: pl.Region, Tier: pl.Tier}
	}
	mcfg := manager.Config{
		Model:              job.Spec.Model,
		Workers:            placements,
		TargetSteps:        job.Spec.Steps,
		CheckpointInterval: job.Spec.CheckpointInterval,
		Seed:               campaign.Derive(f.seed, uint64(job.Spec.ID), "fleet/job"),
		Trace:              f.trace.Scoped(fmt.Sprintf("job%d", job.Spec.ID)),
	}
	if name := f.cfg.elasticName(); name != "static" {
		mcfg.Elastic = name
		mcfg.Risk = historyRisk{hist: f.history, market: mk.name}
	}
	sess, err := manager.NewSession(mk.provider, mcfg)
	if err != nil {
		// Admission checked capacity, so this is a scheduler handing
		// out an infeasible placement — fail the run loudly rather
		// than silently dropping the job.
		f.err = fmt.Errorf("fleet: scheduler %q placed %s at %s: %w", f.sched.Name(), job.Spec.Label(), pl.Label(), err)
		return
	}
	job.state = jobRunning
	job.placement = pl
	job.admittedAt = f.k.Now()
	job.sess = sess
	f.trace.Record(obs.Event{
		T:      f.k.Now().Seconds(),
		Kind:   "job-place",
		Detail: fmt.Sprintf("%s @ %s", job.Spec.Label(), pl.Label()),
	})
	sess.Cluster().WhenStep(job.Spec.Steps, func() { f.finish(job) })
}

// finish records a completed job and re-opens admission (its
// termination freed transient slots; for an on-demand fallback job the
// pool is unchanged but re-asking is harmless).
func (f *fleetSim) finish(job *Job) {
	job.state = jobFinished
	job.endedAt = f.k.Now()
	f.trace.Record(obs.Event{
		T:      f.k.Now().Seconds(),
		Kind:   "job-done",
		Detail: job.Spec.Label(),
	})
	f.observe(job)
	f.admit()
}

// observe folds a finished job into the run's history: the realized
// per-job training rate plus per-instance startup and lifetime
// samples swept from the session's record. The manager's own
// WhenStep(TargetSteps) registers first, so by the time this fires
// every owned instance is terminal and the samples are final.
func (f *fleetSim) observe(job *Job) {
	mk := f.marketFor(job.placement.Market)
	if mk == nil || job.sess == nil {
		return
	}
	f.history.recordCompleted(CompletedJob{
		Market:     mk.name,
		GPU:        job.placement.GPU,
		Tier:       job.placement.Tier,
		GFLOPs:     job.Spec.Model.GFLOPs,
		Workers:    job.Spec.Workers,
		Steps:      job.Spec.Steps,
		TrainHours: job.sess.TrainingSeconds() / 3600,
	})
	for _, in := range job.sess.Instances() {
		if in.GPU == 0 {
			continue // parameter servers carry no GPU-market signal
		}
		if in.RunningAt > in.RequestedAt {
			f.history.recordStartup(StartupSample{
				Market:  mk.name,
				Region:  in.Region,
				GPU:     in.GPU,
				Tier:    in.Tier,
				Seconds: float64(in.RunningAt - in.RequestedAt),
			})
		}
		if in.Tier == cloud.Transient {
			f.history.recordExposure(mk.name, in.Region, in.GPU,
				in.LifetimeSeconds(f.k.Now())/3600, in.WasRevoked())
		}
	}
}

// result assembles per-job outcomes and aggregates.
func (f *fleetSim) result() *Result {
	horizon := f.cfg.HorizonHours
	res := &Result{
		Scheduler: f.cfg.schedulerName(),
		Providers: f.cfg.providerNames(),
		RevModel:  f.cfg.revModelName(),
		Capacity:  f.cfg.Capacity.Canonical(),
	}
	var waitSum, makespan float64
	for _, job := range f.jobs {
		jr := JobResult{
			ID:            job.Spec.ID,
			Label:         job.Spec.Label(),
			Workers:       job.Spec.Workers,
			Steps:         job.Spec.Steps,
			ArrivalHours:  job.Spec.ArrivalSeconds / 3600,
			DeadlineHours: job.Spec.DeadlineHours,
			BudgetUSD:     job.Spec.BudgetUSD,
		}
		switch job.state {
		case jobWaiting:
			jr.WaitHours = horizon - jr.ArrivalHours
			if jr.WaitHours < 0 {
				jr.WaitHours = 0 // arrived after the horizon
			}
		default:
			jr.Placement = job.placement.Label()
			jr.WaitHours = job.admittedAt.Hours() - jr.ArrivalHours
			jr.CostUSD = job.sess.Cost()
			jr.Revocations = job.sess.Revocations()
			jr.Replacements = job.sess.Replacements()
			jr.OverBudget = jr.CostUSD > jr.BudgetUSD
			if job.state == jobFinished {
				jr.Done = true
				jr.EndHours = job.endedAt.Hours()
				jr.DeadlineMet = jr.EndHours <= job.Spec.DeadlineAtHours()
			}
		}
		if jr.Done {
			res.Completed++
			if jr.EndHours > makespan {
				makespan = jr.EndHours
			}
		} else {
			makespan = horizon
		}
		if !jr.DeadlineMet {
			res.DeadlineMisses++
		}
		if jr.OverBudget {
			res.OverBudgetJobs++
		}
		res.Revocations += jr.Revocations
		waitSum += jr.WaitHours
		res.Jobs = append(res.Jobs, jr)
	}
	res.MakespanHours = makespan
	if len(f.jobs) > 0 {
		res.MeanWaitHours = waitSum / float64(len(f.jobs))
	}
	for _, m := range f.markets {
		res.TotalCostUSD += m.provider.TotalCost()
	}
	res.PeakInUse = f.peakInUse()
	return res
}

// peakInUse sweeps each market's instance record for each cell's
// maximum concurrent transient occupancy, counting every server from
// acceptance to its terminal state (the span it holds a pool slot).
// Single-market keys stay bare "region/GPU"; a multi-market fleet
// prefixes them "market:region/GPU" since each market rations its own
// pool.
func (f *fleetSim) peakInUse() map[string]int {
	type edge struct {
		at    sim.Time
		delta int
	}
	type cell struct {
		market string
		key    cloud.PoolKey
	}
	edges := make(map[cell][]edge)
	for _, m := range f.markets {
		market := ""
		if len(f.markets) > 1 {
			market = m.name
		}
		for _, in := range m.provider.Instances() {
			if in.Tier != cloud.Transient || in.GPU == 0 {
				continue
			}
			c := cell{market: market, key: cloud.PoolKey{Region: in.Region, GPU: in.GPU}}
			end := f.k.Now()
			if in.State().Done() {
				end = in.EndedAt
			}
			edges[c] = append(edges[c], edge{in.RequestedAt, +1}, edge{end, -1})
		}
	}
	if len(edges) == 0 {
		return nil
	}
	peaks := make(map[string]int, len(edges))
	for c, es := range edges {
		// Releases sort before acquisitions at equal times: the
		// provider frees a revoked slot before the immediate
		// replacement claims it within the same event.
		sort.Slice(es, func(i, j int) bool {
			if es[i].at != es[j].at {
				return es[i].at < es[j].at
			}
			return es[i].delta < es[j].delta
		})
		cur, peak := 0, 0
		for _, e := range es {
			cur += e.delta
			if cur > peak {
				peak = cur
			}
		}
		name := c.key.String()
		if c.market != "" {
			name = c.market + ":" + name
		}
		peaks[name] = peak
	}
	return peaks
}

// CapacityFromCells parses "region/GPU:n" terms (the canonical form
// Capacity.Canonical emits and /v1/fleet accepts) into a Capacity.
func CapacityFromCells(cells map[string]int) (cloud.Capacity, error) {
	if len(cells) == 0 {
		return nil, nil
	}
	cap := make(cloud.Capacity, len(cells))
	for name, n := range cells {
		key, err := cloud.ParsePoolKey(name)
		if err != nil {
			return nil, err
		}
		if n <= 0 {
			return nil, fmt.Errorf("fleet: capacity for %s must be positive, got %d", key, n)
		}
		cap[key] = n
	}
	return cap, nil
}
