package fleet

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"repro/internal/cloud"
	"repro/internal/model"
	"repro/internal/stats"
)

func testWorkload(arrival ArrivalProcess) WorkloadSpec {
	return WorkloadSpec{
		Jobs:               6,
		Arrival:            arrival,
		RatePerHour:        3,
		StepsPerWorker:     2000,
		CheckpointInterval: 1000,
	}
}

// tightCapacity caps every offered cell at n slots.
func tightCapacity(n int) cloud.Capacity {
	cap := cloud.Capacity{}
	for _, g := range model.AllGPUs() {
		for _, r := range cloud.OfferedRegions(g) {
			cap[cloud.PoolKey{Region: r, GPU: g}] = n
		}
	}
	return cap
}

func TestWorkloadGenerationIsDeterministic(t *testing.T) {
	for _, arrival := range ArrivalProcesses() {
		spec := testWorkload(arrival)
		a, err := spec.Generate(stats.NewRng(7))
		if err != nil {
			t.Fatal(err)
		}
		b, err := spec.Generate(stats.NewRng(7))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%s: same seed produced different job streams", arrival)
		}
		c, _ := spec.Generate(stats.NewRng(8))
		if reflect.DeepEqual(a, c) {
			t.Fatalf("%s: different seeds produced identical job streams", arrival)
		}
		last := 0.0
		for i, j := range a {
			if j.ID != i {
				t.Fatalf("job %d has ID %d", i, j.ID)
			}
			if j.ArrivalSeconds <= last {
				t.Fatalf("job %d arrival %.1f not after %.1f", i, j.ArrivalSeconds, last)
			}
			last = j.ArrivalSeconds
			if j.DeadlineHours <= 0 || j.BudgetUSD <= 0 || j.Steps <= 0 {
				t.Fatalf("job %d has degenerate deadline/budget/steps: %+v", i, j)
			}
		}
	}
}

func TestWorkloadValidation(t *testing.T) {
	bad := []WorkloadSpec{
		{},
		{Jobs: 1, RatePerHour: -1, StepsPerWorker: 10},
		{Jobs: 1, RatePerHour: 1},
		{Jobs: 1, RatePerHour: 1, StepsPerWorker: 10, Arrival: "fractal"},
		{Jobs: 1, RatePerHour: 1, StepsPerWorker: 10, CheckpointInterval: -1},
	}
	for i, w := range bad {
		if _, err := w.Generate(stats.NewRng(1)); err == nil {
			t.Errorf("case %d: invalid workload accepted: %+v", i, w)
		}
	}
}

func TestSchedulerRegistry(t *testing.T) {
	names := SchedulerNames()
	if len(names) < 3 {
		t.Fatalf("want at least 3 registered schedulers, have %v", names)
	}
	if names[0] != DefaultSchedulerName {
		t.Fatalf("default %q must list first, got %v", DefaultSchedulerName, names)
	}
	for _, want := range []string{"fifo", "cost-greedy", "deadline-aware"} {
		if _, err := LookupScheduler(want); err != nil {
			t.Errorf("builtin %q missing: %v", want, err)
		}
	}
	if s, err := LookupScheduler(""); err != nil || s.Name() != DefaultSchedulerName {
		t.Fatalf("empty name should resolve the default, got %v, %v", s, err)
	}
	if _, err := LookupScheduler("round-robin-3000"); err == nil {
		t.Fatal("unknown scheduler should not resolve")
	}
	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("re-registering a builtin name must panic (first come wins)")
			}
			if msg := fmt.Sprint(r); !strings.Contains(msg, `"fifo"`) {
				t.Fatalf("duplicate-registration panic %q does not name the offender", msg)
			}
		}()
		RegisterScheduler(fifoScheduler{})
	}()
}

func TestRunIsDeterministic(t *testing.T) {
	cfg := Config{
		Workload:     testWorkload(ArrivalPoisson),
		Scheduler:    "cost-greedy",
		Capacity:     tightCapacity(4),
		HorizonHours: 24,
	}
	a, err := Run(cfg, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg, 42)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same (config, seed) produced different fleet results")
	}
	c, err := Run(cfg, 43)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical fleet results")
	}
}

// TestPoolCapacityNeverExceeded is the fleet's safety property: under
// every scheduler and heavy contention, no constrained cell's
// concurrent occupancy may ever exceed its configured slots. PeakInUse
// reconstructs occupancy from the full instance record, so a single
// overdraft anywhere in the run would surface.
func TestPoolCapacityNeverExceeded(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-scheduler fleet campaign in -short mode")
	}
	cap := tightCapacity(2)
	for _, sched := range SchedulerNames() {
		for _, seed := range []int64{1, 2, 3} {
			cfg := Config{
				Workload:     testWorkload(ArrivalBursty),
				Scheduler:    sched,
				Capacity:     cap,
				HorizonHours: 24,
			}
			res, err := Run(cfg, seed)
			if err != nil {
				t.Fatalf("%s seed %d: %v", sched, seed, err)
			}
			for cell, peak := range res.PeakInUse {
				key, err := cloud.ParsePoolKey(cell)
				if err != nil {
					t.Fatalf("unparseable peak cell %q", cell)
				}
				if limit := cap[key]; limit > 0 && peak > limit {
					t.Errorf("%s seed %d: cell %s peaked at %d with capacity %d", sched, seed, cell, peak, limit)
				}
			}
		}
	}
}

// TestFifoHeadOfLineBlocks pins the baseline's defining pathology: a
// head job that fits nowhere blocks the whole queue, even when later
// jobs would fit.
func TestFifoHeadOfLineBlocks(t *testing.T) {
	cell := cloud.PoolKey{Region: cloud.USCentral1, GPU: model.K80}
	pool := fakePool{avail: map[cloud.PoolKey]int{cell: 2}}
	big := &Job{Spec: JobSpec{ID: 0, Model: model.ResNet15(), GPU: model.K80, Workers: 4, Steps: 100}}
	small := &Job{Spec: JobSpec{ID: 1, Model: model.ResNet15(), GPU: model.K80, Workers: 1, Steps: 100}}
	s, err := LookupScheduler("fifo")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok := s.Pick([]*Job{big, small}, pool); ok {
		t.Fatal("fifo admitted past a blocked head")
	}
	if idx, pl, ok := s.Pick([]*Job{small, big}, pool); !ok || idx != 0 || pl.Tier != cloud.Transient {
		t.Fatalf("fifo refused a feasible head: idx=%d pl=%v ok=%v", idx, pl, ok)
	}
}

// fakePool is a PoolView where only the listed cells have capacity;
// every other cell is full (0 free).
type fakePool struct {
	avail map[cloud.PoolKey]int
	now   float64
}

func (f fakePool) Offers(r cloud.Region, g model.GPU) bool { return cloud.Offered(r, g) }

func (f fakePool) Available(r cloud.Region, g model.GPU) int {
	if n, ok := f.avail[cloud.PoolKey{Region: r, GPU: g}]; ok {
		return n
	}
	return 0
}
func (f fakePool) NowHours() float64 { return f.now }

// TestDeadlineAwareFallsBackToOnDemand pins the escape hatch: with no
// transient room anywhere and the deadline closing in, the most urgent
// job starts on-demand instead of waiting forever.
func TestDeadlineAwareFallsBackToOnDemand(t *testing.T) {
	s, err := LookupScheduler("deadline-aware")
	if err != nil {
		t.Fatal(err)
	}
	job := &Job{Spec: JobSpec{ID: 0, Model: model.ResNet15(), GPU: model.K80, Workers: 1, Steps: 34000}}
	job.Spec.DeadlineHours = job.Spec.OptimisticHours(model.K80) * 2
	pool := fakePool{avail: map[cloud.PoolKey]int{}} // everything full

	// Far from the deadline: keep waiting for a transient slot.
	if _, _, ok := s.Pick([]*Job{job}, pool); ok {
		t.Fatal("fell back to on-demand with plenty of slack")
	}
	// Past the last responsible moment: buy on-demand.
	pool.now = job.Spec.DeadlineAtHours() - job.Spec.OptimisticHours(model.K80)*1.05
	idx, pl, ok := s.Pick([]*Job{job}, pool)
	if !ok || idx != 0 || pl.Tier != cloud.OnDemand {
		t.Fatalf("no on-demand fallback at the last responsible moment: idx=%d pl=%v ok=%v", idx, pl, ok)
	}
}

// TestDeadlineFallbackFiresOnAQuietQueue is the regression test for
// the time-driven wake-up: with every cell capped at 2 slots, a
// 4-worker job fits no transient cell, and once arrivals stop nothing
// else re-opens admission — only the Waker re-check can start it
// on-demand. Before the wake-up existed such jobs sat queued past
// their deadlines until the horizon.
func TestDeadlineFallbackFiresOnAQuietQueue(t *testing.T) {
	// Several workload seeds, each containing at least one 4-worker
	// job, so the assertion cannot pass on one seed's favorable float
	// rounding at the wake boundary.
	for _, wseed := range []int64{1, 2, 3, 9} {
		cfg := Config{
			Workload:     WorkloadSpec{Jobs: 3, RatePerHour: 6, StepsPerWorker: 2000},
			Scheduler:    "deadline-aware",
			Capacity:     tightCapacity(2),
			HorizonHours: 48,
			WorkloadSeed: wseed,
		}
		res, err := Run(cfg, 1)
		if err != nil {
			t.Fatal(err)
		}
		fourWorker := 0
		for _, jr := range res.Jobs {
			if jr.Workers != 4 {
				continue
			}
			fourWorker++
			if !jr.Done {
				t.Errorf("wseed %d: %s never ran: the on-demand fallback did not fire on a quiet queue", wseed, jr.Label)
				continue
			}
			if !strings.Contains(jr.Placement, "on-demand") {
				t.Errorf("wseed %d: %s ran as %q, want an on-demand fallback placement", wseed, jr.Label, jr.Placement)
			}
			if jr.EndHours >= cfg.HorizonHours {
				t.Errorf("wseed %d: %s only finished at the horizon", wseed, jr.Label)
			}
		}
		if fourWorker == 0 {
			t.Errorf("wseed %d: workload has no 4-worker job; the test lost its teeth", wseed)
		}
	}
}

func TestConfigKeyCanonicalizesDefaults(t *testing.T) {
	implicit := Config{Workload: WorkloadSpec{Jobs: 4, RatePerHour: 2, StepsPerWorker: 100}}
	explicit := Config{
		Workload: WorkloadSpec{
			Jobs: 4, RatePerHour: 2, StepsPerWorker: 100,
			Arrival: ArrivalPoisson, CheckpointInterval: 1000,
		},
		Scheduler:    DefaultSchedulerName,
		RevModel:     cloud.DefaultLifetimeModelName,
		HorizonHours: DefaultHorizonHours,
	}
	if implicit.Key() != explicit.Key() {
		t.Fatalf("implicit defaults key %q != explicit defaults key %q", implicit.Key(), explicit.Key())
	}
	other := explicit
	other.Scheduler = "cost-greedy"
	if other.Key() == explicit.Key() {
		t.Fatal("different schedulers share a key")
	}
	if !strings.HasPrefix(explicit.Key(), "fleet|") {
		t.Fatalf("fleet keys must carry the fleet| namespace prefix, got %q", explicit.Key())
	}

	// The provider axis canonicalizes like every other default: an
	// implicit market list and the explicit default market share one
	// cache line, and a multi-market fleet occupies another.
	oneMarket := implicit
	oneMarket.Providers = []string{cloud.DefaultProviderName}
	if oneMarket.Key() != implicit.Key() {
		t.Fatalf("explicit default market key %q != implicit key %q", oneMarket.Key(), implicit.Key())
	}
	if !strings.Contains(implicit.Key(), "|prov="+cloud.DefaultProviderName+"|") {
		t.Fatalf("fleet key does not embed the provider axis: %q", implicit.Key())
	}
	multi := implicit
	multi.Providers = []string{"gce", "aws"}
	if multi.Key() == implicit.Key() {
		t.Fatal("multi-market fleet shares the single-market key")
	}
	if !strings.Contains(multi.Key(), "prov=gce+aws") {
		t.Fatalf("multi-market key does not list its markets in order: %q", multi.Key())
	}

	// Capacity renders canonically regardless of map insertion order.
	c1 := Config{Workload: implicit.Workload, Capacity: cloud.Capacity{
		{Region: cloud.USWest1, GPU: model.V100}: 2,
		{Region: cloud.USEast1, GPU: model.K80}:  4,
	}}
	c2 := Config{Workload: implicit.Workload, Capacity: cloud.Capacity{
		{Region: cloud.USEast1, GPU: model.K80}:  4,
		{Region: cloud.USWest1, GPU: model.V100}: 2,
	}}
	if c1.Key() != c2.Key() {
		t.Fatal("capacity map order leaked into the key")
	}
	if !strings.Contains(c1.Key(), "cap=us-east1/K80:4,us-west1/V100:2") {
		t.Fatalf("capacity not canonical in key: %q", c1.Key())
	}
}

func TestRunRejectsBadConfigs(t *testing.T) {
	good := Config{Workload: testWorkload(ArrivalPoisson)}
	cases := []func(*Config){
		func(c *Config) { c.Scheduler = "nope" },
		func(c *Config) { c.RevModel = "nope" },
		func(c *Config) { c.HorizonHours = -1 },
		func(c *Config) { c.Workload.Jobs = 0 },
	}
	for i, mutate := range cases {
		cfg := good
		mutate(&cfg)
		if _, err := Run(cfg, 1); err == nil {
			t.Errorf("case %d: invalid config ran", i)
		}
	}
}

// narrowPool is a fakePool whose catalog can exclude a GPU class from
// every region — the shape serverless-style markets present to
// single-market schedulers.
type narrowPool struct {
	fakePool
	offered map[model.GPU]bool
}

func (n narrowPool) Offers(r cloud.Region, g model.GPU) bool {
	return n.offered[g] && cloud.Offered(r, g)
}

// TestDeadlineWakeSkipsUnplaceableJobs is the regression test for the
// wake-up/fallback mismatch: NextWakeHours used to return wake times
// for jobs whose requested GPU class is offered in no region, even
// though Pick's on-demand fallback skips exactly those jobs — the
// fleet would arm a re-check that provably changes nothing.
func TestDeadlineWakeSkipsUnplaceableJobs(t *testing.T) {
	s, err := LookupScheduler("deadline-aware")
	if err != nil {
		t.Fatal(err)
	}
	w, ok := s.(Waker)
	if !ok {
		t.Fatal("deadline-aware no longer implements Waker")
	}
	mkJob := func(id int, g model.GPU) *Job {
		job := &Job{Spec: JobSpec{ID: id, Model: model.ResNet15(), GPU: g, Workers: 1, Steps: 34000}}
		job.Spec.DeadlineHours = job.Spec.OptimisticHours(g) * 3
		return job
	}
	// A market that sells K80s but no V100s anywhere, with no transient
	// room in any cell.
	pool := narrowPool{offered: map[model.GPU]bool{model.K80: true}}

	// A queue holding only the unplaceable job must arm no wake-up.
	unplaceable := mkJob(0, model.V100)
	if at, ok := w.NextWakeHours([]*Job{unplaceable}, pool); ok {
		t.Fatalf("armed a wake-up at %gh for a job Pick can never place", at)
	}

	// Mixed queue: the wake time must be the placeable job's last
	// responsible moment, not the unplaceable one's (which is earlier
	// here because its deadline is tighter).
	placeable := mkJob(1, model.K80)
	tight := mkJob(2, model.V100)
	tight.Spec.DeadlineHours = tight.Spec.OptimisticHours(model.V100) * 1.6
	placeableAt := placeable.Spec.DeadlineAtHours() - placeable.Spec.OptimisticHours(model.K80)*onDemandSlackFactor
	tightAt := tight.Spec.DeadlineAtHours() - tight.Spec.OptimisticHours(model.V100)*onDemandSlackFactor
	if tightAt >= placeableAt {
		t.Fatalf("test lost its teeth: unplaceable moment %gh is not ahead of placeable %gh", tightAt, placeableAt)
	}
	at, ok := w.NextWakeHours([]*Job{placeable, tight}, pool)
	if !ok {
		t.Fatal("no wake-up for a placeable job with a pending fallback")
	}
	if at != placeableAt {
		t.Fatalf("wake at %gh, want the placeable job's moment %gh", at, placeableAt)
	}
}
