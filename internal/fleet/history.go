package fleet

import (
	"math"

	"repro/internal/cloud"
	"repro/internal/model"
	"repro/internal/regress"
	"repro/internal/stats"
)

// logGFLOPs compresses the model-complexity feature: the zoo spans
// two orders of magnitude and the step-time curves are much closer to
// linear in log space, which keeps the one-feature fits sane.
func logGFLOPs(g float64) float64 {
	if g <= 0 {
		return 0
	}
	return math.Log(g)
}

// History is the fleet kernel's observation log: what the run has
// actually measured about its own markets so far. The kernel appends
// to it in event order on the single simulation thread — completed
// jobs as each finishes, startup and revocation samples swept from the
// finished session's instance record — so the log is a pure function
// of (config, seed) and any scheduler reading it stays deterministic.
// It is the data side of the paper's CM-DARE loop (§V): observables
// collected while training feed the regression models that steer the
// next placement.
type History struct {
	completed []CompletedJob
	startups  []StartupSample
	revoked   []RevocationSample
	// exposure accumulates transient instance-hours per (market,
	// region), the denominator of the observed revocation rate.
	exposure map[marketRegion]float64
	revCount map[marketRegion]int

	// fits memoizes fitted rate models per (market, GPU, tier, sample
	// count); a new completion changes the count and invalidates the
	// stale model, so memoization never alters results — only cost.
	fits map[rateFitKey]*rateModel
}

// CompletedJob is one finished job's realized training outcome.
type CompletedJob struct {
	Market  string
	GPU     model.GPU
	Tier    cloud.Tier
	GFLOPs  float64
	Workers int
	Steps   int64
	// TrainHours spans training start to target, inclusive of
	// checkpoint stalls and revocation recoveries — the effective
	// duration a deployment decision actually pays for.
	TrainHours float64
}

// PerWorkerRate is the observed effective per-worker training rate in
// steps/second, the target variable of the history-fed speed model.
func (c CompletedJob) PerWorkerRate() float64 {
	if c.TrainHours <= 0 || c.Workers <= 0 {
		return 0
	}
	return float64(c.Steps) / (c.TrainHours * 3600) / float64(c.Workers)
}

// StartupSample is one worker instance's observed request→running
// time (the paper's Tp, §V-B).
type StartupSample struct {
	Market  string
	Region  cloud.Region
	GPU     model.GPU
	Tier    cloud.Tier
	Seconds float64
}

// RevocationSample is one observed worker revocation with the
// instance's realized lifetime (§V-C's observable).
type RevocationSample struct {
	Market        string
	Region        cloud.Region
	GPU           model.GPU
	LifetimeHours float64
}

type marketRegion struct {
	market string
	region cloud.Region
}

type rateFitKey struct {
	market string
	gpu    model.GPU
	tier   cloud.Tier
	n      int
}

// Sample-count thresholds for the staged estimator ladder: below
// minRateSamples the predictive scheduler stays on the analytic
// core.Predictor; from minRateSamples a linear fit on log-complexity
// takes over (the paper's univariate S = a·C + b family); from
// svrRateSamples the paper-grid SVR (C ∈ [10,100], ε ∈ [0.01,0.1],
// chosen by k-fold MAE exactly as §III-B) replaces it.
const (
	minRateSamples    = 4
	svrRateSamples    = 8
	minStartupSamples = 3
	// minRevExposureHours is the least transient instance-hours a
	// (market, region) must have accumulated before its observed
	// revocation rate is trusted over the prior of zero.
	minRevExposureHours = 12.0
)

// CompletedJobs reports how many finished jobs the log holds.
func (h *History) CompletedJobs() int { return len(h.completed) }

// Startups reports how many startup samples the log holds.
func (h *History) Startups() int { return len(h.startups) }

// Revocations reports how many revocation samples the log holds.
func (h *History) Revocations() int { return len(h.revoked) }

// recordCompleted appends one finished job.
func (h *History) recordCompleted(c CompletedJob) {
	if c.TrainHours <= 0 {
		return
	}
	h.completed = append(h.completed, c)
}

// recordStartup appends one worker startup sample.
func (h *History) recordStartup(s StartupSample) {
	if s.Seconds < 0 {
		return
	}
	h.startups = append(h.startups, s)
}

// recordExposure accumulates transient instance-hours, and the
// revocation itself when the instance was revoked.
func (h *History) recordExposure(market string, r cloud.Region, g model.GPU, lifetimeHours float64, revoked bool) {
	if h.exposure == nil {
		h.exposure = map[marketRegion]float64{}
		h.revCount = map[marketRegion]int{}
	}
	key := marketRegion{market, r}
	h.exposure[key] += lifetimeHours
	if revoked {
		h.revCount[key]++
		h.revoked = append(h.revoked, RevocationSample{Market: market, Region: r, GPU: g, LifetimeHours: lifetimeHours})
	}
}

// StartupHours returns the mean observed request→running time for the
// market's tier, in hours, once enough samples exist.
func (h *History) StartupHours(market string, tier cloud.Tier) (float64, bool) {
	var sum float64
	n := 0
	for _, s := range h.startups {
		if s.Market != market || s.Tier != tier {
			continue
		}
		sum += s.Seconds
		n++
	}
	if n < minStartupSamples {
		return 0, false
	}
	return sum / float64(n) / 3600, true
}

// RevocationsPerHour returns the observed revocation rate of the
// (market, region) transient pool — revocations per instance-hour —
// once the region has accumulated enough exposure to trust it.
func (h *History) RevocationsPerHour(market string, r cloud.Region) (float64, bool) {
	key := marketRegion{market, r}
	exp := h.exposure[key]
	if exp < minRevExposureHours {
		return 0, false
	}
	return float64(h.revCount[key]) / exp, true
}

// PerWorkerRate predicts the effective per-worker training rate
// (steps/second) of a job with the given model complexity on (market,
// GPU, tier), fitted from this run's own completed jobs: a linear
// model on log-complexity once minRateSamples completions exist, the
// paper-grid SVR once svrRateSamples do. ok=false before that — the
// caller falls back to the analytic estimator.
func (h *History) PerWorkerRate(market string, g model.GPU, tier cloud.Tier, gflops float64) (float64, bool) {
	var X [][]float64
	var y []float64
	for _, c := range h.completed {
		if c.Market != market || c.GPU != g || c.Tier != tier {
			continue
		}
		rate := c.PerWorkerRate()
		if rate <= 0 {
			continue
		}
		X = append(X, []float64{logGFLOPs(c.GFLOPs)})
		y = append(y, rate)
	}
	if len(y) < minRateSamples {
		return 0, false
	}
	key := rateFitKey{market, g, tier, len(y)}
	m := h.fits[key]
	if m == nil {
		m = fitRateModel(X, y)
		if h.fits == nil {
			h.fits = map[rateFitKey]*rateModel{}
		}
		h.fits[key] = m
	}
	return m.predict(logGFLOPs(gflops)), true
}

// rateModel is one fitted (market, GPU, tier) speed model: a scaler, a
// regressor, and the training mean as the sanity floor extrapolation
// falls back to.
type rateModel struct {
	scaler *regress.MinMaxScaler
	reg    regress.Regressor
	mean   float64
}

func (m *rateModel) predict(logGFLOPs float64) float64 {
	if m.reg != nil {
		if v := m.reg.Predict(m.scaler.Transform([]float64{logGFLOPs})); v > 0 {
			return v
		}
	}
	return m.mean
}

// fitRateModel fits the staged ladder on (min-max scaled
// log-complexity → per-worker rate). Every draw of randomness is a
// pure function of the sample count, so the same history always yields
// the same coefficients — and therefore the same placements.
func fitRateModel(X [][]float64, y []float64) *rateModel {
	m := &rateModel{mean: stats.Mean(y), scaler: &regress.MinMaxScaler{}}
	scaled, err := m.scaler.FitTransform(X)
	if err != nil {
		m.scaler = nil
		return m
	}
	if len(y) >= svrRateSamples {
		k := 5
		if len(y) < k {
			k = len(y)
		}
		rng := stats.NewRng(int64(len(y))*1009 + 17)
		factory, _, _, _, err := regress.GridSearchSVR(regress.RBF{Sigma: 0.5}, regress.PaperSVRGrid(), scaled, y, k, rng)
		if err == nil {
			svr := factory()
			if svr.Fit(scaled, y) == nil {
				m.reg = svr
				return m
			}
		}
	}
	lin := &regress.Linear{}
	if lin.Fit(scaled, y) == nil {
		m.reg = lin
	}
	return m
}
