package fleet

import (
	"sort"
	"sync"

	"repro/internal/cloud"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/train"
)

// predictiveScheduler closes the paper's prediction loop inside the
// fleet: every placement decision is scored by a predicted
// cost-to-deadline, and the predictions themselves improve as the run
// accumulates history. Before enough completions exist the policy
// leans on the analytic Eq. 4/5 predictor (calibrated curves, same
// machinery as pland's /v1/estimate); once a (market, GPU, tier) cell
// has seen minRateSamples finished jobs, a regression fit from the
// run's own observations takes over — linear on log-complexity first,
// the paper-grid SVR (§III-B) once svrRateSamples accumulate.
//
// Policy: earliest-deadline-first over the queue. Each job is quoted
// on every (market, GPU) transient cell with room — region chosen by
// lowest observed revocation rate — and takes the cheapest cell whose
// predicted finish meets its deadline. A job with no feasible
// transient quote waits; once waiting longer than its predicted
// on-demand runtime (with the usual slack factor) would blow the
// deadline, it buys the cheapest on-demand placement predicted to
// meet it — or, past all hope, the one that finishes soonest.
type predictiveScheduler struct{}

func (predictiveScheduler) Name() string { return "predictive" }

// fleetAnalytic is the predictive policy's shared pre-history
// estimator: Eq. 4/5 models fit once per process from the calibrated
// curves, revocation CDFs from deterministic lifetime campaigns over
// every default-catalog (region, GPU) corner. Built under a sync.Once
// and read-only afterwards, so concurrent fleet replications (campaign
// workers) share it safely.
var fleetAnalytic struct {
	once  sync.Once
	err   error
	speed *core.SpeedModel
	ckpt  *core.CheckpointModel
	rev   *core.RevocationEstimator
}

func analyticModels() (*core.SpeedModel, *core.CheckpointModel, *core.RevocationEstimator, error) {
	a := &fleetAnalytic
	a.once.Do(func() {
		var speedObs []core.SpeedObservation
		for _, g := range model.AllGPUs() {
			for _, m := range model.Zoo() {
				speedObs = append(speedObs, core.SpeedObservation{
					GPU: g, GFLOPs: m.GFLOPs, StepSeconds: model.StepTimeModel(g, m),
				})
			}
		}
		speed, err := core.FitSpeedModel(speedObs, core.KindSVRRBF)
		if err != nil {
			a.err = err
			return
		}

		rng := stats.NewRng(3)
		var ckptObs []core.CheckpointObservation
		for _, m := range model.Zoo() {
			for i := 0; i < 5; i++ {
				ckptObs = append(ckptObs, core.CheckpointObservation{
					DataBytes:  m.CkptDataBytes,
					MetaBytes:  m.CkptMetaBytes,
					IndexBytes: m.CkptIndexBytes,
					Seconds:    rng.LogNormal(train.CheckpointSeconds(m), 0.04),
				})
			}
		}
		ckpt, err := core.FitCheckpointModel(ckptObs, core.FeatTotalSize, core.KindSVRRBF)
		if err != nil {
			a.err = err
			return
		}

		// Lifetime campaigns for every default-catalog corner, seeded
		// exactly as pland's lazy per-corner campaigns so both layers
		// answer from the same hazard.
		rev := core.NewRevocationEstimator()
		for _, g := range model.AllGPUs() {
			for _, r := range cloud.AllRegions() {
				if !cloud.Offered(r, g) {
					continue
				}
				k := &sim.Kernel{}
				p := cloud.NewProvider(k, stats.NewRng(int64(g)*11+int64(r)*101))
				for i := 0; i < 300; i++ {
					g := g
					k.At(sim.Time(float64(i%24)*3600), func() {
						p.MustLaunch(cloud.Request{Region: r, GPU: g, Tier: cloud.Transient})
					})
				}
				k.Run()
				var lifetimes []float64
				for _, in := range p.Instances() {
					lifetimes = append(lifetimes, in.LifetimeSeconds(k.Now())/3600)
				}
				if err := rev.SetLifetimes(r.String(), g, lifetimes); err != nil {
					a.err = err
					return
				}
			}
		}
		a.speed, a.ckpt, a.rev = speed, ckpt, rev
	})
	return a.speed, a.ckpt, a.rev, a.err
}

// predictHours predicts a job's request-to-finish time in hours on
// (market, GPU, region, tier): observed startup plus a history-fit
// compute estimate when the history qualifies, the analytic Eq. 4/5
// estimate otherwise, the idealized speed curve as the last resort.
func predictHours(hist *History, market string, job JobSpec, g model.GPU, r cloud.Region, tier cloud.Tier) float64 {
	startup := 70.0 / 3600 // Tp prior, matching the analytic layers
	if h, ok := hist.StartupHours(market, tier); ok {
		startup = h
	}
	if rate, ok := hist.PerWorkerRate(market, g, tier, job.Model.GFLOPs); ok && rate > 0 {
		// The observed rate is end-to-end effective (checkpoint stalls
		// and recoveries included), so no separate overhead terms.
		return startup + float64(job.Steps)/(rate*float64(job.Workers)*3600)
	}
	speed, ckpt, rev, err := analyticModels()
	if err == nil {
		placements := make([]core.Placement, job.Workers)
		for i := range placements {
			placements[i] = core.Placement{GPU: g, Region: r.String(), Transient: tier == cloud.Transient}
		}
		pred := &core.Predictor{
			Speed:              speed,
			Checkpoint:         ckpt,
			Revocation:         rev,
			ProvisionSeconds:   70,
			ReplacementSeconds: train.ReplacementSeconds(job.Model, true),
		}
		plan := core.Plan{
			Model:              job.Model,
			Workers:            placements,
			ParameterServers:   1,
			TargetSteps:        job.Steps,
			CheckpointInterval: job.CheckpointInterval,
		}
		est, eerr := pred.Estimate(plan)
		if eerr != nil && tier == cloud.Transient {
			// A corner outside the default catalog (another market's
			// region) has no fitted CDF; drop the revocation term
			// rather than the whole estimate.
			pred.Revocation = nil
			est, eerr = pred.Estimate(plan)
		}
		if eerr == nil {
			return startup + est.TotalSeconds/3600
		}
	}
	return startup + job.OptimisticHours(g)
}

// calmestRegionWithRoom scans the market's regions for one offering g
// with room for the cluster, preferring the lowest observed revocation
// rate (unobserved regions count as calm — the optimistic prior);
// ties break in Table V order.
func calmestRegionWithRoom(mv MarketView, hist *History, market string, g model.GPU, workers int) (cloud.Region, bool) {
	spec := mv.MarketSpec(market)
	if spec == nil {
		return 0, false
	}
	var best cloud.Region
	bestRate, found := 0.0, false
	for _, r := range cloud.AllRegions() {
		if !spec.Offers(r, g) {
			continue
		}
		free := mv.MarketAvailable(market, r, g)
		if free >= 0 && free < workers {
			continue
		}
		rate, _ := hist.RevocationsPerHour(market, r)
		if !found || rate < bestRate {
			best, bestRate, found = r, rate, true
		}
	}
	return best, found
}

// predictedQuote is one scored candidate placement.
type predictedQuote struct {
	pl       Placement
	hours    float64
	cost     float64
	feasible bool
}

// bestPredictedTransient quotes every (market, GPU) transient cell
// with room and returns the cheapest whose predicted finish meets the
// job's deadline. Iteration order (market order, then GPU catalog
// order) with strict improvement keeps ties deterministic.
func bestPredictedTransient(mv MarketView, hist *History, job JobSpec, now float64) (predictedQuote, bool) {
	var best predictedQuote
	found := false
	for _, market := range mv.Markets() {
		spec := mv.MarketSpec(market)
		if spec == nil {
			continue
		}
		for _, g := range model.AllGPUs() {
			r, ok := calmestRegionWithRoom(mv, hist, market, g, job.Workers)
			if !ok {
				continue
			}
			hours := predictHours(hist, market, job, g, r, cloud.Transient)
			if now+hours > job.DeadlineAtHours() {
				continue
			}
			hourly := float64(job.Workers)*spec.GPUHourly(g, cloud.Transient) + spec.PSHourly
			q := predictedQuote{
				pl:       Placement{Region: r, GPU: g, Tier: cloud.Transient, Market: market},
				hours:    hours,
				cost:     hours * hourly,
				feasible: true,
			}
			if !found || q.cost < best.cost {
				best, found = q, true
			}
		}
	}
	return best, found
}

// bestPredictedOnDemand quotes on-demand across every market and GPU
// class (pools are uncapped, so the first offering region always has
// room): the cheapest placement predicted to meet the deadline, or —
// when none can — the one predicted to finish soonest.
func bestPredictedOnDemand(mv MarketView, hist *History, job JobSpec, now float64) (predictedQuote, bool) {
	var best predictedQuote
	found := false
	for _, market := range mv.Markets() {
		spec := mv.MarketSpec(market)
		if spec == nil {
			continue
		}
		for _, g := range model.AllGPUs() {
			regions := spec.OfferedRegions(g)
			if len(regions) == 0 {
				continue
			}
			r := regions[0]
			hours := predictHours(hist, market, job, g, r, cloud.OnDemand)
			hourly := float64(job.Workers)*spec.GPUHourly(g, cloud.OnDemand) + spec.PSHourly
			q := predictedQuote{
				pl:       Placement{Region: r, GPU: g, Tier: cloud.OnDemand, Market: market},
				hours:    hours,
				cost:     hours * hourly,
				feasible: now+hours <= job.DeadlineAtHours(),
			}
			if !found || q.betterOnDemand(best) {
				best, found = q, true
			}
		}
	}
	return best, found
}

// betterOnDemand ranks on-demand quotes: feasible beats infeasible;
// among feasible the cheaper wins; among infeasible the sooner finish
// (least late) wins.
func (q predictedQuote) betterOnDemand(than predictedQuote) bool {
	if q.feasible != than.feasible {
		return q.feasible
	}
	if q.feasible {
		return q.cost < than.cost
	}
	return q.hours < than.hours
}

func (predictiveScheduler) Pick(queue []*Job, pool PoolView) (int, Placement, bool) {
	mv := marketsOf(pool)
	hist := mv.Observed()
	order := make([]int, len(queue))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return queue[order[a]].Spec.DeadlineAtHours() < queue[order[b]].Spec.DeadlineAtHours()
	})
	now := pool.NowHours()
	for _, idx := range order {
		spec := queue[idx].Spec
		if q, ok := bestPredictedTransient(mv, hist, spec, now); ok {
			return idx, q.pl, true
		}
		// No transient placement is predicted to make the deadline:
		// hold out for freed capacity until waiting longer than the
		// predicted on-demand runtime (with slack) would blow it, then
		// buy the best on-demand quote.
		if q, ok := bestPredictedOnDemand(mv, hist, spec, now); ok {
			if spec.DeadlineAtHours()-now <= q.hours*onDemandSlackFactor {
				return idx, q.pl, true
			}
		}
	}
	return 0, Placement{}, false
}

// NextWakeHours implements Waker: the earliest predicted last
// responsible moment — deadline minus slack-padded predicted on-demand
// runtime — still ahead among queued jobs, so the on-demand escape
// hatch fires even on a quiet queue, mirroring deadline-aware but on
// predicted rather than idealized runtimes.
func (predictiveScheduler) NextWakeHours(queue []*Job, pool PoolView) (float64, bool) {
	mv := marketsOf(pool)
	hist := mv.Observed()
	now := pool.NowHours()
	best, found := 0.0, false
	for _, job := range queue {
		q, ok := bestPredictedOnDemand(mv, hist, job.Spec, now)
		if !ok {
			continue // no market sells anything this job could run on
		}
		at := job.Spec.DeadlineAtHours() - q.hours*onDemandSlackFactor
		if at <= now {
			continue // already actionable; Pick handles it this pass
		}
		if !found || at < best {
			best, found = at, true
		}
	}
	return best, found
}
