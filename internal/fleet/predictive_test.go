package fleet

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/cloud"
	"repro/internal/model"
)

// historyWithCompletions builds a history holding n completions of the
// zoo's models on (gce, K80, transient), each with synthetic training
// times consistent with a fixed per-worker rate.
func historyWithCompletions(n int, rate float64) *History {
	h := &History{}
	zoo := model.Zoo()
	for i := 0; i < n; i++ {
		m := zoo[i%len(zoo)]
		steps := int64(10000 + 1000*i)
		workers := 1 + i%3
		trainHours := float64(steps) / (rate * float64(workers) * 3600)
		h.recordCompleted(CompletedJob{
			Market:     cloud.DefaultProviderName,
			GPU:        model.K80,
			Tier:       cloud.Transient,
			GFLOPs:     m.GFLOPs,
			Workers:    workers,
			Steps:      steps,
			TrainHours: trainHours,
		})
	}
	return h
}

// TestHistoryRateFitDeterminism pins the feedback loop's reproducibility
// guarantee: identical observation logs must yield identical fitted
// coefficients and therefore identical predictions, at both the linear
// stage (≥ minRateSamples) and the SVR stage (≥ svrRateSamples).
func TestHistoryRateFitDeterminism(t *testing.T) {
	for _, n := range []int{minRateSamples, svrRateSamples + 3} {
		a := historyWithCompletions(n, 2.5)
		b := historyWithCompletions(n, 2.5)
		query := model.ResNet32().GFLOPs
		ra, oka := a.PerWorkerRate(cloud.DefaultProviderName, model.K80, cloud.Transient, query)
		rb, okb := b.PerWorkerRate(cloud.DefaultProviderName, model.K80, cloud.Transient, query)
		if !oka || !okb {
			t.Fatalf("n=%d: fit did not engage (ok=%v,%v)", n, oka, okb)
		}
		if ra != rb {
			t.Fatalf("n=%d: identical histories predict %v vs %v", n, ra, rb)
		}
		if ra <= 0 || math.IsNaN(ra) || math.IsInf(ra, 0) {
			t.Fatalf("n=%d: degenerate predicted rate %v", n, ra)
		}
		// Memoized re-query must agree with the fresh fit.
		if again, _ := a.PerWorkerRate(cloud.DefaultProviderName, model.K80, cloud.Transient, query); again != ra {
			t.Fatalf("n=%d: memoized fit predicts %v, fresh fit %v", n, again, ra)
		}
	}
}

// TestHistoryRateFitThresholds pins the estimator ladder's gates: no
// fit below minRateSamples (the analytic fallback's regime), no
// cross-cell contamination, and history predictions actually tracking
// the observed rate once engaged.
func TestHistoryRateFitThresholds(t *testing.T) {
	h := historyWithCompletions(minRateSamples-1, 2.5)
	if _, ok := h.PerWorkerRate(cloud.DefaultProviderName, model.K80, cloud.Transient, 100); ok {
		t.Fatalf("fit engaged with %d samples, threshold is %d", minRateSamples-1, minRateSamples)
	}
	h = historyWithCompletions(svrRateSamples, 2.5)
	// A different GPU, tier, or market has no samples at all.
	if _, ok := h.PerWorkerRate(cloud.DefaultProviderName, model.V100, cloud.Transient, 100); ok {
		t.Fatal("V100 fit engaged from K80 samples")
	}
	if _, ok := h.PerWorkerRate(cloud.DefaultProviderName, model.K80, cloud.OnDemand, 100); ok {
		t.Fatal("on-demand fit engaged from transient samples")
	}
	if _, ok := h.PerWorkerRate("aws", model.K80, cloud.Transient, 100); ok {
		t.Fatal("aws fit engaged from gce samples")
	}
	// The synthetic log holds a constant 2.5 steps/s per worker; the
	// fitted model must predict in that neighborhood for an in-range
	// query.
	rate, ok := h.PerWorkerRate(cloud.DefaultProviderName, model.K80, cloud.Transient, model.ResNet32().GFLOPs)
	if !ok {
		t.Fatal("fit did not engage at the SVR threshold")
	}
	if rate < 1.5 || rate > 3.5 {
		t.Fatalf("fitted rate %v strays from the observed 2.5", rate)
	}
}

// TestHistoryStartupAndRevocationObservables pins the two auxiliary
// observables: startup means gate on minStartupSamples, revocation
// rates on accumulated exposure.
func TestHistoryStartupAndRevocationObservables(t *testing.T) {
	h := &History{}
	for i := 0; i < minStartupSamples; i++ {
		h.recordStartup(StartupSample{
			Market: "gce", Region: cloud.USCentral1, GPU: model.K80,
			Tier: cloud.Transient, Seconds: 60 + float64(i*30),
		})
	}
	got, ok := h.StartupHours("gce", cloud.Transient)
	if !ok {
		t.Fatal("startup mean did not engage at the threshold")
	}
	if want := 90.0 / 3600; math.Abs(got-want) > 1e-12 {
		t.Fatalf("startup mean %v h, want %v h", got, want)
	}
	if _, ok := h.StartupHours("gce", cloud.OnDemand); ok {
		t.Fatal("on-demand startup mean engaged from transient samples")
	}

	// Below the exposure floor the rate is untrusted; above it, it is
	// revocations over instance-hours.
	h.recordExposure("gce", cloud.USCentral1, model.K80, minRevExposureHours/2, true)
	if _, ok := h.RevocationsPerHour("gce", cloud.USCentral1); ok {
		t.Fatal("revocation rate trusted under the exposure floor")
	}
	h.recordExposure("gce", cloud.USCentral1, model.K80, minRevExposureHours/2, true)
	rate, ok := h.RevocationsPerHour("gce", cloud.USCentral1)
	if !ok {
		t.Fatal("revocation rate not trusted at the exposure floor")
	}
	if want := 2 / minRevExposureHours; math.Abs(rate-want) > 1e-12 {
		t.Fatalf("revocation rate %v, want %v", rate, want)
	}
	if h.Revocations() != 2 {
		t.Fatalf("recorded %d revocation samples, want 2", h.Revocations())
	}
}

// TestPredictHoursPrefersHistory pins the takeover: with a qualified
// history the prediction must come from the observed rate, not the
// analytic curves.
func TestPredictHoursPrefersHistory(t *testing.T) {
	job := JobSpec{
		ID: 0, Model: model.ResNet32(), GPU: model.K80,
		Workers: 2, Steps: 30000, CheckpointInterval: 1000,
	}
	// Four completions of one model pin the fitted rate to the sample
	// mean (a constant feature cannot support a slope), making the
	// expected prediction exact.
	h := &History{}
	const rate = 2.0
	for i := 0; i < minRateSamples; i++ {
		h.recordCompleted(CompletedJob{
			Market: cloud.DefaultProviderName, GPU: model.K80, Tier: cloud.Transient,
			GFLOPs: job.Model.GFLOPs, Workers: 2, Steps: 20000,
			TrainHours: 20000 / (rate * 2 * 3600),
		})
	}
	got := predictHours(h, cloud.DefaultProviderName, job, model.K80, cloud.USCentral1, cloud.Transient)
	want := 70.0/3600 + float64(job.Steps)/(rate*float64(job.Workers)*3600)
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("history-fed prediction %v h, want %v h", got, want)
	}
	// An empty history must still answer (analytic fallback), and
	// differently — the takeover is observable.
	analytic := predictHours(&History{}, cloud.DefaultProviderName, job, model.K80, cloud.USCentral1, cloud.Transient)
	if analytic <= 0 || math.IsNaN(analytic) {
		t.Fatalf("analytic fallback returned %v", analytic)
	}
	if analytic == got {
		t.Fatal("analytic and history-fed predictions coincide; takeover untestable")
	}
}

// TestPredictiveRunIsDeterministic is the tentpole's reproducibility
// property end to end: same (config, seed) — and therefore the same
// accumulated history and the same fitted coefficients — must yield
// identical placements and results.
func TestPredictiveRunIsDeterministic(t *testing.T) {
	cfg := Config{
		Workload:     testWorkload(ArrivalBursty),
		Scheduler:    "predictive",
		Capacity:     tightCapacity(2),
		HorizonHours: 24,
	}
	a, err := Run(cfg, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg, 42)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same (config, seed) produced different predictive fleet results")
	}
	c, err := Run(cfg, 43)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical predictive fleet results")
	}
}

// TestPredictivePickPlacesAndEscapes pins the policy's two moves on a
// synthetic pool: an open cell gets a feasible transient placement;
// a full pool holds the job until its predicted last responsible
// moment, then buys on-demand.
func TestPredictivePickPlacesAndEscapes(t *testing.T) {
	s, err := LookupScheduler("predictive")
	if err != nil {
		t.Fatal(err)
	}
	job := &Job{Spec: JobSpec{ID: 0, Model: model.ResNet15(), GPU: model.K80, Workers: 1, Steps: 34000}}
	job.Spec.DeadlineHours = job.Spec.OptimisticHours(model.K80) * 3

	open := fakePool{avail: map[cloud.PoolKey]int{
		{Region: cloud.USCentral1, GPU: model.K80}: 4,
	}}
	idx, pl, ok := s.Pick([]*Job{job}, open)
	if !ok || idx != 0 || pl.Tier != cloud.Transient {
		t.Fatalf("open pool: idx=%d pl=%v ok=%v, want a transient placement", idx, pl, ok)
	}

	full := fakePool{avail: map[cloud.PoolKey]int{}}
	if _, _, ok := s.Pick([]*Job{job}, full); ok {
		t.Fatal("full pool with plenty of slack: predictive bought on-demand early")
	}
	w, ok := s.(Waker)
	if !ok {
		t.Fatal("predictive does not implement Waker; its escape hatch would starve on a quiet queue")
	}
	at, ok := w.NextWakeHours([]*Job{job}, full)
	if !ok || at <= full.now || at >= job.Spec.DeadlineAtHours() {
		t.Fatalf("wake at %gh (ok=%v), want strictly between now and the deadline", at, ok)
	}
	// At the wake moment the fallback must actually fire.
	full.now = at + 1e-9
	idx, pl, ok = s.Pick([]*Job{job}, full)
	if !ok || idx != 0 || pl.Tier != cloud.OnDemand {
		t.Fatalf("at the last responsible moment: idx=%d pl=%v ok=%v, want on-demand", idx, pl, ok)
	}
}
