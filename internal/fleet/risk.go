package fleet

import (
	"repro/internal/cloud"
	"repro/internal/model"
)

// historyRisk is the fleet's revocation-risk signal for elastic
// sessions: the Fig. 9 diurnal prior, scaled by how the market's pool
// is actually behaving this run. The prior carries the shape (when
// waves come), the History carries the level (how bad this pool really
// is versus its Table V calibration) — the same observe-then-correct
// split the predictive scheduler uses for rates and startups.
type historyRisk struct {
	hist   *History
	market string
}

// Bounds on the observed/expected correction: a young pool with two
// lucky (or unlucky) hours of exposure must not swing sessions into
// permanent surge or permanent panic.
const (
	minRiskCorrection = 0.25
	maxRiskCorrection = 4.0
)

// RevocationRisk implements manager.RiskSignal.
func (h historyRisk) RevocationRisk(r cloud.Region, g model.GPU, atHours float64) float64 {
	prior := cloud.DiurnalRiskRatio(r, g, atHours)
	observed, ok := h.hist.RevocationsPerHour(h.market, r)
	if !ok {
		return prior
	}
	expected := cloud.ExpectedRevocationsPerHour(r, g)
	if expected <= 0 {
		return prior
	}
	correction := observed / expected
	if correction < minRiskCorrection {
		correction = minRiskCorrection
	}
	if correction > maxRiskCorrection {
		correction = maxRiskCorrection
	}
	return prior * correction
}
