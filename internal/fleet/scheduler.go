package fleet

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/cloud"
	"repro/internal/model"
)

// Placement is a scheduler's answer for one job: which cell of the
// cloud to run its whole cluster in. Fleet jobs are homogeneous (one
// GPU type, one region), matching the paper's own campaign sessions.
type Placement struct {
	Region cloud.Region
	GPU    model.GPU
	Tier   cloud.Tier
	// Market names the provider the job runs in (a MarketView market
	// name). Empty means the fleet's first (default) market, so
	// single-market schedulers never need to set it and single-market
	// results render exactly as before the provider axis existed.
	Market string
}

// Label renders the placement for job results.
func (p Placement) Label() string {
	if p.Market != "" {
		return fmt.Sprintf("%s:%s/%s %s", p.Market, p.Region, p.GPU, p.Tier)
	}
	return fmt.Sprintf("%s/%s %s", p.Region, p.GPU, p.Tier)
}

// PoolView is the scheduler's read-only window onto the shared pool —
// the fleet's first market, for schedulers that think in one market.
type PoolView interface {
	// Offers reports whether the pool's market sells the GPU in the
	// region; schedulers must not place jobs in unoffered cells.
	Offers(r cloud.Region, g model.GPU) bool
	// Available returns how many transient servers the (region, GPU)
	// cell can still accept, or -1 when the cell is unconstrained.
	Available(r cloud.Region, g model.GPU) int
	// NowHours is the current virtual time.
	NowHours() float64
}

// MarketView extends PoolView across every market of a cross-provider
// fleet: per-market quotes (catalog, prices via the spec), remaining
// capacity, and the churn signal. The fleet simulator always hands
// schedulers a MarketView; the embedded PoolView methods read the
// first market, so single-market policies work unchanged.
type MarketView interface {
	PoolView
	// Markets lists the fleet's markets in configuration order; the
	// first is the default market unqualified placements run in.
	Markets() []string
	// MarketSpec returns the named market's registered spec (catalog
	// and price book); nil for unknown names.
	MarketSpec(market string) *cloud.ProviderSpec
	// MarketAvailable is Available against the named market.
	MarketAvailable(market string, r cloud.Region, g model.GPU) int
	// MarketChurning reports whether the named market's region saw a
	// revocation within the churn window (Fig. 7's regime) — the calm
	// signal cross-market policies trade on.
	MarketChurning(market string, r cloud.Region) bool
	// Observed is the run's own measurement history — completed-job
	// step rates, startup times, revocation exposure — accumulated by
	// the fleet kernel in event order. History-aware policies fit
	// their models from it; it is never nil.
	Observed() *History
}

// Scheduler decides admission: which waiting job starts next, and
// where. Implementations must be stateless across calls (the fleet may
// be replicated across campaign workers) and deterministic — given the
// same queue and pool view they must return the same pick.
type Scheduler interface {
	// Name is the registry identity; it appears in fleet keys, so
	// equal names must mean equal policy.
	Name() string
	// Pick inspects the waiting queue (arrival order) and returns the
	// index of the job to admit with its placement, or ok=false to
	// leave everything queued. The fleet calls Pick repeatedly until
	// it declines, re-invoking it whenever arrivals or freed capacity
	// change the answer.
	Pick(queue []*Job, pool PoolView) (idx int, pl Placement, ok bool)
}

// Waker is an optional Scheduler extension for policies whose answer
// changes with the passage of time alone, not just with arrivals or
// freed capacity (which already re-open admission). Whenever an
// admission pass ends with jobs still queued, the fleet asks a Waker
// when it next wants to be consulted and schedules a re-check at that
// virtual time. NextWakeHours must return a time strictly after now
// (times at or before now are the current pass's job, not a wake-up)
// or ok=false for "nothing time-driven pending".
type Waker interface {
	NextWakeHours(queue []*Job, pool PoolView) (hours float64, ok bool)
}

// DefaultSchedulerName is the policy used when a fleet config names
// none: strict arrival order, the simplest baseline.
const DefaultSchedulerName = "fifo"

// schedulerRegistry mirrors cloud's lifetime-model registry:
// first-come names, builtins at init, reads dominating writes.
var (
	schedulerMu       sync.RWMutex
	schedulerRegistry = map[string]Scheduler{}
)

func init() {
	for _, s := range []Scheduler{
		fifoScheduler{},
		costGreedyScheduler{},
		deadlineAwareScheduler{},
		arbitrageScheduler{},
		predictiveScheduler{},
	} {
		RegisterScheduler(s)
	}
}

// RegisterScheduler adds a policy to the registry. Names are
// first-come-first-served and conflicts are programmer errors, so a
// duplicate (or empty) name panics with the offending name rather
// than returning an error a startup path could ignore: a custom
// policy must never silently shadow a builtin (fleet keys embed the
// name, and the planner cache depends on a name meaning one policy
// for the life of the process).
func RegisterScheduler(s Scheduler) {
	name := s.Name()
	if name == "" {
		panic("fleet: scheduler has an empty name")
	}
	schedulerMu.Lock()
	defer schedulerMu.Unlock()
	if _, dup := schedulerRegistry[name]; dup {
		panic(fmt.Sprintf("fleet: scheduler %q already registered", name))
	}
	schedulerRegistry[name] = s
}

// LookupScheduler resolves a policy name; the empty string means the
// default. Unknown names report the available ones.
func LookupScheduler(name string) (Scheduler, error) {
	if name == "" {
		name = DefaultSchedulerName
	}
	schedulerMu.RLock()
	s, ok := schedulerRegistry[name]
	schedulerMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("fleet: unknown scheduler %q (available: %v)", name, SchedulerNames())
	}
	return s, nil
}

// SchedulerNames lists every registered policy, sorted, with the
// default first — the order /v1/catalog reports.
func SchedulerNames() []string {
	schedulerMu.RLock()
	names := make([]string, 0, len(schedulerRegistry))
	for name := range schedulerRegistry {
		if name != DefaultSchedulerName {
			names = append(names, name)
		}
	}
	schedulerMu.RUnlock()
	sort.Strings(names)
	return append([]string{DefaultSchedulerName}, names...)
}

// fits reports whether the cell can hold the job's whole cluster.
func fits(pool PoolView, r cloud.Region, g model.GPU, workers int) bool {
	if !pool.Offers(r, g) {
		return false
	}
	free := pool.Available(r, g)
	return free < 0 || free >= workers
}

// firstRegionWithRoom scans regions in Table V order for one that
// offers g and can hold the cluster.
func firstRegionWithRoom(pool PoolView, g model.GPU, workers int) (cloud.Region, bool) {
	for _, r := range cloud.AllRegions() {
		if fits(pool, r, g, workers) {
			return r, true
		}
	}
	return 0, false
}

// fifoScheduler is strict arrival order: only the head of the queue
// may start, on its requested GPU class, in the first region (Table V
// order) with room. A blocked head blocks everyone behind it — the
// head-of-line baseline the smarter policies are measured against.
type fifoScheduler struct{}

func (fifoScheduler) Name() string { return "fifo" }

func (fifoScheduler) Pick(queue []*Job, pool PoolView) (int, Placement, bool) {
	if len(queue) == 0 {
		return 0, Placement{}, false
	}
	spec := queue[0].Spec
	if r, ok := firstRegionWithRoom(pool, spec.GPU, spec.Workers); ok {
		return 0, Placement{Region: r, GPU: spec.GPU, Tier: cloud.Transient}, true
	}
	return 0, Placement{}, false
}

// costGreedyScheduler admits, across the whole queue, the (job,
// placement) pair with the lowest expected dollars per step — hourly
// transient price over idealized speed — substituting GPU classes
// freely. It never buys on-demand: cost is the objective, deadlines
// are not its problem. Ties break toward earlier arrivals, then the
// catalog order of GPUs and regions, keeping the pick deterministic.
type costGreedyScheduler struct{}

func (costGreedyScheduler) Name() string { return "cost-greedy" }

// dollarsPerStep is the idealized marginal cost of one training step
// for the job's cluster on GPU g (parameter server included, startup
// and revocations excluded).
func dollarsPerStep(spec JobSpec, g model.GPU) float64 {
	hourly := float64(spec.Workers)*model.HourlyPrice(g, true) + model.ParameterServerHourly
	stepsPerHour := model.StepsPerSecond(g, spec.Model) * float64(spec.Workers) * 3600
	return hourly / stepsPerHour
}

func (costGreedyScheduler) Pick(queue []*Job, pool PoolView) (int, Placement, bool) {
	bestIdx, bestPl, best := -1, Placement{}, 0.0
	for i, job := range queue {
		for _, g := range model.AllGPUs() {
			r, ok := firstRegionWithRoom(pool, g, job.Spec.Workers)
			if !ok {
				continue
			}
			cost := dollarsPerStep(job.Spec, g)
			if bestIdx < 0 || cost < best {
				bestIdx, bestPl, best = i, Placement{Region: r, GPU: g, Tier: cloud.Transient}, cost
			}
		}
	}
	if bestIdx < 0 {
		return 0, Placement{}, false
	}
	return bestIdx, bestPl, true
}

// onDemandSlackFactor controls the deadline-aware policy's last
// responsible moment: once a job's remaining time to deadline shrinks
// below this multiple of its optimistic on-demand runtime, waiting for
// a transient slot risks the deadline more than paying full price
// does.
const onDemandSlackFactor = 1.3

// deadlineAwareScheduler is earliest-deadline-first with transient
// preference and an on-demand escape hatch: the most urgent job gets
// the fastest transient cell that fits (urgency beats price); a job
// nobody can fit keeps waiting until waiting itself would blow its
// deadline, at which point it is started on-demand (infinite pool,
// no revocations) on its requested GPU class. Less urgent jobs may
// backfill past a blocked-but-not-yet-at-risk job.
type deadlineAwareScheduler struct{}

func (deadlineAwareScheduler) Name() string { return "deadline-aware" }

func (deadlineAwareScheduler) Pick(queue []*Job, pool PoolView) (int, Placement, bool) {
	order := make([]int, len(queue))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return queue[order[a]].Spec.DeadlineAtHours() < queue[order[b]].Spec.DeadlineAtHours()
	})
	now := pool.NowHours()
	for _, idx := range order {
		spec := queue[idx].Spec
		// Fastest transient cell that fits: GPUs by descending speed
		// for this model, regions in Table V order.
		bestG, bestHours, found := model.GPU(0), 0.0, false
		for _, g := range model.AllGPUs() {
			if _, ok := firstRegionWithRoom(pool, g, spec.Workers); !ok {
				continue
			}
			if h := spec.OptimisticHours(g); !found || h < bestHours {
				bestG, bestHours, found = g, h, true
			}
		}
		if found {
			r, _ := firstRegionWithRoom(pool, bestG, spec.Workers)
			return idx, Placement{Region: r, GPU: bestG, Tier: cloud.Transient}, true
		}
		// No transient room anywhere: start on-demand if this job has
		// reached its last responsible moment.
		remaining := spec.DeadlineAtHours() - now
		if remaining <= spec.OptimisticHours(spec.GPU)*onDemandSlackFactor {
			r, ok := firstRegionWithRoom(pool, spec.GPU, 0)
			if !ok {
				continue // GPU class offered nowhere; leave queued
			}
			return idx, Placement{Region: r, GPU: spec.GPU, Tier: cloud.OnDemand}, true
		}
	}
	return 0, Placement{}, false
}

// NextWakeHours implements Waker: the earliest queued job's last
// responsible moment that is still ahead. Without this wake-up the
// on-demand fallback could only trigger piggybacked on an unrelated
// event (an arrival, a finish, a freed slot) — a quiet queue would
// starve past its deadlines, which is exactly what the policy promises
// not to do.
func (deadlineAwareScheduler) NextWakeHours(queue []*Job, pool PoolView) (float64, bool) {
	now := pool.NowHours()
	best, found := 0.0, false
	for _, job := range queue {
		spec := job.Spec
		if _, ok := firstRegionWithRoom(pool, spec.GPU, 0); !ok {
			// Pick's on-demand fallback continues past jobs whose GPU
			// class is offered in no region, so waking for one would
			// provably change nothing.
			continue
		}
		at := spec.DeadlineAtHours() - spec.OptimisticHours(spec.GPU)*onDemandSlackFactor
		if at <= now {
			continue // already actionable; Pick handles it this pass
		}
		if !found || at < best {
			best, found = at, true
		}
	}
	return best, found
}
