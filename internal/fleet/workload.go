// Package fleet simulates many training jobs competing for one
// shared, capacity-constrained transient GPU pool: the multi-tenant
// reading of the paper's churn characterization (§V, Fig. 7), where
// revocations are not isolated accidents but one job's loss becoming
// another job's admission slot. It layers a reproducible workload
// generator, a pluggable scheduler registry, and a deterministic
// multi-job simulator on the existing sim kernel, cloud substrate, and
// session manager — the fleet-level cost/throughput trade-off framed
// by Li et al.'s "Speeding up Deep Learning with Transient Servers"
// and the heterogeneity-aware schedulers of Tyagi & Sharma.
package fleet

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/stats"
)

// ArrivalProcess names a job inter-arrival law.
type ArrivalProcess string

const (
	// ArrivalPoisson draws i.i.d. exponential gaps — the memoryless
	// baseline of queueing analysis.
	ArrivalPoisson ArrivalProcess = "poisson"
	// ArrivalBursty clusters arrivals: most jobs land minutes after
	// the previous one, with occasional long lulls, so the pool sees
	// contention spikes a Poisson stream of equal mean rate would
	// smooth away.
	ArrivalBursty ArrivalProcess = "bursty"
)

// ArrivalProcesses lists the supported laws.
func ArrivalProcesses() []ArrivalProcess {
	return []ArrivalProcess{ArrivalPoisson, ArrivalBursty}
}

// ParseArrival validates an arrival-process name; empty means Poisson.
func ParseArrival(name string) (ArrivalProcess, error) {
	if name == "" {
		return ArrivalPoisson, nil
	}
	for _, a := range ArrivalProcesses() {
		if string(a) == name {
			return a, nil
		}
	}
	return "", fmt.Errorf("fleet: unknown arrival process %q (want %v)", name, ArrivalProcesses())
}

// WorkloadSpec declares a reproducible job-arrival stream. Job shapes
// are drawn from the repo's existing catalog — the four canonical
// models, the three GPU types, and the small cluster sizes the paper's
// own campaign uses — so every fleet job is a configuration the
// single-job layers already know how to simulate.
type WorkloadSpec struct {
	// Jobs is how many jobs arrive over the run.
	Jobs int
	// Arrival selects the inter-arrival law (empty: poisson).
	Arrival ArrivalProcess
	// RatePerHour is the long-run mean arrival rate.
	RatePerHour float64
	// StepsPerWorker scales each job's training target with its
	// cluster size, like the sweep experiments.
	StepsPerWorker int64
	// CheckpointInterval is Ic in steps for every job (0: 1000).
	CheckpointInterval int64
}

// Validate rejects impossible workloads and fills defaults.
func (w *WorkloadSpec) Validate() error {
	if w.Jobs <= 0 {
		return fmt.Errorf("fleet: workload needs a positive job count, got %d", w.Jobs)
	}
	if w.RatePerHour <= 0 {
		return fmt.Errorf("fleet: workload needs a positive arrival rate, got %g/h", w.RatePerHour)
	}
	if w.StepsPerWorker <= 0 {
		return fmt.Errorf("fleet: workload needs positive steps per worker, got %d", w.StepsPerWorker)
	}
	if w.Arrival == "" {
		w.Arrival = ArrivalPoisson
	}
	if _, err := ParseArrival(string(w.Arrival)); err != nil {
		return err
	}
	if w.CheckpointInterval == 0 {
		w.CheckpointInterval = 1000
	}
	if w.CheckpointInterval < 0 {
		return fmt.Errorf("fleet: checkpoint interval must not be negative")
	}
	return nil
}

// JobSpec is one generated training job: a catalog configuration plus
// an arrival time, a completion deadline, and a budget.
type JobSpec struct {
	ID                 int
	Model              model.Model
	GPU                model.GPU // requested GPU class; schedulers may substitute
	Workers            int
	Steps              int64 // total training target across the cluster
	CheckpointInterval int64
	// ArrivalSeconds is when the job enters the queue (virtual time).
	ArrivalSeconds float64
	// DeadlineHours is the completion deadline measured from arrival.
	DeadlineHours float64
	// BudgetUSD is what the job's owner is willing to spend.
	BudgetUSD float64
}

// DeadlineAtHours returns the job's absolute deadline in simulation
// hours.
func (j JobSpec) DeadlineAtHours() float64 {
	return j.ArrivalSeconds/3600 + j.DeadlineHours
}

// Label renders the job for tables and logs.
func (j JobSpec) Label() string {
	return fmt.Sprintf("job%d %s %d×%v", j.ID, j.Model.Name, j.Workers, j.GPU)
}

// OptimisticHours is the job's idealized runtime on GPU g: perfect
// linear scaling at the Table I single-worker speed, no startup, no
// checkpoints, no revocations. Schedulers use it as a lower bound when
// ranking placements; deadlines and budgets are sized as multiples of
// it so that some jobs are tight and some are slack.
func (j JobSpec) OptimisticHours(g model.GPU) float64 {
	speed := model.StepsPerSecond(g, j.Model) * float64(j.Workers)
	return float64(j.Steps) / speed / 3600
}

// Bursty-arrival shape: a fraction of gaps are long lulls, the rest
// are short intra-burst spacings, tuned so the long-run mean rate
// still matches RatePerHour.
const (
	burstBreakProb       = 0.3
	burstIntraGapSeconds = 120.0
	minBurstLullSeconds  = 600.0
)

// Generate draws the workload's job stream from rng. The stream is a
// pure function of (spec, rng seed): jobs arrive in ID order with
// strictly increasing arrival times, shapes drawn uniformly from the
// catalog, and deadlines/budgets drawn relative to each job's
// optimistic runtime and transient price (deadline 1.5–4× optimistic,
// budget 1.2–3× the idealized transient bill), so schedulers face a
// mix of tight and slack jobs.
func (w WorkloadSpec) Generate(rng *stats.Rng) ([]JobSpec, error) {
	spec := w
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	models := model.CanonicalModels()
	gpus := model.AllGPUs()
	sizes := []int{1, 2, 4}

	meanGap := 3600 / spec.RatePerHour
	lullGap := (meanGap - (1-burstBreakProb)*burstIntraGapSeconds) / burstBreakProb
	if lullGap < minBurstLullSeconds {
		lullGap = minBurstLullSeconds
	}

	jobs := make([]JobSpec, 0, spec.Jobs)
	arrival := 0.0
	for i := 0; i < spec.Jobs; i++ {
		switch spec.Arrival {
		case ArrivalBursty:
			if i == 0 || rng.Bernoulli(burstBreakProb) {
				arrival += rng.Exponential(lullGap)
			} else {
				arrival += rng.Exponential(burstIntraGapSeconds)
			}
		default: // ArrivalPoisson
			arrival += rng.Exponential(meanGap)
		}
		j := JobSpec{
			ID:                 i,
			Model:              models[rng.Intn(len(models))],
			GPU:                gpus[rng.Intn(len(gpus))],
			Workers:            sizes[rng.Intn(len(sizes))],
			CheckpointInterval: spec.CheckpointInterval,
			ArrivalSeconds:     arrival,
		}
		j.Steps = spec.StepsPerWorker * int64(j.Workers)
		optimistic := j.OptimisticHours(j.GPU)
		j.DeadlineHours = optimistic * rng.Uniform(1.5, 4.0)
		idealBill := optimistic * (float64(j.Workers)*model.HourlyPrice(j.GPU, true) + model.ParameterServerHourly)
		j.BudgetUSD = idealBill * rng.Uniform(1.2, 3.0)
		jobs = append(jobs, j)
	}
	return jobs, nil
}
