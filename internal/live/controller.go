package live

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/transport"
)

// Controller is CM-DARE's cluster brain (Fig. 1): it tracks
// membership, receives revocation notices from workers' shutdown
// hooks, and reassigns checkpoint duty to a surviving worker when the
// chief is revoked (steps 7–9).
type Controller struct {
	server *transport.Server

	mu      sync.Mutex
	members map[string]*member
	chief   string
	// takeovers counts chief promotions, exposed for tests and
	// monitoring.
	takeovers int
}

type member struct {
	name        string
	controlAddr string
	client      *transport.Client
}

// NewController starts a controller on addr.
func NewController(addr string) (*Controller, error) {
	srv, err := transport.NewServer(addr)
	if err != nil {
		return nil, err
	}
	c := &Controller{server: srv, members: make(map[string]*member)}
	srv.Handle(methodRegister, c.handleRegister)
	srv.Handle(methodRevoked, c.handleRevoked)
	srv.Handle(methodStatus, c.handleStatus)
	return c, nil
}

// Addr returns the controller's listen address.
func (c *Controller) Addr() string { return c.server.Addr() }

// Close stops the controller and its outbound connections.
func (c *Controller) Close() error {
	c.mu.Lock()
	for _, m := range c.members {
		if m.client != nil {
			m.client.Close()
		}
	}
	c.mu.Unlock()
	return c.server.Close()
}

// Takeovers returns how many chief promotions the controller has
// performed.
func (c *Controller) Takeovers() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.takeovers
}

// Chief returns the current chief's name.
func (c *Controller) Chief() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.chief
}

func (c *Controller) handleRegister(body json.RawMessage) (any, error) {
	var req registerRequest
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, err
	}
	if req.Worker == "" || req.ControlAddr == "" {
		return nil, fmt.Errorf("live: register requires worker and control address")
	}
	client, err := transport.Dial(req.ControlAddr, 5*time.Second)
	if err != nil {
		return nil, fmt.Errorf("live: dialing worker control endpoint: %w", err)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if old, exists := c.members[req.Worker]; exists && old.client != nil {
		old.client.Close()
	}
	c.members[req.Worker] = &member{name: req.Worker, controlAddr: req.ControlAddr, client: client}
	if req.Chief || c.chief == "" {
		c.chief = req.Worker
	}
	return statusResponse{Workers: c.workerNamesLocked(), Chief: c.chief}, nil
}

func (c *Controller) handleRevoked(body json.RawMessage) (any, error) {
	var req revokedNotice
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, err
	}
	c.mu.Lock()
	m, exists := c.members[req.Worker]
	if exists {
		delete(c.members, req.Worker)
		if m.client != nil {
			m.client.Close()
		}
	}
	wasChief := req.Worker == c.chief
	var successor *member
	if wasChief {
		c.chief = ""
		// Deterministic successor choice: the lexicographically first
		// survivor (the paper's PS "selects one GPU worker").
		names := c.workerNamesLocked()
		if len(names) > 0 {
			successor = c.members[names[0]]
			c.chief = successor.name
			c.takeovers++
		}
	}
	c.mu.Unlock()

	if successor != nil {
		// Promote outside the lock: the worker may call back into the
		// controller while handling the promotion.
		err := successor.client.Call(methodPromote, promoteRequest{Reason: "chief revoked"}, nil, 5*time.Second)
		if err != nil {
			return nil, fmt.Errorf("live: promoting %s: %w", successor.name, err)
		}
	}
	return statusResponse{Workers: c.workerNames(), Chief: c.Chief()}, nil
}

func (c *Controller) handleStatus(json.RawMessage) (any, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return statusResponse{Workers: c.workerNamesLocked(), Chief: c.chief}, nil
}

func (c *Controller) workerNames() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.workerNamesLocked()
}

func (c *Controller) workerNamesLocked() []string {
	names := make([]string, 0, len(c.members))
	for name := range c.members {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
