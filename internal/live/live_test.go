package live

import (
	"testing"
	"time"

	"repro/internal/storage"
	"repro/internal/transport"
)

// testCluster spins up PS shards, a controller, and workers on
// loopback.
type testCluster struct {
	t       *testing.T
	shards  []*ParameterServer
	ctrl    *Controller
	workers []*Worker
	ckptDir string
}

func newTestCluster(t *testing.T, nShards, nWorkers, paramCount int, ckptInterval int64) *testCluster {
	t.Helper()
	tc := &testCluster{t: t, ckptDir: t.TempDir()}
	for i := 0; i < nShards; i++ {
		lo, hi := shardRange(paramCount, nShards, i)
		ps, err := NewParameterServer("127.0.0.1:0", hi-lo, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		tc.shards = append(tc.shards, ps)
	}
	ctrl, err := NewController("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	tc.ctrl = ctrl

	var psAddrs []string
	for _, s := range tc.shards {
		psAddrs = append(psAddrs, s.Addr())
	}
	const classes, features = 10, 16
	if paramCount != classes*(features+1) {
		t.Fatalf("test wiring: paramCount %d must be %d", paramCount, classes*(features+1))
	}
	for i := 0; i < nWorkers; i++ {
		w, err := NewWorker(WorkerConfig{
			Name:               workerName(i),
			PSAddrs:            psAddrs,
			ControllerAddr:     ctrl.Addr(),
			Chief:              i == 0,
			Classes:            classes,
			Features:           features,
			BatchSize:          32,
			DataSeed:           int64(1000 + i),
			CheckpointInterval: ckptInterval,
			CheckpointDir:      tc.ckptDir,
		})
		if err != nil {
			t.Fatal(err)
		}
		tc.workers = append(tc.workers, w)
	}
	t.Cleanup(tc.shutdown)
	return tc
}

func workerName(i int) string {
	return string(rune('a'+i)) + "-worker"
}

func (tc *testCluster) shutdown() {
	for _, w := range tc.workers {
		w.Close()
	}
	tc.ctrl.Close()
	for _, s := range tc.shards {
		s.Close()
	}
}

// waitFor polls until cond is true or the deadline passes.
func waitFor(t *testing.T, what string, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

const paramCount = 10 * 17

func TestAsyncTrainingConverges(t *testing.T) {
	tc := newTestCluster(t, 2, 3, paramCount, 0)
	for _, w := range tc.workers {
		w.Start()
	}
	waitFor(t, "global progress", 20*time.Second, func() bool {
		return tc.workers[0].GlobalStep() >= 600
	})
	for _, w := range tc.workers {
		w.Stop()
		if err := w.Err(); err != nil {
			t.Fatalf("%s failed: %v", w.cfg.Name, err)
		}
	}
	// All workers contributed (asynchrony: every worker advances at
	// its own pace).
	for _, w := range tc.workers {
		if w.Steps() == 0 {
			t.Errorf("%s completed no steps", w.cfg.Name)
		}
	}
	// The jointly-trained model classifies well on each worker's data.
	for _, w := range tc.workers {
		acc, err := w.EvalAccuracy(400)
		if err != nil {
			t.Fatal(err)
		}
		if acc < 0.85 {
			t.Errorf("%s accuracy = %.3f, want ≥0.85 after async SGD", w.cfg.Name, acc)
		}
	}
}

func TestShardVersionsAdvanceTogether(t *testing.T) {
	tc := newTestCluster(t, 3, 2, paramCount, 0)
	for _, w := range tc.workers {
		w.Start()
	}
	waitFor(t, "progress", 20*time.Second, func() bool {
		return tc.workers[0].GlobalStep() >= 200
	})
	for _, w := range tc.workers {
		w.Stop()
	}
	// Every shard saw every push: versions match across shards.
	client, err := transport.Dial(tc.shards[0].Addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	var first psStatsResponse
	if err := client.Call(methodPSStats, struct{}{}, &first, time.Second); err != nil {
		t.Fatal(err)
	}
	for _, s := range tc.shards[1:] {
		c2, err := transport.Dial(s.Addr(), time.Second)
		if err != nil {
			t.Fatal(err)
		}
		var stats psStatsResponse
		err = c2.Call(methodPSStats, struct{}{}, &stats, time.Second)
		c2.Close()
		if err != nil {
			t.Fatal(err)
		}
		if stats.Version != first.Version {
			t.Fatalf("shard versions diverge: %d vs %d", stats.Version, first.Version)
		}
	}
}

func TestChiefCheckpointsPeriodically(t *testing.T) {
	tc := newTestCluster(t, 2, 2, paramCount, 100)
	for _, w := range tc.workers {
		w.Start()
	}
	waitFor(t, "checkpoints", 20*time.Second, func() bool {
		return tc.workers[0].Checkpoints() >= 3
	})
	for _, w := range tc.workers {
		w.Stop()
	}
	if got := tc.workers[1].Checkpoints(); got != 0 {
		t.Fatalf("non-chief wrote %d checkpoints", got)
	}
	store, err := storage.NewStore(tc.ckptDir)
	if err != nil {
		t.Fatal(err)
	}
	step, ok, err := store.Latest()
	if err != nil || !ok {
		t.Fatalf("no checkpoint on disk: %v", err)
	}
	params, meta, err := store.Load(step)
	if err != nil {
		t.Fatal(err)
	}
	if len(params) != paramCount {
		t.Fatalf("checkpoint has %d params, want %d", len(params), paramCount)
	}
	if meta.Chief != tc.workers[0].cfg.Name {
		t.Fatalf("checkpoint written by %q, want chief %q", meta.Chief, tc.workers[0].cfg.Name)
	}
	// The three TensorFlow-style files exist with sane sizes.
	data, index, metaSize, err := store.FileSizes(step)
	if err != nil {
		t.Fatal(err)
	}
	if data != int64(8*paramCount) || index <= 0 || metaSize <= 0 {
		t.Fatalf("file sizes %d/%d/%d", data, index, metaSize)
	}
}

func TestChiefRevocationTakeover(t *testing.T) {
	tc := newTestCluster(t, 2, 3, paramCount, 100)
	for _, w := range tc.workers {
		w.Start()
	}
	waitFor(t, "initial checkpoints", 20*time.Second, func() bool {
		return tc.workers[0].Checkpoints() >= 1
	})

	// Revoke the chief: its shutdown hook notifies the controller,
	// which promotes a survivor (§II steps 6–9).
	if err := tc.workers[0].Revoke(); err != nil {
		t.Fatalf("revocation notice failed: %v", err)
	}
	waitFor(t, "chief takeover", 10*time.Second, func() bool {
		return tc.workers[1].IsChief() || tc.workers[2].IsChief()
	})
	if tc.ctrl.Takeovers() != 1 {
		t.Fatalf("controller takeovers = %d, want 1", tc.ctrl.Takeovers())
	}

	// Training continues and the new chief checkpoints.
	var newChief *Worker
	for _, w := range tc.workers[1:] {
		if w.IsChief() {
			newChief = w
		}
	}
	if newChief == nil {
		t.Fatal("no new chief")
	}
	waitFor(t, "post-takeover checkpoint", 20*time.Second, func() bool {
		return newChief.Checkpoints() >= 1
	})
	for _, w := range tc.workers[1:] {
		w.Stop()
		if err := w.Err(); err != nil {
			t.Fatalf("%s failed after takeover: %v", w.cfg.Name, err)
		}
	}
	store, err := storage.NewStore(tc.ckptDir)
	if err != nil {
		t.Fatal(err)
	}
	step, ok, err := store.Latest()
	if err != nil || !ok {
		t.Fatal("no checkpoint after takeover")
	}
	_, meta, err := store.Load(step)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Chief != newChief.cfg.Name {
		t.Fatalf("latest checkpoint by %q, want new chief %q", meta.Chief, newChief.cfg.Name)
	}
}

func TestCheckpointRestore(t *testing.T) {
	tc := newTestCluster(t, 2, 2, paramCount, 100)
	for _, w := range tc.workers {
		w.Start()
	}
	waitFor(t, "a checkpoint", 20*time.Second, func() bool {
		return tc.workers[0].Checkpoints() >= 2
	})
	for _, w := range tc.workers {
		w.Stop()
	}
	store, err := storage.NewStore(tc.ckptDir)
	if err != nil {
		t.Fatal(err)
	}
	ckptStep, ok, err := store.Latest()
	if err != nil || !ok {
		t.Fatal("no checkpoint")
	}
	want, _, err := store.Load(ckptStep)
	if err != nil {
		t.Fatal(err)
	}

	// Fresh parameter servers — a full cluster restart.
	var psAddrs []string
	for i := 0; i < 2; i++ {
		lo, hi := shardRange(paramCount, 2, i)
		ps, err := NewParameterServer("127.0.0.1:0", hi-lo, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		defer ps.Close()
		psAddrs = append(psAddrs, ps.Addr())
	}
	w, err := NewWorker(WorkerConfig{
		Name:          "restorer",
		PSAddrs:       psAddrs,
		Classes:       10,
		Features:      16,
		DataSeed:      5,
		CheckpointDir: tc.ckptDir,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	restoredStep, err := w.RestoreLatest()
	if err != nil {
		t.Fatal(err)
	}
	if restoredStep != ckptStep {
		t.Fatalf("restored step %d, want %d", restoredStep, ckptStep)
	}
	got, _, err := w.pullAll()
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("restored param %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestWorkerValidation(t *testing.T) {
	if _, err := NewWorker(WorkerConfig{}); err == nil {
		t.Error("empty config should error")
	}
	if _, err := NewWorker(WorkerConfig{Name: "w", PSAddrs: []string{"127.0.0.1:1"}, Classes: 10, Features: 4, CheckpointInterval: 10}); err == nil {
		t.Error("checkpoint interval without dir should error")
	}
}

func TestPSValidation(t *testing.T) {
	if _, err := NewParameterServer("127.0.0.1:0", 0, 0.1); err == nil {
		t.Error("zero shard should error")
	}
	if _, err := NewParameterServer("127.0.0.1:0", 5, 0); err == nil {
		t.Error("zero learning rate should error")
	}
}

func TestShardRange(t *testing.T) {
	// 10 params over 3 shards: 4+3+3, contiguous and complete.
	var total int
	prevHi := 0
	for i := 0; i < 3; i++ {
		lo, hi := shardRange(10, 3, i)
		if lo != prevHi {
			t.Fatalf("shard %d starts at %d, want %d", i, lo, prevHi)
		}
		total += hi - lo
		prevHi = hi
	}
	if total != 10 || prevHi != 10 {
		t.Fatalf("shards cover %d params ending at %d", total, prevHi)
	}
}

func TestPushShapeMismatchRejected(t *testing.T) {
	ps, err := NewParameterServer("127.0.0.1:0", 8, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	defer ps.Close()
	c, err := transport.Dial(ps.Addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	err = c.Call(methodPush, pushRequest{Worker: "w", Grad: make([]float64, 3)}, nil, time.Second)
	if err == nil {
		t.Fatal("mismatched gradient shard should be rejected")
	}
}
