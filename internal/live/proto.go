// Package live implements a real (not simulated) asynchronous
// parameter-server training cluster over TCP: parameter-server shards,
// GPU-less workers doing real gradient math on a synthetic dataset, a
// chief that checkpoints to a storage directory, and a controller that
// handles revocation notices and chief takeover.
//
// This is the transient-TensorFlow + controller slice of the paper's
// Fig. 1 made executable: RPC connections between parameter servers
// and workers (step 3), periodic checkpoints by the chief (step 5),
// revocation notifications (step 7), and checkpoint-duty takeover
// (steps 8–9). The performance *measurements* of the paper run on the
// calibrated simulator (internal/train); this package demonstrates
// the systems mechanics end to end.
package live

// Method names shared by the cluster's RPC endpoints.
const (
	methodPull      = "ps.pull"
	methodPush      = "ps.push"
	methodSetParams = "ps.setParams"
	methodPSStats   = "ps.stats"

	methodRegister = "ctrl.register"
	methodRevoked  = "ctrl.revoked"
	methodStatus   = "ctrl.status"

	methodPromote = "worker.promote"
)

// pullRequest asks a shard for its current parameters.
type pullRequest struct {
	Worker string `json:"worker"`
}

// pullResponse carries a shard's parameters and version (the number
// of updates applied — shard 0's version serves as the global step).
type pullResponse struct {
	Version int64     `json:"version"`
	Params  []float64 `json:"params"`
}

// pushRequest applies one gradient shard.
type pushRequest struct {
	Worker string    `json:"worker"`
	Grad   []float64 `json:"grad"`
}

// pushResponse acknowledges with the post-update version.
type pushResponse struct {
	Version int64 `json:"version"`
}

// setParamsRequest overwrites a shard's parameters (checkpoint
// restore).
type setParamsRequest struct {
	Params []float64 `json:"params"`
}

// psStatsResponse reports shard counters.
type psStatsResponse struct {
	Version   int64 `json:"version"`
	ShardSize int   `json:"shard_size"`
	PushCount int64 `json:"push_count"`
	PullCount int64 `json:"pull_count"`
}

// registerRequest announces a worker to the controller.
type registerRequest struct {
	Worker      string `json:"worker"`
	ControlAddr string `json:"control_addr"`
	Chief       bool   `json:"chief"`
}

// revokedNotice tells the controller a worker is being preempted
// (sent from the shutdown-script window, §V-A).
type revokedNotice struct {
	Worker string `json:"worker"`
}

// statusResponse summarizes cluster membership.
type statusResponse struct {
	Workers []string `json:"workers"`
	Chief   string   `json:"chief"`
}

// promoteRequest instructs a worker to take over checkpoint duty.
type promoteRequest struct {
	Reason string `json:"reason"`
}

// shardRange splits total parameters into nShards near-equal
// contiguous ranges and returns shard i's [lo, hi).
func shardRange(total, nShards, i int) (lo, hi int) {
	base := total / nShards
	extra := total % nShards
	lo = i*base + min(i, extra)
	size := base
	if i < extra {
		size++
	}
	return lo, lo + size
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
