package live

import (
	"encoding/json"
	"fmt"
	"sync"

	"repro/internal/transport"
)

// ParameterServer owns one shard of the model parameters and applies
// asynchronous SGD updates as gradient pushes arrive — the paper's
// parameter-server role (§II): "update the deep learning model
// parameters after each worker generates the gradients".
type ParameterServer struct {
	server *transport.Server

	mu        sync.Mutex
	params    []float64
	version   int64
	pushCount int64
	pullCount int64
	lr        float64
}

// NewParameterServer starts a shard holding shardSize parameters
// (zero-initialized) on addr, applying updates with learning rate lr.
func NewParameterServer(addr string, shardSize int, lr float64) (*ParameterServer, error) {
	if shardSize <= 0 {
		return nil, fmt.Errorf("live: shard size must be positive, got %d", shardSize)
	}
	if lr <= 0 {
		return nil, fmt.Errorf("live: learning rate must be positive, got %v", lr)
	}
	srv, err := transport.NewServer(addr)
	if err != nil {
		return nil, err
	}
	ps := &ParameterServer{
		server: srv,
		params: make([]float64, shardSize),
		lr:     lr,
	}
	srv.Handle(methodPull, ps.handlePull)
	srv.Handle(methodPush, ps.handlePush)
	srv.Handle(methodSetParams, ps.handleSetParams)
	srv.Handle(methodPSStats, ps.handleStats)
	return ps, nil
}

// Addr returns the shard's listen address.
func (ps *ParameterServer) Addr() string { return ps.server.Addr() }

// Close stops serving.
func (ps *ParameterServer) Close() error { return ps.server.Close() }

func (ps *ParameterServer) handlePull(body json.RawMessage) (any, error) {
	var req pullRequest
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, err
	}
	ps.mu.Lock()
	defer ps.mu.Unlock()
	ps.pullCount++
	out := pullResponse{Version: ps.version, Params: make([]float64, len(ps.params))}
	copy(out.Params, ps.params)
	return out, nil
}

func (ps *ParameterServer) handlePush(body json.RawMessage) (any, error) {
	var req pushRequest
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, err
	}
	ps.mu.Lock()
	defer ps.mu.Unlock()
	if len(req.Grad) != len(ps.params) {
		return nil, fmt.Errorf("live: gradient shard of %d values, shard holds %d", len(req.Grad), len(ps.params))
	}
	for i, g := range req.Grad {
		ps.params[i] -= ps.lr * g
	}
	ps.version++
	ps.pushCount++
	return pushResponse{Version: ps.version}, nil
}

func (ps *ParameterServer) handleSetParams(body json.RawMessage) (any, error) {
	var req setParamsRequest
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, err
	}
	ps.mu.Lock()
	defer ps.mu.Unlock()
	if len(req.Params) != len(ps.params) {
		return nil, fmt.Errorf("live: restore of %d values, shard holds %d", len(req.Params), len(ps.params))
	}
	copy(ps.params, req.Params)
	return pushResponse{Version: ps.version}, nil
}

func (ps *ParameterServer) handleStats(json.RawMessage) (any, error) {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	return psStatsResponse{
		Version:   ps.version,
		ShardSize: len(ps.params),
		PushCount: ps.pushCount,
		PullCount: ps.pullCount,
	}, nil
}
