package live

import (
	"encoding/json"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/nn"
	"repro/internal/storage"
	"repro/internal/transport"
)

// rpcTimeout bounds every worker-issued RPC; a stuck parameter server
// must surface as an error, not a hang.
const rpcTimeout = 10 * time.Second

// WorkerConfig describes one live worker.
type WorkerConfig struct {
	Name           string
	PSAddrs        []string // one per shard, in shard order
	ControllerAddr string
	Chief          bool

	Classes   int
	Features  int
	BatchSize int
	// DataSeed seeds this worker's private slice of the synthetic
	// dataset (each worker holds its own data subset, §II).
	DataSeed int64

	// CheckpointInterval in global steps; 0 disables. Only the chief
	// checkpoints.
	CheckpointInterval int64
	// CheckpointDir backs the storage.Store; required when
	// checkpointing is enabled.
	CheckpointDir string
}

// Worker is a live training worker: pull parameters, compute a real
// gradient on its data shard, push to every parameter-server shard,
// repeat. One worker is the chief and also checkpoints.
type Worker struct {
	cfg     WorkerConfig
	model   *nn.Model
	dataset *nn.Dataset
	store   *storage.Store

	control  *transport.Server
	psConns  []*transport.Client
	ctrlConn *transport.Client

	chief atomic.Bool

	started atomic.Bool
	stop    chan struct{}
	done    chan struct{}
	// stopOnce and closeOnce make Stop/Close/Revoke idempotent.
	stopOnce  sync.Once
	closeOnce sync.Once

	steps      atomic.Int64 // local steps completed
	globalStep atomic.Int64 // shard-0 version after our last push
	lastLoss   atomic.Value // float64
	ckptCount  atomic.Int64

	runErr atomic.Value // error
}

// NewWorker constructs and wires a worker: it starts the control
// endpoint, connects to every parameter server and the controller,
// and registers itself. Call Start to begin training.
func NewWorker(cfg WorkerConfig) (*Worker, error) {
	if cfg.Name == "" {
		return nil, fmt.Errorf("live: worker needs a name")
	}
	if len(cfg.PSAddrs) == 0 {
		return nil, fmt.Errorf("live: worker needs at least one parameter server")
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 32
	}
	if cfg.CheckpointInterval > 0 && cfg.CheckpointDir == "" {
		return nil, fmt.Errorf("live: checkpointing enabled but no directory")
	}
	model, err := nn.NewModel(cfg.Classes, cfg.Features)
	if err != nil {
		return nil, err
	}
	dataset, err := nn.NewDataset(cfg.Classes, cfg.Features, 4, cfg.DataSeed)
	if err != nil {
		return nil, err
	}
	w := &Worker{
		cfg:     cfg,
		model:   model,
		dataset: dataset,
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	w.lastLoss.Store(0.0)
	w.chief.Store(cfg.Chief)

	if cfg.CheckpointDir != "" {
		w.store, err = storage.NewStore(cfg.CheckpointDir)
		if err != nil {
			return nil, err
		}
	}

	w.control, err = transport.NewServer("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	w.control.Handle(methodPromote, w.handlePromote)

	for _, addr := range cfg.PSAddrs {
		conn, err := transport.Dial(addr, rpcTimeout)
		if err != nil {
			w.closeConns()
			return nil, fmt.Errorf("live: connecting to PS %s: %w", addr, err)
		}
		w.psConns = append(w.psConns, conn)
	}
	if cfg.ControllerAddr != "" {
		w.ctrlConn, err = transport.Dial(cfg.ControllerAddr, rpcTimeout)
		if err != nil {
			w.closeConns()
			return nil, fmt.Errorf("live: connecting to controller: %w", err)
		}
		err = w.ctrlConn.Call(methodRegister, registerRequest{
			Worker:      cfg.Name,
			ControlAddr: w.control.Addr(),
			Chief:       cfg.Chief,
		}, nil, rpcTimeout)
		if err != nil {
			w.closeConns()
			return nil, fmt.Errorf("live: registering with controller: %w", err)
		}
	}
	return w, nil
}

func (w *Worker) closeConns() {
	for _, c := range w.psConns {
		c.Close()
	}
	if w.ctrlConn != nil {
		w.ctrlConn.Close()
	}
	if w.control != nil {
		w.control.Close()
	}
}

func (w *Worker) handlePromote(json.RawMessage) (any, error) {
	w.chief.Store(true)
	return nil, nil
}

// Name returns the worker's cluster name.
func (w *Worker) Name() string { return w.cfg.Name }

// IsChief reports whether this worker currently owns checkpoint duty.
func (w *Worker) IsChief() bool { return w.chief.Load() }

// Steps returns how many local steps the worker has completed.
func (w *Worker) Steps() int64 { return w.steps.Load() }

// GlobalStep returns the shard-0 version after this worker's latest
// push (the cluster's global step as this worker saw it).
func (w *Worker) GlobalStep() int64 { return w.globalStep.Load() }

// LastLoss returns the most recent mini-batch loss.
func (w *Worker) LastLoss() float64 { return w.lastLoss.Load().(float64) }

// Checkpoints returns how many checkpoints this worker has written.
func (w *Worker) Checkpoints() int64 { return w.ckptCount.Load() }

// Err returns the error that stopped the training loop, if any.
func (w *Worker) Err() error {
	if v := w.runErr.Load(); v != nil {
		return v.(error)
	}
	return nil
}

// Start launches the training loop. It returns immediately and is
// idempotent; use Stop, Revoke, or Wait to manage the lifecycle.
func (w *Worker) Start() {
	if !w.started.CompareAndSwap(false, true) {
		return
	}
	go w.run()
}

// Wait blocks until the training loop has exited.
func (w *Worker) Wait() { <-w.done }

// Stop halts the training loop but keeps connections open, so callers
// can still evaluate or restore through this worker. Use Close for a
// full teardown. Stopping a worker that never started is a no-op.
func (w *Worker) Stop() {
	w.stopOnce.Do(func() { close(w.stop) })
	if w.started.Load() {
		<-w.done
	}
}

// Close stops training and closes every connection and the control
// endpoint. Close is idempotent.
func (w *Worker) Close() {
	w.Stop()
	w.closeOnce.Do(w.closeConns)
}

// Revoke simulates a preemption: the shutdown-script hook fires a
// revocation notice to the controller (triggering chief takeover if
// needed), then the worker halts and disconnects (§II steps 6–8).
func (w *Worker) Revoke() error {
	var notifyErr error
	if w.ctrlConn != nil {
		notifyErr = w.ctrlConn.Call(methodRevoked, revokedNotice{Worker: w.cfg.Name}, nil, rpcTimeout)
	}
	w.Close()
	return notifyErr
}

// run is the training loop.
func (w *Worker) run() {
	defer close(w.done)
	nextCkpt := w.cfg.CheckpointInterval
	for {
		select {
		case <-w.stop:
			return
		default:
		}
		globalStep, err := w.trainStep()
		if err != nil {
			w.runErr.Store(err)
			return
		}
		if w.chief.Load() && w.cfg.CheckpointInterval > 0 && globalStep >= nextCkpt {
			if err := w.checkpoint(globalStep); err != nil {
				w.runErr.Store(err)
				return
			}
			nextCkpt = globalStep + w.cfg.CheckpointInterval
		}
	}
}

// trainStep pulls, computes, and pushes once, returning the global
// step after the push.
func (w *Worker) trainStep() (int64, error) {
	params, _, err := w.pullAll()
	if err != nil {
		return 0, fmt.Errorf("live: %s pull: %w", w.cfg.Name, err)
	}
	w.model.SetParams(params)
	batch := w.dataset.Sample(w.cfg.BatchSize)
	w.lastLoss.Store(w.model.Loss(batch))
	grad := w.model.Gradient(batch)

	version, err := w.pushAll(grad)
	if err != nil {
		return 0, fmt.Errorf("live: %s push: %w", w.cfg.Name, err)
	}
	w.steps.Add(1)
	w.globalStep.Store(version)
	return version, nil
}

// pullAll fetches every shard and assembles the full parameter
// vector; it returns shard 0's version as the global step.
func (w *Worker) pullAll() ([]float64, int64, error) {
	total := w.model.ParamCount()
	out := make([]float64, 0, total)
	var version int64
	for i, conn := range w.psConns {
		var resp pullResponse
		if err := conn.Call(methodPull, pullRequest{Worker: w.cfg.Name}, &resp, rpcTimeout); err != nil {
			return nil, 0, err
		}
		if i == 0 {
			version = resp.Version
		}
		out = append(out, resp.Params...)
	}
	if len(out) != total {
		return nil, 0, fmt.Errorf("live: assembled %d params, model has %d", len(out), total)
	}
	return out, version, nil
}

// pushAll splits the gradient across shards and pushes each.
func (w *Worker) pushAll(grad []float64) (int64, error) {
	n := len(w.psConns)
	var version int64
	for i, conn := range w.psConns {
		lo, hi := shardRange(len(grad), n, i)
		var resp pushResponse
		if err := conn.Call(methodPush, pushRequest{Worker: w.cfg.Name, Grad: grad[lo:hi]}, &resp, rpcTimeout); err != nil {
			return 0, err
		}
		if i == 0 {
			version = resp.Version
		}
	}
	return version, nil
}

// checkpoint pulls a fresh parameter snapshot and saves it (§II step
// 5; training pauses on the chief while it runs, §IV-B).
func (w *Worker) checkpoint(globalStep int64) error {
	params, _, err := w.pullAll()
	if err != nil {
		return fmt.Errorf("live: checkpoint pull: %w", err)
	}
	err = w.store.Save(params, storage.Meta{
		ModelName: "softmax",
		Classes:   w.cfg.Classes,
		Features:  w.cfg.Features,
		Step:      globalStep,
		Chief:     w.cfg.Name,
	})
	if err != nil {
		return fmt.Errorf("live: checkpoint save: %w", err)
	}
	w.ckptCount.Add(1)
	return nil
}

// RestoreLatest loads the newest checkpoint from the store and
// installs it into the parameter servers — the recovery path after a
// full-cluster restart.
func (w *Worker) RestoreLatest() (int64, error) {
	if w.store == nil {
		return 0, fmt.Errorf("live: worker has no checkpoint store")
	}
	params, meta, ok, err := w.store.LoadLatest()
	if err != nil {
		return 0, err
	}
	if !ok {
		return 0, fmt.Errorf("live: no checkpoint to restore")
	}
	if len(params) != w.model.ParamCount() {
		return 0, fmt.Errorf("live: checkpoint has %d params, model needs %d", len(params), w.model.ParamCount())
	}
	n := len(w.psConns)
	for i, conn := range w.psConns {
		lo, hi := shardRange(len(params), n, i)
		if err := conn.Call(methodSetParams, setParamsRequest{Params: params[lo:hi]}, nil, rpcTimeout); err != nil {
			return 0, fmt.Errorf("live: restoring shard %d: %w", i, err)
		}
	}
	return meta.Step, nil
}

// EvalAccuracy samples a fresh batch from this worker's dataset and
// scores the current parameters.
func (w *Worker) EvalAccuracy(samples int) (float64, error) {
	params, _, err := w.pullAll()
	if err != nil {
		return 0, err
	}
	w.model.SetParams(params)
	return w.model.Accuracy(w.dataset.Sample(samples)), nil
}
