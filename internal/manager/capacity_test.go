package manager

import (
	"errors"
	"math"
	"testing"

	"repro/internal/cloud"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/stats"
)

// firstVictimModel revokes only the first transient server it is asked
// about, after a fixed lifetime; everyone else survives to the cap.
// It gives the capacity tests full control of the revocation schedule.
type firstVictimModel struct {
	after   float64
	sampled int
}

func (*firstVictimModel) Name() string { return "test-first-victim" }
func (m *firstVictimModel) SampleLifetime(*stats.Rng, cloud.Region, model.GPU, float64) (bool, float64) {
	m.sampled++
	if m.sampled == 1 {
		return true, m.after
	}
	return false, cloud.MaxTransientLifetimeSeconds
}

// TestReplacementRetriesWhenPoolIsFull drives the churn-aware retry
// path: a one-slot cell, a delayed replacement, and a rival that
// steals the freed slot during the delay. The session must keep
// retrying (without burning extra replacement budget) and land its
// replacement once the rival leaves.
func TestReplacementRetriesWhenPoolIsFull(t *testing.T) {
	cell := cloud.PoolKey{Region: cloud.USCentral1, GPU: model.K80}
	k := &sim.Kernel{}
	p := cloud.NewProviderWithLifetime(k, stats.NewRng(3), &firstVictimModel{after: 1800})
	p.SetTransientCapacity(cloud.Capacity{cell: 1})

	// The rival grabs the slot the instant the victim's revocation
	// frees it — the capacity-freed hook fires after OnRevoked, and the
	// session's replacement is delayed, so the slot is open.
	var rival *cloud.Instance
	p.SetCapacityFreedHook(func(key cloud.PoolKey) {
		if rival != nil {
			return
		}
		in, err := p.Launch(cloud.Request{Region: cell.Region, GPU: cell.GPU, Tier: cloud.Transient})
		if err != nil {
			t.Errorf("rival launch on freed slot: %v", err)
			return
		}
		rival = in
	})

	cfg := Config{
		Model:              model.ResNet15(),
		Workers:            placements(cell.GPU, cell.Region, 1),
		TargetSteps:        60000, // ≈1.8 h at 9.46 steps/s: spans the revocation
		CheckpointInterval: 1000,
		Replacement:        ReplaceDelayed,
		DelaySeconds:       60,
		Seed:               5,
	}
	s, err := NewSession(p, cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Free the slot again a while after the rival takes it; the
	// session's retry loop should claim it within one churn-paced
	// retry interval.
	k.RunUntil(sim.Time(3600))
	if rival == nil {
		t.Fatalf("no revocation fired; sampled lifetimes did not include the victim")
	}
	p.Terminate(rival)
	k.RunUntil(sim.Time(7 * 24 * 3600))

	if !s.Done() {
		t.Fatalf("session never finished; steps=%d", s.Cluster().GlobalStep())
	}
	if s.Revocations() != 1 {
		t.Fatalf("revocations = %d, want 1", s.Revocations())
	}
	if s.Replacements() != 1 {
		t.Fatalf("replacements = %d, want 1 (retries must not burn budget)", s.Replacements())
	}
	// The replacement instance must have been requested only after the
	// rival released the slot — proof the blocked attempts retried
	// rather than panicking or giving up. Session instances: PS,
	// original worker, replacement worker.
	owned := s.Instances()
	if len(owned) != 3 {
		t.Fatalf("session owns %d instances, want 3 (ps, worker, replacement)", len(owned))
	}
	repl := owned[2]
	if repl.RequestedAt <= rival.EndedAt {
		t.Fatalf("replacement requested at %v, before the rival freed the slot at %v", repl.RequestedAt, rival.EndedAt)
	}
}

// TestNewSessionSurfacesCapacityRejection pins the error contract the
// fleet scheduler relies on: admitting a cluster into a cell without
// room fails loudly with cloud.ErrNoCapacity.
func TestNewSessionSurfacesCapacityRejection(t *testing.T) {
	cell := cloud.PoolKey{Region: cloud.USCentral1, GPU: model.K80}
	k := &sim.Kernel{}
	p := cloud.NewProvider(k, stats.NewRng(4))
	p.SetTransientCapacity(cloud.Capacity{cell: 1})
	cfg := basicConfig(2) // two workers into a one-slot cell
	if _, err := NewSession(p, cfg); !errors.Is(err, cloud.ErrNoCapacity) {
		t.Fatalf("got %v, want ErrNoCapacity", err)
	}
}

// TestSessionCostCoversOnlyOwnedInstances pins the multi-tenant
// billing boundary: a stranger's instance on the same provider must
// not appear in the session's bill.
func TestSessionCostCoversOnlyOwnedInstances(t *testing.T) {
	k := &sim.Kernel{}
	p := cloud.NewProvider(k, stats.NewRng(6))
	stranger, err := p.Launch(cloud.Request{Region: cloud.USCentral1, GPU: model.V100, Tier: cloud.OnDemand})
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSession(p, basicConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	k.Run()
	if !s.Done() {
		t.Fatal("session did not finish")
	}
	total := p.TotalCost()
	own := s.Cost()
	if own >= total {
		t.Fatalf("session cost %.4f should be below provider total %.4f (stranger bill missing)", own, total)
	}
	if diff := math.Abs(own + stranger.Cost(p.Now()) - total); diff > 1e-9 {
		t.Fatalf("owned + stranger differs from provider total by %g", diff)
	}
}
