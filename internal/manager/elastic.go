package manager

import (
	"errors"
	"fmt"

	"repro/internal/cloud"
	"repro/internal/model"
	"repro/internal/obs"
)

// This file is the controller's elastic-resize layer: a session can
// grow into cheap transient capacity during quiet hours and shrink
// ahead of the revocation waves the diurnal calibration (Fig. 9)
// predicts, instead of holding a fixed worker count and eating every
// preemption. It rides on the synchronous dynamic-batching mode —
// membership changes rebalance shares, so resizes change speed and
// cost but never the effective global batch.

// RiskSignal predicts near-future revocation pressure for one
// (region, GPU) cell at an absolute simulation hour, as a ratio to the
// cell's daily-mean hazard (1 = average hour). The default is the
// diurnal prior below; internal/fleet substitutes a history-informed
// signal that scales the prior by observed revocation rates.
type RiskSignal interface {
	RevocationRisk(r cloud.Region, g model.GPU, atHours float64) float64
}

// DiurnalRisk is the default RiskSignal: the Fig. 9 time-of-day prior,
// with no observational correction.
type DiurnalRisk struct{}

// RevocationRisk returns cloud.DiurnalRiskRatio for the cell.
func (DiurnalRisk) RevocationRisk(r cloud.Region, g model.GPU, atHours float64) float64 {
	return cloud.DiurnalRiskRatio(r, g, atHours)
}

// ElasticPolicy parameterizes the resize loop. The zero value (and the
// registered "static" policy) disables it.
type ElasticPolicy struct {
	Name string
	// CheckSeconds is the risk-evaluation cadence. The loop draws no
	// randomness, so the cadence itself never perturbs the simulation's
	// random streams.
	CheckSeconds float64
	// LookaheadHours is how far ahead the risk signal is evaluated —
	// shrinking when the wave arrives is too late, since a revocation
	// takes the worker's in-flight share with it.
	LookaheadHours float64
	// ShrinkAbove sheds one worker per check while predicted risk is at
	// or above this ratio and the cluster is above its floor.
	ShrinkAbove float64
	// GrowBelow adds one worker per check while predicted risk is at or
	// below this ratio and the cluster is below its ceiling.
	GrowBelow float64
	// MinShrinkFactor × initial workers is the floor (rounded up, never
	// below one): the session always keeps a core that makes progress.
	MinShrinkFactor float64
	// MaxGrowFactor × initial workers is the ceiling (rounded down):
	// 1.0 only re-grows what revocations or shrinks took; >1 surges
	// past the requested size in quiet hours.
	MaxGrowFactor float64
}

// Enabled reports whether the policy actually resizes.
func (p ElasticPolicy) Enabled() bool { return p.CheckSeconds > 0 }

// builtinElasticPolicies is the policy registry, in catalog order.
var builtinElasticPolicies = []ElasticPolicy{
	{Name: "static"},
	{
		Name:            "elastic",
		CheckSeconds:    300,
		LookaheadHours:  1,
		ShrinkAbove:     1.6,
		GrowBelow:       1.0,
		MinShrinkFactor: 0.5,
		MaxGrowFactor:   1.0,
	},
	{
		Name:            "surge",
		CheckSeconds:    300,
		LookaheadHours:  1,
		ShrinkAbove:     1.6,
		GrowBelow:       1.0,
		MinShrinkFactor: 0.5,
		MaxGrowFactor:   1.5,
	},
}

// ElasticPolicies lists the registered policy names in catalog order.
func ElasticPolicies() []string {
	out := make([]string, len(builtinElasticPolicies))
	for i, p := range builtinElasticPolicies {
		out[i] = p.Name
	}
	return out
}

// ElasticPolicyByName resolves a registered policy; "" means "static".
func ElasticPolicyByName(name string) (ElasticPolicy, error) {
	if name == "" {
		name = "static"
	}
	for _, p := range builtinElasticPolicies {
		if p.Name == name {
			return p, nil
		}
	}
	return ElasticPolicy{}, fmt.Errorf("manager: unknown elastic policy %q (have %v)", name, ElasticPolicies())
}

// Grows returns how many workers the elastic loop added.
func (s *Session) Grows() int { return s.grows }

// Shrinks returns how many workers the elastic loop removed.
func (s *Session) Shrinks() int { return s.shrinks }

// LiveWorkerInstances returns how many GPU instances the session
// currently holds (requested, provisioning, or running).
func (s *Session) LiveWorkerInstances() int { return len(s.instances) }

// elasticFloor is the minimum worker-instance count the loop (and the
// revocation-replacement clamp) maintains.
func (s *Session) elasticFloor() int {
	floor := int(float64(s.initialWorkers)*s.elastic.MinShrinkFactor + 0.999999)
	if floor < 1 {
		floor = 1
	}
	return floor
}

// elasticCeiling is the maximum worker-instance count the loop grows
// to, never below the floor.
func (s *Session) elasticCeiling() int {
	ceil := int(float64(s.initialWorkers) * s.elastic.MaxGrowFactor)
	if f := s.elasticFloor(); ceil < f {
		ceil = f
	}
	return ceil
}

// scheduleElasticCheck arms the next risk check.
func (s *Session) scheduleElasticCheck() {
	s.provider.Kernel().After(s.elastic.CheckSeconds, s.elasticCheck)
}

// elasticCheck is one pass of the resize loop: shrink one worker if a
// revocation wave is due, else grow one if the skies are clear and the
// pool has room. One worker per check keeps resizes gradual (the
// barrier absorbs each rebalance) and makes the loop self-limiting.
func (s *Session) elasticCheck() {
	if s.cluster.Done() {
		return
	}
	atHours := s.provider.Now().Seconds()/3600 + s.elastic.LookaheadHours
	if !s.shrinkIfRisky(atHours) {
		s.growIfClear(atHours)
	}
	s.scheduleElasticCheck()
}

// shrinkIfRisky sheds the highest-risk transient worker when the
// predicted hazard crosses the policy threshold; reports whether it
// shrank. Voluntary scale-in terminates the instance (stopping its
// meter) and retires the worker as a shrink, not a revocation — the
// survivors absorb its batch share at the next rebalance.
func (s *Session) shrinkIfRisky(atHours float64) bool {
	if len(s.instances) <= s.elasticFloor() {
		return false
	}
	var victim *cloud.Instance
	var worst float64
	for _, in := range s.ownedLiveTransients() {
		risk := s.risk.RevocationRisk(in.Region, in.GPU, atHours)
		if risk < s.elastic.ShrinkAbove {
			continue
		}
		// Highest predicted risk first; among equals, the most recent
		// launch (owned order) — it has the least warm-up sunk into it.
		if victim == nil || risk >= worst {
			if name, ok := s.instWorker[in.ID]; ok && name == s.cluster.Chief() {
				continue // never shed the checkpoint holder
			}
			victim, worst = in, risk
		}
	}
	if victim == nil {
		return false
	}
	delete(s.instances, victim.ID)
	name := s.instWorker[victim.ID]
	if name != "" {
		delete(s.instWorker, victim.ID)
		_ = s.cluster.RemoveWorker(name)
	}
	s.provider.Terminate(victim)
	s.shrinks++
	s.cfg.Trace.Record(obs.Event{
		T:      s.provider.Now().Seconds(),
		Kind:   "elastic-shrink",
		Worker: name,
		Risk:   worst,
		Detail: fmt.Sprintf("%v/%v", victim.Region, victim.GPU),
	})
	return true
}

// growIfClear adds one transient worker in the calmest configured cell
// when predicted risk is below the policy threshold. Growth is always
// transient — the whole point is harvesting the cheap tier while it is
// safe. A capacity-full or churning pool just skips the check; the
// next one retries for free.
func (s *Session) growIfClear(atHours float64) {
	if len(s.instances) >= s.elasticCeiling() {
		return
	}
	var best Placement
	found := false
	var bestRisk float64
	for _, pl := range s.growthCells() {
		risk := s.risk.RevocationRisk(pl.Region, pl.GPU, atHours)
		if risk > s.elastic.GrowBelow {
			continue
		}
		if s.provider.Churning(pl.Region) || s.provider.TransientAvailable(pl.Region, pl.GPU) == 0 {
			continue
		}
		if !found || risk < bestRisk {
			best, bestRisk, found = pl, risk, true
		}
	}
	if !found {
		return
	}
	best.Tier = cloud.Transient
	if err := s.requestWorker(best); err != nil {
		if errors.Is(err, cloud.ErrNoCapacity) {
			return // the pool filled between the check and the claim
		}
		panic(fmt.Sprintf("manager: elastic grow failed: %v", err))
	}
	s.grows++
	s.cfg.Trace.Record(obs.Event{
		T:      s.provider.Now().Seconds(),
		Kind:   "elastic-grow",
		Risk:   bestRisk,
		Detail: fmt.Sprintf("%v/%v", best.Region, best.GPU),
	})
}

// growthCells lists the distinct transient (region, GPU) cells of the
// configured workers, in config order — the elastic loop only grows
// shapes the session asked for.
func (s *Session) growthCells() []Placement {
	seen := make(map[Placement]bool, len(s.cfg.Workers))
	var out []Placement
	for _, pl := range s.cfg.Workers {
		if pl.Tier != cloud.Transient {
			continue
		}
		key := Placement{GPU: pl.GPU, Region: pl.Region, Tier: cloud.Transient}
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, key)
	}
	return out
}

// ownedLiveTransients returns the session's live transient GPU
// instances in launch order.
func (s *Session) ownedLiveTransients() []*cloud.Instance {
	var out []*cloud.Instance
	for _, in := range s.owned {
		if in.Tier != cloud.Transient || in.GPU == 0 {
			continue
		}
		if _, live := s.instances[in.ID]; live {
			out = append(out, in)
		}
	}
	return out
}
