package manager

import (
	"testing"

	"repro/internal/cloud"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/train"
)

// riskFunc adapts a closure into a RiskSignal for scripted tests.
type riskFunc func(r cloud.Region, g model.GPU, atHours float64) float64

func (f riskFunc) RevocationRisk(r cloud.Region, g model.GPU, atHours float64) float64 {
	return f(r, g, atHours)
}

func constRisk(x float64) RiskSignal {
	return riskFunc(func(cloud.Region, model.GPU, float64) float64 { return x })
}

// scriptedVictims revokes the first len(afters) transient servers it
// samples, each at its scripted lifetime; later launches survive.
type scriptedVictims struct {
	afters  []float64
	sampled int
}

func (*scriptedVictims) Name() string { return "test-scripted-victims" }
func (m *scriptedVictims) SampleLifetime(*stats.Rng, cloud.Region, model.GPU, float64) (bool, float64) {
	m.sampled++
	if m.sampled <= len(m.afters) {
		return true, m.afters[m.sampled-1]
	}
	return false, cloud.MaxTransientLifetimeSeconds
}

func calmEnv(t *testing.T, seed int64) (*sim.Kernel, *cloud.Provider) {
	t.Helper()
	lm, err := cloud.LookupLifetimeModel("norevoke")
	if err != nil {
		t.Fatal(err)
	}
	k := &sim.Kernel{}
	return k, cloud.NewProviderWithLifetime(k, stats.NewRng(seed), lm)
}

func elasticConfig(policy string, n int, risk RiskSignal) Config {
	cfg := basicConfig(n)
	cfg.Elastic = policy
	cfg.Risk = risk
	cfg.TargetSteps = 200000 // long enough to span several resize checks
	return cfg
}

func TestElasticPolicyRegistry(t *testing.T) {
	names := ElasticPolicies()
	want := []string{"static", "elastic", "surge"}
	if len(names) != len(want) {
		t.Fatalf("policies = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("policies = %v, want %v", names, want)
		}
	}
	if p, err := ElasticPolicyByName(""); err != nil || p.Enabled() {
		t.Fatalf("empty name should resolve to the disabled static policy (got %+v, %v)", p, err)
	}
	if _, err := ElasticPolicyByName("frantic"); err == nil {
		t.Fatal("unknown policy accepted")
	}
	for _, name := range []string{"elastic", "surge"} {
		p, err := ElasticPolicyByName(name)
		if err != nil || !p.Enabled() {
			t.Fatalf("%s: %+v, %v", name, p, err)
		}
	}
}

// TestElasticShrinksToFloorUnderRisk drives the shrink path: with the
// risk signal pinned above the threshold, the session sheds one worker
// per check until the floor (half the initial size) and no further.
func TestElasticShrinksToFloorUnderRisk(t *testing.T) {
	k, p := calmEnv(t, 11)
	s, err := NewSession(p, elasticConfig("elastic", 4, constRisk(3.0)))
	if err != nil {
		t.Fatal(err)
	}
	k.RunUntil(sim.Time(2 * 3600))
	if got := s.Shrinks(); got != 2 {
		t.Fatalf("shrinks = %d, want 2 (4 → floor 2)", got)
	}
	if got := s.LiveWorkerInstances(); got != 2 {
		t.Fatalf("live instances = %d, want the floor 2", got)
	}
	if got := len(s.Cluster().LiveWorkers()); got != 2 {
		t.Fatalf("live cluster workers = %d, want 2", got)
	}
	res := s.Cluster().Result()
	if got := len(res.EventsOf(train.EventShrink)); got != 2 {
		t.Fatalf("shrink events = %d, want 2", got)
	}
	if got := len(res.EventsOf(train.EventRevocation)); got != 0 {
		t.Fatalf("voluntary scale-in recorded as revocation (%d events)", got)
	}
	// The auto-derived batch policy keeps the global batch exact on the
	// shrunken cluster.
	total := 0
	for _, share := range s.Cluster().Shares() {
		total += share
	}
	if want := 4 * model.ReferenceBatch; total != want {
		t.Fatalf("post-shrink shares sum %d, want %d", total, want)
	}
	// The chief survives every shrink: it holds checkpoint duty.
	if chief := s.Cluster().Chief(); chief == "" {
		t.Fatal("no chief after shrinking")
	}
}

// TestElasticNeverShedsTheLastWorkers pins the floor against a
// shrink-happy signal on the smallest cluster: one worker shrinks to a
// floor of one, i.e. not at all.
func TestElasticNeverShedsTheLastWorkers(t *testing.T) {
	k, p := calmEnv(t, 12)
	s, err := NewSession(p, elasticConfig("elastic", 1, constRisk(100)))
	if err != nil {
		t.Fatal(err)
	}
	k.RunUntil(sim.Time(4 * 3600))
	if s.Shrinks() != 0 {
		t.Fatalf("shrank below one worker (%d shrinks)", s.Shrinks())
	}
	if got := s.LiveWorkerInstances(); got != 1 {
		t.Fatalf("live instances = %d, want 1", got)
	}
}

// TestSurgeGrowsInQuietHours drives the grow path: with risk pinned
// low, the surge policy grows past the initial size up to its 1.5×
// ceiling, one worker per check, all transient.
func TestSurgeGrowsInQuietHours(t *testing.T) {
	k, p := calmEnv(t, 13)
	s, err := NewSession(p, elasticConfig("surge", 2, constRisk(0.3)))
	if err != nil {
		t.Fatal(err)
	}
	k.RunUntil(sim.Time(2 * 3600))
	if got := s.Grows(); got != 1 {
		t.Fatalf("grows = %d, want 1 (2 → ceiling 3)", got)
	}
	if got := s.LiveWorkerInstances(); got != 3 {
		t.Fatalf("live instances = %d, want the ceiling 3", got)
	}
	for _, in := range s.Instances() {
		if in.GPU != 0 && in.Tier != cloud.Transient {
			t.Fatalf("elastic growth launched a non-transient worker")
		}
	}
}

// TestElasticGrowthRespectsPoolCapacity extends PR 4's never-exceeded
// property to elastic mixed clusters: growth skips full cells, lands in
// cells with room, and in-use never exceeds the per-(region, GPU)
// limit at any point in the run.
func TestElasticGrowthRespectsPoolCapacity(t *testing.T) {
	k80 := cloud.PoolKey{Region: cloud.USWest1, GPU: model.K80}
	p100 := cloud.PoolKey{Region: cloud.USWest1, GPU: model.P100}
	k, p := calmEnv(t, 14)
	p.SetTransientCapacity(cloud.Capacity{k80: 1, p100: 2})

	cfg := Config{
		Model: model.ResNet15(),
		Workers: []Placement{
			{GPU: model.K80, Region: cloud.USWest1, Tier: cloud.Transient},
			{GPU: model.P100, Region: cloud.USWest1, Tier: cloud.Transient},
		},
		TargetSteps: 200000,
		Elastic:     "surge", // ceiling 3 = 1.5 × 2
		Risk:        constRisk(0.3),
		Seed:        9,
	}
	s, err := NewSession(p, cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Sample the pools every minute: the property is "never exceeded",
	// not "not exceeded at the end".
	var maxK80, maxP100 int
	var poll func()
	poll = func() {
		if n := p.TransientInUse(k80.Region, k80.GPU); n > maxK80 {
			maxK80 = n
		}
		if n := p.TransientInUse(p100.Region, p100.GPU); n > maxP100 {
			maxP100 = n
		}
		k.After(60, poll)
	}
	poll()

	k.RunUntil(sim.Time(2 * 3600))
	if maxK80 > 1 || maxP100 > 2 {
		t.Fatalf("pool exceeded: K80 peak %d (cap 1), P100 peak %d (cap 2)", maxK80, maxP100)
	}
	// The K80 cell was full from the start, so the one grow up to the
	// ceiling must have landed in the P100 cell.
	if got := s.Grows(); got != 1 {
		t.Fatalf("grows = %d, want 1", got)
	}
	if got := p.TransientInUse(p100.Region, p100.GPU); got != 2 {
		t.Fatalf("P100 in use = %d, want 2 (initial + growth)", got)
	}
	if got := p.TransientInUse(k80.Region, k80.GPU); got != 1 {
		t.Fatalf("K80 in use = %d, want 1 (no growth into a full cell)", got)
	}
}

// TestElasticRevocationClampsToFloor pins the replacement clamp: above
// the floor a revoked worker is not replaced (the resize loop decides
// later), below it the configured policy still applies.
func TestElasticRevocationClampsToFloor(t *testing.T) {
	// 3 workers, floor 2: the first revocation leaves 2 (≥ floor, no
	// replacement), the second leaves 1 (< floor, replace immediately).
	lm := &scriptedVictims{afters: []float64{1800, 3600}}
	k := &sim.Kernel{}
	p := cloud.NewProviderWithLifetime(k, stats.NewRng(15), lm)
	cfg := elasticConfig("elastic", 3, constRisk(1.3)) // neutral band: no resizes
	cfg.Replacement = ReplaceImmediate
	s, err := NewSession(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	k.RunUntil(sim.Time(3 * 3600))
	if got := s.Revocations(); got != 2 {
		t.Fatalf("revocations = %d, want 2", got)
	}
	if got := s.Replacements(); got != 1 {
		t.Fatalf("replacements = %d, want 1 (only the below-floor loss is replaced)", got)
	}
	if got := s.LiveWorkerInstances(); got != 2 {
		t.Fatalf("live instances = %d, want the floor 2", got)
	}
}

// TestElasticBlockedReplacementDuringResize is the churn-retry path
// under elasticity: a below-floor replacement is capacity-blocked by a
// rival squatting on the freed slot, the session retries on the churn
// cadence, and the elastic loop neither doubles the request nor grows
// past the slot when it frees.
func TestElasticBlockedReplacementDuringResize(t *testing.T) {
	cell := cloud.PoolKey{Region: cloud.USCentral1, GPU: model.K80}
	lm := &scriptedVictims{afters: []float64{1800}}
	k := &sim.Kernel{}
	p := cloud.NewProviderWithLifetime(k, stats.NewRng(16), lm)
	p.SetTransientCapacity(cloud.Capacity{cell: 1})

	var rival *cloud.Instance
	p.SetCapacityFreedHook(func(key cloud.PoolKey) {
		if rival != nil {
			return
		}
		rival = p.MustLaunch(cloud.Request{Region: cell.Region, GPU: cell.GPU, Tier: cloud.Transient})
	})

	cfg := elasticConfig("elastic", 1, constRisk(0.3)) // grow-hungry
	// Delay the replacement so the rival can squat on the freed slot
	// first (the immediate path reclaims it before the hook fires).
	cfg.Replacement = ReplaceDelayed
	cfg.DelaySeconds = 60
	s, err := NewSession(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	k.RunUntil(sim.Time(2 * 3600))
	if rival == nil {
		t.Fatal("scripted revocation never fired")
	}
	if got := s.LiveWorkerInstances(); got != 0 {
		t.Fatalf("live instances = %d while the rival holds the only slot", got)
	}
	// Free the slot: exactly one instance (replacement or growth, not
	// both) may claim it — the session is back at its floor and the
	// pool is at capacity.
	p.Terminate(rival)
	k.RunUntil(sim.Time(4 * 3600))
	if got := s.LiveWorkerInstances(); got != 1 {
		t.Fatalf("live instances = %d after the slot freed, want exactly 1", got)
	}
	if got := p.TransientInUse(cell.Region, cell.GPU); got != 1 {
		t.Fatalf("cell in use = %d, want 1 (cap never exceeded)", got)
	}
	if got := s.Replacements(); got != 1 {
		t.Fatalf("replacements = %d, want 1 (the retry loop burns one budget unit)", got)
	}
}

// TestElasticRevocationMidRebalance lands a revocation right after a
// shrink has forced a rebalance, while the smaller cluster's round is
// in flight: the barrier must absorb both membership changes and keep
// training to completion with the global batch intact.
func TestElasticRevocationMidRebalance(t *testing.T) {
	// The first check (t=300 s) shrinks one worker; the scripted victim
	// dies at 320 s of lifetime — mid-round on the freshly rebalanced
	// 3-worker cluster (live 3 ≥ floor 2, so no replacement either).
	lm := &scriptedVictims{afters: []float64{320}}
	k := &sim.Kernel{}
	p := cloud.NewProviderWithLifetime(k, stats.NewRng(17), lm)
	// The loop looks one hour ahead, so the first check (t = 300 s)
	// evaluates risk at ≈1.08 h; let only that one shrink.
	cfg := elasticConfig("elastic", 4, riskFunc(func(_ cloud.Region, _ model.GPU, atHours float64) float64 {
		if atHours < 1.1 {
			return 3.0
		}
		return 1.3
	}))
	cfg.TargetSteps = 20000
	s, err := NewSession(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	k.RunUntil(sim.Time(24 * 3600))
	if s.Shrinks() < 1 {
		t.Fatalf("shrinks = %d, want ≥1", s.Shrinks())
	}
	if s.Revocations() != 1 {
		t.Fatalf("revocations = %d, want 1", s.Revocations())
	}
	if !s.Done() {
		t.Fatalf("session stalled after shrink+revocation (step %d)", s.Cluster().GlobalStep())
	}
}
