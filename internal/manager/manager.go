// Package manager implements CM-DARE's resource manager and
// controller (paper Fig. 1): it acquires cloud instances for a
// training session, wires instance lifecycle events into the training
// cluster (joins, revocations), and applies replacement policies when
// transient workers are revoked.
//
// The manager is the glue between the cloud substrate
// (internal/cloud) and the training runtime (internal/train); neither
// of those packages knows about the other.
package manager

import (
	"errors"
	"fmt"

	"repro/internal/cloud"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/train"
)

// ReplacementPolicy selects what the controller does when a worker is
// revoked (§V-B studies immediate versus delayed acquisition).
type ReplacementPolicy int

const (
	// ReplaceNone lets the cluster shrink.
	ReplaceNone ReplacementPolicy = iota + 1
	// ReplaceImmediate requests a same-type replacement at once; the
	// paper finds revocations do not slow subsequent requests, so this
	// is the recommended default.
	ReplaceImmediate
	// ReplaceDelayed waits DelaySeconds before requesting.
	ReplaceDelayed
)

// String names the policy.
func (p ReplacementPolicy) String() string {
	switch p {
	case ReplaceNone:
		return "none"
	case ReplaceImmediate:
		return "immediate"
	case ReplaceDelayed:
		return "delayed"
	default:
		return fmt.Sprintf("ReplacementPolicy(%d)", int(p))
	}
}

// Placement describes one worker to acquire.
type Placement struct {
	GPU    model.GPU
	Region cloud.Region
	Tier   cloud.Tier
}

// Config describes a managed training session.
type Config struct {
	Model   model.Model
	Workers []Placement
	// ParameterServers count and region; parameter servers run
	// on-demand (the paper never risks the non-revocable role).
	ParameterServers int
	PSRegion         cloud.Region

	TargetSteps        int64
	CheckpointInterval int64

	Replacement  ReplacementPolicy
	DelaySeconds float64 // for ReplaceDelayed

	// MaxReplacements bounds controller spending; 0 means unlimited.
	MaxReplacements int

	// Batch switches the cluster to synchronous dynamic batching
	// (train.BatchPolicy); nil keeps the asynchronous default. A
	// non-static Elastic policy with a nil Batch auto-derives
	// model.ReferenceBatch per initial worker — elastic resizing only
	// makes sense when shares rebalance.
	Batch *train.BatchPolicy

	// Elastic names a registered resize policy ("static", "elastic",
	// "surge"); empty means static.
	Elastic string

	// Risk overrides the revocation-risk signal the elastic loop
	// consults; nil uses the DiurnalRisk prior.
	Risk RiskSignal

	Seed int64

	// Trace, when non-nil, receives the session's sim-plane timeline:
	// the cluster's own events plus the manager layer's (worker
	// startups, replacements, elastic resize decisions with the risk
	// that triggered them). Tracing never perturbs the simulation.
	Trace *obs.Recorder
}

// validate rejects impossible configurations and fills defaults. The
// catalog check runs against the provider the session will launch on,
// since each market offers its own cells.
func (c *Config) validate(spec *cloud.ProviderSpec) error {
	if len(c.Workers) == 0 {
		return fmt.Errorf("manager: no workers")
	}
	for i, w := range c.Workers {
		if !w.GPU.Valid() {
			return fmt.Errorf("manager: worker %d invalid GPU", i)
		}
		if !spec.Offers(w.Region, w.GPU) {
			return fmt.Errorf("manager: worker %d: %v not offered in %v", i, w.GPU, w.Region)
		}
	}
	if c.ParameterServers == 0 {
		c.ParameterServers = 1
	}
	if c.ParameterServers < 0 {
		return fmt.Errorf("manager: negative parameter server count")
	}
	if c.PSRegion == 0 {
		c.PSRegion = c.Workers[0].Region
	}
	if c.Replacement == 0 {
		c.Replacement = ReplaceImmediate
	}
	if c.Replacement == ReplaceDelayed && c.DelaySeconds <= 0 {
		return fmt.Errorf("manager: delayed replacement needs positive DelaySeconds")
	}
	elastic, err := ElasticPolicyByName(c.Elastic)
	if err != nil {
		return err
	}
	if elastic.Enabled() && c.Batch == nil {
		c.Batch = &train.BatchPolicy{
			GlobalBatch: model.ReferenceBatch * len(c.Workers),
			Dynamic:     true,
		}
	}
	return nil
}

// Session is one managed training run. All methods run on the
// simulation thread.
type Session struct {
	provider *cloud.Provider
	cluster  *train.Cluster
	cfg      Config

	psInstances []*cloud.Instance
	psUp        int
	started     bool

	// owned lists every instance this session ever launched (parameter
	// servers, workers, replacements), in launch order. It is the
	// session's billing scope: on a shared provider running many
	// sessions (internal/fleet), each session pays for exactly its own
	// servers.
	owned []*cloud.Instance

	// pending holds worker placements whose instances are up before
	// the parameter servers are.
	pending []Placement

	instances    map[int64]Placement // live GPU instances by ID
	instWorker   map[int64]string    // instance → cluster worker name
	revocations  int
	replacements int

	// Elastic-resize state (elastic.go); elastic is the zero value for
	// static sessions.
	elastic        ElasticPolicy
	risk           RiskSignal
	initialWorkers int
	grows          int
	shrinks        int

	trainingStartedAt float64
}

// NewSession builds the session and immediately requests every
// instance (parameter servers and workers) from the provider. Run the
// kernel to make progress; the session starts training once the
// parameter servers and the first worker are up.
func NewSession(p *cloud.Provider, cfg Config) (*Session, error) {
	if err := cfg.validate(p.Spec()); err != nil {
		return nil, err
	}
	cluster, err := train.NewCluster(p.Kernel(), train.Config{
		Model:              cfg.Model,
		ParameterServers:   cfg.ParameterServers,
		TargetSteps:        cfg.TargetSteps,
		CheckpointInterval: cfg.CheckpointInterval,
		Batch:              cfg.Batch,
		Seed:               cfg.Seed,
		Trace:              cfg.Trace,
	})
	if err != nil {
		return nil, err
	}
	elastic, err := ElasticPolicyByName(cfg.Elastic)
	if err != nil {
		return nil, err
	}
	risk := cfg.Risk
	if risk == nil {
		risk = DiurnalRisk{}
	}
	s := &Session{
		provider:       p,
		cluster:        cluster,
		cfg:            cfg,
		instances:      make(map[int64]Placement),
		instWorker:     make(map[int64]string),
		elastic:        elastic,
		risk:           risk,
		initialWorkers: len(cfg.Workers),
	}
	if cfg.TargetSteps > 0 {
		// Stop the meter the moment training completes; cloud servers
		// left running after the session bill (and churn) for nothing.
		cluster.WhenStep(cfg.TargetSteps, s.TerminateAll)
	}
	for i := 0; i < cfg.ParameterServers; i++ {
		in, err := p.Launch(cloud.Request{
			Region:    cfg.PSRegion,
			Tier:      cloud.OnDemand,
			OnRunning: func(*cloud.Instance) { s.psRunning() },
		})
		if err != nil {
			return nil, err
		}
		s.psInstances = append(s.psInstances, in)
		s.owned = append(s.owned, in)
	}
	for _, w := range cfg.Workers {
		if err := s.requestWorker(w); err != nil {
			return nil, err
		}
	}
	if s.elastic.Enabled() {
		s.scheduleElasticCheck()
	}
	return s, nil
}

// Cluster exposes the underlying training cluster (for trackers,
// bottleneck checks, and assertions).
func (s *Session) Cluster() *train.Cluster { return s.cluster }

// Revocations returns how many worker revocations the session has
// absorbed.
func (s *Session) Revocations() int { return s.revocations }

// Replacements returns how many replacement instances were requested.
func (s *Session) Replacements() int { return s.replacements }

// TrainingStartedAt returns when the first worker began training.
func (s *Session) TrainingStartedAt() float64 { return s.trainingStartedAt }

// TrainingSeconds returns the time from training start until the
// target was reached; it is only meaningful once Done.
func (s *Session) TrainingSeconds() float64 {
	res := s.cluster.Result()
	if !res.Done {
		return 0
	}
	// The cluster's own TotalSeconds counts from cluster Start, which
	// is when training began.
	return res.TotalSeconds
}

// Done reports whether the target step count was reached.
func (s *Session) Done() bool { return s.cluster.Done() }

// Cost returns the session's bill so far in USD: the summed cost of
// every instance the session launched. On a dedicated provider this
// equals Provider.TotalCost (same instances, same order, so the sum is
// bit-identical); on a shared, multi-session provider it is the only
// correct per-job bill.
func (s *Session) Cost() float64 {
	var sum float64
	for _, in := range s.owned {
		sum += in.Cost(s.provider.Now())
	}
	return sum
}

// Instances returns every instance the session ever launched, in
// launch order.
func (s *Session) Instances() []*cloud.Instance {
	out := make([]*cloud.Instance, len(s.owned))
	copy(out, s.owned)
	return out
}

// requestWorker launches one GPU instance and wires its lifecycle.
func (s *Session) requestWorker(pl Placement) error {
	in, err := s.provider.Launch(cloud.Request{
		Region:    pl.Region,
		GPU:       pl.GPU,
		Tier:      pl.Tier,
		OnRunning: func(in *cloud.Instance) { s.workerUp(in, pl) },
		OnRevoked: func(in *cloud.Instance) { s.workerRevoked(in) },
	})
	if err != nil {
		return err
	}
	s.instances[in.ID] = pl
	s.owned = append(s.owned, in)
	return nil
}

// psRunning counts parameter servers coming up and flushes queued
// worker joins once all are ready.
func (s *Session) psRunning() {
	s.psUp++
	if s.psUp < s.cfg.ParameterServers {
		return
	}
	for _, pl := range s.pending {
		s.joinWorker(pl)
	}
	s.pending = nil
}

// workerUp handles a GPU instance reaching Running.
func (s *Session) workerUp(in *cloud.Instance, pl Placement) {
	if s.cluster.Done() {
		s.provider.Terminate(in)
		return
	}
	if s.psUp < s.cfg.ParameterServers {
		s.pending = append(s.pending, pl)
		return
	}
	name := s.joinWorker(pl)
	s.instWorker[in.ID] = name
	s.cfg.Trace.Record(obs.Event{
		T:      s.provider.Now().Seconds(),
		Kind:   "startup",
		Worker: name,
		Value:  float64(in.RunningAt - in.RequestedAt),
	})
}

// joinWorker starts the cluster on first join and adds the worker
// with a cold setup (framework start, session join, graph build,
// dataset download — Fig. 10's cold path).
func (s *Session) joinWorker(pl Placement) string {
	if !s.started {
		s.started = true
		s.trainingStartedAt = s.provider.Now().Seconds()
		s.cluster.Start()
	}
	name, err := s.cluster.AddWorker(train.WorkerSpec{GPU: pl.GPU}, train.JoinMode{Cold: true})
	if err != nil {
		// AddWorker only fails on invalid GPU or unstarted cluster,
		// both impossible here; surface loudly if the invariant breaks.
		panic(fmt.Sprintf("manager: join failed: %v", err))
	}
	return name
}

// workerRevoked handles a preemption: kill the cluster worker and
// apply the replacement policy.
func (s *Session) workerRevoked(in *cloud.Instance) {
	pl, ok := s.instances[in.ID]
	if !ok {
		return
	}
	delete(s.instances, in.ID)
	s.revocations++
	if name, ok := s.instWorker[in.ID]; ok {
		delete(s.instWorker, in.ID)
		// The worker may legitimately be gone already (e.g. session
		// finished); ignore that case but keep training-time errors
		// loud via the cluster's own validation.
		_ = s.cluster.KillWorker(name)
	}
	if s.cluster.Done() {
		return
	}
	// An elastic session only replaces down to its floor: above it the
	// resize loop decides when (and where) to regrow — usually after
	// the revocation wave that just took this worker has passed.
	if s.elastic.Enabled() && len(s.instances) >= s.elasticFloor() {
		return
	}
	switch s.cfg.Replacement {
	case ReplaceImmediate:
		s.replace(pl, 0)
	case ReplaceDelayed:
		s.replace(pl, s.cfg.DelaySeconds)
	case ReplaceNone:
	}
}

// Capacity-blocked replacement retry cadence, in seconds of virtual
// time. While the region is inside the post-revocation churn window
// (Fig. 7) the transient pool is actively cycling — revocations are
// freeing slots on minute timescales — so a blocked session polls
// quickly; in a calm region nothing frees until another job finishes
// or the 24 h cap lands, so it backs off.
const (
	capacityRetryChurnSeconds = 20
	capacityRetryCalmSeconds  = 60
)

// replace requests a same-placement instance after delay seconds,
// respecting the replacement budget. On a capacity-constrained
// provider (internal/fleet's shared pool) the request can be rejected
// with cloud.ErrNoCapacity; the session then retries on a churn-aware
// cadence until a slot frees or training finishes, consuming only one
// unit of the replacement budget for the whole retry loop.
func (s *Session) replace(pl Placement, delay float64) {
	if s.cfg.MaxReplacements > 0 && s.replacements >= s.cfg.MaxReplacements {
		return
	}
	s.replacements++
	var launch func()
	launch = func() {
		if s.cluster.Done() {
			return
		}
		// An elastic grow may have refilled the gap while this
		// replacement was delayed or capacity-blocked; launching anyway
		// would overshoot the pool the policy maintains.
		if s.elastic.Enabled() && len(s.instances) >= s.elasticFloor() {
			return
		}
		err := s.requestWorker(pl)
		switch {
		case err == nil:
			s.cfg.Trace.Record(obs.Event{
				T:      s.provider.Now().Seconds(),
				Kind:   "replace",
				Detail: fmt.Sprintf("%v/%v", pl.Region, pl.GPU),
			})
		case errors.Is(err, cloud.ErrNoCapacity):
			retry := capacityRetryCalmSeconds
			if s.provider.Churning(pl.Region) {
				retry = capacityRetryChurnSeconds
			}
			s.cfg.Trace.Record(obs.Event{
				T:      s.provider.Now().Seconds(),
				Kind:   "replace-blocked",
				Value:  float64(retry),
				Detail: fmt.Sprintf("%v/%v", pl.Region, pl.GPU),
			})
			s.provider.Kernel().After(float64(retry), launch)
		default:
			// Other replacement failures mean an invalid placement,
			// which validate() already excluded.
			panic(fmt.Sprintf("manager: replacement failed: %v", err))
		}
	}
	if delay <= 0 {
		launch()
		return
	}
	s.provider.Kernel().After(delay, launch)
}

// TerminateAll stops every instance the session owns (end of study or
// budget cut). Terminating an already-ended instance is a no-op, so
// iterating the full owned list is safe.
func (s *Session) TerminateAll() {
	for _, in := range s.owned {
		s.provider.Terminate(in)
	}
}
