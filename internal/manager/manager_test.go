package manager

import (
	"testing"

	"repro/internal/cloud"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/stats"
)

func newEnv(seed int64) (*sim.Kernel, *cloud.Provider) {
	k := &sim.Kernel{}
	return k, cloud.NewProvider(k, stats.NewRng(seed))
}

func basicConfig(n int) Config {
	return Config{
		Model:              model.ResNet15(),
		Workers:            placements(model.K80, cloud.USCentral1, n),
		TargetSteps:        3000,
		CheckpointInterval: 1000,
		Seed:               1,
	}
}

func placements(g model.GPU, r cloud.Region, n int) []Placement {
	out := make([]Placement, n)
	for i := range out {
		out[i] = Placement{GPU: g, Region: r, Tier: cloud.Transient}
	}
	return out
}

func TestSessionTrainsToCompletion(t *testing.T) {
	k, p := newEnv(2)
	s, err := NewSession(p, basicConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	k.RunUntil(sim.Time(3 * 3600))
	if !s.Done() {
		t.Fatalf("session not done after 3 h; steps = %d", s.Cluster().GlobalStep())
	}
	if s.TrainingStartedAt() < 60 || s.TrainingStartedAt() > 300 {
		t.Errorf("training started at %.1f s, want after instance startup (~60–300 s)", s.TrainingStartedAt())
	}
	res := s.Cluster().Result()
	if res.CheckpointCount < 2 {
		t.Errorf("checkpoints = %d, want ≥2", res.CheckpointCount)
	}
	if s.Cost() <= 0 {
		t.Error("cost should be positive")
	}
}

func TestSessionRejectsBadConfigs(t *testing.T) {
	_, p := newEnv(3)
	bad := []Config{
		{},
		{Model: model.ResNet15(), Workers: []Placement{{GPU: model.V100, Region: cloud.USEast1, Tier: cloud.Transient}}}, // V100 N/A in us-east1
		{Model: model.ResNet15(), Workers: placements(model.K80, cloud.USCentral1, 1), Replacement: ReplaceDelayed},      // missing delay
	}
	for i, cfg := range bad {
		if _, err := NewSession(p, cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestImmediateReplacementKeepsClusterSize(t *testing.T) {
	if testing.Short() {
		t.Skip("long transient-cluster campaign; skipped in -short mode")
	}
	// In a high-revocation region with immediate replacement, the
	// session should absorb revocations and still finish long
	// workloads; replacements requested ≥ revocations absorbed... and
	// every revocation with budget left triggers a request.
	k, p := newEnv(5)
	cfg := Config{
		Model:              model.ResNet15(),
		Workers:            placements(model.K80, cloud.EuropeWest1, 3), // 66% revocation cell
		TargetSteps:        250000,                                      // ≈2.5 h at 3×9.46 steps/s
		CheckpointInterval: 4000,
		Replacement:        ReplaceImmediate,
		Seed:               7,
	}
	s, err := NewSession(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	k.RunUntil(sim.Time(24 * 3600))
	if !s.Done() {
		t.Fatalf("session not done; steps=%d revocations=%d", s.Cluster().GlobalStep(), s.Revocations())
	}
	if s.Revocations() > 0 && s.Replacements() == 0 {
		t.Error("revocations absorbed but no replacements requested")
	}
	if s.Replacements() > s.Revocations() {
		t.Errorf("replacements %d exceed revocations %d", s.Replacements(), s.Revocations())
	}
}

func TestReplaceNonePolicyShrinks(t *testing.T) {
	if testing.Short() {
		t.Skip("long transient-cluster campaign; skipped in -short mode")
	}
	k, p := newEnv(11)
	cfg := Config{
		Model:       model.ResNet15(),
		Workers:     placements(model.K80, cloud.EuropeWest1, 4),
		TargetSteps: 2000000, // will not finish in 24 h — we only watch the cluster shrink
		Replacement: ReplaceNone,
		Seed:        13,
	}
	s, err := NewSession(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	k.RunUntil(sim.Time(24 * 3600))
	if s.Replacements() != 0 {
		t.Fatalf("ReplaceNone requested %d replacements", s.Replacements())
	}
	if s.Revocations() == 0 {
		t.Skip("no revocations drawn in 24h for this seed; nothing to assert")
	}
	live := len(s.Cluster().LiveWorkers())
	if live >= 4 {
		t.Errorf("live workers = %d after %d revocations with no replacement", live, s.Revocations())
	}
}

func TestDelayedReplacement(t *testing.T) {
	if testing.Short() {
		t.Skip("long transient-cluster campaign; skipped in -short mode")
	}
	k, p := newEnv(17)
	cfg := Config{
		Model:        model.ResNet15(),
		Workers:      placements(model.P100, cloud.USEast1, 2), // 70% revocation cell
		TargetSteps:  1000000,
		Replacement:  ReplaceDelayed,
		DelaySeconds: 3600,
		Seed:         19,
	}
	s, err := NewSession(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	k.RunUntil(sim.Time(12 * 3600))
	if s.Revocations() == 0 {
		t.Skip("no revocations drawn; nothing to assert")
	}
	if s.Replacements() > s.Revocations() {
		t.Errorf("replacements %d exceed revocations %d", s.Replacements(), s.Revocations())
	}
}

func TestMaxReplacementsBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("long transient-cluster campaign; skipped in -short mode")
	}
	k, p := newEnv(23)
	cfg := Config{
		Model:           model.ResNet15(),
		Workers:         placements(model.P100, cloud.USEast1, 4),
		TargetSteps:     5000000,
		Replacement:     ReplaceImmediate,
		MaxReplacements: 2,
		Seed:            29,
	}
	s, err := NewSession(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	k.RunUntil(sim.Time(30 * 3600))
	if s.Replacements() > 2 {
		t.Fatalf("replacements %d exceed budget 2", s.Replacements())
	}
}

func TestTerminateAllStopsBilling(t *testing.T) {
	k, p := newEnv(31)
	s, err := NewSession(p, basicConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	k.RunUntil(sim.Time(600))
	s.TerminateAll()
	cost := s.Cost()
	k.RunUntil(sim.Time(7200))
	if s.Cost() != cost {
		t.Fatalf("cost kept accruing after TerminateAll: %.4f → %.4f", cost, s.Cost())
	}
}

func TestPolicyStrings(t *testing.T) {
	if ReplaceNone.String() != "none" || ReplaceImmediate.String() != "immediate" || ReplaceDelayed.String() != "delayed" {
		t.Error("policy stringers broken")
	}
}
