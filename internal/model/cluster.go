package model

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// WorkerGroup is one homogeneous slice of a training cluster: Count
// workers of one GPU type.
type WorkerGroup struct {
	GPU   GPU
	Count int
}

// ClusterSpec describes a (possibly mixed-GPU) worker composition as
// an ordered list of homogeneous groups — the paper's Table III
// (x, y, z) notation generalized to any catalog. The zero value (nil)
// means "unspecified"; callers normalize it to a homogeneous spec.
type ClusterSpec []WorkerGroup

// HomogeneousCluster is the single-group spec n × g.
func HomogeneousCluster(g GPU, n int) ClusterSpec {
	return ClusterSpec{{GPU: g, Count: n}}
}

// Validate rejects empty specs, invalid GPUs, and non-positive counts.
func (c ClusterSpec) Validate() error {
	if len(c) == 0 {
		return fmt.Errorf("model: empty cluster spec")
	}
	for i, grp := range c {
		if !grp.GPU.Valid() {
			return fmt.Errorf("model: cluster group %d has invalid GPU %d", i, int(grp.GPU))
		}
		if grp.Count <= 0 {
			return fmt.Errorf("model: cluster group %d has non-positive count %d", i, grp.Count)
		}
	}
	return nil
}

// TotalWorkers sums the group counts.
func (c ClusterSpec) TotalWorkers() int {
	var n int
	for _, grp := range c {
		n += grp.Count
	}
	return n
}

// GPUs expands the spec to one GPU per worker, in group order.
func (c ClusterSpec) GPUs() []GPU {
	out := make([]GPU, 0, c.TotalWorkers())
	for _, grp := range c {
		for i := 0; i < grp.Count; i++ {
			out = append(out, grp.GPU)
		}
	}
	return out
}

// Heterogeneous reports whether the spec mixes GPU types.
func (c ClusterSpec) Heterogeneous() bool {
	for _, grp := range c[1:] {
		if grp.GPU != c[0].GPU {
			return true
		}
	}
	return false
}

// Canonical returns the spec with duplicate groups merged and groups
// sorted in catalog (ascending capability) order — the normalized form
// String renders and cache keys embed, so "1xV100+2xK80" and
// "2xK80+1xV100" mean (and key as) the same cluster.
func (c ClusterSpec) Canonical() ClusterSpec {
	counts := make(map[GPU]int, len(c))
	for _, grp := range c {
		counts[grp.GPU] += grp.Count
	}
	out := make(ClusterSpec, 0, len(counts))
	for _, g := range AllGPUs() {
		if n := counts[g]; n > 0 {
			out = append(out, WorkerGroup{GPU: g, Count: n})
		}
	}
	// GPUs outside the catalog order (future additions) keep a stable
	// tail order by enum value.
	var rest []GPU
	for g, n := range counts {
		if n > 0 && !g.Valid() {
			rest = append(rest, g)
		}
	}
	sort.Slice(rest, func(i, j int) bool { return rest[i] < rest[j] })
	for _, g := range rest {
		out = append(out, WorkerGroup{GPU: g, Count: counts[g]})
	}
	return out
}

// String renders the canonical "2xK80+1xV100" form.
func (c ClusterSpec) String() string {
	parts := make([]string, 0, len(c))
	for _, grp := range c.Canonical() {
		parts = append(parts, fmt.Sprintf("%dx%s", grp.Count, grp.GPU))
	}
	return strings.Join(parts, "+")
}

// ParseClusterSpec parses the "2xK80+1xV100" notation String renders.
func ParseClusterSpec(s string) (ClusterSpec, error) {
	if strings.TrimSpace(s) == "" {
		return nil, fmt.Errorf("model: empty cluster spec")
	}
	var out ClusterSpec
	for _, part := range strings.Split(s, "+") {
		part = strings.TrimSpace(part)
		n, gpuName, ok := strings.Cut(part, "x")
		if !ok {
			return nil, fmt.Errorf("model: cluster group %q: want <count>x<gpu>", part)
		}
		count, err := strconv.Atoi(strings.TrimSpace(n))
		if err != nil || count <= 0 {
			return nil, fmt.Errorf("model: cluster group %q: bad count", part)
		}
		g, err := ParseGPU(strings.TrimSpace(gpuName))
		if err != nil {
			return nil, err
		}
		out = append(out, WorkerGroup{GPU: g, Count: count})
	}
	return out.Canonical(), nil
}

// BatchShares splits a global minibatch of `global` samples across
// workers proportionally to their weights (throughputs for dynamic
// batching, all-ones for an equal split), clamped per worker to
// [min, max] where the clamp is feasible. The exact global sum is the
// invariant — synchronous SGD's effective batch size is a
// hyperparameter, so rebalancing on membership changes must never
// drift it — and therefore wins over the clamps when the live worker
// count makes both unsatisfiable (e.g. the cluster shrank below
// global/max workers). Allocation is deterministic: waterfill the
// clamps, then largest-remainder round with index-order ties.
func BatchShares(global int, weights []float64, min, max int) []int {
	n := len(weights)
	if n == 0 {
		return nil
	}
	if min < 1 {
		min = 1
	}
	if max < min {
		max = min
	}
	w := make([]float64, n)
	var sum float64
	for i, x := range weights {
		if x > 0 {
			w[i] = x
			sum += x
		}
	}
	if sum == 0 { // degenerate weights: equal split
		for i := range w {
			w[i] = 1
		}
	}

	shares := make([]int, n)
	active := make([]int, 0, n)
	for i := range w {
		active = append(active, i)
	}
	remaining := global
	// Waterfill: freeze workers whose proportional share violates a
	// clamp, re-split the rest, repeat until stable.
	for {
		var totalW float64
		for _, i := range active {
			totalW += w[i]
		}
		if len(active) == 0 || totalW == 0 {
			break
		}
		clamped := false
		next := active[:0]
		for _, i := range active {
			ideal := float64(remaining) * w[i] / totalW
			switch {
			case ideal < float64(min):
				shares[i] = min
				remaining -= min
				clamped = true
			case ideal > float64(max):
				shares[i] = max
				remaining -= max
				clamped = true
			default:
				next = append(next, i)
			}
		}
		active = next
		if !clamped {
			break
		}
	}
	// Floor the still-active workers' proportional shares; their
	// fractional parts order the remainder distribution
	// (largest-remainder rounding, index-order ties).
	order := make([]int, 0, n)
	if len(active) > 0 {
		var totalW float64
		for _, i := range active {
			totalW += w[i]
		}
		fracOf := make(map[int]float64, len(active))
		for _, i := range active {
			ideal := float64(remaining) * w[i] / totalW
			if ideal < 0 {
				ideal = 0
			}
			shares[i] = int(ideal)
			fracOf[i] = ideal - float64(shares[i])
		}
		order = append(order, active...)
		sort.SliceStable(order, func(a, b int) bool { return fracOf[order[a]] > fracOf[order[b]] })
	}
	for i := 0; i < n; i++ {
		frozen := true
		for _, a := range active {
			if a == i {
				frozen = false
				break
			}
		}
		if frozen {
			order = append(order, i)
		}
	}
	leftover := global
	for _, s := range shares {
		leftover -= s
	}
	// Place the leftover one sample at a time: first respecting the
	// max clamp, then — only when the clamps cannot carry the exact
	// global batch — past it; the sum is the invariant.
	for _, respectMax := range []bool{true, false} {
		for leftover > 0 {
			moved := false
			for _, i := range order {
				if leftover == 0 {
					break
				}
				if respectMax && shares[i] >= max {
					continue
				}
				shares[i]++
				leftover--
				moved = true
			}
			if !moved {
				break
			}
		}
	}
	// Negative leftover (the clamp waterfill overshot the global
	// batch): walk shares back down — first only those above min,
	// which suffices whenever the clamps are feasible, then past the
	// min clamp but never below one sample.
	for _, floor := range []int{min, 1} {
		for leftover < 0 {
			moved := false
			for _, i := range order {
				if leftover == 0 {
					break
				}
				if shares[i] > floor {
					shares[i]--
					leftover++
					moved = true
				}
			}
			if !moved {
				break
			}
		}
	}
	return shares
}
