package model

import (
	"math/rand"
	"testing"
)

func TestClusterSpecCanonicalAndParse(t *testing.T) {
	spec := ClusterSpec{{V100, 1}, {K80, 2}, {K80, 1}}
	if got, want := spec.String(), "3xK80+1xV100"; got != want {
		t.Fatalf("canonical string = %q, want %q", got, want)
	}
	parsed, err := ParseClusterSpec("1xV100 + 2xK80+1xK80")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if got, want := parsed.String(), "3xK80+1xV100"; got != want {
		t.Fatalf("parsed canonical = %q, want %q", got, want)
	}
	if parsed.TotalWorkers() != 4 {
		t.Fatalf("total workers = %d, want 4", parsed.TotalWorkers())
	}
	if !parsed.Heterogeneous() {
		t.Fatalf("3xK80+1xV100 should be heterogeneous")
	}
	if HomogeneousCluster(P100, 2).Heterogeneous() {
		t.Fatalf("2xP100 should be homogeneous")
	}
	if got := HomogeneousCluster(P100, 2).String(); got != "2xP100" {
		t.Fatalf("homogeneous string = %q", got)
	}
	for _, bad := range []string{"", "K80", "0xK80", "-1xP100", "2xTPU"} {
		if _, err := ParseClusterSpec(bad); err == nil {
			t.Errorf("ParseClusterSpec(%q) accepted", bad)
		}
	}
}

// TestBatchSharesPreserveGlobalBatch is the rebalance property the
// synchronous mode relies on: for any worker count, weights, and
// feasible clamps, the shares sum to exactly the global batch and every
// share respects the [min, max] clamp.
func TestBatchSharesPreserveGlobalBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 2000; trial++ {
		n := 1 + rng.Intn(12)
		min := 1 + rng.Intn(64)
		max := min + rng.Intn(512)
		// A feasible global batch for these clamps.
		global := n*min + rng.Intn(n*(max-min)+1)
		weights := make([]float64, n)
		for i := range weights {
			weights[i] = rng.Float64()*30 + 0.01
		}
		shares := BatchShares(global, weights, min, max)
		sum := 0
		for i, s := range shares {
			sum += s
			if s < min || s > max {
				t.Fatalf("trial %d: share[%d]=%d outside [%d,%d] (n=%d global=%d)", trial, i, s, min, max, n, global)
			}
		}
		if sum != global {
			t.Fatalf("trial %d: shares sum %d != global %d (n=%d min=%d max=%d)", trial, sum, global, n, min, max)
		}
	}
}

// TestBatchSharesGlobalWinsWhenInfeasible pins the documented tiebreak:
// when the clamps cannot carry the global batch (a cluster shrunk below
// global/max workers), the exact global sum wins over the max clamp.
func TestBatchSharesGlobalWinsWhenInfeasible(t *testing.T) {
	shares := BatchShares(512, []float64{1}, 32, 128)
	if len(shares) != 1 || shares[0] != 512 {
		t.Fatalf("infeasible max clamp: shares = %v, want [512]", shares)
	}
	// Too many workers for the min clamp: sum still exact, shares ≥ 1.
	shares = BatchShares(8, []float64{1, 1, 1, 1}, 4, 16)
	sum := 0
	for _, s := range shares {
		sum += s
		if s < 1 {
			t.Fatalf("share below one sample: %v", shares)
		}
	}
	if sum != 8 {
		t.Fatalf("infeasible min clamp: sum %d != 8 (%v)", sum, shares)
	}
}

// TestBatchSharesProportionalToSpeed pins dynamic batching's point:
// faster workers carry more samples, deterministically.
func TestBatchSharesProportionalToSpeed(t *testing.T) {
	m := ResNet32()
	weights := []float64{
		StepsPerSecond(K80, m),
		StepsPerSecond(P100, m),
		StepsPerSecond(V100, m),
	}
	a := BatchShares(3*ReferenceBatch, weights, 1, 4*ReferenceBatch)
	b := BatchShares(3*ReferenceBatch, weights, 1, 4*ReferenceBatch)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("BatchShares not deterministic: %v vs %v", a, b)
		}
	}
	if !(a[0] < a[1] && a[1] < a[2]) {
		t.Fatalf("shares not ordered by speed: %v", a)
	}
}

func TestBatchTimeFactorCalibrationPoint(t *testing.T) {
	if got := BatchTimeFactor(ReferenceBatch); got != 1 {
		t.Fatalf("BatchTimeFactor(ReferenceBatch) = %v, want 1", got)
	}
	if !(BatchTimeFactor(2*ReferenceBatch) < 2) {
		t.Fatalf("doubling the batch should less-than-double the step (fixed fraction)")
	}
	if !(BatchTimeFactor(ReferenceBatch/2) > 0.5) {
		t.Fatalf("halving the batch should less-than-halve the step")
	}
}
