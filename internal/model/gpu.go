// Package model defines the workload side of the study: the GPU
// catalog and the zoo of twenty CNN models the paper measures, together
// with the calibrated per-GPU step-time curves (Table I) that drive the
// training simulator.
package model

import "fmt"

// GPU identifies one of the three Google Cloud GPU types the paper
// uses. The catalog is deliberately closed: the paper's observation
// that "cloud GPUs are limited in selection" is what makes per-GPU
// regression models practical (§III-B).
type GPU int

const (
	// K80 is the Nvidia Tesla K80 (4.11 TFLOPS, 12 GB).
	K80 GPU = iota + 1
	// P100 is the Nvidia Tesla P100 (9.53 TFLOPS, 16 GB).
	P100
	// V100 is the Nvidia Tesla V100 (14.13 TFLOPS, 16 GB).
	V100
)

// AllGPUs lists the catalog in ascending capability order.
func AllGPUs() []GPU { return []GPU{K80, P100, V100} }

// String returns the marketing name of the GPU.
func (g GPU) String() string {
	switch g {
	case K80:
		return "K80"
	case P100:
		return "P100"
	case V100:
		return "V100"
	default:
		return fmt.Sprintf("GPU(%d)", int(g))
	}
}

// Valid reports whether g is one of the cataloged types.
func (g GPU) Valid() bool { return g >= K80 && g <= V100 }

// ParseGPU maps a marketing name back to its catalog constant.
func ParseGPU(name string) (GPU, error) {
	for _, g := range AllGPUs() {
		if g.String() == name {
			return g, nil
		}
	}
	return 0, fmt.Errorf("model: unknown GPU %q (want K80, P100, or V100)", name)
}

// GPUSpec describes a cataloged GPU type.
type GPUSpec struct {
	GPU       GPU
	TFLOPS    float64 // computational capacity, teraflops (paper §III-A)
	MemoryGB  int
	OnDemand  float64 // GPU hourly price, USD (us-central1, 2019)
	Transient float64 // preemptible hourly price, USD
}

var gpuSpecs = map[GPU]GPUSpec{
	K80:  {GPU: K80, TFLOPS: 4.11, MemoryGB: 12, OnDemand: 0.45, Transient: 0.135},
	P100: {GPU: P100, TFLOPS: 9.53, MemoryGB: 16, OnDemand: 1.46, Transient: 0.43},
	V100: {GPU: V100, TFLOPS: 14.13, MemoryGB: 16, OnDemand: 2.48, Transient: 0.74},
}

// Spec returns the catalog entry for g. It panics on an invalid GPU:
// all call sites construct GPUs from the package constants.
func Spec(g GPU) GPUSpec {
	s, ok := gpuSpecs[g]
	if !ok {
		panic(fmt.Sprintf("model: unknown GPU %d", int(g)))
	}
	return s
}

// VMBaseOnDemand and VMBaseTransient are the hourly prices of the host
// VM (4 vCPU, 52 GB) that carries each GPU, excluding the GPU itself.
const (
	VMBaseOnDemand  = 0.19
	VMBaseTransient = 0.04
)

// ParameterServerHourly is the hourly price of the non-revocable
// parameter server (4 vCPU, 16 GB, no GPU) used in every cluster.
const ParameterServerHourly = 0.19

// HourlyPrice returns the full hourly price of a GPU server of the
// given type and tier (GPU plus host VM).
func HourlyPrice(g GPU, transient bool) float64 {
	s := Spec(g)
	if transient {
		return s.Transient + VMBaseTransient
	}
	return s.OnDemand + VMBaseOnDemand
}
