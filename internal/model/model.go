package model

import "fmt"

// Family groups the zoo into the two architectures the paper draws its
// canonical models from.
type Family int

const (
	// ResNet is the residual-network family (He et al.).
	ResNet Family = iota + 1
	// ShakeShake is the shake-shake regularized family (Gastaldi).
	ShakeShake
)

// String names the family.
func (f Family) String() string {
	switch f {
	case ResNet:
		return "ResNet"
	case ShakeShake:
		return "ShakeShake"
	default:
		return fmt.Sprintf("Family(%d)", int(f))
	}
}

// Model describes one CNN workload. GFLOPs is the paper's model
// complexity measure (floating-point operations to train on one
// image, computed from the CIFAR-10 input shape). The byte sizes are
// calibrated to the paper's measurements rather than derived from raw
// parameter math; see DESIGN.md §4.
type Model struct {
	Name   string
	Family Family
	// Layers is the depth knob for ResNet variants; WidthFactor the
	// width knob for Shake-Shake variants. Only one is meaningful per
	// family, the other is 0.
	Layers      int
	WidthFactor int
	// GFLOPs is model complexity per image (paper Table I).
	GFLOPs float64
	// GradientBytes is the size of one gradient push / parameter pull,
	// which sets the parameter-server service time per update.
	GradientBytes int64
	// Tensors is the number of tensors (weights, biases, statistics) in
	// the model; the paper notes meta and index checkpoint file sizes
	// correlate with it (§IV-A).
	Tensors int
	// Checkpoint file sizes: TensorFlow writes a data file (variable
	// values), a meta file (serialized graph), and an index file.
	CkptDataBytes  int64
	CkptMetaBytes  int64
	CkptIndexBytes int64
}

// CheckpointBytes returns Sc, the total size of one checkpoint (data +
// meta + index), the feature the paper's univariate checkpoint
// predictor uses.
func (m Model) CheckpointBytes() int64 {
	return m.CkptDataBytes + m.CkptMetaBytes + m.CkptIndexBytes
}

// ComputationRatio returns the paper's computation ratio: model
// complexity divided by GPU computational capacity (GFLOPs / TFLOPS).
func (m Model) ComputationRatio(g GPU) float64 {
	return m.GFLOPs / Spec(g).TFLOPS
}

const mb = 1 << 20

// resnet builds a ResNet-family zoo entry from its depth. Complexity,
// gradient size, and checkpoint size are affine in depth, with
// coefficients fitted so ResNet-15 and ResNet-32 land on their
// paper-calibrated values: Table I step times, the ResNet-32
// checkpoint time of 3.84 s (§IV-B) within Fig. 5's size range, and
// the parameter-server saturation points of Table III and Fig. 12
// (single-PS capacity ≈60 ResNet-32 updates/s, ≈110 ResNet-15
// updates/s).
func resnet(layers int) Model {
	gflops := 0.0559*float64(layers) - 0.248
	gradMB := 0.5365*float64(layers) + 2.27
	ckptDataMB := 50.5*gflops + 2
	tensors := 5*layers + 10
	return finish(Model{
		Name:    fmt.Sprintf("ResNet-%d", layers),
		Family:  ResNet,
		Layers:  layers,
		GFLOPs:  round3(gflops),
		Tensors: tensors,
	}, gradMB, ckptDataMB)
}

// shakeShake builds a Shake-Shake-family zoo entry from its
// complexity. Gradient and checkpoint sizes grow much more slowly with
// complexity than for ResNet (wide models re-use filters over many
// positions), fitted through the Small and Big canonical points:
// single-PS capacity ≈32 updates/s (Small, plateau past four workers
// in Fig. 4) and ≈17 updates/s (Big), with Big's checkpoint at
// Fig. 5's ≈200 MB maximum.
func shakeShake(name string, widthFactor int, gflops float64) Model {
	gradMB := 1.720*gflops + 32.75
	ckptDataMB := 5.29*gflops + 82.2
	tensors := 160 + int(3*gflops)
	return finish(Model{
		Name:        name,
		Family:      ShakeShake,
		WidthFactor: widthFactor,
		GFLOPs:      round3(gflops),
		Tensors:     tensors,
	}, gradMB, ckptDataMB)
}

// finish derives the byte fields shared by both families. Gradient
// bytes (the parameter-server wire format) and checkpoint bytes (the
// storage format, which adds optimizer slots and graph metadata) are
// calibrated independently; see DESIGN.md §4.
func finish(m Model, gradMB, ckptDataMB float64) Model {
	m.GradientBytes = int64(gradMB * 1e6)
	m.CkptDataBytes = int64(ckptDataMB * 1e6)
	m.CkptMetaBytes = int64(1.5*mb) + int64(m.Tensors)*20*1024
	m.CkptIndexBytes = int64(m.Tensors) * 150
	return m
}

func round3(x float64) float64 {
	return float64(int(x*1000+0.5)) / 1000
}

// Canonical model constructors. The four models below are the ones the
// paper names; Table I pins their step times and §IV their checkpoint
// behavior.

// ResNet15 returns the ResNet-15 zoo entry (0.59 GFLOPs).
func ResNet15() Model { return resnet(15) }

// ResNet32 returns the ResNet-32 zoo entry (1.54 GFLOPs).
func ResNet32() Model { return resnet(32) }

// ShakeShakeSmall returns the Shake-Shake Small entry (2.41 GFLOPs).
func ShakeShakeSmall() Model { return shakeShake("ShakeShakeSmall", 32, 2.41) }

// ShakeShakeBig returns the Shake-Shake Big entry (21.3 GFLOPs).
func ShakeShakeBig() Model { return shakeShake("ShakeShakeBig", 96, 21.3) }

// CanonicalModels returns the paper's four named models in Table I
// order.
func CanonicalModels() []Model {
	return []Model{ResNet15(), ResNet32(), ShakeShakeSmall(), ShakeShakeBig()}
}

// Zoo returns all twenty models: the four canonical models plus
// sixteen custom variants generated by varying depth (ResNet) and width
// (Shake-Shake), mirroring the paper's methodology for populating the
// regression datasets (§III-A).
func Zoo() []Model {
	models := make([]Model, 0, 20)
	// ResNet depth sweep; 15 and 32 are the canonical entries.
	for _, layers := range []int{9, 15, 21, 26, 32, 38, 44, 50, 56, 62} {
		models = append(models, resnet(layers))
	}
	// Shake-Shake width sweep; Small (2.41) and Big (21.3) are
	// canonical.
	models = append(models,
		ShakeShakeSmall(),
		shakeShake("ShakeShake-w40", 40, 3.8),
		shakeShake("ShakeShake-w46", 46, 5.1),
		shakeShake("ShakeShake-w52", 52, 6.6),
		shakeShake("ShakeShake-w58", 58, 8.4),
		shakeShake("ShakeShake-w64", 64, 10.4),
		shakeShake("ShakeShake-w72", 72, 12.7),
		shakeShake("ShakeShake-w80", 80, 15.2),
		shakeShake("ShakeShake-w88", 88, 18.1),
		ShakeShakeBig(),
	)
	return models
}

// ByName returns the zoo model with the given name.
func ByName(name string) (Model, error) {
	for _, m := range Zoo() {
		if m.Name == name {
			return m, nil
		}
	}
	return Model{}, fmt.Errorf("model: no zoo model named %q", name)
}
