package model

import (
	"math"
	"testing"
	"testing/quick"
)

func TestZooHasTwentyModels(t *testing.T) {
	zoo := Zoo()
	if len(zoo) != 20 {
		t.Fatalf("Zoo has %d models, want 20 (paper §III-A)", len(zoo))
	}
	names := make(map[string]bool, len(zoo))
	for _, m := range zoo {
		if names[m.Name] {
			t.Fatalf("duplicate model name %q", m.Name)
		}
		names[m.Name] = true
	}
	for _, want := range []string{"ResNet-15", "ResNet-32", "ShakeShakeSmall", "ShakeShakeBig"} {
		if !names[want] {
			t.Fatalf("zoo missing canonical model %q", want)
		}
	}
}

func TestCanonicalGFLOPs(t *testing.T) {
	// Table I lists the complexities of the four canonical models.
	cases := []struct {
		m    Model
		want float64
	}{
		{ResNet15(), 0.59},
		{ResNet32(), 1.54},
		{ShakeShakeSmall(), 2.41},
		{ShakeShakeBig(), 21.3},
	}
	for _, tc := range cases {
		if math.Abs(tc.m.GFLOPs-tc.want) > 0.02 {
			t.Errorf("%s GFLOPs = %v, want ≈%v", tc.m.Name, tc.m.GFLOPs, tc.want)
		}
	}
}

func TestZooFieldsArePositiveAndMonotone(t *testing.T) {
	for _, m := range Zoo() {
		if m.GFLOPs <= 0 || m.GradientBytes <= 0 || m.Tensors <= 0 {
			t.Errorf("%s has non-positive core fields: %+v", m.Name, m)
		}
		if m.CkptDataBytes <= 0 || m.CkptMetaBytes <= 0 || m.CkptIndexBytes <= 0 {
			t.Errorf("%s has non-positive checkpoint sizes", m.Name)
		}
		if m.CheckpointBytes() != m.CkptDataBytes+m.CkptMetaBytes+m.CkptIndexBytes {
			t.Errorf("%s CheckpointBytes is not the sum of its parts", m.Name)
		}
	}
}

func TestCheckpointSizesWithinFigure5Range(t *testing.T) {
	// Fig. 5's x axis spans roughly 0–210 MB across the twenty models.
	const mbF = float64(1 << 20)
	var maxSc float64
	for _, m := range Zoo() {
		sc := float64(m.CheckpointBytes()) / mbF
		if sc > maxSc {
			maxSc = sc
		}
		if sc < 5 || sc > 215 {
			t.Errorf("%s checkpoint %0.1f MB outside Fig. 5's plausible range", m.Name, sc)
		}
	}
	big := float64(ShakeShakeBig().CheckpointBytes()) / mbF
	if big != maxSc {
		t.Errorf("ShakeShakeBig (%0.1f MB) should be the largest checkpoint (max %0.1f MB)", big, maxSc)
	}
}

func TestResNetMonotoneInDepth(t *testing.T) {
	prev := resnet(9)
	for _, layers := range []int{15, 21, 26, 32, 38, 44, 50, 56, 62} {
		cur := resnet(layers)
		if cur.GFLOPs <= prev.GFLOPs {
			t.Errorf("ResNet-%d GFLOPs %v not greater than ResNet-%d's %v",
				layers, cur.GFLOPs, prev.Layers, prev.GFLOPs)
		}
		if cur.GradientBytes <= prev.GradientBytes {
			t.Errorf("ResNet-%d gradient bytes not monotone", layers)
		}
		prev = cur
	}
}

func TestByName(t *testing.T) {
	m, err := ByName("ResNet-32")
	if err != nil {
		t.Fatal(err)
	}
	if m.Layers != 32 || m.Family != ResNet {
		t.Fatalf("ByName returned %+v", m)
	}
	if _, err := ByName("AlexNet"); err == nil {
		t.Fatal("ByName of unknown model should error")
	}
}

func TestGPUCatalog(t *testing.T) {
	if len(AllGPUs()) != 3 {
		t.Fatal("catalog must contain exactly three GPU types")
	}
	// Capacities from §III-A.
	for _, tc := range []struct {
		g      GPU
		tflops float64
	}{{K80, 4.11}, {P100, 9.53}, {V100, 14.13}} {
		if got := Spec(tc.g).TFLOPS; got != tc.tflops {
			t.Errorf("%v TFLOPS = %v, want %v", tc.g, got, tc.tflops)
		}
	}
	if K80.String() != "K80" || !K80.Valid() {
		t.Error("K80 stringer or validity broken")
	}
	if GPU(99).Valid() {
		t.Error("GPU(99) should be invalid")
	}
}

func TestHourlyPriceOrdering(t *testing.T) {
	for _, g := range AllGPUs() {
		if HourlyPrice(g, true) >= HourlyPrice(g, false) {
			t.Errorf("%v transient price should undercut on-demand", g)
		}
	}
	if HourlyPrice(V100, true) <= HourlyPrice(K80, true) {
		t.Error("V100 should cost more than K80")
	}
}

func TestStepTimeMatchesTableI(t *testing.T) {
	// Table I, steps/second. The calibration must reproduce these
	// exactly at the anchor complexities (tolerance covers rounding).
	want := map[GPU][]float64{
		K80:  {9.46, 4.56, 2.58, 0.70},
		P100: {21.16, 12.19, 6.99, 1.98},
		V100: {27.38, 15.61, 8.80, 2.18},
	}
	models := CanonicalModels()
	for g, speeds := range want {
		for i, wantSpeed := range speeds {
			got := StepsPerSecond(g, models[i])
			if math.Abs(got-wantSpeed)/wantSpeed > 0.01 {
				t.Errorf("%v %s = %.2f steps/s, want %.2f", g, models[i].Name, got, wantSpeed)
			}
		}
	}
}

func TestStepTimeMonotoneAcrossGPUs(t *testing.T) {
	// A more capable GPU is never slower for the same model.
	for _, m := range Zoo() {
		k, p, v := StepTimeModel(K80, m), StepTimeModel(P100, m), StepTimeModel(V100, m)
		if !(k > p && p > v) {
			t.Errorf("%s step times not ordered K80 > P100 > V100: %v %v %v", m.Name, k, p, v)
		}
	}
}

func TestStepTimeExtrapolation(t *testing.T) {
	// Below the smallest anchor the curve keeps decreasing but respects
	// the per-GPU floor.
	small := StepTime(K80, 0.1)
	if small >= StepTime(K80, 0.59) {
		t.Error("extrapolation below first anchor should be faster")
	}
	if tiny := StepTime(K80, 0.0001); tiny < minStepTime[K80] {
		t.Errorf("step time %v below floor %v", tiny, minStepTime[K80])
	}
	// Above the largest anchor the segment extends.
	if StepTime(K80, 30) <= StepTime(K80, 21.3) {
		t.Error("extrapolation above last anchor should be slower")
	}
}

func TestStepTimePanicsOnBadInput(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("StepTime with non-positive GFLOPs should panic")
		}
	}()
	StepTime(K80, 0)
}

// Property: step time is monotone non-decreasing in model complexity
// for every GPU.
func TestQuickStepTimeMonotoneInComplexity(t *testing.T) {
	f := func(rawA, rawB float64) bool {
		a := math.Abs(rawA)
		b := math.Abs(rawB)
		if math.IsNaN(a) || math.IsInf(a, 0) || math.IsNaN(b) || math.IsInf(b, 0) {
			return true
		}
		// Map into a sane complexity range (0, 50].
		a = math.Mod(a, 50) + 0.001
		b = math.Mod(b, 50) + 0.001
		lo, hi := math.Min(a, b), math.Max(a, b)
		for _, g := range AllGPUs() {
			if StepTime(g, lo) > StepTime(g, hi)+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWarmupMultiplier(t *testing.T) {
	if got := WarmupMultiplier(0); got != WarmupFactor {
		t.Fatalf("WarmupMultiplier(0) = %v, want %v", got, WarmupFactor)
	}
	if got := WarmupMultiplier(WarmupSteps); got != 1 {
		t.Fatalf("WarmupMultiplier(WarmupSteps) = %v, want 1", got)
	}
	if got := WarmupMultiplier(WarmupSteps * 10); got != 1 {
		t.Fatalf("WarmupMultiplier far past warmup = %v, want 1", got)
	}
	// Strictly decreasing during warmup.
	prev := WarmupMultiplier(0)
	for s := int64(1); s <= WarmupSteps; s++ {
		cur := WarmupMultiplier(s)
		if cur > prev {
			t.Fatalf("warmup multiplier increased at step %d", s)
		}
		prev = cur
	}
}

func TestComputationRatio(t *testing.T) {
	m := ResNet32()
	want := m.GFLOPs / 4.11
	if got := m.ComputationRatio(K80); math.Abs(got-want) > 1e-6 {
		t.Fatalf("ComputationRatio = %v, want %v", got, want)
	}
}

func TestParseGPURoundTrips(t *testing.T) {
	for _, g := range AllGPUs() {
		got, err := ParseGPU(g.String())
		if err != nil || got != g {
			t.Fatalf("ParseGPU(%q) = %v, %v", g.String(), got, err)
		}
	}
	if _, err := ParseGPU("TPUv4"); err == nil {
		t.Fatal("ParseGPU accepted an uncataloged name")
	}
}
