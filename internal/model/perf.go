package model

import "fmt"

// stepAnchor is one calibrated (complexity, step time) point.
type stepAnchor struct {
	gflops float64
	step   float64 // seconds per training step
}

// stepAnchors pins the per-GPU step-time curve to the paper's Table I:
// the measured steps/second for ResNet-15, ResNet-32, Shake-Shake
// Small, and Shake-Shake Big, inverted to seconds/step. Between
// anchors we interpolate linearly; outside we extend the nearest
// segment. The curvature across segments (GPUs get more efficient as
// larger models saturate them) is exactly what makes the paper's
// RBF-kernel SVR beat plain linear regression in Table II.
var stepAnchors = map[GPU][]stepAnchor{
	K80: {
		{0.59, 1 / 9.46}, // ResNet-15
		{1.54, 1 / 4.56}, // ResNet-32
		{2.41, 1 / 2.58}, // Shake-Shake Small
		{21.3, 1 / 0.70}, // Shake-Shake Big
	},
	P100: {
		{0.59, 1 / 21.16},
		{1.54, 1 / 12.19},
		{2.41, 1 / 6.99},
		{21.3, 1 / 1.98},
	},
	V100: {
		{0.59, 1 / 27.38},
		{1.54, 1 / 15.61},
		{2.41, 1 / 8.80},
		{21.3, 1 / 2.18},
	},
}

// minStepTime floors the extrapolation below the smallest anchor: even
// a trivial model pays kernel-launch and input-pipeline overhead.
var minStepTime = map[GPU]float64{
	K80:  0.020,
	P100: 0.010,
	V100: 0.008,
}

// StepTime returns the calibrated mean seconds per training step for
// the given model complexity (GFLOPs) on the given GPU, for the
// paper's baseline cluster (one worker, one parameter server, same
// data center). This is the noise-free expectation; the training
// simulator multiplies in per-step lognormal noise.
func StepTime(g GPU, gflops float64) float64 {
	anchors, ok := stepAnchors[g]
	if !ok {
		panic(fmt.Sprintf("model: no step-time calibration for GPU %v", g))
	}
	if gflops <= 0 {
		panic(fmt.Sprintf("model: non-positive complexity %v", gflops))
	}
	t := interpolate(anchors, gflops)
	if floor := minStepTime[g]; t < floor {
		t = floor
	}
	return t
}

// StepTimeModel returns StepTime for a zoo model.
func StepTimeModel(g GPU, m Model) float64 {
	return StepTime(g, m.GFLOPs)
}

// StepsPerSecond is the inverse of StepTime: the baseline single-worker
// training speed the paper reports in Table I.
func StepsPerSecond(g GPU, m Model) float64 {
	return 1 / StepTimeModel(g, m)
}

func interpolate(anchors []stepAnchor, x float64) float64 {
	// Below the first anchor or above the last, extend the nearest
	// segment linearly.
	if x <= anchors[0].gflops {
		return segment(anchors[0], anchors[1], x)
	}
	for i := 0; i+1 < len(anchors); i++ {
		if x <= anchors[i+1].gflops {
			return segment(anchors[i], anchors[i+1], x)
		}
	}
	n := len(anchors)
	return segment(anchors[n-2], anchors[n-1], x)
}

func segment(a, b stepAnchor, x float64) float64 {
	slope := (b.step - a.step) / (b.gflops - a.gflops)
	return a.step + slope*(x-a.gflops)
}

// ReferenceBatch is the per-worker minibatch size the Table I step
// times were measured at (the paper's CIFAR-10 methodology trains with
// 128-sample minibatches). Dynamic batch sizing scales each worker's
// step time through BatchTimeFactor relative to this calibration
// point.
const ReferenceBatch = 128

// batchFixedFraction is the share of a step that does not scale with
// the minibatch: kernel launches, input-pipeline latency, and the
// gradient exchange all cost the same for 32 samples as for 512. This
// is what makes strong scaling sublinear — halving a worker's batch
// does not halve its step time.
const batchFixedFraction = 0.25

// BatchTimeFactor returns the step-time multiplier for a per-worker
// minibatch of b samples relative to ReferenceBatch: a fixed fraction
// plus a part linear in the batch. b == ReferenceBatch gives exactly
// 1, so clusters that never rebalance keep the Table I calibration.
func BatchTimeFactor(b int) float64 {
	if b <= 0 {
		return batchFixedFraction
	}
	return batchFixedFraction + (1-batchFixedFraction)*float64(b)/ReferenceBatch
}

// StepTimeCoV is the per-step multiplicative noise level. Fig. 2
// reports a maximum coefficient of variation of 0.02 for steady-state
// single-worker training.
const StepTimeCoV = 0.02

// WarmupSteps and WarmupFactor model the warm-up transient visible in
// Fig. 2: the first ~100 steps run slower while the input pipeline and
// kernels warm, which is why the paper discards the first 100 steps of
// every measurement.
const (
	WarmupSteps  = 100
	WarmupFactor = 2.5 // step-time multiplier at step 0, decaying to 1
)

// WarmupMultiplier returns the step-time multiplier at a given step
// index: WarmupFactor at step 0 decaying linearly to 1 at WarmupSteps.
func WarmupMultiplier(step int64) float64 {
	if step >= WarmupSteps {
		return 1
	}
	frac := float64(step) / WarmupSteps
	return WarmupFactor - (WarmupFactor-1)*frac
}
