// Package nn provides the small trainable model the live CM-DARE
// cluster trains: multinomial logistic regression (softmax) with
// real gradients on a synthetic CIFAR-10-like dataset (ten Gaussian
// class clusters in feature space).
//
// The paper trains CNNs on CIFAR-10; the live runtime substitutes
// this model so that the systems path — asynchronous gradient pushes,
// parameter pulls, checkpoint files, chief takeover — runs real
// learning end to end while staying CPU-friendly. The training
// *performance* study uses the calibrated simulator instead
// (internal/train); see DESIGN.md §2.
package nn

import (
	"fmt"
	"math"

	"repro/internal/stats"
)

// Dataset generates labeled samples from fixed Gaussian class
// clusters, CIFAR-10-like in class count.
type Dataset struct {
	Classes  int
	Features int
	centers  [][]float64
	noise    float64
	rng      *stats.Rng
}

// NewDataset builds a dataset with the given shape. Separation
// controls how far apart class centers sit relative to the noise;
// values ≥ 2 give a problem a linear model can almost fully solve,
// letting tests assert convergence.
func NewDataset(classes, features int, separation float64, seed int64) (*Dataset, error) {
	if classes < 2 || features < 1 {
		return nil, fmt.Errorf("nn: dataset needs ≥2 classes and ≥1 feature, got %d/%d", classes, features)
	}
	if separation <= 0 {
		return nil, fmt.Errorf("nn: separation must be positive")
	}
	rng := stats.NewRng(seed)
	ds := &Dataset{Classes: classes, Features: features, noise: 1, rng: rng}
	for c := 0; c < classes; c++ {
		center := make([]float64, features)
		for f := range center {
			center[f] = rng.Normal(0, separation)
		}
		ds.centers = append(ds.centers, center)
	}
	return ds, nil
}

// Batch is one mini-batch of samples.
type Batch struct {
	X      [][]float64
	Labels []int
}

// Sample draws a mini-batch.
func (d *Dataset) Sample(n int) Batch {
	b := Batch{X: make([][]float64, n), Labels: make([]int, n)}
	for i := 0; i < n; i++ {
		c := d.rng.Intn(d.Classes)
		x := make([]float64, d.Features)
		for f := range x {
			x[f] = d.centers[c][f] + d.rng.Normal(0, d.noise)
		}
		b.X[i] = x
		b.Labels[i] = c
	}
	return b
}

// Model is a softmax classifier W ∈ ℝ^{classes × (features+1)} (the
// +1 column is the bias).
type Model struct {
	Classes  int
	Features int
	// W is stored flat, row-major: class c's weights occupy
	// W[c*(Features+1) : (c+1)*(Features+1)].
	W []float64
}

// NewModel returns a zero-initialized model (softmax regression is
// convex; zero init is fine and deterministic).
func NewModel(classes, features int) (*Model, error) {
	if classes < 2 || features < 1 {
		return nil, fmt.Errorf("nn: model needs ≥2 classes and ≥1 feature")
	}
	return &Model{
		Classes:  classes,
		Features: features,
		W:        make([]float64, classes*(features+1)),
	}, nil
}

// ParamCount returns the number of parameters (the flat W length).
func (m *Model) ParamCount() int { return len(m.W) }

// row returns class c's weight slice.
func (m *Model) row(c int) []float64 {
	stride := m.Features + 1
	return m.W[c*stride : (c+1)*stride]
}

// logits computes the per-class scores for one sample.
func (m *Model) logits(x []float64) []float64 {
	out := make([]float64, m.Classes)
	for c := 0; c < m.Classes; c++ {
		w := m.row(c)
		s := w[m.Features] // bias
		for f, v := range x {
			s += w[f] * v
		}
		out[c] = s
	}
	return out
}

// softmax converts logits to probabilities in place.
func softmax(logits []float64) {
	max := logits[0]
	for _, v := range logits[1:] {
		if v > max {
			max = v
		}
	}
	var sum float64
	for i, v := range logits {
		e := math.Exp(v - max)
		logits[i] = e
		sum += e
	}
	for i := range logits {
		logits[i] /= sum
	}
}

// Predict returns the most likely class for one sample.
func (m *Model) Predict(x []float64) int {
	logits := m.logits(x)
	best := 0
	for c, v := range logits {
		if v > logits[best] {
			best = c
		}
	}
	return best
}

// Loss returns the mean cross-entropy over the batch.
func (m *Model) Loss(b Batch) float64 {
	if len(b.X) == 0 {
		return 0
	}
	var total float64
	for i, x := range b.X {
		probs := m.logits(x)
		softmax(probs)
		p := probs[b.Labels[i]]
		if p < 1e-12 {
			p = 1e-12
		}
		total += -math.Log(p)
	}
	return total / float64(len(b.X))
}

// Accuracy returns the fraction of the batch classified correctly.
func (m *Model) Accuracy(b Batch) float64 {
	if len(b.X) == 0 {
		return 0
	}
	hits := 0
	for i, x := range b.X {
		if m.Predict(x) == b.Labels[i] {
			hits++
		}
	}
	return float64(hits) / float64(len(b.X))
}

// Gradient returns the mean cross-entropy gradient with respect to W,
// flat with the same layout as W.
func (m *Model) Gradient(b Batch) []float64 {
	grad := make([]float64, len(m.W))
	if len(b.X) == 0 {
		return grad
	}
	stride := m.Features + 1
	for i, x := range b.X {
		probs := m.logits(x)
		softmax(probs)
		for c := 0; c < m.Classes; c++ {
			delta := probs[c]
			if c == b.Labels[i] {
				delta -= 1
			}
			base := c * stride
			for f, v := range x {
				grad[base+f] += delta * v
			}
			grad[base+m.Features] += delta // bias
		}
	}
	inv := 1 / float64(len(b.X))
	for i := range grad {
		grad[i] *= inv
	}
	return grad
}

// ApplyGradient performs one SGD update W ← W − lr·grad. It panics on
// a shape mismatch: pushing a gradient of the wrong size means the
// cluster is misconfigured, and silently truncating would corrupt the
// model.
func (m *Model) ApplyGradient(grad []float64, lr float64) {
	if len(grad) != len(m.W) {
		panic(fmt.Sprintf("nn: gradient length %d, model has %d parameters", len(grad), len(m.W)))
	}
	for i, g := range grad {
		m.W[i] -= lr * g
	}
}

// SetParams replaces the model's parameters (a parameter pull).
func (m *Model) SetParams(w []float64) {
	if len(w) != len(m.W) {
		panic(fmt.Sprintf("nn: params length %d, model has %d parameters", len(w), len(m.W)))
	}
	copy(m.W, w)
}

// Params returns a copy of the flat parameter vector.
func (m *Model) Params() []float64 {
	out := make([]float64, len(m.W))
	copy(out, m.W)
	return out
}
