package nn

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDatasetValidation(t *testing.T) {
	if _, err := NewDataset(1, 4, 2, 1); err == nil {
		t.Error("one class should error")
	}
	if _, err := NewDataset(3, 0, 2, 1); err == nil {
		t.Error("zero features should error")
	}
	if _, err := NewDataset(3, 4, 0, 1); err == nil {
		t.Error("zero separation should error")
	}
}

func TestDatasetShapes(t *testing.T) {
	ds, err := NewDataset(10, 16, 3, 42)
	if err != nil {
		t.Fatal(err)
	}
	b := ds.Sample(32)
	if len(b.X) != 32 || len(b.Labels) != 32 {
		t.Fatalf("batch sizes %d/%d", len(b.X), len(b.Labels))
	}
	for i, x := range b.X {
		if len(x) != 16 {
			t.Fatalf("sample %d has %d features", i, len(x))
		}
		if b.Labels[i] < 0 || b.Labels[i] >= 10 {
			t.Fatalf("label %d out of range", b.Labels[i])
		}
	}
}

func TestSGDConvergesOnSeparableData(t *testing.T) {
	ds, err := NewDataset(10, 16, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewModel(10, 16)
	if err != nil {
		t.Fatal(err)
	}
	initial := m.Loss(ds.Sample(512))
	for step := 0; step < 400; step++ {
		batch := ds.Sample(64)
		m.ApplyGradient(m.Gradient(batch), 0.1)
	}
	test := ds.Sample(512)
	final := m.Loss(test)
	if final >= initial/3 {
		t.Fatalf("loss %.3f → %.3f: SGD did not converge", initial, final)
	}
	if acc := m.Accuracy(test); acc < 0.9 {
		t.Fatalf("accuracy = %.3f, want ≥0.9 on well-separated clusters", acc)
	}
}

func TestGradientMatchesFiniteDifference(t *testing.T) {
	ds, err := NewDataset(3, 4, 2, 11)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewModel(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Random-ish starting point so gradients are non-trivial.
	for i := range m.W {
		m.W[i] = 0.1 * float64(i%7-3)
	}
	batch := ds.Sample(16)
	grad := m.Gradient(batch)
	const h = 1e-5
	for _, idx := range []int{0, 3, 7, 11, 14} {
		orig := m.W[idx]
		m.W[idx] = orig + h
		up := m.Loss(batch)
		m.W[idx] = orig - h
		down := m.Loss(batch)
		m.W[idx] = orig
		numeric := (up - down) / (2 * h)
		if math.Abs(numeric-grad[idx]) > 1e-4 {
			t.Errorf("grad[%d] = %v, finite difference %v", idx, grad[idx], numeric)
		}
	}
}

func TestApplyGradientPanicsOnShapeMismatch(t *testing.T) {
	m, err := NewModel(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("shape mismatch should panic")
		}
	}()
	m.ApplyGradient(make([]float64, 3), 0.1)
}

func TestParamsRoundTrip(t *testing.T) {
	m, err := NewModel(4, 8)
	if err != nil {
		t.Fatal(err)
	}
	if m.ParamCount() != 4*9 {
		t.Fatalf("ParamCount = %d, want 36", m.ParamCount())
	}
	w := m.Params()
	w[0] = 42
	if m.W[0] == 42 {
		t.Fatal("Params must return a copy")
	}
	m.SetParams(w)
	if m.W[0] != 42 {
		t.Fatal("SetParams did not apply")
	}
}

// Property: softmax probabilities from Loss's path are valid — loss is
// finite and non-negative for arbitrary parameter settings.
func TestQuickLossFiniteAndNonNegative(t *testing.T) {
	ds, err := NewDataset(4, 3, 2, 13)
	if err != nil {
		t.Fatal(err)
	}
	batch := ds.Sample(8)
	f := func(raw []float64) bool {
		m, err := NewModel(4, 3)
		if err != nil {
			return false
		}
		for i := range m.W {
			if i < len(raw) {
				v := raw[i]
				if math.IsNaN(v) || math.IsInf(v, 0) {
					return true
				}
				if v > 50 {
					v = 50
				}
				if v < -50 {
					v = -50
				}
				m.W[i] = v
			}
		}
		loss := m.Loss(batch)
		return loss >= 0 && !math.IsNaN(loss) && !math.IsInf(loss, 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: a gradient step with a small learning rate does not
// increase batch loss (convex objective, exact gradient).
func TestQuickGradientDescends(t *testing.T) {
	ds, err := NewDataset(3, 4, 2, 17)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		m, err := NewModel(3, 4)
		if err != nil {
			return false
		}
		batch := ds.Sample(32)
		before := m.Loss(batch)
		m.ApplyGradient(m.Gradient(batch), 0.01)
		after := m.Loss(batch)
		return after <= before+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
