package obs

import "testing"

// BenchmarkRecorderRecord proves the sim-plane hot path is
// allocation-free steady-state: once the event buffer has grown,
// Record is a scope stamp and a slice append.
func BenchmarkRecorderRecord(b *testing.B) {
	r := NewRecorder()
	// Pre-grow the buffer so amortized slice growth doesn't count
	// against the steady-state figure.
	for i := 0; i < b.N; i++ {
		r.Record(Event{})
	}
	r.st.events = r.st.events[:0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Record(Event{T: float64(i), Kind: "checkpoint", Worker: "K80-0", Step: int64(i)})
	}
}

// BenchmarkRecorderRecordNil measures the tracing-off cost paid by
// instrumented code: one nil test.
func BenchmarkRecorderRecordNil(b *testing.B) {
	var r *Recorder
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Record(Event{T: float64(i), Kind: "checkpoint"})
	}
}

func BenchmarkCounterInc(b *testing.B) {
	reg := NewRegistry()
	c := reg.NewCounter("bench_total", "bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	reg := NewRegistry()
	h := reg.NewHistogram("bench_seconds", "bench", DefaultLatencyBuckets)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(0.042)
	}
}
