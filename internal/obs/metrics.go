package obs

// The service plane: a dependency-free metrics registry for the
// planner daemon. Counters and gauges are single atomics, histograms
// are fixed-bucket atomic arrays with a CAS-folded float sum, and
// func-metrics read a value lazily at scrape time — so instrumenting
// an existing atomic counter costs nothing on the hot path at all.
// Exposition is the Prometheus text format (version 0.0.4), the least
// common denominator every scraper understands.

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// DefaultLatencyBuckets spans sub-millisecond cache hits to
// multi-minute fleet simulations.
var DefaultLatencyBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120,
}

// metric is one registered family: a name/type/help header plus its
// sample lines.
type metric interface {
	name() string
	typeName() string
	helpText() string
	writeSamples(b *strings.Builder)
}

// Registry holds metric families in registration order. Register*
// methods panic on a duplicate name — metric names are compile-time
// constants, so a collision is a programming error, not a runtime
// condition.
type Registry struct {
	mu      sync.Mutex
	metrics []metric
	names   map[string]bool
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{names: make(map[string]bool)}
}

func (r *Registry) register(m metric) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.names[m.name()] {
		panic(fmt.Sprintf("obs: metric %q registered twice", m.name()))
	}
	r.names[m.name()] = true
	r.metrics = append(r.metrics, m)
}

// WritePrometheus writes every family in registration order in the
// Prometheus text exposition format.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	metrics := make([]metric, len(r.metrics))
	copy(metrics, r.metrics)
	r.mu.Unlock()
	var b strings.Builder
	for _, m := range metrics {
		fmt.Fprintf(&b, "# HELP %s %s\n", m.name(), m.helpText())
		fmt.Fprintf(&b, "# TYPE %s %s\n", m.name(), m.typeName())
		m.writeSamples(&b)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// formatValue renders a sample value: integral floats print without a
// mantissa, everything else in shortest round-trip form.
func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Counter is a monotonically increasing atomic int64.
type Counter struct {
	nm, help string
	v        atomic.Int64
}

// NewCounter registers a counter.
func (r *Registry) NewCounter(name, help string) *Counter {
	c := &Counter{nm: name, help: help}
	r.register(c)
	return c
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must not be negative; counters only go up).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value reads the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

func (c *Counter) name() string     { return c.nm }
func (c *Counter) typeName() string { return "counter" }
func (c *Counter) helpText() string { return c.help }
func (c *Counter) writeSamples(b *strings.Builder) {
	fmt.Fprintf(b, "%s %d\n", c.nm, c.v.Load())
}

// Gauge is an atomic int64 that can go up and down.
type Gauge struct {
	nm, help string
	v        atomic.Int64
}

// NewGauge registers a gauge.
func (r *Registry) NewGauge(name, help string) *Gauge {
	g := &Gauge{nm: name, help: help}
	r.register(g)
	return g
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds n (negative to decrease).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Inc adds one; Dec subtracts one.
func (g *Gauge) Inc() { g.v.Add(1) }
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value reads the gauge.
func (g *Gauge) Value() int64 { return g.v.Load() }

func (g *Gauge) name() string     { return g.nm }
func (g *Gauge) typeName() string { return "gauge" }
func (g *Gauge) helpText() string { return g.help }
func (g *Gauge) writeSamples(b *strings.Builder) {
	fmt.Fprintf(b, "%s %d\n", g.nm, g.v.Load())
}

// funcMetric exports a value read lazily at scrape time — the
// zero-hot-path-cost way to surface a counter some other subsystem
// already maintains (the planner's cache atomics, the pool's stats).
type funcMetric struct {
	nm, help, typ string
	fn            func() float64
}

// NewCounterFunc registers a counter whose value is fn() at scrape
// time. fn must be monotonic and safe to call from any goroutine.
func (r *Registry) NewCounterFunc(name, help string, fn func() float64) {
	r.register(&funcMetric{nm: name, help: help, typ: "counter", fn: fn})
}

// NewGaugeFunc registers a gauge whose value is fn() at scrape time.
func (r *Registry) NewGaugeFunc(name, help string, fn func() float64) {
	r.register(&funcMetric{nm: name, help: help, typ: "gauge", fn: fn})
}

func (f *funcMetric) name() string     { return f.nm }
func (f *funcMetric) typeName() string { return f.typ }
func (f *funcMetric) helpText() string { return f.help }
func (f *funcMetric) writeSamples(b *strings.Builder) {
	fmt.Fprintf(b, "%s %s\n", f.nm, formatValue(f.fn()))
}

// Histogram is a fixed-bucket latency histogram: per-bucket atomic
// counts plus a CAS-folded float64 sum. Observe is allocation-free — a
// linear scan over ~17 bounds and three atomic ops.
type Histogram struct {
	nm, help   string
	label, val string // optional single label pair ("" = unlabeled)
	bounds     []float64
	counts     []atomic.Int64 // len(bounds)+1; last is +Inf
	sumBits    atomic.Uint64
	count      atomic.Int64
}

func newHistogram(name, help, label, val string, bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %q bounds not strictly increasing", name))
		}
	}
	return &Histogram{
		nm: name, help: help, label: label, val: val,
		bounds: bounds,
		counts: make([]atomic.Int64, len(bounds)+1),
	}
}

// NewHistogram registers an unlabeled histogram with the given bucket
// upper bounds (strictly increasing; +Inf is implicit).
func (r *Registry) NewHistogram(name, help string, bounds []float64) *Histogram {
	h := newHistogram(name, help, "", "", bounds)
	r.register(h)
	return h
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Count reads the total number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum reads the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

func (h *Histogram) name() string     { return h.nm }
func (h *Histogram) typeName() string { return "histogram" }
func (h *Histogram) helpText() string { return h.help }

// labelPrefix renders `{label="value",` or `{` for bucket lines, and
// `{label="value"}` or “ for sum/count lines.
func (h *Histogram) writeSamples(b *strings.Builder) {
	var cum int64
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		h.bucketLine(b, strconv.FormatFloat(bound, 'g', -1, 64), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	h.bucketLine(b, "+Inf", cum)
	suffix := ""
	if h.label != "" {
		suffix = fmt.Sprintf("{%s=%q}", h.label, h.val)
	}
	fmt.Fprintf(b, "%s_sum%s %s\n", h.nm, suffix, formatValue(h.Sum()))
	fmt.Fprintf(b, "%s_count%s %d\n", h.nm, suffix, h.count.Load())
}

func (h *Histogram) bucketLine(b *strings.Builder, le string, cum int64) {
	if h.label != "" {
		fmt.Fprintf(b, "%s_bucket{%s=%q,le=%q} %d\n", h.nm, h.label, h.val, le, cum)
	} else {
		fmt.Fprintf(b, "%s_bucket{le=%q} %d\n", h.nm, le, cum)
	}
}

// HistogramVec is a family of histograms distinguished by one label
// (e.g. request latency by endpoint). Children are usually created
// once at wiring time via With, so the observe path never touches the
// vec's lock.
type HistogramVec struct {
	nm, help, label string
	bounds          []float64

	mu       sync.Mutex
	children map[string]*Histogram
}

// NewHistogramVec registers a labeled histogram family.
func (r *Registry) NewHistogramVec(name, help, label string, bounds []float64) *HistogramVec {
	v := &HistogramVec{
		nm: name, help: help, label: label,
		bounds:   bounds,
		children: make(map[string]*Histogram),
	}
	r.register(v)
	return v
}

// With returns (creating if needed) the child histogram for the given
// label value. Callers on hot paths should capture the child once.
func (v *HistogramVec) With(value string) *Histogram {
	v.mu.Lock()
	defer v.mu.Unlock()
	if h, ok := v.children[value]; ok {
		return h
	}
	h := newHistogram(v.nm, v.help, v.label, value, v.bounds)
	v.children[value] = h
	return h
}

func (v *HistogramVec) name() string     { return v.nm }
func (v *HistogramVec) typeName() string { return "histogram" }
func (v *HistogramVec) helpText() string { return v.help }
func (v *HistogramVec) writeSamples(b *strings.Builder) {
	v.mu.Lock()
	vals := make([]string, 0, len(v.children))
	for val := range v.children {
		vals = append(vals, val)
	}
	sort.Strings(vals)
	children := make([]*Histogram, len(vals))
	for i, val := range vals {
		children[i] = v.children[val]
	}
	v.mu.Unlock()
	for _, h := range children {
		h.writeSamples(b)
	}
}
