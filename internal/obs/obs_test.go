package obs

import (
	"bytes"
	"regexp"
	"strings"
	"sync"
	"testing"
)

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	r.Record(Event{T: 1, Kind: "x"})
	if r.Len() != 0 || r.Events() != nil {
		t.Fatal("nil recorder should report empty")
	}
	if s := r.Scoped("a"); s != nil {
		t.Fatal("Scoped on nil should stay nil")
	}
	var buf bytes.Buffer
	if err := r.WriteNDJSON(&buf); err != nil || buf.Len() != 0 {
		t.Fatalf("nil WriteNDJSON wrote %q, err %v", buf.String(), err)
	}
}

func TestRecorderScoping(t *testing.T) {
	r := NewRecorder()
	r.Record(Event{T: 1, Kind: "a"})
	j3 := r.Scoped("job3")
	j3.Record(Event{T: 2, Kind: "b"})
	j3.Scoped("w0").Record(Event{T: 3, Kind: "c"})
	evs := r.Events()
	if len(evs) != 3 {
		t.Fatalf("got %d events, want 3", len(evs))
	}
	if evs[0].Scope != "" || evs[1].Scope != "job3" || evs[2].Scope != "job3/w0" {
		t.Fatalf("scopes wrong: %+v", evs)
	}
}

func TestRecorderNDJSONFieldOrder(t *testing.T) {
	r := NewRecorder()
	r.Record(Event{T: 1.5, Kind: "revocation", Worker: "K80-0", Step: 42})
	var buf bytes.Buffer
	if err := r.WriteNDJSON(&buf); err != nil {
		t.Fatal(err)
	}
	want := `{"t":1.5,"kind":"revocation","worker":"K80-0","step":42}` + "\n"
	if buf.String() != want {
		t.Fatalf("got %q, want %q", buf.String(), want)
	}
}

// TestCollectorOrderIndependent pins the property repro -trace-out
// relies on: the exported stream depends only on the recorded events,
// never on the order units ran or were registered.
func TestCollectorOrderIndependent(t *testing.T) {
	render := func(keys []string) string {
		c := NewCollector()
		for i, k := range keys {
			c.Unit(k).Record(Event{T: float64(i), Kind: "e"})
		}
		var buf bytes.Buffer
		if err := c.WriteNDJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	a := render([]string{"exp/0001 b", "exp/0000 a", "exp/0002 c"})
	b := render([]string{"exp/0002 c", "exp/0000 a", "exp/0001 b"})
	// The events carry different T per registration order above, so
	// normalize by comparing unit ordering only.
	if gotA, gotB := unitsOf(a), unitsOf(b); gotA != gotB {
		t.Fatalf("unit order differs:\n%s\nvs\n%s", gotA, gotB)
	}
	if !strings.HasPrefix(a, `{"unit":"exp/0000 a"`) {
		t.Fatalf("units not sorted: %q", a)
	}
}

func unitsOf(s string) string {
	var units []string
	for _, line := range strings.Split(strings.TrimSpace(s), "\n") {
		units = append(units, strings.SplitN(line, ",", 2)[0])
	}
	return strings.Join(units, "|")
}

func TestCollectorConcurrentUnits(t *testing.T) {
	c := NewCollector()
	keys := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	recs := make([]*Recorder, len(keys))
	for i, k := range keys {
		recs[i] = c.Unit(k)
	}
	var wg sync.WaitGroup
	for i := range recs {
		wg.Add(1)
		go func(r *Recorder, base float64) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				r.Record(Event{T: base + float64(j), Kind: "e"})
			}
		}(recs[i], float64(i*1000))
	}
	wg.Wait()
	if c.Len() != len(keys)*100 {
		t.Fatalf("got %d events, want %d", c.Len(), len(keys)*100)
	}
}

func TestCounterGaugeConcurrent(t *testing.T) {
	reg := NewRegistry()
	c := reg.NewCounter("test_total", "a counter")
	g := reg.NewGauge("test_gauge", "a gauge")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				g.Inc()
				g.Dec()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter %d, want 8000", c.Value())
	}
	if g.Value() != 0 {
		t.Fatalf("gauge %d, want 0", g.Value())
	}
}

func TestHistogramBucketsAndSum(t *testing.T) {
	reg := NewRegistry()
	h := reg.NewHistogram("lat_seconds", "latency", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count %d, want 5", h.Count())
	}
	if got, want := h.Sum(), 56.05; got != want {
		t.Fatalf("sum %g, want %g", got, want)
	}
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# HELP lat_seconds latency",
		"# TYPE lat_seconds histogram",
		`lat_seconds_bucket{le="0.1"} 1`,
		`lat_seconds_bucket{le="1"} 3`,
		`lat_seconds_bucket{le="10"} 4`,
		`lat_seconds_bucket{le="+Inf"} 5`,
		"lat_seconds_sum 56.05",
		"lat_seconds_count 5",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	reg := NewRegistry()
	h := reg.NewHistogram("h_seconds", "h", DefaultLatencyBuckets)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				h.Observe(0.25)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Fatalf("count %d, want 8000", h.Count())
	}
	if got := h.Sum(); got != 2000 {
		t.Fatalf("sum %g, want 2000", got)
	}
}

func TestHistogramVecLabels(t *testing.T) {
	reg := NewRegistry()
	v := reg.NewHistogramVec("req_seconds", "by endpoint", "endpoint", []float64{1})
	v.With("measure").Observe(0.5)
	v.With("sweep").Observe(2)
	if v.With("measure") != v.With("measure") {
		t.Fatal("With must return the same child")
	}
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`req_seconds_bucket{endpoint="measure",le="1"} 1`,
		`req_seconds_bucket{endpoint="sweep",le="+Inf"} 1`,
		`req_seconds_sum{endpoint="measure"} 0.5`,
		`req_seconds_count{endpoint="sweep"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestDuplicateNamePanics(t *testing.T) {
	reg := NewRegistry()
	reg.NewCounter("dup_total", "x")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate metric name")
		}
	}()
	reg.NewGauge("dup_total", "y")
}

// expositionLine matches the two legal shapes of a Prometheus text
// line: a comment/header or a sample. Shared with the CI metrics
// check's grammar.
var expositionLine = regexp.MustCompile(
	`^(# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* .*|[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? ([-+]?[0-9]*\.?[0-9]+([eE][-+]?[0-9]+)?|[-+]?Inf|NaN))$`)

// TestExpositionWellFormed runs the full metric-type zoo through the
// writer and validates every line against the exposition grammar —
// the in-process version of the CI curl check.
func TestExpositionWellFormed(t *testing.T) {
	reg := NewRegistry()
	reg.NewCounter("c_total", "counter").Add(3)
	reg.NewGauge("g", "gauge").Set(-2)
	reg.NewCounterFunc("cf_total", "func counter", func() float64 { return 12.5 })
	reg.NewGaugeFunc("gf", "func gauge", func() float64 { return 0.25 })
	reg.NewHistogram("h_seconds", "histogram", DefaultLatencyBuckets).Observe(0.3)
	vec := reg.NewHistogramVec("hv_seconds", "vec", "endpoint", []float64{0.1, 1})
	vec.With("a").Observe(0.05)
	vec.With("b").Observe(5)
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n") {
		if !expositionLine.MatchString(line) {
			t.Fatalf("malformed exposition line: %q", line)
		}
	}
}
