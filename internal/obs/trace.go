// Package obs is the repo's observability layer, split into two
// planes that must never be confused:
//
//   - The sim plane (this file): structured event traces recorded by
//     the training kernel, the session manager, and the fleet as a
//     simulation runs. Events are stamped with *simulation* time and
//     carry only values derived from sim state, so a trace is a pure
//     function of (config, seed) — byte-reproducible at any worker
//     count and golden-testable like any other output. Recording draws
//     no randomness and schedules no events, so a traced run's results
//     are byte-identical to an untraced run's.
//
//   - The service plane (metrics.go): wall-clock counters, gauges, and
//     latency histograms for the long-running planner daemon. Those
//     numbers describe the service (cache hit rates, queue depth,
//     request latency), never the simulated world, and are exported in
//     Prometheus text form.
//
// This is the reproduction of CM-DARE's own posture: the paper's
// performance tracker runs on every training server, logs training
// speed, and feeds the profiler (Fig. 1, steps 4 and 7). internal/
// profile computes the windowed speeds; this package gives every layer
// a timeline to fold them into.
package obs

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
)

// Event is one sim-plane trace entry. Field order is the NDJSON field
// order (encoding/json emits struct fields in declaration order), so
// traces are stable byte-for-byte across runs and Go versions.
//
// The kind vocabulary, by emitting layer:
//
//	train:   checkpoint, revocation, join, rollback, chief-handoff,
//	         shrink, rebalance, speed
//	manager: startup, replace, replace-blocked, elastic-shrink,
//	         elastic-grow
//	fleet:   job-arrive, job-place, job-done
type Event struct {
	// T is the simulation time in seconds.
	T float64 `json:"t"`
	// Kind names the event (see the vocabulary above).
	Kind string `json:"kind"`
	// Scope qualifies the emitter, e.g. "job3" for one fleet job's
	// session; empty for a standalone session.
	Scope string `json:"scope,omitempty"`
	// Worker names the cluster worker involved, when one is.
	Worker string `json:"worker,omitempty"`
	// Step is the global training step at the event.
	Step int64 `json:"step,omitempty"`
	// Risk carries the predicted revocation-risk ratio that triggered
	// an elastic resize decision.
	Risk float64 `json:"risk,omitempty"`
	// Value is the event's scalar payload: windowed steps/s for speed
	// samples, startup seconds for startups, retry seconds for blocked
	// replacements.
	Value float64 `json:"value,omitempty"`
	// Detail is a small human-readable payload, e.g. the new batch
	// shares after a rebalance or the cell an elastic grow picked.
	Detail string `json:"detail,omitempty"`
}

// Recorder collects one simulation's trace. It is single-threaded like
// the kernel it observes: all Record calls must come from the one
// simulation goroutine. A nil *Recorder is a valid no-op sink — every
// method is nil-safe — so instrumented code records unconditionally
// and pays one pointer test when tracing is off.
type Recorder struct {
	st    *recorderState
	scope string
}

// recorderState is the buffer shared by a recorder and its scoped
// children.
type recorderState struct {
	events []Event
}

// NewRecorder returns an empty trace recorder.
func NewRecorder() *Recorder {
	return &Recorder{st: &recorderState{}}
}

// Scoped returns a recorder appending to the same trace with the given
// scope (nested scopes join with "/"). Scoped on a nil recorder is
// nil, so scope plumbing needs no branches either.
func (r *Recorder) Scoped(scope string) *Recorder {
	if r == nil {
		return nil
	}
	if r.scope != "" {
		scope = r.scope + "/" + scope
	}
	return &Recorder{st: r.st, scope: scope}
}

// Record appends one event, stamping the recorder's scope. On a nil
// recorder it is a no-op. The hot path is one append — no locking, no
// formatting, no allocation beyond the amortized slice growth.
func (r *Recorder) Record(e Event) {
	if r == nil {
		return
	}
	if r.scope != "" {
		if e.Scope == "" {
			e.Scope = r.scope
		} else {
			e.Scope = r.scope + "/" + e.Scope
		}
	}
	r.st.events = append(r.st.events, e)
}

// Len reports how many events were recorded. Nil-safe.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	return len(r.st.events)
}

// Events returns a copy of the trace in record order. Nil-safe.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	out := make([]Event, len(r.st.events))
	copy(out, r.st.events)
	return out
}

// WriteNDJSON writes the trace as one JSON object per line.
func (r *Recorder) WriteNDJSON(w io.Writer) error {
	if r == nil {
		return nil
	}
	enc := json.NewEncoder(w)
	for i := range r.st.events {
		if err := enc.Encode(&r.st.events[i]); err != nil {
			return err
		}
	}
	return nil
}

// Collector gathers the traces of a whole campaign: one recorder per
// unit, keyed by a caller-chosen unit key. Recorders are created at
// plan-declaration time (single-threaded) and each is then written
// only by its own unit's goroutine, but Unit is mutex-guarded anyway
// so creation order never matters. Export sorts units by key, so the
// combined NDJSON stream is byte-identical at any -parallel value.
type Collector struct {
	mu    sync.Mutex
	units map[string]*Recorder
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{units: make(map[string]*Recorder)}
}

// Unit returns (creating if needed) the recorder for the given unit
// key.
func (c *Collector) Unit(key string) *Recorder {
	c.mu.Lock()
	defer c.mu.Unlock()
	if r, ok := c.units[key]; ok {
		return r
	}
	r := NewRecorder()
	c.units[key] = r
	return r
}

// Units lists the unit keys in sorted order.
func (c *Collector) Units() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	keys := make([]string, 0, len(c.units))
	for k := range c.units {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Len reports the total number of events across all units.
func (c *Collector) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, r := range c.units {
		n += len(r.st.events)
	}
	return n
}

// unitEvent is one collector NDJSON line: the owning unit's key,
// then the event fields flattened.
type unitEvent struct {
	Unit string `json:"unit"`
	Event
}

// WriteNDJSON writes every unit's trace, units in sorted key order and
// events in record order within each unit — a deterministic stream
// regardless of how the campaign was scheduled.
func (c *Collector) WriteNDJSON(w io.Writer) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	keys := make([]string, 0, len(c.units))
	for k := range c.units {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	enc := json.NewEncoder(w)
	for _, k := range keys {
		for i := range c.units[k].st.events {
			if err := enc.Encode(unitEvent{Unit: k, Event: c.units[k].st.events[i]}); err != nil {
				return err
			}
		}
	}
	return nil
}
