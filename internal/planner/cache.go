package planner

import (
	"container/list"
	"sync"
)

// lru is the planner's seed-keyed result cache. Keys are canonical
// identities plus the campaign seed — single-scenario keys (cacheKey)
// and fleet keys (fleetCacheKey) share the one namespace, with
// disjoint prefixes keeping the families apart — and values are the
// corresponding finished results. Simulations are pure functions of
// their key, so entries never go stale; capacity is the only reason to
// evict, and least-recently-used is the right victim because planning
// sessions revisit the scenarios they are deciding between.
type lru struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recently used
	items map[string]*list.Element
}

type lruEntry struct {
	key string
	val any
}

func newLRU(capacity int) *lru {
	return &lru{
		cap:   capacity,
		order: list.New(),
		items: make(map[string]*list.Element, capacity),
	}
}

// Get returns the cached result and refreshes its recency.
func (c *lru) Get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

// Add inserts or refreshes an entry and reports whether a victim was
// evicted to make room.
func (c *lru) Add(key string, val any) (evicted bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*lruEntry).val = val
		c.order.MoveToFront(el)
		return false
	}
	c.items[key] = c.order.PushFront(&lruEntry{key: key, val: val})
	if c.order.Len() <= c.cap {
		return false
	}
	victim := c.order.Back()
	c.order.Remove(victim)
	delete(c.items, victim.Value.(*lruEntry).key)
	return true
}

// Len reports the number of cached entries.
func (c *lru) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
