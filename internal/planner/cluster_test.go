package planner

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
)

// TestClusterQuerySharesCacheLineWithPlainQuery pins the cache
// coherence of the cluster axis: a homogeneous cluster query is the
// same measurement as the equivalent gpu/workers query, so the second
// phrasing must be a cache hit, not a second simulation. A mixed
// cluster and a non-static elastic policy are different worlds and
// must each simulate once.
func TestClusterQuerySharesCacheLineWithPlainQuery(t *testing.T) {
	p := New(Config{Workers: 2, QueueDepth: 4, CacheSize: 16})
	defer p.Close()
	var sims atomic.Int64
	p.measure = fakeMeasure(&sims)
	ctx := context.Background()

	plain := ScenarioQuery{
		Model: "ResNet-15", Region: "us-west1", Tier: "transient",
		GPU: "P100", Workers: 4, TargetSteps: 100, Seed: 7,
	}
	if _, err := p.Measure(ctx, plain); err != nil {
		t.Fatal(err)
	}
	if sims.Load() != 1 {
		t.Fatalf("plain query ran %d simulations, want 1", sims.Load())
	}

	homog := plain
	homog.GPU, homog.Workers = "", 0
	homog.Cluster = "4xP100"
	out, err := p.Measure(ctx, homog)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Cached || sims.Load() != 1 {
		t.Fatalf("homogeneous cluster query must hit the plain query's cache line (cached=%v, sims=%d)", out.Cached, sims.Load())
	}

	mixed := homog
	mixed.Cluster = "2xK80+2xP100"
	out, err = p.Measure(ctx, mixed)
	if err != nil {
		t.Fatal(err)
	}
	if out.Cached || sims.Load() != 2 {
		t.Fatalf("mixed cluster query must simulate its own world (cached=%v, sims=%d)", out.Cached, sims.Load())
	}
	// Group order never matters: the reordered spec is the same world.
	reordered := mixed
	reordered.Cluster = "2xP100+2xK80"
	out, err = p.Measure(ctx, reordered)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Cached || sims.Load() != 2 {
		t.Fatalf("reordered cluster groups must share the cache line (cached=%v, sims=%d)", out.Cached, sims.Load())
	}

	// Explicit "static" is the implicit default; "elastic" keys apart.
	static := plain
	static.Elastic = "static"
	out, err = p.Measure(ctx, static)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Cached || sims.Load() != 2 {
		t.Fatalf("explicit static policy must hit the plain query's cache line (cached=%v, sims=%d)", out.Cached, sims.Load())
	}
	elastic := plain
	elastic.Elastic = "elastic"
	out, err = p.Measure(ctx, elastic)
	if err != nil {
		t.Fatal(err)
	}
	if out.Cached || sims.Load() != 3 {
		t.Fatalf("elastic policy query must simulate its own world (cached=%v, sims=%d)", out.Cached, sims.Load())
	}
}

// TestClusterAndElasticQueryValidation maps malformed cluster and
// elastic phrasings to BadRequestError.
func TestClusterAndElasticQueryValidation(t *testing.T) {
	p := New(Config{Workers: 1, QueueDepth: 1, CacheSize: 4})
	defer p.Close()
	base := ScenarioQuery{Model: "ResNet-15", Region: "us-west1", Tier: "transient", TargetSteps: 1}
	bad := map[string]func(q *ScenarioQuery){
		"malformed cluster spec": func(q *ScenarioQuery) { q.Cluster = "P100x4" },
		"zero-count group":       func(q *ScenarioQuery) { q.Cluster = "0xP100" },
		"unknown gpu in cluster": func(q *ScenarioQuery) { q.Cluster = "1xH100" },
		"cluster plus gpu":       func(q *ScenarioQuery) { q.Cluster = "4xP100"; q.GPU = "P100" },
		"cluster plus workers":   func(q *ScenarioQuery) { q.Cluster = "4xP100"; q.Workers = 4 },
		"unoffered cluster cell": func(q *ScenarioQuery) { q.Cluster = "1xK80+1xV100"; q.Region = "us-east1" },
		"unknown elastic policy": func(q *ScenarioQuery) { q.Cluster = "4xP100"; q.Elastic = "no-such-policy" },
	}
	for name, mutate := range bad {
		q := base
		mutate(&q)
		var e *BadRequestError
		if _, err := p.Measure(context.Background(), q); !errors.As(err, &e) {
			t.Errorf("%s: got %v, want BadRequestError", name, err)
		}
	}
}

// TestHTTPCatalogListsElasticPolicies is the wire-level discovery
// contract: /v1/catalog advertises the membership policies a query's
// elastic field accepts.
func TestHTTPCatalogListsElasticPolicies(t *testing.T) {
	p := New(Config{Workers: 1, QueueDepth: 1, CacheSize: 4})
	defer p.Close()
	srv := httptest.NewServer(p.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/v1/catalog")
	if err != nil {
		t.Fatal(err)
	}
	cat := decodeBody[Catalog](t, resp)
	want := map[string]bool{"static": false, "elastic": false, "surge": false}
	for _, name := range cat.ElasticPolicies {
		if _, ok := want[name]; ok {
			want[name] = true
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("catalog elastic_policies missing %q (got %v)", name, cat.ElasticPolicies)
		}
	}
}
