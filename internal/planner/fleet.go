package planner

import (
	"context"
	"fmt"

	"repro/internal/campaign"
	"repro/internal/fleet"
	"repro/internal/obs"
)

// maxFleetJobs bounds one fleet query's workload; a fleet run is one
// unit (one kernel), so its cost scales with jobs × steps and a
// runaway count would pin a pool worker far longer than any grid cell.
const maxFleetJobs = 1024

// FleetQuery declares one fleet simulation over the wire: a workload,
// a capacity-constrained pool, and a scheduler to run it under.
type FleetQuery struct {
	// Scheduler names the admission policy — a name from the
	// catalog's schedulers list. Empty means fifo.
	Scheduler string `json:"scheduler,omitempty"`
	// Jobs is how many jobs arrive (required).
	Jobs int `json:"jobs"`
	// Arrival is the inter-arrival law: "poisson" (default) or
	// "bursty".
	Arrival string `json:"arrival,omitempty"`
	// RatePerHour is the mean arrival rate (required).
	RatePerHour float64 `json:"rate_per_hour"`
	// StepsPerWorker scales each job's training target with its
	// cluster size (required).
	StepsPerWorker int64 `json:"steps_per_worker"`
	// CheckpointInterval is Ic in steps (0: 1000).
	CheckpointInterval int64 `json:"checkpoint_interval,omitempty"`
	// Capacity caps transient pool cells, keyed "region/GPU" (e.g.
	// "us-west1/V100": 4). Empty means an infinite pool.
	Capacity map[string]int `json:"capacity,omitempty"`
	// RevModel selects the revocation regime (catalog name; empty:
	// each provider's own default).
	RevModel string `json:"rev_model,omitempty"`
	// Providers lists the markets the fleet schedules across (catalog
	// provider names). Empty means the default single market; the
	// cross-provider "arbitrage" scheduler wants two or more.
	Providers []string `json:"providers,omitempty"`
	// Elastic names a cluster membership policy (catalog
	// elastic_policies name) applied to every job session. Empty (or
	// "static") holds each job's launch shape.
	Elastic string `json:"elastic,omitempty"`
	// HorizonHours bounds the run (0: a week).
	HorizonHours float64 `json:"horizon_hours,omitempty"`
	// WorkloadSeed seeds job generation independently of Seed (0:
	// derived from Seed), letting clients hold the job stream fixed
	// while varying cloud randomness.
	WorkloadSeed int64 `json:"workload_seed,omitempty"`
	Seed         int64 `json:"seed"`
	// Trace opts in to the sim-plane event trace: one trace line per
	// event streams between the job lines and the summary. Tracing
	// never perturbs the simulation — traced and untraced fleet
	// results are numerically identical; traced results are cached
	// separately.
	Trace bool `json:"trace,omitempty"`
}

// config validates the query into a fleet config.
func (q FleetQuery) config() (fleet.Config, error) {
	if _, err := fleet.LookupScheduler(q.Scheduler); err != nil {
		return fleet.Config{}, err
	}
	arrival, err := fleet.ParseArrival(q.Arrival)
	if err != nil {
		return fleet.Config{}, err
	}
	if q.Jobs > maxFleetJobs {
		return fleet.Config{}, fmt.Errorf("planner: %d jobs exceeds the per-query limit of %d", q.Jobs, maxFleetJobs)
	}
	capacity, err := fleet.CapacityFromCells(q.Capacity)
	if err != nil {
		return fleet.Config{}, err
	}
	ic, err := resolveCheckpointInterval(q.CheckpointInterval)
	if err != nil {
		return fleet.Config{}, err
	}
	cfg := fleet.Config{
		Workload: fleet.WorkloadSpec{
			Jobs:               q.Jobs,
			Arrival:            arrival,
			RatePerHour:        q.RatePerHour,
			StepsPerWorker:     q.StepsPerWorker,
			CheckpointInterval: ic,
		},
		Scheduler:    q.Scheduler,
		RevModel:     q.RevModel,
		Providers:    q.Providers,
		Elastic:      q.Elastic,
		Capacity:     capacity,
		HorizonHours: q.HorizonHours,
		WorkloadSeed: q.WorkloadSeed,
	}
	// Validate the rest (workload bounds, horizon, rev model) exactly
	// as Run would, so bad queries fail as 400s before dispatch.
	if err := cfg.Validate(); err != nil {
		return fleet.Config{}, err
	}
	return cfg, nil
}

// fleetCacheKey is the fleet family's full result identity: canonical
// config key plus the campaign seed, in the same cache namespace as
// single-scenario keys (the "fleet|" prefix keeps them disjoint).
func fleetCacheKey(cfg fleet.Config, seed int64) string {
	return fmt.Sprintf("%s|seed=%d", cfg.Key(), seed)
}

// FleetItem is one NDJSON line of a fleet response: one job's outcome,
// one sim-plane trace event (traced queries only), or the trailing
// summary.
type FleetItem struct {
	// Job is one per-job line; nil on trace and summary lines.
	Job *fleet.JobResult `json:"job,omitempty"`
	// Trace is one sim-plane event, scoped by the job that emitted it;
	// trace lines stream between the job lines and the summary when
	// the query set trace.
	Trace *obs.Event `json:"trace,omitempty"`
	// Summary is the final aggregate line: the fleet result with its
	// per-job list stripped (the jobs were already streamed).
	Summary *FleetSummary `json:"summary,omitempty"`
}

// FleetSummary is the aggregate trailer of a fleet response.
type FleetSummary struct {
	Scheduler      string   `json:"scheduler"`
	Providers      []string `json:"providers"`
	RevModel       string   `json:"rev_model"`
	Capacity       string   `json:"capacity"`
	Key            string   `json:"key"`
	Seed           int64    `json:"seed"`
	Jobs           int      `json:"jobs"`
	Completed      int      `json:"completed"`
	DeadlineMisses int      `json:"deadline_misses"`
	OverBudgetJobs int      `json:"over_budget_jobs"`
	MakespanHours  float64  `json:"makespan_hours"`
	MeanWaitHours  float64  `json:"mean_wait_hours"`
	TotalCostUSD   float64  `json:"total_cost_usd"`
	Revocations    int      `json:"revocations"`
	Cached         bool     `json:"cached"`
}

// Fleet answers a fleet query (cached, coalesced) and emits the
// per-job results in arrival order followed by the aggregate summary.
// A repeated query is a cache lookup: the simulation runs at most once
// per (canonical key, seed).
func (p *Planner) Fleet(ctx context.Context, q FleetQuery, emit func(FleetItem) error) error {
	cfg, err := q.config()
	if err != nil {
		return &BadRequestError{err}
	}
	key := fleetCacheKey(cfg, q.Seed)
	var res *fleet.Result
	var events []obs.Event
	var cached bool
	if q.Trace {
		v, c, err := p.cached(ctx, key+"|trace=1", func() (any, error) {
			return p.simulateFleetTraced(ctx, cfg, q.Seed)
		})
		if err != nil {
			return err
		}
		tf := v.(tracedFleet)
		res, events, cached = tf.res, tf.events, c
	} else {
		v, c, err := p.cached(ctx, key, func() (any, error) {
			return p.simulateFleet(ctx, cfg, q.Seed)
		})
		if err != nil {
			return err
		}
		res, cached = v.(*fleet.Result), c
	}
	for i := range res.Jobs {
		if err := emit(FleetItem{Job: &res.Jobs[i]}); err != nil {
			return err
		}
	}
	for i := range events {
		if err := emit(FleetItem{Trace: &events[i]}); err != nil {
			return err
		}
	}
	return emit(FleetItem{Summary: &FleetSummary{
		Scheduler:      res.Scheduler,
		Providers:      res.Providers,
		RevModel:       res.RevModel,
		Capacity:       res.Capacity,
		Key:            cfg.Key(),
		Seed:           q.Seed,
		Jobs:           len(res.Jobs),
		Completed:      res.Completed,
		DeadlineMisses: res.DeadlineMisses,
		OverBudgetJobs: res.OverBudgetJobs,
		MakespanHours:  res.MakespanHours,
		MeanWaitHours:  res.MeanWaitHours,
		TotalCostUSD:   res.TotalCostUSD,
		Revocations:    res.Revocations,
		Cached:         cached,
	}})
}

// simulateFleet runs one fleet simulation as a single-unit campaign
// plan on the shared pool, like simulate does for scenarios: the same
// bounded admission queue backpressures fleet and scenario traffic
// together, and the unit inherits the engine's panic containment.
func (p *Planner) simulateFleet(ctx context.Context, cfg fleet.Config, seed int64) (*fleet.Result, error) {
	plan := &campaign.Plan{
		Seed: seed,
		Units: []campaign.Unit{{
			Key: cfg.Key(),
			Run: func(unitSeed int64) (any, error) {
				p.inflight.Add(1)
				defer p.inflight.Add(-1)
				return p.runFleet(cfg, unitSeed)
			},
		}},
	}
	v, err := campaign.Engine{Pool: p.pool}.RunContext(ctx, plan)
	if err != nil {
		return nil, err
	}
	return v.([]any)[0].(*fleet.Result), nil
}

// tracedFleet is what the cache stores for a traced fleet query.
type tracedFleet struct {
	res    *fleet.Result
	events []obs.Event
}

// simulateFleetTraced is simulateFleet with the sim-plane recorder
// attached. The unit Key is identical to simulateFleet's, so the
// derived simulation seed — and the result — is exactly the untraced
// query's; only the cache key differs.
func (p *Planner) simulateFleetTraced(ctx context.Context, cfg fleet.Config, seed int64) (tracedFleet, error) {
	plan := &campaign.Plan{
		Seed: seed,
		Units: []campaign.Unit{{
			Key: cfg.Key(),
			Run: func(unitSeed int64) (any, error) {
				p.inflight.Add(1)
				defer p.inflight.Add(-1)
				res, events, err := p.runFleetTraced(cfg, unitSeed)
				if err != nil {
					return nil, err
				}
				return tracedFleet{res: res, events: events}, nil
			},
		}},
	}
	v, err := campaign.Engine{Pool: p.pool}.RunContext(ctx, plan)
	if err != nil {
		return tracedFleet{}, err
	}
	return v.([]any)[0].(tracedFleet), nil
}
