package planner

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/fleet"
)

// fakeFleet replaces the real fleet simulation with a cheap pure
// function of (config key, seed), counting invocations — the probe for
// "how many fleet simulations actually ran".
func fakeFleet(runs *atomic.Int64) func(cfg fleet.Config, seed int64) (*fleet.Result, error) {
	return func(cfg fleet.Config, seed int64) (*fleet.Result, error) {
		runs.Add(1)
		jobs := make([]fleet.JobResult, cfg.Workload.Jobs)
		for i := range jobs {
			jobs[i] = fleet.JobResult{ID: i, Done: true, DeadlineMet: true, CostUSD: float64(seed%97) + float64(i)}
		}
		return &fleet.Result{
			Scheduler:     cfg.Key(), // echo the identity for assertions
			Jobs:          jobs,
			Completed:     len(jobs),
			MakespanHours: float64(seed % 97),
		}, nil
	}
}

func fleetQueryJSON(scheduler string, jobs int, seed int64) string {
	return fmt.Sprintf(`{"scheduler":%q,"jobs":%d,"rate_per_hour":2,"steps_per_worker":1000,"capacity":{"us-central1/K80":2},"seed":%d}`,
		scheduler, jobs, seed)
}

// readFleetNDJSON parses a /v1/fleet response: job lines then exactly
// one summary trailer.
func readFleetNDJSON(t *testing.T, resp *http.Response) ([]fleet.JobResult, FleetSummary) {
	t.Helper()
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fleet status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q, want application/x-ndjson", ct)
	}
	var jobs []fleet.JobResult
	var summary *FleetSummary
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		if summary != nil {
			t.Fatal("lines after the summary trailer")
		}
		var item FleetItem
		if err := json.Unmarshal(line, &item); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", line, err)
		}
		switch {
		case item.Job != nil:
			jobs = append(jobs, *item.Job)
		case item.Summary != nil:
			summary = item.Summary
		default:
			t.Fatalf("line is neither job nor summary: %q", line)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if summary == nil {
		t.Fatal("no summary trailer")
	}
	return jobs, *summary
}

// TestHTTPFleetRepeatQueryIsServedFromCache pins the acceptance
// property: a repeated /v1/fleet query costs zero additional
// simulations — the whole fleet result is one cache line keyed by the
// canonical config key plus seed.
func TestHTTPFleetRepeatQueryIsServedFromCache(t *testing.T) {
	p := New(Config{Workers: 2, QueueDepth: 8, CacheSize: 64})
	defer p.Close()
	var runs atomic.Int64
	p.runFleet = fakeFleet(&runs)
	srv := httptest.NewServer(p.Handler())
	defer srv.Close()

	const jobs = 5
	first, firstSummary := readFleetNDJSON(t, postJSON(t, srv.URL+"/v1/fleet", fleetQueryJSON("fifo", jobs, 42)))
	if len(first) != jobs {
		t.Fatalf("first query streamed %d job lines, want %d", len(first), jobs)
	}
	if firstSummary.Cached {
		t.Fatal("first query reported cached")
	}
	if runs.Load() != 1 {
		t.Fatalf("first query ran %d simulations, want 1", runs.Load())
	}

	second, secondSummary := readFleetNDJSON(t, postJSON(t, srv.URL+"/v1/fleet", fleetQueryJSON("fifo", jobs, 42)))
	if runs.Load() != 1 {
		t.Fatalf("repeat query re-simulated: %d runs", runs.Load())
	}
	if !secondSummary.Cached {
		t.Fatal("repeat query not marked cached")
	}
	if len(second) != len(first) {
		t.Fatalf("repeat query streamed %d lines, want %d", len(second), len(first))
	}

	// Spelling the defaults explicitly is the same canonical key —
	// still no new simulation.
	explicit := `{"scheduler":"fifo","jobs":5,"arrival":"poisson","rate_per_hour":2,"steps_per_worker":1000,"checkpoint_interval":1000,"capacity":{"us-central1/K80":2},"horizon_hours":168,"seed":42}`
	_, expSummary := readFleetNDJSON(t, postJSON(t, srv.URL+"/v1/fleet", explicit))
	if runs.Load() != 1 {
		t.Fatalf("canonically-equal query re-simulated: %d runs", runs.Load())
	}
	if !expSummary.Cached {
		t.Fatal("canonically-equal query not marked cached")
	}

	// A different scheduler, seed, or capacity is a different key.
	readFleetNDJSON(t, postJSON(t, srv.URL+"/v1/fleet", fleetQueryJSON("cost-greedy", jobs, 42)))
	readFleetNDJSON(t, postJSON(t, srv.URL+"/v1/fleet", fleetQueryJSON("fifo", jobs, 43)))
	if runs.Load() != 3 {
		t.Fatalf("distinct queries ran %d simulations, want 3", runs.Load())
	}
}

// TestHTTPFleetConcurrentRequests drives many concurrent /v1/fleet
// requests — identical and distinct — through the shared pool under
// the race detector: the planner's cache, singleflight, and pool
// accounting must stay coherent, and identical requests must coalesce
// to at most one simulation per distinct key.
func TestHTTPFleetConcurrentRequests(t *testing.T) {
	p := New(Config{Workers: 4, QueueDepth: 8, CacheSize: 64})
	defer p.Close()
	var runs atomic.Int64
	p.runFleet = fakeFleet(&runs)
	srv := httptest.NewServer(p.Handler())
	defer srv.Close()

	const callers = 24
	const distinct = 4 // seeds 0..3
	var wg sync.WaitGroup
	errs := make([]error, callers)
	for c := 0; c < callers; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			body := fleetQueryJSON("deadline-aware", 3, int64(c%distinct))
			resp, err := http.Post(srv.URL+"/v1/fleet", "application/json", strings.NewReader(body))
			if err != nil {
				errs[c] = err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs[c] = fmt.Errorf("caller %d: status %d", c, resp.StatusCode)
				return
			}
			jobLines, summaries := 0, 0
			sc := bufio.NewScanner(resp.Body)
			for sc.Scan() {
				var item FleetItem
				if err := json.Unmarshal(bytes.TrimSpace(sc.Bytes()), &item); err != nil {
					errs[c] = fmt.Errorf("caller %d: %v", c, err)
					return
				}
				switch {
				case item.Job != nil:
					jobLines++
				case item.Summary != nil:
					summaries++
				}
			}
			if err := sc.Err(); err != nil {
				errs[c] = err
				return
			}
			if jobLines != 3 || summaries != 1 {
				errs[c] = fmt.Errorf("caller %d: %d job lines, %d summaries", c, jobLines, summaries)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if n := runs.Load(); n != distinct {
		t.Fatalf("%d simulations ran for %d distinct keys", n, distinct)
	}
	st := p.Stats()
	if st.Misses != distinct {
		t.Fatalf("stats misses = %d, want %d", st.Misses, distinct)
	}
	if st.Hits+st.Coalesced != callers-distinct {
		t.Fatalf("hits %d + coalesced %d must cover the other %d callers", st.Hits, st.Coalesced, callers-distinct)
	}
}

// TestHTTPFleetPredictiveIsItsOwnCacheLine pins the newest policy's
// cache identity end to end: every registered scheduler (predictive
// included) occupies a distinct config key, /v1/catalog advertises it,
// /v1/fleet accepts it, a repeat query is a cache hit, and a sibling
// scheduler's query never shares its line.
func TestHTTPFleetPredictiveIsItsOwnCacheLine(t *testing.T) {
	// Key-level: the sched= axis separates every registered policy.
	base := fleet.Config{Workload: fleet.WorkloadSpec{Jobs: 3, RatePerHour: 2, StepsPerWorker: 100}}
	keys := map[string]string{}
	for _, sched := range fleet.SchedulerNames() {
		cfg := base
		cfg.Scheduler = sched
		if prev, dup := keys[cfg.Key()]; dup {
			t.Fatalf("schedulers %q and %q share cache key %q", prev, sched, cfg.Key())
		}
		keys[cfg.Key()] = sched
	}
	pred := base
	pred.Scheduler = "predictive"
	if !strings.Contains(pred.Key(), "|sched=predictive|") {
		t.Fatalf("predictive key does not embed its scheduler axis: %q", pred.Key())
	}

	p := New(Config{Workers: 2, QueueDepth: 8, CacheSize: 64})
	defer p.Close()
	var runs atomic.Int64
	p.runFleet = fakeFleet(&runs)
	srv := httptest.NewServer(p.Handler())
	defer srv.Close()

	// The catalog must advertise the policy /v1/fleet accepts.
	resp, err := http.Get(srv.URL + "/v1/catalog")
	if err != nil {
		t.Fatal(err)
	}
	var cat Catalog
	if err := json.NewDecoder(resp.Body).Decode(&cat); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	advertised := false
	for _, s := range cat.Schedulers {
		advertised = advertised || s == "predictive"
	}
	if !advertised {
		t.Fatalf("catalog schedulers %v omit predictive", cat.Schedulers)
	}

	readFleetNDJSON(t, postJSON(t, srv.URL+"/v1/fleet", fleetQueryJSON("predictive", 4, 42)))
	if runs.Load() != 1 {
		t.Fatalf("first predictive query ran %d simulations, want 1", runs.Load())
	}
	_, again := readFleetNDJSON(t, postJSON(t, srv.URL+"/v1/fleet", fleetQueryJSON("predictive", 4, 42)))
	if runs.Load() != 1 || !again.Cached {
		t.Fatalf("repeat predictive query re-simulated (runs=%d, cached=%v)", runs.Load(), again.Cached)
	}
	readFleetNDJSON(t, postJSON(t, srv.URL+"/v1/fleet", fleetQueryJSON("deadline-aware", 4, 42)))
	if runs.Load() != 2 {
		t.Fatalf("sibling scheduler hit predictive's cache line (runs=%d)", runs.Load())
	}
}

// TestHTTPFleetValidation maps bad queries to 400s before any
// simulation is dispatched.
func TestHTTPFleetValidation(t *testing.T) {
	p := New(Config{Workers: 1, QueueDepth: 2, CacheSize: 8})
	defer p.Close()
	var runs atomic.Int64
	p.runFleet = fakeFleet(&runs)
	srv := httptest.NewServer(p.Handler())
	defer srv.Close()

	bad := []string{
		`{"jobs":0,"rate_per_hour":2,"steps_per_worker":1000}`,
		`{"jobs":3,"rate_per_hour":0,"steps_per_worker":1000}`,
		`{"jobs":3,"rate_per_hour":2,"steps_per_worker":0}`,
		`{"jobs":3,"rate_per_hour":2,"steps_per_worker":100,"scheduler":"nope"}`,
		`{"jobs":3,"rate_per_hour":2,"steps_per_worker":100,"arrival":"fractal"}`,
		`{"jobs":3,"rate_per_hour":2,"steps_per_worker":100,"rev_model":"nope"}`,
		`{"jobs":3,"rate_per_hour":2,"steps_per_worker":100,"capacity":{"us-central1":2}}`,
		`{"jobs":3,"rate_per_hour":2,"steps_per_worker":100,"capacity":{"us-central1/K80":0}}`,
		`{"jobs":3,"rate_per_hour":2,"steps_per_worker":100,"horizon_hours":-4}`,
		`{"jobs":3,"rate_per_hour":2,"steps_per_worker":100,"checkpoint_interval":-1}`,
		`{"jobs":9999,"rate_per_hour":2,"steps_per_worker":100}`,
	}
	for i, body := range bad {
		resp := postJSON(t, srv.URL+"/v1/fleet", body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("case %d: status = %d, want 400", i, resp.StatusCode)
		}
	}
	if runs.Load() != 0 {
		t.Fatalf("invalid queries dispatched %d simulations", runs.Load())
	}
}

// TestHTTPRealFleetRun exercises the full stack once, without stubs: a
// tiny fleet through HTTP, then the same query again as a cache hit —
// the outcome numbers must match line for line.
func TestHTTPRealFleetRun(t *testing.T) {
	p := New(Config{Workers: 2, QueueDepth: 4, CacheSize: 16})
	defer p.Close()
	srv := httptest.NewServer(p.Handler())
	defer srv.Close()

	body := `{"scheduler":"deadline-aware","jobs":3,"rate_per_hour":6,"steps_per_worker":500,"capacity":{"us-central1/K80":4,"us-central1/P100":4},"seed":11}`
	jobs, summary := readFleetNDJSON(t, postJSON(t, srv.URL+"/v1/fleet", body))
	if len(jobs) != 3 {
		t.Fatalf("streamed %d jobs, want 3", len(jobs))
	}
	if summary.Completed == 0 {
		t.Fatal("no jobs completed in a week-long horizon")
	}
	if summary.TotalCostUSD <= 0 {
		t.Fatal("fleet ran for free")
	}
	again, againSummary := readFleetNDJSON(t, postJSON(t, srv.URL+"/v1/fleet", body))
	if !againSummary.Cached {
		t.Fatal("repeat real query not cached")
	}
	for i := range jobs {
		if jobs[i] != again[i] {
			t.Fatalf("cached job %d differs: %+v vs %+v", i, jobs[i], again[i])
		}
	}
}

// TestFleetDirectAPIMatchesKeyedSeedDerivation pins the seed contract:
// the planner hands the campaign-derived unit seed to fleet.Run, so
// equal cache keys mean equal simulations even across planner
// instances.
func TestFleetDirectAPIMatchesKeyedSeedDerivation(t *testing.T) {
	p1 := New(Config{Workers: 1, QueueDepth: 2, CacheSize: 8})
	defer p1.Close()
	p2 := New(Config{Workers: 2, QueueDepth: 2, CacheSize: 8})
	defer p2.Close()
	q := FleetQuery{Jobs: 2, RatePerHour: 4, StepsPerWorker: 300, Seed: 9}
	collect := func(p *Planner) []FleetItem {
		var items []FleetItem
		if err := p.Fleet(context.Background(), q, func(it FleetItem) error {
			items = append(items, it)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return items
	}
	a, b := collect(p1), collect(p2)
	if len(a) != len(b) {
		t.Fatalf("item counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		aj, _ := json.Marshal(a[i])
		bj, _ := json.Marshal(b[i])
		if !bytes.Equal(aj, bj) {
			t.Fatalf("item %d differs across planners:\n%s\n%s", i, aj, bj)
		}
	}
}
