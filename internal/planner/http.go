package planner

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"repro/internal/cloud"
	"repro/internal/experiments"
	"repro/internal/fleet"
	"repro/internal/manager"
	"repro/internal/model"
)

// Handler serves the planner's HTTP/JSON API:
//
//	GET  /healthz      liveness
//	GET  /metrics      Prometheus text exposition (service plane)
//	GET  /v1/stats     cache, coalescing, and pool counters
//	GET  /v1/catalog   models, GPUs, regions, tiers, experiment IDs
//	POST /v1/estimate  analytic Eq. 4/5 estimate for one scenario
//	POST /v1/measure   one measured session (cached, coalesced);
//	                   "trace":true adds the sim-plane event timeline
//	POST /v1/sweep     measure a grid; streams NDJSON, one line per cell
//	POST /v1/cheapest  cheapest grid cell meeting a deadline
//	POST /v1/fleet     multi-job fleet simulation on a shared
//	                   capacity-constrained pool; streams NDJSON, one
//	                   line per job plus an aggregate summary;
//	                   "trace":true streams event lines before the
//	                   summary
//
// Every request runs under its own context: a client that disconnects
// cancels the scenarios it had not yet dispatched. Every endpoint's
// latency lands in the pland_http_request_seconds histogram.
func (p *Planner) Handler() http.Handler {
	reg := p.Metrics()
	mux := http.NewServeMux()
	// timed wraps a handler with its endpoint's latency histogram; the
	// child is captured here, at wiring time, so the request path never
	// touches the vec's lock.
	timed := func(endpoint string, h http.HandlerFunc) http.HandlerFunc {
		hist := p.httpLatency.With(endpoint)
		return func(w http.ResponseWriter, r *http.Request) {
			start := time.Now()
			h(w, r)
			hist.Observe(time.Since(start).Seconds())
		}
	}
	mux.HandleFunc("GET /healthz", timed("healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, map[string]bool{"ok": true})
	}))
	mux.HandleFunc("GET /metrics", timed("metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	}))
	mux.HandleFunc("GET /v1/stats", timed("stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, p.Stats())
	}))
	mux.HandleFunc("GET /v1/catalog", timed("catalog", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, catalog())
	}))
	mux.HandleFunc("POST /v1/estimate", timed("estimate", func(w http.ResponseWriter, r *http.Request) {
		var q ScenarioQuery
		if !decode(w, r, &q) {
			return
		}
		res, err := p.Estimate(r.Context(), q)
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, res)
	}))
	mux.HandleFunc("POST /v1/measure", timed("measure", func(w http.ResponseWriter, r *http.Request) {
		var q ScenarioQuery
		if !decode(w, r, &q) {
			return
		}
		res, err := p.Measure(r.Context(), q)
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, res)
	}))
	mux.HandleFunc("POST /v1/cheapest", timed("cheapest", func(w http.ResponseWriter, r *http.Request) {
		var q CheapestQuery
		if !decode(w, r, &q) {
			return
		}
		res, err := p.Cheapest(r.Context(), q)
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, res)
	}))
	mux.HandleFunc("POST /v1/fleet", timed("fleet", func(w http.ResponseWriter, r *http.Request) {
		var q FleetQuery
		if !decode(w, r, &q) {
			return
		}
		// No pre-validation pass: Fleet validates before it simulates
		// and nothing streams until the whole result resolves, so the
		// error path below still owns the status line (http.Error
		// replaces the optimistic Content-Type).
		w.Header().Set("Content-Type", "application/x-ndjson")
		flusher, _ := w.(http.Flusher)
		enc := json.NewEncoder(w)
		wrote := false
		err := p.Fleet(r.Context(), q, func(item FleetItem) error {
			wrote = true
			if err := enc.Encode(item); err != nil {
				return err
			}
			if flusher != nil {
				flusher.Flush()
			}
			return nil
		})
		// The whole simulation resolves before the first line streams,
		// so a failure with nothing written can still be a real status
		// code; mid-stream errors only mean the client went away.
		if err != nil && !wrote {
			writeErr(w, err)
		}
	}))
	mux.HandleFunc("POST /v1/sweep", timed("sweep", func(w http.ResponseWriter, r *http.Request) {
		var q SweepQuery
		if !decode(w, r, &q) {
			return
		}
		// Validate before the first byte is written: after that the
		// status line is gone and errors can only end the stream.
		spec, err := q.Spec()
		if err != nil {
			writeErr(w, &BadRequestError{err})
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		flusher, _ := w.(http.Flusher)
		enc := json.NewEncoder(w)
		_ = p.Sweep(r.Context(), spec, q.Seed, func(item SweepItem) error {
			if err := enc.Encode(item); err != nil {
				return err
			}
			if flusher != nil {
				flusher.Flush()
			}
			return nil
		})
	}))
	return mux
}

// Catalog lists what the planner can be asked about.
type Catalog struct {
	Models  []string `json:"models"`
	GPUs    []string `json:"gpus"`
	Regions []string `json:"regions"`
	Tiers   []string `json:"tiers"`
	// LifetimeModels are the revocation regimes a query's rev_model /
	// rev_models fields accept: the builtins plus any trace-replay
	// models registered at daemon startup (pland -trace).
	LifetimeModels []string `json:"lifetime_models"`
	// Providers are the provider worlds a query's provider / providers
	// fields accept (catalog, price book, startup model, climate).
	Providers []string `json:"providers"`
	// Schedulers are the fleet admission policies /v1/fleet accepts.
	Schedulers []string `json:"schedulers"`
	// ElasticPolicies are the cluster membership policies a query's
	// elastic field accepts.
	ElasticPolicies []string `json:"elastic_policies"`
	Experiments     []string `json:"experiments"`
}

func catalog() Catalog {
	c := Catalog{
		Experiments:     experiments.IDs(),
		LifetimeModels:  cloud.LifetimeModelNames(),
		Providers:       cloud.ProviderNames(),
		Schedulers:      fleet.SchedulerNames(),
		ElasticPolicies: manager.ElasticPolicies(),
	}
	for _, m := range model.Zoo() {
		c.Models = append(c.Models, m.Name)
	}
	for _, g := range model.AllGPUs() {
		c.GPUs = append(c.GPUs, g.String())
	}
	for _, r := range cloud.AllRegions() {
		c.Regions = append(c.Regions, r.String())
	}
	c.Tiers = []string{cloud.OnDemand.String(), cloud.Transient.String()}
	return c
}

// maxBodyBytes bounds a request body; the largest legal query (a
// maxGridCells-wide sizes array) is well under 1 MiB, so anything
// bigger is rejected before it can be materialized.
const maxBodyBytes = 1 << 20

func decode(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		http.Error(w, fmt.Sprintf("bad request body: %v", err), http.StatusBadRequest)
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, err error) {
	var bad *BadRequestError
	if errors.As(err, &bad) {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	http.Error(w, err.Error(), http.StatusInternalServerError)
}
