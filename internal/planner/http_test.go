package planner

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/experiments"
)

func postJSON(t *testing.T, url string, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeBody[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	defer resp.Body.Close()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

// TestHTTPRepeatedDefaultSweepFromCache is the wire-level acceptance
// test: pland answers a repeated DefaultSweep query (`{}`) entirely
// from cache — zero additional simulation runs — and streams one
// NDJSON line per grid cell both times.
func TestHTTPRepeatedDefaultSweepFromCache(t *testing.T) {
	p := New(Config{Workers: 4, QueueDepth: 8, CacheSize: 256})
	defer p.Close()
	var sims atomic.Int64
	p.measure = fakeMeasure(&sims)
	srv := httptest.NewServer(p.Handler())
	defer srv.Close()

	grid := len(experiments.DefaultSweep().Scenarios())
	sweep := func() []SweepItem {
		resp := postJSON(t, srv.URL+"/v1/sweep", `{}`)
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("sweep status = %d", resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
			t.Fatalf("Content-Type = %q, want application/x-ndjson", ct)
		}
		var items []SweepItem
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			line := bytes.TrimSpace(sc.Bytes())
			if len(line) == 0 {
				continue
			}
			var it SweepItem
			if err := json.Unmarshal(line, &it); err != nil {
				t.Fatalf("bad NDJSON line %q: %v", line, err)
			}
			items = append(items, it)
		}
		if err := sc.Err(); err != nil {
			t.Fatal(err)
		}
		return items
	}

	first := sweep()
	if len(first) != grid {
		t.Fatalf("first sweep streamed %d lines, want %d", len(first), grid)
	}
	if n := sims.Load(); n != int64(grid) {
		t.Fatalf("first sweep ran %d simulations, want %d", n, grid)
	}
	second := sweep()
	if n := sims.Load(); n != int64(grid) {
		t.Fatalf("repeated sweep ran %d additional simulations, want 0", n-int64(grid))
	}
	if len(second) != grid {
		t.Fatalf("repeated sweep streamed %d lines, want %d", len(second), grid)
	}
	for i, it := range second {
		if it.Err != "" || it.Outcome == nil || !it.Outcome.Cached {
			t.Fatalf("line %d not served from cache: %+v", i, it)
		}
	}
}

func TestHTTPMeasureAndStats(t *testing.T) {
	p := New(Config{Workers: 2, QueueDepth: 4, CacheSize: 16})
	defer p.Close()
	var sims atomic.Int64
	p.measure = fakeMeasure(&sims)
	srv := httptest.NewServer(p.Handler())
	defer srv.Close()

	body := `{"model":"ResNet-15","gpu":"K80","region":"us-central1","tier":"on-demand","workers":2,"target_steps":1000,"seed":5}`
	resp := postJSON(t, srv.URL+"/v1/measure", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("measure status = %d", resp.StatusCode)
	}
	out := decodeBody[Outcome](t, resp)
	if out.Scenario != "2×K80 us-central1 on-demand" || out.Cached {
		t.Fatalf("first measure = %+v", out)
	}
	out = decodeBody[Outcome](t, postJSON(t, srv.URL+"/v1/measure", body))
	if !out.Cached {
		t.Fatalf("repeated measure not cached: %+v", out)
	}
	if sims.Load() != 1 {
		t.Fatalf("%d simulations for a repeated query, want 1", sims.Load())
	}

	resp, err := http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	st := decodeBody[Stats](t, resp)
	if st.Hits != 1 || st.Misses != 1 || st.CacheEntries != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestHTTPCheapest(t *testing.T) {
	p := New(Config{Workers: 2, QueueDepth: 4, CacheSize: 16})
	defer p.Close()
	var sims atomic.Int64
	p.measure = fakeMeasure(&sims) // workers=1 → 10 h, $100; workers=2 → 5 h, $200
	srv := httptest.NewServer(p.Handler())
	defer srv.Close()

	body := `{"model":"ResNet-15","sizes":[1,2],"gpus":["K80"],"regions":["us-central1"],` +
		`"tiers":["on-demand"],"target_steps":1000,"deadline_hours":6,"seed":1}`
	resp := postJSON(t, srv.URL+"/v1/cheapest", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cheapest status = %d", resp.StatusCode)
	}
	res := decodeBody[CheapestResult](t, resp)
	if res.Best == nil || res.Best.Scenario != "2×K80 us-central1 on-demand" {
		t.Fatalf("cheapest = %+v", res)
	}
}

func TestHTTPValidationAndRouting(t *testing.T) {
	p := New(Config{Workers: 1, QueueDepth: 2, CacheSize: 4})
	defer p.Close()
	var sims atomic.Int64
	p.measure = fakeMeasure(&sims)
	srv := httptest.NewServer(p.Handler())
	defer srv.Close()

	for name, tc := range map[string]struct {
		path, body string
		status     int
	}{
		"unknown model":          {"/v1/measure", `{"model":"NoNet","gpu":"K80","region":"us-central1","tier":"on-demand","workers":1,"target_steps":1}`, 400},
		"unknown field":          {"/v1/measure", `{"modle":"ResNet-15"}`, 400},
		"malformed json":         {"/v1/measure", `{`, 400},
		"bad sweep gpu":          {"/v1/sweep", `{"gpus":["H100"]}`, 400},
		"empty sweep grid":       {"/v1/sweep", `{"gpus":["V100"],"regions":["us-east1"]}`, 400},
		"bad grid size":          {"/v1/cheapest", `{"sizes":[0],"target_steps":10}`, 400},
		"missing steps":          {"/v1/cheapest", `{}`, 400},
		"negative ic":            {"/v1/measure", `{"model":"ResNet-15","gpu":"K80","region":"us-central1","tier":"on-demand","workers":1,"target_steps":10,"checkpoint_interval":-5}`, 400},
		"negative ic (cheapest)": {"/v1/cheapest", `{"target_steps":10,"checkpoint_interval":-5}`, 400},
		"unoffered combo":        {"/v1/estimate", `{"model":"ResNet-15","gpu":"V100","region":"us-east1","tier":"on-demand","workers":1,"target_steps":1}`, 400},
	} {
		resp := postJSON(t, srv.URL+tc.path, tc.body)
		resp.Body.Close()
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status = %d, want %d", name, resp.StatusCode, tc.status)
		}
	}

	// Wrong method routes to 405.
	resp, err := http.Get(srv.URL + "/v1/measure")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/measure = %d, want 405", resp.StatusCode)
	}

	resp, err = http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	ok := decodeBody[map[string]bool](t, resp)
	if !ok["ok"] {
		t.Error("healthz not ok")
	}

	resp, err = http.Get(srv.URL + "/v1/catalog")
	if err != nil {
		t.Fatal(err)
	}
	cat := decodeBody[Catalog](t, resp)
	if len(cat.Models) == 0 || len(cat.GPUs) != 3 || len(cat.Regions) != 6 || len(cat.Tiers) != 2 {
		t.Errorf("catalog = %+v", cat)
	}
}

// TestHTTPRealMeasureSession drives one real (tiny) managed session
// end to end through the HTTP API — no fakes — so the daemon's wiring
// to the simulation substrate stays honest.
func TestHTTPRealMeasureSession(t *testing.T) {
	if testing.Short() {
		t.Skip("real simulation in -short mode")
	}
	p := New(Config{Workers: 2, QueueDepth: 4, CacheSize: 16})
	defer p.Close()
	srv := httptest.NewServer(p.Handler())
	defer srv.Close()

	body := `{"model":"ResNet-15","gpu":"K80","region":"us-central1","tier":"on-demand","workers":1,"target_steps":600,"seed":11}`
	resp := postJSON(t, srv.URL+"/v1/measure", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("measure status = %d", resp.StatusCode)
	}
	out := decodeBody[Outcome](t, resp)
	if out.TrainingHours <= 0 || out.CostUSD <= 0 || out.SteadyStepsPerSec <= 0 {
		t.Fatalf("implausible real measurement: %+v", out)
	}
	// Determinism: the same query must return the identical outcome
	// (from cache, but equal even if recomputed).
	again := decodeBody[Outcome](t, postJSON(t, srv.URL+"/v1/measure", body))
	if again.TrainingHours != out.TrainingHours || again.CostUSD != out.CostUSD {
		t.Fatalf("repeated real measurement differs: %+v vs %+v", out, again)
	}
}

// TestHTTPRealEstimate exercises the analytic Eq. 4/5 path with the
// real fitted models and a lazily-measured revocation CDF.
func TestHTTPRealEstimate(t *testing.T) {
	if testing.Short() {
		t.Skip("model fitting in -short mode")
	}
	p := New(Config{Workers: 2, QueueDepth: 4, CacheSize: 16})
	defer p.Close()
	srv := httptest.NewServer(p.Handler())
	defer srv.Close()

	body := `{"model":"ResNet-32","gpu":"P100","region":"us-central1","tier":"transient","workers":4,"target_steps":64000,"checkpoint_interval":4000}`
	resp := postJSON(t, srv.URL+"/v1/estimate", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("estimate status = %d", resp.StatusCode)
	}
	est := decodeBody[EstimateResult](t, resp)
	if est.TotalHours <= 0 || est.CostUSD <= 0 || est.ClusterStepsPerSec <= 0 {
		t.Fatalf("implausible estimate: %+v", est)
	}
	if est.ExpectedRevocations < 0 {
		t.Fatalf("negative expected revocations: %+v", est)
	}
	// On-demand estimates skip the revocation term entirely.
	od := strings.Replace(body, "transient", "on-demand", 1)
	est2 := decodeBody[EstimateResult](t, postJSON(t, srv.URL+"/v1/estimate", od))
	if est2.ExpectedRevocations != 0 {
		t.Fatalf("on-demand estimate has revocations: %+v", est2)
	}
	if est2.CostUSD <= est.CostUSD {
		t.Fatalf("on-demand (%.2f) should cost more than transient (%.2f)", est2.CostUSD, est.CostUSD)
	}
}
