package planner

// Service-plane metrics: the planner daemon's cache, queue, pool, and
// request-latency series in Prometheus text form. Everything here is
// wall-clock and observational — func-metrics read the atomics the
// planner already maintains lazily at scrape time, so the simulation
// hot paths pay nothing for being observable, and no number in this
// file can reach a simulation result.

import "repro/internal/obs"

// Metrics returns the planner's metric registry, building it on first
// use. The registry is safe for concurrent scrapes and lives as long
// as the planner.
func (p *Planner) Metrics() *obs.Registry {
	p.metricsOnce.Do(func() {
		r := obs.NewRegistry()
		r.NewCounterFunc("pland_cache_hits_total",
			"Queries answered straight from the result cache.",
			func() float64 { return float64(p.hits.Load()) })
		r.NewCounterFunc("pland_cache_misses_total",
			"Simulations actually run (singleflight leaders).",
			func() float64 { return float64(p.misses.Load()) })
		r.NewCounterFunc("pland_cache_coalesced_total",
			"Queries that joined an identical in-flight simulation.",
			func() float64 { return float64(p.coalesced.Load()) })
		r.NewCounterFunc("pland_cache_evictions_total",
			"Cache entries displaced by capacity.",
			func() float64 { return float64(p.evictions.Load()) })
		r.NewGaugeFunc("pland_cache_entries",
			"Current result-cache population.",
			func() float64 { return float64(p.cache.Len()) })
		r.NewGaugeFunc("pland_sims_inflight",
			"Simulation units executing right now.",
			func() float64 { return float64(p.inflight.Load()) })
		r.NewCounterFunc("pland_queries_rejected_total",
			"Queries that returned without an answer because their measurement was interrupted.",
			func() float64 { return float64(p.rejections.Load()) })
		r.NewGaugeFunc("pland_pool_workers",
			"Shared simulation pool size.",
			func() float64 { return float64(p.pool.Stats().Workers) })
		r.NewGaugeFunc("pland_pool_queue_capacity",
			"Bounded admission queue capacity.",
			func() float64 { return float64(p.pool.Stats().QueueCapacity) })
		r.NewGaugeFunc("pland_pool_queue_depth",
			"Jobs waiting in the admission queue right now.",
			func() float64 { return float64(p.pool.Stats().QueueDepth) })
		r.NewCounterFunc("pland_pool_jobs_total",
			"Pool jobs completed.",
			func() float64 { return float64(p.pool.Stats().JobsRun) })
		r.NewCounterFunc("pland_pool_wait_seconds_total",
			"Total queue wait (accept to start) across completed pool jobs.",
			func() float64 { return p.pool.Stats().WaitSeconds })
		r.NewCounterFunc("pland_pool_busy_seconds_total",
			"Total execution wall time across completed pool jobs.",
			func() float64 { return p.pool.Stats().BusySeconds })
		p.httpLatency = r.NewHistogramVec("pland_http_request_seconds",
			"HTTP request latency by endpoint.",
			"endpoint", obs.DefaultLatencyBuckets)
		p.registry = r
	})
	return p.registry
}
