package planner

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/experiments"
	"repro/internal/fleet"
	"repro/internal/obs"
)

// TestMeasureTracedMatchesUntraced runs the real simulation both ways
// on a small scenario: the traced outcome must carry events and agree
// with the untraced outcome number for number — tracing may not
// perturb the simulation, and the traced unit derives the same seed.
func TestMeasureTracedMatchesUntraced(t *testing.T) {
	if testing.Short() {
		t.Skip("real simulation in -short mode")
	}
	p := New(Config{Workers: 2, QueueDepth: 4, CacheSize: 16})
	defer p.Close()

	q := ScenarioQuery{
		Model: "ResNet-15", GPU: "K80", Region: "us-central1", Tier: "on-demand",
		Workers: 1, TargetSteps: 300, Seed: 11,
	}
	plain, err := p.Measure(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	q.Trace = true
	traced, err := p.Measure(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if len(traced.Trace) == 0 {
		t.Fatal("traced outcome has no events")
	}
	if plain.Trace != nil {
		t.Fatal("untraced outcome has a trace")
	}
	if traced.TrainingHours != plain.TrainingHours ||
		traced.SteadyStepsPerSec != plain.SteadyStepsPerSec ||
		traced.CostUSD != plain.CostUSD ||
		traced.CheckpointCount != plain.CheckpointCount ||
		traced.Revocations != plain.Revocations {
		t.Fatalf("traced outcome diverged from untraced:\ntraced:   %+v\nuntraced: %+v", traced, plain)
	}
	// Traced and untraced results occupy distinct cache lines; a
	// repeat of each is a hit.
	if st := p.Stats(); st.CacheEntries != 2 || st.Misses != 2 {
		t.Fatalf("stats = %+v, want 2 entries and 2 misses", st)
	}
	again, err := p.Measure(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if !again.Cached || len(again.Trace) != len(traced.Trace) {
		t.Fatalf("repeated traced query not served from cache with its trace (cached=%v, %d events)", again.Cached, len(again.Trace))
	}
}

// fakeFleetTraced pairs fakeFleet with a canned event stream.
func fakeFleetTraced(runs *atomic.Int64) func(cfg fleet.Config, seed int64) (*fleet.Result, []obs.Event, error) {
	inner := fakeFleet(runs)
	return func(cfg fleet.Config, seed int64) (*fleet.Result, []obs.Event, error) {
		res, err := inner(cfg, seed)
		events := []obs.Event{
			{T: 0, Kind: "job-arrive", Scope: "job0"},
			{T: 5, Kind: "job-place", Scope: "job0"},
			{T: 90, Kind: "job-done", Scope: "job0"},
		}
		return res, events, err
	}
}

// TestHTTPFleetTraceLines checks the traced fleet stream shape: job
// lines, then one line per event, then the summary — and that an
// untraced query of the same config is cached independently.
func TestHTTPFleetTraceLines(t *testing.T) {
	p := New(Config{Workers: 2, QueueDepth: 4, CacheSize: 16})
	defer p.Close()
	var runs atomic.Int64
	p.runFleet = fakeFleet(&runs)
	p.runFleetTraced = fakeFleetTraced(&runs)
	srv := httptest.NewServer(p.Handler())
	defer srv.Close()

	body := `{"jobs":2,"rate_per_hour":2,"steps_per_worker":1000,"capacity":{"us-central1/K80":2},"seed":3,"trace":true}`
	resp := postJSON(t, srv.URL+"/v1/fleet", body)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fleet status = %d", resp.StatusCode)
	}
	var jobs, traces, summaries int
	var lastKind string
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var it FleetItem
		if err := json.Unmarshal(line, &it); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", line, err)
		}
		switch {
		case it.Job != nil:
			if lastKind != "" && lastKind != "job" {
				t.Fatalf("job line after a %s line", lastKind)
			}
			lastKind = "job"
			jobs++
		case it.Trace != nil:
			if lastKind != "job" && lastKind != "trace" {
				t.Fatalf("trace line after a %s line", lastKind)
			}
			lastKind = "trace"
			traces++
		case it.Summary != nil:
			lastKind = "summary"
			summaries++
		default:
			t.Fatalf("empty fleet item %q", line)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if jobs != 2 || traces != 3 || summaries != 1 {
		t.Fatalf("stream shape = %d jobs, %d traces, %d summaries; want 2/3/1", jobs, traces, summaries)
	}
	if n := runs.Load(); n != 1 {
		t.Fatalf("%d fleet simulations ran, want 1", n)
	}
}

// expositionLine matches the Prometheus text format 0.0.4 grammar the
// obs tests pin: HELP/TYPE comments or a sample line.
var expositionLine = regexp.MustCompile(`^(# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* .*|[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? ([-+]?[0-9]*\.?[0-9]+([eE][-+]?[0-9]+)?|[-+]?Inf|NaN))$`)

// TestHTTPMetricsAfterBurst is the acceptance criterion for the
// service plane: after a burst of /v1/measure traffic, GET /metrics
// returns well-formed Prometheus text with the cache, queue, latency,
// and pool-utilization series populated.
func TestHTTPMetricsAfterBurst(t *testing.T) {
	p := New(Config{Workers: 2, QueueDepth: 4, CacheSize: 16})
	defer p.Close()
	var sims atomic.Int64
	p.measure = fakeMeasure(&sims)
	srv := httptest.NewServer(p.Handler())
	defer srv.Close()

	q := `{"model":"ResNet-15","gpu":"K80","region":"us-central1","tier":"on-demand","workers":1,"target_steps":100,"seed":9}`
	for i := 0; i < 3; i++ {
		resp := postJSON(t, srv.URL+"/v1/measure", q)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("measure status = %d", resp.StatusCode)
		}
	}

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Content-Type = %q, want text/plain", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if !expositionLine.MatchString(line) {
			t.Fatalf("malformed exposition line %q", line)
		}
	}
	for _, want := range []string{
		"pland_cache_hits_total 2",
		"pland_cache_misses_total 1",
		"pland_cache_entries 1",
		"pland_pool_queue_depth ",
		"pland_pool_jobs_total 1",
		"pland_sims_inflight 0",
		`pland_http_request_seconds_bucket{endpoint="measure",le="+Inf"} 3`,
		"pland_http_request_seconds_count{endpoint=\"measure\"} 3",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics output missing %q\n%s", want, text)
		}
	}
}

// TestStatsCarriesPoolUtilization pins the enriched /v1/stats fields:
// pool shape from the config and job accounting after one measurement.
func TestStatsCarriesPoolUtilization(t *testing.T) {
	p := New(Config{Workers: 3, QueueDepth: 5, CacheSize: 16})
	defer p.Close()
	var sims atomic.Int64
	p.measure = fakeMeasure(&sims)

	if _, err := p.Measure(context.Background(), testQuery(4)); err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	if st.PoolWorkers != 3 || st.QueueCapacity != 5 {
		t.Fatalf("pool shape = %d workers / %d queue, want 3/5", st.PoolWorkers, st.QueueCapacity)
	}
	if st.PoolJobsRun != 1 || st.InFlight != 0 || st.Rejections != 0 {
		t.Fatalf("stats = %+v, want 1 job run, nothing in flight, no rejections", st)
	}
	if st.PoolBusySeconds < 0 || st.PoolWaitSeconds < 0 {
		t.Fatalf("negative pool seconds: %+v", st)
	}
}

// TestRejectionCounted pins the rejection counter: a query whose
// context is canceled before its simulation can run counts as one
// rejection.
func TestRejectionCounted(t *testing.T) {
	p := New(Config{Workers: 1, QueueDepth: 1, CacheSize: 16})
	defer p.Close()
	p.measure = func(sc experiments.Scenario, steps, ic, seed int64) (experiments.ScenarioOutcome, error) {
		return experiments.ScenarioOutcome{Scenario: sc}, nil
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := p.Measure(ctx, testQuery(1)); err == nil {
		t.Fatal("canceled query succeeded")
	}
	if got := p.Stats().Rejections; got != 1 {
		t.Fatalf("rejections = %d, want 1", got)
	}
}
