// Package planner turns the repo's batch measurement campaigns into
// an interactive what-if service: the decision-support payoff of the
// paper (pick cluster size, GPU type, region, and tier under
// revocation risk to hit a cost/time target, Eqs. 4–5 and Tables
// V–VII) answered as queries against a long-running daemon rather
// than re-run scripts.
//
// The planner adds what the batch path lacks:
//
//   - a seed-keyed LRU result cache: a simulated session is a pure
//     function of (canonical scenario key, campaign seed), so a
//     repeated query is a lookup, never a second simulation;
//   - singleflight coalescing: concurrent identical queries share one
//     simulation run;
//   - a shared campaign.Pool with a bounded admission queue, so heavy
//     query traffic backpressures instead of forking unbounded work;
//   - per-request contexts: a disconnected or canceled client stops
//     dispatching its remaining scenarios.
//
// cmd/pland serves this over HTTP/JSON; examples/costplanner is a
// thin client of the same API.
package planner

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/campaign"
	"repro/internal/cloud"
	"repro/internal/experiments"
	"repro/internal/fleet"
	"repro/internal/manager"
	"repro/internal/model"
	"repro/internal/obs"
)

// Per-query bounds: a single request may not fan out wider than the
// service can hold in memory, however the grid was phrased. Both are
// generous multiples of anything the paper's configuration space
// needs.
const (
	// maxWorkersPerScenario caps the cluster size of one scenario.
	maxWorkersPerScenario = 1024
	// maxGridCells caps the expanded scenario count of one sweep or
	// cheapest query.
	maxGridCells = 4096
)

// Config sizes the planner.
type Config struct {
	// Workers is the shared simulation pool size (≤ 0: GOMAXPROCS).
	Workers int
	// QueueDepth bounds the admission queue feeding the pool; a full
	// queue blocks new dispatch until a slot frees, providing
	// backpressure across all concurrent queries (≤ 0: 64).
	QueueDepth int
	// CacheSize is the LRU capacity in scenario outcomes (≤ 0: 4096).
	CacheSize int
}

// Stats is a point-in-time snapshot of the planner's cache,
// coalescing, and pool-utilization counters.
type Stats struct {
	// Hits counts queries answered straight from the cache.
	Hits int64 `json:"hits"`
	// Misses counts simulations actually run (singleflight leaders).
	Misses int64 `json:"misses"`
	// Coalesced counts queries that piggybacked on an identical
	// in-flight simulation instead of running their own.
	Coalesced int64 `json:"coalesced"`
	// Evictions counts cache entries displaced by capacity.
	Evictions int64 `json:"evictions"`
	// CacheEntries is the current cache population.
	CacheEntries int `json:"cache_entries"`
	// InFlight is how many simulation units are executing right now.
	InFlight int64 `json:"in_flight"`
	// Rejections counts queries that returned without an answer
	// because their measurement was interrupted (canceled client,
	// pool shutdown) rather than failing on its own terms.
	Rejections int64 `json:"rejections"`
	// PoolWorkers is the shared pool's fixed worker count;
	// QueueCapacity its admission queue size; QueueDepth the jobs
	// waiting in that queue right now.
	PoolWorkers   int `json:"pool_workers"`
	QueueCapacity int `json:"queue_capacity"`
	QueueDepth    int `json:"queue_depth"`
	// PoolJobsRun counts completed pool jobs; PoolWaitSeconds and
	// PoolBusySeconds total their queue wait and execution wall time.
	PoolJobsRun     int64   `json:"pool_jobs_run"`
	PoolWaitSeconds float64 `json:"pool_wait_seconds"`
	PoolBusySeconds float64 `json:"pool_busy_seconds"`
}

// Planner answers scenario queries on a shared simulation pool.
type Planner struct {
	pool    *campaign.Pool
	cache   *lru
	flights flightGroup

	hits, misses, coalesced, evictions atomic.Int64
	inflight, rejections               atomic.Int64

	// measure runs one scenario simulation; swapped out by tests to
	// count and stub runs.
	measure func(sc experiments.Scenario, steps, ic, seed int64) (experiments.ScenarioOutcome, error)
	// runFleet runs one fleet simulation; swapped out by tests, like
	// measure.
	runFleet func(cfg fleet.Config, seed int64) (*fleet.Result, error)
	// measureTraced and runFleetTraced are the trace-opt-in variants:
	// the same simulations run with a sim-plane recorder attached,
	// returning the events alongside the result. Swapped out by tests,
	// like measure and runFleet.
	measureTraced  func(sc experiments.Scenario, steps, ic, seed int64) (experiments.ScenarioOutcome, []obs.Event, error)
	runFleetTraced func(cfg fleet.Config, seed int64) (*fleet.Result, []obs.Event, error)

	// Service-plane metrics, built lazily by Metrics(): func-metrics
	// over the atomics above plus the per-endpoint latency histograms
	// the HTTP layer feeds.
	metricsOnce sync.Once
	registry    *obs.Registry
	httpLatency *obs.HistogramVec

	analytic analytic
}

// New starts a planner with its worker pool. Close releases the pool.
func New(cfg Config) *Planner {
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.CacheSize <= 0 {
		cfg.CacheSize = 4096
	}
	return &Planner{
		pool:  campaign.NewPool(cfg.Workers, cfg.QueueDepth),
		cache: newLRU(cfg.CacheSize),
		measure: func(sc experiments.Scenario, steps, ic, seed int64) (experiments.ScenarioOutcome, error) {
			return experiments.MeasureScenario(sc, steps, ic, experiments.SessionOptions{}, seed)
		},
		runFleet: fleet.Run,
		measureTraced: func(sc experiments.Scenario, steps, ic, seed int64) (experiments.ScenarioOutcome, []obs.Event, error) {
			rec := obs.NewRecorder()
			out, err := experiments.MeasureScenario(sc, steps, ic, experiments.SessionOptions{Trace: rec}, seed)
			return out, rec.Events(), err
		},
		runFleetTraced: func(cfg fleet.Config, seed int64) (*fleet.Result, []obs.Event, error) {
			rec := obs.NewRecorder()
			res, err := fleet.RunTraced(cfg, seed, rec)
			return res, rec.Events(), err
		},
	}
}

// Close drains and stops the shared pool.
func (p *Planner) Close() { p.pool.Close() }

// Stats snapshots the counters.
func (p *Planner) Stats() Stats {
	ps := p.pool.Stats()
	return Stats{
		Hits:            p.hits.Load(),
		Misses:          p.misses.Load(),
		Coalesced:       p.coalesced.Load(),
		Evictions:       p.evictions.Load(),
		CacheEntries:    p.cache.Len(),
		InFlight:        p.inflight.Load(),
		Rejections:      p.rejections.Load(),
		PoolWorkers:     ps.Workers,
		QueueCapacity:   ps.QueueCapacity,
		QueueDepth:      ps.QueueDepth,
		PoolJobsRun:     ps.JobsRun,
		PoolWaitSeconds: ps.WaitSeconds,
		PoolBusySeconds: ps.BusySeconds,
	}
}

// cacheKey is the planner's full result identity: canonical scenario
// key (grid-shape independent) plus the campaign seed. The simulation
// seed handed to the kernel is campaign.Derive(seed, 0, scenario key),
// a pure function of this same identity — so equal keys are guaranteed
// equal outcomes and the cache can never serve a wrong answer.
func cacheKey(sc experiments.Scenario, steps, ic, seed int64) string {
	return fmt.Sprintf("%s|seed=%d", experiments.ScenarioKey(sc, steps, ic), seed)
}

// interruptedError reports errors meaning the measurement never ran
// (skipped, canceled, pool shut down) — as opposed to a scenario that
// ran and failed on its own terms (e.g. the week-of-virtual-time cap).
func interruptedError(err error) bool {
	return errors.Is(err, campaign.ErrSkipped) ||
		errors.Is(err, campaign.ErrPoolClosed) ||
		errors.Is(err, context.Canceled) ||
		errors.Is(err, context.DeadlineExceeded)
}

// measureCached is every measured query's path: cache, then
// singleflight, then one unit dispatched onto the shared pool.
func (p *Planner) measureCached(ctx context.Context, sc experiments.Scenario, steps, ic, seed int64) (out experiments.ScenarioOutcome, cached bool, err error) {
	key := cacheKey(sc, steps, ic, seed)
	v, cached, err := p.cached(ctx, key, func() (any, error) {
		return p.simulate(ctx, sc, steps, ic, seed)
	})
	if err != nil {
		return experiments.ScenarioOutcome{}, false, err
	}
	return v.(experiments.ScenarioOutcome), cached, nil
}

// cached is the shared cache → singleflight → run path behind every
// cacheable query family (single scenarios and fleet runs). run must
// produce a pure function of key; its result lands in the LRU.
func (p *Planner) cached(ctx context.Context, key string, run func() (any, error)) (out any, cached bool, err error) {
	for {
		if v, ok := p.cache.Get(key); ok {
			p.hits.Add(1)
			return v, true, nil
		}
		var leaderHit bool
		v, shared, err := p.flights.Do(ctx, key, func() (any, error) {
			// Re-check under flight leadership: a previous leader may
			// have filled the cache between our miss and our Do —
			// becoming the new leader then must not re-simulate a
			// cached key.
			if v, ok := p.cache.Get(key); ok {
				p.hits.Add(1)
				leaderHit = true
				return v, nil
			}
			p.misses.Add(1)
			out, err := run()
			if err == nil {
				if p.cache.Add(key, out) {
					p.evictions.Add(1)
				}
			}
			return out, err
		})
		if shared {
			p.coalesced.Add(1)
			// The leader runs under its own request context; if it was
			// canceled, its death must not poison this still-healthy
			// follower — retry, becoming (or joining) a fresh leader.
			if err != nil && ctx.Err() == nil &&
				interruptedError(err) && !errors.Is(err, campaign.ErrPoolClosed) {
				continue
			}
		}
		// A query leaving without an answer because its measurement
		// never completed (canceled client, shutdown) is a rejection;
		// a scenario that ran and failed on its own terms is not.
		if err != nil && interruptedError(err) {
			p.rejections.Add(1)
		}
		return v, leaderHit, err
	}
}

// simulate runs one scenario as a single-unit campaign plan on the
// shared pool, inheriting the engine's seed derivation and panic
// containment.
func (p *Planner) simulate(ctx context.Context, sc experiments.Scenario, steps, ic, seed int64) (experiments.ScenarioOutcome, error) {
	plan := &campaign.Plan{
		Seed: seed,
		Units: []campaign.Unit{{
			Key: experiments.ScenarioKey(sc, steps, ic),
			Run: func(unitSeed int64) (any, error) {
				p.inflight.Add(1)
				defer p.inflight.Add(-1)
				return p.measure(sc, steps, ic, unitSeed)
			},
		}},
	}
	v, err := campaign.Engine{Pool: p.pool}.RunContext(ctx, plan)
	if err != nil {
		return experiments.ScenarioOutcome{}, err
	}
	return v.([]any)[0].(experiments.ScenarioOutcome), nil
}

// tracedOutcome is what the cache stores for a traced scenario query:
// the outcome plus its sim-plane event trace.
type tracedOutcome struct {
	out    experiments.ScenarioOutcome
	events []obs.Event
}

// simulateTraced is simulate with the sim-plane recorder attached. The
// unit Key is identical to simulate's, so the derived simulation seed
// — and therefore the outcome — is exactly the untraced query's;
// only the cache key (the "|trace=1" suffix) differs.
func (p *Planner) simulateTraced(ctx context.Context, sc experiments.Scenario, steps, ic, seed int64) (tracedOutcome, error) {
	plan := &campaign.Plan{
		Seed: seed,
		Units: []campaign.Unit{{
			Key: experiments.ScenarioKey(sc, steps, ic),
			Run: func(unitSeed int64) (any, error) {
				p.inflight.Add(1)
				defer p.inflight.Add(-1)
				out, events, err := p.measureTraced(sc, steps, ic, unitSeed)
				if err != nil {
					return nil, err
				}
				return tracedOutcome{out: out, events: events}, nil
			},
		}},
	}
	v, err := campaign.Engine{Pool: p.pool}.RunContext(ctx, plan)
	if err != nil {
		return tracedOutcome{}, err
	}
	return v.([]any)[0].(tracedOutcome), nil
}

// Outcome is the wire form of one measured scenario.
type Outcome struct {
	Scenario          string  `json:"scenario"`
	Key               string  `json:"key"`
	Seed              int64   `json:"seed"`
	TrainingHours     float64 `json:"training_hours"`
	SteadyStepsPerSec float64 `json:"steady_steps_per_sec"`
	CheckpointCount   int     `json:"checkpoint_count"`
	CheckpointSeconds float64 `json:"checkpoint_seconds"`
	CostUSD           float64 `json:"cost_usd"`
	Revocations       int     `json:"revocations"`
	Replacements      int     `json:"replacements"`
	CostPer1kSteps    float64 `json:"cost_per_1k_steps"`
	Cached            bool    `json:"cached"`
	// Trace is the session's sim-plane event trace, present only when
	// the query opted in. Sim-time-stamped and a pure function of
	// (scenario key, seed): the traced outcome's numbers are identical
	// to the untraced query's.
	Trace []obs.Event `json:"trace,omitempty"`
}

func wireOutcome(o experiments.ScenarioOutcome, steps, ic, seed int64, cached bool) Outcome {
	w := Outcome{
		Scenario:          o.Scenario.Label(),
		Key:               experiments.ScenarioKey(o.Scenario, steps, ic),
		Seed:              seed,
		TrainingHours:     o.TrainingSeconds / 3600,
		SteadyStepsPerSec: o.SteadySpeed,
		CheckpointCount:   o.CheckpointCount,
		CheckpointSeconds: o.CheckpointSeconds,
		CostUSD:           o.CostUSD,
		Revocations:       o.Revocations,
		Replacements:      o.Replacements,
		Cached:            cached,
	}
	if steps > 0 {
		w.CostPer1kSteps = o.CostUSD / (float64(steps) / 1000)
	}
	return w
}

// ScenarioQuery names one scenario over the wire.
type ScenarioQuery struct {
	Model   string `json:"model"`
	GPU     string `json:"gpu"`
	Region  string `json:"region"`
	Tier    string `json:"tier"`
	Workers int    `json:"workers"`
	// Cluster names a (possibly mixed-GPU) worker shape in the
	// "2xK80+1xV100" notation, replacing the gpu/workers pair — give
	// one phrasing or the other, not both. A homogeneous cluster
	// canonicalizes to the same scenario key as the equivalent
	// gpu/workers query, so both phrasings share one cache line.
	Cluster string `json:"cluster,omitempty"`
	// Elastic names a cluster membership policy from the catalog's
	// elastic_policies list. Empty (or "static") holds the launch
	// shape and only replaces revocations.
	Elastic string `json:"elastic,omitempty"`
	// RevModel selects the revocation/lifetime regime the simulated
	// cloud applies to transient servers — a name from the catalog's
	// lifetime_models list (builtins plus any -trace registrations).
	// Empty means the provider's default regime (Table V for gce).
	RevModel string `json:"rev_model,omitempty"`
	// Provider selects the provider world (catalog, price book,
	// startup, climate) — a name from the catalog's providers list.
	// Empty means the default (gce).
	Provider string `json:"provider,omitempty"`
	// TargetSteps is the total training target Nw (required).
	TargetSteps int64 `json:"target_steps"`
	// CheckpointInterval is Ic in steps (0: 1000).
	CheckpointInterval int64 `json:"checkpoint_interval"`
	Seed               int64 `json:"seed"`
	// Trace opts in to the sim-plane event trace: the outcome gains a
	// trace field with the session's event timeline. Tracing never
	// perturbs the simulation, so traced and untraced outcomes are
	// numerically identical; traced results are cached separately.
	Trace bool `json:"trace,omitempty"`
}

func (q ScenarioQuery) scenario() (experiments.Scenario, int64, int64, error) {
	m, err := model.ByName(q.Model)
	if err != nil {
		return experiments.Scenario{}, 0, 0, err
	}
	var cluster model.ClusterSpec
	var g model.GPU
	workers := q.Workers
	if q.Cluster != "" {
		if q.GPU != "" || q.Workers != 0 {
			return experiments.Scenario{}, 0, 0, fmt.Errorf("planner: cluster replaces gpu/workers; give one phrasing, not both")
		}
		cluster, err = model.ParseClusterSpec(q.Cluster)
		if err != nil {
			return experiments.Scenario{}, 0, 0, err
		}
		g = cluster[0].GPU
		workers = cluster.TotalWorkers()
	} else {
		g, err = model.ParseGPU(q.GPU)
		if err != nil {
			return experiments.Scenario{}, 0, 0, err
		}
	}
	r, err := cloud.ParseRegion(q.Region)
	if err != nil {
		return experiments.Scenario{}, 0, 0, err
	}
	tier, err := cloud.ParseTier(q.Tier)
	if err != nil {
		return experiments.Scenario{}, 0, 0, err
	}
	spec, err := cloud.LookupProvider(q.Provider)
	if err != nil {
		return experiments.Scenario{}, 0, 0, err
	}
	offered := cluster
	if offered == nil {
		offered = model.ClusterSpec{{GPU: g, Count: 1}}
	}
	for _, grp := range offered {
		if !spec.Offers(r, grp.GPU) {
			return experiments.Scenario{}, 0, 0, fmt.Errorf("planner: %s is not offered in %s by provider %s", grp.GPU, r, spec.Name)
		}
	}
	if q.RevModel != "" {
		if _, err := cloud.LookupLifetimeModel(q.RevModel); err != nil {
			return experiments.Scenario{}, 0, 0, err
		}
	}
	if _, err := manager.ElasticPolicyByName(q.Elastic); err != nil {
		return experiments.Scenario{}, 0, 0, err
	}
	if workers <= 0 {
		return experiments.Scenario{}, 0, 0, fmt.Errorf("planner: workers must be positive")
	}
	if workers > maxWorkersPerScenario {
		return experiments.Scenario{}, 0, 0, fmt.Errorf("planner: workers %d exceeds the per-scenario limit of %d", workers, maxWorkersPerScenario)
	}
	if q.TargetSteps <= 0 {
		return experiments.Scenario{}, 0, 0, fmt.Errorf("planner: target_steps must be positive")
	}
	ic, err := resolveCheckpointInterval(q.CheckpointInterval)
	if err != nil {
		return experiments.Scenario{}, 0, 0, err
	}
	sc := experiments.Scenario{Model: m, GPU: g, Region: r, Tier: tier, RevModel: q.RevModel, Provider: q.Provider, Workers: workers, Cluster: cluster, Elastic: q.Elastic}
	return sc, q.TargetSteps, ic, nil
}

// resolveCheckpointInterval applies the shared Ic contract: 0 means
// the default of 1000 steps, negative is a client error.
func resolveCheckpointInterval(ic int64) (int64, error) {
	switch {
	case ic < 0:
		return 0, fmt.Errorf("planner: checkpoint_interval must not be negative")
	case ic == 0:
		return 1000, nil
	default:
		return ic, nil
	}
}

// Measure answers a single-scenario query with a full measured session
// (cached, coalesced). A traced query runs the identical simulation
// with the recorder attached and caches under its own key.
func (p *Planner) Measure(ctx context.Context, q ScenarioQuery) (Outcome, error) {
	sc, steps, ic, err := q.scenario()
	if err != nil {
		return Outcome{}, &BadRequestError{err}
	}
	if q.Trace {
		key := cacheKey(sc, steps, ic, q.Seed) + "|trace=1"
		v, cached, err := p.cached(ctx, key, func() (any, error) {
			return p.simulateTraced(ctx, sc, steps, ic, q.Seed)
		})
		if err != nil {
			return Outcome{}, err
		}
		to := v.(tracedOutcome)
		w := wireOutcome(to.out, steps, ic, q.Seed, cached)
		w.Trace = to.events
		return w, nil
	}
	out, cached, err := p.measureCached(ctx, sc, steps, ic, q.Seed)
	if err != nil {
		return Outcome{}, err
	}
	return wireOutcome(out, steps, ic, q.Seed, cached), nil
}

// BadRequestError marks a query the client phrased wrong, as opposed
// to a simulation failure; the HTTP layer maps it to 400.
type BadRequestError struct{ Err error }

func (e *BadRequestError) Error() string { return e.Err.Error() }
func (e *BadRequestError) Unwrap() error { return e.Err }

// GridQuery selects a scenario grid; an empty axis falls back to the
// corresponding DefaultSweep axis, so `{}` is the default sweep.
// RevModels is the one exception: empty means the default lifetime
// model only, not a sweep over every registered model.
type GridQuery struct {
	Model     string   `json:"model,omitempty"`
	Sizes     []int    `json:"sizes,omitempty"`
	GPUs      []string `json:"gpus,omitempty"`
	Regions   []string `json:"regions,omitempty"`
	Tiers     []string `json:"tiers,omitempty"`
	RevModels []string `json:"rev_models,omitempty"`
	// Providers lists provider worlds to sweep; empty means the
	// default (gce) only, like RevModels.
	Providers []string `json:"providers,omitempty"`
}

func (q GridQuery) spec() (experiments.SweepSpec, error) {
	spec := experiments.DefaultSweep()
	if q.Model != "" {
		m, err := model.ByName(q.Model)
		if err != nil {
			return experiments.SweepSpec{}, err
		}
		spec.Model = m
	}
	if len(q.Sizes) > 0 {
		for _, n := range q.Sizes {
			if n <= 0 {
				return experiments.SweepSpec{}, fmt.Errorf("planner: cluster size %d must be positive", n)
			}
			if n > maxWorkersPerScenario {
				return experiments.SweepSpec{}, fmt.Errorf("planner: cluster size %d exceeds the per-scenario limit of %d", n, maxWorkersPerScenario)
			}
		}
		spec.Sizes = q.Sizes
	}
	if len(q.GPUs) > 0 {
		spec.GPUs = spec.GPUs[:0]
		for _, name := range q.GPUs {
			g, err := model.ParseGPU(name)
			if err != nil {
				return experiments.SweepSpec{}, err
			}
			spec.GPUs = append(spec.GPUs, g)
		}
	}
	if len(q.Regions) > 0 {
		spec.Regions = spec.Regions[:0]
		for _, name := range q.Regions {
			r, err := cloud.ParseRegion(name)
			if err != nil {
				return experiments.SweepSpec{}, err
			}
			spec.Regions = append(spec.Regions, r)
		}
	}
	if len(q.Tiers) > 0 {
		spec.Tiers = spec.Tiers[:0]
		for _, name := range q.Tiers {
			tier, err := cloud.ParseTier(name)
			if err != nil {
				return experiments.SweepSpec{}, err
			}
			spec.Tiers = append(spec.Tiers, tier)
		}
	}
	if len(q.RevModels) > 0 {
		for _, name := range q.RevModels {
			if _, err := cloud.LookupLifetimeModel(name); err != nil {
				return experiments.SweepSpec{}, err
			}
		}
		spec.RevModels = q.RevModels
	}
	if len(q.Providers) > 0 {
		for _, name := range q.Providers {
			if _, err := cloud.LookupProvider(name); err != nil {
				return experiments.SweepSpec{}, err
			}
		}
		spec.Providers = q.Providers
	}
	return spec, nil
}

// SweepQuery declares an arbitrary scenario grid to measure.
type SweepQuery struct {
	GridQuery
	// StepsPerWorker scales the target with cluster size, like the
	// batch sweep experiment (0: DefaultSweep's value).
	StepsPerWorker     int64 `json:"steps_per_worker,omitempty"`
	CheckpointInterval int64 `json:"checkpoint_interval,omitempty"`
	Seed               int64 `json:"seed"`
}

// Spec validates the query into a concrete sweep grid.
func (q SweepQuery) Spec() (experiments.SweepSpec, error) {
	spec, err := q.GridQuery.spec()
	if err != nil {
		return experiments.SweepSpec{}, err
	}
	if err := checkGridSize(len(spec.Scenarios())); err != nil {
		return experiments.SweepSpec{}, err
	}
	if q.StepsPerWorker > 0 {
		spec.StepsPerWorker = q.StepsPerWorker
	}
	if q.CheckpointInterval > 0 {
		spec.CheckpointInterval = q.CheckpointInterval
	}
	return spec, nil
}

// checkGridSize rejects grids a client phrased wrong: empty ones
// (every cell was an unoffered region/GPU combination — a 200 with
// zero results would be indistinguishable from success) and ones
// wider than the per-query bound.
func checkGridSize(n int) error {
	switch {
	case n == 0:
		return fmt.Errorf("planner: grid expands to no offered scenarios (check region/GPU availability via /v1/catalog)")
	case n > maxGridCells:
		return fmt.Errorf("planner: grid expands to %d scenarios, limit is %d", n, maxGridCells)
	}
	return nil
}

// SweepItem is one NDJSON line of a streamed sweep: the scenario's
// position in the grid plus its outcome or error.
type SweepItem struct {
	Index   int      `json:"index"`
	Total   int      `json:"total"`
	Outcome *Outcome `json:"outcome,omitempty"`
	Err     string   `json:"error,omitempty"`
}

// gridResult is one resolved cell handed to a measureGrid visitor.
type gridResult struct {
	out    experiments.ScenarioOutcome
	cached bool
	err    error
}

// measureGrid is the fan-out shared by Sweep and Cheapest: every
// scenario is dispatched onto the shared pool at once (cache and
// singleflight apply per cell), and visit sees cells incrementally in
// grid order — each as soon as it and every earlier cell have
// resolved, so cached cells surface immediately. A visit error or a
// canceled ctx returns early; the stragglers are canceled and waited
// out so no dispatch goroutine outlives the request.
func (p *Planner) measureGrid(ctx context.Context, scenarios []experiments.Scenario, stepsFor func(experiments.Scenario) int64, ic, seed int64, visit func(i int, sc experiments.Scenario, r gridResult) error) error {
	ctx, cancel := context.WithCancel(ctx)
	var wg sync.WaitGroup
	defer wg.Wait() // defers run LIFO: cancel first, then drain
	defer cancel()

	results := make([]chan gridResult, len(scenarios))
	for i := range results {
		results[i] = make(chan gridResult, 1)
	}
	for i, sc := range scenarios {
		i, sc := i, sc
		wg.Add(1)
		go func() {
			defer wg.Done()
			out, cached, err := p.measureCached(ctx, sc, stepsFor(sc), ic, seed)
			results[i] <- gridResult{out, cached, err}
		}()
	}
	for i, sc := range scenarios {
		if ctx.Err() != nil {
			return context.Cause(ctx)
		}
		var r gridResult
		select {
		case r = <-results[i]:
		case <-ctx.Done():
			return context.Cause(ctx)
		}
		if err := visit(i, sc, r); err != nil {
			return err
		}
	}
	return nil
}

// Sweep measures every cell of the grid and emits outcomes
// incrementally in grid order. A scenario that fails becomes an item
// with Err set; the sweep continues. Sweep returns early if ctx is
// canceled or emit returns an error (a client that went away),
// canceling its undispatched scenarios.
func (p *Planner) Sweep(ctx context.Context, spec experiments.SweepSpec, seed int64, emit func(SweepItem) error) error {
	scenarios := spec.Scenarios()
	stepsFor := func(sc experiments.Scenario) int64 { return spec.StepsPerWorker * int64(sc.Workers) }
	return p.measureGrid(ctx, scenarios, stepsFor, spec.CheckpointInterval, seed,
		func(i int, sc experiments.Scenario, r gridResult) error {
			item := SweepItem{Index: i, Total: len(scenarios)}
			if r.err != nil {
				item.Err = r.err.Error()
			} else {
				o := wireOutcome(r.out, stepsFor(sc), spec.CheckpointInterval, seed, r.cached)
				item.Outcome = &o
			}
			return emit(item)
		})
}

// CheapestQuery asks the headline decision question: the cheapest
// configuration that trains the model for TargetSteps total steps
// within DeadlineHours. Unlike a sweep, every candidate runs the same
// total workload so costs are directly comparable.
type CheapestQuery struct {
	GridQuery
	// TargetSteps is the total training target Nw (required).
	TargetSteps int64 `json:"target_steps"`
	// CheckpointInterval is Ic in steps (0: 1000).
	CheckpointInterval int64 `json:"checkpoint_interval,omitempty"`
	// DeadlineHours filters candidates by measured training time;
	// ≤ 0 means no deadline.
	DeadlineHours float64 `json:"deadline_hours,omitempty"`
	Seed          int64   `json:"seed"`
}

// CheapestResult reports the winner and how the field looked.
type CheapestResult struct {
	Considered    int      `json:"considered"`
	Feasible      int      `json:"feasible"`
	Failed        int      `json:"failed"`
	DeadlineHours float64  `json:"deadline_hours,omitempty"`
	Best          *Outcome `json:"best,omitempty"`
}

// Cheapest measures every candidate in the grid (cached, coalesced,
// concurrent) and returns the cheapest one that makes the deadline.
// Ties break toward earlier grid order, so the answer is deterministic.
func (p *Planner) Cheapest(ctx context.Context, q CheapestQuery) (CheapestResult, error) {
	spec, err := q.GridQuery.spec()
	if err != nil {
		return CheapestResult{}, &BadRequestError{err}
	}
	if q.TargetSteps <= 0 {
		return CheapestResult{}, &BadRequestError{fmt.Errorf("planner: target_steps must be positive")}
	}
	ic, err := resolveCheckpointInterval(q.CheckpointInterval)
	if err != nil {
		return CheapestResult{}, &BadRequestError{err}
	}
	scenarios := spec.Scenarios()
	if err := checkGridSize(len(scenarios)); err != nil {
		return CheapestResult{}, &BadRequestError{err}
	}
	result := CheapestResult{Considered: len(scenarios), DeadlineHours: q.DeadlineHours}

	var best *Outcome
	err = p.measureGrid(ctx, scenarios, func(experiments.Scenario) int64 { return q.TargetSteps }, ic, q.Seed,
		func(i int, sc experiments.Scenario, r gridResult) error {
			if r.err != nil {
				// A candidate that ran and could not finish (the week-
				// of-virtual-time cap) is infeasible; a measurement
				// that never happened (cancellation, shutdown) must
				// fail the query rather than silently skew the answer.
				if interruptedError(r.err) {
					return r.err
				}
				result.Failed++
				return nil
			}
			if q.DeadlineHours > 0 && r.out.TrainingSeconds/3600 > q.DeadlineHours {
				return nil
			}
			result.Feasible++
			if best == nil || r.out.CostUSD < best.CostUSD {
				o := wireOutcome(r.out, q.TargetSteps, ic, q.Seed, r.cached)
				best = &o
			}
			return nil
		})
	if err != nil {
		return CheapestResult{}, err
	}
	result.Best = best
	return result, nil
}
