package planner

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/campaign"
	"repro/internal/cloud"
	"repro/internal/experiments"
	"repro/internal/model"
)

// fakeMeasure replaces the real simulation with a deterministic pure
// function of the scenario, counting invocations. It is the planner
// tests' probe for "how many simulations actually ran".
func fakeMeasure(sims *atomic.Int64) func(sc experiments.Scenario, steps, ic, seed int64) (experiments.ScenarioOutcome, error) {
	return func(sc experiments.Scenario, steps, ic, seed int64) (experiments.ScenarioOutcome, error) {
		sims.Add(1)
		return experiments.ScenarioOutcome{
			Scenario:        sc,
			TrainingSeconds: 36000 / float64(sc.Workers),
			SteadySpeed:     float64(sc.Workers),
			CostUSD:         100 * float64(sc.Workers),
		}, nil
	}
}

func testQuery(seed int64) ScenarioQuery {
	return ScenarioQuery{
		Model: "ResNet-15", GPU: "K80", Region: "us-central1", Tier: "on-demand",
		Workers: 1, TargetSteps: 100, Seed: seed,
	}
}

// TestConcurrentIdenticalQueriesRunOneSimulation is the singleflight
// guarantee: sixteen identical queries in flight at once must cost
// exactly one simulation, with the other fifteen coalesced.
func TestConcurrentIdenticalQueriesRunOneSimulation(t *testing.T) {
	p := New(Config{Workers: 2, QueueDepth: 4, CacheSize: 16})
	defer p.Close()
	var sims atomic.Int64
	release := make(chan struct{})
	inner := fakeMeasure(&sims)
	p.measure = func(sc experiments.Scenario, steps, ic, seed int64) (experiments.ScenarioOutcome, error) {
		<-release
		return inner(sc, steps, ic, seed)
	}

	const callers = 16
	q := testQuery(7)
	sc, steps, ic, err := q.scenario()
	if err != nil {
		t.Fatal(err)
	}
	key := cacheKey(sc, steps, ic, q.Seed)

	var wg sync.WaitGroup
	outcomes := make([]Outcome, callers)
	errs := make([]error, callers)
	for c := 0; c < callers; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			outcomes[c], errs[c] = p.Measure(context.Background(), q)
		}()
	}
	// Rendezvous: wait until all fifteen followers are parked behind
	// the leader, so none of them can be served by the cache instead.
	deadline := time.Now().Add(10 * time.Second)
	for p.flights.waiting(key) != callers-1 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d followers parked, want %d", p.flights.waiting(key), callers-1)
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	for c := 0; c < callers; c++ {
		if errs[c] != nil {
			t.Fatalf("caller %d: %v", c, errs[c])
		}
		if outcomes[c].CostUSD != outcomes[0].CostUSD || outcomes[c].Key != outcomes[0].Key {
			t.Fatalf("caller %d got a different outcome", c)
		}
	}
	if n := sims.Load(); n != 1 {
		t.Fatalf("%d simulations ran, want exactly 1", n)
	}
	st := p.Stats()
	if st.Misses != 1 || st.Coalesced != callers-1 || st.Hits != 0 {
		t.Fatalf("stats = %+v, want 1 miss and %d coalesced", st, callers-1)
	}
}

// TestRepeatedDefaultSweepIsServedFromCache is the headline acceptance
// property: answering the same DefaultSweep query twice costs exactly
// one set of simulations; the second pass is all cache hits.
func TestRepeatedDefaultSweepIsServedFromCache(t *testing.T) {
	p := New(Config{Workers: 4, QueueDepth: 8, CacheSize: 256})
	defer p.Close()
	var sims atomic.Int64
	p.measure = fakeMeasure(&sims)

	spec := experiments.DefaultSweep()
	grid := len(spec.Scenarios())
	if grid == 0 {
		t.Fatal("DefaultSweep has an empty grid")
	}
	runSweep := func() []SweepItem {
		var items []SweepItem
		if err := p.Sweep(context.Background(), spec, 42, func(it SweepItem) error {
			items = append(items, it)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return items
	}

	first := runSweep()
	if len(first) != grid {
		t.Fatalf("first sweep emitted %d items, want %d", len(first), grid)
	}
	if n := sims.Load(); n != int64(grid) {
		t.Fatalf("first sweep ran %d simulations, want %d", n, grid)
	}
	second := runSweep()
	if n := sims.Load(); n != int64(grid) {
		t.Fatalf("repeated sweep ran %d additional simulations, want 0", n-int64(grid))
	}
	for i, it := range second {
		if it.Err != "" {
			t.Fatalf("item %d failed: %s", i, it.Err)
		}
		if !it.Outcome.Cached {
			t.Fatalf("item %d was not served from cache", i)
		}
		if it.Index != i || it.Total != grid {
			t.Fatalf("item %d mislabeled: %+v", i, it)
		}
	}
	if st := p.Stats(); st.Hits != int64(grid) {
		t.Fatalf("stats = %+v, want %d hits", st, grid)
	}
}

// TestSweepStreamsInGridOrder pins the incremental contract: items
// arrive indexed 0..n-1 in order regardless of completion order.
func TestSweepStreamsInGridOrder(t *testing.T) {
	p := New(Config{Workers: 4, QueueDepth: 8, CacheSize: 64})
	defer p.Close()
	var sims atomic.Int64
	p.measure = fakeMeasure(&sims)
	spec := experiments.DefaultSweep()
	var got []int
	if err := p.Sweep(context.Background(), spec, 1, func(it SweepItem) error {
		got = append(got, it.Index)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, idx := range got {
		if idx != i {
			t.Fatalf("stream order %v is not grid order", got)
		}
	}
}

// TestCacheEvictionUnderLoad hammers a tiny cache with distinct
// concurrent queries: the cache must hold its bound, count every
// eviction, and evicted entries must cost a fresh simulation.
func TestCacheEvictionUnderLoad(t *testing.T) {
	const capacity = 4
	p := New(Config{Workers: 4, QueueDepth: 8, CacheSize: capacity})
	defer p.Close()
	var sims atomic.Int64
	p.measure = fakeMeasure(&sims)

	const distinct = 32
	var wg sync.WaitGroup
	for i := 0; i < distinct; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := p.Measure(context.Background(), testQuery(int64(i))); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()

	st := p.Stats()
	if st.CacheEntries != capacity {
		t.Fatalf("cache holds %d entries, want bound %d", st.CacheEntries, capacity)
	}
	if st.Misses != distinct || st.Evictions != distinct-capacity {
		t.Fatalf("stats = %+v, want %d misses and %d evictions", st, distinct, distinct-capacity)
	}
	// An evicted seed must re-simulate; under LRU with sequential
	// re-insertion the set is full of recent seeds, so seed 0 (whatever
	// its eviction order) either hits or re-runs — querying all 32
	// again must leave exactly the bound cached and never exceed one
	// simulation per (key, generation).
	before := sims.Load()
	for i := 0; i < distinct; i++ {
		if _, err := p.Measure(context.Background(), testQuery(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	after := sims.Load()
	if after-before < distinct-capacity {
		t.Fatalf("re-querying after eviction re-ran only %d simulations, want ≥ %d", after-before, distinct-capacity)
	}
	if got := p.Stats().CacheEntries; got != capacity {
		t.Fatalf("cache grew past its bound: %d > %d", got, capacity)
	}
}

// TestSweepCancellationStopsDispatch cancels a sweep from inside its
// third simulation: with one pool worker serializing the sims, every
// scenario not yet started must be skipped, never simulated.
func TestSweepCancellationStopsDispatch(t *testing.T) {
	p := New(Config{Workers: 1, QueueDepth: 1, CacheSize: 64})
	defer p.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var sims atomic.Int64
	p.measure = func(sc experiments.Scenario, steps, ic, seed int64) (experiments.ScenarioOutcome, error) {
		if sims.Add(1) == 3 {
			// Cancellation lands while this simulation is in flight; it
			// finishes, everything behind it in the queue is skipped.
			cancel()
		}
		return experiments.ScenarioOutcome{Scenario: sc, TrainingSeconds: 1, SteadySpeed: 1, CostUSD: 1}, nil
	}

	spec := experiments.DefaultSweep()
	total := len(spec.Scenarios())
	if total <= 3 {
		t.Fatalf("grid of %d scenarios is too small for this test", total)
	}
	err := p.Sweep(ctx, spec, 9, func(it SweepItem) error { return nil })
	if err != nil && !errors.Is(err, context.Canceled) {
		t.Fatalf("Sweep returned %v, want nil or context.Canceled", err)
	}
	if n := sims.Load(); n != 3 {
		t.Fatalf("cancellation mid-sweep ran %d simulations, want exactly 3 (the in-flight one finishes, the rest skip)", n)
	}
}

// TestSweepStopsWhenEmitFails models a client that disconnected
// mid-stream: emit's error must end the sweep.
func TestSweepStopsWhenEmitFails(t *testing.T) {
	p := New(Config{Workers: 2, QueueDepth: 4, CacheSize: 64})
	defer p.Close()
	var sims atomic.Int64
	p.measure = fakeMeasure(&sims)
	boom := fmt.Errorf("client went away")
	err := p.Sweep(context.Background(), experiments.DefaultSweep(), 3, func(it SweepItem) error {
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("Sweep returned %v, want the emit error", err)
	}
}

// TestSimulationSeedIsPureFunctionOfCacheKey pins the coherence
// argument: the seed a simulation receives is campaign.Derive(query
// seed, 0, canonical scenario key), so equal cache keys are equal
// outcomes by construction, however the query was phrased.
func TestSimulationSeedIsPureFunctionOfCacheKey(t *testing.T) {
	p := New(Config{Workers: 1, QueueDepth: 2, CacheSize: 8})
	defer p.Close()
	var gotSeed atomic.Int64
	var sims atomic.Int64
	inner := fakeMeasure(&sims)
	p.measure = func(sc experiments.Scenario, steps, ic, seed int64) (experiments.ScenarioOutcome, error) {
		gotSeed.Store(seed)
		return inner(sc, steps, ic, seed)
	}
	q := testQuery(42)
	if _, err := p.Measure(context.Background(), q); err != nil {
		t.Fatal(err)
	}
	sc, steps, ic, err := q.scenario()
	if err != nil {
		t.Fatal(err)
	}
	want := campaign.Derive(q.Seed, 0, experiments.ScenarioKey(sc, steps, ic))
	if gotSeed.Load() != want {
		t.Fatalf("simulation seed %d is not Derive(seed, 0, scenario key) = %d", gotSeed.Load(), want)
	}

	// The same scenario reached through a one-cell sweep grid shares
	// the cache line: no second simulation.
	spec := experiments.SweepSpec{
		Model: sc.Model, Sizes: []int{1}, GPUs: []model.GPU{sc.GPU}, Regions: []cloud.Region{sc.Region},
		Tiers: []cloud.Tier{sc.Tier}, StepsPerWorker: steps, CheckpointInterval: ic,
	}
	var cached bool
	if err := p.Sweep(context.Background(), spec, q.Seed, func(it SweepItem) error {
		cached = it.Outcome != nil && it.Outcome.Cached
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if !cached || sims.Load() != 1 {
		t.Fatalf("one-cell sweep re-simulated (sims=%d, cached=%v); cache key is not grid-independent", sims.Load(), cached)
	}
}

// TestCheapestPicksCheapestFeasible checks deadline filtering, cost
// ranking, and failure accounting on an engineered grid.
func TestCheapestPicksCheapestFeasible(t *testing.T) {
	p := New(Config{Workers: 4, QueueDepth: 8, CacheSize: 64})
	defer p.Close()
	var sims atomic.Int64
	inner := fakeMeasure(&sims)
	p.measure = func(sc experiments.Scenario, steps, ic, seed int64) (experiments.ScenarioOutcome, error) {
		if sc.Tier == cloud.Transient {
			return experiments.ScenarioOutcome{}, fmt.Errorf("did not finish within a week")
		}
		// workers=1 → 10 h, $100; workers=2 → 5 h, $200.
		return inner(sc, steps, ic, seed)
	}
	q := CheapestQuery{
		GridQuery: GridQuery{
			Model: "ResNet-15", Sizes: []int{1, 2}, GPUs: []string{"K80"},
			Regions: []string{"us-central1"}, Tiers: []string{"on-demand", "transient"},
		},
		TargetSteps: 1000, DeadlineHours: 6, Seed: 5,
	}
	res, err := p.Cheapest(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Considered != 4 || res.Failed != 2 || res.Feasible != 1 {
		t.Fatalf("result = %+v, want 4 considered, 2 failed, 1 feasible", res)
	}
	if res.Best == nil || res.Best.Scenario != "2×K80 us-central1 on-demand" {
		t.Fatalf("best = %+v, want the 2-worker on-demand cell", res.Best)
	}

	// Without a deadline the slower, cheaper cell wins.
	q.DeadlineHours = 0
	res, err = p.Cheapest(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best == nil || res.Best.Scenario != "1×K80 us-central1 on-demand" {
		t.Fatalf("best without deadline = %+v, want the 1-worker cell", res.Best)
	}
}

// TestCanceledLeaderDoesNotPoisonFollowers pins the singleflight
// failure mode: a leader whose request dies before its unit runs must
// not hand its cancellation to a healthy follower — the follower
// retries and gets a real measurement.
func TestCanceledLeaderDoesNotPoisonFollowers(t *testing.T) {
	p := New(Config{Workers: 1, QueueDepth: 4, CacheSize: 8})
	defer p.Close()
	var sims atomic.Int64
	p.measure = fakeMeasure(&sims)

	// Occupy the single worker so the leader's unit sits in the queue,
	// where cancellation can still skip it.
	decoy := make(chan struct{})
	if err := p.pool.Submit(context.Background(), func() { <-decoy }); err != nil {
		t.Fatal(err)
	}

	q := testQuery(3)
	sc, steps, ic, err := q.scenario()
	if err != nil {
		t.Fatal(err)
	}
	key := cacheKey(sc, steps, ic, q.Seed)

	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	leaderErr := make(chan error, 1)
	go func() {
		_, err := p.Measure(leaderCtx, q)
		leaderErr <- err
	}()
	// Only start the follower once the cancelable caller owns the
	// flight, so the roles cannot swap.
	deadline := time.Now().Add(10 * time.Second)
	for !p.flights.inFlight(key) {
		if time.Now().After(deadline) {
			t.Fatal("leader never opened a flight")
		}
		time.Sleep(time.Millisecond)
	}
	followerOut := make(chan Outcome, 1)
	followerErr := make(chan error, 1)
	go func() {
		out, err := p.Measure(context.Background(), q)
		followerOut <- out
		followerErr <- err
	}()
	// Wait until the follower is parked behind the leader.
	for p.flights.waiting(key) != 1 {
		if time.Now().After(deadline) {
			t.Fatal("follower never joined the flight")
		}
		time.Sleep(time.Millisecond)
	}
	cancelLeader()
	close(decoy) // the worker now dequeues the leader's skipped unit

	if err := <-leaderErr; err == nil ||
		!(errors.Is(err, campaign.ErrSkipped) || errors.Is(err, context.Canceled)) {
		t.Fatalf("canceled leader returned %v, want its own cancellation", err)
	}
	if err := <-followerErr; err != nil {
		t.Fatalf("healthy follower inherited the leader's cancellation: %v", err)
	}
	if out := <-followerOut; out.Scenario == "" {
		t.Fatal("follower got an empty outcome")
	}
	if n := sims.Load(); n != 1 {
		t.Fatalf("%d simulations ran, want 1 (the follower's retry)", n)
	}
}

// TestQueryBounds rejects fan-out beyond the per-query limits before
// any goroutine or placement slice is allocated.
func TestQueryBounds(t *testing.T) {
	p := New(Config{Workers: 1, QueueDepth: 1, CacheSize: 4})
	defer p.Close()
	q := testQuery(1)
	q.Workers = maxWorkersPerScenario + 1
	var e *BadRequestError
	if _, err := p.Measure(context.Background(), q); !errors.As(err, &e) {
		t.Errorf("oversized workers: got %v, want BadRequestError", err)
	}

	// A grid that expands past maxGridCells is refused at Spec time.
	big := SweepQuery{GridQuery: GridQuery{Sizes: make([]int, 400)}}
	for i := range big.Sizes {
		big.Sizes[i] = 1
	}
	if _, err := big.Spec(); err == nil {
		t.Error("oversized sweep grid accepted")
	}
	cq := CheapestQuery{GridQuery: big.GridQuery, TargetSteps: 10}
	if _, err := p.Cheapest(context.Background(), cq); !errors.As(err, &e) {
		t.Error("oversized cheapest grid accepted")
	}

	// An oversized per-cell size is refused even in a small grid.
	small := SweepQuery{GridQuery: GridQuery{Sizes: []int{maxWorkersPerScenario + 1}}}
	if _, err := small.Spec(); err == nil {
		t.Error("oversized cluster size accepted")
	}
}

// TestQueryValidation maps malformed queries to BadRequestError.
func TestQueryValidation(t *testing.T) {
	p := New(Config{Workers: 1, QueueDepth: 1, CacheSize: 4})
	defer p.Close()
	bad := []ScenarioQuery{
		{Model: "NoSuchNet", GPU: "K80", Region: "us-central1", Tier: "on-demand", Workers: 1, TargetSteps: 1},
		{Model: "ResNet-15", GPU: "H100", Region: "us-central1", Tier: "on-demand", Workers: 1, TargetSteps: 1},
		{Model: "ResNet-15", GPU: "K80", Region: "mars-north1", Tier: "on-demand", Workers: 1, TargetSteps: 1},
		{Model: "ResNet-15", GPU: "K80", Region: "us-central1", Tier: "spot", Workers: 1, TargetSteps: 1},
		{Model: "ResNet-15", GPU: "V100", Region: "us-east1", Tier: "on-demand", Workers: 1, TargetSteps: 1}, // unoffered cell
		{Model: "ResNet-15", GPU: "K80", Region: "us-central1", Tier: "on-demand", Workers: 0, TargetSteps: 1},
		{Model: "ResNet-15", GPU: "K80", Region: "us-central1", Tier: "on-demand", Workers: 1, TargetSteps: 0},
	}
	for i, q := range bad {
		var e *BadRequestError
		if _, err := p.Measure(context.Background(), q); !errors.As(err, &e) {
			t.Errorf("query %d: got %v, want BadRequestError", i, err)
		}
	}
}

// TestLRURecency pins the eviction policy details the service relies
// on: Get refreshes recency and Add updates in place.
func TestLRURecency(t *testing.T) {
	c := newLRU(2)
	a := experiments.ScenarioOutcome{CostUSD: 1}
	b := experiments.ScenarioOutcome{CostUSD: 2}
	d := experiments.ScenarioOutcome{CostUSD: 3}
	c.Add("a", a)
	c.Add("b", b)
	c.Get("a") // refresh: b is now LRU
	if evicted := c.Add("d", d); !evicted {
		t.Fatal("third insert into a 2-cache must evict")
	}
	if _, ok := c.Get("b"); ok {
		t.Fatal("evicted the recently-used entry instead of the LRU one")
	}
	if got, ok := c.Get("a"); !ok || got.(experiments.ScenarioOutcome).CostUSD != 1 {
		t.Fatal("refreshed entry was evicted")
	}
	if evicted := c.Add("a", d); evicted {
		t.Fatal("updating an existing key must not evict")
	}
	if got, _ := c.Get("a"); got.(experiments.ScenarioOutcome).CostUSD != 3 {
		t.Fatal("Add did not update the existing entry")
	}
}
