package planner

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/cloud"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/train"
)

// analytic is the lazily-built Eq. 4/5 machinery behind Estimate
// queries: speed and checkpoint models fit once from the calibrated
// curves, plus revocation lifetime CDFs measured on demand per
// (region, GPU) — a few hundred simulated transient instances each —
// so the daemon only pays for the corners of the cloud it is actually
// asked about.
type analytic struct {
	once sync.Once
	err  error

	// mu lets warm estimates evaluate concurrently (read lock) while a
	// lazy lifetime campaign for a new (region, GPU) corner writes the
	// revocation estimator exclusively.
	mu       sync.RWMutex
	speed    *core.SpeedModel
	ckpt     *core.CheckpointModel
	rev      *core.RevocationEstimator
	measured map[string]bool
}

func (a *analytic) init() {
	a.once.Do(func() {
		var speedObs []core.SpeedObservation
		for _, g := range model.AllGPUs() {
			for _, m := range model.Zoo() {
				speedObs = append(speedObs, core.SpeedObservation{
					GPU: g, GFLOPs: m.GFLOPs, StepSeconds: model.StepTimeModel(g, m),
				})
			}
		}
		speed, err := core.FitSpeedModel(speedObs, core.KindSVRRBF)
		if err != nil {
			a.err = err
			return
		}

		rng := stats.NewRng(3)
		var ckptObs []core.CheckpointObservation
		for _, m := range model.Zoo() {
			for i := 0; i < 5; i++ {
				ckptObs = append(ckptObs, core.CheckpointObservation{
					DataBytes:  m.CkptDataBytes,
					MetaBytes:  m.CkptMetaBytes,
					IndexBytes: m.CkptIndexBytes,
					Seconds:    rng.LogNormal(train.CheckpointSeconds(m), 0.04),
				})
			}
		}
		ckpt, err := core.FitCheckpointModel(ckptObs, core.FeatTotalSize, core.KindSVRRBF)
		if err != nil {
			a.err = err
			return
		}

		a.speed = speed
		a.ckpt = ckpt
		a.rev = core.NewRevocationEstimator()
		a.measured = make(map[string]bool)
	})
}

// ensureLifetimes populates the revocation estimator for one
// (region, GPU) corner by running a deterministic measurement
// campaign: 300 transient launches staggered across the day (so the
// Fig. 9 time-of-day hazard structure is sampled evenly), lifetimes
// read back as an ECDF. Caller holds a.mu.
// cornerKey names one (region, GPU) corner of the cloud.
func cornerKey(r cloud.Region, g model.GPU) string {
	return r.String() + "|" + g.String()
}

func (a *analytic) ensureLifetimes(r cloud.Region, g model.GPU) error {
	key := cornerKey(r, g)
	if a.measured[key] {
		return nil
	}
	k := &sim.Kernel{}
	// The seed is a pure function of the corner, so every pland
	// instance answers estimate queries identically.
	p := cloud.NewProvider(k, stats.NewRng(int64(g)*11+int64(r)*101))
	for i := 0; i < 300; i++ {
		g := g
		k.At(sim.Time(float64(i%24)*3600), func() {
			p.MustLaunch(cloud.Request{Region: r, GPU: g, Tier: cloud.Transient})
		})
	}
	k.Run()
	var lifetimes []float64
	for _, in := range p.Instances() {
		lifetimes = append(lifetimes, in.LifetimeSeconds(k.Now())/3600)
	}
	if err := a.rev.SetLifetimes(r.String(), g, lifetimes); err != nil {
		return err
	}
	a.measured[key] = true
	return nil
}

// EstimateResult is the wire form of an Eq. 4 decomposition.
type EstimateResult struct {
	Scenario            string  `json:"scenario"`
	ClusterStepsPerSec  float64 `json:"cluster_steps_per_sec"`
	ComputeHours        float64 `json:"compute_hours"`
	CheckpointHours     float64 `json:"checkpoint_hours"`
	ExpectedRevocations float64 `json:"expected_revocations"`
	RevocationHours     float64 `json:"revocation_hours"`
	TotalHours          float64 `json:"total_hours"`
	CostUSD             float64 `json:"cost_usd"`
	CostPer1kSteps      float64 `json:"cost_per_1k_steps"`
}

// Estimate answers a scenario query analytically with Eqs. 4–5 — no
// training simulation, so it is the sub-millisecond path (after the
// one-time model fit) for scanning large candidate spaces; Measure
// validates the winners. ctx is accepted for symmetry but the
// evaluation is not cancellable once started.
func (p *Planner) Estimate(ctx context.Context, q ScenarioQuery) (EstimateResult, error) {
	sc, steps, ic, err := q.scenario()
	if err != nil {
		return EstimateResult{}, &BadRequestError{err}
	}
	if sc.ProviderName() != cloud.DefaultProviderName {
		// The Eq. 4/5 fit is calibrated against the default provider's
		// price book, startup times, and hazard; answering for another
		// world would silently use the wrong numbers. Measured queries
		// (/v1/measure, /v1/sweep, /v1/cheapest) support every provider.
		return EstimateResult{}, &BadRequestError{fmt.Errorf(
			"planner: analytic estimates support only the default provider %q; measure provider %q instead",
			cloud.DefaultProviderName, sc.Provider)}
	}
	if sc.RevModelName() != cloud.DefaultLifetimeModelName {
		// The Eq. 5 revocation estimator is fit from lifetime campaigns
		// run under the default calibration; answering for another
		// regime would silently use the wrong hazard. Measured queries
		// (/v1/measure, /v1/sweep, /v1/cheapest) support every model.
		return EstimateResult{}, &BadRequestError{fmt.Errorf(
			"planner: analytic estimates support only the default lifetime model %q; measure rev_model %q instead",
			cloud.DefaultLifetimeModelName, sc.RevModel)}
	}
	a := &p.analytic
	a.init()
	if a.err != nil {
		return EstimateResult{}, a.err
	}

	if sc.Tier == cloud.Transient {
		// Double-checked: warm corners stay on the read lock so
		// concurrent estimates never contend; only an unmeasured
		// corner upgrades to run its lifetime campaign exclusively.
		key := cornerKey(sc.Region, sc.GPU)
		a.mu.RLock()
		measured := a.measured[key]
		a.mu.RUnlock()
		if !measured {
			a.mu.Lock()
			err := a.ensureLifetimes(sc.Region, sc.GPU)
			a.mu.Unlock()
			if err != nil {
				return EstimateResult{}, err
			}
		}
	}
	a.mu.RLock()
	defer a.mu.RUnlock()
	workers := make([]core.Placement, sc.Workers)
	for i := range workers {
		workers[i] = core.Placement{
			GPU:       sc.GPU,
			Region:    sc.Region.String(),
			Transient: sc.Tier == cloud.Transient,
		}
	}
	pred := &core.Predictor{
		Speed:              a.speed,
		Checkpoint:         a.ckpt,
		Revocation:         a.rev,
		ProvisionSeconds:   70,
		ReplacementSeconds: train.ReplacementSeconds(sc.Model, true),
	}
	est, err := pred.Estimate(core.Plan{
		Model:   sc.Model,
		Workers: workers,
		// Measured scenarios run one parameter server (the manager's
		// default); the analytic estimate must price the same cluster.
		ParameterServers:   1,
		TargetSteps:        steps,
		CheckpointInterval: ic,
	})
	if err != nil {
		return EstimateResult{}, err
	}
	return EstimateResult{
		Scenario:            sc.Label(),
		ClusterStepsPerSec:  est.ClusterSpeed,
		ComputeHours:        est.ComputeSeconds / 3600,
		CheckpointHours:     est.CheckpointSeconds / 3600,
		ExpectedRevocations: est.ExpectedRevocations,
		RevocationHours:     est.RevocationSeconds / 3600,
		TotalHours:          est.TotalSeconds / 3600,
		CostUSD:             est.CostUSD,
		CostPer1kSteps:      est.CostUSD / (float64(steps) / 1000),
	}, nil
}
