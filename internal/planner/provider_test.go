package planner

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/cloud"
)

// TestProviderSplitsCacheLines is the acceptance property of the
// provider axis: the same scenario measured on two markets must occupy
// two cache lines, while the implicit default and the explicitly-named
// default market share one.
func TestProviderSplitsCacheLines(t *testing.T) {
	p := New(Config{Workers: 2, QueueDepth: 4, CacheSize: 16})
	defer p.Close()
	var sims atomic.Int64
	p.measure = fakeMeasure(&sims)

	q := testQuery(13)
	ask := func(provider string) Outcome {
		t.Helper()
		q := q
		q.Provider = provider
		out, err := p.Measure(context.Background(), q)
		if err != nil {
			t.Fatalf("provider=%q: %v", provider, err)
		}
		return out
	}

	def := ask("")
	aws := ask("aws")
	if def.Key == aws.Key {
		t.Fatalf("default and aws share the key %q", def.Key)
	}
	if !strings.Contains(def.Key, "prov="+cloud.DefaultProviderName) ||
		!strings.Contains(aws.Key, "prov=aws") {
		t.Fatalf("keys do not embed the market: %q / %q", def.Key, aws.Key)
	}
	st := p.Stats()
	if sims.Load() != 2 || st.Misses != 2 || st.CacheEntries != 2 {
		t.Fatalf("two markets ⇒ two simulations and two cache lines; got sims=%d stats=%+v", sims.Load(), st)
	}

	// The explicitly-named default market is the same measurement as
	// the implicit one: a cache hit, not a third line.
	exp := ask(cloud.DefaultProviderName)
	if !exp.Cached || exp.Key != def.Key {
		t.Fatalf("explicit default market was not served from the implicit default's line: %+v", exp)
	}
	if st := p.Stats(); st.CacheEntries != 2 || sims.Load() != 2 {
		t.Fatalf("explicit default market created extra work: sims=%d stats=%+v", sims.Load(), st)
	}
}

// TestProviderValidation maps provider mistakes to BadRequestError:
// unknown markets, catalog holes (the serverless market sells no
// V100s), bad grid axes, and — mirroring the rev-model limitation —
// analytic estimates on any non-default market.
func TestProviderValidation(t *testing.T) {
	p := New(Config{Workers: 1, QueueDepth: 2, CacheSize: 4})
	defer p.Close()
	var sims atomic.Int64
	p.measure = fakeMeasure(&sims)

	q := testQuery(1)
	q.Provider = "no-such-market"
	var bad *BadRequestError
	if _, err := p.Measure(context.Background(), q); !errors.As(err, &bad) {
		t.Errorf("unknown provider: got %v, want BadRequestError", err)
	}

	// A cell the chosen market does not sell is rejected up front.
	vq := testQuery(1)
	vq.GPU, vq.Provider = "V100", "serverless-cpu"
	if _, err := p.Measure(context.Background(), vq); !errors.As(err, &bad) ||
		!strings.Contains(err.Error(), "serverless-cpu") {
		t.Errorf("off-catalog cell: got %v, want a BadRequestError naming the market", err)
	}

	// Grid queries validate every listed market before dispatch.
	sq := SweepQuery{GridQuery: GridQuery{Providers: []string{"gce", "bogus"}}}
	if _, err := sq.Spec(); err == nil {
		t.Error("sweep accepted an unknown provider")
	}

	// Analytic estimates only speak the default market's calibration.
	eq := testQuery(1)
	eq.Provider = "aws"
	if _, err := p.Estimate(context.Background(), eq); !errors.As(err, &bad) ||
		!strings.Contains(err.Error(), cloud.DefaultProviderName) {
		t.Errorf("estimate on a non-default market: got %v, want a BadRequestError naming the default market", err)
	}
	if sims.Load() != 0 {
		t.Fatalf("validation paths ran %d simulations, want 0", sims.Load())
	}
}

// TestSweepProvidersAxis sweeps one cell across two markets: the grid
// doubles, every cell simulates once, and a repeat is all hits.
func TestSweepProvidersAxis(t *testing.T) {
	p := New(Config{Workers: 2, QueueDepth: 4, CacheSize: 32})
	defer p.Close()
	var sims atomic.Int64
	p.measure = fakeMeasure(&sims)

	sq := SweepQuery{GridQuery: GridQuery{
		Model: "ResNet-15", Sizes: []int{1}, GPUs: []string{"K80"},
		Regions: []string{"us-central1"}, Tiers: []string{"transient"},
		Providers: []string{"gce", "aws"},
	}}
	spec, err := sq.Spec()
	if err != nil {
		t.Fatal(err)
	}
	run := func() int {
		n := 0
		if err := p.Sweep(context.Background(), spec, 4, func(it SweepItem) error {
			if it.Err != "" {
				t.Fatalf("item %d: %s", it.Index, it.Err)
			}
			n++
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return n
	}
	if n := run(); n != 2 {
		t.Fatalf("sweep emitted %d items, want 2 (one per market)", n)
	}
	if sims.Load() != 2 {
		t.Fatalf("%d simulations, want 2", sims.Load())
	}
	run()
	if sims.Load() != 2 {
		t.Fatalf("repeat sweep re-simulated (%d total)", sims.Load())
	}
}

func TestCatalogListsProviders(t *testing.T) {
	p := New(Config{Workers: 1, QueueDepth: 2, CacheSize: 4})
	defer p.Close()
	srv := httptest.NewServer(p.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/v1/catalog")
	if err != nil {
		t.Fatal(err)
	}
	cat := decodeBody[Catalog](t, resp)
	if len(cat.Providers) != 3 || cat.Providers[0] != cloud.DefaultProviderName {
		t.Fatalf("catalog providers = %v, want default first with 3 builtins", cat.Providers)
	}
}
