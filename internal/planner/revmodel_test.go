package planner

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/cloud"
)

// TestRevModelSplitsCacheLines is the acceptance property of the
// revocation-model axis: the same scenario measured under two lifetime
// models must occupy two cache lines (two misses, two entries), while
// the implicit default and the explicit default share one.
func TestRevModelSplitsCacheLines(t *testing.T) {
	p := New(Config{Workers: 2, QueueDepth: 4, CacheSize: 16})
	defer p.Close()
	var sims atomic.Int64
	p.measure = fakeMeasure(&sims)

	q := testQuery(9)
	ask := func(rev string) Outcome {
		t.Helper()
		q := q
		q.RevModel = rev
		out, err := p.Measure(context.Background(), q)
		if err != nil {
			t.Fatalf("rev=%q: %v", rev, err)
		}
		return out
	}

	def := ask("")
	weib := ask("weibull")
	if def.Key == weib.Key {
		t.Fatalf("default and weibull share the key %q", def.Key)
	}
	if !strings.Contains(def.Key, "rev="+cloud.DefaultLifetimeModelName) ||
		!strings.Contains(weib.Key, "rev=weibull") {
		t.Fatalf("keys do not embed the model: %q / %q", def.Key, weib.Key)
	}
	st := p.Stats()
	if sims.Load() != 2 || st.Misses != 2 || st.CacheEntries != 2 {
		t.Fatalf("two models ⇒ two simulations and two cache lines; got sims=%d stats=%+v", sims.Load(), st)
	}

	// The explicitly-named default is the same measurement as the
	// implicit one: a cache hit, not a third line.
	exp := ask(cloud.DefaultLifetimeModelName)
	if !exp.Cached || exp.Key != def.Key {
		t.Fatalf("explicit default was not served from the implicit default's line: %+v", exp)
	}
	if st := p.Stats(); st.CacheEntries != 2 || sims.Load() != 2 {
		t.Fatalf("explicit default created extra work: sims=%d stats=%+v", sims.Load(), st)
	}
}

func TestRevModelValidation(t *testing.T) {
	p := New(Config{Workers: 1, QueueDepth: 2, CacheSize: 4})
	defer p.Close()
	var sims atomic.Int64
	p.measure = fakeMeasure(&sims)

	q := testQuery(1)
	q.RevModel = "no-such-model"
	var bad *BadRequestError
	if _, err := p.Measure(context.Background(), q); !errors.As(err, &bad) {
		t.Errorf("unknown rev_model: got %v, want BadRequestError", err)
	}

	// Grid queries validate every listed model before dispatch.
	sq := SweepQuery{GridQuery: GridQuery{RevModels: []string{"table5", "bogus"}}}
	if _, err := sq.Spec(); err == nil {
		t.Error("sweep accepted an unknown rev model")
	}

	// Analytic estimates only speak the default calibration.
	eq := testQuery(1)
	eq.RevModel = "weibull"
	if _, err := p.Estimate(context.Background(), eq); !errors.As(err, &bad) ||
		!strings.Contains(err.Error(), "analytic") {
		t.Errorf("estimate under a non-default model: got %v, want a BadRequestError explaining the analytic limitation", err)
	}
}

// TestSweepRevModelsAxis sweeps one cell under three regimes: the grid
// triples, every cell simulates once, and a repeat is all hits.
func TestSweepRevModelsAxis(t *testing.T) {
	p := New(Config{Workers: 2, QueueDepth: 4, CacheSize: 32})
	defer p.Close()
	var sims atomic.Int64
	p.measure = fakeMeasure(&sims)

	sq := SweepQuery{GridQuery: GridQuery{
		Model: "ResNet-15", Sizes: []int{1}, GPUs: []string{"K80"},
		Regions: []string{"us-central1"}, Tiers: []string{"transient"},
		RevModels: []string{"table5", "weibull", "diurnal"},
	}}
	spec, err := sq.Spec()
	if err != nil {
		t.Fatal(err)
	}
	run := func() int {
		n := 0
		if err := p.Sweep(context.Background(), spec, 4, func(it SweepItem) error {
			if it.Err != "" {
				t.Fatalf("item %d: %s", it.Index, it.Err)
			}
			n++
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return n
	}
	if n := run(); n != 3 {
		t.Fatalf("sweep emitted %d items, want 3 (one per regime)", n)
	}
	if sims.Load() != 3 {
		t.Fatalf("%d simulations, want 3", sims.Load())
	}
	run()
	if sims.Load() != 3 {
		t.Fatalf("repeat sweep re-simulated (%d total)", sims.Load())
	}
}

func TestCatalogListsLifetimeModels(t *testing.T) {
	p := New(Config{Workers: 1, QueueDepth: 2, CacheSize: 4})
	defer p.Close()
	srv := httptest.NewServer(p.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/v1/catalog")
	if err != nil {
		t.Fatal(err)
	}
	cat := decodeBody[Catalog](t, resp)
	if len(cat.LifetimeModels) < 3 || cat.LifetimeModels[0] != cloud.DefaultLifetimeModelName {
		t.Fatalf("catalog lifetime models = %v, want default first with ≥3 entries", cat.LifetimeModels)
	}
	found := false
	for _, id := range cat.Experiments {
		if id == "revmodels" {
			found = true
		}
	}
	if !found {
		t.Fatalf("catalog experiments missing revmodels: %v", cat.Experiments)
	}
}
