package planner

import (
	"context"
	"sync"
	"sync/atomic"
)

// flightGroup coalesces concurrent identical measurements: the first
// caller for a key becomes the leader and runs the simulation; callers
// arriving while it is in flight wait for the leader's result instead
// of re-simulating. The leader runs under its own context — a follower
// whose context dies stops waiting, but the leader (and thus the cache
// fill) is unaffected by follower cancellation.
type flightGroup struct {
	mu    sync.Mutex
	calls map[string]*flightCall
}

type flightCall struct {
	done    chan struct{}
	val     any
	err     error
	waiters atomic.Int64
}

// Do executes fn once per key at a time. shared reports whether this
// caller received a leader's result rather than running fn itself.
func (g *flightGroup) Do(ctx context.Context, key string, fn func() (any, error)) (v any, shared bool, err error) {
	g.mu.Lock()
	if g.calls == nil {
		g.calls = make(map[string]*flightCall)
	}
	if c, ok := g.calls[key]; ok {
		c.waiters.Add(1)
		g.mu.Unlock()
		select {
		case <-c.done:
			return c.val, true, c.err
		case <-ctx.Done():
			return nil, true, context.Cause(ctx)
		}
	}
	c := &flightCall{done: make(chan struct{})}
	g.calls[key] = c
	g.mu.Unlock()

	c.val, c.err = fn()
	g.mu.Lock()
	delete(g.calls, key)
	g.mu.Unlock()
	close(c.done)
	return c.val, false, c.err
}

// waiting reports how many followers are parked behind the key's
// in-flight leader (0 when no flight is active). Used by tests to
// rendezvous without sleeping.
func (g *flightGroup) waiting(key string) int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	if c, ok := g.calls[key]; ok {
		return c.waiters.Load()
	}
	return 0
}

// inFlight reports whether a leader currently owns the key. Test-only,
// like waiting.
func (g *flightGroup) inFlight(key string) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	_, ok := g.calls[key]
	return ok
}
