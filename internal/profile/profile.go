// Package profile implements CM-DARE's performance tracker: the
// component that runs on every training server, logs training speed,
// and feeds the performance profiler (paper Fig. 1, steps 4 and 7).
//
// It follows the paper's measurement methodology (§III-A): cluster
// training speed is averaged over 100-step windows, and the first 100
// steps are discarded as warm-up before computing steady-state
// statistics.
package profile

import (
	"fmt"
	"sort"

	"repro/internal/stats"
)

// DefaultWindowSteps is the paper's speed-averaging window.
const DefaultWindowSteps = 100

// SpeedSample is the cluster training speed over one window.
type SpeedSample struct {
	// Step is the global step count at the end of the window.
	Step int64
	// Time is the simulation time (seconds) at the end of the window.
	Time float64
	// Speed is steps/second averaged over the window.
	Speed float64
}

// Tracker aggregates per-step completions into windowed cluster speed
// and per-worker step-time statistics.
//
// The zero value is not usable; construct with NewTracker.
type Tracker struct {
	window int64

	started    bool
	firstTime  float64
	globalDone int64
	windowTime float64
	samples    []SpeedSample

	perWorker map[string]*workerStats

	// OnSample, when set, is called synchronously with each new speed
	// sample as the window closes — the hook the trace recorder uses to
	// fold windowed speeds into the event timeline. It must not call
	// back into the tracker.
	OnSample func(SpeedSample)
}

type workerStats struct {
	steps int64
	// steady excludes each worker's first DefaultWindowSteps steps,
	// matching the paper's discard-the-first-100 rule.
	steady stats.Accumulator
}

// NewTracker returns a tracker with the given speed window in steps.
func NewTracker(windowSteps int64) *Tracker {
	if windowSteps <= 0 {
		panic(fmt.Sprintf("profile: window must be positive, got %d", windowSteps))
	}
	return &Tracker{window: windowSteps, perWorker: make(map[string]*workerStats)}
}

// Begin marks the session start time so the first window's speed
// accounts for the first step's duration. Calling Begin after steps
// have been recorded is a programming error.
func (t *Tracker) Begin(now float64) {
	if t.started {
		panic("profile: Begin after steps were recorded")
	}
	t.started = true
	t.firstTime = now
	t.windowTime = now
}

// RecordGlobalStep notes that the cluster completed one more global
// step at simulation time now. Every window of steps emits one speed
// sample. If Begin was not called, the first record's timestamp seeds
// the window clock (losing that step's own duration).
func (t *Tracker) RecordGlobalStep(now float64) {
	if !t.started {
		t.started = true
		t.firstTime = now
		t.windowTime = now
	}
	t.globalDone++
	if t.globalDone%t.window == 0 {
		elapsed := now - t.windowTime
		speed := 0.0
		if elapsed > 0 {
			speed = float64(t.window) / elapsed
		}
		s := SpeedSample{Step: t.globalDone, Time: now, Speed: speed}
		t.samples = append(t.samples, s)
		t.windowTime = now
		if t.OnSample != nil {
			t.OnSample(s)
		}
	}
}

// RecordWorkerStep notes that the named worker finished one step that
// took duration seconds. Steps beyond the worker's warm-up feed its
// steady-state step-time distribution.
func (t *Tracker) RecordWorkerStep(worker string, duration float64) {
	t.StepRecorder(worker).Record(duration)
}

// StepRecorder returns a direct handle onto the named worker's
// step-time series, registering the worker if needed. The training
// kernel resolves the handle once per worker and records through it,
// keeping the per-step hot path free of map lookups; RecordWorkerStep
// remains the one-shot convenience form.
func (t *Tracker) StepRecorder(worker string) StepRecorder {
	ws := t.perWorker[worker]
	if ws == nil {
		ws = &workerStats{}
		t.perWorker[worker] = ws
	}
	return StepRecorder{ws: ws}
}

// StepRecorder is a reusable handle onto one worker's step-time series.
// The zero value is unusable; obtain one from Tracker.StepRecorder.
type StepRecorder struct {
	ws *workerStats
}

// Record accounts one finished step of the given duration. Steps beyond
// the worker's warm-up feed its steady-state distribution.
func (r StepRecorder) Record(duration float64) {
	r.ws.steps++
	if r.ws.steps > DefaultWindowSteps {
		r.ws.steady.Add(duration)
	}
}

// GlobalSteps returns the number of global steps recorded.
func (t *Tracker) GlobalSteps() int64 { return t.globalDone }

// SpeedSeries returns the windowed speed samples in order (Fig. 2's
// series).
func (t *Tracker) SpeedSeries() []SpeedSample {
	out := make([]SpeedSample, len(t.samples))
	copy(out, t.samples)
	return out
}

// SteadySpeed returns the mean windowed speed after discarding the
// first window (the warm-up the paper excludes). It returns 0 if fewer
// than two windows completed.
func (t *Tracker) SteadySpeed() float64 {
	if len(t.samples) < 2 {
		return 0
	}
	var acc stats.Accumulator
	for _, s := range t.samples[1:] {
		acc.Add(s.Speed)
	}
	return acc.Mean()
}

// SteadySpeedCoV returns the coefficient of variation of the windowed
// speed after warm-up; Fig. 2 reports a maximum of 0.02.
func (t *Tracker) SteadySpeedCoV() float64 {
	if len(t.samples) < 3 {
		return 0
	}
	var acc stats.Accumulator
	for _, s := range t.samples[1:] {
		acc.Add(s.Speed)
	}
	return acc.CoV()
}

// Workers lists worker names seen, sorted for deterministic reports.
func (t *Tracker) Workers() []string {
	names := make([]string, 0, len(t.perWorker))
	for name := range t.perWorker {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// WorkerSteps returns the total steps completed by the named worker.
func (t *Tracker) WorkerSteps(worker string) int64 {
	ws := t.perWorker[worker]
	if ws == nil {
		return 0
	}
	return ws.steps
}

// WorkerStepTime returns the post-warm-up mean and standard deviation
// of the named worker's step time (Table III's quantity). ok is false
// if the worker has no post-warm-up steps.
func (t *Tracker) WorkerStepTime(worker string) (mean, std float64, ok bool) {
	ws := t.perWorker[worker]
	if ws == nil || ws.steady.N() == 0 {
		return 0, 0, false
	}
	return ws.steady.Mean(), ws.steady.Std(), true
}
