package profile

import (
	"math"
	"testing"
)

func TestTrackerWindowedSpeed(t *testing.T) {
	tr := NewTracker(10)
	tr.Begin(0)
	now := 0.0
	for i := 0; i < 30; i++ {
		now += 0.5 // 2 steps/second
		tr.RecordGlobalStep(now)
	}
	samples := tr.SpeedSeries()
	if len(samples) != 3 {
		t.Fatalf("got %d samples, want 3", len(samples))
	}
	for _, s := range samples {
		if math.Abs(s.Speed-2) > 1e-9 {
			t.Fatalf("window speed = %v, want 2", s.Speed)
		}
	}
	if samples[0].Step != 10 || samples[2].Step != 30 {
		t.Fatalf("sample steps = %v, %v", samples[0].Step, samples[2].Step)
	}
	if tr.GlobalSteps() != 30 {
		t.Fatalf("GlobalSteps = %d", tr.GlobalSteps())
	}
}

func TestBeginAfterRecordPanics(t *testing.T) {
	tr := NewTracker(10)
	tr.RecordGlobalStep(1)
	defer func() {
		if recover() == nil {
			t.Fatal("Begin after RecordGlobalStep should panic")
		}
	}()
	tr.Begin(0)
}

func TestSteadySpeedDiscardsFirstWindow(t *testing.T) {
	tr := NewTracker(10)
	tr.Begin(0)
	now := 0.0
	// First 10 steps are slow (warm-up), remaining 20 are fast.
	for i := 0; i < 10; i++ {
		now += 2
		tr.RecordGlobalStep(now)
	}
	for i := 0; i < 20; i++ {
		now += 0.1
		tr.RecordGlobalStep(now)
	}
	if got := tr.SteadySpeed(); math.Abs(got-10) > 1e-9 {
		t.Fatalf("SteadySpeed = %v, want 10 (warm-up window excluded)", got)
	}
	if cov := tr.SteadySpeedCoV(); cov > 1e-9 {
		t.Fatalf("SteadySpeedCoV = %v, want 0 for constant speed", cov)
	}
}

func TestSteadySpeedNeedsTwoWindows(t *testing.T) {
	tr := NewTracker(100)
	for i := 0; i < 150; i++ {
		tr.RecordGlobalStep(float64(i))
	}
	if got := tr.SteadySpeed(); got != 0 {
		t.Fatalf("SteadySpeed with one window = %v, want 0", got)
	}
}

func TestWorkerStepTimeWarmupDiscard(t *testing.T) {
	tr := NewTracker(100)
	// 100 warm-up steps at 1 s, then 50 steady steps at 0.2 s.
	for i := 0; i < 100; i++ {
		tr.RecordWorkerStep("w0", 1.0)
	}
	for i := 0; i < 50; i++ {
		tr.RecordWorkerStep("w0", 0.2)
	}
	mean, std, ok := tr.WorkerStepTime("w0")
	if !ok {
		t.Fatal("expected steady stats")
	}
	if math.Abs(mean-0.2) > 1e-9 || std > 1e-9 {
		t.Fatalf("steady step time = %v ± %v, want 0.2 ± 0", mean, std)
	}
	if tr.WorkerSteps("w0") != 150 {
		t.Fatalf("WorkerSteps = %d, want 150", tr.WorkerSteps("w0"))
	}
}

func TestWorkerStepTimeUnknownWorker(t *testing.T) {
	tr := NewTracker(100)
	if _, _, ok := tr.WorkerStepTime("ghost"); ok {
		t.Fatal("unknown worker should report ok=false")
	}
	tr.RecordWorkerStep("w1", 0.5) // still inside warm-up
	if _, _, ok := tr.WorkerStepTime("w1"); ok {
		t.Fatal("worker with only warm-up steps should report ok=false")
	}
}

func TestWorkersSorted(t *testing.T) {
	tr := NewTracker(100)
	tr.RecordWorkerStep("w2", 1)
	tr.RecordWorkerStep("w0", 1)
	tr.RecordWorkerStep("w1", 1)
	names := tr.Workers()
	if len(names) != 3 || names[0] != "w0" || names[1] != "w1" || names[2] != "w2" {
		t.Fatalf("Workers = %v", names)
	}
}

func TestNewTrackerPanicsOnBadWindow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewTracker(0) should panic")
		}
	}()
	NewTracker(0)
}
