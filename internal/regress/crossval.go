package regress

import (
	"fmt"

	"repro/internal/stats"
)

// TrainTestSplit shuffles indices and splits rows into train and test
// sets with the given train fraction (the paper uses 4:1, i.e. 0.8).
func TrainTestSplit(X [][]float64, y []float64, trainFrac float64, rng *stats.Rng) (trainX [][]float64, trainY []float64, testX [][]float64, testY []float64, err error) {
	n, _, err := checkMatrix(X, y)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	if trainFrac <= 0 || trainFrac >= 1 {
		return nil, nil, nil, nil, fmt.Errorf("regress: train fraction %v outside (0,1)", trainFrac)
	}
	perm := rng.Perm(n)
	nTrain := int(float64(n)*trainFrac + 0.5)
	if nTrain == 0 {
		nTrain = 1
	}
	if nTrain == n {
		nTrain = n - 1
	}
	for i, idx := range perm {
		if i < nTrain {
			trainX = append(trainX, X[idx])
			trainY = append(trainY, y[idx])
		} else {
			testX = append(testX, X[idx])
			testY = append(testY, y[idx])
		}
	}
	return trainX, trainY, testX, testY, nil
}

// KFold partitions indices 0..n-1 into k shuffled folds of near-equal
// size.
func KFold(n, k int, rng *stats.Rng) ([][]int, error) {
	if k < 2 || k > n {
		return nil, fmt.Errorf("regress: k=%d folds outside [2, %d]", k, n)
	}
	perm := rng.Perm(n)
	folds := make([][]int, k)
	for i, idx := range perm {
		folds[i%k] = append(folds[i%k], idx)
	}
	return folds, nil
}

// Factory builds a fresh, untrained regressor; cross-validation and
// grid search train one per fold.
type Factory func() Regressor

// Scorer maps (predictions, targets) to a loss to minimize.
type Scorer func(pred, target []float64) float64

// CrossValScore runs k-fold cross-validation under an arbitrary
// scorer, returning the per-fold scores' mean and standard deviation.
func CrossValScore(newModel Factory, X [][]float64, y []float64, k int, rng *stats.Rng, score Scorer) (mean, std float64, err error) {
	n, _, err := checkMatrix(X, y)
	if err != nil {
		return 0, 0, err
	}
	folds, err := KFold(n, k, rng)
	if err != nil {
		return 0, 0, err
	}
	inFold := make([]int, n)
	for f, idxs := range folds {
		for _, i := range idxs {
			inFold[i] = f
		}
	}
	scores := make([]float64, 0, k)
	for f := 0; f < k; f++ {
		var trX [][]float64
		var trY, teY []float64
		var teX [][]float64
		for i := 0; i < n; i++ {
			if inFold[i] == f {
				teX = append(teX, X[i])
				teY = append(teY, y[i])
			} else {
				trX = append(trX, X[i])
				trY = append(trY, y[i])
			}
		}
		m := newModel()
		if err := m.Fit(trX, trY); err != nil {
			return 0, 0, fmt.Errorf("regress: fold %d: %w", f, err)
		}
		scores = append(scores, score(PredictAll(m, teX), teY))
	}
	return stats.Mean(scores), stats.Std(scores), nil
}

// CrossValMAE runs k-fold cross-validation and returns the per-fold
// MAEs' mean and standard deviation — the "K-fold MAE" columns of
// Tables II and IV.
func CrossValMAE(newModel Factory, X [][]float64, y []float64, k int, rng *stats.Rng) (mean, std float64, err error) {
	return CrossValScore(newModel, X, y, k, rng, stats.MAE)
}

// SVRGrid is the paper's hyperparameter search space: penalty p in
// [10, 100] step 10 and ε in [0.01, 0.1] step 0.01 (§III-B).
type SVRGrid struct {
	Cs       []float64
	Epsilons []float64
}

// PaperSVRGrid returns the grid the paper uses.
func PaperSVRGrid() SVRGrid {
	g := SVRGrid{}
	for c := 10.0; c <= 100.0+1e-9; c += 10 {
		g.Cs = append(g.Cs, c)
	}
	for e := 0.01; e <= 0.1+1e-9; e += 0.01 {
		g.Epsilons = append(g.Epsilons, e)
	}
	return g
}

// GridSearchSVRKernels cross-validates every kernel × (C, ε)
// combination and returns the best by mean k-fold MAE. The paper grid
// searches the penalty and ε; sweeping the kernel bandwidth alongside
// is the same protocol applied to the kernel's own hyperparameter.
func GridSearchSVRKernels(kernels []Kernel, grid SVRGrid, X [][]float64, y []float64, k int, rng *stats.Rng) (best Factory, bestKernel Kernel, bestC, bestEps, bestMAE float64, err error) {
	if len(kernels) == 0 {
		return nil, nil, 0, 0, 0, fmt.Errorf("regress: no kernels to search")
	}
	seed := rng.Int63()
	bestMAE = -1
	for _, kern := range kernels {
		f, c, eps, mae, kerr := GridSearchSVR(kern, grid, X, y, k, stats.NewRng(seed))
		if kerr != nil {
			return nil, nil, 0, 0, 0, kerr
		}
		if bestMAE < 0 || mae < bestMAE {
			best, bestKernel, bestC, bestEps, bestMAE = f, kern, c, eps, mae
		}
	}
	return best, bestKernel, bestC, bestEps, bestMAE, nil
}

// GridSearchSVR cross-validates every (C, ε) pair and returns the SVR
// factory for the best pair by mean k-fold MAE, along with the chosen
// parameters and score.
func GridSearchSVR(kernel Kernel, grid SVRGrid, X [][]float64, y []float64, k int, rng *stats.Rng) (best Factory, bestC, bestEps, bestMAE float64, err error) {
	if len(grid.Cs) == 0 || len(grid.Epsilons) == 0 {
		return nil, 0, 0, 0, fmt.Errorf("regress: empty hyperparameter grid")
	}
	bestMAE = -1
	// One shared fold seed: every (C, ε) candidate is scored on the
	// same partition, so the comparison is apples to apples.
	foldSeed := rng.Int63()
	for _, c := range grid.Cs {
		for _, eps := range grid.Epsilons {
			c, eps := c, eps
			factory := func() Regressor { return &SVR{Kernel: kernel, C: c, Epsilon: eps} }
			mean, _, cvErr := CrossValMAE(factory, X, y, k, stats.NewRng(foldSeed))
			if cvErr != nil {
				return nil, 0, 0, 0, cvErr
			}
			if bestMAE < 0 || mean < bestMAE {
				bestMAE = mean
				bestC, bestEps = c, eps
				best = factory
			}
		}
	}
	return best, bestC, bestEps, bestMAE, nil
}
