package regress

import (
	"fmt"
	"math"
)

// Kernel is a positive-definite similarity function for SVR.
type Kernel interface {
	// Eval returns k(a, b).
	Eval(a, b []float64) float64
	// String names the kernel for reports.
	String() string
}

// RBF is the radial-basis-function kernel
// exp(-‖a-b‖² / (2σ²)) the paper's best step-time and checkpoint
// models use (Eq. 3 and checkpoint model iv).
type RBF struct {
	// Sigma is the bandwidth σ; it must be positive.
	Sigma float64
}

var _ Kernel = RBF{}

// Eval returns the RBF similarity.
func (k RBF) Eval(a, b []float64) float64 {
	if k.Sigma <= 0 {
		panic(fmt.Sprintf("regress: RBF sigma %v must be positive", k.Sigma))
	}
	var d2 float64
	for i := range a {
		d := a[i] - b[i]
		d2 += d * d
	}
	return math.Exp(-d2 / (2 * k.Sigma * k.Sigma))
}

// String names the kernel.
func (k RBF) String() string { return fmt.Sprintf("rbf(sigma=%g)", k.Sigma) }

// Polynomial is the two-degree polynomial kernel (⟨a,b⟩ + c)^p of the
// paper's Eq. 2 (degree 2, the "SVR Polynomial Kernel" rows).
type Polynomial struct {
	Degree int
	Coef0  float64
}

var _ Kernel = Polynomial{}

// Eval returns the polynomial similarity.
func (k Polynomial) Eval(a, b []float64) float64 {
	if k.Degree <= 0 {
		panic(fmt.Sprintf("regress: polynomial degree %d must be positive", k.Degree))
	}
	var dot float64
	for i := range a {
		dot += a[i] * b[i]
	}
	out := 1.0
	base := dot + k.Coef0
	for i := 0; i < k.Degree; i++ {
		out *= base
	}
	return out
}

// String names the kernel.
func (k Polynomial) String() string {
	return fmt.Sprintf("poly(degree=%d, coef0=%g)", k.Degree, k.Coef0)
}

// LinearKernel is the plain inner product, available for completeness
// and for testing SVR against OLS behavior.
type LinearKernel struct{}

var _ Kernel = LinearKernel{}

// Eval returns ⟨a, b⟩.
func (LinearKernel) Eval(a, b []float64) float64 {
	var dot float64
	for i := range a {
		dot += a[i] * b[i]
	}
	return dot
}

// String names the kernel.
func (LinearKernel) String() string { return "linear" }
