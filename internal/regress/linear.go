package regress

import "fmt"

// Linear is ordinary least-squares linear regression with intercept:
// the paper's univariate (S = a·C + b) and multivariate
// (S = a·Cm + b·Cgpu + c) step-time models, and models (i)–(iii) of
// the checkpoint study.
//
// The zero value is ready to Fit.
type Linear struct {
	// Coef holds the fitted feature weights; Intercept the bias term.
	Coef      []float64
	Intercept float64
	fitted    bool
}

var _ Regressor = (*Linear)(nil)

// Fit solves the normal equations (XᵀX)β = Xᵀy with an intercept
// column, using Gaussian elimination with partial pivoting. It returns
// an error for degenerate inputs (empty, ragged, or singular —
// e.g. a constant feature duplicated by the intercept).
func (l *Linear) Fit(X [][]float64, y []float64) error {
	n, d, err := checkMatrix(X, y)
	if err != nil {
		return err
	}
	if n < d+1 {
		return fmt.Errorf("regress: %d samples cannot determine %d coefficients", n, d+1)
	}
	// Augmented design: intercept first.
	dim := d + 1
	ata := make([][]float64, dim)
	for i := range ata {
		ata[i] = make([]float64, dim)
	}
	aty := make([]float64, dim)
	row := make([]float64, dim)
	for s := 0; s < n; s++ {
		row[0] = 1
		copy(row[1:], X[s])
		for i := 0; i < dim; i++ {
			for j := 0; j < dim; j++ {
				ata[i][j] += row[i] * row[j]
			}
			aty[i] += row[i] * y[s]
		}
	}
	beta, err := solveLinearSystem(ata, aty)
	if err != nil {
		return err
	}
	l.Intercept = beta[0]
	l.Coef = beta[1:]
	l.fitted = true
	return nil
}

// Predict returns the fitted linear combination.
func (l *Linear) Predict(x []float64) float64 {
	if !l.fitted {
		panic("regress: Linear.Predict before Fit")
	}
	if len(x) != len(l.Coef) {
		panic(fmt.Sprintf("regress: Predict with %d features, fitted with %d", len(x), len(l.Coef)))
	}
	out := l.Intercept
	for i, c := range l.Coef {
		out += c * x[i]
	}
	return out
}

// solveLinearSystem solves Ax = b by Gaussian elimination with partial
// pivoting, mutating copies of its inputs.
func solveLinearSystem(A [][]float64, b []float64) ([]float64, error) {
	n := len(A)
	// Work on copies to keep the caller's accumulators intact.
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n+1)
		copy(m[i], A[i])
		m[i][n] = b[i]
	}
	const tiny = 1e-12
	for col := 0; col < n; col++ {
		// Partial pivot.
		pivot := col
		for r := col + 1; r < n; r++ {
			if abs(m[r][col]) > abs(m[pivot][col]) {
				pivot = r
			}
		}
		if abs(m[pivot][col]) < tiny {
			return nil, fmt.Errorf("regress: singular system (column %d)", col)
		}
		m[col], m[pivot] = m[pivot], m[col]
		for r := col + 1; r < n; r++ {
			f := m[r][col] / m[col][col]
			if f == 0 {
				continue
			}
			for c := col; c <= n; c++ {
				m[r][c] -= f * m[col][c]
			}
		}
	}
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		sum := m[i][n]
		for j := i + 1; j < n; j++ {
			sum -= m[i][j] * x[j]
		}
		x[i] = sum / m[i][i]
	}
	return x, nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
