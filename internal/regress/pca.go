package regress

import (
	"fmt"
	"math"
	"sort"
)

// PCA projects centered data onto its top principal components. The
// paper uses two-component PCA to decorrelate the three checkpoint
// file sizes (data, meta, index) before linear regression (Table IV,
// model iii).
type PCA struct {
	// Components is the requested output dimension.
	Components int

	means  []float64
	basis  [][]float64 // Components rows × d columns
	evals  []float64
	fitted bool
}

// Fit learns the projection from rows X.
func (p *PCA) Fit(X [][]float64) error {
	n, d, err := checkMatrix(X, make([]float64, len(X)))
	if err != nil {
		return err
	}
	if p.Components <= 0 || p.Components > d {
		return fmt.Errorf("regress: PCA components %d outside [1, %d]", p.Components, d)
	}
	if n < 2 {
		return fmt.Errorf("regress: PCA needs at least two samples")
	}
	p.means = make([]float64, d)
	for _, row := range X {
		for j, v := range row {
			p.means[j] += v
		}
	}
	for j := range p.means {
		p.means[j] /= float64(n)
	}
	// Covariance matrix.
	cov := make([][]float64, d)
	for i := range cov {
		cov[i] = make([]float64, d)
	}
	for _, row := range X {
		for i := 0; i < d; i++ {
			di := row[i] - p.means[i]
			for j := i; j < d; j++ {
				cov[i][j] += di * (row[j] - p.means[j])
			}
		}
	}
	for i := 0; i < d; i++ {
		for j := i; j < d; j++ {
			cov[i][j] /= float64(n - 1)
			cov[j][i] = cov[i][j]
		}
	}
	evals, evecs := jacobiEigen(cov)
	// Sort eigenpairs by descending eigenvalue.
	idx := make([]int, d)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return evals[idx[a]] > evals[idx[b]] })
	p.basis = make([][]float64, p.Components)
	p.evals = make([]float64, p.Components)
	for c := 0; c < p.Components; c++ {
		col := idx[c]
		p.evals[c] = evals[col]
		vec := make([]float64, d)
		for r := 0; r < d; r++ {
			vec[r] = evecs[r][col]
		}
		p.basis[c] = vec
	}
	p.fitted = true
	return nil
}

// Transform projects one vector onto the fitted components.
func (p *PCA) Transform(x []float64) []float64 {
	if !p.fitted {
		panic("regress: PCA.Transform before Fit")
	}
	if len(x) != len(p.means) {
		panic(fmt.Sprintf("regress: Transform with %d features, fitted with %d", len(x), len(p.means)))
	}
	out := make([]float64, p.Components)
	for c, vec := range p.basis {
		var dot float64
		for j := range x {
			dot += (x[j] - p.means[j]) * vec[j]
		}
		out[c] = dot
	}
	return out
}

// TransformAll projects every row.
func (p *PCA) TransformAll(X [][]float64) [][]float64 {
	out := make([][]float64, len(X))
	for i, row := range X {
		out[i] = p.Transform(row)
	}
	return out
}

// ExplainedVariance returns the eigenvalues of the kept components.
func (p *PCA) ExplainedVariance() []float64 {
	out := make([]float64, len(p.evals))
	copy(out, p.evals)
	return out
}

// jacobiEigen diagonalizes a symmetric matrix with the cyclic Jacobi
// rotation method, returning eigenvalues and the matrix of column
// eigenvectors. The matrices here are tiny (d ≤ 3 in the paper's use),
// where Jacobi is both simple and numerically excellent.
func jacobiEigen(a [][]float64) (evals []float64, evecs [][]float64) {
	d := len(a)
	m := make([][]float64, d)
	for i := range m {
		m[i] = make([]float64, d)
		copy(m[i], a[i])
	}
	v := make([][]float64, d)
	for i := range v {
		v[i] = make([]float64, d)
		v[i][i] = 1
	}
	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		var off float64
		for i := 0; i < d; i++ {
			for j := i + 1; j < d; j++ {
				off += m[i][j] * m[i][j]
			}
		}
		if off < 1e-20 {
			break
		}
		for p := 0; p < d; p++ {
			for q := p + 1; q < d; q++ {
				if math.Abs(m[p][q]) < 1e-18 {
					continue
				}
				theta := (m[q][q] - m[p][p]) / (2 * m[p][q])
				t := sign(theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				rotate(m, v, p, q, c, s, d)
			}
		}
	}
	evals = make([]float64, d)
	for i := 0; i < d; i++ {
		evals[i] = m[i][i]
	}
	return evals, v
}

// rotate applies the Jacobi rotation G(p,q,θ) to m (two-sided) and v
// (one-sided accumulation of eigenvectors).
func rotate(m, v [][]float64, p, q int, c, s float64, d int) {
	for k := 0; k < d; k++ {
		mkp, mkq := m[k][p], m[k][q]
		m[k][p] = c*mkp - s*mkq
		m[k][q] = s*mkp + c*mkq
	}
	for k := 0; k < d; k++ {
		mpk, mqk := m[p][k], m[q][k]
		m[p][k] = c*mpk - s*mqk
		m[q][k] = s*mpk + c*mqk
	}
	for k := 0; k < d; k++ {
		vkp, vkq := v[k][p], v[k][q]
		v[k][p] = c*vkp - s*vkq
		v[k][q] = s*vkp + c*vkq
	}
}

func sign(x float64) float64 {
	if x < 0 {
		return -1
	}
	return 1
}

// PCARegressor chains PCA preprocessing with linear regression, the
// paper's Table IV model (iii).
type PCARegressor struct {
	Components int

	pca PCA
	lin Linear
}

var _ Regressor = (*PCARegressor)(nil)

// Fit learns the projection on X and the regression on the projected
// features.
func (p *PCARegressor) Fit(X [][]float64, y []float64) error {
	p.pca = PCA{Components: p.Components}
	if err := p.pca.Fit(X); err != nil {
		return err
	}
	p.lin = Linear{}
	return p.lin.Fit(p.pca.TransformAll(X), y)
}

// Predict projects and regresses.
func (p *PCARegressor) Predict(x []float64) float64 {
	return p.lin.Predict(p.pca.Transform(x))
}
