// Package regress implements the regression toolkit the paper's
// performance models are built from (§III-B, §IV-C): ordinary
// least-squares linear regression (univariate and multivariate),
// ε-insensitive support vector regression with polynomial and RBF
// kernels, principal component analysis for feature preprocessing,
// min-max normalization, k-fold cross-validation, and grid search
// over SVR hyperparameters.
//
// Everything is implemented from scratch on the standard library; the
// datasets involved are tiny (twenty models), so clarity and
// robustness are preferred over asymptotic speed.
package regress

import "fmt"

// Regressor is a trainable single-output prediction model.
type Regressor interface {
	// Fit trains on rows X (n samples × d features) and targets y.
	Fit(X [][]float64, y []float64) error
	// Predict returns the model output for one feature vector. It
	// panics if called before a successful Fit or with the wrong
	// dimension, both of which are programming errors.
	Predict(x []float64) float64
}

// PredictAll applies the regressor to every row.
func PredictAll(r Regressor, X [][]float64) []float64 {
	out := make([]float64, len(X))
	for i, x := range X {
		out[i] = r.Predict(x)
	}
	return out
}

// checkMatrix validates a design matrix and target vector.
func checkMatrix(X [][]float64, y []float64) (n, d int, err error) {
	n = len(X)
	if n == 0 {
		return 0, 0, fmt.Errorf("regress: empty training set")
	}
	if len(y) != n {
		return 0, 0, fmt.Errorf("regress: %d rows but %d targets", n, len(y))
	}
	d = len(X[0])
	if d == 0 {
		return 0, 0, fmt.Errorf("regress: zero-dimensional features")
	}
	for i, row := range X {
		if len(row) != d {
			return 0, 0, fmt.Errorf("regress: row %d has %d features, want %d", i, len(row), d)
		}
	}
	return n, d, nil
}

// Column extracts one feature column as a vector, a convenience for
// assembling univariate models from a shared dataset.
func Column(X [][]float64, j int) []float64 {
	out := make([]float64, len(X))
	for i, row := range X {
		out[i] = row[j]
	}
	return out
}

// AsMatrix lifts a single feature vector into an n×1 design matrix.
func AsMatrix(xs []float64) [][]float64 {
	out := make([][]float64, len(xs))
	for i, x := range xs {
		out[i] = []float64{x}
	}
	return out
}
