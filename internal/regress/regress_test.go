package regress

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

func TestLinearRecoversExactLine(t *testing.T) {
	// y = 3x + 2, no noise: OLS must recover coefficients exactly.
	X := AsMatrix([]float64{0, 1, 2, 3, 4})
	y := []float64{2, 5, 8, 11, 14}
	var l Linear
	if err := l.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if math.Abs(l.Coef[0]-3) > 1e-9 || math.Abs(l.Intercept-2) > 1e-9 {
		t.Fatalf("fit = %vx + %v, want 3x + 2", l.Coef[0], l.Intercept)
	}
	if got := l.Predict([]float64{10}); math.Abs(got-32) > 1e-9 {
		t.Fatalf("Predict(10) = %v, want 32", got)
	}
}

func TestLinearMultivariate(t *testing.T) {
	// y = 2a - b + 0.5.
	X := [][]float64{{1, 1}, {2, 1}, {1, 3}, {4, 2}, {3, 5}, {0, 2}}
	y := make([]float64, len(X))
	for i, r := range X {
		y[i] = 2*r[0] - r[1] + 0.5
	}
	var l Linear
	if err := l.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if math.Abs(l.Coef[0]-2) > 1e-9 || math.Abs(l.Coef[1]+1) > 1e-9 || math.Abs(l.Intercept-0.5) > 1e-9 {
		t.Fatalf("fit = %v + %v, want [2 -1] + 0.5", l.Coef, l.Intercept)
	}
}

func TestLinearRejectsDegenerateInputs(t *testing.T) {
	var l Linear
	if err := l.Fit(nil, nil); err == nil {
		t.Error("empty fit should error")
	}
	if err := l.Fit([][]float64{{1}, {2}}, []float64{1}); err == nil {
		t.Error("length mismatch should error")
	}
	if err := l.Fit([][]float64{{1, 2}, {2, 3}}, []float64{1, 2}); err == nil {
		t.Error("underdetermined system should error")
	}
	// Constant feature duplicates the intercept → singular.
	if err := l.Fit([][]float64{{1}, {1}, {1}}, []float64{1, 2, 3}); err == nil {
		t.Error("singular system should error")
	}
}

func TestLinearPredictPanicsBeforeFit(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Predict before Fit should panic")
		}
	}()
	var l Linear
	l.Predict([]float64{1})
}

// Property: OLS residuals are orthogonal to each feature column and
// sum to zero (normal equations).
func TestQuickOLSNormalEquations(t *testing.T) {
	f := func(seed int64) bool {
		rng := stats.NewRng(seed)
		n := 12 + rng.Intn(20)
		X := make([][]float64, n)
		y := make([]float64, n)
		for i := range X {
			X[i] = []float64{rng.Uniform(-5, 5), rng.Uniform(-5, 5)}
			y[i] = 1.5*X[i][0] - 2*X[i][1] + rng.Normal(0, 1)
		}
		var l Linear
		if err := l.Fit(X, y); err != nil {
			return true // degenerate draw
		}
		var sumRes, dot0, dot1 float64
		for i := range X {
			r := y[i] - l.Predict(X[i])
			sumRes += r
			dot0 += r * X[i][0]
			dot1 += r * X[i][1]
		}
		tol := 1e-6 * float64(n)
		return math.Abs(sumRes) < tol && math.Abs(dot0) < tol && math.Abs(dot1) < tol
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestKernels(t *testing.T) {
	a, b := []float64{1, 0}, []float64{0, 1}
	rbf := RBF{Sigma: 1}
	if got := rbf.Eval(a, a); math.Abs(got-1) > 1e-12 {
		t.Fatalf("RBF(a,a) = %v, want 1", got)
	}
	want := math.Exp(-1) // ‖a-b‖²=2, 2σ²=2
	if got := rbf.Eval(a, b); math.Abs(got-want) > 1e-12 {
		t.Fatalf("RBF(a,b) = %v, want %v", got, want)
	}
	poly := Polynomial{Degree: 2, Coef0: 1}
	if got := poly.Eval(a, b); math.Abs(got-1) > 1e-12 { // (0+1)²
		t.Fatalf("poly(a,b) = %v, want 1", got)
	}
	if got := poly.Eval(a, a); math.Abs(got-4) > 1e-12 { // (1+1)²
		t.Fatalf("poly(a,a) = %v, want 4", got)
	}
	if got := (LinearKernel{}).Eval([]float64{2, 3}, []float64{4, 5}); got != 23 {
		t.Fatalf("linear kernel = %v, want 23", got)
	}
}

func TestSVRFitsNonlinearFunction(t *testing.T) {
	// SVR with an RBF kernel should fit a smooth nonlinear curve far
	// better than a straight line — the paper's Table II finding.
	rng := stats.NewRng(1)
	var X [][]float64
	var y []float64
	for i := 0; i < 40; i++ {
		x := rng.Uniform(0, 1)
		X = append(X, []float64{x})
		y = append(y, math.Sin(4*x)+0.5*x)
	}
	svr := &SVR{Kernel: RBF{Sigma: 0.2}, C: 50, Epsilon: 0.01}
	if err := svr.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	var lin Linear
	if err := lin.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	svrMAE := stats.MAE(PredictAll(svr, X), y)
	linMAE := stats.MAE(PredictAll(&lin, X), y)
	if svrMAE > 0.05 {
		t.Errorf("SVR-RBF training MAE = %.4f, want < 0.05", svrMAE)
	}
	if svrMAE > linMAE/3 {
		t.Errorf("SVR-RBF MAE %.4f should be well below linear MAE %.4f", svrMAE, linMAE)
	}
	if svr.SupportVectors() == 0 || svr.SupportVectors() > len(X) {
		t.Errorf("support vectors = %d, want in (0, %d]", svr.SupportVectors(), len(X))
	}
}

func TestSVREpsilonInsensitivity(t *testing.T) {
	// With a huge ε every point sits inside the tube and the model is
	// identically zero (no support vectors).
	X := AsMatrix([]float64{0, 0.5, 1})
	y := []float64{0.1, 0.2, 0.15}
	svr := &SVR{Kernel: RBF{Sigma: 1}, C: 10, Epsilon: 10}
	if err := svr.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if svr.SupportVectors() != 0 {
		t.Fatalf("support vectors = %d, want 0 inside a wide tube", svr.SupportVectors())
	}
	if got := svr.Predict([]float64{0.3}); got != 0 {
		t.Fatalf("Predict = %v, want 0", got)
	}
}

func TestSVRValidation(t *testing.T) {
	if err := (&SVR{C: 1, Epsilon: 0.1}).Fit(AsMatrix([]float64{1}), []float64{1}); err == nil {
		t.Error("missing kernel should error")
	}
	if err := (&SVR{Kernel: RBF{Sigma: 1}, C: 0}).Fit(AsMatrix([]float64{1}), []float64{1}); err == nil {
		t.Error("non-positive C should error")
	}
	if err := (&SVR{Kernel: RBF{Sigma: 1}, C: 1, Epsilon: -1}).Fit(AsMatrix([]float64{1}), []float64{1}); err == nil {
		t.Error("negative epsilon should error")
	}
}

// Property: SVR training residuals never exceed ε + slack justified by
// C: with large C and ε=0.05, training residuals stay within a small
// multiple of ε for a smooth target.
func TestQuickSVRResidualBound(t *testing.T) {
	f := func(seed int64) bool {
		rng := stats.NewRng(seed)
		var X [][]float64
		var y []float64
		for i := 0; i < 25; i++ {
			x := rng.Uniform(0, 1)
			X = append(X, []float64{x})
			y = append(y, 0.5*x+0.2) // linear, easily fit
		}
		svr := &SVR{Kernel: RBF{Sigma: 0.5}, C: 100, Epsilon: 0.05}
		if err := svr.Fit(X, y); err != nil {
			return false
		}
		for i := range X {
			if math.Abs(svr.Predict(X[i])-y[i]) > 0.06 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestMinMaxScaler(t *testing.T) {
	X := [][]float64{{0, 10}, {5, 20}, {10, 30}}
	var m MinMaxScaler
	scaled, err := m.FitTransform(X)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]float64{{0, 0}, {0.5, 0.5}, {1, 1}}
	for i := range want {
		for j := range want[i] {
			if math.Abs(scaled[i][j]-want[i][j]) > 1e-12 {
				t.Fatalf("scaled = %v, want %v", scaled, want)
			}
		}
	}
	// Out-of-range extrapolates.
	if got := m.Transform([]float64{20, 10})[0]; math.Abs(got-2) > 1e-12 {
		t.Fatalf("extrapolated = %v, want 2", got)
	}
	// Constant feature maps to zero.
	var m2 MinMaxScaler
	out, err := m2.FitTransform([][]float64{{7}, {7}})
	if err != nil {
		t.Fatal(err)
	}
	if out[0][0] != 0 || out[1][0] != 0 {
		t.Fatalf("constant feature scaled to %v, want 0", out)
	}
}

// Property: min-max scaling of the fitted data always lands in [0,1].
func TestQuickMinMaxBounds(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		var m MinMaxScaler
		scaled, err := m.FitTransform(AsMatrix(xs))
		if err != nil {
			return true
		}
		for _, row := range scaled {
			if row[0] < 0 || row[0] > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPCARecoversDominantDirection(t *testing.T) {
	// Data varies along (1,1)/√2 with tiny noise orthogonally; the
	// first component must align with it.
	rng := stats.NewRng(7)
	var X [][]float64
	for i := 0; i < 200; i++ {
		tv := rng.Normal(0, 3)
		n := rng.Normal(0, 0.05)
		X = append(X, []float64{tv + n, tv - n})
	}
	p := PCA{Components: 1}
	if err := p.Fit(X); err != nil {
		t.Fatal(err)
	}
	v := p.basis[0]
	// Component is defined up to sign.
	align := math.Abs(v[0]*1/math.Sqrt2 + v[1]*1/math.Sqrt2)
	if align < 0.999 {
		t.Fatalf("first component %v misaligned with (1,1)/√2 (|cos| = %v)", v, align)
	}
	ev := p.ExplainedVariance()
	if ev[0] < 8 { // var of N(0,3) along the direction ≈ 9×2... ≥ 8 is safe
		t.Fatalf("explained variance = %v, want large", ev[0])
	}
}

func TestPCARegressorMatchesLinearOnFullRank(t *testing.T) {
	// Keeping all components, PCA regression equals plain OLS.
	rng := stats.NewRng(11)
	var X [][]float64
	var y []float64
	for i := 0; i < 30; i++ {
		a, b := rng.Uniform(0, 10), rng.Uniform(0, 5)
		X = append(X, []float64{a, b})
		y = append(y, 2*a-b+1)
	}
	p := &PCARegressor{Components: 2}
	if err := p.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	var l Linear
	if err := l.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	probe := []float64{3, 4}
	if math.Abs(p.Predict(probe)-l.Predict(probe)) > 1e-6 {
		t.Fatalf("PCA(2 of 2) predict %v, OLS %v — should match", p.Predict(probe), l.Predict(probe))
	}
}

func TestPCAValidation(t *testing.T) {
	p := PCA{Components: 3}
	if err := p.Fit([][]float64{{1, 2}, {3, 4}}); err == nil {
		t.Error("components > dims should error")
	}
	p = PCA{Components: 1}
	if err := p.Fit([][]float64{{1, 2}}); err == nil {
		t.Error("single sample should error")
	}
}

func TestKFoldPartitions(t *testing.T) {
	rng := stats.NewRng(3)
	folds, err := KFold(10, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int]bool)
	for _, fold := range folds {
		for _, idx := range fold {
			if seen[idx] {
				t.Fatalf("index %d appears in two folds", idx)
			}
			seen[idx] = true
		}
	}
	if len(seen) != 10 {
		t.Fatalf("folds cover %d indices, want 10", len(seen))
	}
	if _, err := KFold(3, 5, rng); err == nil {
		t.Fatal("k > n should error")
	}
}

func TestTrainTestSplit(t *testing.T) {
	rng := stats.NewRng(5)
	X := AsMatrix([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	y := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	trX, trY, teX, teY, err := TrainTestSplit(X, y, 0.8, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(trX) != 8 || len(teX) != 2 || len(trY) != 8 || len(teY) != 2 {
		t.Fatalf("split sizes = %d/%d", len(trX), len(teX))
	}
	// Pairing preserved.
	for i := range trX {
		if trX[i][0] != trY[i] {
			t.Fatal("train pairing broken")
		}
	}
	if _, _, _, _, err := TrainTestSplit(X, y, 1.5, rng); err == nil {
		t.Fatal("bad fraction should error")
	}
}

func TestCrossValMAEPerfectModel(t *testing.T) {
	// A linear target cross-validated with a linear model: MAE ≈ 0.
	X := AsMatrix([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12})
	y := make([]float64, 12)
	for i := range y {
		y[i] = 4*X[i][0] - 7
	}
	mean, std, err := CrossValMAE(func() Regressor { return &Linear{} }, X, y, 4, stats.NewRng(2))
	if err != nil {
		t.Fatal(err)
	}
	if mean > 1e-9 || std > 1e-9 {
		t.Fatalf("CV MAE = %v ± %v, want ≈0", mean, std)
	}
}

func TestGridSearchSVRFindsLowErrorModel(t *testing.T) {
	rng := stats.NewRng(13)
	var X [][]float64
	var y []float64
	for i := 0; i < 30; i++ {
		x := rng.Uniform(0, 1)
		X = append(X, []float64{x})
		y = append(y, x*x+0.1)
	}
	factory, c, eps, mae, err := GridSearchSVR(RBF{Sigma: 0.3}, PaperSVRGrid(), X, y, 5, stats.NewRng(17))
	if err != nil {
		t.Fatal(err)
	}
	if c < 10 || c > 100 || eps < 0.01 || eps > 0.1 {
		t.Fatalf("chosen (C, ε) = (%v, %v) outside the paper's grid", c, eps)
	}
	if mae > 0.06 {
		t.Fatalf("grid-search CV MAE = %v, want small", mae)
	}
	m := factory()
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if got := m.Predict([]float64{0.5}); math.Abs(got-0.35) > 0.1 {
		t.Fatalf("best model Predict(0.5) = %v, want ≈0.35", got)
	}
}

func TestColumnAndAsMatrix(t *testing.T) {
	X := [][]float64{{1, 2}, {3, 4}}
	col := Column(X, 1)
	if col[0] != 2 || col[1] != 4 {
		t.Fatalf("Column = %v", col)
	}
	m := AsMatrix([]float64{5, 6})
	if m[0][0] != 5 || m[1][0] != 6 {
		t.Fatalf("AsMatrix = %v", m)
	}
}
