package regress

import "fmt"

// MinMaxScaler rescales each feature to [0, 1] over the fitted range,
// the paper's preprocessing for step-time features (§III-B; the paper
// notes z-score standardization was rejected because the data is not
// Gaussian).
type MinMaxScaler struct {
	mins, maxs []float64
	fitted     bool
}

// Fit learns per-feature ranges.
func (m *MinMaxScaler) Fit(X [][]float64) error {
	n, d, err := checkMatrix(X, make([]float64, len(X)))
	if err != nil {
		return err
	}
	_ = n
	m.mins = make([]float64, d)
	m.maxs = make([]float64, d)
	for j := 0; j < d; j++ {
		m.mins[j] = X[0][j]
		m.maxs[j] = X[0][j]
	}
	for _, row := range X {
		for j, v := range row {
			if v < m.mins[j] {
				m.mins[j] = v
			}
			if v > m.maxs[j] {
				m.maxs[j] = v
			}
		}
	}
	m.fitted = true
	return nil
}

// Transform rescales one vector using the fitted ranges. Constant
// features map to 0. Values outside the fitted range extrapolate
// beyond [0, 1], which is what a deployed model sees on an unseen
// larger CNN.
func (m *MinMaxScaler) Transform(x []float64) []float64 {
	if !m.fitted {
		panic("regress: MinMaxScaler.Transform before Fit")
	}
	if len(x) != len(m.mins) {
		panic(fmt.Sprintf("regress: Transform with %d features, fitted with %d", len(x), len(m.mins)))
	}
	out := make([]float64, len(x))
	for j, v := range x {
		span := m.maxs[j] - m.mins[j]
		if span == 0 {
			out[j] = 0
			continue
		}
		out[j] = (v - m.mins[j]) / span
	}
	return out
}

// TransformAll rescales every row.
func (m *MinMaxScaler) TransformAll(X [][]float64) [][]float64 {
	out := make([][]float64, len(X))
	for i, row := range X {
		out[i] = m.Transform(row)
	}
	return out
}

// FitTransform fits and transforms in one call.
func (m *MinMaxScaler) FitTransform(X [][]float64) ([][]float64, error) {
	if err := m.Fit(X); err != nil {
		return nil, err
	}
	return m.TransformAll(X), nil
}
