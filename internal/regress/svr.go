package regress

import (
	"fmt"
	"math"
)

// SVR is ε-insensitive support vector regression, the model family the
// paper finds most accurate for both step-time (Table II) and
// checkpoint-time (Table IV) prediction.
//
// The dual is solved by exact coordinate descent on the
// bias-augmented kernel K'(a,b) = K(a,b) + 1, which absorbs the
// intercept into the RKHS and removes the equality constraint, leaving
// a box-constrained concave quadratic that coordinate descent solves
// to optimality. The fitted model is
//
//	f(x) = Σ_i β_i (K(x_i, x) + 1),  β_i ∈ [-C, C],
//
// where non-zero β_i identify the support vectors (the α_i − α*_i of
// the paper's Eqs. 2–3).
type SVR struct {
	// Kernel is the similarity function; required.
	Kernel Kernel
	// C is the penalty (the paper's p, grid-searched over [10, 100]).
	C float64
	// Epsilon is the insensitivity width (grid-searched over
	// [0.01, 0.1]).
	Epsilon float64
	// MaxIter bounds coordinate-descent sweeps (default 1000).
	MaxIter int
	// Tol is the convergence threshold on the largest coefficient
	// change in a sweep (default 1e-6).
	Tol float64

	beta   []float64
	train  [][]float64
	fitted bool
}

var _ Regressor = (*SVR)(nil)

// Fit trains the model on X, y.
func (s *SVR) Fit(X [][]float64, y []float64) error {
	if s.Kernel == nil {
		return fmt.Errorf("regress: SVR requires a kernel")
	}
	if s.C <= 0 {
		return fmt.Errorf("regress: SVR penalty C=%v must be positive", s.C)
	}
	if s.Epsilon < 0 {
		return fmt.Errorf("regress: SVR epsilon %v must be non-negative", s.Epsilon)
	}
	n, _, err := checkMatrix(X, y)
	if err != nil {
		return err
	}
	maxIter := s.MaxIter
	if maxIter == 0 {
		maxIter = 1000
	}
	tol := s.Tol
	if tol == 0 {
		tol = 1e-6
	}

	// Precompute the bias-augmented Gram matrix.
	gram := make([][]float64, n)
	for i := range gram {
		gram[i] = make([]float64, n)
		for j := 0; j <= i; j++ {
			v := s.Kernel.Eval(X[i], X[j]) + 1
			gram[i][j] = v
			gram[j][i] = v
		}
	}

	beta := make([]float64, n)
	// f holds the current prediction at each training point.
	f := make([]float64, n)
	for iter := 0; iter < maxIter; iter++ {
		var maxDelta float64
		for i := 0; i < n; i++ {
			kii := gram[i][i]
			if kii <= 0 {
				return fmt.Errorf("regress: kernel is not positive on sample %d", i)
			}
			// Residual excluding i's own contribution.
			r := y[i] - (f[i] - beta[i]*kii)
			// Maximize the dual in β_i alone: soft-threshold by ε,
			// scale by K'_ii, clip to the box.
			var next float64
			switch {
			case r > s.Epsilon:
				next = (r - s.Epsilon) / kii
			case r < -s.Epsilon:
				next = (r + s.Epsilon) / kii
			default:
				next = 0
			}
			next = clamp(next, -s.C, s.C)
			delta := next - beta[i]
			if delta == 0 {
				continue
			}
			beta[i] = next
			for j := 0; j < n; j++ {
				f[j] += delta * gram[i][j]
			}
			if ad := math.Abs(delta); ad > maxDelta {
				maxDelta = ad
			}
		}
		if maxDelta < tol {
			break
		}
	}

	// Retain only support vectors for prediction.
	s.beta = s.beta[:0]
	s.train = s.train[:0]
	for i, b := range beta {
		if b != 0 {
			s.beta = append(s.beta, b)
			row := make([]float64, len(X[i]))
			copy(row, X[i])
			s.train = append(s.train, row)
		}
	}
	s.fitted = true
	return nil
}

// Predict evaluates the fitted function.
func (s *SVR) Predict(x []float64) float64 {
	if !s.fitted {
		panic("regress: SVR.Predict before Fit")
	}
	var out float64
	for i, sv := range s.train {
		out += s.beta[i] * (s.Kernel.Eval(sv, x) + 1)
	}
	return out
}

// SupportVectors returns how many training points carry non-zero dual
// weight.
func (s *SVR) SupportVectors() int { return len(s.beta) }

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
