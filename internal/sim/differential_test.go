package sim

// Differential property test: the optimized kernel (pooled slots,
// monomorphic 4-ary heap, lazy-deletion compaction, fire-and-forget
// FnID lane) against a retained reference implementation — the
// straightforward container/heap kernel the package started from.
// Both run identical randomized schedule/cancel/reschedule/run
// scripts; every observable must match: fire order, fire timestamps,
// FiredEvents, the clock, and the pending count (which doubles as the
// O(n)-scan oracle for the kernel's O(1) Pending counter).

import (
	"container/heap"
	"math/rand"
	"testing"
)

// --- reference implementation (pre-optimization design, retained) ---

type refEvent struct {
	at       Time
	seq      uint64
	fn       func()
	canceled bool
	index    int
}

type refQueue []*refEvent

func (q refQueue) Len() int { return len(q) }
func (q refQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q refQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *refQueue) Push(x any) {
	e := x.(*refEvent)
	e.index = len(*q)
	*q = append(*q, e)
}
func (q *refQueue) Pop() any {
	old := *q
	n := len(old) - 1
	e := old[n]
	old[n] = nil
	*q = old[:n]
	return e
}

type refKernel struct {
	now   Time
	seq   uint64
	fired uint64
	q     refQueue
}

func (k *refKernel) at(t Time, fn func()) *refEvent {
	e := &refEvent{at: t, seq: k.seq, fn: fn}
	k.seq++
	heap.Push(&k.q, e)
	return e
}

func (k *refKernel) step() bool {
	for len(k.q) > 0 {
		e := heap.Pop(&k.q).(*refEvent)
		if e.canceled {
			continue
		}
		k.now = e.at
		k.fired++
		e.fn()
		return true
	}
	return false
}

func (k *refKernel) runUntil(t Time) {
	for len(k.q) > 0 {
		e := k.q[0]
		if e.at > t {
			break
		}
		heap.Pop(&k.q)
		if e.canceled {
			continue
		}
		k.now = e.at
		k.fired++
		e.fn()
	}
	k.now = t
}

func (k *refKernel) run() {
	for k.step() {
	}
}

func (k *refKernel) pending() int {
	n := 0
	for _, e := range k.q {
		if !e.canceled {
			n++
		}
	}
	return n
}

// --- a common driver API over both kernels ---

// kernelAPI is the observable surface the differential driver
// exercises. schedule returns a cancel thunk so the driver can issue
// cancels and reschedules without knowing which kernel it holds.
type kernelAPI interface {
	now() Time
	schedule(d float64, fn func()) (cancel func())
	post(d float64, fn func()) // fire-and-forget lane
	runUntil(t Time)
	step() bool
	run()
	fired() uint64
	pending() int
}

type optAPI struct{ k *Kernel }

func (a optAPI) now() Time { return a.k.Now() }
func (a optAPI) schedule(d float64, fn func()) func() {
	h := a.k.After(d, fn)
	return h.Cancel
}
func (a optAPI) post(d float64, fn func()) { a.k.PostAfter(d, a.k.Register(fn)) }
func (a optAPI) runUntil(t Time)           { a.k.RunUntil(t) }
func (a optAPI) step() bool                { return a.k.Step() }
func (a optAPI) run()                      { a.k.Run() }
func (a optAPI) fired() uint64             { return a.k.FiredEvents() }
func (a optAPI) pending() int              { return a.k.Pending() }

type refAPI struct{ k *refKernel }

func (a refAPI) now() Time { return a.k.now }
func (a refAPI) schedule(d float64, fn func()) func() {
	e := a.k.at(a.k.now+Time(d), fn)
	return func() { e.canceled = true }
}
func (a refAPI) post(d float64, fn func()) { a.k.at(a.k.now+Time(d), fn) }
func (a refAPI) runUntil(t Time)           { a.k.runUntil(t) }
func (a refAPI) step() bool                { return a.k.step() }
func (a refAPI) run()                      { a.k.run() }
func (a refAPI) fired() uint64             { return a.k.fired }
func (a refAPI) pending() int              { return a.k.pending() }

// --- the op script and its interpreter ---

// op is one scripted action. Delays derive from small non-negative
// byte-sized fields so fuzz inputs map onto valid schedules.
type op struct {
	kind byte
	a, b byte
}

type firing struct {
	id int
	at Time
}

// applyOps drives one kernel through the script and returns everything
// observable: the exact (id, timestamp) fire sequence, plus
// (fired, now, pending) snapshots taken after every op and at the end.
func applyOps(api kernelAPI, ops []op) (log []firing, snaps []uint64) {
	nextID := 0
	var cancels []func()
	record := func(id int) func() {
		return func() { log = append(log, firing{id: id, at: api.now()}) }
	}
	snapshot := func() {
		snaps = append(snaps, api.fired(), uint64(api.pending()), uint64(int64(api.now()*1e6)))
	}
	for _, o := range ops {
		delay := float64(o.a)*0.5 + float64(o.b)*0.01
		switch o.kind % 7 {
		case 0: // cancellable schedule
			id := nextID
			nextID++
			cancels = append(cancels, api.schedule(delay, record(id)))
		case 1: // fire-and-forget schedule
			id := nextID
			nextID++
			api.post(delay, record(id))
		case 2: // chained: firing schedules a follow-up during the run
			id := nextID
			nextID += 2
			api.post(delay, func() {
				log = append(log, firing{id: id, at: api.now()})
				api.post(float64(o.b)*0.25, record(id+1))
			})
		case 3: // cancel one tracked handle (possibly already spent)
			if len(cancels) > 0 {
				cancels[int(o.a)%len(cancels)]()
			}
		case 4: // reschedule: cancel a handle, schedule a replacement
			if len(cancels) > 0 {
				i := int(o.a) % len(cancels)
				cancels[i]()
				id := nextID
				nextID++
				cancels[i] = api.schedule(delay, record(id))
			}
		case 5: // advance the clock through a bounded window
			api.runUntil(api.now() + Time(delay))
		case 6: // single step
			api.step()
		}
		snapshot()
	}
	api.run()
	snapshot()
	return log, snaps
}

// runDifferential asserts both kernels observe identical behavior on
// one script.
func runDifferential(t *testing.T, ops []op) {
	t.Helper()
	optLog, optSnaps := applyOps(optAPI{k: &Kernel{}}, ops)
	refLog, refSnaps := applyOps(refAPI{k: &refKernel{}}, ops)
	if len(optLog) != len(refLog) {
		t.Fatalf("fired %d events, reference fired %d", len(optLog), len(refLog))
	}
	for i := range optLog {
		if optLog[i] != refLog[i] {
			t.Fatalf("firing %d: optimized (id=%d at=%v), reference (id=%d at=%v)",
				i, optLog[i].id, optLog[i].at, refLog[i].id, refLog[i].at)
		}
	}
	if len(optSnaps) != len(refSnaps) {
		t.Fatalf("snapshot count %d vs %d", len(optSnaps), len(refSnaps))
	}
	for i := range optSnaps {
		if optSnaps[i] != refSnaps[i] {
			t.Fatalf("snapshot %d (fired/pending/now triples): optimized %d, reference %d",
				i, optSnaps[i], refSnaps[i])
		}
	}
}

// randomOps generates a seeded script. Cancel-heavy mixes push the
// optimized kernel across its compaction threshold.
func randomOps(seed int64, n int, cancelHeavy bool) []op {
	rng := rand.New(rand.NewSource(seed))
	ops := make([]op, n)
	for i := range ops {
		kind := byte(rng.Intn(7))
		if cancelHeavy && rng.Intn(3) != 0 {
			kind = []byte{0, 3, 4}[rng.Intn(3)] // schedule/cancel/reschedule only
		}
		ops[i] = op{kind: kind, a: byte(rng.Intn(256)), b: byte(rng.Intn(256))}
	}
	return ops
}

// TestDifferentialSeeded is the seeded table: mixed scripts and
// cancel-heavy scripts (which force lazy-deletion compaction) across a
// spread of seeds and sizes.
func TestDifferentialSeeded(t *testing.T) {
	for seed := int64(1); seed <= 12; seed++ {
		runDifferential(t, randomOps(seed, 400, false))
		runDifferential(t, randomOps(seed, 400, true))
	}
	// Long cancel-heavy script: hundreds of live entries, repeated
	// compactions.
	runDifferential(t, randomOps(99, 3000, true))
}

// TestDifferentialTieBreak pins the tricky hand-written cases:
// simultaneous events, cancel-then-fire at the same timestamp, and
// zero-delay chains.
func TestDifferentialTieBreak(t *testing.T) {
	cases := [][]op{
		// Five simultaneous events scheduled in sequence.
		{{0, 10, 0}, {1, 10, 0}, {0, 10, 0}, {1, 10, 0}, {2, 10, 0}},
		// Schedule three at t, cancel the middle, run.
		{{0, 4, 0}, {0, 4, 0}, {0, 4, 0}, {3, 1, 0}},
		// Zero-delay chains firing at the current instant.
		{{2, 0, 0}, {2, 0, 0}, {6, 0, 0}, {2, 0, 0}},
		// Reschedule to an earlier-than-original delay, then step.
		{{0, 200, 0}, {0, 100, 0}, {4, 0, 3}, {6, 0, 0}, {6, 0, 0}},
		// runUntil landing exactly on an event's timestamp.
		{{0, 2, 0}, {5, 2, 0}, {0, 2, 0}, {5, 2, 0}},
	}
	for _, ops := range cases {
		runDifferential(t, ops)
	}
}

// FuzzDifferential decodes arbitrary bytes into an op script (3 bytes
// per op) and requires both kernels to agree.
func FuzzDifferential(f *testing.F) {
	f.Add([]byte{0, 10, 0, 1, 5, 5, 3, 0, 0, 5, 20, 0})
	f.Add([]byte{2, 0, 0, 2, 0, 0, 6, 0, 0})
	for seed := int64(1); seed <= 3; seed++ {
		ops := randomOps(seed, 64, seed == 2)
		buf := make([]byte, 0, len(ops)*3)
		for _, o := range ops {
			buf = append(buf, o.kind, o.a, o.b)
		}
		f.Add(buf)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 3*1024 {
			return // bound script length
		}
		var ops []op
		for i := 0; i+2 < len(data); i += 3 {
			ops = append(ops, op{kind: data[i], a: data[i+1], b: data[i+2]})
		}
		runDifferential(t, ops)
	})
}
