package sim

// Server models a FIFO single-server queueing station in virtual time.
// The training simulator uses one Server per parameter-server shard:
// gradient updates queue and are served one at a time, which is what
// produces the parameter-server bottleneck the paper characterizes
// (Table III, Figs. 4 and 12).
type Server struct {
	k *Kernel
	// busyUntil is the virtual time at which the server finishes all
	// currently accepted work.
	busyUntil Time
	// Served counts completed jobs, BusyTime integrates service time;
	// together they give utilization for bottleneck diagnosis.
	served   uint64
	busyTime float64
}

// NewServer returns a FIFO server bound to the kernel.
func NewServer(k *Kernel) *Server {
	return &Server{k: k}
}

// Submit enqueues a job with the given service time and schedules done
// when the job completes. It returns the completion time. Jobs are
// served in submission order; a job submitted while the server is busy
// waits for all earlier work.
func (s *Server) Submit(service float64, done func()) Time {
	if service < 0 {
		panic("sim: negative service time")
	}
	start := s.k.Now()
	if s.busyUntil > start {
		start = s.busyUntil
	}
	finish := start + Time(service)
	s.busyUntil = finish
	s.busyTime += service
	s.served++
	if done != nil {
		s.k.At(finish, done)
	}
	return finish
}

// SubmitID is Submit with a registered completion callback: the
// per-update hot path, taking the kernel's pointer-free fire-and-
// forget lane. Completions are never cancelled, so no Handle exists.
func (s *Server) SubmitID(service float64, done FnID) Time {
	if service < 0 {
		panic("sim: negative service time")
	}
	start := s.k.Now()
	if s.busyUntil > start {
		start = s.busyUntil
	}
	finish := start + Time(service)
	s.busyUntil = finish
	s.busyTime += service
	s.served++
	s.k.Post(finish, done)
	return finish
}

// QueueDelay returns how long a job submitted now would wait before
// starting service.
func (s *Server) QueueDelay() float64 {
	if s.busyUntil <= s.k.Now() {
		return 0
	}
	return float64(s.busyUntil - s.k.Now())
}

// Served returns the number of completed (or scheduled-to-complete)
// jobs.
func (s *Server) Served() uint64 { return s.served }

// Utilization returns the fraction of virtual time the server has been
// busy since the start of the simulation, or 0 at time zero.
func (s *Server) Utilization() float64 {
	now := s.k.Now().Seconds()
	if now <= 0 {
		return 0
	}
	busy := s.busyTime
	// Work scheduled beyond "now" has not happened yet.
	if s.busyUntil > s.k.Now() {
		busy -= float64(s.busyUntil - s.k.Now())
	}
	if busy < 0 {
		busy = 0
	}
	return busy / now
}
