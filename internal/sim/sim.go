// Package sim provides the discrete-event simulation kernel that the
// cloud and training simulators run on: a virtual clock, an event
// queue with deterministic ordering, and cancellable timers.
//
// The kernel is intentionally single-threaded. Determinism — the same
// seed always producing the same measurement campaign — is a core
// requirement for reproducing the paper's tables, and a single-threaded
// event loop is the simplest way to guarantee it.
//
// The hot path is allocation-free in steady state: event state lives in
// a kernel-owned slab recycled through a free list, scheduling returns
// a generation-stamped Handle value (no *Event on the heap), and the
// queue is an inlined monomorphic 4-ary min-heap of small value structs
// rather than container/heap's boxed interface. Cancellation is lazy —
// a cancelled event stays queued until popped — with a compaction pass
// once cancelled entries outnumber live ones, so Cancel is O(1) and the
// (time, seq) fire order never depends on when cancellations happened.
package sim

import (
	"fmt"
	"math"
)

// Time is a point in virtual time, in seconds since simulation start.
type Time float64

// Seconds returns the time as a float64 second count.
func (t Time) Seconds() float64 { return float64(t) }

// Hours returns the time in hours.
func (t Time) Hours() float64 { return float64(t) / 3600 }

// HourOfDay returns the hour-of-day component in [0, 24), treating
// simulation start as midnight. The cloud simulator offsets this per
// region to model local time zones.
func (t Time) HourOfDay() int {
	h := int(math.Floor(float64(t)/3600)) % 24
	if h < 0 {
		h += 24
	}
	return h
}

// Handle identifies a scheduled event. It is a small value — copying it
// is free and never allocates — stamped with the generation of the
// kernel slot it points at, so a Handle kept after its event fired (and
// its slot was recycled) becomes inert instead of aliasing a stranger's
// event. The zero Handle is valid and refers to no event.
type Handle struct {
	k    *Kernel
	at   Time
	slot int32
	gen  uint64
}

// Cancel prevents the event from firing. Cancelling an event that has
// already fired or been cancelled — or the zero Handle — is a no-op.
func (h Handle) Cancel() {
	k := h.k
	if k == nil {
		return
	}
	s := &k.slots[h.slot]
	if s.gen != h.gen || s.canceled {
		return
	}
	s.canceled = true
	s.fn = nil // release captured state promptly
	k.live--
	k.stale++
	// Lazy deletion keeps Cancel O(1); compact once cancelled entries
	// outnumber live ones so a cancel-heavy workload cannot keep the
	// queue arbitrarily larger than its live set.
	if k.stale*2 > len(k.heap) && len(k.heap) >= compactMinHeap {
		k.compact()
	}
}

// Pending reports whether the event is still scheduled: not yet fired
// and not cancelled.
func (h Handle) Pending() bool {
	if h.k == nil {
		return false
	}
	s := &h.k.slots[h.slot]
	return s.gen == h.gen && !s.canceled
}

// Time returns the virtual time the event was scheduled for.
func (h Handle) Time() Time { return h.at }

// compactMinHeap bounds compaction to queues where the rebuild is worth
// more than the stale entries' pop-and-skip cost.
const compactMinHeap = 64

// heapEntry is one queue position: 4-ary min-heap ordered by (time,
// insertion sequence). The sequence tie-break makes simultaneous events
// fire in scheduling order, which keeps runs reproducible, and makes
// the ordering total — so any valid heap arrangement pops in exactly
// one order, and compaction cannot perturb determinism.
//
// An entry is either cancellable (slot ≥ 0: the callback lives in the
// kernel's slot slab, reachable through Handles) or fire-and-forget
// (slot == anonSlot: id names a callback interned with Register). The
// second form is the hot path — the training step loop never cancels
// its timers — and it skips the slot slab's bookkeeping entirely.
// Carrying an integer id instead of the func value keeps heapEntry
// pointer-free, so sift and pop moves incur no GC write barriers and
// the queue's backing array is never scanned.
type heapEntry struct {
	at   Time
	seq  uint64
	id   FnID // callback table index, set iff slot == anonSlot
	slot int32
}

// anonSlot marks a fire-and-forget entry with no slot behind it.
const anonSlot int32 = -1

// FnID names a callback interned with Kernel.Register. The zero FnID
// is invalid.
type FnID int32

// eventSlot is pooled event state. Slots are recycled through a free
// list; gen increments on every release so stale Handles miss.
type eventSlot struct {
	fn       func()
	gen      uint64
	next     int32 // free-list link, index+1 (0 = end)
	canceled bool
}

// Kernel is the event loop. The zero value is a kernel at time 0 with
// an empty queue, ready to use.
type Kernel struct {
	now   Time
	seq   uint64
	fired uint64

	heap  []heapEntry
	slots []eventSlot
	free  int32 // free-list head, index+1 (0 = empty)
	live  int   // scheduled, uncancelled events
	stale int   // cancelled entries still in heap (lazy deletion)

	// fns is the callback table behind Register/Post: long-lived
	// handlers interned once (per worker, per component) and named by
	// FnID, so the queue itself stays pointer-free.
	fns []func()
}

// Register interns a long-lived callback and returns its id for Post.
// Registered callbacks are retained for the kernel's lifetime; intern
// per-component handlers once, not per event.
func (k *Kernel) Register(fn func()) FnID {
	if fn == nil {
		panic("sim: registering nil callback")
	}
	k.fns = append(k.fns, fn)
	return FnID(len(k.fns))
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// FiredEvents returns how many events have executed, which tests use
// to assert progress and detect runaway schedules.
func (k *Kernel) FiredEvents() uint64 { return k.fired }

// Pending returns the number of scheduled, uncancelled events. It is
// O(1): the kernel maintains the count on schedule, cancel, and fire
// instead of scanning the queue.
func (k *Kernel) Pending() int { return k.live }

// At schedules fn to run at absolute virtual time t. Scheduling in the
// past panics: it always indicates a logic error in a simulator
// component, and firing such events "now" silently corrupts causality.
func (k *Kernel) At(t Time, fn func()) Handle {
	if t < k.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, k.now))
	}
	if fn == nil {
		panic("sim: scheduling nil callback")
	}
	var idx int32
	if k.free != 0 {
		idx = k.free - 1
		k.free = k.slots[idx].next
	} else {
		k.slots = append(k.slots, eventSlot{})
		idx = int32(len(k.slots) - 1)
	}
	s := &k.slots[idx]
	s.fn = fn
	s.canceled = false
	k.heapPush(heapEntry{at: t, seq: k.seq, slot: idx})
	k.seq++
	k.live++
	return Handle{k: k, at: t, slot: idx, gen: s.gen}
}

// After schedules fn to run d seconds from now. Negative delays panic.
func (k *Kernel) After(d float64, fn func()) Handle {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return k.At(k.now+Time(d), fn)
}

// Post schedules the registered callback id at absolute time t as a
// fire-and-forget event: there is no Handle and no way to cancel it.
// Ordering is identical to At — both draw from the same insertion-
// sequence counter — so a call site can switch forms without
// perturbing any schedule. This is the step loop's scheduling
// primitive: it touches only the heap, never the slot slab.
func (k *Kernel) Post(t Time, id FnID) {
	if t < k.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, k.now))
	}
	if id <= 0 || int(id) > len(k.fns) {
		panic(fmt.Sprintf("sim: posting unregistered callback id %d", id))
	}
	k.heapPush(heapEntry{at: t, seq: k.seq, id: id, slot: anonSlot})
	k.seq++
	k.live++
}

// PostAfter schedules the registered callback id to run d seconds from
// now, fire-and-forget. Negative delays panic.
func (k *Kernel) PostAfter(d float64, id FnID) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	k.Post(k.now+Time(d), id)
}

// Step executes the next event, advancing the clock to its timestamp.
// It returns false when the queue is empty.
func (k *Kernel) Step() bool {
	for len(k.heap) > 0 {
		e := k.heap[0]
		k.popTop()
		var fn func()
		if e.slot == anonSlot {
			fn = k.fns[e.id-1]
		} else {
			s := &k.slots[e.slot]
			if s.canceled {
				k.stale--
				k.release(e.slot)
				continue
			}
			fn = s.fn
			k.release(e.slot)
		}
		k.now = e.at
		k.live--
		k.fired++
		fn()
		return true
	}
	return false
}

// Run executes events until the queue drains.
func (k *Kernel) Run() {
	k.RunUntil(Time(math.Inf(1)))
}

// RunUntil executes events with timestamps ≤ t, then advances the clock
// to exactly t. Events scheduled after t remain queued. The loop is the
// simulator's innermost hot path, so the pop-and-dispatch sequence is
// fused here rather than composed from peek and Step.
func (k *Kernel) RunUntil(t Time) {
	if t < k.now {
		panic(fmt.Sprintf("sim: RunUntil(%v) before now %v", t, k.now))
	}
	for len(k.heap) > 0 {
		e := k.heap[0]
		if e.at > t {
			break
		}
		k.popTop()
		var fn func()
		if e.slot == anonSlot {
			fn = k.fns[e.id-1]
		} else {
			s := &k.slots[e.slot]
			if s.canceled {
				k.stale--
				k.release(e.slot)
				continue
			}
			fn = s.fn
			k.release(e.slot)
		}
		k.now = e.at
		k.live--
		k.fired++
		fn()
	}
	if !math.IsInf(float64(t), 1) {
		k.now = t
	}
}

// release returns a slot to the free list, invalidating outstanding
// Handles by bumping the generation.
func (k *Kernel) release(idx int32) {
	s := &k.slots[idx]
	s.fn = nil
	s.canceled = false
	s.gen++
	s.next = k.free
	k.free = idx + 1
}

// compact rebuilds the heap without cancelled entries, releasing their
// slots. Safe at any point: the (at, seq) ordering is total, so the
// rebuilt heap pops in exactly the order the old one would have.
func (k *Kernel) compact() {
	h := k.heap[:0]
	for _, e := range k.heap {
		if e.slot != anonSlot && k.slots[e.slot].canceled {
			k.release(e.slot)
		} else {
			h = append(h, e)
		}
	}
	k.heap = h
	for i := (len(h) - 2) >> 2; i >= 0; i-- {
		k.siftDown(i, h[i])
	}
	k.stale = 0
}

// heapLess orders entries by (time, insertion sequence); seq is unique,
// so the order is total.
func heapLess(a, b heapEntry) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (k *Kernel) heapPush(e heapEntry) {
	k.heap = append(k.heap, e)
	h := k.heap
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) >> 2
		if !heapLess(e, h[p]) {
			break
		}
		h[i] = h[p]
		i = p
	}
	h[i] = e
}

// popTop removes the heap's minimum entry; the caller has already read
// it from heap[0]. Entries are pointer-free, so the vacated tail needs
// no clearing.
func (k *Kernel) popTop() {
	h := k.heap
	n := len(h) - 1
	last := h[n]
	k.heap = h[:n]
	if n > 0 {
		k.siftDown(0, last)
	}
}

// siftDown places e at position i, sinking it below any smaller child.
// 4-ary layout: children of i are 4i+1 … 4i+4. The wider node trades a
// few more comparisons per level for half the levels (and half the
// cache misses) of a binary heap.
func (k *Kernel) siftDown(i int, e heapEntry) {
	h := k.heap
	n := len(h)
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		m := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if heapLess(h[j], h[m]) {
				m = j
			}
		}
		if !heapLess(h[m], e) {
			break
		}
		h[i] = h[m]
		i = m
	}
	h[i] = e
}
