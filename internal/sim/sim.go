// Package sim provides the discrete-event simulation kernel that the
// cloud and training simulators run on: a virtual clock, an event
// queue with deterministic ordering, and cancellable timers.
//
// The kernel is intentionally single-threaded. Determinism — the same
// seed always producing the same measurement campaign — is a core
// requirement for reproducing the paper's tables, and a single-threaded
// event loop is the simplest way to guarantee it.
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Time is a point in virtual time, in seconds since simulation start.
type Time float64

// Seconds returns the time as a float64 second count.
func (t Time) Seconds() float64 { return float64(t) }

// Hours returns the time in hours.
func (t Time) Hours() float64 { return float64(t) / 3600 }

// HourOfDay returns the hour-of-day component in [0, 24), treating
// simulation start as midnight. The cloud simulator offsets this per
// region to model local time zones.
func (t Time) HourOfDay() int {
	h := int(math.Floor(float64(t)/3600)) % 24
	if h < 0 {
		h += 24
	}
	return h
}

// Event is a scheduled callback. Events are created by Kernel.At and
// Kernel.After and may be cancelled until they fire.
type Event struct {
	at       Time
	seq      uint64
	fn       func()
	index    int // heap index; -1 once removed
	canceled bool
}

// Cancel prevents the event from firing. Cancelling an event that has
// already fired or been cancelled is a no-op.
func (e *Event) Cancel() {
	e.canceled = true
	e.fn = nil // release captured state promptly
}

// Canceled reports whether Cancel was called before the event fired.
func (e *Event) Canceled() bool { return e.canceled }

// Time returns the virtual time the event is scheduled for.
func (e *Event) Time() Time { return e.at }

// Kernel is the event loop. The zero value is a kernel at time 0 with
// an empty queue, ready to use.
type Kernel struct {
	now   Time
	queue eventQueue
	seq   uint64
	fired uint64
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// FiredEvents returns how many events have executed, which tests use
// to assert progress and detect runaway schedules.
func (k *Kernel) FiredEvents() uint64 { return k.fired }

// Pending returns the number of scheduled, uncancelled events.
func (k *Kernel) Pending() int {
	n := 0
	for _, e := range k.queue {
		if !e.canceled {
			n++
		}
	}
	return n
}

// At schedules fn to run at absolute virtual time t. Scheduling in the
// past panics: it always indicates a logic error in a simulator
// component, and firing such events "now" silently corrupts causality.
func (k *Kernel) At(t Time, fn func()) *Event {
	if t < k.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, k.now))
	}
	if fn == nil {
		panic("sim: scheduling nil callback")
	}
	e := &Event{at: t, seq: k.seq, fn: fn}
	k.seq++
	heap.Push(&k.queue, e)
	return e
}

// After schedules fn to run d seconds from now. Negative delays panic.
func (k *Kernel) After(d float64, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return k.At(k.now+Time(d), fn)
}

// Step executes the next event, advancing the clock to its timestamp.
// It returns false when the queue is empty.
func (k *Kernel) Step() bool {
	for k.queue.Len() > 0 {
		e := heap.Pop(&k.queue).(*Event)
		if e.canceled {
			continue
		}
		k.now = e.at
		fn := e.fn
		e.fn = nil
		k.fired++
		fn()
		return true
	}
	return false
}

// Run executes events until the queue drains.
func (k *Kernel) Run() {
	for k.Step() {
	}
}

// RunUntil executes events with timestamps ≤ t, then advances the clock
// to exactly t. Events scheduled after t remain queued.
func (k *Kernel) RunUntil(t Time) {
	if t < k.now {
		panic(fmt.Sprintf("sim: RunUntil(%v) before now %v", t, k.now))
	}
	for {
		e := k.peek()
		if e == nil || e.at > t {
			break
		}
		k.Step()
	}
	k.now = t
}

// peek returns the next uncancelled event without removing it, or nil.
func (k *Kernel) peek() *Event {
	for k.queue.Len() > 0 {
		e := k.queue[0]
		if !e.canceled {
			return e
		}
		heap.Pop(&k.queue)
	}
	return nil
}

// eventQueue is a min-heap ordered by (time, insertion sequence). The
// sequence tie-break makes simultaneous events fire in scheduling
// order, which keeps runs reproducible.
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.index = len(*q)
	*q = append(*q, e)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}
