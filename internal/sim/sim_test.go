package sim

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestKernelFiresInTimeOrder(t *testing.T) {
	var k Kernel
	var got []float64
	k.At(3, func() { got = append(got, 3) })
	k.At(1, func() { got = append(got, 1) })
	k.At(2, func() { got = append(got, 2) })
	k.Run()
	want := []float64{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fire order %v, want %v", got, want)
		}
	}
	if k.Now() != 3 {
		t.Fatalf("clock = %v, want 3", k.Now())
	}
}

func TestTieBreakIsSchedulingOrder(t *testing.T) {
	var k Kernel
	var got []string
	k.At(5, func() { got = append(got, "a") })
	k.At(5, func() { got = append(got, "b") })
	k.At(5, func() { got = append(got, "c") })
	k.Run()
	if got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Fatalf("simultaneous events fired out of scheduling order: %v", got)
	}
}

func TestAfterSchedulesRelative(t *testing.T) {
	var k Kernel
	var at Time
	k.At(10, func() {
		k.After(2.5, func() { at = k.Now() })
	})
	k.Run()
	if at != 12.5 {
		t.Fatalf("After fired at %v, want 12.5", at)
	}
}

func TestCancel(t *testing.T) {
	var k Kernel
	fired := false
	e := k.At(1, func() { fired = true })
	if !e.Pending() {
		t.Fatal("Pending() should report true before Cancel")
	}
	e.Cancel()
	if e.Pending() {
		t.Fatal("Pending() should report false after Cancel")
	}
	k.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if k.FiredEvents() != 0 {
		t.Fatalf("FiredEvents = %d, want 0", k.FiredEvents())
	}
}

func TestCancelOneOfSimultaneous(t *testing.T) {
	var k Kernel
	var got []string
	k.At(1, func() { got = append(got, "keep1") })
	e := k.At(1, func() { got = append(got, "drop") })
	k.At(1, func() { got = append(got, "keep2") })
	e.Cancel()
	k.Run()
	if len(got) != 2 || got[0] != "keep1" || got[1] != "keep2" {
		t.Fatalf("got %v", got)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	var k Kernel
	k.At(5, func() {})
	k.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past should panic")
		}
	}()
	k.At(1, func() {})
}

func TestRunUntil(t *testing.T) {
	var k Kernel
	var fired []float64
	for _, at := range []Time{1, 2, 3, 4} {
		at := at
		k.At(at, func() { fired = append(fired, float64(at)) })
	}
	k.RunUntil(2.5)
	if len(fired) != 2 {
		t.Fatalf("fired %v, want events at 1 and 2", fired)
	}
	if k.Now() != 2.5 {
		t.Fatalf("clock = %v, want 2.5", k.Now())
	}
	if k.Pending() != 2 {
		t.Fatalf("pending = %d, want 2", k.Pending())
	}
	k.Run()
	if len(fired) != 4 {
		t.Fatalf("after Run fired %v", fired)
	}
}

func TestEventsScheduledDuringRun(t *testing.T) {
	var k Kernel
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 5 {
			k.After(1, tick)
		}
	}
	k.After(1, tick)
	k.Run()
	if count != 5 {
		t.Fatalf("count = %d, want 5", count)
	}
	if k.Now() != 5 {
		t.Fatalf("clock = %v, want 5", k.Now())
	}
}

func TestHourOfDay(t *testing.T) {
	cases := []struct {
		t    Time
		want int
	}{
		{0, 0},
		{3600, 1},
		{3599, 0},
		{Time(25 * 3600), 1},
		{Time(24 * 3600), 0},
	}
	for _, tc := range cases {
		if got := tc.t.HourOfDay(); got != tc.want {
			t.Errorf("HourOfDay(%v) = %d, want %d", tc.t, got, tc.want)
		}
	}
}

// Property: for any set of non-negative delays, events fire in
// non-decreasing time order and the final clock equals the max delay.
func TestQuickFireOrder(t *testing.T) {
	f := func(raw []uint16) bool {
		var k Kernel
		var fired []Time
		var maxT Time
		for _, d := range raw {
			at := Time(float64(d) / 16.0)
			if at > maxT {
				maxT = at
			}
			k.At(at, func() { fired = append(fired, k.Now()) })
		}
		k.Run()
		if !sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] }) {
			return false
		}
		return len(raw) == 0 || k.Now() == maxT
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestServerFIFO(t *testing.T) {
	var k Kernel
	s := NewServer(&k)
	var done []string
	// Two jobs submitted back to back at t=0: second waits for first.
	finish1 := s.Submit(2, func() { done = append(done, "first") })
	finish2 := s.Submit(3, func() { done = append(done, "second") })
	if finish1 != 2 || finish2 != 5 {
		t.Fatalf("finish times %v, %v; want 2, 5", finish1, finish2)
	}
	if got := s.QueueDelay(); got != 5 {
		t.Fatalf("QueueDelay = %v, want 5", got)
	}
	k.Run()
	if len(done) != 2 || done[0] != "first" || done[1] != "second" {
		t.Fatalf("completion order %v", done)
	}
}

func TestServerIdleBetweenJobs(t *testing.T) {
	var k Kernel
	s := NewServer(&k)
	s.Submit(1, nil)
	k.Run() // clock at 1
	k.At(10, func() {
		if got := s.Submit(2, func() {}); got != 12 {
			t.Errorf("job after idle finished at %v, want 12", got)
		}
	})
	k.Run() // clock at 12 once the second job completes
	if s.Served() != 2 {
		t.Fatalf("Served = %d, want 2", s.Served())
	}
	// Busy 3s of 12s total.
	if u := s.Utilization(); u < 0.24 || u > 0.26 {
		t.Fatalf("Utilization = %v, want 0.25", u)
	}
}

// Property: a server never completes jobs out of submission order and
// total busy time never exceeds elapsed time.
func TestQuickServerOrdering(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) > 64 {
			raw = raw[:64]
		}
		var k Kernel
		s := NewServer(&k)
		var completions []int
		for i, d := range raw {
			i := i
			s.Submit(float64(d)/8.0, func() { completions = append(completions, i) })
		}
		k.Run()
		if len(completions) != len(raw) {
			return false
		}
		for i := range completions {
			if completions[i] != i {
				return false
			}
		}
		return s.Utilization() <= 1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestPendingCounter is the regression test for Pending()'s O(1)
// live-event counter: every transition that must move it — schedule
// (both the Handle and the fire-and-forget lane), cancel, double
// cancel, fire, and lazy-deletion compaction — checked against a
// hand-tracked count.
func TestPendingCounter(t *testing.T) {
	var k Kernel
	noop := func() {}
	id := k.Register(noop)

	if k.Pending() != 0 {
		t.Fatalf("fresh kernel pending = %d, want 0", k.Pending())
	}
	handles := make([]Handle, 0, 100)
	for i := 0; i < 100; i++ {
		handles = append(handles, k.At(Time(i), noop))
	}
	for i := 0; i < 50; i++ {
		k.Post(Time(i)+0.5, id)
	}
	if k.Pending() != 150 {
		t.Fatalf("after 150 schedules pending = %d, want 150", k.Pending())
	}

	// Cancel 90 of the handles: enough stale entries to cross the
	// compaction threshold (stale*2 > len(heap), len >= 64), so the
	// counter must survive a rebuild.
	for i := 0; i < 90; i++ {
		handles[i].Cancel()
	}
	if k.Pending() != 60 {
		t.Fatalf("after 90 cancels pending = %d, want 60", k.Pending())
	}

	// Double cancel and cancel-of-zero-Handle are no-ops.
	handles[0].Cancel()
	(Handle{}).Cancel()
	if k.Pending() != 60 {
		t.Fatalf("after no-op cancels pending = %d, want 60", k.Pending())
	}

	// Fire a few and recount.
	for i := 0; i < 10; i++ {
		if !k.Step() {
			t.Fatal("queue drained early")
		}
	}
	if k.Pending() != 50 {
		t.Fatalf("after 10 fires pending = %d, want 50", k.Pending())
	}

	// Cancelling an already-fired handle is a no-op even though its
	// slot was recycled (generation check).
	for _, h := range handles {
		h.Cancel()
	}
	if k.Pending() != 40 {
		t.Fatalf("after cancelling remaining live handles pending = %d, want 40", k.Pending())
	}

	k.Run()
	if k.Pending() != 0 {
		t.Fatalf("after drain pending = %d, want 0", k.Pending())
	}
}
