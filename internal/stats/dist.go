package stats

import (
	"math"
	"math/rand"
)

// Rng wraps a seeded *rand.Rand with the variate generators the cloud
// and training simulators need. All CM-DARE randomness flows through
// explicitly seeded Rng values; there is no package-level generator, so
// every experiment is reproducible from its seed.
type Rng struct {
	r *rand.Rand
}

// NewRng returns a generator seeded with seed.
func NewRng(seed int64) *Rng {
	return &Rng{r: rand.New(rand.NewSource(seed))}
}

// Fork derives an independent generator from this one. Simulator
// components fork the experiment RNG once at construction so that
// adding a new consumer does not perturb the draws seen by existing
// ones.
func (g *Rng) Fork() *Rng {
	return NewRng(g.r.Int63())
}

// Float64 returns a uniform variate in [0, 1).
func (g *Rng) Float64() float64 { return g.r.Float64() }

// Intn returns a uniform integer in [0, n).
func (g *Rng) Intn(n int) int { return g.r.Intn(n) }

// Int63 returns a non-negative uniform 63-bit integer.
func (g *Rng) Int63() int64 { return g.r.Int63() }

// Perm returns a random permutation of [0, n).
func (g *Rng) Perm(n int) []int { return g.r.Perm(n) }

// Shuffle pseudo-randomizes the order of n elements via swap.
func (g *Rng) Shuffle(n int, swap func(i, j int)) { g.r.Shuffle(n, swap) }

// Uniform returns a uniform variate in [lo, hi).
func (g *Rng) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*g.r.Float64()
}

// Normal returns a normal variate with the given mean and standard
// deviation.
func (g *Rng) Normal(mean, std float64) float64 {
	return mean + std*g.r.NormFloat64()
}

// NormalPos returns a normal variate truncated below at a small
// positive floor; used for durations that must remain positive (stage
// times, service times).
func (g *Rng) NormalPos(mean, std float64) float64 {
	const floor = 1e-9
	for i := 0; i < 64; i++ {
		if v := g.Normal(mean, std); v > floor {
			return v
		}
	}
	return floor
}

// LogNormal returns a log-normal variate parameterized directly by the
// desired mean and coefficient of variation of the resulting
// distribution (not of the underlying normal). This is the natural
// parameterization for multiplicative timing noise: the paper reports
// step-time CoV ≈ 0.02 (Fig. 2) and checkpoint-time CoV 0.018–0.073
// (Fig. 5).
func (g *Rng) LogNormal(mean, cov float64) float64 {
	d := MakeLogNormalDist(mean, cov)
	return d.Sample(g)
}

// LogNormalDist is a frozen (mean, CoV) log-normal parameterization.
// Freezing performs the two logarithms and the square root that
// Rng.LogNormal would otherwise redo on every call, leaving Sample one
// normal variate and one exponential — about a third of the per-draw
// cost. Sample consumes exactly the variates LogNormal(mean, cov)
// would and computes bit-identical values through the same floating-
// point expression, so hot paths may switch between the two forms
// without perturbing any seeded stream.
type LogNormalDist struct {
	mean, cov float64
	mu, sigma float64
}

// MakeLogNormalDist freezes the parameterization Rng.LogNormal(mean,
// cov) derives on each call.
func MakeLogNormalDist(mean, cov float64) LogNormalDist {
	d := LogNormalDist{mean: mean, cov: cov}
	if mean > 0 && cov > 0 {
		sigma2 := math.Log(1 + cov*cov)
		d.mu = math.Log(mean) - sigma2/2
		d.sigma = math.Sqrt(sigma2)
	}
	return d
}

// Mean returns the mean the distribution was frozen with, letting
// single-entry caches detect a stale parameterization.
func (d LogNormalDist) Mean() float64 { return d.mean }

// Sample returns the next variate from g. A non-positive mean yields
// 0 and a non-positive CoV yields the mean exactly, consuming no
// randomness — mirroring Rng.LogNormal's degenerate cases. The pointer
// receiver keeps the per-draw call from copying the struct.
func (d *LogNormalDist) Sample(g *Rng) float64 {
	if d.mean <= 0 {
		return 0
	}
	if d.cov <= 0 {
		return d.mean
	}
	return math.Exp(d.mu + d.sigma*g.r.NormFloat64())
}

// Exponential returns an exponential variate with the given mean.
func (g *Rng) Exponential(mean float64) float64 {
	return g.r.ExpFloat64() * mean
}

// Weibull returns a Weibull variate with the given scale λ and shape k.
// Shape < 1 yields the front-loaded failure behavior seen in some
// transient-server lifetime distributions.
func (g *Rng) Weibull(scale, shape float64) float64 {
	u := g.r.Float64()
	// Invert the CDF F(x) = 1 - exp(-(x/λ)^k). Guard u == 0.
	if u <= 0 {
		u = math.SmallestNonzeroFloat64
	}
	return scale * math.Pow(-math.Log(1-u), 1/shape)
}

// Bernoulli returns true with probability p.
func (g *Rng) Bernoulli(p float64) bool {
	return g.r.Float64() < p
}

// Categorical draws an index from the (unnormalized, non-negative)
// weight vector. It panics if the weights sum to zero or the slice is
// empty, because sampling from nothing is a programming error.
func (g *Rng) Categorical(weights []float64) int {
	var total float64
	for _, w := range weights {
		if w < 0 {
			panic("stats: Categorical weight is negative")
		}
		total += w
	}
	if total == 0 {
		panic("stats: Categorical weights sum to zero")
	}
	u := g.r.Float64() * total
	var acc float64
	for i, w := range weights {
		acc += w
		if u < acc {
			return i
		}
	}
	return len(weights) - 1
}
