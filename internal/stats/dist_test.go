package stats

import (
	"math"
	"testing"
)

func TestRngDeterminism(t *testing.T) {
	a := NewRng(42)
	b := NewRng(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed should yield identical streams")
		}
	}
}

func TestForkIndependence(t *testing.T) {
	parent := NewRng(7)
	child := parent.Fork()
	// The child stream must not simply replay the parent stream.
	same := 0
	for i := 0; i < 32; i++ {
		if parent.Float64() == child.Float64() {
			same++
		}
	}
	if same == 32 {
		t.Fatal("forked generator replays parent stream")
	}
}

func TestNormalMoments(t *testing.T) {
	g := NewRng(1)
	var acc Accumulator
	for i := 0; i < 200000; i++ {
		acc.Add(g.Normal(10, 2))
	}
	if !almostEqual(acc.Mean(), 10, 0.05) {
		t.Fatalf("Normal mean = %v, want ≈10", acc.Mean())
	}
	if !almostEqual(acc.Std(), 2, 0.05) {
		t.Fatalf("Normal std = %v, want ≈2", acc.Std())
	}
}

func TestNormalPosIsPositive(t *testing.T) {
	g := NewRng(2)
	for i := 0; i < 10000; i++ {
		if v := g.NormalPos(0.5, 2); v <= 0 {
			t.Fatalf("NormalPos returned non-positive %v", v)
		}
	}
}

func TestLogNormalMeanAndCoV(t *testing.T) {
	g := NewRng(3)
	var acc Accumulator
	for i := 0; i < 200000; i++ {
		acc.Add(g.LogNormal(0.25, 0.1))
	}
	if !almostEqual(acc.Mean(), 0.25, 0.005) {
		t.Fatalf("LogNormal mean = %v, want ≈0.25", acc.Mean())
	}
	if !almostEqual(acc.CoV(), 0.1, 0.01) {
		t.Fatalf("LogNormal CoV = %v, want ≈0.1", acc.CoV())
	}
	if g.LogNormal(0.25, 0) != 0.25 {
		t.Fatal("LogNormal with zero CoV should be deterministic")
	}
	if g.LogNormal(0, 0.5) != 0 {
		t.Fatal("LogNormal with zero mean should be 0")
	}
}

func TestExponentialMean(t *testing.T) {
	g := NewRng(4)
	var acc Accumulator
	for i := 0; i < 200000; i++ {
		acc.Add(g.Exponential(3))
	}
	if !almostEqual(acc.Mean(), 3, 0.05) {
		t.Fatalf("Exponential mean = %v, want ≈3", acc.Mean())
	}
}

func TestWeibullShapeOne(t *testing.T) {
	// Weibull with shape 1 is exponential: mean == scale.
	g := NewRng(5)
	var acc Accumulator
	for i := 0; i < 200000; i++ {
		acc.Add(g.Weibull(2, 1))
	}
	if !almostEqual(acc.Mean(), 2, 0.05) {
		t.Fatalf("Weibull(2,1) mean = %v, want ≈2", acc.Mean())
	}
}

func TestBernoulliRate(t *testing.T) {
	g := NewRng(6)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if g.Bernoulli(0.3) {
			hits++
		}
	}
	rate := float64(hits) / n
	if !almostEqual(rate, 0.3, 0.01) {
		t.Fatalf("Bernoulli(0.3) rate = %v", rate)
	}
}

func TestCategorical(t *testing.T) {
	g := NewRng(7)
	counts := make([]int, 3)
	const n = 90000
	for i := 0; i < n; i++ {
		counts[g.Categorical([]float64{1, 2, 0})]++
	}
	if counts[2] != 0 {
		t.Fatalf("zero-weight category drawn %d times", counts[2])
	}
	frac0 := float64(counts[0]) / n
	if !almostEqual(frac0, 1.0/3.0, 0.02) {
		t.Fatalf("Categorical frac0 = %v, want ≈1/3", frac0)
	}
}

func TestCategoricalPanics(t *testing.T) {
	g := NewRng(8)
	for _, weights := range [][]float64{nil, {0, 0}, {-1, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Categorical(%v) should panic", weights)
				}
			}()
			g.Categorical(weights)
		}()
	}
}

func TestUniformRange(t *testing.T) {
	g := NewRng(9)
	for i := 0; i < 10000; i++ {
		v := g.Uniform(5, 6)
		if v < 5 || v >= 6 {
			t.Fatalf("Uniform(5,6) = %v out of range", v)
		}
	}
}

func TestWeibullPositive(t *testing.T) {
	g := NewRng(10)
	for i := 0; i < 10000; i++ {
		if v := g.Weibull(1.5, 0.7); v < 0 || math.IsNaN(v) {
			t.Fatalf("Weibull variate invalid: %v", v)
		}
	}
}
