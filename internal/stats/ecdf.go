package stats

import (
	"fmt"
	"sort"
)

// ECDF is an empirical cumulative distribution function built from a
// sample. The paper uses empirical lifetime CDFs (Fig. 8) both for
// plotting and for the revocation-probability lookups in Eq. 5.
//
// The zero value is not usable; construct with NewECDF.
type ECDF struct {
	sorted []float64
}

// NewECDF builds an ECDF from the sample xs. The input is copied. It
// returns an error if xs is empty: an empty CDF has no sensible
// evaluation semantics and silently returning one hides campaign bugs.
func NewECDF(xs []float64) (*ECDF, error) {
	if len(xs) == 0 {
		return nil, fmt.Errorf("stats: ECDF requires a non-empty sample")
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return &ECDF{sorted: sorted}, nil
}

// MustECDF is NewECDF that panics on error, for literals in tests and
// experiment code where the sample is known to be non-empty.
func MustECDF(xs []float64) *ECDF {
	e, err := NewECDF(xs)
	if err != nil {
		panic(err)
	}
	return e
}

// Eval returns P(X ≤ x), the fraction of the sample at or below x.
func (e *ECDF) Eval(x float64) float64 {
	// sort.SearchFloat64s returns the first index with sorted[i] >= x;
	// advance over ties to count values equal to x as ≤ x.
	i := sort.SearchFloat64s(e.sorted, x)
	for i < len(e.sorted) && e.sorted[i] == x {
		i++
	}
	return float64(i) / float64(len(e.sorted))
}

// Quantile returns the smallest sample value v with P(X ≤ v) ≥ p.
// It panics if p is outside [0, 1].
func (e *ECDF) Quantile(p float64) float64 {
	if p < 0 || p > 1 {
		panic(fmt.Sprintf("stats: ECDF quantile probability %v outside [0,1]", p))
	}
	if p == 0 {
		return e.sorted[0]
	}
	idx := int(p*float64(len(e.sorted))) - 1
	if p*float64(len(e.sorted)) > float64(idx+1) {
		idx++
	}
	if idx < 0 {
		idx = 0
	}
	if idx >= len(e.sorted) {
		idx = len(e.sorted) - 1
	}
	return e.sorted[idx]
}

// Len returns the sample size behind the ECDF.
func (e *ECDF) Len() int { return len(e.sorted) }

// Values returns a copy of the sorted sample, convenient for rendering
// CDF step plots.
func (e *ECDF) Values() []float64 {
	out := make([]float64, len(e.sorted))
	copy(out, e.sorted)
	return out
}

// Points returns (x, P(X ≤ x)) pairs at each distinct sample value, the
// series needed to draw the CDF as a step function.
func (e *ECDF) Points() (xs, ps []float64) {
	n := len(e.sorted)
	for i := 0; i < n; {
		j := i
		for j < n && e.sorted[j] == e.sorted[i] {
			j++
		}
		xs = append(xs, e.sorted[i])
		ps = append(ps, float64(j)/float64(n))
		i = j
	}
	return xs, ps
}
