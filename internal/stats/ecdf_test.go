package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewECDFRejectsEmpty(t *testing.T) {
	if _, err := NewECDF(nil); err == nil {
		t.Fatal("NewECDF(nil) should error")
	}
}

func TestECDFEval(t *testing.T) {
	e := MustECDF([]float64{1, 2, 2, 3})
	cases := []struct {
		x    float64
		want float64
	}{
		{0.5, 0},
		{1, 0.25},
		{1.5, 0.25},
		{2, 0.75},
		{3, 1},
		{10, 1},
	}
	for _, tc := range cases {
		if got := e.Eval(tc.x); !almostEqual(got, tc.want, 1e-12) {
			t.Errorf("Eval(%v) = %v, want %v", tc.x, got, tc.want)
		}
	}
}

func TestECDFQuantile(t *testing.T) {
	e := MustECDF([]float64{10, 20, 30, 40})
	if got := e.Quantile(0.25); got != 10 {
		t.Fatalf("Quantile(0.25) = %v, want 10", got)
	}
	if got := e.Quantile(0.5); got != 20 {
		t.Fatalf("Quantile(0.5) = %v, want 20", got)
	}
	if got := e.Quantile(1); got != 40 {
		t.Fatalf("Quantile(1) = %v, want 40", got)
	}
	if got := e.Quantile(0); got != 10 {
		t.Fatalf("Quantile(0) = %v, want 10", got)
	}
}

func TestECDFPoints(t *testing.T) {
	e := MustECDF([]float64{5, 5, 7})
	xs, ps := e.Points()
	if len(xs) != 2 || xs[0] != 5 || xs[1] != 7 {
		t.Fatalf("Points xs = %v", xs)
	}
	if !almostEqual(ps[0], 2.0/3.0, 1e-12) || ps[1] != 1 {
		t.Fatalf("Points ps = %v", ps)
	}
}

// Property: ECDF evaluation is monotone non-decreasing and bounded in
// [0, 1], and Eval(max) == 1.
func TestQuickECDFMonotone(t *testing.T) {
	f := func(raw []float64, probeRaw float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		e := MustECDF(xs)
		if e.Eval(Max(xs)) != 1 {
			return false
		}
		if math.IsNaN(probeRaw) || math.IsInf(probeRaw, 0) {
			return true
		}
		p1 := e.Eval(probeRaw)
		p2 := e.Eval(probeRaw + 1)
		return p1 >= 0 && p2 <= 1 && p2 >= p1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Quantile and Eval are compatible: Eval(Quantile(p)) ≥ p.
func TestQuickECDFQuantileRoundTrip(t *testing.T) {
	f := func(raw []float64, pRaw float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		p := math.Abs(pRaw)
		p -= math.Floor(p) // into [0,1)
		e := MustECDF(xs)
		return e.Eval(e.Quantile(p)) >= p-1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
