package stats

import "fmt"

// Histogram is a fixed-width-bin histogram over [Lo, Hi). Values below
// Lo are clamped into the first bin and values at or above Hi into the
// last, so campaign outliers never vanish silently.
type Histogram struct {
	Lo, Hi float64
	Counts []int
}

// NewHistogram creates a histogram with bins equal-width bins spanning
// [lo, hi). It returns an error for a non-positive bin count or an
// empty range.
func NewHistogram(lo, hi float64, bins int) (*Histogram, error) {
	if bins <= 0 {
		return nil, fmt.Errorf("stats: histogram needs at least one bin, got %d", bins)
	}
	if hi <= lo {
		return nil, fmt.Errorf("stats: histogram range [%v, %v) is empty", lo, hi)
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}, nil
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	idx := h.binOf(x)
	h.Counts[idx]++
}

func (h *Histogram) binOf(x float64) int {
	if x < h.Lo {
		return 0
	}
	width := (h.Hi - h.Lo) / float64(len(h.Counts))
	idx := int((x - h.Lo) / width)
	if idx >= len(h.Counts) {
		idx = len(h.Counts) - 1
	}
	return idx
}

// Total returns the number of recorded observations.
func (h *Histogram) Total() int {
	t := 0
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// BinCenter returns the midpoint of bin i, for plotting.
func (h *Histogram) BinCenter(i int) float64 {
	width := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + width*(float64(i)+0.5)
}

// HourHistogram counts events by hour of day (0–23). The paper's Fig. 9
// reports revocations against the revoked server's local hour.
type HourHistogram struct {
	Counts [24]int
}

// Add records an event at the given hour of day; hours are normalized
// modulo 24 so callers can pass raw cumulative hours.
func (h *HourHistogram) Add(hour int) {
	hour %= 24
	if hour < 0 {
		hour += 24
	}
	h.Counts[hour]++
}

// Total returns the number of recorded events.
func (h *HourHistogram) Total() int {
	t := 0
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// Peak returns the hour with the most events and its count. Ties go to
// the earliest hour.
func (h *HourHistogram) Peak() (hour, count int) {
	for i, c := range h.Counts {
		if c > count {
			hour, count = i, c
		}
	}
	return hour, count
}
