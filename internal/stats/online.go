package stats

import "math"

// Accumulator computes streaming mean and variance with Welford's
// algorithm. The training-performance tracker uses it to summarize
// per-step timings without retaining every sample.
//
// The zero value is an empty accumulator ready to use.
type Accumulator struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add records one observation.
func (a *Accumulator) Add(x float64) {
	a.n++
	if a.n == 1 {
		a.min, a.max = x, x
	} else {
		if x < a.min {
			a.min = x
		}
		if x > a.max {
			a.max = x
		}
	}
	delta := x - a.mean
	a.mean += delta / float64(a.n)
	a.m2 += delta * (x - a.mean)
}

// N returns the number of observations recorded.
func (a *Accumulator) N() int { return a.n }

// Mean returns the running mean, or 0 if nothing has been recorded.
func (a *Accumulator) Mean() float64 { return a.mean }

// Variance returns the unbiased sample variance, or 0 with fewer than
// two observations.
func (a *Accumulator) Variance() float64 {
	if a.n < 2 {
		return 0
	}
	return a.m2 / float64(a.n-1)
}

// Std returns the sample standard deviation.
func (a *Accumulator) Std() float64 { return math.Sqrt(a.Variance()) }

// CoV returns the coefficient of variation, or 0 if the mean is zero.
func (a *Accumulator) CoV() float64 {
	if a.mean == 0 {
		return 0
	}
	return a.Std() / a.mean
}

// Min returns the smallest observation, or 0 if empty.
func (a *Accumulator) Min() float64 {
	if a.n == 0 {
		return 0
	}
	return a.min
}

// Max returns the largest observation, or 0 if empty.
func (a *Accumulator) Max() float64 {
	if a.n == 0 {
		return 0
	}
	return a.max
}

// Merge folds another accumulator into this one, as if every
// observation recorded in other had been recorded here (Chan et al.
// parallel variance combination).
func (a *Accumulator) Merge(other Accumulator) {
	if other.n == 0 {
		return
	}
	if a.n == 0 {
		*a = other
		return
	}
	n := a.n + other.n
	delta := other.mean - a.mean
	mean := a.mean + delta*float64(other.n)/float64(n)
	m2 := a.m2 + other.m2 + delta*delta*float64(a.n)*float64(other.n)/float64(n)
	if other.min < a.min {
		a.min = other.min
	}
	if other.max > a.max {
		a.max = other.max
	}
	a.n, a.mean, a.m2 = n, mean, m2
}

// RollingMean keeps the mean of the most recent Window observations.
// The profiler averages training speed over 100-step windows, matching
// the paper's measurement methodology.
type RollingMean struct {
	window int
	buf    []float64
	next   int
	filled bool
	sum    float64
}

// NewRollingMean returns a rolling mean over the given window size.
// It panics on a non-positive window.
func NewRollingMean(window int) *RollingMean {
	if window <= 0 {
		panic("stats: RollingMean window must be positive")
	}
	return &RollingMean{window: window, buf: make([]float64, window)}
}

// Add records an observation, evicting the oldest when the window is
// full.
func (r *RollingMean) Add(x float64) {
	if r.filled {
		r.sum -= r.buf[r.next]
	}
	r.buf[r.next] = x
	r.sum += x
	r.next++
	if r.next == r.window {
		r.next = 0
		r.filled = true
	}
}

// N returns how many observations currently contribute to the mean.
func (r *RollingMean) N() int {
	if r.filled {
		return r.window
	}
	return r.next
}

// Mean returns the mean of the current window, or 0 when empty.
func (r *RollingMean) Mean() float64 {
	n := r.N()
	if n == 0 {
		return 0
	}
	return r.sum / float64(n)
}

// Full reports whether the window has been filled at least once.
func (r *RollingMean) Full() bool { return r.filled }
