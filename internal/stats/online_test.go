package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAccumulatorMatchesBatch(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5, 9, 2, 6}
	var acc Accumulator
	for _, x := range xs {
		acc.Add(x)
	}
	if acc.N() != len(xs) {
		t.Fatalf("N = %d, want %d", acc.N(), len(xs))
	}
	if !almostEqual(acc.Mean(), Mean(xs), 1e-12) {
		t.Fatalf("Mean = %v, want %v", acc.Mean(), Mean(xs))
	}
	if !almostEqual(acc.Variance(), Variance(xs), 1e-12) {
		t.Fatalf("Variance = %v, want %v", acc.Variance(), Variance(xs))
	}
	if acc.Min() != 1 || acc.Max() != 9 {
		t.Fatalf("Min/Max = %v/%v, want 1/9", acc.Min(), acc.Max())
	}
}

func TestAccumulatorEmpty(t *testing.T) {
	var acc Accumulator
	if acc.Mean() != 0 || acc.Variance() != 0 || acc.Min() != 0 || acc.Max() != 0 || acc.CoV() != 0 {
		t.Fatal("empty accumulator should report zeros")
	}
}

func TestAccumulatorMerge(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7}
	var left, right, all Accumulator
	for i, x := range xs {
		if i < 3 {
			left.Add(x)
		} else {
			right.Add(x)
		}
		all.Add(x)
	}
	left.Merge(right)
	if left.N() != all.N() {
		t.Fatalf("merged N = %d, want %d", left.N(), all.N())
	}
	if !almostEqual(left.Mean(), all.Mean(), 1e-12) {
		t.Fatalf("merged Mean = %v, want %v", left.Mean(), all.Mean())
	}
	if !almostEqual(left.Variance(), all.Variance(), 1e-12) {
		t.Fatalf("merged Variance = %v, want %v", left.Variance(), all.Variance())
	}
	if left.Min() != 1 || left.Max() != 7 {
		t.Fatalf("merged Min/Max = %v/%v", left.Min(), left.Max())
	}
}

func TestAccumulatorMergeEmpty(t *testing.T) {
	var a, b Accumulator
	a.Add(2)
	a.Merge(b) // merging empty is a no-op
	if a.N() != 1 || a.Mean() != 2 {
		t.Fatal("merge with empty changed state")
	}
	b.Merge(a) // merging into empty copies
	if b.N() != 1 || b.Mean() != 2 {
		t.Fatal("merge into empty did not copy")
	}
}

// Property: merging two accumulators equals accumulating the
// concatenated sample.
func TestQuickAccumulatorMerge(t *testing.T) {
	f := func(rawA, rawB []float64) bool {
		clean := func(raw []float64) []float64 {
			out := make([]float64, 0, len(raw))
			for _, x := range raw {
				if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e9 {
					out = append(out, x)
				}
			}
			return out
		}
		a, b := clean(rawA), clean(rawB)
		var accA, accB, accAll Accumulator
		for _, x := range a {
			accA.Add(x)
			accAll.Add(x)
		}
		for _, x := range b {
			accB.Add(x)
			accAll.Add(x)
		}
		accA.Merge(accB)
		if accA.N() != accAll.N() {
			return false
		}
		if accA.N() == 0 {
			return true
		}
		scale := math.Max(1, math.Abs(accAll.Mean()))
		return almostEqual(accA.Mean(), accAll.Mean(), 1e-6*scale) &&
			almostEqual(accA.Variance(), accAll.Variance(), 1e-4*scale*scale+1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRollingMean(t *testing.T) {
	r := NewRollingMean(3)
	if r.Mean() != 0 || r.N() != 0 || r.Full() {
		t.Fatal("fresh RollingMean should be empty")
	}
	r.Add(1)
	r.Add(2)
	if !almostEqual(r.Mean(), 1.5, 1e-12) || r.N() != 2 {
		t.Fatalf("partial window mean = %v, n = %d", r.Mean(), r.N())
	}
	r.Add(3)
	if !r.Full() || !almostEqual(r.Mean(), 2, 1e-12) {
		t.Fatalf("full window mean = %v", r.Mean())
	}
	r.Add(10) // evicts 1
	if !almostEqual(r.Mean(), 5, 1e-12) {
		t.Fatalf("rolled mean = %v, want 5", r.Mean())
	}
}

func TestRollingMeanPanicsOnBadWindow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewRollingMean(0) should panic")
		}
	}()
	NewRollingMean(0)
}

func TestHistogram(t *testing.T) {
	h, err := NewHistogram(0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{-1, 0, 1.9, 2, 9.9, 10, 100} {
		h.Add(x)
	}
	if h.Total() != 7 {
		t.Fatalf("Total = %d, want 7", h.Total())
	}
	// -1, 0, 1.9 → bin 0; 2 → bin 1; 9.9, 10, 100 → bin 4.
	want := []int{3, 1, 0, 0, 3}
	for i, w := range want {
		if h.Counts[i] != w {
			t.Fatalf("Counts = %v, want %v", h.Counts, want)
		}
	}
	if got := h.BinCenter(0); !almostEqual(got, 1, 1e-12) {
		t.Fatalf("BinCenter(0) = %v, want 1", got)
	}
}

func TestHistogramValidation(t *testing.T) {
	if _, err := NewHistogram(0, 10, 0); err == nil {
		t.Fatal("zero bins should error")
	}
	if _, err := NewHistogram(5, 5, 3); err == nil {
		t.Fatal("empty range should error")
	}
}

func TestHourHistogram(t *testing.T) {
	var h HourHistogram
	h.Add(10)
	h.Add(10)
	h.Add(34) // 34 mod 24 == 10
	h.Add(-1) // normalizes to 23
	h.Add(5)
	if h.Total() != 5 {
		t.Fatalf("Total = %d, want 5", h.Total())
	}
	hour, count := h.Peak()
	if hour != 10 || count != 3 {
		t.Fatalf("Peak = (%d, %d), want (10, 3)", hour, count)
	}
	if h.Counts[23] != 1 {
		t.Fatalf("negative hour not normalized: %v", h.Counts)
	}
}
