package stats

import (
	"fmt"
	"sort"
)

// Scratch is a reusable arena for the temporary buffers statistical
// summaries need: quantile sort copies, ECDF sample buffers, and
// online accumulators. A measurement campaign runs thousands of
// independent replications, and each one that summarizes a series
// through Quantile or NewECDF pays a fresh allocation for memory whose
// lifetime is a single reduce step; a Scratch recycles those buffers
// across replications instead.
//
// Ownership rules:
//
//   - Everything handed out by a Scratch (buffers from Floats and
//     Sorted, the ECDF from its ECDF method, accumulators from Acc) is
//     borrowed: it remains valid only until the next Reset. Results
//     that outlive the scratch must be copied out.
//   - A Scratch is single-owner: one goroutine at a time. Campaign
//     workers each hold their own (see campaign.Scratch); a Scratch is
//     never shared across concurrently running units.
//   - Buffer contents are unspecified at hand-out. Floats returns
//     length-n slices that must be fully written (or truncated to [:0]
//     and appended to) before reading.
//
// Determinism: a Scratch only changes where temporaries live, never
// what is computed. Scratch.Quantile evaluates the same floating-point
// expression as the allocating Quantile, so results are bit-identical
// regardless of which form a caller uses — or which recycled buffer
// the arena happens to hand out.
//
// The zero value is an empty arena ready to use.
type Scratch struct {
	// bufs is the borrow stack: slot i backs the i-th Floats call since
	// the last Reset. Slots grow monotonically to their high-water
	// capacity, so steady-state borrowing allocates nothing.
	bufs [][]float64
	next int

	// accs recycles online accumulators the same way.
	accs    []Accumulator
	nextAcc int

	// ecdfs recycles the ECDF headers ECDF hands out; the sample
	// buffers behind them come from bufs.
	ecdfs    []ECDF
	nextECDF int
}

// Reset reclaims every buffer, accumulator, and ECDF handed out since
// the previous Reset. Borrowed values become invalid.
func (s *Scratch) Reset() {
	s.next = 0
	s.nextAcc = 0
	s.nextECDF = 0
}

// Floats borrows a length-n float64 slice with unspecified contents.
func (s *Scratch) Floats(n int) []float64 {
	if s.next == len(s.bufs) {
		s.bufs = append(s.bufs, nil)
	}
	b := s.bufs[s.next]
	if cap(b) < n {
		b = make([]float64, n)
	} else {
		b = b[:n]
	}
	s.bufs[s.next] = b
	s.next++
	return b
}

// Sorted borrows a sorted copy of xs.
func (s *Scratch) Sorted(xs []float64) []float64 {
	b := s.Floats(len(xs))
	copy(b, xs)
	sort.Float64s(b)
	return b
}

// Quantile is Quantile computed through the arena: identical
// semantics, identical bits, no per-call sort allocation.
func (s *Scratch) Quantile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		panic("stats: Quantile of empty slice")
	}
	if p < 0 || p > 1 {
		panic(fmt.Sprintf("stats: Quantile probability %v outside [0,1]", p))
	}
	return quantileSorted(s.Sorted(xs), p)
}

// Median is the 0.5-quantile computed through the arena.
func (s *Scratch) Median(xs []float64) float64 {
	return s.Quantile(xs, 0.5)
}

// ECDF is NewECDF computed through the arena: the returned ECDF
// borrows its sorted sample buffer and is valid only until Reset.
func (s *Scratch) ECDF(xs []float64) (*ECDF, error) {
	if len(xs) == 0 {
		return nil, fmt.Errorf("stats: ECDF requires a non-empty sample")
	}
	if s.nextECDF == len(s.ecdfs) {
		s.ecdfs = append(s.ecdfs, ECDF{})
	}
	e := &s.ecdfs[s.nextECDF]
	s.nextECDF++
	e.sorted = s.Sorted(xs)
	return e, nil
}

// Acc borrows a zeroed online accumulator.
func (s *Scratch) Acc() *Accumulator {
	if s.nextAcc == len(s.accs) {
		s.accs = append(s.accs, Accumulator{})
	}
	a := &s.accs[s.nextAcc]
	s.nextAcc++
	*a = Accumulator{}
	return a
}
