package stats

import (
	"math"
	"testing"
)

// Scratch results must be bit-identical to the allocating forms: the
// arena may only change where temporaries live, never what is
// computed.
func TestScratchQuantileBitIdentical(t *testing.T) {
	rng := NewRng(42)
	var s Scratch
	for trial := 0; trial < 50; trial++ {
		s.Reset()
		xs := make([]float64, 1+rng.Intn(200))
		for i := range xs {
			xs[i] = rng.Normal(10, 3)
		}
		for _, p := range []float64{0, 0.01, 0.25, 0.5, 0.75, 0.99, 1} {
			want := Quantile(xs, p)
			got := s.Quantile(xs, p)
			if math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("trial %d: Scratch.Quantile(%v) = %v, want %v", trial, p, got, want)
			}
		}
		if got, want := s.Median(xs), Median(xs); math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("trial %d: Scratch.Median = %v, want %v", trial, got, want)
		}
	}
}

func TestScratchECDFBitIdentical(t *testing.T) {
	rng := NewRng(7)
	var s Scratch
	xs := make([]float64, 128)
	for i := range xs {
		xs[i] = rng.Exponential(4)
	}
	want := MustECDF(xs)
	got, err := s.ECDF(xs)
	if err != nil {
		t.Fatalf("Scratch.ECDF: %v", err)
	}
	if got.Len() != want.Len() {
		t.Fatalf("Len = %d, want %d", got.Len(), want.Len())
	}
	for _, x := range []float64{0, 0.5, 1, 2, 4, 8, 100} {
		if g, w := got.Eval(x), want.Eval(x); g != w {
			t.Fatalf("Eval(%v) = %v, want %v", x, g, w)
		}
	}
	for _, p := range []float64{0, 0.1, 0.5, 0.9, 1} {
		if g, w := got.Quantile(p), want.Quantile(p); g != w {
			t.Fatalf("Quantile(%v) = %v, want %v", p, g, w)
		}
	}
	if _, err := s.ECDF(nil); err == nil {
		t.Fatal("Scratch.ECDF(empty) should error")
	}
}

// After Reset, the arena hands back the same backing buffers — that
// recycling is its whole purpose.
func TestScratchRecyclesBuffers(t *testing.T) {
	var s Scratch
	a := s.Floats(64)
	b := s.Floats(32)
	s.Reset()
	a2 := s.Floats(16)
	b2 := s.Floats(32)
	if &a[0] != &a2[0] {
		t.Error("first borrow after Reset did not reuse the first slot's buffer")
	}
	if &b[0] != &b2[0] {
		t.Error("second borrow after Reset did not reuse the second slot's buffer")
	}
	if len(a2) != 16 || len(b2) != 32 {
		t.Errorf("borrow lengths = %d, %d; want 16, 32", len(a2), len(b2))
	}
}

// A warmed arena's summaries run allocation-free: the steady-state
// guarantee campaign replications rely on.
func TestScratchSteadyStateAllocFree(t *testing.T) {
	var s Scratch
	xs := make([]float64, 300)
	rng := NewRng(3)
	for i := range xs {
		xs[i] = rng.Float64()
	}
	// Warm the arena to its high-water shape.
	s.Reset()
	_ = s.Quantile(xs, 0.5)
	_, _ = s.ECDF(xs)
	_ = s.Acc()
	allocs := testing.AllocsPerRun(100, func() {
		s.Reset()
		_ = s.Quantile(xs, 0.5)
		_, _ = s.ECDF(xs)
		a := s.Acc()
		for _, x := range xs {
			a.Add(x)
		}
	})
	if allocs != 0 {
		t.Errorf("warmed scratch summaries allocate %.1f allocs/op, want 0", allocs)
	}
}

// Acc hands back zeroed accumulators even when a prior unit filled
// them.
func TestScratchAccZeroed(t *testing.T) {
	var s Scratch
	a := s.Acc()
	a.Add(5)
	a.Add(9)
	s.Reset()
	b := s.Acc()
	if b.N() != 0 || b.Mean() != 0 {
		t.Errorf("recycled accumulator not zeroed: n=%d mean=%v", b.N(), b.Mean())
	}
	if a != b {
		t.Error("expected the same accumulator slot to be recycled")
	}
}
