// Package stats provides the small statistical toolkit used throughout
// CM-DARE: descriptive statistics, empirical CDFs, histograms, online
// accumulators, and seeded random-variate generators.
//
// Everything in this package is deterministic given a seed; no global
// random state is used. All functions operate on float64 slices and do
// not retain or mutate their inputs unless documented otherwise.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs. It returns 0 for an empty
// slice so that callers reporting summaries need not special-case
// missing data.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the unbiased sample variance (n-1 denominator) of xs.
// It returns 0 when xs has fewer than two elements.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(len(xs)-1)
}

// Std returns the unbiased sample standard deviation of xs.
func Std(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// CoV returns the coefficient of variation (std / mean) of xs. It
// returns 0 if the mean is zero to keep dashboards well defined.
func CoV(xs []float64) float64 {
	m := Mean(xs)
	if m == 0 {
		return 0
	}
	return Std(xs) / m
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// Min returns the minimum of xs. It panics on an empty slice because a
// minimum of nothing is a programming error, not a data condition.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Min of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs. It panics on an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Max of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Quantile returns the p-quantile (0 ≤ p ≤ 1) of xs using linear
// interpolation between order statistics (the same convention as
// numpy's default). It panics if xs is empty or p is outside [0, 1].
func Quantile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		panic("stats: Quantile of empty slice")
	}
	if p < 0 || p > 1 {
		panic(fmt.Sprintf("stats: Quantile probability %v outside [0,1]", p))
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return quantileSorted(sorted, p)
}

// quantileSorted interpolates the p-quantile of an already-sorted
// non-empty sample. Quantile and Scratch.Quantile both evaluate this
// one expression, which is what makes their results bit-identical.
func quantileSorted(sorted []float64, p float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := p * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 0.5-quantile of xs.
func Median(xs []float64) float64 {
	return Quantile(xs, 0.5)
}

// MeanStd returns both the mean and the sample standard deviation in a
// single pass-friendly call; it is the shape most tables in the paper
// report ("x ± y").
func MeanStd(xs []float64) (mean, std float64) {
	return Mean(xs), Std(xs)
}

// Pearson returns the Pearson correlation coefficient between xs and
// ys. It panics if the lengths differ and returns 0 when either series
// has zero variance.
func Pearson(xs, ys []float64) float64 {
	if len(xs) != len(ys) {
		panic("stats: Pearson length mismatch")
	}
	if len(xs) < 2 {
		return 0
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// MAE returns the mean absolute error between predictions and targets.
// It panics if the lengths differ or are zero.
func MAE(pred, target []float64) float64 {
	if len(pred) != len(target) || len(pred) == 0 {
		panic("stats: MAE requires equal, non-empty slices")
	}
	var s float64
	for i := range pred {
		s += math.Abs(pred[i] - target[i])
	}
	return s / float64(len(pred))
}

// MAPE returns the mean absolute percentage error, in percent, between
// predictions and targets. Targets equal to zero are skipped; if all
// targets are zero it returns 0.
func MAPE(pred, target []float64) float64 {
	if len(pred) != len(target) || len(pred) == 0 {
		panic("stats: MAPE requires equal, non-empty slices")
	}
	var s float64
	n := 0
	for i := range pred {
		if target[i] == 0 {
			continue
		}
		s += math.Abs((pred[i] - target[i]) / target[i])
		n++
	}
	if n == 0 {
		return 0
	}
	return 100 * s / float64(n)
}

// RMSE returns the root mean squared error between predictions and
// targets. It panics if the lengths differ or are zero.
func RMSE(pred, target []float64) float64 {
	if len(pred) != len(target) || len(pred) == 0 {
		panic("stats: RMSE requires equal, non-empty slices")
	}
	var s float64
	for i := range pred {
		d := pred[i] - target[i]
		s += d * d
	}
	return math.Sqrt(s / float64(len(pred)))
}
