package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestMeanBasic(t *testing.T) {
	cases := []struct {
		name string
		in   []float64
		want float64
	}{
		{"empty", nil, 0},
		{"single", []float64{5}, 5},
		{"several", []float64{1, 2, 3, 4}, 2.5},
		{"negatives", []float64{-2, 2}, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := Mean(tc.in); got != tc.want {
				t.Fatalf("Mean(%v) = %v, want %v", tc.in, got, tc.want)
			}
		})
	}
}

func TestVarianceAndStd(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	// Sample variance with n-1 denominator: 32/7.
	want := 32.0 / 7.0
	if got := Variance(xs); !almostEqual(got, want, 1e-12) {
		t.Fatalf("Variance = %v, want %v", got, want)
	}
	if got := Std(xs); !almostEqual(got, math.Sqrt(want), 1e-12) {
		t.Fatalf("Std = %v, want %v", got, math.Sqrt(want))
	}
	if Variance([]float64{3}) != 0 {
		t.Fatal("Variance of one element should be 0")
	}
}

func TestCoV(t *testing.T) {
	xs := []float64{10, 10, 10}
	if got := CoV(xs); got != 0 {
		t.Fatalf("CoV of constant series = %v, want 0", got)
	}
	if got := CoV([]float64{0, 0}); got != 0 {
		t.Fatalf("CoV with zero mean = %v, want 0", got)
	}
}

func TestMinMaxPanicOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Min(nil) should panic")
		}
	}()
	Min(nil)
}

func TestQuantile(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	if got := Quantile(xs, 0); got != 1 {
		t.Fatalf("Quantile(0) = %v, want 1", got)
	}
	if got := Quantile(xs, 1); got != 4 {
		t.Fatalf("Quantile(1) = %v, want 4", got)
	}
	if got := Quantile(xs, 0.5); !almostEqual(got, 2.5, 1e-12) {
		t.Fatalf("Quantile(0.5) = %v, want 2.5", got)
	}
	if got := Median(xs); !almostEqual(got, 2.5, 1e-12) {
		t.Fatalf("Median = %v, want 2.5", got)
	}
}

func TestQuantileDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("Quantile mutated its input: %v", xs)
	}
}

func TestPearson(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	if got := Pearson(xs, ys); !almostEqual(got, 1, 1e-12) {
		t.Fatalf("Pearson perfect positive = %v, want 1", got)
	}
	neg := []float64{10, 8, 6, 4, 2}
	if got := Pearson(xs, neg); !almostEqual(got, -1, 1e-12) {
		t.Fatalf("Pearson perfect negative = %v, want -1", got)
	}
	if got := Pearson(xs, []float64{7, 7, 7, 7, 7}); got != 0 {
		t.Fatalf("Pearson with constant series = %v, want 0", got)
	}
}

func TestErrorMetrics(t *testing.T) {
	pred := []float64{1, 2, 3}
	target := []float64{2, 2, 5}
	if got := MAE(pred, target); !almostEqual(got, 1, 1e-12) {
		t.Fatalf("MAE = %v, want 1", got)
	}
	wantRMSE := math.Sqrt((1.0 + 0 + 4) / 3)
	if got := RMSE(pred, target); !almostEqual(got, wantRMSE, 1e-12) {
		t.Fatalf("RMSE = %v, want %v", got, wantRMSE)
	}
	// MAPE skips zero targets.
	if got := MAPE([]float64{1, 5}, []float64{0, 4}); !almostEqual(got, 25, 1e-12) {
		t.Fatalf("MAPE = %v, want 25", got)
	}
}

func TestMAEPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MAE with mismatched lengths should panic")
		}
	}()
	MAE([]float64{1}, []float64{1, 2})
}

// Property: for any sample, min ≤ mean ≤ max and RMSE ≥ MAE.
func TestQuickMeanBounds(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e12 {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		m := Mean(xs)
		return Min(xs) <= m+1e-6 && m <= Max(xs)+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickRMSEDominatesMAE(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) < 2 {
			return true
		}
		half := len(raw) / 2
		pred := make([]float64, 0, half)
		tgt := make([]float64, 0, half)
		for i := 0; i < half; i++ {
			p, q := raw[i], raw[half+i]
			if math.IsNaN(p) || math.IsInf(p, 0) || math.IsNaN(q) || math.IsInf(q, 0) {
				return true
			}
			if math.Abs(p) > 1e9 || math.Abs(q) > 1e9 {
				return true
			}
			pred = append(pred, p)
			tgt = append(tgt, q)
		}
		if len(pred) == 0 {
			return true
		}
		return RMSE(pred, tgt)+1e-9 >= MAE(pred, tgt)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
