// Package storage implements the checkpoint store the live cluster's
// chief worker writes to — the "cloud storage" of the paper's Fig. 1.
//
// Each checkpoint mirrors TensorFlow's on-disk structure (§IV-A):
// a data file with the raw variable values, an index file locating
// tensors inside the data file, and a meta file describing the
// training graph. Writes are atomic (temp file + rename) and a
// manifest records the latest complete checkpoint, so a revocation
// mid-write can never corrupt the restore path.
package storage

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
)

// Meta describes the training session that produced a checkpoint —
// the minimal analogue of TensorFlow's serialized graph.
type Meta struct {
	ModelName string `json:"model_name"`
	Classes   int    `json:"classes"`
	Features  int    `json:"features"`
	Step      int64  `json:"step"`
	// Chief records which worker wrote the checkpoint, which the
	// takeover tests use to verify §II's step (8)–(9).
	Chief string `json:"chief"`
}

// Store is a directory-backed checkpoint store.
type Store struct {
	dir string
}

// manifest records the latest durable checkpoint.
type manifest struct {
	LatestStep int64 `json:"latest_step"`
}

// NewStore opens (creating if needed) a store rooted at dir.
func NewStore(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: create %s: %w", dir, err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

func (s *Store) prefix(step int64) string {
	return filepath.Join(s.dir, fmt.Sprintf("model.ckpt-%d", step))
}

// Save writes a checkpoint for the given step: data, index, and meta
// files, then the manifest. The write is atomic with respect to
// Latest/Load: a crash mid-save leaves the previous checkpoint
// intact.
func (s *Store) Save(params []float64, meta Meta) error {
	if len(params) == 0 {
		return fmt.Errorf("storage: refusing to save empty parameters")
	}
	prefix := s.prefix(meta.Step)

	// Data file: little-endian float64s.
	data := make([]byte, 8*len(params))
	for i, p := range params {
		binary.LittleEndian.PutUint64(data[i*8:], math.Float64bits(p))
	}
	if err := atomicWrite(prefix+".data", data); err != nil {
		return err
	}

	// Index file: tensor table (single flat tensor here, but the
	// format carries name/offset/length like TensorFlow's).
	index := []map[string]any{{
		"tensor": "weights",
		"offset": 0,
		"count":  len(params),
	}}
	indexBytes, err := json.Marshal(index)
	if err != nil {
		return fmt.Errorf("storage: marshal index: %w", err)
	}
	if err := atomicWrite(prefix+".index", indexBytes); err != nil {
		return err
	}

	// Meta file: session/graph description.
	metaBytes, err := json.MarshalIndent(meta, "", "  ")
	if err != nil {
		return fmt.Errorf("storage: marshal meta: %w", err)
	}
	if err := atomicWrite(prefix+".meta", metaBytes); err != nil {
		return err
	}

	// Manifest last: the checkpoint becomes visible only once all
	// three files are durable.
	manifestBytes, err := json.Marshal(manifest{LatestStep: meta.Step})
	if err != nil {
		return fmt.Errorf("storage: marshal manifest: %w", err)
	}
	return atomicWrite(filepath.Join(s.dir, "checkpoint"), manifestBytes)
}

// Latest returns the step of the newest complete checkpoint; ok is
// false if the store is empty.
func (s *Store) Latest() (step int64, ok bool, err error) {
	raw, err := os.ReadFile(filepath.Join(s.dir, "checkpoint"))
	if os.IsNotExist(err) {
		return 0, false, nil
	}
	if err != nil {
		return 0, false, fmt.Errorf("storage: read manifest: %w", err)
	}
	var m manifest
	if err := json.Unmarshal(raw, &m); err != nil {
		return 0, false, fmt.Errorf("storage: parse manifest: %w", err)
	}
	return m.LatestStep, true, nil
}

// Load reads the checkpoint for the given step.
func (s *Store) Load(step int64) ([]float64, Meta, error) {
	prefix := s.prefix(step)
	data, err := os.ReadFile(prefix + ".data")
	if err != nil {
		return nil, Meta{}, fmt.Errorf("storage: read data: %w", err)
	}
	if len(data)%8 != 0 {
		return nil, Meta{}, fmt.Errorf("storage: data file length %d not a multiple of 8", len(data))
	}
	params := make([]float64, len(data)/8)
	for i := range params {
		params[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[i*8:]))
	}
	metaBytes, err := os.ReadFile(prefix + ".meta")
	if err != nil {
		return nil, Meta{}, fmt.Errorf("storage: read meta: %w", err)
	}
	var meta Meta
	if err := json.Unmarshal(metaBytes, &meta); err != nil {
		return nil, Meta{}, fmt.Errorf("storage: parse meta: %w", err)
	}
	return params, meta, nil
}

// LoadLatest restores the newest checkpoint; ok is false on an empty
// store.
func (s *Store) LoadLatest() (params []float64, meta Meta, ok bool, err error) {
	step, ok, err := s.Latest()
	if err != nil || !ok {
		return nil, Meta{}, ok, err
	}
	params, meta, err = s.Load(step)
	if err != nil {
		return nil, Meta{}, false, err
	}
	return params, meta, true, nil
}

// FileSizes returns the data/index/meta sizes of a checkpoint — the
// paper's Sd, Si, Sm features (§IV-A).
func (s *Store) FileSizes(step int64) (data, index, meta int64, err error) {
	prefix := s.prefix(step)
	for _, f := range []struct {
		suffix string
		out    *int64
	}{{".data", &data}, {".index", &index}, {".meta", &meta}} {
		info, serr := os.Stat(prefix + f.suffix)
		if serr != nil {
			return 0, 0, 0, fmt.Errorf("storage: stat %s: %w", f.suffix, serr)
		}
		*f.out = info.Size()
	}
	return data, index, meta, nil
}

// atomicWrite writes bytes to path via a temp file and rename.
func atomicWrite(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return fmt.Errorf("storage: temp file: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("storage: write %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("storage: close temp: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("storage: rename to %s: %w", path, err)
	}
	return nil
}
