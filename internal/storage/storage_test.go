package storage

import (
	"math"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
)

func newStore(t *testing.T) *Store {
	t.Helper()
	s, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSaveLoadRoundTrip(t *testing.T) {
	s := newStore(t)
	params := []float64{1.5, -2.25, math.Pi, 0, 1e-300}
	meta := Meta{ModelName: "softmax", Classes: 10, Features: 16, Step: 400, Chief: "worker-0"}
	if err := s.Save(params, meta); err != nil {
		t.Fatal(err)
	}
	got, gotMeta, err := s.Load(400)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(params) {
		t.Fatalf("loaded %d params, want %d", len(got), len(params))
	}
	for i := range params {
		if got[i] != params[i] {
			t.Fatalf("param %d = %v, want %v", i, got[i], params[i])
		}
	}
	if gotMeta != meta {
		t.Fatalf("meta = %+v, want %+v", gotMeta, meta)
	}
}

func TestLatestTracksNewest(t *testing.T) {
	s := newStore(t)
	if _, ok, err := s.Latest(); err != nil || ok {
		t.Fatalf("empty store Latest = ok=%v err=%v", ok, err)
	}
	for _, step := range []int64{100, 200, 300} {
		if err := s.Save([]float64{float64(step)}, Meta{Step: step}); err != nil {
			t.Fatal(err)
		}
	}
	step, ok, err := s.Latest()
	if err != nil || !ok || step != 300 {
		t.Fatalf("Latest = %d ok=%v err=%v, want 300", step, ok, err)
	}
	params, meta, ok, err := s.LoadLatest()
	if err != nil || !ok {
		t.Fatal(err)
	}
	if params[0] != 300 || meta.Step != 300 {
		t.Fatalf("LoadLatest returned step %d", meta.Step)
	}
	// Older checkpoints remain loadable.
	old, _, err := s.Load(100)
	if err != nil || old[0] != 100 {
		t.Fatalf("old checkpoint unreadable: %v", err)
	}
}

func TestSaveRejectsEmpty(t *testing.T) {
	s := newStore(t)
	if err := s.Save(nil, Meta{Step: 1}); err == nil {
		t.Fatal("empty save should error")
	}
}

func TestFileSizes(t *testing.T) {
	s := newStore(t)
	params := make([]float64, 1000)
	if err := s.Save(params, Meta{Step: 7, ModelName: "m"}); err != nil {
		t.Fatal(err)
	}
	data, index, meta, err := s.FileSizes(7)
	if err != nil {
		t.Fatal(err)
	}
	if data != 8000 {
		t.Fatalf("data size = %d, want 8000", data)
	}
	if index <= 0 || meta <= 0 {
		t.Fatalf("index/meta sizes = %d/%d, want positive", index, meta)
	}
}

func TestLoadMissingStep(t *testing.T) {
	s := newStore(t)
	if _, _, err := s.Load(999); err == nil {
		t.Fatal("loading a missing checkpoint should error")
	}
}

func TestNoTempFilesLeftBehind(t *testing.T) {
	s := newStore(t)
	if err := s.Save([]float64{1}, Meta{Step: 1}); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(s.Dir())
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if match, _ := filepath.Match(".tmp-*", e.Name()); match {
			t.Fatalf("temp file %s left behind", e.Name())
		}
	}
}

// Property: any float64 vector round-trips bit-exactly.
func TestQuickRoundTrip(t *testing.T) {
	s := newStore(t)
	step := int64(0)
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		step++
		if err := s.Save(raw, Meta{Step: step}); err != nil {
			return false
		}
		got, _, err := s.Load(step)
		if err != nil || len(got) != len(raw) {
			return false
		}
		for i := range raw {
			// Compare bits so NaNs round-trip too.
			if math.Float64bits(got[i]) != math.Float64bits(raw[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
