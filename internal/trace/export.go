package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteRecordsCSV streams the revocation study's raw records as CSV,
// the format the paper's public dataset uses.
func (s *RevocationStudy) WriteRecordsCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{"gpu", "region", "stressed", "revoked", "lifetime_hours", "revocation_local_hour"}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("trace: writing CSV header: %w", err)
	}
	for _, rec := range s.Records {
		row := []string{
			rec.GPU.String(),
			rec.Region.String(),
			strconv.FormatBool(rec.Stressed),
			strconv.FormatBool(rec.Revoked),
			strconv.FormatFloat(rec.LifetimeHours, 'f', 4, 64),
			strconv.Itoa(rec.RevocationLocalHour),
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("trace: writing CSV row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteStartupCSV streams startup summaries as CSV.
func WriteStartupCSV(w io.Writer, summaries []StartupSummary) error {
	cw := csv.NewWriter(w)
	header := []string{"gpu", "region", "tier", "n", "provisioning_s", "staging_s", "booting_s", "total_s", "total_std_s"}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("trace: writing CSV header: %w", err)
	}
	for _, s := range summaries {
		row := []string{
			s.GPU.String(),
			s.Region.String(),
			s.Tier.String(),
			strconv.Itoa(s.N),
			strconv.FormatFloat(s.MeanProvisioning, 'f', 2, 64),
			strconv.FormatFloat(s.MeanStaging, 'f', 2, 64),
			strconv.FormatFloat(s.MeanBooting, 'f', 2, 64),
			strconv.FormatFloat(s.MeanTotal, 'f', 2, 64),
			strconv.FormatFloat(s.StdTotal, 'f', 2, 64),
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("trace: writing CSV row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}
