package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"repro/internal/cloud"
	"repro/internal/model"
)

// WriteRecordsCSV streams the revocation study's raw records as CSV,
// the format the paper's public dataset uses.
func (s *RevocationStudy) WriteRecordsCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{"gpu", "region", "stressed", "revoked", "lifetime_hours", "revocation_local_hour"}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("trace: writing CSV header: %w", err)
	}
	for _, rec := range s.Records {
		row := []string{
			rec.GPU.String(),
			rec.Region.String(),
			strconv.FormatBool(rec.Stressed),
			strconv.FormatBool(rec.Revoked),
			// Shortest representation that parses back to the exact
			// float, so Write → Read is lossless.
			strconv.FormatFloat(rec.LifetimeHours, 'g', -1, 64),
			strconv.Itoa(rec.RevocationLocalHour),
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("trace: writing CSV row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadRecordsCSV parses the revocation-record format WriteRecordsCSV
// emits (and the paper's public dataset uses) back into records, so a
// CSV trace — exported by cmd/revstudy or collected from a real spot
// market — can drive an empirical lifetime model.
func ReadRecordsCSV(r io.Reader) ([]ServerRecord, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 6
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("trace: reading CSV header: %w", err)
	}
	want := []string{"gpu", "region", "stressed", "revoked", "lifetime_hours", "revocation_local_hour"}
	for i, h := range want {
		if header[i] != h {
			return nil, fmt.Errorf("trace: CSV column %d is %q, want %q", i, header[i], h)
		}
	}
	var out []ServerRecord
	for line := 2; ; line++ {
		row, err := cr.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, fmt.Errorf("trace: reading CSV: %w", err)
		}
		rec, err := parseRecord(row)
		if err != nil {
			return nil, fmt.Errorf("trace: CSV line %d: %w", line, err)
		}
		out = append(out, rec)
	}
}

func parseRecord(row []string) (ServerRecord, error) {
	var rec ServerRecord
	g, err := model.ParseGPU(row[0])
	if err != nil {
		return rec, err
	}
	region, err := cloud.ParseRegion(row[1])
	if err != nil {
		return rec, err
	}
	stressed, err := strconv.ParseBool(row[2])
	if err != nil {
		return rec, fmt.Errorf("stressed: %w", err)
	}
	revoked, err := strconv.ParseBool(row[3])
	if err != nil {
		return rec, fmt.Errorf("revoked: %w", err)
	}
	hours, err := strconv.ParseFloat(row[4], 64)
	if err != nil {
		return rec, fmt.Errorf("lifetime_hours: %w", err)
	}
	localHour, err := strconv.Atoi(row[5])
	if err != nil {
		return rec, fmt.Errorf("revocation_local_hour: %w", err)
	}
	if localHour < -1 || localHour > 23 {
		return rec, fmt.Errorf("revocation_local_hour %d out of [-1, 23]", localHour)
	}
	return ServerRecord{
		GPU:                 g,
		Region:              region,
		Stressed:            stressed,
		Revoked:             revoked,
		LifetimeHours:       hours,
		RevocationLocalHour: localHour,
	}, nil
}

// EmpiricalLifetimeModel turns revocation records into a bootstrap
// trace-replay cloud.LifetimeModel: simulations under it draw
// lifetimes from the recorded outcomes instead of the calibrated
// distributions. Register the result with cloud.RegisterLifetimeModel
// to make it selectable by name (cmd/pland's -trace flag does both).
func EmpiricalLifetimeModel(name string, recs []ServerRecord) (*cloud.EmpiricalModel, error) {
	samples := make([]cloud.LifetimeSample, len(recs))
	for i, rec := range recs {
		samples[i] = cloud.LifetimeSample{
			GPU:           rec.GPU,
			Region:        rec.Region,
			Revoked:       rec.Revoked,
			LifetimeHours: rec.LifetimeHours,
		}
	}
	return cloud.NewEmpiricalModel(name, samples)
}

// LifetimeModel replays this study's own records; see
// EmpiricalLifetimeModel.
func (s *RevocationStudy) LifetimeModel(name string) (*cloud.EmpiricalModel, error) {
	return EmpiricalLifetimeModel(name, s.Records)
}

// WriteStartupCSV streams startup summaries as CSV.
func WriteStartupCSV(w io.Writer, summaries []StartupSummary) error {
	cw := csv.NewWriter(w)
	header := []string{"gpu", "region", "tier", "n", "provisioning_s", "staging_s", "booting_s", "total_s", "total_std_s"}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("trace: writing CSV header: %w", err)
	}
	for _, s := range summaries {
		row := []string{
			s.GPU.String(),
			s.Region.String(),
			s.Tier.String(),
			strconv.Itoa(s.N),
			strconv.FormatFloat(s.MeanProvisioning, 'f', 2, 64),
			strconv.FormatFloat(s.MeanStaging, 'f', 2, 64),
			strconv.FormatFloat(s.MeanBooting, 'f', 2, 64),
			strconv.FormatFloat(s.MeanTotal, 'f', 2, 64),
			strconv.FormatFloat(s.StdTotal, 'f', 2, 64),
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("trace: writing CSV row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}
