// Package trace implements CM-DARE's offline measurement campaigns
// (§V): the twelve-day revocation study behind Table V and Figs. 8–9,
// the startup-time study behind Fig. 6, and the post-revocation
// acquisition study behind Fig. 7. Campaign outputs feed the Table V /
// Fig. 8–9 renderers in internal/experiments and (via the endtoend
// experiment) internal/core's Eq. 5 revocation estimator, round-trip
// through CSV (WriteRecordsCSV / ReadRecordsCSV — the format of the
// paper's published dataset), and can be replayed as an empirical
// cloud.LifetimeModel so simulations run against recorded revocation
// behavior instead of the calibrated distributions in internal/cloud.
package trace

import (
	"fmt"
	"sort"

	"repro/internal/cloud"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/stats"
)

// CampaignCell is one (GPU, region) batch of the revocation study,
// matching a cell of Table V.
type CampaignCell struct {
	GPU    model.GPU
	Region cloud.Region
	// Servers to launch across the whole campaign.
	Servers int
}

// PaperCampaign returns the paper's exact launch plan: 396 transient
// GPU servers across twelve non-consecutive days (Table V's counts per
// cell).
func PaperCampaign() []CampaignCell {
	return []CampaignCell{
		{model.K80, cloud.USEast1, 30},
		{model.K80, cloud.USCentral1, 48},
		{model.K80, cloud.USWest1, 48},
		{model.K80, cloud.EuropeWest1, 30},
		{model.P100, cloud.USEast1, 30},
		{model.P100, cloud.USCentral1, 30},
		{model.P100, cloud.USWest1, 30},
		{model.P100, cloud.EuropeWest1, 30},
		{model.V100, cloud.USCentral1, 30},
		{model.V100, cloud.USWest1, 30},
		{model.V100, cloud.EuropeWest4, 30},
		{model.V100, cloud.AsiaEast1, 30},
	}
}

// ServerRecord is the outcome of one launched server.
type ServerRecord struct {
	GPU      model.GPU
	Region   cloud.Region
	Stressed bool
	Revoked  bool
	// LifetimeHours is time in Running state; survivors are censored
	// at the 24 h cap.
	LifetimeHours float64
	// RevocationLocalHour is the region-local hour of day of the
	// revocation; -1 for survivors.
	RevocationLocalHour int
}

// RevocationStudy is the campaign result set.
type RevocationStudy struct {
	Records []ServerRecord
}

// RunRevocationStudy launches every cell's servers in batches spread
// over the given number of (virtual) days — the paper uses twelve
// non-consecutive days — and runs the simulation until every server
// has ended. Half of each batch is stressed (CPU/memory/GPU load),
// half idle, to test workload independence.
func RunRevocationStudy(k *sim.Kernel, p *cloud.Provider, cells []CampaignCell, days int) (*RevocationStudy, error) {
	if days <= 0 {
		return nil, fmt.Errorf("trace: campaign needs positive days")
	}
	study := &RevocationStudy{}
	for _, cell := range cells {
		if !cloud.Offered(cell.Region, cell.GPU) {
			return nil, fmt.Errorf("trace: %v not offered in %v", cell.GPU, cell.Region)
		}
		perDay := cell.Servers / days
		extra := cell.Servers % days
		launched := 0
		for d := 0; d < days; d++ {
			n := perDay
			if d < extra {
				n++
			}
			// Non-consecutive days: every other day, batches at a
			// different hour each day so local-time effects are
			// exercised.
			dayStart := sim.Time(float64(d*2) * 24 * 3600)
			batchAt := dayStart + sim.Time(float64((d*7)%24)*3600)
			for i := 0; i < n; i++ {
				cell := cell
				stressed := (launched+i)%2 == 0
				k.At(batchAt, func() {
					// Requests were validated against the offering
					// above; a launch failure here is a bug.
					p.MustLaunch(cloud.Request{
						Region:   cell.Region,
						GPU:      cell.GPU,
						Tier:     cloud.Transient,
						Stressed: stressed,
					})
				})
			}
			launched += n
		}
	}
	k.Run()
	for _, in := range p.Instances() {
		if in.GPU == 0 {
			continue
		}
		rec := ServerRecord{
			GPU:                 in.GPU,
			Region:              in.Region,
			Stressed:            in.Stressed,
			Revoked:             in.WasRevoked(),
			LifetimeHours:       in.LifetimeSeconds(k.Now()) / 3600,
			RevocationLocalHour: -1,
		}
		if in.WasRevoked() {
			rec.RevocationLocalHour = in.Region.LocalHour(in.EndedAt.Hours())
		}
		study.Records = append(study.Records, rec)
	}
	return study, nil
}

// CellSummary aggregates one Table V cell.
type CellSummary struct {
	GPU      model.GPU
	Region   cloud.Region
	Launched int
	Revoked  int
}

// Fraction returns the cell's revocation rate.
func (c CellSummary) Fraction() float64 {
	if c.Launched == 0 {
		return 0
	}
	return float64(c.Revoked) / float64(c.Launched)
}

// TableV aggregates the study into Table V's cells, ordered by GPU
// then region.
func (s *RevocationStudy) TableV() []CellSummary {
	type key struct {
		g model.GPU
		r cloud.Region
	}
	agg := make(map[key]*CellSummary)
	for _, rec := range s.Records {
		k := key{rec.GPU, rec.Region}
		c := agg[k]
		if c == nil {
			c = &CellSummary{GPU: rec.GPU, Region: rec.Region}
			agg[k] = c
		}
		c.Launched++
		if rec.Revoked {
			c.Revoked++
		}
	}
	out := make([]CellSummary, 0, len(agg))
	for _, c := range agg {
		out = append(out, *c)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].GPU != out[j].GPU {
			return out[i].GPU < out[j].GPU
		}
		return out[i].Region < out[j].Region
	})
	return out
}

// Totals returns per-GPU launched/revoked counts (Table V's last row).
func (s *RevocationStudy) Totals() map[model.GPU]CellSummary {
	out := make(map[model.GPU]CellSummary)
	for _, rec := range s.Records {
		c := out[rec.GPU]
		c.GPU = rec.GPU
		c.Launched++
		if rec.Revoked {
			c.Revoked++
		}
		out[rec.GPU] = c
	}
	return out
}

// LifetimeCDF returns the empirical CDF of lifetimes for one cell,
// conditional on revocation (Fig. 8's curves). ok is false if the cell
// has no revocations.
func (s *RevocationStudy) LifetimeCDF(g model.GPU, r cloud.Region) (*stats.ECDF, bool) {
	var lifetimes []float64
	for _, rec := range s.Records {
		if rec.GPU == g && rec.Region == r && rec.Revoked {
			lifetimes = append(lifetimes, rec.LifetimeHours)
		}
	}
	if len(lifetimes) == 0 {
		return nil, false
	}
	return stats.MustECDF(lifetimes), true
}

// CensoredLifetimes returns all lifetimes for a cell with survivors
// censored at 24 h — the input Eq. 5's revocation estimator wants.
func (s *RevocationStudy) CensoredLifetimes(g model.GPU, r cloud.Region) []float64 {
	var out []float64
	for _, rec := range s.Records {
		if rec.GPU == g && rec.Region == r {
			out = append(out, rec.LifetimeHours)
		}
	}
	return out
}

// MeanTimeToRevocation returns the mean lifetime of revoked servers in
// a cell (§V-C's MTTR). ok is false with no revocations.
func (s *RevocationStudy) MeanTimeToRevocation(g model.GPU, r cloud.Region) (float64, bool) {
	var acc stats.Accumulator
	for _, rec := range s.Records {
		if rec.GPU == g && rec.Region == r && rec.Revoked {
			acc.Add(rec.LifetimeHours)
		}
	}
	if acc.N() == 0 {
		return 0, false
	}
	return acc.Mean(), true
}

// HourHistogram returns revocations by local hour of day for one GPU
// type across all regions (Fig. 9).
func (s *RevocationStudy) HourHistogram(g model.GPU) *stats.HourHistogram {
	var h stats.HourHistogram
	for _, rec := range s.Records {
		if rec.GPU == g && rec.Revoked {
			h.Add(rec.RevocationLocalHour)
		}
	}
	return &h
}

// WorkloadSplit returns revocation counts for idle and stressed
// servers (Table V's workload-independence observation).
func (s *RevocationStudy) WorkloadSplit() (idleRevoked, stressedRevoked int) {
	for _, rec := range s.Records {
		if !rec.Revoked {
			continue
		}
		if rec.Stressed {
			stressedRevoked++
		} else {
			idleRevoked++
		}
	}
	return idleRevoked, stressedRevoked
}
