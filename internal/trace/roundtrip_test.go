package trace

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/cloud"
	"repro/internal/model"
	"repro/internal/stats"
)

// TestRecordsCSVRoundTripIsLossless: WriteRecordsCSV → ReadRecordsCSV
// reproduces a real campaign's records exactly, field for field — the
// property that lets a CSV trace drive an empirical lifetime model
// without drift.
func TestRecordsCSVRoundTripIsLossless(t *testing.T) {
	study := runPaperStudy(t, 21)
	var buf bytes.Buffer
	if err := study.WriteRecordsCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRecordsCSV(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(study.Records) {
		t.Fatalf("round trip returned %d records, want %d", len(got), len(study.Records))
	}
	for i, rec := range study.Records {
		if got[i] != rec {
			t.Fatalf("record %d drifted through CSV: wrote %+v, read %+v", i, rec, got[i])
		}
	}
	// The canonical form is a fixed point: re-serializing the parsed
	// records is byte-identical.
	var again bytes.Buffer
	if err := (&RevocationStudy{Records: got}).WriteRecordsCSV(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Fatal("Write(Read(Write(s))) is not byte-identical to Write(s)")
	}
}

// TestQuickRecordsCSVRoundTrip widens the lossless property beyond
// campaign outputs: arbitrary finite lifetimes and flags survive the
// trip bit-exactly.
func TestQuickRecordsCSVRoundTrip(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := stats.NewRng(seed)
		count := int(n%50) + 1
		recs := make([]ServerRecord, count)
		gpus := model.AllGPUs()
		for i := range recs {
			g := gpus[rng.Intn(len(gpus))]
			regions := cloud.OfferedRegions(g)
			recs[i] = ServerRecord{
				GPU:                 g,
				Region:              regions[rng.Intn(len(regions))],
				Stressed:            rng.Bernoulli(0.5),
				Revoked:             rng.Bernoulli(0.5),
				LifetimeHours:       rng.Uniform(0, 24),
				RevocationLocalHour: rng.Intn(25) - 1,
			}
		}
		var buf bytes.Buffer
		if err := (&RevocationStudy{Records: recs}).WriteRecordsCSV(&buf); err != nil {
			return false
		}
		got, err := ReadRecordsCSV(&buf)
		if err != nil || len(got) != len(recs) {
			return false
		}
		for i := range recs {
			if got[i] != recs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestReadRecordsCSVRejectsMalformedInput(t *testing.T) {
	for name, csv := range map[string]string{
		"empty":          "",
		"wrong header":   "a,b,c,d,e,f\n",
		"short row":      "gpu,region,stressed,revoked,lifetime_hours,revocation_local_hour\nK80,us-west1,false\n",
		"bad gpu":        "gpu,region,stressed,revoked,lifetime_hours,revocation_local_hour\nH100,us-west1,false,true,2,3\n",
		"bad region":     "gpu,region,stressed,revoked,lifetime_hours,revocation_local_hour\nK80,mars-north1,false,true,2,3\n",
		"bad bool":       "gpu,region,stressed,revoked,lifetime_hours,revocation_local_hour\nK80,us-west1,maybe,true,2,3\n",
		"bad float":      "gpu,region,stressed,revoked,lifetime_hours,revocation_local_hour\nK80,us-west1,false,true,soon,3\n",
		"bad hour":       "gpu,region,stressed,revoked,lifetime_hours,revocation_local_hour\nK80,us-west1,false,true,2,24\n",
		"bad hour (neg)": "gpu,region,stressed,revoked,lifetime_hours,revocation_local_hour\nK80,us-west1,false,true,2,-2\n",
	} {
		if _, err := ReadRecordsCSV(strings.NewReader(csv)); err == nil {
			t.Errorf("%s: malformed CSV accepted", name)
		}
	}
}

// TestStudyReplaysAsLifetimeModel closes the loop the subsystem is
// for: campaign → CSV → records → empirical model, with the replayed
// revocation fraction matching the recorded one.
func TestStudyReplaysAsLifetimeModel(t *testing.T) {
	study := runPaperStudy(t, 23)
	var buf bytes.Buffer
	if err := study.WriteRecordsCSV(&buf); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadRecordsCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	m, err := EmpiricalLifetimeModel("replayed", recs)
	if err != nil {
		t.Fatal(err)
	}
	if m.Name() != "replayed" {
		t.Fatalf("model name = %q", m.Name())
	}
	// Every campaign cell must be covered, and the bootstrap fraction
	// must track the recorded fraction cell by cell.
	rng := stats.NewRng(2)
	for _, c := range study.TableV() {
		if !m.Covers(c.Region, c.GPU) {
			t.Fatalf("trace cell %v/%v not covered", c.Region, c.GPU)
		}
		const n = 3000
		revoked := 0
		for i := 0; i < n; i++ {
			if rev, _ := m.SampleLifetime(rng, c.Region, c.GPU, float64(i%24)); rev {
				revoked++
			}
		}
		got := float64(revoked) / n
		if diff := got - c.Fraction(); diff > 0.05 || diff < -0.05 {
			t.Errorf("%v/%v replayed fraction %.3f, recorded %.3f", c.Region, c.GPU, got, c.Fraction())
		}
	}
}
