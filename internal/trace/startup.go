package trace

import (
	"fmt"

	"repro/internal/cloud"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/stats"
)

// StartupSample is one measured instance startup.
type StartupSample struct {
	GPU    model.GPU
	Region cloud.Region
	Tier   cloud.Tier
	Stages cloud.StartupBreakdown
}

// StartupSummary aggregates startup samples for one configuration
// (Fig. 6's bars: per-stage means plus total statistics).
type StartupSummary struct {
	GPU    model.GPU
	Region cloud.Region
	Tier   cloud.Tier
	N      int

	MeanProvisioning float64
	MeanStaging      float64
	MeanBooting      float64
	MeanTotal        float64
	StdTotal         float64
	CoVTotal         float64
}

// RunStartupStudy launches n servers for every combination of the
// given GPUs, tiers, and regions on a fresh provider state and
// measures stage durations (Fig. 6's methodology).
func RunStartupStudy(k *sim.Kernel, p *cloud.Provider, gpus []model.GPU, tiers []cloud.Tier, regions []cloud.Region, n int) ([]StartupSummary, error) {
	if n <= 0 {
		return nil, fmt.Errorf("trace: startup study needs positive n")
	}
	type cell struct {
		g model.GPU
		r cloud.Region
		t cloud.Tier
	}
	launched := make(map[cell][]*cloud.Instance)
	for _, g := range gpus {
		for _, r := range regions {
			if !cloud.Offered(r, g) {
				return nil, fmt.Errorf("trace: %v not offered in %v", g, r)
			}
			for _, tier := range tiers {
				for i := 0; i < n; i++ {
					in, err := p.Launch(cloud.Request{Region: r, GPU: g, Tier: tier})
					if err != nil {
						return nil, err
					}
					launched[cell{g, r, tier}] = append(launched[cell{g, r, tier}], in)
				}
			}
		}
	}
	// Startup completes within minutes; run a bounded horizon so the
	// transient servers' 24 h lifecycles don't dominate the study.
	k.RunUntil(k.Now() + sim.Time(600))

	var out []StartupSummary
	for _, g := range gpus {
		for _, r := range regions {
			for _, tier := range tiers {
				ins := launched[cell{g, r, tier}]
				sum := StartupSummary{GPU: g, Region: r, Tier: tier}
				var prov, stag, boot, total stats.Accumulator
				for _, in := range ins {
					b := in.Startup()
					prov.Add(b.Provisioning)
					stag.Add(b.Staging)
					boot.Add(b.Booting)
					total.Add(b.Total())
				}
				sum.N = total.N()
				sum.MeanProvisioning = prov.Mean()
				sum.MeanStaging = stag.Mean()
				sum.MeanBooting = boot.Mean()
				sum.MeanTotal = total.Mean()
				sum.StdTotal = total.Std()
				sum.CoVTotal = total.CoV()
				out = append(out, sum)
			}
		}
	}
	return out, nil
}

// AcquisitionTiming distinguishes Fig. 7's two request regimes.
type AcquisitionTiming int

const (
	// Immediate requests follow a revocation within seconds.
	Immediate AcquisitionTiming = iota + 1
	// Delayed requests wait at least an hour after a revocation.
	Delayed
)

// String names the timing.
func (a AcquisitionTiming) String() string {
	if a == Immediate {
		return "immediate"
	}
	return "delayed"
}

// PostRevocationResult summarizes startup behavior for one requested
// GPU type under one timing regime (Fig. 7's bars).
type PostRevocationResult struct {
	Requested model.GPU
	Timing    AcquisitionTiming
	N         int
	MeanTotal float64
	CoVTotal  float64
}

// RunPostRevocationStudy reproduces Fig. 7's methodology: run bait K80
// transient servers in a region offering all GPU types and, after each
// bait revocation, request one server of each GPU type — immediately,
// or after a delay long enough for the capacity pool to settle — and
// record its startup time.
//
// Trials are strictly sequential (one bait at a time, probes
// terminated as soon as they boot) so that the delayed regime is not
// polluted by churn from unrelated revocations, matching the paper's
// controlled measurement.
func RunPostRevocationStudy(k *sim.Kernel, p *cloud.Provider, timing AcquisitionTiming, trials int) ([]PostRevocationResult, error) {
	if trials <= 0 {
		return nil, fmt.Errorf("trace: post-revocation study needs positive trials")
	}
	const region = cloud.USCentral1 // offers all three GPU types
	probesByGPU := make(map[model.GPU][]*cloud.Instance)
	remaining := trials

	var launchBait func()
	probe := func() {
		booted := 0
		for _, g := range model.AllGPUs() {
			in, err := p.Launch(cloud.Request{
				Region: region,
				GPU:    g,
				Tier:   cloud.Transient,
				OnRunning: func(in *cloud.Instance) {
					// Startup is measured; stop the probe so its own
					// later revocation cannot churn the next trial.
					p.Terminate(in)
					booted++
					if booted == len(model.AllGPUs()) && remaining > 0 {
						// Let the pool settle before the next trial's
						// bait so trials stay independent.
						k.After(2*3600, launchBait)
					}
				},
			})
			if err != nil {
				panic(fmt.Sprintf("trace: probe launch: %v", err))
			}
			probesByGPU[g] = append(probesByGPU[g], in)
		}
	}
	launchBait = func() {
		_, err := p.Launch(cloud.Request{
			Region: region,
			GPU:    model.K80,
			Tier:   cloud.Transient,
			OnRevoked: func(*cloud.Instance) {
				remaining--
				if timing == Delayed {
					k.After(2*3600, probe)
				} else {
					k.After(0.001, probe)
				}
			},
			OnRunning: func(in *cloud.Instance) {
				// Baits that would survive to the 24 h cap stall the
				// study; give each bait 12 h to die, then replace it.
				k.After(12*3600, func() {
					if !in.State().Done() {
						p.Terminate(in)
						launchBait()
					}
				})
			},
		})
		if err != nil {
			panic(fmt.Sprintf("trace: bait launch: %v", err))
		}
	}
	launchBait()
	k.Run()

	var out []PostRevocationResult
	for _, g := range model.AllGPUs() {
		var total stats.Accumulator
		for _, in := range probesByGPU[g] {
			if b := in.Startup(); b.Total() > 0 {
				total.Add(b.Total())
			}
		}
		out = append(out, PostRevocationResult{
			Requested: g,
			Timing:    timing,
			N:         total.N(),
			MeanTotal: total.Mean(),
			CoVTotal:  total.CoV(),
		})
	}
	return out, nil
}
