package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/cloud"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/stats"
)

func newEnv(seed int64) (*sim.Kernel, *cloud.Provider) {
	k := &sim.Kernel{}
	return k, cloud.NewProvider(k, stats.NewRng(seed))
}

func runPaperStudy(t *testing.T, seed int64) *RevocationStudy {
	t.Helper()
	k, p := newEnv(seed)
	study, err := RunRevocationStudy(k, p, PaperCampaign(), 12)
	if err != nil {
		t.Fatal(err)
	}
	return study
}

func TestRevocationStudyCounts(t *testing.T) {
	study := runPaperStudy(t, 1)
	if len(study.Records) != 396 {
		t.Fatalf("records = %d, want 396 (Table V)", len(study.Records))
	}
	totals := study.Totals()
	if totals[model.K80].Launched != 156 {
		t.Errorf("K80 launched = %d, want 156", totals[model.K80].Launched)
	}
	if totals[model.P100].Launched != 120 || totals[model.V100].Launched != 120 {
		t.Errorf("P100/V100 launched = %d/%d, want 120/120",
			totals[model.P100].Launched, totals[model.V100].Launched)
	}
	// Overall revocation rates should land near Table V's totals
	// (46.15%, 54.17%, 57.5%). With n≈120–156 allow generous noise.
	for g, want := range map[model.GPU]float64{
		model.K80:  0.4615,
		model.P100: 0.5417,
		model.V100: 0.575,
	} {
		got := totals[g].Fraction()
		if math.Abs(got-want) > 0.13 {
			t.Errorf("%v revocation fraction = %.3f, want ≈%.3f", g, got, want)
		}
	}
}

func TestRevocationStudyCells(t *testing.T) {
	study := runPaperStudy(t, 2)
	cells := study.TableV()
	if len(cells) != 12 {
		t.Fatalf("cells = %d, want 12", len(cells))
	}
	// The calibration's most extreme cells should order correctly
	// even with small-sample noise: us-west1 K80 (22.9%) well below
	// europe-west1 K80 (66.7%).
	var usWest, euWest CellSummary
	for _, c := range cells {
		if c.GPU == model.K80 && c.Region == cloud.USWest1 {
			usWest = c
		}
		if c.GPU == model.K80 && c.Region == cloud.EuropeWest1 {
			euWest = c
		}
	}
	if usWest.Launched != 48 || euWest.Launched != 30 {
		t.Fatalf("cell sizes %d/%d, want 48/30", usWest.Launched, euWest.Launched)
	}
	if usWest.Fraction() >= euWest.Fraction() {
		t.Errorf("us-west1 K80 rate %.2f should be well below europe-west1 %.2f",
			usWest.Fraction(), euWest.Fraction())
	}
}

func TestLifetimeCDFShapes(t *testing.T) {
	study := runPaperStudy(t, 3)
	// Fig. 8a: europe-west1 K80 front-loaded, us-west1 K80 back-loaded.
	eu, ok := study.LifetimeCDF(model.K80, cloud.EuropeWest1)
	if !ok {
		t.Fatal("no europe-west1 K80 revocations")
	}
	us, ok := study.LifetimeCDF(model.K80, cloud.USWest1)
	if !ok {
		t.Fatal("no us-west1 K80 revocations")
	}
	if eu.Eval(2) < 0.3 {
		t.Errorf("europe-west1 K80 P(≤2h) = %.2f, want front-loaded (≥0.3)", eu.Eval(2))
	}
	if us.Eval(2) > 0.25 {
		t.Errorf("us-west1 K80 P(≤2h) = %.2f, want back-loaded (≤0.25)", us.Eval(2))
	}
}

func TestMeanTimeToRevocation(t *testing.T) {
	study := runPaperStudy(t, 4)
	// §V-C: V100 pools die young (us-central1 ≈7.7 h MTTR); us-west1
	// K80 lives long (≈19.8 h among revoked... our calibration ≈15–20).
	v100, ok := study.MeanTimeToRevocation(model.V100, cloud.USCentral1)
	if !ok {
		t.Fatal("no V100 us-central1 revocations")
	}
	k80, ok := study.MeanTimeToRevocation(model.K80, cloud.USWest1)
	if !ok {
		t.Skip("no us-west1 K80 revocations this seed")
	}
	if v100 >= k80 {
		t.Errorf("V100 MTTR %.1f h should be well below us-west1 K80 %.1f h", v100, k80)
	}
	if v100 > 14 {
		t.Errorf("V100 us-central1 MTTR = %.1f h, want young (≲14)", v100)
	}
}

func TestHourHistogramPatterns(t *testing.T) {
	// Aggregate several campaign seeds so hour-of-day structure
	// dominates sampling noise.
	var k80Hist, v100Hist stats.HourHistogram
	for seed := int64(10); seed < 16; seed++ {
		study := runPaperStudy(t, seed)
		for h, c := range study.HourHistogram(model.K80).Counts {
			for i := 0; i < c; i++ {
				k80Hist.Add(h)
			}
		}
		for h, c := range study.HourHistogram(model.V100).Counts {
			for i := 0; i < c; i++ {
				v100Hist.Add(h)
			}
		}
	}
	// Fig. 9a: K80 peaks in the morning surge (09:00–11:00).
	peak, _ := k80Hist.Peak()
	if peak < 8 || peak > 11 {
		t.Errorf("K80 revocation peak hour = %d, want 8–11 (Fig. 9a)", peak)
	}
	// Fig. 9c: V100 quiet 16:00–20:00.
	quiet := v100Hist.Counts[16] + v100Hist.Counts[17] + v100Hist.Counts[18] + v100Hist.Counts[19]
	if total := v100Hist.Total(); total > 0 {
		frac := float64(quiet) / float64(total)
		if frac > 0.03 {
			t.Errorf("V100 16–20h revocation fraction = %.3f, want ≈0", frac)
		}
	}
}

func TestWorkloadIndependence(t *testing.T) {
	study := runPaperStudy(t, 5)
	idle, stressed := study.WorkloadSplit()
	total := idle + stressed
	if total == 0 {
		t.Fatal("no revocations at all")
	}
	frac := float64(idle) / float64(total)
	if frac < 0.35 || frac > 0.65 {
		t.Errorf("idle share of revocations = %.2f, want ≈0.5 (Table V)", frac)
	}
}

func TestCensoredLifetimes(t *testing.T) {
	study := runPaperStudy(t, 6)
	lt := study.CensoredLifetimes(model.K80, cloud.USWest1)
	if len(lt) != 48 {
		t.Fatalf("censored lifetimes = %d, want 48", len(lt))
	}
	for _, h := range lt {
		if h <= 0 || h > 24.01 {
			t.Fatalf("lifetime %v h outside (0, 24]", h)
		}
	}
}

func TestRevocationStudyValidation(t *testing.T) {
	k, p := newEnv(7)
	if _, err := RunRevocationStudy(k, p, PaperCampaign(), 0); err == nil {
		t.Error("zero days should error")
	}
	bad := []CampaignCell{{GPU: model.V100, Region: cloud.USEast1, Servers: 3}}
	if _, err := RunRevocationStudy(k, p, bad, 1); err == nil {
		t.Error("unoffered cell should error")
	}
}

func TestStartupStudyFigure6(t *testing.T) {
	k, p := newEnv(8)
	sums, err := RunStartupStudy(k, p,
		[]model.GPU{model.K80, model.P100},
		[]cloud.Tier{cloud.Transient, cloud.OnDemand},
		[]cloud.Region{cloud.USEast1, cloud.USWest1},
		30)
	if err != nil {
		t.Fatal(err)
	}
	if len(sums) != 8 {
		t.Fatalf("summaries = %d, want 8", len(sums))
	}
	byKey := make(map[string]StartupSummary)
	for _, s := range sums {
		byKey[s.GPU.String()+"/"+s.Tier.String()+"/"+s.Region.String()] = s
	}
	k80T := byKey["K80/transient/us-east1"]
	k80O := byKey["K80/on-demand/us-east1"]
	p100T := byKey["P100/transient/us-east1"]
	if k80T.MeanTotal >= 100 {
		t.Errorf("transient K80 startup %.1f s, want < 100 (§V-B)", k80T.MeanTotal)
	}
	if d := k80T.MeanTotal - k80O.MeanTotal; d < 5 || d > 18 {
		t.Errorf("K80 transient minus on-demand = %.1f s, want ≈11", d)
	}
	if p100T.MeanTotal <= k80T.MeanTotal {
		t.Error("transient P100 should start slower than transient K80")
	}
	if p100T.MeanStaging <= k80O.MeanStaging {
		t.Error("transient P100 staging should dominate its slowdown")
	}
	if k80T.N != 30 {
		t.Errorf("sample count = %d, want 30", k80T.N)
	}
}

func TestStartupStudyValidation(t *testing.T) {
	k, p := newEnv(9)
	if _, err := RunStartupStudy(k, p, []model.GPU{model.V100}, []cloud.Tier{cloud.Transient}, []cloud.Region{cloud.USEast1}, 5); err == nil {
		t.Error("unoffered placement should error")
	}
	if _, err := RunStartupStudy(k, p, []model.GPU{model.K80}, []cloud.Tier{cloud.Transient}, []cloud.Region{cloud.USEast1}, 0); err == nil {
		t.Error("zero samples should error")
	}
}

func TestPostRevocationStudyFigure7(t *testing.T) {
	run := func(timing AcquisitionTiming, seed int64) map[model.GPU]PostRevocationResult {
		k, p := newEnv(seed)
		res, err := RunPostRevocationStudy(k, p, timing, 15)
		if err != nil {
			t.Fatal(err)
		}
		out := make(map[model.GPU]PostRevocationResult)
		for _, r := range res {
			out[r.Requested] = r
		}
		return out
	}
	imm := run(Immediate, 10)
	del := run(Delayed, 10)
	for _, g := range model.AllGPUs() {
		i, d := imm[g], del[g]
		if i.N < 10 || d.N < 10 {
			t.Fatalf("%v too few probes: immediate %d, delayed %d", g, i.N, d.N)
		}
		// Fig. 7: means within ≈4 s; immediate CoV several times the
		// delayed CoV.
		if math.Abs(i.MeanTotal-d.MeanTotal) > 6 {
			t.Errorf("%v immediate mean %.1f vs delayed %.1f differ beyond Fig. 7", g, i.MeanTotal, d.MeanTotal)
		}
		if i.CoVTotal < 1.5*d.CoVTotal {
			t.Errorf("%v immediate CoV %.3f should exceed delayed CoV %.3f clearly", g, i.CoVTotal, d.CoVTotal)
		}
	}
}

func TestCSVExports(t *testing.T) {
	study := runPaperStudy(t, 11)
	var buf bytes.Buffer
	if err := study.WriteRecordsCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 397 { // header + 396 records
		t.Fatalf("CSV lines = %d, want 397", len(lines))
	}
	if !strings.HasPrefix(lines[0], "gpu,region,stressed,revoked") {
		t.Fatalf("CSV header = %q", lines[0])
	}

	k, p := newEnv(12)
	sums, err := RunStartupStudy(k, p, []model.GPU{model.K80}, []cloud.Tier{cloud.Transient}, []cloud.Region{cloud.USEast1}, 3)
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := WriteStartupCSV(&buf, sums); err != nil {
		t.Fatal(err)
	}
	if got := len(strings.Split(strings.TrimSpace(buf.String()), "\n")); got != 2 {
		t.Fatalf("startup CSV lines = %d, want 2", got)
	}
}
