package train

import (
	"fmt"
	"strings"

	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/stats"
)

// This file is the synchronous dynamic-batching mode (Config.Batch):
// training proceeds in global rounds, each processing exactly the
// policy's global minibatch. Every live worker computes its share,
// pushes through the parameter-server shards, and the round — one
// global step — completes when the slowest contribution lands (the
// straggler effect). Shares rebalance on every membership change, so
// revocations slow the survivors down instead of shrinking the
// effective batch (SNIPPETS.md Snippet 2's "train with dynamic
// cluster sizes", with Tyagi & Sharma's speed-proportional shares
// taming mixed-GPU stragglers). The asynchronous mode in worker.go is
// untouched when Batch is nil.

// syncEnabled reports whether the session runs in synchronous rounds.
func (c *Cluster) syncEnabled() bool { return c.cfg.Batch != nil }

// Shares returns the current per-worker batch shares (a copy); only
// meaningful in synchronous mode.
func (c *Cluster) Shares() map[string]int {
	out := make(map[string]int, len(c.shares))
	for name, s := range c.shares {
		out[name] = s
	}
	return out
}

// rebalance recomputes the live workers' batch shares. It runs on
// every membership change (join, revocation, scale-in) and at Start,
// keeping the global batch exact across any cluster size the session
// passes through.
func (c *Cluster) rebalance() {
	if !c.syncEnabled() {
		return
	}
	live := c.LiveWorkers()
	c.shares = make(map[string]int, len(live))
	if len(live) == 0 {
		return
	}
	weights := make([]float64, len(live))
	for i, name := range live {
		if c.cfg.Batch.Dynamic {
			weights[i] = model.StepsPerSecond(c.workers[name].gpu, c.cfg.Model)
		} else {
			weights[i] = 1
		}
	}
	shares := model.BatchShares(c.cfg.Batch.GlobalBatch, weights, c.cfg.Batch.minShare(), c.cfg.Batch.maxShare())
	for i, name := range live {
		c.shares[name] = shares[i]
	}
	if c.cfg.Trace != nil {
		// Detail iterates the live join order, never the shares map, so
		// the rendered string is deterministic.
		var b strings.Builder
		for i, name := range live {
			if i > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%s=%d", name, shares[i])
		}
		c.cfg.Trace.Record(obs.Event{
			T:      c.k.Now().Seconds(),
			Kind:   "rebalance",
			Step:   c.globalStep,
			Detail: b.String(),
		})
	}
}

// startRound launches one global step: every live worker draws its
// share-scaled compute time and heads for the parameter servers. With
// no live workers the round waits for the next join.
func (c *Cluster) startRound() {
	if c.done || !c.started {
		return
	}
	live := c.LiveWorkers()
	if len(live) == 0 {
		return
	}
	c.roundActive = true
	c.roundContrib = 0
	c.roundPending = make(map[string]bool, len(live))
	for _, name := range live {
		c.roundPending[name] = true
	}
	for _, name := range live {
		w := c.workers[name]
		w.stepStart = c.k.Now()
		mean := w.computeMean * model.BatchTimeFactor(c.shares[name])
		if w.syncDist.Mean() != mean {
			w.syncDist = stats.MakeLogNormalDist(mean, model.StepTimeCoV)
		}
		compute := w.syncDist.Sample(w.rng)
		if !c.cfg.DisableWarmup {
			// Warm-up tracks the collective step in sync mode: the round
			// is a cluster-wide unit, not a per-worker one.
			compute *= model.WarmupMultiplier(c.globalStep)
		}
		c.k.PostAfter(compute, w.pushSyncID)
	}
}

// pushSync pushes one worker's gradient share through every shard,
// mirroring the asynchronous pushUpdate's service draws.
func (c *Cluster) pushSync(w *Worker) {
	if w.dead || c.done {
		return
	}
	w.shardsRemaining = len(c.shards)
	if w.shardsRemaining == 0 {
		c.syncContribution(w)
		return
	}
	for _, shard := range c.shards {
		service := c.serviceDist.Sample(w.rng)
		shard.SubmitID(service, w.shardDoneID)
	}
}

// syncContribution lands one worker's share in the current round.
func (c *Cluster) syncContribution(w *Worker) {
	if c.done || w.dead {
		return // a dead worker's in-flight share was already written off
	}
	w.stepsDone++
	w.stepRec.Record(float64(c.k.Now() - w.stepStart))
	if !c.roundActive || !c.roundPending[w.name] {
		return
	}
	delete(c.roundPending, w.name)
	c.roundContrib++
	if len(c.roundPending) == 0 {
		c.finishRound()
	}
}

// finishRound closes the round: the global step advances if anyone
// contributed, the chief checkpoints if due (the barrier waits — the
// chief's graph is busy writing, §IV-B), and the next round starts.
func (c *Cluster) finishRound() {
	c.roundActive = false
	c.roundPending = nil
	if c.roundContrib == 0 {
		// Every member died mid-round: no gradients landed, so no step.
		// A worker that joined while the doomed round was in flight is
		// live but idle — restart for it; otherwise wait for a join.
		if len(c.LiveWorkers()) > 0 {
			c.startRound()
		}
		return
	}
	c.completeGlobalStep()
	if c.done {
		return
	}
	if chief, ok := c.workers[c.chief]; ok && !chief.dead && c.checkpointDue() {
		c.runCheckpointSync(chief)
		return
	}
	c.startRound()
}

// dropFromRound writes a dying worker's pending contribution off the
// current round so the barrier cannot deadlock on a revoked member.
// The round's global batch comes up short by that share — the real
// cost of losing a synchronous worker mid-step.
func (c *Cluster) dropFromRound(name string) {
	if !c.roundActive || !c.roundPending[name] {
		return
	}
	delete(c.roundPending, name)
	if len(c.roundPending) == 0 {
		c.finishRound()
	}
}

// runCheckpointSync is runCheckpoint for the synchronous mode: the
// whole cluster stalls at the round barrier while the chief writes,
// then the next round starts. A chief revoked mid-write loses the
// save but must not stall the barrier forever. Like the asynchronous
// path, the in-flight state rides the worker and the timer reuses its
// prebound handler.
func (c *Cluster) runCheckpointSync(w *Worker) {
	c.ckptActive = true
	w.ckptSnapshot = c.globalStep
	w.ckptDur = c.ckptDist.Sample(w.rng)
	c.k.PostAfter(w.ckptDur, w.ckptDoneID)
}

// syncJoin folds a newly joined worker into the schedule: shares
// rebalance immediately, and if the cluster was idle (all previous
// members dead, or first join) a fresh round starts. A running round
// or in-flight checkpoint picks the worker up at its next boundary.
func (c *Cluster) syncJoin() {
	c.rebalance()
	if !c.roundActive && !c.ckptActive {
		c.startRound()
	}
}
