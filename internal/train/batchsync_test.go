package train

import (
	"testing"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/sim"
)

func syncConfig(global int, dynamic bool, workers []WorkerSpec) Config {
	return Config{
		Model:         model.ResNet32(),
		Workers:       workers,
		TargetSteps:   600,
		DisableWarmup: true,
		Seed:          61,
		Batch:         &BatchPolicy{GlobalBatch: global, Dynamic: dynamic},
	}
}

// TestSyncRoundsReachTarget pins the basic synchronous loop: rounds
// advance the global step once each, so worker step counts equal the
// global count.
func TestSyncRoundsReachTarget(t *testing.T) {
	res := runCluster(t, syncConfig(4*model.ReferenceBatch, true, Mixed(2, 1, 1)))
	if !res.Done {
		t.Fatalf("sync session did not finish: %+v", res.GlobalSteps)
	}
	for _, w := range res.Workers {
		if w.Steps != 600 {
			t.Fatalf("worker %s did %d steps, want 600 (one per round)", w.Name, w.Steps)
		}
	}
}

// TestDynamicBatchingTamesStragglers is the straggler property: on a
// mixed cluster, speed-proportional shares beat an equal split because
// the equal split leaves the K80 gating every round (Tyagi & Sharma's
// motivation). The analytic core estimator must agree with the
// simulated ordering.
func TestDynamicBatchingTamesStragglers(t *testing.T) {
	workers := Mixed(2, 1, 1)
	equal := runCluster(t, syncConfig(4*model.ReferenceBatch, false, workers))
	dyn := runCluster(t, syncConfig(4*model.ReferenceBatch, true, workers))
	if !equal.Done || !dyn.Done {
		t.Fatal("sessions did not finish")
	}
	if dyn.TotalSeconds >= equal.TotalSeconds {
		t.Fatalf("dynamic batching not faster: dynamic %.1fs vs equal %.1fs", dyn.TotalSeconds, equal.TotalSeconds)
	}
	m := model.ResNet32()
	gpus := []model.GPU{model.K80, model.K80, model.P100, model.V100}
	eqShares := model.BatchShares(4*model.ReferenceBatch, []float64{1, 1, 1, 1}, 1, 4*model.ReferenceBatch)
	weights := make([]float64, len(gpus))
	for i, g := range gpus {
		weights[i] = model.StepsPerSecond(g, m)
	}
	dynShares := model.BatchShares(4*model.ReferenceBatch, weights, 1, 4*model.ReferenceBatch)
	eqRound, err := core.SyncRoundSeconds(gpus, eqShares, m.GFLOPs)
	if err != nil {
		t.Fatal(err)
	}
	dynRound, err := core.SyncRoundSeconds(gpus, dynShares, m.GFLOPs)
	if err != nil {
		t.Fatal(err)
	}
	if dynRound >= eqRound {
		t.Fatalf("analytic round times disagree with the straggler model: dyn %.3f vs eq %.3f", dynRound, eqRound)
	}
	// The simulated speedup should be in the analytic ballpark (PS
	// service and noise shift it, but not by an order of magnitude).
	simRatio := equal.TotalSeconds / dyn.TotalSeconds
	anaRatio := eqRound / dynRound
	if simRatio < 1+(anaRatio-1)/3 {
		t.Fatalf("simulated speedup %.2f far below analytic %.2f", simRatio, anaRatio)
	}
}

// TestSyncRebalanceOnMembershipChange pins the rebalance contract:
// shares re-split on revocation and on join, always summing to the
// exact global batch.
func TestSyncRebalanceOnMembershipChange(t *testing.T) {
	k := &sim.Kernel{}
	cfg := syncConfig(4*model.ReferenceBatch, true, Mixed(2, 1, 1))
	cfg.TargetSteps = 0
	c := MustCluster(k, cfg)
	c.Start()

	sum := func() int {
		total := 0
		for _, s := range c.Shares() {
			total += s
		}
		return total
	}
	if got := sum(); got != 4*model.ReferenceBatch {
		t.Fatalf("initial shares sum %d, want %d", got, 4*model.ReferenceBatch)
	}

	// Revoke the V100 mid-round: survivors absorb its share.
	k.RunUntil(k.Now() + 5)
	live := c.LiveWorkers()
	victim := live[len(live)-1]
	before := c.Shares()
	if err := c.KillWorker(victim); err != nil {
		t.Fatal(err)
	}
	after := c.Shares()
	if _, ok := after[victim]; ok {
		t.Fatalf("dead worker still holds a share")
	}
	if got := sum(); got != 4*model.ReferenceBatch {
		t.Fatalf("post-revocation shares sum %d, want %d (was %v, now %v)", got, 4*model.ReferenceBatch, before, after)
	}
	for name, s := range after {
		if s < before[name] {
			t.Fatalf("survivor %s share shrank %d → %d after a revocation", name, before[name], s)
		}
	}

	// A joining replacement takes share back off the survivors.
	if _, err := c.AddWorker(WorkerSpec{GPU: model.V100}, JoinMode{Cold: true}); err != nil {
		t.Fatal(err)
	}
	k.RunUntil(k.Now() + 3600)
	if got := sum(); got != 4*model.ReferenceBatch {
		t.Fatalf("post-join shares sum %d, want %d", got, 4*model.ReferenceBatch)
	}
	if len(c.Shares()) != 4 {
		t.Fatalf("shares cover %d workers, want 4", len(c.Shares()))
	}
}

// TestSyncRevocationMidRoundCompletes pins the barrier against the
// deadlock case: a worker revoked while its contribution is in flight
// must not stall the round, and training must still reach the target.
func TestSyncRevocationMidRoundCompletes(t *testing.T) {
	k := &sim.Kernel{}
	cfg := syncConfig(4*model.ReferenceBatch, true, Mixed(2, 1, 1))
	cfg.TargetSteps = 400
	c := MustCluster(k, cfg)
	c.Start()
	// Mid-round: a fraction of the first round's compute time in.
	k.RunUntil(sim.Time(0.05))
	if err := c.KillWorker(c.LiveWorkers()[0]); err != nil {
		t.Fatal(err)
	}
	k.Run()
	if !c.Done() {
		t.Fatalf("cluster stalled after mid-round revocation at step %d", c.GlobalStep())
	}
}

// TestSyncAllWorkersDieThenJoinResumes pins the idle-cluster path: with
// every member dead the rounds stop without completing bogus steps, and
// a later join restarts them.
func TestSyncAllWorkersDieThenJoinResumes(t *testing.T) {
	k := &sim.Kernel{}
	cfg := syncConfig(2*model.ReferenceBatch, true, Homogeneous(model.P100, 2))
	cfg.TargetSteps = 200
	c := MustCluster(k, cfg)
	c.Start()
	k.RunUntil(sim.Time(0.04))
	for _, name := range c.LiveWorkers() {
		if err := c.KillWorker(name); err != nil {
			t.Fatal(err)
		}
	}
	stepAtDeath := c.GlobalStep()
	k.RunUntil(k.Now() + 100)
	if c.GlobalStep() != stepAtDeath {
		t.Fatalf("global step advanced with no live workers: %d → %d", stepAtDeath, c.GlobalStep())
	}
	if _, err := c.AddWorker(WorkerSpec{GPU: model.P100}, JoinMode{Cold: true}); err != nil {
		t.Fatal(err)
	}
	k.Run()
	if !c.Done() {
		t.Fatalf("cluster did not resume after rejoin (step %d)", c.GlobalStep())
	}
}

// TestSyncRemoveWorkerShrinks pins the voluntary scale-in path: the
// leaver is recorded as a shrink (not a revocation) and the survivors
// carry the full global batch.
func TestSyncRemoveWorkerShrinks(t *testing.T) {
	k := &sim.Kernel{}
	cfg := syncConfig(4*model.ReferenceBatch, true, Mixed(2, 1, 1))
	cfg.TargetSteps = 300
	c := MustCluster(k, cfg)
	c.Start()
	k.RunUntil(sim.Time(10))
	live := c.LiveWorkers()
	if err := c.RemoveWorker(live[len(live)-1]); err != nil {
		t.Fatal(err)
	}
	k.Run()
	if !c.Done() {
		t.Fatal("cluster did not finish after scale-in")
	}
	res := c.Result()
	if got := len(res.EventsOf(EventShrink)); got != 1 {
		t.Fatalf("shrink events = %d, want 1", got)
	}
	if got := len(res.EventsOf(EventRevocation)); got != 0 {
		t.Fatalf("revocation events = %d, want 0", got)
	}
	total := 0
	for _, s := range c.Shares() {
		total += s
	}
	if total != 4*model.ReferenceBatch {
		t.Fatalf("post-shrink shares sum %d, want %d", total, 4*model.ReferenceBatch)
	}
}

// TestSyncCheckpointsSequential pins §IV-B's behavior under the round
// barrier: checkpoints happen between rounds and stall the whole
// cluster, so checkpoint count matches the interval.
func TestSyncCheckpointsSequential(t *testing.T) {
	cfg := syncConfig(2*model.ReferenceBatch, true, Homogeneous(model.V100, 2))
	cfg.TargetSteps = 1000
	cfg.CheckpointInterval = 200
	res := runCluster(t, cfg)
	if !res.Done {
		t.Fatal("did not finish")
	}
	if res.CheckpointCount != 4 {
		t.Fatalf("checkpoints = %d, want 4 (1000/200, none after done)", res.CheckpointCount)
	}
}
