package train

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/profile"
	"repro/internal/sim"
	"repro/internal/stats"
)

// EventKind labels entries in the cluster's session timeline.
type EventKind int

const (
	// EventCheckpoint: the chief finished writing a checkpoint.
	EventCheckpoint EventKind = iota + 1
	// EventRevocation: a worker was revoked / killed.
	EventRevocation
	// EventJoin: a (replacement) worker joined and started training.
	EventJoin
	// EventRollback: the session restarted from the last checkpoint
	// (unmodified TensorFlow's chief-IP-reuse behavior, §V-E).
	EventRollback
	// EventChiefHandoff: checkpoint duty moved to another worker
	// (CM-DARE's transient-TensorFlow behavior).
	EventChiefHandoff
	// EventShrink: a worker was retired voluntarily (an elastic
	// scale-in, not a revocation).
	EventShrink
)

// String names the event kind.
func (k EventKind) String() string {
	switch k {
	case EventCheckpoint:
		return "checkpoint"
	case EventRevocation:
		return "revocation"
	case EventJoin:
		return "join"
	case EventRollback:
		return "rollback"
	case EventChiefHandoff:
		return "chief-handoff"
	case EventShrink:
		return "shrink"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is one timeline entry.
type Event struct {
	Kind   EventKind
	Time   float64 // simulation seconds
	Step   int64   // global step at the time
	Worker string
}

// Cluster is one asynchronous parameter-server training session on the
// simulation kernel. It is not safe for concurrent use; all methods
// must run on the simulation thread.
type Cluster struct {
	k   *sim.Kernel
	rng *stats.Rng
	cfg Config

	shards  []*sim.Server
	workers map[string]*Worker
	// serviceDist and ckptDist freeze the session-constant log-normal
	// parameterizations (per-shard service time, checkpoint write
	// time) so the per-step hot path skips their log/sqrt setup.
	serviceDist stats.LogNormalDist
	ckptDist    stats.LogNormalDist
	order       []string
	chief       string
	// chiefHandoff selects CM-DARE's behavior (true: checkpoint duty
	// moves to a surviving worker when the chief is revoked) versus
	// unmodified TensorFlow (false: duty waits for a replacement).
	chiefHandoff bool

	tracker *profile.Tracker

	started      bool
	globalStep   int64
	lastCkptStep int64
	done         bool
	startedAt    sim.Time
	doneAt       sim.Time

	ckptCount   int
	ckptSeconds float64

	events    []Event
	stepHooks map[int64][]func()
	// nextHook is the smallest registered hook step (0 when none),
	// letting the per-step hot path skip the map probe entirely.
	nextHook int64

	// Synchronous-mode state (Config.Batch != nil; see batchsync.go).
	shares       map[string]int
	roundPending map[string]bool
	roundContrib int
	roundActive  bool
	ckptActive   bool

	nWorkersCreated int
}

// NewCluster builds a session on the kernel. The chief is the first
// worker. Workers do not begin training until Start.
func NewCluster(k *sim.Kernel, cfg Config) (*Cluster, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	c := &Cluster{
		k:            k,
		rng:          stats.NewRng(cfg.Seed),
		cfg:          cfg,
		workers:      make(map[string]*Worker),
		chiefHandoff: true,
		stepHooks:    make(map[int64][]func()),
		tracker:      profile.NewTracker(cfg.SpeedWindowSteps),
	}
	if cfg.Trace != nil {
		// Fold the tracker's windowed speed samples into the trace
		// timeline as the paper's performance tracker would log them.
		trace := cfg.Trace
		c.tracker.OnSample = func(s profile.SpeedSample) {
			trace.Record(obs.Event{T: s.Time, Kind: "speed", Step: s.Step, Value: s.Speed})
		}
	}
	for i := 0; i < cfg.ParameterServers; i++ {
		c.shards = append(c.shards, sim.NewServer(k))
	}
	if cfg.ParameterServers > 0 {
		c.serviceDist = stats.MakeLogNormalDist(shardServiceSeconds(cfg.Model, cfg.ParameterServers), psServiceCoV)
	}
	c.ckptDist = stats.MakeLogNormalDist(CheckpointSeconds(cfg.Model), ckptTimeCoV)
	for _, spec := range cfg.Workers {
		name := c.newWorker(spec)
		if c.chief == "" {
			c.chief = name
		}
	}
	return c, nil
}

// MustCluster is NewCluster that panics on error, for experiment code
// with static configurations.
func MustCluster(k *sim.Kernel, cfg Config) *Cluster {
	c, err := NewCluster(k, cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// newWorker registers a worker without starting it.
func (c *Cluster) newWorker(spec WorkerSpec) string {
	name := fmt.Sprintf("%s-%d", spec.GPU, c.nWorkersCreated)
	c.nWorkersCreated++
	compute := model.StepTime(spec.GPU, c.cfg.Model.GFLOPs) - baselineRoundTripSeconds(c.cfg.Model)
	if compute <= 0 {
		// The calibration guarantees positive compute for the zoo; a
		// violation means a future model/GPU addition broke it.
		panic(fmt.Sprintf("train: non-positive compute time for %s on %v", c.cfg.Model.Name, spec.GPU))
	}
	w := &Worker{
		c:           c,
		name:        name,
		gpu:         spec.GPU,
		computeMean: compute,
		computeDist: stats.MakeLogNormalDist(compute, model.StepTimeCoV),
		rng:         c.rng.Fork(),
		stepRec:     c.tracker.StepRecorder(name),
	}
	w.bindHandlers()
	c.workers[name] = w
	c.order = append(c.order, name)
	return name
}

// Start launches every configured worker at the current virtual time.
func (c *Cluster) Start() {
	if c.started {
		panic("train: cluster already started")
	}
	c.started = true
	c.startedAt = c.k.Now()
	c.tracker.Begin(c.k.Now().Seconds())
	if c.syncEnabled() {
		c.rebalance()
		c.startRound()
		return
	}
	for _, name := range c.order {
		c.workers[name].startStep()
	}
}

// Chief returns the current chief worker's name.
func (c *Cluster) Chief() string { return c.chief }

// SetChiefHandoff selects between CM-DARE chief takeover (true, the
// default) and unmodified TensorFlow (false).
func (c *Cluster) SetChiefHandoff(enabled bool) { c.chiefHandoff = enabled }

// GlobalStep returns the current global step (after any rollbacks).
func (c *Cluster) GlobalStep() int64 { return c.globalStep }

// LastCheckpointStep returns the global step of the latest completed
// checkpoint.
func (c *Cluster) LastCheckpointStep() int64 { return c.lastCkptStep }

// Done reports whether the session reached its target steps.
func (c *Cluster) Done() bool { return c.done }

// Tracker exposes the session's performance tracker.
func (c *Cluster) Tracker() *profile.Tracker { return c.tracker }

// Events returns the session timeline.
func (c *Cluster) Events() []Event {
	out := make([]Event, len(c.events))
	copy(out, c.events)
	return out
}

// LiveWorkers returns the names of workers currently training, in
// join order.
func (c *Cluster) LiveWorkers() []string {
	var out []string
	for _, name := range c.order {
		if !c.workers[name].dead {
			out = append(out, name)
		}
	}
	return out
}

// WorkerGPU returns the GPU type of a (possibly dead) worker.
func (c *Cluster) WorkerGPU(name string) (model.GPU, error) {
	w, ok := c.workers[name]
	if !ok {
		return 0, fmt.Errorf("train: no worker %q", name)
	}
	return w.gpu, nil
}

// PSMaxUtilization returns the highest shard utilization, the signal
// CM-DARE's bottleneck detector reads (§VI-B).
func (c *Cluster) PSMaxUtilization() float64 {
	var max float64
	for _, s := range c.shards {
		if u := s.Utilization(); u > max {
			max = u
		}
	}
	return max
}

// WhenStep registers fn to run the first time the global step reaches
// exactly step. Registration after the step has passed is an error
// surfaced by panic (it would silently never fire).
func (c *Cluster) WhenStep(step int64, fn func()) {
	if step <= c.globalStep {
		panic(fmt.Sprintf("train: WhenStep(%d) at or before current step %d", step, c.globalStep))
	}
	c.stepHooks[step] = append(c.stepHooks[step], fn)
	if c.nextHook == 0 || step < c.nextHook {
		c.nextHook = step
	}
}

// KillWorker revokes a worker immediately (the simulation analogue of
// a preemption, and of the paper's manual revocations in §V-E). The
// worker's in-flight step is discarded. If the chief dies and chief
// handoff is enabled, checkpoint duty moves to the oldest surviving
// worker.
func (c *Cluster) KillWorker(name string) error {
	return c.retire(name, EventRevocation)
}

// RemoveWorker retires a worker voluntarily — the elastic manager's
// scale-in path. Mechanically identical to a revocation (the worker's
// in-flight step is discarded, chief duty hands off) but recorded as a
// shrink, so timelines distinguish policy decisions from preemptions.
func (c *Cluster) RemoveWorker(name string) error {
	return c.retire(name, EventShrink)
}

// retire is the shared exit path for revocations and scale-ins.
func (c *Cluster) retire(name string, kind EventKind) error {
	w, ok := c.workers[name]
	if !ok {
		return fmt.Errorf("train: no worker %q", name)
	}
	if w.dead {
		return fmt.Errorf("train: worker %q already dead", name)
	}
	w.dead = true
	c.addEvent(kind, name)
	if name == c.chief {
		c.chief = ""
		if c.chiefHandoff {
			for _, cand := range c.order {
				if !c.workers[cand].dead {
					c.chief = cand
					c.addEvent(EventChiefHandoff, cand)
					break
				}
			}
		}
	}
	if c.syncEnabled() {
		// Survivors absorb the leaver's batch share from the next round;
		// the current round completes without its contribution.
		c.rebalance()
		c.dropFromRound(name)
	}
	return nil
}

// JoinMode controls how a replacement worker enters the session.
type JoinMode struct {
	// Cold marks a newly requested server (framework start + session
	// join + graph setup + dataset download); warm reuses an existing
	// server (no download). Fig. 10's two bars.
	Cold bool
	// MakeChief gives the new worker checkpoint duty on join.
	MakeChief bool
	// ReuseChiefIP reproduces unmodified TensorFlow's recomputation
	// behavior (§V-E): the new worker binds the revoked chief's
	// address, becomes chief, and the session restarts from the last
	// checkpoint, discarding progress since.
	ReuseChiefIP bool
}

// AddWorker schedules a new worker to join the running session after
// the calibrated replacement overhead. It returns the worker's name
// immediately; the worker starts training once joined.
func (c *Cluster) AddWorker(spec WorkerSpec, mode JoinMode) (string, error) {
	if !spec.GPU.Valid() {
		return "", fmt.Errorf("train: invalid GPU %d", int(spec.GPU))
	}
	if !c.started {
		return "", fmt.Errorf("train: cluster not started")
	}
	name := c.newWorker(spec)
	w := c.workers[name]
	overhead := ReplacementSeconds(c.cfg.Model, mode.Cold)
	overhead = w.rng.LogNormal(overhead, replacementOverheadCoV)
	w.joinMode = mode
	c.k.PostAfter(overhead, w.joinID)
	return name, nil
}

// rollback discards progress since the last checkpoint.
func (c *Cluster) rollback() {
	c.addEvent(EventRollback, "")
	c.globalStep = c.lastCkptStep
}

// addEvent appends a timeline entry at the current time and step, and
// mirrors it onto the trace recorder when one is attached.
func (c *Cluster) addEvent(kind EventKind, worker string) {
	c.events = append(c.events, Event{
		Kind:   kind,
		Time:   c.k.Now().Seconds(),
		Step:   c.globalStep,
		Worker: worker,
	})
	c.cfg.Trace.Record(obs.Event{
		T:      c.k.Now().Seconds(),
		Kind:   kind.String(),
		Worker: worker,
		Step:   c.globalStep,
	})
}

// completeGlobalStep advances the global counter, feeds the tracker,
// runs step hooks, and finishes the session at the target.
func (c *Cluster) completeGlobalStep() {
	c.globalStep++
	c.tracker.RecordGlobalStep(c.k.Now().Seconds())
	// nextHook tracks the smallest registered hook step, so the per-step
	// hot path pays one integer compare instead of a map probe. WhenStep
	// only registers future steps and the counter climbs one step at a
	// time (rollbacks replay the same integers), so equality cannot be
	// stepped over.
	if c.nextHook != 0 && c.globalStep == c.nextHook {
		hooks := c.stepHooks[c.globalStep]
		delete(c.stepHooks, c.globalStep)
		c.nextHook = 0
		for s := range c.stepHooks {
			if c.nextHook == 0 || s < c.nextHook {
				c.nextHook = s
			}
		}
		for _, fn := range hooks {
			fn()
		}
	}
	if c.cfg.TargetSteps > 0 && c.globalStep >= c.cfg.TargetSteps && !c.done {
		c.done = true
		c.doneAt = c.k.Now()
	}
}

// checkpointDue reports whether the chief should checkpoint now.
func (c *Cluster) checkpointDue() bool {
	return c.cfg.CheckpointInterval > 0 &&
		c.globalStep-c.lastCkptStep >= c.cfg.CheckpointInterval &&
		!c.done
}

// runCheckpoint stalls the chief for the checkpoint duration; training
// and checkpointing are sequential on the chief (§IV-B), while other
// workers keep training. The in-flight snapshot/duration live on the
// worker (a worker checkpoints at most once at a time, and a revoked
// chief never checkpoints again), so the timer reuses the worker's
// prebound handler instead of allocating a closure per checkpoint.
func (c *Cluster) runCheckpoint(w *Worker) {
	w.ckptSnapshot = c.globalStep
	w.ckptDur = c.ckptDist.Sample(w.rng)
	c.k.PostAfter(w.ckptDur, w.ckptDoneID)
}

// commitCheckpoint records a successfully written checkpoint.
func (c *Cluster) commitCheckpoint(w *Worker) {
	c.lastCkptStep = w.ckptSnapshot
	c.ckptCount++
	c.ckptSeconds += w.ckptDur
	c.addEvent(EventCheckpoint, w.name)
}
